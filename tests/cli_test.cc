#include "tools/cli.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <regex>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "paper_fixtures.h"

namespace xmlprop {
namespace {

namespace fs = std::filesystem;

// Writes fixture files into a per-test temp directory.
class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("xmlprop_cli_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
    Write("keys.txt", testing_fixtures::kPaperKeys);
    Write("doc.xml", testing_fixtures::kFig1Xml);
    Write("rules.txt", testing_fixtures::kPaperTransformation);
    Write("universal.txt", testing_fixtures::kUniversalRule);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Write(const std::string& name, const std::string& content) {
    std::string path = (dir_ / name).string();
    std::ofstream out(path);
    out << content;
    return path;
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  // Runs the CLI and captures output.
  struct RunResult {
    int code;
    std::string out;
    std::string err;
  };
  RunResult Run(std::vector<std::string> args) {
    std::ostringstream out, err;
    int code = RunCli(args, out, err);
    return RunResult{code, out.str(), err.str()};
  }

  fs::path dir_;
};

TEST_F(CliTest, HelpListsCommands) {
  RunResult r = Run({"help"});
  EXPECT_EQ(r.code, 0);
  for (const char* cmd : {"check", "propagate", "cover", "design", "shred",
                          "discover", "import-xsd", "implies"}) {
    EXPECT_NE(r.out.find(cmd), std::string::npos) << cmd;
  }
}

TEST_F(CliTest, UnknownCommandFails) {
  RunResult r = Run({"frobnicate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, NoArgsIsError) {
  RunResult r = Run({});
  EXPECT_EQ(r.code, 1);
}

TEST_F(CliTest, CheckCleanDocument) {
  RunResult r = Run({"check", "--keys", Path("keys.txt"), "--doc",
                     Path("doc.xml")});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("OK"), std::string::npos);
}

TEST_F(CliTest, CheckViolatingDocument) {
  Write("bad.xml", R"(<r><book isbn="1"/><book isbn="1"/></r>)");
  RunResult r =
      Run({"check", "--keys", Path("keys.txt"), "--doc", Path("bad.xml")});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("VIOLATION"), std::string::npos);
}

TEST_F(CliTest, CheckWithForeignKeys) {
  Write("doc_fk.xml",
        R"(<r><book isbn="1"/><cite ref="1"/><cite ref="9"/></r>)");
  Write("fkeys.txt",
        "FK1: (ε, (//cite, {@ref}) => (//book, {@isbn}))\n");
  Write("just_k1.txt", "K1: (ε, (//book, {@isbn}))\n");
  RunResult r = Run({"check", "--keys", Path("just_k1.txt"), "--doc",
                     Path("doc_fk.xml"), "--fkeys", Path("fkeys.txt")});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("references missing tuple"), std::string::npos);

  Write("doc_fk_ok.xml", R"(<r><book isbn="1"/><cite ref="1"/></r>)");
  RunResult ok = Run({"check", "--keys", Path("just_k1.txt"), "--doc",
                      Path("doc_fk_ok.xml"), "--fkeys", Path("fkeys.txt")});
  EXPECT_EQ(ok.code, 0) << ok.out << ok.err;
  EXPECT_NE(ok.out.find("2 constraint(s)"), std::string::npos);
}

TEST_F(CliTest, CheckMissingFile) {
  RunResult r = Run({"check", "--keys", Path("nope.txt"), "--doc",
                     Path("doc.xml")});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST_F(CliTest, ImpliesYesAndNo) {
  RunResult yes = Run({"implies", "--keys", Path("keys.txt"), "--key",
                       "(//, (book, {@isbn}))"});
  EXPECT_EQ(yes.code, 0) << yes.err;
  EXPECT_NE(yes.out.find("IMPLIED"), std::string::npos);

  RunResult no = Run({"implies", "--keys", Path("keys.txt"), "--key",
                      "(ε, (//chapter, {@number}))"});
  EXPECT_EQ(no.code, 2);
  EXPECT_NE(no.out.find("NOT IMPLIED"), std::string::npos);
}

TEST_F(CliTest, PropagateExample42) {
  RunResult yes =
      Run({"propagate", "--keys", Path("keys.txt"), "--rules",
           Path("rules.txt"), "--relation", "book", "--fd",
           "isbn -> contact"});
  EXPECT_EQ(yes.code, 0) << yes.err;
  EXPECT_NE(yes.out.find("PROPAGATED"), std::string::npos);

  RunResult no =
      Run({"propagate", "--keys", Path("keys.txt"), "--rules",
           Path("rules.txt"), "--relation", "section", "--fd",
           "inChapt, number -> name"});
  EXPECT_EQ(no.code, 2);
  EXPECT_NE(no.out.find("NOT PROPAGATED"), std::string::npos);
}

TEST_F(CliTest, PropagateViaCoverAgrees) {
  RunResult r = Run({"propagate", "--keys", Path("keys.txt"), "--rules",
                     Path("rules.txt"), "--relation", "book", "--fd",
                     "isbn -> title", "--via-cover"});
  EXPECT_EQ(r.code, 0) << r.err;
}

TEST_F(CliTest, PropagateNeedsRelationWhenAmbiguous) {
  RunResult r = Run({"propagate", "--keys", Path("keys.txt"), "--rules",
                     Path("rules.txt"), "--fd", "isbn -> title"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--relation"), std::string::npos);
}

TEST_F(CliTest, CoverMatchesExample31) {
  RunResult r = Run({"cover", "--keys", Path("keys.txt"), "--rules",
                     Path("universal.txt")});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("bookIsbn -> bookTitle"), std::string::npos);
  EXPECT_NE(r.out.find("bookIsbn, chapNum, secNum -> secName"),
            std::string::npos);
}

TEST_F(CliTest, CoverEngineIdenticalPlusCacheLine) {
  RunResult plain = Run({"cover", "--keys", Path("keys.txt"), "--rules",
                         Path("universal.txt")});
  RunResult engine = Run({"cover", "--keys", Path("keys.txt"), "--rules",
                          Path("universal.txt"), "--engine"});
  EXPECT_EQ(engine.code, 0) << engine.err;
  // Same cover, plus the cache-stats trailer.
  EXPECT_NE(engine.out.find("engine cache:"), std::string::npos);
  EXPECT_EQ(engine.out.substr(0, engine.out.find("engine cache:")),
            plain.out);
}

TEST_F(CliTest, PropagateEngineAgrees) {
  RunResult r = Run({"propagate", "--keys", Path("keys.txt"), "--rules",
                     Path("rules.txt"), "--relation", "book", "--fd",
                     "isbn -> contact", "--engine"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("PROPAGATED"), std::string::npos);
  EXPECT_NE(r.out.find("engine cache:"), std::string::npos);

  RunResult via = Run({"propagate", "--keys", Path("keys.txt"), "--rules",
                       Path("rules.txt"), "--relation", "book", "--fd",
                       "isbn -> title", "--via-cover", "--engine"});
  EXPECT_EQ(via.code, 0) << via.err;
}

TEST_F(CliTest, NoClosureIndexLeavesStdoutIdentical) {
  // The LinClosure-kernel ablation: covers and designs are bit-for-bit
  // the same with the compiled index off.
  for (const std::vector<std::string>& base :
       {std::vector<std::string>{"cover", "--keys", Path("keys.txt"),
                                 "--rules", Path("universal.txt")},
        std::vector<std::string>{"cover", "--keys", Path("keys.txt"),
                                 "--rules", Path("universal.txt"), "--naive"},
        std::vector<std::string>{"design", "--keys", Path("keys.txt"),
                                 "--rules", Path("universal.txt"), "--sql"}}) {
    RunResult on = Run(base);
    std::vector<std::string> off_args = base;
    off_args.push_back("--no-closure-index");
    RunResult off = Run(off_args);
    EXPECT_EQ(on.code, 0) << on.err;
    EXPECT_EQ(off.code, on.code) << base[0];
    EXPECT_EQ(off.out, on.out) << base[0];
  }
}

TEST_F(CliTest, CoverNaiveAgrees) {
  RunResult r = Run({"cover", "--keys", Path("keys.txt"), "--rules",
                     Path("universal.txt"), "--naive"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Algorithm naive"), std::string::npos);
  EXPECT_NE(r.out.find("bookIsbn -> bookTitle"), std::string::npos);
}

TEST_F(CliTest, DesignWithSql) {
  RunResult r = Run({"design", "--keys", Path("keys.txt"), "--rules",
                     Path("universal.txt"), "--sql"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("BCNF decomposition"), std::string::npos);
  EXPECT_NE(r.out.find("CREATE TABLE"), std::string::npos);
  EXPECT_NE(r.out.find("PRIMARY KEY"), std::string::npos);
}

TEST_F(CliTest, Design3nfSql) {
  RunResult r = Run({"design", "--keys", Path("keys.txt"), "--rules",
                     Path("universal.txt"), "--sql", "--3nf"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("-- DDL (3NF)"), std::string::npos);
}

TEST_F(CliTest, ShredPlainAndSql) {
  RunResult plain = Run({"shred", "--rules", Path("rules.txt"), "--doc",
                         Path("doc.xml")});
  EXPECT_EQ(plain.code, 0) << plain.err;
  EXPECT_NE(plain.out.find("Introduction"), std::string::npos);

  RunResult sql = Run({"shred", "--rules", Path("rules.txt"), "--doc",
                       Path("doc.xml"), "--sql"});
  EXPECT_EQ(sql.code, 0);
  EXPECT_NE(sql.out.find("INSERT INTO chapter"), std::string::npos);
  EXPECT_NE(sql.out.find("NULL"), std::string::npos);
}

TEST_F(CliTest, ShredCsvThenPublishRoundTrips) {
  // shred --csv produces a per-relation CSV block; feeding the universal
  // relation's block back through `publish` reconstructs a document that
  // re-shreds identically.
  RunResult csv = Run({"shred", "--rules", Path("universal.txt"), "--doc",
                       Path("doc.xml"), "--csv"});
  ASSERT_EQ(csv.code, 0) << csv.err;
  ASSERT_NE(csv.out.find("# U\n"), std::string::npos);
  Write("u.csv", csv.out.substr(csv.out.find('\n') + 1));

  RunResult published =
      Run({"publish", "--keys", Path("keys.txt"), "--rules",
           Path("universal.txt"), "--data", Path("u.csv")});
  ASSERT_EQ(published.code, 0) << published.err;
  EXPECT_NE(published.out.find("<book"), std::string::npos);
  Write("published.xml", published.out);

  RunResult reshredded = Run({"shred", "--rules", Path("universal.txt"),
                              "--doc", Path("published.xml"), "--csv"});
  ASSERT_EQ(reshredded.code, 0) << reshredded.err;
  EXPECT_EQ(csv.out, reshredded.out);
}

TEST_F(CliTest, PublishRejectsBadCsv) {
  Write("bad.csv", "nope,columns\n1,2\n");
  RunResult r = Run({"publish", "--keys", Path("keys.txt"), "--rules",
                     Path("universal.txt"), "--data", Path("bad.csv")});
  EXPECT_EQ(r.code, 1);
}

TEST_F(CliTest, DiscoverFindsIsbnKey) {
  RunResult r = Run({"discover", "--doc", Path("doc.xml")});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("(ε, (//book, {@isbn}))"), std::string::npos);
}

TEST_F(CliTest, ImportXsd) {
  Write("schema.xsd", R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="r">
        <xs:key name="bookKey">
          <xs:selector xpath=".//book"/>
          <xs:field xpath="@isbn"/>
        </xs:key>
      </xs:element>
    </xs:schema>)");
  RunResult r = Run({"import-xsd", "--xsd", Path("schema.xsd")});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("bookKey: (//r, (//book, {@isbn}))"),
            std::string::npos);
}

TEST_F(CliTest, ExportXsdRoundTripsThroughImport) {
  Write("two_keys.txt",
        "K1: (ε, (//book, {@isbn}))\nK2: (//book, (chapter, {@number}))\n");
  RunResult exported =
      Run({"export-xsd", "--keys", Path("two_keys.txt"), "--root", "lib"});
  ASSERT_EQ(exported.code, 0) << exported.err;
  EXPECT_NE(exported.out.find("<xs:schema"), std::string::npos);
  Write("exported.xsd", exported.out);
  RunResult back = Run({"import-xsd", "--xsd", Path("exported.xsd")});
  ASSERT_EQ(back.code, 0) << back.err;
  EXPECT_NE(back.out.find("(//lib, (//book, {@isbn}))"), std::string::npos);
  EXPECT_NE(back.out.find("(//book, (chapter, {@number}))"),
            std::string::npos);
}

TEST_F(CliTest, ImportXsdPrintsKeyrefs) {
  Write("kr.xsd", R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="db">
        <xs:key name="bk"><xs:selector xpath="book"/>
          <xs:field xpath="@isbn"/></xs:key>
        <xs:keyref name="cr" refer="bk"><xs:selector xpath="cite"/>
          <xs:field xpath="@ref"/></xs:keyref>
      </xs:element>
    </xs:schema>)");
  RunResult r = Run({"import-xsd", "--xsd", Path("kr.xsd")});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("=>"), std::string::npos);
}

TEST_F(CliTest, AutodesignEndToEnd) {
  RunResult r = Run({"autodesign", "--doc", Path("doc.xml"), "--sql",
                     "--min-support", "2"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Derived universal relation"), std::string::npos);
  EXPECT_NE(r.out.find("Minimum cover"), std::string::npos);
  EXPECT_NE(r.out.find("CREATE TABLE"), std::string::npos);
}

TEST_F(CliTest, FlagWithoutValueFails) {
  RunResult r = Run({"check", "--keys"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("needs a value"), std::string::npos);
}

TEST_F(CliTest, BadFdTextSurfacesParseError) {
  RunResult r = Run({"propagate", "--keys", Path("keys.txt"), "--rules",
                     Path("rules.txt"), "--relation", "book", "--fd",
                     "garbage"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error"), std::string::npos);
}

TEST_F(CliTest, EqualsSyntaxBindsFlagValues) {
  RunResult r = Run({"check", "--keys=" + Path("keys.txt"),
                     "--doc=" + Path("doc.xml")});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("OK"), std::string::npos);
}

// Neutralizes the run-to-run timing digits of the --index stats line so
// observed and unobserved runs compare bit-identical everywhere else.
std::string StripTimings(const std::string& text) {
  std::string out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const size_t built = line.find("built in ");
    if (built != std::string::npos) line.resize(built);
    out += line;
    out += '\n';
  }
  return out;
}

// The streaming ablation: --streaming must reproduce the --index plane's
// stdout bit-identically (modulo the stats line's timing digits), for a
// clean and a violating document, and for shred in every output dialect.
TEST_F(CliTest, StreamingAblationMatchesIndexPlane) {
  Write("bad.xml", R"(<r><book isbn="1"/><book isbn="1"/></r>)");
  const std::vector<std::vector<std::string>> commands = {
      {"check", "--keys", Path("keys.txt"), "--doc", Path("doc.xml"),
       "--index"},
      {"check", "--keys", Path("keys.txt"), "--doc", Path("bad.xml"),
       "--index"},
      {"shred", "--rules", Path("rules.txt"), "--doc", Path("doc.xml"),
       "--index"},
      {"shred", "--rules", Path("rules.txt"), "--doc", Path("doc.xml"),
       "--sql", "--index"},
      {"shred", "--rules", Path("universal.txt"), "--doc", Path("doc.xml"),
       "--csv", "--index"},
  };
  for (const std::vector<std::string>& base : commands) {
    RunResult indexed = Run(base);
    std::vector<std::string> streaming = base;
    streaming.back() = "--streaming";
    RunResult streamed = Run(streaming);
    EXPECT_EQ(streamed.code, indexed.code) << base[0];
    EXPECT_EQ(StripTimings(streamed.out), StripTimings(indexed.out))
        << base[0] << " --streaming altered stdout";
    EXPECT_EQ(streamed.err, indexed.err) << base[0];
  }
}

TEST_F(CliTest, EditCheckReportsIncrementalRecheck) {
  Write("frag.xml", R"(<book isbn="123"><title>T</title></book>)");
  RunResult r = Run({"edit-check", "--keys", Path("keys.txt"), "--doc",
                     Path("doc.xml"), "--fragment", Path("frag.xml")});
  EXPECT_EQ(r.code, 2) << r.err;
  EXPECT_NE(r.out.find("seed:"), std::string::npos);
  EXPECT_NE(r.out.find("recheck:"), std::string::npos);
  EXPECT_NE(r.out.find("NEW VIOLATION"), std::string::npos);

  Write("fresh.xml", R"(<book isbn="new-isbn"><title>T</title></book>)");
  RunResult ok = Run({"edit-check", "--keys", Path("keys.txt"), "--doc",
                      Path("doc.xml"), "--fragment", Path("fresh.xml")});
  EXPECT_EQ(ok.code, 0) << ok.out << ok.err;
  EXPECT_NE(ok.out.find("OK"), std::string::npos);

  RunResult missing = Run({"edit-check", "--keys", Path("keys.txt"), "--doc",
                           Path("doc.xml"), "--fragment", Path("fresh.xml"),
                           "--under", "no-such-label"});
  EXPECT_EQ(missing.code, 1);
  EXPECT_NE(missing.err.find("no element labelled"), std::string::npos);
}

// Satellite regression: --trace and --metrics never alter a command's
// primary stdout (bit-identical to the untraced run; only the stats line
// timing digits are normalized).
TEST_F(CliTest, TraceAndMetricsLeaveStdoutIdentical) {
  const std::string trace_file = Path("run.json");
  const std::vector<std::vector<std::string>> commands = {
      {"check", "--keys", Path("keys.txt"), "--doc", Path("doc.xml")},
      {"check", "--keys", Path("keys.txt"), "--doc", Path("doc.xml"),
       "--index"},
      {"propagate", "--keys", Path("keys.txt"), "--rules", Path("rules.txt"),
       "--relation", "book", "--fd", "isbn -> contact"},
      {"cover", "--keys", Path("keys.txt"), "--rules", Path("universal.txt")},
      {"cover", "--keys", Path("keys.txt"), "--rules", Path("universal.txt"),
       "--engine"},
      {"shred", "--rules", Path("rules.txt"), "--doc", Path("doc.xml")},
      {"shred", "--rules", Path("rules.txt"), "--doc", Path("doc.xml"),
       "--sql", "--index"},
  };
  for (const std::vector<std::string>& base : commands) {
    RunResult plain = Run(base);

    std::vector<std::string> traced = base;
    traced.push_back("--trace=" + trace_file);
    RunResult with_trace = Run(traced);
    EXPECT_EQ(with_trace.code, plain.code) << base[0];
    EXPECT_EQ(StripTimings(with_trace.out), StripTimings(plain.out))
        << base[0] << " --trace altered stdout";
    EXPECT_EQ(with_trace.err, "") << base[0];

    std::vector<std::string> metered = base;
    metered.push_back("--metrics");
    RunResult with_metrics = Run(metered);
    EXPECT_EQ(with_metrics.code, plain.code) << base[0];
    EXPECT_EQ(StripTimings(with_metrics.out), StripTimings(plain.out))
        << base[0] << " --metrics altered stdout";
    EXPECT_NE(with_metrics.err.find("metrics:"), std::string::npos)
        << base[0];
  }
}

TEST_F(CliTest, TraceFileIsAJsonRunReport) {
  const std::string trace_file = Path("cover_run.json");
  RunResult r = Run({"cover", "--keys", Path("keys.txt"), "--rules",
                     Path("universal.txt"), "--engine",
                     "--trace=" + trace_file});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream in(trace_file);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  for (const char* key :
       {"\"version\":", "\"command\":\"cover\"", "\"config\":",
        "\"wall_ms\":", "\"spans\":", "\"metrics\":", "\"counters\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // The cover phases the acceptance criteria name.
  for (const char* span :
       {"cover.candidate_generation", "cover.implication_checks",
        "cover.minimize"}) {
    EXPECT_NE(json.find(span), std::string::npos) << span;
  }
  EXPECT_NE(json.find("propagation.implication_calls"), std::string::npos);
}

TEST_F(CliTest, BareTracePrintsTextTreeToStderr) {
  RunResult r = Run({"check", "--keys", Path("keys.txt"), "--doc",
                     Path("doc.xml"), "--trace"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("trace: check"), std::string::npos);
  EXPECT_NE(r.err.find("xml.parse"), std::string::npos);
}

TEST_F(CliTest, MetricsAloneListsCounters) {
  RunResult r = Run({"shred", "--rules", Path("rules.txt"), "--doc",
                     Path("doc.xml"), "--metrics"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("metrics:"), std::string::npos);
  EXPECT_NE(r.err.find("xml.parse_calls = 1"), std::string::npos);
}

TEST_F(CliTest, UnwritableTraceFileIsAnError) {
  RunResult r = Run({"check", "--keys", Path("keys.txt"), "--doc",
                     Path("doc.xml"), "--trace=/nonexistent-dir/run.json"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot write trace report"), std::string::npos);
}

// Request-scoped context flags are observe-only: with thresholds that never
// fire, stdout and exit codes are bit-identical to the unflagged run and
// stderr stays silent.
TEST_F(CliTest, ContextFlagsLeaveStdoutIdentical) {
  const std::vector<std::vector<std::string>> commands = {
      {"check", "--keys", Path("keys.txt"), "--doc", Path("doc.xml")},
      {"check", "--keys", Path("keys.txt"), "--doc", Path("doc.xml"),
       "--index"},
      {"cover", "--keys", Path("keys.txt"), "--rules", Path("universal.txt"),
       "--engine"},
      {"shred", "--rules", Path("rules.txt"), "--doc", Path("doc.xml"),
       "--sql"},
  };
  for (const std::vector<std::string>& base : commands) {
    RunResult plain = Run(base);

    std::vector<std::string> ctx = base;
    ctx.push_back("--slow-op-ms=60000");
    ctx.push_back("--stall-ms=60000");
    ctx.push_back("--trace-retain=5");
    RunResult with_ctx = Run(ctx);
    EXPECT_EQ(with_ctx.code, plain.code) << base[0];
    EXPECT_EQ(StripTimings(with_ctx.out), StripTimings(plain.out))
        << base[0] << " context flags altered stdout";
    EXPECT_EQ(with_ctx.err, "") << base[0];
  }
}

// A sub-microsecond threshold forces the slow-op record: one structured
// WARN line carrying the context name, wall time, and per-phase summary.
TEST_F(CliTest, SlowOpThresholdEmitsStructuredRecord) {
  RunResult r = Run({"check", "--keys", Path("keys.txt"), "--doc",
                     Path("doc.xml"), "--slow-op-ms=0.000001",
                     "--log-format=ndjson"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("\"component\":\"slowop\""), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("\"ctx\":\"check\""), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("\"wall_ms\":"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("\"threshold_ms\":"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("\"phases\":\""), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("xml.parse"), std::string::npos) << r.err;
}

// Under a context the trace report names the context, and the tail sampler's
// verdict decides whether spans are materialized: retain=0 discards the span
// tree but still reports the context wall time and the discard counter.
TEST_F(CliTest, ContextTraceReportCarriesContextAndHonorsRetainZero) {
  const std::string trace_file = Path("ctx_run.json");
  RunResult kept = Run({"check", "--keys", Path("keys.txt"), "--doc",
                        Path("doc.xml"), "--slow-op-ms=60000",
                        "--trace=" + trace_file});
  ASSERT_EQ(kept.code, 0) << kept.err;
  std::string json = ReadFile(trace_file);
  EXPECT_NE(json.find("\"context\":\"check\""), std::string::npos) << json;
  EXPECT_NE(json.find("xml.parse"), std::string::npos) << json;
  EXPECT_NE(json.find("obs.traces_retained"), std::string::npos) << json;

  RunResult dropped = Run({"check", "--keys", Path("keys.txt"), "--doc",
                           Path("doc.xml"), "--trace-retain=0",
                           "--trace=" + trace_file});
  ASSERT_EQ(dropped.code, 0) << dropped.err;
  json = ReadFile(trace_file);
  EXPECT_NE(json.find("\"context\":\"check\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"spans\":[]"), std::string::npos) << json;
  EXPECT_NE(json.find("obs.traces_discarded"), std::string::npos) << json;
  // Wall time survives the discard: the report's wall_ms comes from the
  // context clock, not the (dropped) span tree.
  const size_t wall_pos = json.find("\"wall_ms\":");
  ASSERT_NE(wall_pos, std::string::npos) << json;
  EXPECT_GT(std::stod(json.substr(wall_pos + 10)), 0.0) << json;
}

// The PR acceptance command: profiling plus Perfetto export leaves the
// primary stdout bit-identical and drops both artifacts next to it.
TEST_F(CliTest, ProfileAndPerfettoLeaveStdoutIdentical) {
  const std::vector<std::string> base = {"cover", "--keys", Path("keys.txt"),
                                         "--rules", Path("universal.txt"),
                                         "--engine"};
  RunResult plain = Run(base);
  ASSERT_EQ(plain.code, 0) << plain.err;

  const std::string folded = Path("cover.folded");
  const std::string perfetto = Path("cover.perfetto.json");
  std::vector<std::string> observed = base;
  observed.push_back("--profile=" + folded);
  observed.push_back("--trace=" + perfetto);
  observed.push_back("--trace-format=perfetto");
  RunResult r = Run(observed);
  EXPECT_EQ(r.code, plain.code) << r.err;
  EXPECT_EQ(StripTimings(r.out), StripTimings(plain.out))
      << "--profile/--trace-format altered stdout";

  // Both artifacts exist; the Perfetto file is a Chrome Trace JSON.
  EXPECT_TRUE(fs::exists(folded));
  std::ifstream in(perfetto);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);

  // The text run report lands on stderr and includes the memory readout
  // the profiling plane added.
  EXPECT_NE(r.err.find("trace: cover"), std::string::npos);
  EXPECT_NE(r.err.find("memory: max_rss"), std::string::npos);
}

TEST_F(CliTest, ProfileAloneWritesDefaultCollapsedFile) {
  // Run inside the test dir so the default PROFILE_<command>.folded
  // artifact lands there.
  const fs::path cwd = fs::current_path();
  fs::current_path(dir_);
  RunResult r = Run({"check", "--keys", Path("keys.txt"), "--doc",
                     Path("doc.xml"), "--profile"});
  fs::current_path(cwd);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(fs::exists(dir_ / "PROFILE_check.folded"));
  // --profile implies the text run report on stderr.
  EXPECT_NE(r.err.find("trace: check"), std::string::npos);
}

TEST_F(CliTest, UnknownTraceFormatIsAnError) {
  RunResult r = Run({"check", "--keys", Path("keys.txt"), "--doc",
                     Path("doc.xml"), "--trace-format=xml"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown --trace-format"), std::string::npos);
}

// --------------------------------------------------------------------------
// Telemetry plane: structured log flags, per-constraint cost attribution
// and OpenMetrics exposition.

TEST_F(CliTest, LogFlagsLeaveStdoutIdentical) {
  const std::vector<std::string> base = {"check", "--keys", Path("keys.txt"),
                                         "--doc", Path("doc.xml")};
  RunResult plain = Run(base);
  ASSERT_EQ(plain.code, 0) << plain.err;
  EXPECT_EQ(plain.err, "") << "clean run must stay silent on stderr";

  for (const char* flag :
       {"--quiet", "--log-level=debug", "--log-level=error",
        "--log-format=ndjson"}) {
    std::vector<std::string> flagged = base;
    flagged.push_back(flag);
    RunResult r = Run(flagged);
    EXPECT_EQ(r.code, plain.code) << flag;
    EXPECT_EQ(r.out, plain.out) << flag << " altered stdout";
  }
}

TEST_F(CliTest, DebugLevelShowsDispatchRecord) {
  RunResult r = Run({"check", "--keys", Path("keys.txt"), "--doc",
                     Path("doc.xml"), "--log-level=debug"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.err.find("DEBUG"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("command=check"), std::string::npos) << r.err;
}

TEST_F(CliTest, ErrorsRenderThroughTheLogger) {
  RunResult r = Run({"check", "--keys", Path("nope.txt"), "--doc",
                     Path("doc.xml")});
  EXPECT_EQ(r.code, 1);
  // The logged record keeps the classic error: prefix and adds the
  // level tag.
  EXPECT_NE(r.err.find("ERROR"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("error: "), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("cannot open"), std::string::npos) << r.err;
}

TEST_F(CliTest, NdjsonErrorsAreJsonLines) {
  RunResult r = Run({"check", "--keys", Path("nope.txt"), "--doc",
                     Path("doc.xml"), "--log-format=ndjson"});
  EXPECT_EQ(r.code, 1);
  EXPECT_EQ(r.err.front(), '{') << r.err;
  EXPECT_NE(r.err.find("\"level\":\"error\""), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("cannot open"), std::string::npos) << r.err;
}

TEST_F(CliTest, QuietStillShowsErrors) {
  RunResult r = Run({"frobnicate", "--quiet"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos) << r.err;
}

TEST_F(CliTest, BadLogLevelIsAnError) {
  RunResult r = Run({"check", "--keys", Path("keys.txt"), "--doc",
                     Path("doc.xml"), "--log-level=banana"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown --log-level"), std::string::npos) << r.err;
}

TEST_F(CliTest, BadLogFormatIsAnError) {
  RunResult r = Run({"check", "--keys", Path("keys.txt"), "--doc",
                     Path("doc.xml"), "--log-format=yaml"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown --log-format"), std::string::npos) << r.err;
}

TEST_F(CliTest, LogFileCapturesRecordsInsteadOfStderr) {
  const std::string log_file = Path("run.log");
  RunResult r = Run({"check", "--keys", Path("keys.txt"), "--doc",
                     Path("doc.xml"), "--log-level=debug",
                     "--log-file=" + log_file});
  EXPECT_EQ(r.code, 0);
  EXPECT_EQ(r.err, "") << "records must go to the file, not stderr";
  std::ifstream in(log_file);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("command=check"), std::string::npos) << content;
}

TEST_F(CliTest, ExplainCostPrintsHotFirstTable) {
  Write("bad.xml", R"(<r><book isbn="1"/><book isbn="1"/></r>)");
  const std::vector<std::string> base = {"check", "--keys", Path("keys.txt"),
                                         "--doc", Path("bad.xml")};
  RunResult plain = Run(base);
  std::vector<std::string> explained = base;
  explained.push_back("--explain-cost");
  RunResult r = Run(explained);
  EXPECT_EQ(r.code, plain.code);
  EXPECT_EQ(r.out, plain.out) << "--explain-cost altered stdout";
  EXPECT_NE(r.err.find("constraint costs (hot first):"), std::string::npos)
      << r.err;
  EXPECT_NE(r.err.find("violations"), std::string::npos) << r.err;
}

// Extracts the integer value of `"name":` inside `json` (first match).
uint64_t JsonInt(const std::string& json, const std::string& name) {
  const std::regex pattern("\"" + name + "\":([0-9]+)");
  std::smatch match;
  if (!std::regex_search(json, match, pattern)) return 0;
  return std::stoull(match[1]);
}

// Sums every `"field":N` occurrence inside the constraint_costs array.
uint64_t SumCostField(const std::string& json, const std::string& field) {
  const size_t begin = json.find("\"constraint_costs\":[");
  if (begin == std::string::npos) return 0;
  const size_t end = json.find(']', begin);
  const std::string section = json.substr(begin, end - begin);
  const std::regex pattern("\"" + field + "\":([0-9]+)");
  uint64_t sum = 0;
  for (auto it = std::sregex_iterator(section.begin(), section.end(), pattern);
       it != std::sregex_iterator(); ++it) {
    sum += std::stoull((*it)[1]);
  }
  return sum;
}

// The acceptance criterion: per-constraint totals reconcile exactly with
// the aggregate metric counters in the same v3 run report — on both the
// tree-walking and the indexed check paths.
TEST_F(CliTest, ExplainCostReconcilesWithAggregateMetrics) {
  Write("bad.xml", R"(<r><book isbn="1"/><book isbn="1"/><book isbn="2"/>
                      <author name="a"/><author name="a"/></r>)");
  Write("two_keys.txt",
        "K1: (ε, (//book, {@isbn}))\nK2: (ε, (//author, {@name}))\n");
  for (bool indexed : {false, true}) {
    const std::string report_file =
        Path(indexed ? "cost_idx.json" : "cost_tree.json");
    std::vector<std::string> args = {"check",
                                     "--keys",
                                     Path("two_keys.txt"),
                                     "--doc",
                                     Path("bad.xml"),
                                     "--explain-cost",
                                     "--trace=" + report_file};
    if (indexed) args.push_back("--index");
    RunResult r = Run(args);
    EXPECT_EQ(r.code, 2) << r.err;

    std::ifstream in(report_file);
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    ASSERT_NE(json.find("\"version\":3"), std::string::npos) << json;
    ASSERT_NE(json.find("\"constraint_costs\":["), std::string::npos) << json;

    const uint64_t contexts = SumCostField(json, "contexts");
    const uint64_t tuples = SumCostField(json, "tuples_hashed");
    const uint64_t violations = SumCostField(json, "violations");
    EXPECT_GT(contexts, 0u) << json;
    EXPECT_GT(tuples, 0u) << json;
    EXPECT_GT(violations, 0u) << json;
    EXPECT_EQ(contexts, JsonInt(json, "check.contexts"))
        << (indexed ? "indexed" : "tree") << " contexts drifted: " << json;
    EXPECT_EQ(tuples, JsonInt(json, "check.tuples_hashed"))
        << (indexed ? "indexed" : "tree") << " tuples drifted: " << json;
    EXPECT_EQ(violations, JsonInt(json, "check.violations"))
        << (indexed ? "indexed" : "tree") << " violations drifted: " << json;
  }
}

TEST_F(CliTest, PropagateExplainCostAttributesTheFd) {
  RunResult r = Run({"propagate", "--keys", Path("keys.txt"), "--rules",
                     Path("rules.txt"), "--relation", "book", "--fd",
                     "isbn -> contact", "--explain-cost"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("constraint costs (hot first):"), std::string::npos)
      << r.err;
  EXPECT_NE(r.err.find("on book"), std::string::npos) << r.err;
}

TEST_F(CliTest, OpenMetricsFormatRendersExposition) {
  const std::vector<std::string> base = {"check", "--keys", Path("keys.txt"),
                                         "--doc", Path("doc.xml")};
  RunResult plain = Run(base);
  std::vector<std::string> flagged = base;
  flagged.push_back("--metrics-format=openmetrics");
  RunResult r = Run(flagged);
  EXPECT_EQ(r.code, plain.code);
  EXPECT_EQ(r.out, plain.out) << "openmetrics exposition altered stdout";
  EXPECT_NE(r.err.find("# TYPE xmlprop_"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("# EOF"), std::string::npos) << r.err;
}

TEST_F(CliTest, UnknownMetricsFormatIsAnError) {
  RunResult r = Run({"check", "--keys", Path("keys.txt"), "--doc",
                     Path("doc.xml"), "--metrics-format=xml"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown --metrics-format"), std::string::npos);
}

TEST_F(CliTest, MetricsOutWritesOpenMetricsFile) {
  const std::string metrics_file = Path("metrics.om");
  RunResult r = Run({"check", "--keys", Path("keys.txt"), "--doc",
                     Path("doc.xml"), "--metrics-out=" + metrics_file});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream in(metrics_file);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("xmlprop_"), std::string::npos) << content;
  EXPECT_EQ(content.substr(content.size() - 6), "# EOF\n");
}

TEST_F(CliTest, CrashDumpFlagInstallsTheHandlerPath) {
  const std::string dump_file = Path("crash.dump");
  RunResult r = Run({"check", "--keys", Path("keys.txt"), "--doc",
                     Path("doc.xml"), "--crash-dump=" + dump_file});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(std::string(obs::CrashDumpPath()), dump_file);
}

TEST_F(CliTest, NoFlightRecorderFlagDisablesTheRing) {
  RunResult r = Run({"check", "--keys", Path("keys.txt"), "--doc",
                     Path("doc.xml"), "--no-flight-recorder"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_FALSE(obs::FlightRecorderEnabled());
  obs::SetFlightRecorderEnabled(true);  // restore for other tests
}

}  // namespace
}  // namespace xmlprop
