// Differential tests of the incremental plane: after any sequence of
// subtree inserts and deletes, a DeltaDoc's patched index must answer
// queries identically to an index built from scratch, and Violations()
// must equal a full CheckAll over the current document — including under
// a forced multi-thread fan-out.

#include "keys/delta.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "paper_fixtures.h"
#include "synth/doc_generator.h"
#include "xml/parser.h"
#include "xml/tree_index.h"

namespace xmlprop {
namespace {

using testing_fixtures::PaperKeys;

Tree Doc(std::string_view xml) {
  Result<Tree> t = ParseXml(xml);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(t).value();
}

std::vector<XmlKey> Keys(std::initializer_list<const char*> texts) {
  std::vector<XmlKey> out;
  for (const char* t : texts) {
    Result<XmlKey> k = XmlKey::Parse(t);
    EXPECT_TRUE(k.ok()) << k.status().ToString();
    out.push_back(std::move(k).value());
  }
  return out;
}

void ExpectSameViolations(const std::vector<TaggedViolation>& got,
                          const std::vector<TaggedViolation>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key_index, want[i].key_index) << "violation " << i;
    EXPECT_EQ(got[i].violation.kind, want[i].violation.kind) << i;
    EXPECT_EQ(got[i].violation.context, want[i].violation.context) << i;
    EXPECT_EQ(got[i].violation.node1, want[i].violation.node1) << i;
    EXPECT_EQ(got[i].violation.node2, want[i].violation.node2) << i;
    EXPECT_EQ(got[i].violation.attribute, want[i].violation.attribute) << i;
  }
}

// The ground truth: a from-scratch index over the current tree, checked
// sequentially and with a forced thread fan-out (grain 1 so even tiny
// documents split into many tasks).
void ExpectMatchesFullCheck(const DeltaDoc& doc) {
  TreeIndex fresh(doc.tree());
  const std::vector<TaggedViolation> batch = CheckAll(fresh, doc.keys());
  ExpectSameViolations(doc.Violations(), batch);
  EXPECT_EQ(doc.violation_count(), batch.size());

  ThreadPool pool(3);
  CheckOptions options;
  options.pool = &pool;
  options.contexts_per_task = 1;
  ExpectSameViolations(CheckAll(fresh, doc.keys(), options), batch);
}

// The patched index must agree with a from-scratch one on every query
// about attached elements.
void ExpectIndexMatchesFresh(const DeltaDoc& doc) {
  TreeIndex fresh(doc.tree());
  const TreeIndex& patched = doc.index();
  EXPECT_EQ(patched.value_count(), fresh.value_count());
  EXPECT_EQ(patched.element_count(), fresh.element_count());
  EXPECT_EQ(patched.attribute_count(), fresh.attribute_count());
  const size_t labels = fresh.label_count();
  for (size_t l = 0; l < labels; ++l) {
    EXPECT_EQ(patched.ElementsWithLabel(static_cast<LabelId>(l)),
              fresh.ElementsWithLabel(static_cast<LabelId>(l)))
        << "label " << l;
  }
  for (NodeId id : doc.tree().DescendantsOrSelf(doc.tree().root())) {
    EXPECT_EQ(patched.pre(id), fresh.pre(id)) << "pre of " << id;
    EXPECT_EQ(patched.pre_end(id), fresh.pre_end(id)) << "pre_end of " << id;
    for (size_t l = 0; l < labels; ++l) {
      const LabelId label = static_cast<LabelId>(l);
      const TreeIndex::NodeSpan sp = patched.ChildrenWithLabel(id, label);
      const TreeIndex::NodeSpan sf = fresh.ChildrenWithLabel(id, label);
      EXPECT_EQ(std::vector<NodeId>(sp.begin(), sp.end()),
                std::vector<NodeId>(sf.begin(), sf.end()))
          << "children of " << id << " label " << l;
      EXPECT_EQ(patched.AttributeWithLabel(id, label),
                fresh.AttributeWithLabel(id, label))
          << "attr of " << id << " label " << l;
    }
  }
}

TEST(DeltaDocTest, SeedCheckMatchesBatch) {
  DeltaDoc doc(testing_fixtures::Fig1Tree(), PaperKeys());
  ExpectMatchesFullCheck(doc);
  ExpectIndexMatchesFresh(doc);
}

TEST(DeltaDocTest, InsertIntroducingDuplicateIsReported) {
  DeltaDoc doc(Doc(R"(<r><book isbn="1"/></r>)"),
               Keys({"(ε, (//book, {@isbn}))"}));
  EXPECT_EQ(doc.violation_count(), 0u);

  Result<EditDelta> d =
      doc.InsertSubtree(doc.tree().root(), Doc(R"(<book isbn="1"/>)"));
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->elements_added, 1u);
  ASSERT_EQ(d->added.size(), 1u);
  EXPECT_EQ(d->added[0].violation.kind, KeyViolation::Kind::kDuplicateValues);
  EXPECT_TRUE(d->removed.empty());
  ExpectMatchesFullCheck(doc);
  ExpectIndexMatchesFresh(doc);
}

TEST(DeltaDocTest, DeleteRetiresViolation) {
  DeltaDoc doc(Doc(R"(<r><book isbn="1"/><book isbn="1"/><book isbn="2"/></r>)"),
               Keys({"(ε, (//book, {@isbn}))"}));
  EXPECT_EQ(doc.violation_count(), 1u);

  const NodeId second = doc.tree().node(doc.tree().root()).children[1];
  Result<EditDelta> d = doc.DeleteSubtree(second);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->elements_removed, 1u);
  ASSERT_EQ(d->removed.size(), 1u);
  EXPECT_EQ(d->removed[0].violation.kind, KeyViolation::Kind::kDuplicateValues);
  EXPECT_EQ(doc.violation_count(), 0u);
  ExpectMatchesFullCheck(doc);
  ExpectIndexMatchesFresh(doc);
}

TEST(DeltaDocTest, RecheckIsLocalizedToDirtyRange) {
  // Many books, each with chapters; inserting one chapter into one book
  // re-checks only that book's (key, context) pair — not every book.
  std::string xml = "<r>";
  for (int b = 0; b < 50; ++b) {
    xml += "<book isbn=\"" + std::to_string(b) + "\">";
    xml += "<chapter number=\"1\"/><chapter number=\"2\"/>";
    xml += "</book>";
  }
  xml += "</r>";
  DeltaDoc doc(Doc(xml), Keys({"(ε, (//book, {@isbn}))",
                               "(//book, (chapter, {@number}))"}));

  const NodeId book7 = doc.tree().node(doc.tree().root()).children[7];
  Result<EditDelta> d =
      doc.InsertSubtree(book7, Doc(R"(<chapter number="3"/>)"));
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  // 51 live pairs for the book key's root context + 50 chapter contexts;
  // the chapter insert re-checks exactly one of them (the edited book; no
  // new book appeared, so the root context is skipped).
  EXPECT_EQ(d->pairs_total, 51u);
  EXPECT_EQ(d->pairs_rechecked, 1u);
  EXPECT_TRUE(d->added.empty());
  ExpectMatchesFullCheck(doc);
}

TEST(DeltaDocTest, InsertRejectsInvalidAndDetachedParents) {
  DeltaDoc doc(Doc(R"(<r><a/><b/></r>)"), {});
  EXPECT_FALSE(doc.InsertSubtree(999, Doc("<x/>")).ok());

  const NodeId a = doc.tree().node(doc.tree().root()).children[0];
  ASSERT_TRUE(doc.DeleteSubtree(a).ok());
  EXPECT_FALSE(doc.InsertSubtree(a, Doc("<x/>")).ok());
  EXPECT_FALSE(doc.DeleteSubtree(a).ok());
  EXPECT_FALSE(doc.DeleteSubtree(doc.tree().root()).ok());
  ExpectIndexMatchesFresh(doc);
}

// Random edit sequences: after every insert/delete the patched state must
// agree with a from-scratch check, sequential and threaded.
class DeltaDocProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeltaDocProperty, RandomEditSequencesMatchFullCheck) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7129 + 5);
  RandomTreeSpec spec;
  spec.max_depth = 3;
  spec.max_children = 3;

  DeltaDoc doc(RandomTree(spec, &rng), PaperKeys());
  RandomTreeSpec frag_spec = spec;
  frag_spec.max_depth = 2;

  for (int step = 0; step < 8; ++step) {
    std::vector<NodeId> attached =
        doc.tree().DescendantsOrSelf(doc.tree().root());
    if (attached.size() > 1 && rng.Bernoulli(0.35)) {
      // Delete a random non-root attached subtree.
      const NodeId victim =
          attached[1 + rng.UniformIndex(attached.size() - 1)];
      Result<EditDelta> d = doc.DeleteSubtree(victim);
      ASSERT_TRUE(d.ok()) << d.status().ToString();
      EXPECT_EQ(d->elements_removed,
                static_cast<size_t>(d->dirty_end - d->dirty_begin));
    } else {
      // Insert a random fragment (relabeled root) at a random element.
      Tree fragment = RandomTree(frag_spec, &rng);
      Tree relabeled(rng.Choose(spec.labels));
      for (NodeId a : fragment.node(fragment.root()).attributes) {
        relabeled
            .CreateAttribute(relabeled.root(), fragment.node(a).label,
                             fragment.node(a).value)
            .ok();
      }
      for (NodeId c : fragment.node(fragment.root()).children) {
        if (fragment.node(c).kind == NodeKind::kText) {
          relabeled.CreateText(relabeled.root(), fragment.node(c).value);
        } else {
          EXPECT_TRUE(relabeled.Graft(relabeled.root(), fragment, c).ok());
        }
      }
      const NodeId parent = attached[rng.UniformIndex(attached.size())];
      Result<EditDelta> d = doc.InsertSubtree(parent, relabeled);
      ASSERT_TRUE(d.ok()) << d.status().ToString();
      EXPECT_EQ(d->elements_added,
                static_cast<size_t>(d->dirty_end - d->dirty_begin));
    }
    ExpectMatchesFullCheck(doc);
    ExpectIndexMatchesFresh(doc);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaDocProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace xmlprop
