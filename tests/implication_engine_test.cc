// Property tests for the persistent ImplicationEngine: on random
// synthetic workloads, every cached/batched/parallel verdict must be
// identical to the uncached free-function path, and the covers built
// through the engine must be FD-set identical to the engine-off covers.

#include "keys/implication_engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/gminimum_cover.h"
#include "core/minimum_cover.h"
#include "core/naive_cover.h"
#include "core/propagation.h"
#include "keys/implication.h"
#include "synth/workload.h"

namespace xmlprop {
namespace {

SyntheticWorkload MakeWorkloadOrDie(size_t fields, size_t depth, size_t keys,
                                    uint64_t seed) {
  WorkloadSpec spec;
  spec.fields = fields;
  spec.depth = depth;
  spec.keys = keys;
  spec.seed = seed;
  Result<SyntheticWorkload> w = MakeWorkload(spec);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

// Random identification queries over the workload's table tree: contexts
// and targets are root-to-variable / variable-to-descendant paths (the
// shapes the propagation algorithms issue), attribute sets are drawn from
// the key attributes — plus mutated variants that exercise negative
// verdicts and the composition recursion.
std::vector<XmlKey> RandomQueries(const SyntheticWorkload& w, Rng* rng,
                                  size_t count) {
  std::vector<std::string> attr_pool;
  for (const XmlKey& k : w.keys) {
    for (const std::string& a : k.attributes()) attr_pool.push_back(a);
  }
  attr_pool.push_back("nonexistent");

  std::vector<XmlKey> queries;
  const int vars = static_cast<int>(w.table.size());
  while (queries.size() < count) {
    const int v = static_cast<int>(rng->UniformIndex(
        static_cast<size_t>(vars)));
    std::vector<int> chain = w.table.AncestorChain(v);
    const int u = chain[rng->UniformIndex(chain.size())];
    Result<PathExpr> rho = w.table.PathBetween(u, v);
    if (!rho.ok()) continue;
    std::vector<std::string> attrs;
    const int n_attrs = rng->UniformInt(0, 2);
    for (int i = 0; i < n_attrs; ++i) {
      attrs.push_back(attr_pool[rng->UniformIndex(attr_pool.size())]);
    }
    PathExpr context = w.table.PathFromRoot(u);
    PathExpr target = rho->WithoutTrailingAttribute();
    if (rng->Bernoulli(0.25)) {
      // Wildcarded variant: prepend "//" to the target so the witness
      // containment and composition splits see descendant atoms.
      target = PathExpr::AnyDescendant().Concat(target);
    }
    queries.emplace_back("", context, target, attrs);
  }
  return queries;
}

class EngineSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineSeeds, VerdictsMatchUncachedPath) {
  const uint64_t seed = GetParam();
  SyntheticWorkload w = MakeWorkloadOrDie(12, 6, 8, seed);
  Rng rng(seed * 977 + 1);

  EngineOptions options;
  options.parallelism = 1;  // sequential: pure cache behavior under test
  ImplicationEngine engine(w.keys, options);

  std::vector<XmlKey> queries = RandomQueries(w, &rng, 120);
  for (const XmlKey& phi : queries) {
    const bool expected = ImpliesIdentification(w.keys, phi);
    EXPECT_EQ(engine.ImpliesIdentification(phi), expected)
        << "cold verdict diverged on " << phi.ToString();
    EXPECT_EQ(engine.ImpliesIdentification(phi), expected)
        << "warm (cached) verdict diverged on " << phi.ToString();
    const PathExpr full = phi.context().Concat(phi.target());
    EXPECT_EQ(engine.AttributesExist(full, phi.attributes()),
              AttributesExist(w.keys, full, phi.attributes()))
        << "exist verdict diverged on " << phi.ToString();
    EXPECT_EQ(engine.Implies(phi), Implies(w.keys, phi))
        << "full implication diverged on " << phi.ToString();
  }
  EXPECT_GT(engine.counters().hits(), 0u) << "cache never hit";
}

TEST_P(EngineSeeds, BatchMatchesSequentialUnderThreadPool) {
  const uint64_t seed = GetParam();
  SyntheticWorkload w = MakeWorkloadOrDie(10, 5, 6, seed);
  Rng rng(seed * 31 + 7);

  EngineOptions parallel;
  parallel.parallelism = 4;
  parallel.parallel_threshold = 2;
  ImplicationEngine engine(w.keys, parallel);

  std::vector<XmlKey> queries = RandomQueries(w, &rng, 60);
  std::vector<char> batched = engine.ImpliesIdentificationBatch(queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batched[i] != 0, ImpliesIdentification(w.keys, queries[i]))
        << "batched verdict diverged on " << queries[i].ToString();
  }
  EXPECT_GT(engine.counters().parallel_batches, 0u)
      << "batch never fanned out";
  // A second, fully-cached batch must agree with the first.
  EXPECT_EQ(engine.ImpliesIdentificationBatch(queries), batched);
}

TEST_P(EngineSeeds, MinimumCoverIdenticalAcrossEngineModes) {
  const uint64_t seed = GetParam();
  SyntheticWorkload w = MakeWorkloadOrDie(15, 8, 10, seed);

  PropagationStats off_stats;
  Result<FdSet> off = MinimumCover(w.keys, w.table, &off_stats);
  ASSERT_TRUE(off.ok());

  // Sequential engine, parallel engine, and a warm re-run on the same
  // engine must all reproduce the engine-off cover exactly (not just up
  // to closure — the construction is deterministic).
  EngineOptions seq;
  seq.parallelism = 1;
  ImplicationEngine seq_engine(w.keys, seq);
  EngineOptions par;
  par.parallelism = 4;
  par.parallel_threshold = 2;
  ImplicationEngine par_engine(w.keys, par);

  PropagationStats on_stats;
  Result<FdSet> seq_cover = MinimumCover(seq_engine, w.table, &on_stats);
  Result<FdSet> par_cover = MinimumCover(par_engine, w.table);
  Result<FdSet> warm_cover = MinimumCover(par_engine, w.table);
  ASSERT_TRUE(seq_cover.ok());
  ASSERT_TRUE(par_cover.ok());
  ASSERT_TRUE(warm_cover.ok());

  EXPECT_EQ(seq_cover->ToString(), off->ToString());
  EXPECT_EQ(par_cover->ToString(), off->ToString());
  EXPECT_EQ(warm_cover->ToString(), off->ToString());
  EXPECT_TRUE(seq_cover->EquivalentTo(*off));

  // The engine changes how queries are answered, never how many are
  // asked: the Section 6 implication-call accounting must agree.
  EXPECT_EQ(on_stats.implication_calls, off_stats.implication_calls);
  EXPECT_GT(on_stats.cache_hits, 0u);
}

TEST_P(EngineSeeds, NaiveCoverIdenticalUnderParallelFanOut) {
  const uint64_t seed = GetParam();
  SyntheticWorkload w = MakeWorkloadOrDie(8, 4, 6, seed);

  NaiveOptions options;
  options.max_fields = 10;
  PropagationStats off_stats;
  Result<FdSet> off = AllPropagatedFds(w.keys, w.table, options, &off_stats);
  ASSERT_TRUE(off.ok());

  EngineOptions par;
  par.parallelism = 4;
  par.parallel_threshold = 2;
  ImplicationEngine engine(w.keys, par);
  PropagationStats on_stats;
  Result<FdSet> on = AllPropagatedFds(engine, w.table, options, &on_stats);
  ASSERT_TRUE(on.ok());

  EXPECT_EQ(on->ToString(), off->ToString());
  EXPECT_EQ(on_stats.implication_calls, off_stats.implication_calls);
  EXPECT_EQ(on_stats.exist_calls, off_stats.exist_calls);
}

TEST_P(EngineSeeds, GCoverAndPropagationAgreeWithEngineOff) {
  const uint64_t seed = GetParam();
  SyntheticWorkload w = MakeWorkloadOrDie(12, 6, 8, seed);
  ImplicationEngine engine(w.keys);

  for (const Fd& fd : {w.true_fd, w.false_fd}) {
    Result<bool> off = CheckPropagation(w.keys, w.table, fd);
    Result<bool> on = CheckPropagation(engine, w.table, fd);
    ASSERT_TRUE(off.ok());
    ASSERT_TRUE(on.ok());
    EXPECT_EQ(*on, *off);
  }

  Result<GMinimumCover> g_off = GMinimumCover::Build(w.keys, w.table);
  Result<GMinimumCover> g_on = GMinimumCover::Build(engine, w.table);
  ASSERT_TRUE(g_off.ok());
  ASSERT_TRUE(g_on.ok());
  EXPECT_EQ(g_on->cover().ToString(), g_off->cover().ToString());
  for (const Fd& fd : {w.true_fd, w.false_fd}) {
    Result<bool> off = g_off->Check(fd);
    Result<bool> on = g_on->Check(fd);
    ASSERT_TRUE(off.ok());
    ASSERT_TRUE(on.ok());
    EXPECT_EQ(*on, *off);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSeeds,
                         ::testing::Values(1u, 7u, 42u, 1337u, 90210u));

}  // namespace
}  // namespace xmlprop
