#include <gtest/gtest.h>

#include "core/propagation.h"
#include "paper_fixtures.h"

namespace xmlprop {
namespace {

using testing_fixtures::PaperKeys;
using testing_fixtures::PaperTransformation;
using testing_fixtures::RuleTable;
using testing_fixtures::UniversalTable;

TEST(ExplainTest, PositiveCaseShowsDerivation) {
  // Example 4.2 positive: isbn -> contact on Rule(book).
  TableTree book = RuleTable(PaperTransformation(), "book");
  Result<Fd> fd = ParseFd(book.schema(), "isbn -> contact");
  ASSERT_TRUE(fd.ok());
  Result<PropagationTrace> trace =
      ExplainPropagation(PaperKeys(), book, *fd);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace->propagated);
  ASSERT_EQ(trace->rhs.size(), 1u);
  const auto& per = trace->rhs[0];
  EXPECT_TRUE(per.key_found);
  EXPECT_TRUE(per.non_null_ok);
  // The walk visits Xr then Xa; Xa is keyed by @isbn and the contact
  // variable is unique below it (K7).
  ASSERT_GE(per.steps.size(), 2u);
  EXPECT_EQ(per.steps[0].var, "Xr");
  EXPECT_EQ(per.steps[1].var, "Xa");
  EXPECT_TRUE(per.steps[1].keyed);
  EXPECT_TRUE(per.steps[1].unique);
  std::string text = trace->ToString();
  EXPECT_NE(text.find("PROPAGATED"), std::string::npos);
  EXPECT_NE(text.find("//book"), std::string::npos);
}

TEST(ExplainTest, NegativeCaseShowsFailedChecks) {
  // Example 4.2 negative: (inChapt, number) -> name on Rule(section).
  TableTree section = RuleTable(PaperTransformation(), "section");
  Result<Fd> fd = ParseFd(section.schema(), "inChapt, number -> name");
  ASSERT_TRUE(fd.ok());
  Result<PropagationTrace> trace =
      ExplainPropagation(PaperKeys(), section, *fd);
  ASSERT_TRUE(trace.ok());
  EXPECT_FALSE(trace->propagated);
  const auto& per = trace->rhs[0];
  EXPECT_FALSE(per.key_found);
  // Both non-root targets fail the keyed check.
  for (size_t i = 1; i < per.steps.size(); ++i) {
    EXPECT_FALSE(per.steps[i].keyed) << per.steps[i].var;
  }
  EXPECT_NE(trace->ToString().find("NO keyed ancestor"), std::string::npos);
}

TEST(ExplainTest, NullRiskNamed) {
  // isbn, title -> contact: title carries the null risk.
  TableTree book = RuleTable(PaperTransformation(), "book");
  Result<Fd> fd = ParseFd(book.schema(), "isbn, title -> contact");
  ASSERT_TRUE(fd.ok());
  Result<PropagationTrace> trace =
      ExplainPropagation(PaperKeys(), book, *fd);
  ASSERT_TRUE(trace.ok());
  EXPECT_FALSE(trace->propagated);
  const auto& per = trace->rhs[0];
  EXPECT_TRUE(per.key_found);  // value-wise it would propagate
  EXPECT_FALSE(per.non_null_ok);
  ASSERT_EQ(per.null_risk_fields, std::vector<std::string>{"title"});
  EXPECT_EQ(per.non_null_fields, std::vector<std::string>{"isbn"});
  EXPECT_NE(trace->ToString().find("NULL RISK"), std::string::npos);
}

TEST(ExplainTest, VerdictAlwaysMatchesCheckPropagation) {
  TableTree u = UniversalTable();
  std::vector<XmlKey> sigma = PaperKeys();
  const char* fds[] = {
      "bookIsbn -> bookTitle",
      "bookIsbn -> bookAuthor",
      "bookIsbn, chapNum -> chapName",
      "chapNum -> chapName",
      "bookIsbn, chapNum, secNum -> secName",
      "bookIsbn, bookTitle -> authContact",
      "secName -> secNum",
      "bookIsbn -> bookIsbn",
      "bookIsbn, chapNum -> bookTitle, chapName",
  };
  for (const char* text : fds) {
    Result<Fd> fd = ParseFd(u.schema(), text);
    ASSERT_TRUE(fd.ok());
    Result<bool> direct = CheckPropagation(sigma, u, *fd);
    Result<PropagationTrace> trace = ExplainPropagation(sigma, u, *fd);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(trace.ok());
    EXPECT_EQ(*direct, trace->propagated) << text;
  }
}

TEST(ExplainTest, TrivialFdMarked) {
  TableTree book = RuleTable(PaperTransformation(), "book");
  Result<Fd> fd = ParseFd(book.schema(), "isbn -> isbn");
  ASSERT_TRUE(fd.ok());
  Result<PropagationTrace> trace =
      ExplainPropagation(PaperKeys(), book, *fd);
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->propagated);
  EXPECT_TRUE(trace->rhs[0].trivial);
  EXPECT_NE(trace->ToString().find("trivial"), std::string::npos);
}

TEST(ExplainTest, RejectsMalformedFd) {
  TableTree book = RuleTable(PaperTransformation(), "book");
  EXPECT_FALSE(
      ExplainPropagation(PaperKeys(), book, Fd(AttrSet(2), AttrSet(2)))
          .ok());
}

}  // namespace
}  // namespace xmlprop
