#include "synth/doc_generator.h"

#include <gtest/gtest.h>

#include "keys/satisfaction.h"
#include "paper_fixtures.h"
#include "xml/parser.h"

namespace xmlprop {
namespace {

using testing_fixtures::PaperKeys;

TEST(RandomTreeTest, RespectsDepthBound) {
  Rng rng(3);
  RandomTreeSpec spec;
  spec.max_depth = 2;
  Tree t = RandomTree(spec, &rng);
  for (NodeId n = 0; n < static_cast<NodeId>(t.size()); ++n) {
    if (t.node(n).kind != NodeKind::kElement) continue;
    int depth = 0;
    for (NodeId c = n; c != t.root(); c = t.node(c).parent) ++depth;
    EXPECT_LE(depth, 2);
  }
}

TEST(RandomTreeTest, UsesConfiguredAlphabets) {
  Rng rng(4);
  RandomTreeSpec spec;
  spec.labels = {"only"};
  spec.attributes = {"a"};
  Tree t = RandomTree(spec, &rng);
  for (NodeId n = 1; n < static_cast<NodeId>(t.size()); ++n) {
    if (t.node(n).kind == NodeKind::kElement) {
      EXPECT_EQ(t.node(n).label, "only");
    } else if (t.node(n).kind == NodeKind::kAttribute) {
      EXPECT_EQ(t.node(n).label, "a");
    }
  }
}

TEST(WithoutSubtreeTest, RemovesElementSubtree) {
  Result<Tree> t = ParseXml("<r><a><b/></a><c/></r>");
  ASSERT_TRUE(t.ok());
  NodeId a = t->node(t->root()).children[0];
  Result<Tree> pruned = WithoutSubtree(*t, a);
  ASSERT_TRUE(pruned.ok());
  ASSERT_EQ(pruned->node(pruned->root()).children.size(), 1u);
  EXPECT_EQ(pruned->node(pruned->node(pruned->root()).children[0]).label,
            "c");
}

TEST(WithoutSubtreeTest, RemovesAttribute) {
  Result<Tree> t = ParseXml("<r x=\"1\" y=\"2\"/>");
  ASSERT_TRUE(t.ok());
  NodeId x = *t->FindAttribute(t->root(), "x");
  Result<Tree> pruned = WithoutSubtree(*t, x);
  ASSERT_TRUE(pruned.ok());
  EXPECT_FALSE(pruned->AttributeValue(pruned->root(), "x").has_value());
  EXPECT_EQ(pruned->AttributeValue(pruned->root(), "y"), "2");
}

TEST(WithoutSubtreeTest, RootRejected) {
  Result<Tree> t = ParseXml("<r/>");
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(WithoutSubtree(*t, t->root()).ok());
}

TEST(RepairTest, FixesMissingAttribute) {
  Result<Tree> t = ParseXml("<r><book/><book isbn=\"1\"/></r>");
  ASSERT_TRUE(t.ok());
  Result<std::vector<XmlKey>> keys = ParseKeySet("(ε, (//book, {@isbn}))");
  ASSERT_TRUE(keys.ok());
  Result<Tree> repaired = RepairToSatisfy(*t, *keys);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_TRUE(SatisfiesAll(*repaired, *keys));
}

TEST(RepairTest, FixesDuplicateValues) {
  Result<Tree> t = ParseXml("<r><book isbn=\"1\"/><book isbn=\"1\"/></r>");
  ASSERT_TRUE(t.ok());
  Result<std::vector<XmlKey>> keys = ParseKeySet("(ε, (//book, {@isbn}))");
  ASSERT_TRUE(keys.ok());
  Result<Tree> repaired = RepairToSatisfy(*t, *keys);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(SatisfiesAll(*repaired, *keys));
  // Both books survive (values bumped, not deleted).
  EXPECT_EQ(repaired->ChildElements(repaired->root(), "book").size(), 2u);
}

TEST(RepairTest, DeletesForAttributelessKeys) {
  Result<Tree> t =
      ParseXml("<r><book><title>A</title><title>B</title></book></r>");
  ASSERT_TRUE(t.ok());
  Result<std::vector<XmlKey>> keys = ParseKeySet("(//book, (title, {}))");
  ASSERT_TRUE(keys.ok());
  Result<Tree> repaired = RepairToSatisfy(*t, *keys);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(SatisfiesAll(*repaired, *keys));
}

TEST(RepairTest, AlreadySatisfyingUnchangedSize) {
  Result<Tree> t = ParseXml("<r><book isbn=\"1\"/></r>");
  ASSERT_TRUE(t.ok());
  Result<std::vector<XmlKey>> keys = ParseKeySet("(ε, (//book, {@isbn}))");
  ASSERT_TRUE(keys.ok());
  Result<Tree> repaired = RepairToSatisfy(*t, *keys);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->size(), t->size());
}

class RepairProperty : public ::testing::TestWithParam<int> {};

TEST_P(RepairProperty, RandomTreesRepairToSatisfyPaperKeys) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6151 + 3);
  std::vector<XmlKey> sigma = PaperKeys();
  RandomTreeSpec spec;
  Result<Tree> tree = RandomSatisfyingTree(spec, sigma, &rng);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_TRUE(SatisfiesAll(*tree, sigma));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace xmlprop
