#include "relational/closure_index.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "relational/cover.h"
#include "relational/fd_set.h"
#include "relational/schema.h"

namespace xmlprop {
namespace {

AttrSet RandomSet(Rng& rng, size_t universe, int max_members) {
  AttrSet s(universe);
  if (universe == 0) return s;
  const int k = rng.UniformInt(0, max_members);
  for (int i = 0; i < k; ++i) s.Set(rng.UniformIndex(universe));
  return s;
}

std::vector<Fd> RandomFds(Rng& rng, size_t universe, size_t count) {
  std::vector<Fd> fds;
  fds.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Small LHS keeps closures non-trivial; an occasional empty LHS
    // exercises the constant-FD firing path.
    fds.emplace_back(RandomSet(rng, universe, 3), RandomSet(rng, universe, 2));
  }
  return fds;
}

RelationSchema WideSchema(size_t arity) {
  std::vector<std::string> attrs;
  attrs.reserve(arity);
  for (size_t i = 0; i < arity; ++i) attrs.push_back("a" + std::to_string(i));
  return RelationSchema("R", std::move(attrs));
}

// The tentpole property: on 1k random FD sets — spanning universes around
// the bitset word boundaries, empty universes, empty and full start sets,
// and skip_index queries — the compiled kernel computes exactly the seed
// fixpoint's closure.
TEST(ClosureIndexPropertyTest, MatchesSeedClosureOnRandomFdSets) {
  const std::vector<size_t> universes = {0, 1, 2, 7, 64, 65, 130};
  Rng rng(20030411);  // deterministic: the paper's ICDE year + month + day
  ClosureScratch scratch;
  ClosureScratch merged_scratch;
  for (int round = 0; round < 1000; ++round) {
    const size_t universe = universes[rng.UniformIndex(universes.size())];
    const size_t count = static_cast<size_t>(rng.UniformInt(0, 24));
    std::vector<Fd> fds = RandomFds(rng, universe, count);
    ClosureIndex index(fds, universe);
    ClosureIndexOptions merged_options;
    merged_options.merge_same_lhs = true;
    ClosureIndex merged(fds, universe, merged_options);

    std::vector<AttrSet> starts = {AttrSet(universe),
                                   RandomSet(rng, universe, 4)};
    AttrSet full(universe);
    for (size_t a = 0; a < universe; ++a) full.Set(a);
    starts.push_back(full);

    for (const AttrSet& start : starts) {
      const AttrSet expected = ClosureOver(fds, start);
      EXPECT_EQ(index.Closure(start, &scratch), expected);
      EXPECT_EQ(merged.Closure(start, &merged_scratch), expected);
      const AttrSet target = RandomSet(rng, universe, 3);
      EXPECT_EQ(index.Reaches(start, target, &scratch),
                target.IsSubsetOf(expected));
      EXPECT_EQ(merged.Reaches(start, target, &merged_scratch),
                target.IsSubsetOf(expected));
      if (!fds.empty()) {
        const size_t skip = rng.UniformIndex(fds.size());
        EXPECT_EQ(index.Closure(start, &scratch, skip),
                  ClosureOver(fds, start, skip));
        EXPECT_EQ(index.Reaches(start, target, &scratch, skip),
                  target.IsSubsetOf(ClosureOver(fds, start, skip)));
      }
    }
  }
}

// The compile-time plan split: a heavy adjacency (many multi-attribute
// LHSs over a narrow universe) must select the dense word-plane plan, a
// light one over a wide universe the counter plan — and the two must be
// observationally identical to the seed fixpoint either way, including
// under skip queries and incremental patches.
TEST(ClosureIndexPropertyTest, BothPlansMatchSeedOnPlanExtremes) {
  Rng rng(42);
  for (int round = 0; round < 50; ++round) {
    // Dense-selecting shape: Σ|LHS| ≈ 4×count over a one-word universe.
    const size_t universe = 24;
    std::vector<Fd> fds;
    for (size_t i = 0; i < 40; ++i) {
      AttrSet lhs = RandomSet(rng, universe, 6);
      lhs.Set(rng.UniformIndex(universe));  // never empty: keep Σ|LHS| high
      fds.emplace_back(std::move(lhs), RandomSet(rng, universe, 2));
    }
    ClosureIndex dense(fds, universe);
    ASSERT_TRUE(dense.dense_plan());
    // Counter-selecting shape: the same FDs spread over a universe whose
    // word plane outweighs the adjacency.
    std::vector<Fd> sparse_fds = RandomFds(rng, 600, 40);
    ClosureIndex counters(sparse_fds, 600);
    ASSERT_FALSE(counters.dense_plan());

    ClosureScratch scratch;
    for (int q = 0; q < 10; ++q) {
      const AttrSet start = RandomSet(rng, universe, 4);
      const size_t skip = rng.UniformIndex(fds.size());
      EXPECT_EQ(dense.Closure(start, &scratch, skip),
                ClosureOver(fds, start, skip));
      const AttrSet target = RandomSet(rng, universe, 2);
      EXPECT_EQ(dense.Reaches(start, target, &scratch, skip),
                target.IsSubsetOf(ClosureOver(fds, start, skip)));

      const AttrSet sparse_start = RandomSet(rng, 600, 4);
      EXPECT_EQ(counters.Closure(sparse_start, &scratch),
                ClosureOver(sparse_fds, sparse_start));
    }

    // Patches must keep the dense word plane in sync too.
    const size_t f = rng.UniformIndex(fds.size());
    const std::vector<size_t> members = fds[f].lhs.ToVector();
    dense.ShrinkLhs(f, members[0]);
    fds[f].lhs.Reset(members[0]);
    const size_t g = rng.UniformIndex(fds.size());
    dense.Deactivate(g);
    fds[g].lhs = AttrSet(universe);
    fds[g].rhs = AttrSet(universe);
    for (int q = 0; q < 5; ++q) {
      const AttrSet start = RandomSet(rng, universe, 4);
      EXPECT_EQ(dense.Closure(start, &scratch), ClosureOver(fds, start));
    }
  }
}

// Epoch wraparound: park the scratch epoch just below the uint32 wrap and
// run queries across it. The wrap resets stamps wholesale; a stale counter
// leaking through would surface as a wrong closure.
TEST(ClosureIndexTest, EpochWraparoundKeepsQueriesCorrect) {
  Rng rng(7);
  // Wide universe so the compile picks the counter plan — the epoch
  // machinery belongs to it alone (the dense plan carries no cross-query
  // state at all).
  const size_t universe = 600;
  std::vector<Fd> fds = RandomFds(rng, universe, 30);
  ClosureIndex index(fds, universe);
  ASSERT_FALSE(index.dense_plan());
  ClosureScratch scratch;
  scratch.SetEpochForTesting(UINT32_MAX - 2);
  for (int q = 0; q < 8; ++q) {
    AttrSet start = RandomSet(rng, universe, 5);
    EXPECT_EQ(index.Closure(start, &scratch), ClosureOver(fds, start))
        << "query " << q << " around the epoch wrap";
  }
  // The wrap happened (epoch restarted from 1 and kept counting).
  EXPECT_LT(scratch.epoch_for_testing(), 16u);
  EXPECT_GE(scratch.epoch_for_testing(), 1u);
}

// Incremental patching: ShrinkLhs / Deactivate keep the index equal to a
// fresh compile of the mutated FD list.
TEST(ClosureIndexTest, PatchingMatchesRecompile) {
  Rng rng(99);
  const size_t universe = 32;
  for (int round = 0; round < 50; ++round) {
    std::vector<Fd> fds = RandomFds(rng, universe, 12);
    ClosureIndex index(fds, universe);
    ClosureScratch scratch;
    for (int patch = 0; patch < 6; ++patch) {
      const size_t f = rng.UniformIndex(fds.size());
      if (rng.Bernoulli(0.3)) {
        // Deactivate == delete from the source list's perspective.
        index.Deactivate(f);
        fds[f].lhs = AttrSet(universe);
        fds[f].rhs = AttrSet(universe);  // trivial: never contributes
      } else {
        const std::vector<size_t> members = fds[f].lhs.ToVector();
        if (members.empty()) continue;
        const size_t attr = members[rng.UniformIndex(members.size())];
        index.ShrinkLhs(f, attr);
        fds[f].lhs.Reset(attr);
      }
      for (int q = 0; q < 4; ++q) {
        AttrSet start = RandomSet(rng, universe, 4);
        EXPECT_EQ(index.Closure(start, &scratch), ClosureOver(fds, start));
      }
    }
  }
}

// One scratch may serve many indexes (of no larger node count) without
// clearing: the epoch bump invalidates everything between queries.
TEST(ClosureIndexTest, ScratchIsReusableAcrossIndexes) {
  Rng rng(4242);
  const size_t universe = 20;
  ClosureScratch scratch;
  for (int round = 0; round < 30; ++round) {
    std::vector<Fd> fds = RandomFds(rng, universe, 15);
    ClosureIndex index(fds, universe);
    AttrSet start = RandomSet(rng, universe, 3);
    EXPECT_EQ(index.Closure(start, &scratch), ClosureOver(fds, start));
  }
}

FdSet RandomFdSet(Rng& rng, const RelationSchema& schema, size_t count) {
  FdSet set(schema);
  for (Fd& fd : RandomFds(rng, schema.arity(), count)) {
    if (fd.rhs.Empty()) continue;  // parseable FDs have non-empty RHS
    set.Add(std::move(fd));
  }
  return set;
}

// The acceptance property: Minimize is bit-identical with the kernel on,
// off, and parallel — same FDs, same order — and the result is minimal.
TEST(MinimizePropertyTest, IndexOnOffAndParallelAreBitIdentical) {
  Rng rng(51);
  ThreadPool pool(3);  // forced 3-thread determinism check
  const RelationSchema schema = WideSchema(24);
  for (int round = 0; round < 60; ++round) {
    // 40–120 FDs crosses the parallel threshold with room to spare.
    const size_t count = 40 + static_cast<size_t>(rng.UniformInt(0, 80));
    FdSet input = RandomFdSet(rng, schema, count);

    FdSet seed_cover(schema);
    {
      ScopedClosureIndexDisable off;
      seed_cover = Minimize(input);
    }
    const FdSet indexed = Minimize(input);
    const FdSet parallel = Minimize(input, &pool);

    EXPECT_EQ(indexed.ToString(), seed_cover.ToString());
    EXPECT_EQ(parallel.ToString(), seed_cover.ToString());
    EXPECT_TRUE(IsMinimal(indexed));
    EXPECT_TRUE(input.EquivalentTo(indexed));
  }
}

// FdSet's cached index must not outlive mutations.
TEST(FdSetIndexTest, MutationInvalidatesCachedIndex) {
  const RelationSchema schema = WideSchema(4);
  FdSet set(schema);
  ASSERT_TRUE(set.AddParsed("a0 -> a1").ok());
  AttrSet a0(4, {0});
  EXPECT_EQ(set.Closure(a0).Count(), 2u);  // compiled {a0 -> a1}

  ASSERT_TRUE(set.AddParsed("a1 -> a2").ok());  // Add: invalidates
  EXPECT_EQ(set.Closure(a0).Count(), 3u);

  set.mutable_fds().push_back(
      Fd(AttrSet(4, {2}), AttrSet(4, {3})));  // mutable_fds: invalidates
  EXPECT_EQ(set.Closure(a0).Count(), 4u);

  FdSet copy = set;  // copies recompile lazily, independently
  ASSERT_TRUE(copy.AddParsed("a1 -> a0").ok());
  EXPECT_EQ(set.Closure(AttrSet(4, {1})).Count(), 3u);
  EXPECT_EQ(copy.Closure(AttrSet(4, {1})).Count(), 4u);
}

TEST(FdSetNormalizedTest, MergeSameLhsFoldsRhsDeterministically) {
  const RelationSchema schema = WideSchema(5);
  FdSet set(schema);
  ASSERT_TRUE(set.AddParsed("a0 -> a2").ok());
  ASSERT_TRUE(set.AddParsed("a0 -> a1").ok());
  ASSERT_TRUE(set.AddParsed("a1, a3 -> a4, a0").ok());
  ASSERT_TRUE(set.AddParsed("a0 -> a1").ok());  // duplicate

  const FdSet split = set.Normalized();
  EXPECT_EQ(split.size(), 4u);  // a0->a1, a0->a2, a1a3->a0, a1a3->a4

  const FdSet merged = set.Normalized(/*merge_same_lhs=*/true);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.ToString(), "a0 -> a1, a2\na1, a3 -> a0, a4\n");
  EXPECT_TRUE(merged.EquivalentTo(split));
}

}  // namespace
}  // namespace xmlprop
