#include "relational/instance.h"

#include <gtest/gtest.h>

#include "relational/fd_check.h"

namespace xmlprop {
namespace {

RelationSchema S() {
  Result<RelationSchema> s = RelationSchema::Parse("R(x, y, z)");
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

Fd F(std::string_view text) {
  Result<Fd> fd = ParseFd(S(), text);
  EXPECT_TRUE(fd.ok()) << fd.status().ToString();
  return std::move(fd).value();
}

Tuple T3(Field a, Field b, Field c) { return Tuple{a, b, c}; }

TEST(InstanceTest, AddDeduplicates) {
  Instance i(S());
  ASSERT_TRUE(i.Add(T3("1", "2", "3")).ok());
  ASSERT_TRUE(i.Add(T3("1", "2", "3")).ok());
  ASSERT_TRUE(i.Add(T3("1", "2", "4")).ok());
  EXPECT_EQ(i.size(), 2u);
}

TEST(InstanceTest, ArityChecked) {
  Instance i(S());
  EXPECT_FALSE(i.Add(Tuple{Field("1")}).ok());
}

TEST(InstanceTest, NullsDistinctFromValues) {
  Instance i(S());
  ASSERT_TRUE(i.Add(T3("1", std::nullopt, "3")).ok());
  ASSERT_TRUE(i.Add(T3("1", "", "3")).ok());  // empty string != null
  EXPECT_EQ(i.size(), 2u);
  EXPECT_TRUE(Instance::HasNull(i.tuples()[0]));
  EXPECT_FALSE(Instance::HasNull(i.tuples()[1]));
}

TEST(InstanceTest, ToStringShowsNull) {
  Instance i(S());
  ASSERT_TRUE(i.Add(T3("a", std::nullopt, "c")).ok());
  EXPECT_NE(i.ToString().find("NULL"), std::string::npos);
}

TEST(FdCheckTest, ClassicSatisfaction) {
  Instance i(S());
  ASSERT_TRUE(i.Add(T3("1", "a", "x")).ok());
  ASSERT_TRUE(i.Add(T3("2", "a", "y")).ok());
  EXPECT_TRUE(SatisfiesFd(i, F("x -> y, z")));
  EXPECT_FALSE(SatisfiesFd(i, F("y -> z")));
}

TEST(FdCheckTest, DisagreementReported) {
  Instance i(S());
  ASSERT_TRUE(i.Add(T3("1", "a", "x")).ok());
  ASSERT_TRUE(i.Add(T3("1", "b", "x")).ok());
  std::optional<FdViolation> v = CheckFd(i, F("x -> y"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, FdViolation::Kind::kDisagreement);
  EXPECT_NE(v->Describe(i, F("x -> y")).find("differ"), std::string::npos);
}

TEST(FdCheckTest, NullSemanticsCondition1) {
  // Section 3: if the LHS projection has null, the RHS must be null too.
  Instance i(S());
  ASSERT_TRUE(i.Add(T3(std::nullopt, "b", "c")).ok());
  // x is null but y is not: x -> y violated by condition (1).
  std::optional<FdViolation> v = CheckFd(i, F("x -> y"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, FdViolation::Kind::kIncompleteLhs);
  // x -> (nothing non-null)… with a null RHS it is fine.
  Instance j(S());
  ASSERT_TRUE(j.Add(T3(std::nullopt, std::nullopt, "c")).ok());
  EXPECT_TRUE(SatisfiesFd(j, F("x -> y")));
}

TEST(FdCheckTest, NullTuplesExemptFromCondition2) {
  // Two tuples agree on x but one has a null elsewhere: condition (2)
  // only compares completely null-free tuples.
  Instance i(S());
  ASSERT_TRUE(i.Add(T3("1", "a", "p")).ok());
  ASSERT_TRUE(i.Add(T3("1", "b", std::nullopt)).ok());
  // x -> y: the second tuple has a null (in z), so no comparison happens;
  // but condition (1) applies per-tuple: x non-null, y non-null: fine.
  EXPECT_TRUE(SatisfiesFd(i, F("x -> y")));
}

TEST(FdCheckTest, TrivialFdCanFailByNullCondition) {
  // The subtle Section 3 point: {x,y} -> x is violated when y is null
  // but x is not ("an incomplete key cannot determine complete fields").
  Instance i(S());
  ASSERT_TRUE(i.Add(T3("1", std::nullopt, "c")).ok());
  std::optional<FdViolation> v = CheckFd(i, F("x, y -> x"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, FdViolation::Kind::kIncompleteLhs);
}

TEST(FdCheckTest, EmptyLhsConstantFd) {
  Instance i(S());
  ASSERT_TRUE(i.Add(T3("1", "a", "c")).ok());
  ASSERT_TRUE(i.Add(T3("2", "a", "c")).ok());
  EXPECT_TRUE(SatisfiesFd(i, F("-> y")));
  EXPECT_FALSE(SatisfiesFd(i, F("-> x")));
}

TEST(FdCheckTest, EmptyInstanceSatisfiesEverything) {
  Instance i(S());
  EXPECT_TRUE(SatisfiesFd(i, F("x -> y")));
  EXPECT_TRUE(SatisfiesFd(i, F("-> x")));
}

}  // namespace
}  // namespace xmlprop
