// TreeIndex unit tests plus the randomized equivalence properties that
// pin the indexed data plane to the seed semantics: over random trees
// and random path expressions, Eval / EvalTableTree / CheckAll must
// produce bit-identical output with the index on and off — including
// under a forced multi-threaded key-check fan-out.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "keys/satisfaction.h"
#include "synth/doc_generator.h"
#include "transform/eval.h"
#include "transform/rule_parser.h"
#include "xml/path.h"
#include "xml/tree.h"
#include "xml/tree_index.h"

namespace xmlprop {
namespace {

// chapter under book under root, a sibling chapter, attributes on both.
Tree SmallTree() {
  Tree doc("db");
  NodeId book = doc.CreateElement(doc.root(), "book");
  doc.CreateAttribute(book, "isbn", "111").ok();
  NodeId c1 = doc.CreateElement(book, "chapter");
  doc.CreateAttribute(c1, "number", "1").ok();
  NodeId c2 = doc.CreateElement(book, "chapter");
  doc.CreateAttribute(c2, "number", "2").ok();
  doc.CreateElement(c1, "section");
  return doc;
}

TEST(TreeIndexTest, InternsLabelsAndValues) {
  Tree doc = SmallTree();
  TreeIndex index(doc);
  EXPECT_EQ(index.element_count(), 5u);  // db, book, chapter×2, section
  EXPECT_EQ(index.attribute_count(), 3u);
  EXPECT_NE(index.FindLabel("book"), kNoLabel);
  EXPECT_NE(index.FindLabel("number"), kNoLabel);
  EXPECT_EQ(index.FindLabel("no-such-label"), kNoLabel);
  // Equal attribute values intern to equal ids; distinct to distinct.
  NodeId c1 = index.ElementsWithLabel(index.FindLabel("chapter"))[0];
  NodeId c2 = index.ElementsWithLabel(index.FindLabel("chapter"))[1];
  NodeId a1 = index.AttributeWithLabel(c1, index.FindLabel("number"));
  NodeId a2 = index.AttributeWithLabel(c2, index.FindLabel("number"));
  ASSERT_NE(a1, kInvalidNode);
  ASSERT_NE(a2, kInvalidNode);
  EXPECT_NE(index.attr_value_id(a1), index.attr_value_id(a2));
  EXPECT_EQ(index.value_string(index.attr_value_id(a1)), "1");
  EXPECT_EQ(index.value_string(index.attr_value_id(a2)), "2");
}

TEST(TreeIndexTest, PreOrderIntervalsNestProperly) {
  Tree doc = SmallTree();
  TreeIndex index(doc);
  NodeId root = doc.root();
  NodeId book = index.ElementsWithLabel(index.FindLabel("book"))[0];
  NodeId c1 = index.ElementsWithLabel(index.FindLabel("chapter"))[0];
  NodeId section = index.ElementsWithLabel(index.FindLabel("section"))[0];
  EXPECT_EQ(index.pre(root), 0);
  EXPECT_EQ(index.pre_end(root), 5);
  EXPECT_TRUE(index.IsAncestorOrSelf(root, section));
  EXPECT_TRUE(index.IsAncestorOrSelf(book, c1));
  EXPECT_TRUE(index.IsAncestorOrSelf(c1, section));
  EXPECT_FALSE(index.IsAncestorOrSelf(section, c1));
  EXPECT_FALSE(index.IsAncestorOrSelf(c1, book));
  // ElementAtPre inverts pre().
  for (int32_t p = 0; p < 5; ++p) {
    EXPECT_EQ(index.pre(index.ElementAtPre(p)), p);
  }
}

TEST(TreeIndexTest, ChildBucketsFollowDocumentOrder) {
  Tree doc = SmallTree();
  TreeIndex index(doc);
  NodeId book = index.ElementsWithLabel(index.FindLabel("book"))[0];
  TreeIndex::NodeSpan chapters =
      index.ChildrenWithLabel(book, index.FindLabel("chapter"));
  ASSERT_EQ(chapters.size(), 2u);
  EXPECT_LT(index.pre(*chapters.begin()), index.pre(*(chapters.begin() + 1)));
  EXPECT_TRUE(index.ChildrenWithLabel(book, index.FindLabel("section")).empty());
  EXPECT_TRUE(index.ChildrenWithLabel(book, kNoLabel).empty());
}

// ----------------------------------------------------------------------
// Randomized equivalence properties.

// A random path over the RandomTreeSpec alphabet: 1-4 steps, each plain
// or descendant-prefixed, sometimes an unknown label, optionally ending
// in a (sometimes unknown) attribute step.
PathExpr RandomPath(Rng* rng) {
  static const std::vector<std::string> kLabels = {
      "book", "chapter", "section", "title", "author", "name", "contact",
      "unknownlabel"};
  static const std::vector<std::string> kAttrs = {"isbn", "number", "id",
                                                  "unknownattr"};
  std::string text;
  const int steps = rng->UniformInt(1, 4);
  for (int s = 0; s < steps; ++s) {
    if (rng->Bernoulli(0.4)) {
      text += "//";
    } else if (!text.empty()) {
      text += "/";
    }
    text += rng->Choose(kLabels);
  }
  if (rng->Bernoulli(0.3)) text += "/@" + rng->Choose(kAttrs);
  Result<PathExpr> path = PathExpr::Parse(text);
  EXPECT_TRUE(path.ok()) << text;
  return *path;
}

class IndexEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(IndexEquivalence, EvalMatchesTreeEval) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  RandomTreeSpec spec;
  spec.max_depth = 5;
  Tree doc = RandomTree(spec, &rng);
  TreeIndex index(doc);
  for (int trial = 0; trial < 40; ++trial) {
    PathExpr path = RandomPath(&rng);
    // From the root and from arbitrary nodes (elements, attributes, text
    // — the evaluator must agree on all of them).
    std::vector<NodeId> starts = {doc.root()};
    for (int s = 0; s < 4; ++s) {
      starts.push_back(
          static_cast<NodeId>(rng.UniformIndex(doc.size())));
    }
    for (NodeId from : starts) {
      EXPECT_EQ(path.Eval(doc, from), path.Eval(index, from))
          << "path " << path.ToString() << " from node " << from << " seed "
          << GetParam();
    }
  }
}

TEST_P(IndexEquivalence, ShreddingMatchesTreeShredding) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  Result<TableRule> rule = ParseTableRule(R"(
rule R {
  isbn:    value(BI)
  chapter: value(CN)
  section: value(SI)
  title:   value(TT)
  B  := Xr//book
  BI := B/@isbn
  C  := Xr//chapter
  CN := C/@number
  S  := C/section
  SI := S/@id
  T  := B/title
  TT := T/@id
}
)");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  Result<TableTree> table = TableTree::Build(*rule);
  ASSERT_TRUE(table.ok());
  RandomTreeSpec spec;
  spec.max_depth = 5;
  for (int doc_trial = 0; doc_trial < 5; ++doc_trial) {
    Tree doc = RandomTree(spec, &rng);
    TreeIndex index(doc);
    Instance off = EvalTableTree(doc, *table);
    Instance on = EvalTableTree(index, *table);
    // Identical tuples in identical order, not just set equality.
    EXPECT_EQ(off.tuples(), on.tuples()) << "seed " << GetParam();

    // The columnar form round-trips: every column id resolves to the
    // row-store field.
    ColumnarInstance columnar = EvalTableTreeColumnar(index, *table);
    ASSERT_EQ(columnar.size(), off.size());
    for (size_t r = 0; r < columnar.size(); ++r) {
      for (size_t f = 0; f < off.schema().arity(); ++f) {
        const ColumnarInstance::ValueRef id = columnar.Column(f)[r];
        const Field& field = off.tuples()[r][f];
        if (id == ColumnarInstance::kNull) {
          EXPECT_FALSE(field.has_value());
        } else {
          ASSERT_TRUE(field.has_value());
          EXPECT_EQ(columnar.ValueString(id), *field);
        }
      }
    }
  }
}

// Violations flattened for exact sequence comparison.
std::vector<std::tuple<size_t, int, NodeId, NodeId, NodeId, std::string>>
Flatten(const std::vector<TaggedViolation>& violations) {
  std::vector<std::tuple<size_t, int, NodeId, NodeId, NodeId, std::string>>
      out;
  out.reserve(violations.size());
  for (const TaggedViolation& tv : violations) {
    out.emplace_back(tv.key_index, static_cast<int>(tv.violation.kind),
                     tv.violation.context, tv.violation.node1,
                     tv.violation.node2, tv.violation.attribute);
  }
  return out;
}

TEST_P(IndexEquivalence, CheckAllMatchesTreeCheckAll) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761ULL + 13);
  Result<std::vector<XmlKey>> keys = ParseKeySet(R"(
K0: (ε, (//book, {@isbn}))
K1: (//book, (chapter, {@number}))
K2: (//book//chapter, (section, {@id}))
K3: (//book, (title, {}))
K4: (ε, (//book, {@isbn}))
)");
  ASSERT_TRUE(keys.ok()) << keys.status().ToString();
  RandomTreeSpec spec;
  spec.max_depth = 5;
  // K4 duplicates K0's paths on purpose: the shared context/target
  // evaluation must still report per-key violations.
  for (int doc_trial = 0; doc_trial < 5; ++doc_trial) {
    Tree doc = RandomTree(spec, &rng);
    TreeIndex index(doc);
    std::vector<TaggedViolation> off = CheckAll(doc, *keys);
    std::vector<TaggedViolation> on = CheckAll(index, *keys);
    EXPECT_EQ(Flatten(off), Flatten(on)) << "seed " << GetParam();

    // Forced fan-out: tiny partitions over a real pool must not change
    // the output (or its order).
    ThreadPool pool(3);
    CheckOptions options;
    options.pool = &pool;
    options.contexts_per_task = 1;
    CheckStats stats;
    options.stats = &stats;
    std::vector<TaggedViolation> pooled = CheckAll(index, *keys, options);
    EXPECT_EQ(Flatten(off), Flatten(pooled)) << "seed " << GetParam();
    // K0/K4 share a context set and a target set.
    EXPECT_LT(stats.context_sets, keys->size());
    EXPECT_LT(stats.target_sets, keys->size());

    // Per-key agreement of the whole violation list and the verdict.
    for (const XmlKey& key : *keys) {
      std::vector<KeyViolation> key_off = CheckKey(doc, key);
      std::vector<KeyViolation> key_on = CheckKey(index, key);
      ASSERT_EQ(key_off.size(), key_on.size());
      EXPECT_EQ(Satisfies(doc, key), Satisfies(index, key));
    }
    EXPECT_EQ(SatisfiesAll(doc, *keys), SatisfiesAll(index, *keys));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalence, ::testing::Range(0, 12));

}  // namespace
}  // namespace xmlprop
