// Property tests over random FD sets: the normalization pipeline must
// uphold its textbook guarantees for ANY input, not just the paper's
// example — BCNF decompositions are lossless and in BCNF; 3NF synthesis
// is lossless, dependency-preserving and in 3NF; Minimize yields an
// equivalent, minimal cover.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "relational/cover.h"
#include "relational/normalize.h"

namespace xmlprop {
namespace {

RelationSchema SchemaOfArity(size_t n) {
  std::vector<std::string> attrs;
  for (size_t i = 0; i < n; ++i) {
    attrs.push_back(std::string(1, static_cast<char>('a' + i)));
  }
  return RelationSchema("R", std::move(attrs));
}

AttrSet RandomSubset(size_t arity, Rng* rng, double density) {
  AttrSet s(arity);
  for (size_t i = 0; i < arity; ++i) {
    if (rng->Bernoulli(density)) s.Set(i);
  }
  return s;
}

FdSet RandomFdSet(size_t arity, size_t fd_count, Rng* rng) {
  FdSet f(SchemaOfArity(arity));
  for (size_t i = 0; i < fd_count; ++i) {
    AttrSet lhs = RandomSubset(arity, rng, 0.3);
    AttrSet rhs = RandomSubset(arity, rng, 0.25);
    rhs = rhs.Minus(lhs);
    if (rhs.Empty()) rhs.Set(rng->UniformIndex(arity));
    f.Add(Fd(std::move(lhs), std::move(rhs)));
  }
  return f;
}

class NormalizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(NormalizeProperty, MinimizeProducesEquivalentMinimalCover) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 911 + 7);
  for (int iter = 0; iter < 10; ++iter) {
    size_t arity = static_cast<size_t>(rng.UniformInt(2, 7));
    FdSet f = RandomFdSet(arity, static_cast<size_t>(rng.UniformInt(1, 8)),
                          &rng);
    FdSet m = Minimize(f);
    EXPECT_TRUE(m.EquivalentTo(f)) << "input:\n"
                                   << f.ToString() << "cover:\n"
                                   << m.ToString();
    EXPECT_TRUE(IsMinimal(m)) << m.ToString();
    // Single-attribute RHS form.
    for (const Fd& fd : m.fds()) {
      EXPECT_EQ(fd.rhs.Count(), 1u);
      EXPECT_FALSE(fd.IsTrivial());
    }
  }
}

TEST_P(NormalizeProperty, BcnfDecompositionLosslessAndNormal) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1733 + 29);
  for (int iter = 0; iter < 8; ++iter) {
    size_t arity = static_cast<size_t>(rng.UniformInt(2, 6));
    FdSet cover = Minimize(
        RandomFdSet(arity, static_cast<size_t>(rng.UniformInt(1, 6)), &rng));
    std::vector<SubRelation> frags = DecomposeBcnf(cover);
    ASSERT_FALSE(frags.empty());
    for (const SubRelation& f : frags) {
      EXPECT_TRUE(IsBcnf(f.attrs, cover))
          << f.ToString(cover.schema()) << "\n"
          << cover.ToString();
    }
    EXPECT_TRUE(IsLosslessJoin(frags, cover)) << cover.ToString();
    // Fragments jointly cover every attribute.
    AttrSet all(arity);
    for (const SubRelation& f : frags) all.UnionInPlace(f.attrs);
    EXPECT_EQ(all, cover.schema().FullSet());
  }
}

TEST_P(NormalizeProperty, ThirdNfSynthesisGuarantees) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 613 + 41);
  for (int iter = 0; iter < 8; ++iter) {
    size_t arity = static_cast<size_t>(rng.UniformInt(2, 6));
    FdSet cover = Minimize(
        RandomFdSet(arity, static_cast<size_t>(rng.UniformInt(1, 6)), &rng));
    std::vector<SubRelation> frags = Synthesize3nf(cover);
    ASSERT_FALSE(frags.empty());
    for (const SubRelation& f : frags) {
      EXPECT_TRUE(Is3nf(f.attrs, cover))
          << f.ToString(cover.schema()) << "\n"
          << cover.ToString();
    }
    EXPECT_TRUE(IsLosslessJoin(frags, cover)) << cover.ToString();
    EXPECT_TRUE(PreservesDependencies(frags, cover)) << cover.ToString();
  }
}

TEST_P(NormalizeProperty, ClosureIsAClosureOperator) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 263 + 5);
  for (int iter = 0; iter < 10; ++iter) {
    size_t arity = static_cast<size_t>(rng.UniformInt(2, 8));
    FdSet f = RandomFdSet(arity, static_cast<size_t>(rng.UniformInt(1, 8)),
                          &rng);
    AttrSet x = RandomSubset(arity, &rng, 0.4);
    AttrSet cx = f.Closure(x);
    // Extensive, monotone, idempotent.
    EXPECT_TRUE(x.IsSubsetOf(cx));
    EXPECT_EQ(f.Closure(cx), cx);
    AttrSet y = x.Union(RandomSubset(arity, &rng, 0.2));
    EXPECT_TRUE(cx.IsSubsetOf(f.Closure(y)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizeProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace xmlprop
