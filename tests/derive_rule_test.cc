#include "transform/derive_rule.h"

#include <gtest/gtest.h>

#include "core/design_advisor.h"
#include "keys/discovery.h"
#include "paper_fixtures.h"
#include "relational/fd_check.h"
#include "transform/eval.h"
#include "transform/table_tree.h"
#include "xml/parser.h"

namespace xmlprop {
namespace {

using testing_fixtures::Fig1Tree;

Tree T(std::string_view xml) {
  Result<Tree> t = ParseXml(xml);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(t).value();
}

TEST(DeriveRuleTest, Fig1YieldsValidatedRule) {
  Tree tree = Fig1Tree();
  Result<TableRule> rule = DeriveUniversalRule(tree);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE(rule->Validate().ok());
  Result<TableTree> table = TableTree::Build(*rule);
  ASSERT_TRUE(table.ok());
  // Fields: book_isbn, chapter_number, section_number attributes; and
  // text leaves title, author_name, author_contact, chapter_name,
  // section_name.
  RelationSchema schema = rule->Schema();
  EXPECT_TRUE(schema.IndexOf("book_isbn").has_value()) << schema.ToString();
  EXPECT_TRUE(schema.IndexOf("book_chapter_number").has_value());
  EXPECT_TRUE(schema.IndexOf("book_title").has_value());
  EXPECT_TRUE(schema.IndexOf("book_author_contact").has_value());
  EXPECT_TRUE(
      schema.IndexOf("book_chapter_section_number").has_value());
}

TEST(DeriveRuleTest, EvaluatesOnTheSourceDocument) {
  Tree tree = Fig1Tree();
  Result<TableRule> rule = DeriveUniversalRule(tree);
  ASSERT_TRUE(rule.ok());
  Result<Instance> instance = EvalRule(tree, *rule);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_GT(instance->size(), 0u);
  // The isbn values appear in the shredded data.
  bool found_123 = false;
  size_t isbn = *rule->Schema().IndexOf("book_isbn");
  for (const Tuple& t : instance->tuples()) {
    if (t[isbn] == Field("123")) found_123 = true;
  }
  EXPECT_TRUE(found_123);
}

TEST(DeriveRuleTest, SharedPathsMergeAcrossOccurrences) {
  // The same label path under different instances contributes ONE
  // variable; attributes union across occurrences.
  Tree tree = T(R"(<r>
      <item sku="1"/>
      <item color="red"/>
  </r>)");
  Result<TableRule> rule = DeriveUniversalRule(tree);
  ASSERT_TRUE(rule.ok());
  RelationSchema schema = rule->Schema();
  EXPECT_EQ(schema.arity(), 2u);
  EXPECT_TRUE(schema.IndexOf("item_sku").has_value());
  EXPECT_TRUE(schema.IndexOf("item_color").has_value());
  // One element variable for `item` plus two attribute variables.
  EXPECT_EQ(rule->mappings().size(), 3u);
}

TEST(DeriveRuleTest, TextLeafBecomesField) {
  Tree tree = T(R"(<r><name>Ada</name></r>)");
  Result<TableRule> rule = DeriveUniversalRule(tree);
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->Schema().IndexOf("name").has_value());
}

TEST(DeriveRuleTest, MixedElementPrefersAttributes) {
  // An element with attributes is not itself a field (its variable has
  // attribute children); only the attribute fields are emitted.
  Tree tree = T(R"(<r><p id="1">text</p></r>)");
  Result<TableRule> rule = DeriveUniversalRule(tree);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->Schema().arity(), 1u);
  EXPECT_TRUE(rule->Schema().IndexOf("p_id").has_value());
}

TEST(DeriveRuleTest, DepthBoundRespected) {
  Tree tree = T(R"(<r><a><b><c x="1"/></b></a></r>)");
  DeriveOptions options;
  options.max_depth = 2;
  Result<TableRule> rule = DeriveUniversalRule(tree, options);
  // a and b derived, c (depth 3) dropped — leaving zero fields.
  EXPECT_FALSE(rule.ok());
  options.max_depth = 3;
  rule = DeriveUniversalRule(tree, options);
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->Schema().IndexOf("a_b_c_x").has_value());
}

TEST(DeriveRuleTest, FieldCapEnforced) {
  Tree tree = Fig1Tree();
  DeriveOptions options;
  options.max_fields = 2;
  EXPECT_FALSE(DeriveUniversalRule(tree, options).ok());
}

TEST(DeriveRuleTest, DuplicateFieldNamesDisambiguated) {
  // 'a_b' the path vs 'a' with attribute 'b' collide on the field name.
  Tree tree = T(R"(<r><a b="1"><b>t</b></a></r>)");
  Result<TableRule> rule = DeriveUniversalRule(tree);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  RelationSchema schema = rule->Schema();
  EXPECT_EQ(schema.arity(), 2u);
  EXPECT_TRUE(schema.IndexOf("a_b").has_value());
  EXPECT_TRUE(schema.IndexOf("a_b_2").has_value());
}

TEST(DeriveRuleTest, EmptyDocumentRejected) {
  Tree tree = T("<r/>");
  EXPECT_FALSE(DeriveUniversalRule(tree).ok());
}

TEST(DeriveRuleTest, RecursiveStructureBounded) {
  Tree tree = T(R"(<r><d n="1"><d n="2"><d n="3"><d n="4"/></d></d></d></r>)");
  DeriveOptions options;
  options.max_depth = 3;
  Result<TableRule> rule = DeriveUniversalRule(tree, options);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->Schema().arity(), 3u);  // d_n, d_d_n, d_d_d_n
}

TEST(DeriveRuleTest, EndToEndAutoDesignPipeline) {
  // The full automatic pipeline: document -> derived rule + mined keys
  // -> minimum cover -> BCNF. Every cover FD must hold on the document's
  // own shredded instance (null-free restriction).
  Tree tree = Fig1Tree();
  Result<TableRule> rule = DeriveUniversalRule(tree);
  ASSERT_TRUE(rule.ok());
  Result<std::vector<DiscoveredKey>> discovered = DiscoverKeys(tree);
  ASSERT_TRUE(discovered.ok());
  std::vector<XmlKey> keys;
  for (const DiscoveredKey& d : *discovered) keys.push_back(d.key);

  Result<DesignReport> report = AdviseDesign(keys, *rule);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->cover.empty());

  Result<Instance> instance = EvalRule(tree, *rule);
  ASSERT_TRUE(instance.ok());
  Instance null_free(instance->schema());
  for (const Tuple& t : instance->tuples()) {
    if (!Instance::HasNull(t)) null_free.Add(t).ok();
  }
  for (const Fd& fd : report->cover.fds()) {
    EXPECT_TRUE(SatisfiesFd(null_free, fd))
        << fd.ToString(report->universal);
  }
}

}  // namespace
}  // namespace xmlprop
