#include "relational/sql_ddl.h"

#include <gtest/gtest.h>

#include "core/minimum_cover.h"
#include "paper_fixtures.h"
#include "relational/normalize.h"

namespace xmlprop {
namespace {

using testing_fixtures::PaperKeys;
using testing_fixtures::UniversalTable;

// The paper-example cover and its BCNF decomposition.
struct Fixture {
  FdSet cover;
  std::vector<SubRelation> bcnf;
};

Fixture MakeFixture() {
  TableTree u = UniversalTable();
  Result<FdSet> cover = MinimumCover(PaperKeys(), u);
  EXPECT_TRUE(cover.ok());
  Fixture f{std::move(cover).value(), {}};
  f.bcnf = DecomposeBcnf(f.cover);
  // Friendlier names for assertions.
  for (SubRelation& frag : f.bcnf) {
    if (frag.attrs.Test(7)) frag.name = "section";
    else if (frag.attrs.Test(5)) frag.name = "chapter";
    else if (frag.attrs.Test(1)) frag.name = "book";
    else frag.name = "author_rest";
  }
  return f;
}

TEST(SqlDdlTest, PrimaryKeysAreMinimalFragmentKeys) {
  Fixture f = MakeFixture();
  Result<std::vector<TableDdl>> tables = GenerateDdl(f.bcnf, f.cover);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  for (const TableDdl& t : *tables) {
    if (t.name == "book") {
      EXPECT_EQ(t.primary_key, std::vector<std::string>{"bookIsbn"});
    } else if (t.name == "chapter") {
      EXPECT_EQ(t.primary_key,
                (std::vector<std::string>{"bookIsbn", "chapNum"}));
    } else if (t.name == "section") {
      EXPECT_EQ(t.primary_key,
                (std::vector<std::string>{"bookIsbn", "chapNum", "secNum"}));
    }
  }
}

TEST(SqlDdlTest, ForeignKeysFollowHierarchyWithoutRedundancy) {
  Fixture f = MakeFixture();
  Result<std::vector<TableDdl>> tables = GenerateDdl(f.bcnf, f.cover);
  ASSERT_TRUE(tables.ok());
  for (const TableDdl& t : *tables) {
    if (t.name == "section") {
      // section -> chapter only; the reference to book is transitively
      // implied and must be suppressed.
      ASSERT_EQ(t.foreign_keys.size(), 1u) << t.ToSql({});
      EXPECT_NE(t.foreign_keys[0].find("REFERENCES chapter"),
                std::string::npos);
    }
    if (t.name == "chapter") {
      ASSERT_EQ(t.foreign_keys.size(), 1u);
      EXPECT_NE(t.foreign_keys[0].find("REFERENCES book"), std::string::npos);
    }
    if (t.name == "book") {
      EXPECT_TRUE(t.foreign_keys.empty());
    }
  }
}

TEST(SqlDdlTest, ScriptContainsEveryTable) {
  Fixture f = MakeFixture();
  Result<std::string> script = GenerateDdlScript(f.bcnf, f.cover);
  ASSERT_TRUE(script.ok());
  EXPECT_NE(script->find("CREATE TABLE book"), std::string::npos);
  EXPECT_NE(script->find("CREATE TABLE chapter"), std::string::npos);
  EXPECT_NE(script->find("CREATE TABLE section"), std::string::npos);
  EXPECT_NE(script->find("PRIMARY KEY (bookIsbn, chapNum, secNum)"),
            std::string::npos);
}

TEST(SqlDdlTest, OptionsControlTypeAndClauses) {
  Fixture f = MakeFixture();
  DdlOptions options;
  options.column_type = "VARCHAR(255)";
  options.foreign_keys = false;
  options.not_null_keys = false;
  Result<std::string> script = GenerateDdlScript(f.bcnf, f.cover, options);
  ASSERT_TRUE(script.ok());
  EXPECT_NE(script->find("VARCHAR(255)"), std::string::npos);
  EXPECT_EQ(script->find("FOREIGN KEY"), std::string::npos);
  EXPECT_EQ(script->find("NOT NULL"), std::string::npos);
}

TEST(SqlDdlTest, RejectsForeignUniverse) {
  Fixture f = MakeFixture();
  std::vector<SubRelation> bad = {SubRelation{"x", AttrSet(3, {0})}};
  EXPECT_FALSE(GenerateDdl(bad, f.cover).ok());
}

TEST(SqlDdlTest, RejectsEmptyFragment) {
  Fixture f = MakeFixture();
  std::vector<SubRelation> bad = {
      SubRelation{"x", AttrSet(f.cover.schema().arity())}};
  EXPECT_FALSE(GenerateDdl(bad, f.cover).ok());
}

TEST(SqlDdlTest, InsertsEscapeAndNull) {
  Result<RelationSchema> schema = RelationSchema::Parse("t(a, b)");
  ASSERT_TRUE(schema.ok());
  Instance instance(*schema);
  ASSERT_TRUE(instance.Add({Field("O'Brien"), std::nullopt}).ok());
  std::string sql = GenerateInserts(instance);
  EXPECT_NE(sql.find("INSERT INTO t (a, b) VALUES ('O''Brien', NULL);"),
            std::string::npos);
}

TEST(SqlDdlTest, SingletonFragmentOmitsPrimaryKeyClause) {
  // ∅ -> a, ∅ -> b: the fragment holds at most one row; SQL has no
  // PRIMARY KEY () so the clause must be dropped.
  Result<RelationSchema> schema = RelationSchema::Parse("r(a, b)");
  ASSERT_TRUE(schema.ok());
  FdSet cover(*schema);
  ASSERT_TRUE(cover.AddParsed("-> a").ok());
  ASSERT_TRUE(cover.AddParsed("-> b").ok());
  std::vector<SubRelation> frags = {SubRelation{"r1", AttrSet(2, {0, 1})}};
  Result<std::vector<TableDdl>> tables = GenerateDdl(frags, cover);
  ASSERT_TRUE(tables.ok());
  EXPECT_TRUE((*tables)[0].primary_key.empty());
  std::string sql = (*tables)[0].ToSql({});
  EXPECT_EQ(sql.find("PRIMARY KEY"), std::string::npos);
  EXPECT_NE(sql.find("singleton"), std::string::npos);
  // No dangling comma before the closing paren.
  EXPECT_EQ(sql.find(",\n);"), std::string::npos);
}

TEST(SqlDdlTest, AllKeyFragmentGetsWholeRowKey) {
  // A fragment with no FDs projecting into it: primary key = all columns.
  Result<RelationSchema> schema = RelationSchema::Parse("r(a, b)");
  ASSERT_TRUE(schema.ok());
  FdSet cover(*schema);
  std::vector<SubRelation> frags = {SubRelation{"r1", AttrSet(2, {0, 1})}};
  Result<std::vector<TableDdl>> tables = GenerateDdl(frags, cover);
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ((*tables)[0].primary_key, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace xmlprop
