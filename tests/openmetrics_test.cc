#include "obs/openmetrics.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <regex>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace xmlprop {
namespace obs {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(OpenMetricsNameTest, PrefixesAndSanitizes) {
  EXPECT_EQ(OpenMetricsName("check.contexts"), "xmlprop_check_contexts");
  EXPECT_EQ(OpenMetricsName("a-b c"), "xmlprop_a_b_c");
  EXPECT_EQ(OpenMetricsName("Already_OK9"), "xmlprop_Already_OK9");
}

TEST(OpenMetricsTest, CountersRenderAsTotalsWithTypeLines) {
  MetricRegistry registry;
  registry.Add("check.violations", 4);
  const std::string text = RenderOpenMetrics(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE xmlprop_check_violations counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("xmlprop_check_violations_total 4\n"),
            std::string::npos)
      << text;
}

TEST(OpenMetricsTest, GaugesRenderPlainAndOutputEndsWithEof) {
  MetricRegistry registry;
  registry.SetGauge("pool.size", -2);
  const std::string text = RenderOpenMetrics(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE xmlprop_pool_size gauge\n"), std::string::npos);
  EXPECT_NE(text.find("xmlprop_pool_size -2\n"), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetricsTest, EmptySnapshotIsJustEof) {
  MetricRegistry registry;
  EXPECT_EQ(RenderOpenMetrics(registry.Snapshot()), "# EOF\n");
}

TEST(OpenMetricsTest, HistogramsRenderCumulativeBucketsSumAndCount) {
  MetricRegistry registry;
  registry.Observe("op.ms", 1.0);
  registry.Observe("op.ms", 2.0);
  registry.Observe("op.ms", 1000.0);
  const std::string text = RenderOpenMetrics(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE xmlprop_op_ms histogram\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("xmlprop_op_ms_sum 1003\n"), std::string::npos) << text;
  EXPECT_NE(text.find("xmlprop_op_ms_count 3\n"), std::string::npos) << text;
  // The mandatory +Inf bucket carries the full count, and cumulative
  // counts never decrease along the bucket series.
  EXPECT_NE(text.find("xmlprop_op_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  std::istringstream lines(text);
  std::string line;
  uint64_t last = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("xmlprop_op_ms_bucket", 0) != 0) continue;
    const uint64_t count =
        std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(count, last) << text;
    last = count;
  }
  EXPECT_EQ(last, 3u);
}

// The shape gate CI's openmetrics lint enforces: every line is a comment,
// blank-free sample, or the EOF marker.
TEST(OpenMetricsTest, EveryLineMatchesTheLintGrammar) {
  MetricRegistry registry;
  registry.Add("a.counter", 1);
  registry.SetGauge("b.gauge", 2);
  registry.Observe("c.hist", 3.5);
  const std::string text = RenderOpenMetrics(registry.Snapshot());
  const std::regex sample(
      R"(^[a-zA-Z_][a-zA-Z0-9_]*(\{le="[^"]+"\})? -?[0-9.+eEinf]+$)");
  const std::regex comment(R"(^# (TYPE|HELP|EOF).*$)");
  std::istringstream lines(text);
  std::string line;
  bool saw_eof = false;
  while (std::getline(lines, line)) {
    EXPECT_FALSE(saw_eof) << "content after # EOF: " << line;
    if (line == "# EOF") {
      saw_eof = true;
      continue;
    }
    EXPECT_TRUE(std::regex_match(line, sample) ||
                std::regex_match(line, comment))
        << "unlintable line: " << line;
  }
  EXPECT_TRUE(saw_eof);
}

TEST(OpenMetricsTest, WriteFileIsAtomicAndMatchesRender) {
  MetricRegistry registry;
  registry.Add("written.counter", 11);
  char path[] = "/tmp/xmlprop_openmetrics_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  ::close(fd);
  ASSERT_TRUE(WriteOpenMetricsFile(registry.Snapshot(), path));
  EXPECT_EQ(ReadAll(path), RenderOpenMetrics(registry.Snapshot()));
  // No .tmp litter after a successful rename.
  EXPECT_FALSE(std::ifstream(std::string(path) + ".tmp").good());
  std::remove(path);
}

TEST(OpenMetricsTest, WriteFileFailsCleanlyOnBadPath) {
  MetricRegistry registry;
  EXPECT_FALSE(
      WriteOpenMetricsFile(registry.Snapshot(), "/nonexistent_dir_xyz/m.om"));
}

TEST(OpenMetricsTest, PeriodicWriterSnapshotsAndFlushesOnDestruction) {
  MetricRegistry registry;
  registry.Add("periodic.counter", 1);
  char path[] = "/tmp/xmlprop_periodic_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  ::close(fd);
  int writes = 0;
  {
    PeriodicMetricsWriter writer(&registry, path, 5);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    registry.Add("periodic.counter", 1);
    writes = writer.writes();
    EXPECT_GE(writes, 1) << "no periodic snapshot within 40ms at 5ms cadence";
  }
  // Destruction wrote a final snapshot that includes the last increment.
  const std::string content = ReadAll(path);
  std::remove(path);
  EXPECT_NE(content.find("xmlprop_periodic_counter_total 2"),
            std::string::npos)
      << content;
  EXPECT_EQ(content.substr(content.size() - 6), "# EOF\n");
}

TEST(OpenMetricsTest, ExplicitStopFlushesLateChargesAndIsIdempotent) {
  MetricRegistry registry;
  registry.Add("stop.counter", 1);
  char path[] = "/tmp/xmlprop_stop_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  ::close(fd);
  PeriodicMetricsWriter writer(&registry, path, 10000);  // never fires
  // The context-fold pattern: charges folded in after the run, then an
  // explicit Stop() — the final scrape must include them.
  registry.Add("stop.counter", 4);
  writer.Stop();
  const int writes_after_stop = writer.writes();
  EXPECT_GE(writes_after_stop, 1);
  std::string content = ReadAll(path);
  EXPECT_NE(content.find("xmlprop_stop_counter_total 5"), std::string::npos)
      << content;
  // Idempotent: a second Stop (and the destructor after it) neither
  // rewrites nor double-joins.
  registry.Add("stop.counter", 100);
  writer.Stop();
  EXPECT_EQ(writer.writes(), writes_after_stop);
  content = ReadAll(path);
  std::remove(path);
  EXPECT_NE(content.find("xmlprop_stop_counter_total 5"), std::string::npos)
      << content;
}

}  // namespace
}  // namespace obs
}  // namespace xmlprop
