#include "xml/path.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "xml/parser.h"

namespace xmlprop {
namespace {

PathExpr P(std::string_view text) {
  Result<PathExpr> p = PathExpr::Parse(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status().ToString();
  return std::move(p).value();
}

TEST(PathParseTest, Epsilon) {
  EXPECT_TRUE(P("").IsEpsilon());
  EXPECT_TRUE(P("ε").IsEpsilon());
  EXPECT_TRUE(P("epsilon").IsEpsilon());
  EXPECT_EQ(P("").ToString(), "ε");
}

TEST(PathParseTest, SimplePaths) {
  EXPECT_EQ(P("book").ToString(), "book");
  EXPECT_EQ(P("book/chapter").ToString(), "book/chapter");
  EXPECT_EQ(P("book/chapter/@number").ToString(), "book/chapter/@number");
}

TEST(PathParseTest, DescendantForms) {
  EXPECT_EQ(P("//book").ToString(), "//book");
  EXPECT_EQ(P("a//b").ToString(), "a//b");
  EXPECT_EQ(P("//").ToString(), "//");
  EXPECT_EQ(P("a//").ToString(), "a//");
  EXPECT_EQ(P("//book/chapter").ToString(), "//book/chapter");
}

TEST(PathParseTest, AdjacentDescendantsNormalize) {
  EXPECT_EQ(P("a////b").ToString(), "a//b");
  EXPECT_EQ(P("////").ToString(), "//");
}

TEST(PathParseTest, Errors) {
  EXPECT_FALSE(PathExpr::Parse("/a").ok());
  EXPECT_FALSE(PathExpr::Parse("a/").ok());
  EXPECT_FALSE(PathExpr::Parse("a//@x/b").ok());  // attr not last
  EXPECT_FALSE(PathExpr::Parse("@a/b").ok());
  EXPECT_FALSE(PathExpr::Parse("a b").ok());
  EXPECT_FALSE(PathExpr::Parse("@").ok());
  EXPECT_FALSE(PathExpr::Parse("a/ /b").ok());
}

TEST(PathParseTest, RoundTrip) {
  for (const char* text :
       {"ε", "a", "a/b", "//a", "a//b", "//", "a//", "//a/b/@c"}) {
    EXPECT_EQ(P(P(text).ToString()).ToString(), P(text).ToString()) << text;
  }
}

TEST(PathTest, Predicates) {
  EXPECT_TRUE(P("a/b").IsSimple());
  EXPECT_FALSE(P("a//b").IsSimple());
  EXPECT_TRUE(P("a/@x").EndsWithAttribute());
  EXPECT_FALSE(P("a/x").EndsWithAttribute());
  EXPECT_EQ(P("a//b").length(), 3u);
}

TEST(PathTest, ConcatNormalizes) {
  EXPECT_EQ(P("a//").Concat(P("//b")).ToString(), "a//b");
  EXPECT_EQ(P("").Concat(P("x")).ToString(), "x");
  EXPECT_EQ(P("x").Concat(P("")).ToString(), "x");
}

TEST(PathTest, MatchesWord) {
  auto W = [](std::initializer_list<const char*> labels) {
    return std::vector<std::string>(labels.begin(), labels.end());
  };
  EXPECT_TRUE(P("").MatchesWord({}));
  EXPECT_FALSE(P("").MatchesWord(W({"a"})));
  EXPECT_TRUE(P("a/b").MatchesWord(W({"a", "b"})));
  EXPECT_FALSE(P("a/b").MatchesWord(W({"a"})));
  EXPECT_TRUE(P("//").MatchesWord({}));
  EXPECT_TRUE(P("//").MatchesWord(W({"a", "b", "c"})));
  EXPECT_TRUE(P("//b").MatchesWord(W({"a", "b"})));
  EXPECT_TRUE(P("//b").MatchesWord(W({"b"})));
  EXPECT_FALSE(P("//b").MatchesWord(W({"b", "a"})));
  EXPECT_TRUE(P("a//c").MatchesWord(W({"a", "x", "y", "c"})));
  EXPECT_TRUE(P("a//c").MatchesWord(W({"a", "c"})));
  EXPECT_FALSE(P("a//c").MatchesWord(W({"x", "c"})));
  // Attribute labels: matched verbatim, never absorbed by "//".
  EXPECT_TRUE(P("a/@x").MatchesWord(W({"a", "@x"})));
  EXPECT_FALSE(P("//").MatchesWord(W({"@x"})));
  EXPECT_TRUE(P("//@x").MatchesWord(W({"a", "@x"})));
}

TEST(PathTest, MatchesWordAgreesWithEval) {
  // For every element in a document, root-path membership in L(P) must
  // coincide with P's evaluated node set.
  Result<Tree> tree = ParseXml(R"(<r>
      <book isbn="1"><chapter number="1"><name>n</name></chapter></book>
      <chapter number="9"/>
  </r>)");
  ASSERT_TRUE(tree.ok());
  for (const char* text : {"//chapter", "book/chapter", "chapter",
                           "//book//name", "//name", "book//"}) {
    PathExpr p = P(text);
    std::vector<NodeId> evaluated = p.EvalFromRoot(*tree);
    for (NodeId n : tree->DescendantsOrSelf(tree->root())) {
      bool in_eval = std::find(evaluated.begin(), evaluated.end(), n) !=
                     evaluated.end();
      EXPECT_EQ(p.MatchesWord(tree->PathLabelsFromRoot(n)), in_eval)
          << text << " node " << n;
    }
  }
}

TEST(PathTest, WithoutTrailingAttribute) {
  EXPECT_EQ(P("a/@x").WithoutTrailingAttribute().ToString(), "a");
  EXPECT_EQ(P("@x").WithoutTrailingAttribute().ToString(), "ε");
  EXPECT_EQ(P("a/b").WithoutTrailingAttribute().ToString(), "a/b");
}

TEST(PathEvalTest, Fig1Examples) {
  // Example 2.2 shapes: [[//book]], chapter sets, //@number.
  Result<Tree> tree = ParseXml(R"(<r>
    <book isbn="123">
      <chapter number="1"/><chapter number="10"/>
    </book>
    <book isbn="234">
      <chapter number="1"><section number="1"/><section number="2"/></chapter>
    </book>
  </r>)");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(P("//book").EvalFromRoot(*tree).size(), 2u);
  EXPECT_EQ(P("//@number").EvalFromRoot(*tree).size(), 5u);
  EXPECT_EQ(P("//chapter").EvalFromRoot(*tree).size(), 3u);
  EXPECT_EQ(P("book/chapter/section").EvalFromRoot(*tree).size(), 2u);
  EXPECT_EQ(P("//section/@number").EvalFromRoot(*tree).size(), 2u);
  // Relative evaluation.
  NodeId book1 = P("book").EvalFromRoot(*tree)[0];
  EXPECT_EQ(P("chapter").Eval(*tree, book1).size(), 2u);
  EXPECT_EQ(P("//chapter").Eval(*tree, book1).size(), 2u);
  // ε yields the start node itself.
  EXPECT_EQ(P("").Eval(*tree, book1), std::vector<NodeId>{book1});
}

TEST(PathEvalTest, DescendantOrSelfIncludesSelf) {
  Result<Tree> tree = ParseXml("<a><a><a/></a></a>");
  ASSERT_TRUE(tree.ok());
  // "//" from root = all 3 'a' elements (self included).
  EXPECT_EQ(P("//").EvalFromRoot(*tree).size(), 3u);
}

TEST(PathEvalTest, NoDuplicatesFromOverlappingMatches) {
  Result<Tree> tree = ParseXml("<r><a><b/></a></r>");
  ASSERT_TRUE(tree.ok());
  // //a//b and ////b could both reach b multiple ways; dedup required.
  EXPECT_EQ(P("//b").EvalFromRoot(*tree).size(), 1u);
  EXPECT_EQ(P("//a//b").EvalFromRoot(*tree).size(), 1u);
}

struct ContainsCase {
  const char* super;
  const char* sub;
  bool expected;
};

class PathContainsTest : public ::testing::TestWithParam<ContainsCase> {};

TEST_P(PathContainsTest, Decides) {
  const ContainsCase& c = GetParam();
  EXPECT_EQ(PathContains(P(c.super), P(c.sub)), c.expected)
      << c.sub << " ⊆ " << c.super;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PathContainsTest,
    ::testing::Values(
        ContainsCase{"//", "a/b/c", true}, ContainsCase{"//", "", true},
        ContainsCase{"//a", "a", true}, ContainsCase{"//a", "b/a", true},
        ContainsCase{"//a", "a/b", false}, ContainsCase{"a", "//a", false},
        ContainsCase{"//a//b", "a/x/b", true},
        ContainsCase{"//a//b", "a/b", true},
        ContainsCase{"//a//b", "b/a", false},
        ContainsCase{"a//b", "a/b", true},
        ContainsCase{"a//b", "x/a/b", false},
        ContainsCase{"//", "//", true}, ContainsCase{"//a", "//a", true},
        ContainsCase{"//a/b", "//a/b", true},
        ContainsCase{"//b", "//a/b", true},
        ContainsCase{"//a/b", "//b", false},
        ContainsCase{"a", "a", true}, ContainsCase{"a", "b", false},
        ContainsCase{"", "", true}, ContainsCase{"", "a", false},
        ContainsCase{"a//", "a", true}, ContainsCase{"a//", "a/b/c", true},
        ContainsCase{"a//", "b", false},
        // Attributes: // never absorbs an attribute step.
        ContainsCase{"//@x", "a/@x", true},
        ContainsCase{"//", "@x", false},
        ContainsCase{"//@x", "@x", true},
        ContainsCase{"a/@x", "a/@x", true},
        ContainsCase{"a/@x", "a/@y", false},
        // Mixed wildcards both sides.
        ContainsCase{"//a//", "a/b", true},
        ContainsCase{"//a//", "x/a", true},
        ContainsCase{"//a//", "x/b", false},
        ContainsCase{"a//b//c", "a/b/c", true},
        ContainsCase{"a//c", "a//b//c", true},
        ContainsCase{"a//b//c", "a//c", false}));

TEST(PathEquivalentTest, Basics) {
  EXPECT_TRUE(PathEquivalent(P("a////b"), P("a//b")));
  EXPECT_TRUE(PathEquivalent(P("////"), P("//")));
  EXPECT_FALSE(PathEquivalent(P("//a"), P("a")));
}

TEST(PathSplitsTest, CoverAllCuts) {
  std::vector<std::pair<PathExpr, PathExpr>> splits = P("a/b").Splits();
  ASSERT_EQ(splits.size(), 3u);
  EXPECT_EQ(splits[0].first.ToString(), "ε");
  EXPECT_EQ(splits[2].second.ToString(), "ε");
}

TEST(PathSplitsTest, DescendantOverlapSplit) {
  // a//b must offer the split (a//, //b) since // ≡ ////.
  bool found = false;
  for (const auto& [t1, t2] : P("a//b").Splits()) {
    if (t1.ToString() == "a//" && t2.ToString() == "//b") found = true;
    // Every split must reconstruct the original language.
    EXPECT_TRUE(PathEquivalent(t1.Concat(t2), P("a//b")));
  }
  EXPECT_TRUE(found);
}

// Property: containment agrees with membership of words sampled from the
// sub-expression (language semantics check).
class ContainmentSamplingProperty : public ::testing::TestWithParam<int> {};

PathExpr RandomPath(Rng* rng, bool allow_attr) {
  std::vector<PathAtom> atoms;
  int len = rng->UniformInt(0, 4);
  for (int i = 0; i < len; ++i) {
    if (rng->Bernoulli(0.3)) {
      atoms.push_back(PathAtom::Descendant());
    } else {
      atoms.push_back(PathAtom::Label(std::string(1, 'a' + static_cast<char>(
                                                          rng->UniformInt(0, 2)))));
    }
  }
  if (allow_attr && rng->Bernoulli(0.2)) {
    atoms.push_back(PathAtom::Label("@x"));
  }
  return PathExpr::FromAtoms(std::move(atoms));
}

// Samples a concrete label word from L(p).
std::vector<std::string> SampleWord(const PathExpr& p, Rng* rng) {
  std::vector<std::string> word;
  for (const PathAtom& a : p.atoms()) {
    if (a.is_descendant()) {
      int n = rng->UniformInt(0, 2);
      for (int i = 0; i < n; ++i) {
        word.push_back(std::string(1, 'a' + static_cast<char>(
                                           rng->UniformInt(0, 2))));
      }
    } else {
      word.push_back(a.label);
    }
  }
  return word;
}

// Naive matcher: word ∈ L(p)?
bool Matches(const PathExpr& p, const std::vector<std::string>& word,
             size_t i, size_t j) {
  if (j == p.atoms().size()) return i == word.size();
  const PathAtom& a = p.atoms()[j];
  if (a.is_descendant()) {
    if (Matches(p, word, i, j + 1)) return true;
    return i < word.size() && word[i][0] != '@' && Matches(p, word, i + 1, j);
  }
  return i < word.size() && word[i] == a.label && Matches(p, word, i + 1, j + 1);
}

TEST_P(ContainmentSamplingProperty, SampledWordsRespectContainment) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  for (int iter = 0; iter < 50; ++iter) {
    PathExpr sub = RandomPath(&rng, true);
    PathExpr super = RandomPath(&rng, true);
    bool contains = PathContains(super, sub);
    for (int s = 0; s < 10; ++s) {
      std::vector<std::string> word = SampleWord(sub, &rng);
      ASSERT_TRUE(Matches(sub, word, 0, 0));
      if (contains) {
        EXPECT_TRUE(Matches(super, word, 0, 0))
            << sub.ToString() << " ⊆ " << super.ToString();
      }
    }
    // And membership failures refute claimed containment (one-sided; a
    // failed sample when !contains is not required, but if every word of
    // sub matches super across many samples we don't assert containment —
    // soundness only).
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentSamplingProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace xmlprop
