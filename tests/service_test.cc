#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "paper_fixtures.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "tools/cli.h"

namespace xmlprop {
namespace service {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Protocol codec + framing

TEST(ServiceProtocolTest, RequestRoundTripsThroughJson) {
  Request request;
  request.op = "run";
  request.argv = {"check", "--keys", "a \"quoted\" path",
                  "--fd", "a, b -> c\nnewline\ttab"};
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->op, request.op);
  EXPECT_EQ(decoded->argv, request.argv);
}

TEST(ServiceProtocolTest, ReplyRoundTripsThroughJson) {
  Reply reply;
  reply.reject = "overloaded";
  reply.exit_code = 2;
  reply.out = "line one\nline \"two\"\n";
  reply.err = "warning: \t control \x01 char";
  reply.body = "{\"k\": 1}";
  reply.wall_ms = 12.5;
  reply.request_id = 42;
  auto decoded = DecodeReply(EncodeReply(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->reject, reply.reject);
  EXPECT_EQ(decoded->exit_code, reply.exit_code);
  EXPECT_EQ(decoded->out, reply.out);
  EXPECT_EQ(decoded->err, reply.err);
  EXPECT_EQ(decoded->body, reply.body);
  EXPECT_DOUBLE_EQ(decoded->wall_ms, reply.wall_ms);
  EXPECT_EQ(decoded->request_id, reply.request_id);
}

TEST(ServiceProtocolTest, EncodedFramesAreNdjsonLines) {
  const std::string encoded = EncodeRequest({"ping", {}});
  ASSERT_FALSE(encoded.empty());
  EXPECT_EQ(encoded.back(), '\n');
  EXPECT_EQ(encoded.find('\n'), encoded.size() - 1);  // exactly one line
}

TEST(ServiceProtocolTest, GarbageIsRejected) {
  EXPECT_FALSE(DecodeRequest("not json").ok());
  EXPECT_FALSE(DecodeRequest("{\"op\": ").ok());
  EXPECT_FALSE(DecodeReply("[]").ok());
}

TEST(ServiceProtocolTest, UnknownFieldsAreSkippedForForwardCompat) {
  auto decoded = DecodeRequest(
      "{\"op\": \"ping\", \"future\": {\"nested\": [1, 2, \"x\"]}, "
      "\"argv\": []}\n");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->op, "ping");
}

TEST(ServiceProtocolTest, FramesRoundTripOverASocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = EncodeRequest({"run", {"check", "--keys", "k"}});
  ASSERT_TRUE(WriteFrame(fds[0], payload));
  auto read = ReadFrame(fds[1]);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, payload);
  ::close(fds[0]);
  auto eof = ReadFrame(fds[1]);
  EXPECT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);  // clean EOF
  ::close(fds[1]);
}

TEST(ServiceProtocolTest, MalformedNumbersAreRejectedNotThrown) {
  // "-", ".", "e5" pass the permissive number-char scan and "1e999"
  // overflows double; each must produce a parse error — an exception
  // here would escape a daemon pool worker and terminate the process.
  EXPECT_FALSE(DecodeReply("{\"exit_code\": -}").ok());
  EXPECT_FALSE(DecodeReply("{\"wall_ms\": .}").ok());
  EXPECT_FALSE(DecodeReply("{\"wall_ms\": e5}").ok());
  EXPECT_FALSE(DecodeReply("{\"wall_ms\": 1e999}").ok());
  EXPECT_FALSE(DecodeReply("{\"wall_ms\": 1.2.3}").ok());
  // Skipped unknown fields run through the same number path.
  EXPECT_FALSE(DecodeRequest("{\"op\": \"ping\", \"x\": 1e999}").ok());
  // Sane numbers still decode.
  auto decoded = DecodeReply("{\"exit_code\": 2, \"wall_ms\": 1.5e1}");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->exit_code, 2);
  EXPECT_DOUBLE_EQ(decoded->wall_ms, 15.0);
}

TEST(ServiceProtocolTest, OversizedFrameIsRejectedBeforeBuffering) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const uint32_t huge = kMaxFrameBytes + 1;
  unsigned char prefix[4] = {
      static_cast<unsigned char>(huge & 0xff),
      static_cast<unsigned char>((huge >> 8) & 0xff),
      static_cast<unsigned char>((huge >> 16) & 0xff),
      static_cast<unsigned char>((huge >> 24) & 0xff)};
  ASSERT_EQ(::write(fds[0], prefix, 4), 4);
  auto read = ReadFrame(fds[1]);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// Server end-to-end (in-process daemon over a real Unix socket)

std::string NormalizeMs(const std::string& text) {
  return std::regex_replace(text,
                            std::regex("built in [0-9.eE+-]+ ms"),
                            "built in _ ms");
}

class ServiceServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("xmlprop_service_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    keys_path_ = Write("keys.txt", testing_fixtures::kPaperKeys);
    doc_path_ = Write("doc.xml", testing_fixtures::kFig1Xml);
    rules_path_ = Write("rules.txt", testing_fixtures::kPaperTransformation);
    socket_path_ = (dir_ / "sock").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Write(const std::string& name, const std::string& content) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    return path;
  }
  static std::string ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  static CommandExecutor CliExecutor() {
    return [](const std::vector<std::string>& argv, ArtifactProvider* provider,
              std::ostream& out, std::ostream& err) {
      return RunForService(argv, provider, out, err);
    };
  }

  ServiceServer::Options BaseOptions() {
    ServiceServer::Options options;
    options.socket_path = socket_path_;
    options.workers = 4;
    return options;
  }

  Reply Run(const std::vector<std::string>& argv) {
    auto reply = Call(socket_path_, Request{"run", argv});
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    return reply.ok() ? *reply : Reply{};
  }

  fs::path dir_;
  std::string keys_path_;
  std::string doc_path_;
  std::string rules_path_;
  std::string socket_path_;
};

TEST_F(ServiceServerTest, PingMetricsStatsAndShutdown) {
  ServiceServer server(BaseOptions(), CliExecutor());
  ASSERT_TRUE(server.Start().ok());

  auto pong = Call(socket_path_, {"ping", {}});
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->body, "pong");
  EXPECT_TRUE(pong->reject.empty());

  Reply check = Run({"check", "--keys", keys_path_, "--doc", doc_path_});
  EXPECT_EQ(check.exit_code, 0);
  EXPECT_NE(check.out.find("OK: document satisfies all 7"), std::string::npos);
  EXPECT_GT(check.request_id, 0u);

  auto metrics = Call(socket_path_, {"metrics", {}});
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("xmlprop_service_requests_total 1"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("# EOF"), std::string::npos);

  auto stats = Call(socket_path_, {"stats", {}});
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->body.find("\"requests_served\": 1"), std::string::npos);

  auto bye = Call(socket_path_, {"shutdown", {}});
  ASSERT_TRUE(bye.ok());
  server.Wait();
  EXPECT_EQ(server.requests_served(), 1u);
  // The socket file is gone after a clean shutdown.
  EXPECT_FALSE(fs::exists(socket_path_));
}

TEST_F(ServiceServerTest, RoutedStdoutIsByteIdenticalToOneShot) {
  ServiceServer server(BaseOptions(), CliExecutor());
  ASSERT_TRUE(server.Start().ok());

  const std::vector<std::vector<std::string>> commands = {
      {"check", "--keys", keys_path_, "--doc", doc_path_},
      {"check", "--keys", keys_path_, "--doc", doc_path_, "--index"},
      {"cover", "--keys", keys_path_, "--rules", rules_path_, "--relation",
       "book"},
      {"cover", "--keys", keys_path_, "--rules", rules_path_, "--relation",
       "chapter", "--naive"},
      {"propagate", "--keys", keys_path_, "--rules", rules_path_,
       "--relation", "chapter", "--fd", "inBook, number -> name"},
      {"shred", "--rules", rules_path_, "--doc", doc_path_, "--sql"},
  };
  for (const auto& argv : commands) {
    std::ostringstream out, err;
    const int code = RunCli(argv, out, err);
    // Twice through the daemon: the second pass is all warm cache.
    for (int pass = 0; pass < 2; ++pass) {
      Reply reply = Run(argv);
      EXPECT_EQ(reply.exit_code, code) << argv[0] << " pass " << pass;
      EXPECT_EQ(NormalizeMs(reply.out), NormalizeMs(out.str()))
          << argv[0] << " pass " << pass;
    }
  }
  const SessionCache::Stats stats = server.cache()->stats();
  EXPECT_GT(stats.hits, 0u);

  server.Shutdown();
}

TEST_F(ServiceServerTest, UnsupportedProcessGlobalFlagGetsTypedReject) {
  ServiceServer server(BaseOptions(), CliExecutor());
  ASSERT_TRUE(server.Start().ok());
  for (const std::string flag :
       {"--trace", "--profile", "--log-level=debug", "--crash-dump=x",
        "--metrics-out=x", "--quiet"}) {
    Reply reply =
        Run({"check", "--keys", keys_path_, "--doc", doc_path_, flag});
    EXPECT_EQ(reply.reject, "unsupported-flag") << flag;
    EXPECT_EQ(reply.exit_code, 1) << flag;
  }
  // Per-request engine/closure-index toggles stay allowed.
  Reply ok = Run({"cover", "--keys", keys_path_, "--rules", rules_path_,
                  "--relation", "book", "--engine", "--no-closure-index"});
  EXPECT_TRUE(ok.reject.empty());
  EXPECT_EQ(ok.exit_code, 0);
  server.Shutdown();
}

TEST_F(ServiceServerTest, NestedServeIsRejected) {
  ServiceServer server(BaseOptions(), CliExecutor());
  ASSERT_TRUE(server.Start().ok());
  Reply reply = Run({"serve", "--socket", (dir_ / "nested").string()});
  EXPECT_EQ(reply.exit_code, 1);
  EXPECT_NE(reply.err.find("cannot nest"), std::string::npos);
  server.Shutdown();
}

TEST_F(ServiceServerTest, AdmissionControlRejectsBeyondMaxInflight) {
  // A blocking executor holds the only admitted slot; the next request
  // must get the typed overloaded reject instead of queueing.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool entered = false;
  ServiceServer::Options options = BaseOptions();
  options.max_inflight = 1;
  ServiceServer server(
      options, [&](const std::vector<std::string>&, ArtifactProvider*,
                   std::ostream& out, std::ostream&) {
        {
          std::unique_lock<std::mutex> lock(mu);
          entered = true;
          cv.notify_all();
          cv.wait(lock, [&] { return release; });
        }
        out << "done\n";
        return 0;
      });
  ASSERT_TRUE(server.Start().ok());

  std::thread blocked([&] {
    auto reply = Call(socket_path_, {"run", {"slow"}});
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(reply->reject.empty());
    EXPECT_EQ(reply->out, "done\n");
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  auto rejected = Call(socket_path_, {"run", {"other"}});
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->reject, "overloaded");
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  blocked.join();
  EXPECT_EQ(server.requests_rejected(), 1u);
  server.Shutdown();
}

TEST_F(ServiceServerTest, IdleConnectionTimesOutAndFreesItsSlot) {
  ServiceServer::Options options = BaseOptions();
  options.max_inflight = 1;
  options.io_timeout_ms = 200;
  ServiceServer server(options, CliExecutor());
  ASSERT_TRUE(server.Start().ok());

  // A peer that connects and never sends a frame would hold the only
  // admitted slot (and a pool worker) forever without SO_RCVTIMEO.
  const int idle = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(idle, 0);
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  ASSERT_EQ(::connect(idle, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // After --io-timeout-ms the daemon must reclaim the worker: a real
  // request eventually succeeds even at max_inflight=1.
  bool served = false;
  for (int i = 0; i < 100 && !served; ++i) {
    auto reply = Call(socket_path_,
                      {"run", {"check", "--keys", keys_path_, "--doc",
                               doc_path_}});
    if (reply.ok() && reply->reject.empty()) {
      served = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_TRUE(served);

  // The idle peer was told why before its connection closed.
  auto frame = ReadFrame(idle);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  auto reject = DecodeReply(*frame);
  ASSERT_TRUE(reject.ok()) << reject.status().ToString();
  EXPECT_EQ(reject->reject, "bad-request");
  ::close(idle);
  server.Shutdown();
}

TEST_F(ServiceServerTest, ConcurrentRequestsProduceIdenticalVerdicts) {
  ServiceServer::Options options = BaseOptions();
  options.max_inflight = 64;
  ServiceServer server(options, CliExecutor());
  ASSERT_TRUE(server.Start().ok());

  std::ostringstream expected_out, expected_err;
  const std::vector<std::string> argv = {"cover",      "--keys",
                                         keys_path_,   "--rules",
                                         rules_path_,  "--relation",
                                         "section"};
  const int expected_code = RunCli(argv, expected_out, expected_err);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5; ++i) {
        auto reply = Call(socket_path_, {"run", argv});
        if (!reply.ok() || !reply->reject.empty() ||
            reply->exit_code != expected_code ||
            reply->out != expected_out.str()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), 40u);
  server.Shutdown();
}

TEST_F(ServiceServerTest, AccessLogAndScrapeFileCoverTheDaemonLifetime) {
  ServiceServer::Options options = BaseOptions();
  options.access_log = (dir_ / "access.ndjson").string();
  options.metrics_out = (dir_ / "metrics.prom").string();
  options.metrics_interval_ms = 20;
  ServiceServer server(options, CliExecutor());
  ASSERT_TRUE(server.Start().ok());
  Run({"check", "--keys", keys_path_, "--doc", doc_path_});
  Run({"implies", "--keys", keys_path_, "--key", "(ε, (//book, {@isbn}))"});
  server.Shutdown();

  const std::string log = ReadAll(options.access_log);
  EXPECT_NE(log.find("\"cmd\": \"check\""), std::string::npos);
  EXPECT_NE(log.find("\"cmd\": \"implies\""), std::string::npos);
  // One JSON object per line, every line carries the id + wall time.
  std::istringstream lines(log);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"id\": "), std::string::npos);
    EXPECT_NE(line.find("\"wall_ms\": "), std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, 2);

  // The final scrape snapshot (written at shutdown) sums both requests.
  const std::string prom = ReadAll(options.metrics_out);
  EXPECT_NE(prom.find("xmlprop_service_requests_total 2"), std::string::npos);
  EXPECT_NE(prom.find("# EOF"), std::string::npos);
}

TEST_F(ServiceServerTest, ShutdownIsIdempotentAndStartAfterStaleSocketWorks) {
  {
    ServiceServer server(BaseOptions(), CliExecutor());
    ASSERT_TRUE(server.Start().ok());
    server.Shutdown();
    server.Shutdown();  // second call is a no-op
  }
  // A stale socket file (e.g. after SIGKILL) must not block a restart.
  { std::ofstream stale(socket_path_); }
  ServiceServer server(BaseOptions(), CliExecutor());
  ASSERT_TRUE(server.Start().ok());
  auto pong = Call(socket_path_, {"ping", {}});
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->body, "pong");
  server.Shutdown();
}

TEST_F(ServiceServerTest, ClientReportsMissingDaemonAsNotFound) {
  auto reply = Call((dir_ / "nothing_here").string(), {"ping", {}});
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// PeriodicMetricsWriter re-arm (satellite: daemon-lifetime readiness)

TEST(PeriodicMetricsWriterTest, RestartReArmsAStoppedWriter) {
  const std::string path =
      (fs::temp_directory_path() /
       ("xmlprop_pmw_restart_" +
        std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
        ".prom"))
          .string();
  obs::MetricRegistry registry;
  registry.Add("service.requests", 1);
  obs::PeriodicMetricsWriter writer(&registry, path, 10);
  writer.Stop();
  const int writes_after_stop = writer.writes();

  registry.Add("service.requests", 1);
  writer.Restart();
  writer.Restart();  // idempotent on a running writer
  for (int i = 0; i < 200 && writer.writes() == writes_after_stop; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(writer.writes(), writes_after_stop);
  writer.Stop();

  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("xmlprop_service_requests_total 2"),
            std::string::npos);
  fs::remove(path);
}

}  // namespace
}  // namespace service
}  // namespace xmlprop
