#include "obs/cost_attribution.h"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace xmlprop {
namespace obs {
namespace {

TEST(CostAttributionTest, InternIsStableAndIdempotent) {
  CostAttribution costs;
  const uint32_t a = costs.Intern("key A");
  const uint32_t b = costs.Intern("key B");
  EXPECT_NE(a, b);
  EXPECT_EQ(costs.Intern("key A"), a);
  EXPECT_EQ(costs.size(), 2u);
}

TEST(CostAttributionTest, AddAccumulatesPerKindAndSnapshotLabels) {
  CostAttribution costs;
  const uint32_t id = costs.Intern("orders.key");
  costs.Add(id, CostKind::kContexts, 3);
  costs.Add(id, CostKind::kContexts, 2);
  costs.Add(id, CostKind::kViolations, 1);

  const std::vector<ConstraintCostRow> rows = costs.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].label, "orders.key");
  EXPECT_EQ(rows[0].Get(CostKind::kContexts), 5u);
  EXPECT_EQ(rows[0].Get(CostKind::kViolations), 1u);
  EXPECT_EQ(rows[0].Get(CostKind::kTuplesHashed), 0u);
}

TEST(CostAttributionTest, NoConstraintChargesAreDropped) {
  CostAttribution costs;
  costs.Add(CostAttribution::kNoConstraint, CostKind::kContexts, 99);
  EXPECT_TRUE(costs.Snapshot().empty());
}

TEST(CostAttributionTest, WallMsConvertsNanoseconds) {
  ConstraintCostRow row;
  row.values[static_cast<int>(CostKind::kWallNs)] = 2'500'000;
  EXPECT_DOUBLE_EQ(row.WallMs(), 2.5);
}

TEST(CostAttributionTest, CostAddNeedsBothTableAndScope) {
  // No table installed: CostAdd is a no-op even inside a scope.
  {
    CostScope scope(0);
    CostAdd(CostKind::kContexts);
  }
  CostAttribution costs;
  const uint32_t id = costs.Intern("scoped.key");
  {
    ScopedCostAttribution active(&costs);
    // Table installed but no constraint in scope: dropped.
    CostAdd(CostKind::kContexts);
    EXPECT_FALSE(CostActive());
    {
      CostScope scope(id);
      EXPECT_TRUE(CostActive());
      CostAdd(CostKind::kContexts, 4);
    }
    // Scope restored: dropped again.
    CostAdd(CostKind::kContexts, 100);
  }
  const std::vector<ConstraintCostRow> rows = costs.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get(CostKind::kContexts), 4u);
}

TEST(CostAttributionTest, CostScopesNest) {
  CostAttribution costs;
  const uint32_t outer = costs.Intern("outer");
  const uint32_t inner = costs.Intern("inner");
  ScopedCostAttribution active(&costs);
  CostScope outer_scope(outer);
  CostAdd(CostKind::kImplicationCalls);
  {
    CostScope inner_scope(inner);
    CostAdd(CostKind::kImplicationCalls, 2);
  }
  CostAdd(CostKind::kImplicationCalls);

  const std::vector<ConstraintCostRow> rows = costs.Snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].label, "outer");
  EXPECT_EQ(rows[0].Get(CostKind::kImplicationCalls), 2u);
  EXPECT_EQ(rows[1].label, "inner");
  EXPECT_EQ(rows[1].Get(CostKind::kImplicationCalls), 2u);
}

TEST(CostAttributionTest, ScopedCostTimerChargesWallTime) {
  CostAttribution costs;
  const uint32_t id = costs.Intern("timed");
  {
    ScopedCostAttribution active(&costs);
    ScopedCostTimer timer(id);
    // Any nonzero amount of work; steady_clock resolution guarantees > 0
    // after a sleep.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::vector<ConstraintCostRow> rows = costs.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0].Get(CostKind::kWallNs), 0u);
  EXPECT_GT(rows[0].WallMs(), 0.0);
}

TEST(CostAttributionTest, TimerWithoutActiveTableChargesNothing) {
  CostAttribution costs;
  const uint32_t id = costs.Intern("untimed");
  { ScopedCostTimer timer(id); }
  EXPECT_EQ(costs.Snapshot()[0].Get(CostKind::kWallNs), 0u);
}

TEST(CostAttributionTest, ConcurrentChargesNeverLoseIncrements) {
  CostAttribution costs;
  const uint32_t id = costs.Intern("contended");
  ScopedCostAttribution active(&costs);
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&costs, id] {
      ScopedCostAttribution nested(&costs);
      CostScope scope(id);
      for (int i = 0; i < kIters; ++i) CostAdd(CostKind::kTuplesHashed);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(costs.Snapshot()[0].Get(CostKind::kTuplesHashed),
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST(CostAttributionTest, ConcurrentInternsYieldDistinctStableIds) {
  CostAttribution costs;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<uint32_t> ids(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&costs, &ids, t] { ids[t] = costs.Intern("shared.label"); });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(ids[t], ids[0]);
  EXPECT_EQ(costs.size(), 1u);
}

TEST(CostAttributionTest, SortHotFirstOrdersByWallThenViolations) {
  std::vector<ConstraintCostRow> rows(4);
  rows[0].label = "cold";
  rows[0].values[static_cast<int>(CostKind::kWallNs)] = 10;
  rows[1].label = "hot";
  rows[1].values[static_cast<int>(CostKind::kWallNs)] = 1000;
  rows[2].label = "b-tied";
  rows[2].values[static_cast<int>(CostKind::kWallNs)] = 500;
  rows[2].values[static_cast<int>(CostKind::kViolations)] = 2;
  rows[3].label = "a-tied";
  rows[3].values[static_cast<int>(CostKind::kWallNs)] = 500;
  rows[3].values[static_cast<int>(CostKind::kViolations)] = 2;

  SortHotFirst(&rows);
  EXPECT_EQ(rows[0].label, "hot");
  EXPECT_EQ(rows[1].label, "a-tied") << "label ascending breaks exact ties";
  EXPECT_EQ(rows[2].label, "b-tied");
  EXPECT_EQ(rows[3].label, "cold");
}

TEST(CostAttributionTest, InternBeyondCapacityDropsToNoConstraint) {
  CostAttribution costs;
  uint32_t last = 0;
  for (uint32_t i = 0; i < CostAttribution::kMaxConstraints; ++i) {
    last = costs.Intern("c" + std::to_string(i));
  }
  EXPECT_NE(last, CostAttribution::kNoConstraint);
  EXPECT_EQ(costs.Intern("one.too.many"), CostAttribution::kNoConstraint);
  // Charging the overflow id is a silent no-op, not a write out of bounds.
  costs.Add(CostAttribution::kNoConstraint, CostKind::kContexts, 1);
  EXPECT_EQ(costs.size(), CostAttribution::kMaxConstraints);
}

}  // namespace
}  // namespace obs
}  // namespace xmlprop
