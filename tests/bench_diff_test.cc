// Tests for the bench-regression gate: BENCH report parsing, verdict
// classification (pass / regression / improvement / identity error),
// per-row tolerance overrides, and the rendered summaries.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/bench_diff.h"

namespace xmlprop {
namespace benchdiff {
namespace {

// A two-row report in the exact shape bench_util.h emits.
constexpr const char* kBaselineJson = R"({"bench":"fig7a","rows":[
{"mode":"engine_off","fields":50,"wall_ms":100.0,"checks":1275},
{"mode":"engine_warm","fields":50,"wall_ms":10.0,"checks":1275}
]})";

std::string WithWallMs(double off_ms, double warm_ms) {
  return std::string("{\"bench\":\"fig7a\",\"rows\":[") +
         "{\"mode\":\"engine_off\",\"fields\":50,\"wall_ms\":" +
         std::to_string(off_ms) + ",\"checks\":1275}," +
         "{\"mode\":\"engine_warm\",\"fields\":50,\"wall_ms\":" +
         std::to_string(warm_ms) + ",\"checks\":1275}]}";
}

BenchReport Parse(const std::string& text) {
  Result<BenchReport> result = ParseBenchJson(text);
  EXPECT_TRUE(result.ok()) << result.status().message();
  return *result;
}

TEST(BenchDiffParseTest, RoundTripsReportShape) {
  const BenchReport report = Parse(kBaselineJson);
  EXPECT_EQ(report.bench, "fig7a");
  ASSERT_EQ(report.rows.size(), 2u);

  const BenchRow& row = report.rows[0];
  const Value* mode = row.Find("mode");
  ASSERT_NE(mode, nullptr);
  EXPECT_EQ(mode->kind, Value::Kind::kString);
  EXPECT_EQ(mode->str, "engine_off");
  const Value* wall = row.Find("wall_ms");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->kind, Value::Kind::kNumber);
  EXPECT_DOUBLE_EQ(wall->num, 100.0);
  EXPECT_EQ(row.Find("nope"), nullptr);

  // Label carries the string and shape columns, in file order.
  EXPECT_EQ(row.Label(), "mode=engine_off fields=50 checks=1275");
}

TEST(BenchDiffParseTest, ParsesEscapesAndBools) {
  const BenchReport report = Parse(
      R"({"bench":"x","rows":[{"mode":"a\"b\\c","hit":true,"miss":false}]})");
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].Find("mode")->str, "a\"b\\c");
  EXPECT_TRUE(report.rows[0].Find("hit")->boolean);
  EXPECT_FALSE(report.rows[0].Find("miss")->boolean);
}

TEST(BenchDiffParseTest, RejectsMalformedJson) {
  EXPECT_FALSE(ParseBenchJson("").ok());
  EXPECT_FALSE(ParseBenchJson("{\"bogus\":1}").ok());  // unknown key
  EXPECT_FALSE(ParseBenchJson("{\"bench\":\"x\",\"rows\":[{").ok());
  // Nested objects are outside the BENCH format.
  EXPECT_FALSE(
      ParseBenchJson(R"({"bench":"x","rows":[{"a":{"b":1}}]})").ok());
}

TEST(BenchDiffTest, IdenticalReportsPass) {
  const BenchReport base = Parse(kBaselineJson);
  const DiffResult result = DiffReports(base, base, DiffOptions{});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.regressions, 0);
  EXPECT_EQ(result.errors, 0);
  EXPECT_EQ(result.improvements, 0);
}

TEST(BenchDiffTest, WithinToleranceIsAPass) {
  const BenchReport base = Parse(kBaselineJson);
  // +10% on both rows: inside the default ±15% gate.
  const BenchReport current = Parse(WithWallMs(110.0, 11.0));
  EXPECT_TRUE(DiffReports(base, current, DiffOptions{}).ok());
}

TEST(BenchDiffTest, FlagsInjectedSlowdown) {
  const BenchReport base = Parse(kBaselineJson);
  // 2x on the warm row only — the acceptance scenario.
  const BenchReport current = Parse(WithWallMs(100.0, 20.0));
  const DiffResult result = DiffReports(base, current, DiffOptions{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.regressions, 1);
  EXPECT_EQ(result.errors, 0);

  bool found = false;
  for (const DiffLine& line : result.lines) {
    if (line.kind != DiffLine::Kind::kRegression) continue;
    found = true;
    EXPECT_EQ(line.column, "wall_ms");
    EXPECT_EQ(line.row, "mode=engine_warm fields=50 checks=1275");
    EXPECT_DOUBLE_EQ(line.baseline, 10.0);
    EXPECT_DOUBLE_EQ(line.current, 20.0);
    EXPECT_DOUBLE_EQ(line.ratio, 2.0);
  }
  EXPECT_TRUE(found);
}

TEST(BenchDiffTest, ReportsImprovements) {
  const BenchReport base = Parse(kBaselineJson);
  const BenchReport current = Parse(WithWallMs(50.0, 10.0));
  const DiffResult result = DiffReports(base, current, DiffOptions{});
  EXPECT_TRUE(result.ok()) << "improvements must not fail the gate";
  EXPECT_EQ(result.improvements, 1);
}

TEST(BenchDiffTest, PerRowToleranceOverridesDefault) {
  // The warm row declares tolerance 1.5, so its 2x stays a pass while
  // the same 2x on the off row (default 0.15) regresses.
  const BenchReport base = Parse(R"({"bench":"fig7a","rows":[
{"mode":"engine_off","fields":50,"wall_ms":100.0},
{"mode":"engine_warm","fields":50,"wall_ms":10.0,"tolerance":1.5}
]})");
  const BenchReport current = Parse(WithWallMs(100.0, 20.0));
  EXPECT_TRUE(DiffReports(base, current, DiffOptions{}).ok());

  const BenchReport doubled = Parse(WithWallMs(200.0, 20.0));
  const DiffResult result = DiffReports(base, doubled, DiffOptions{});
  EXPECT_EQ(result.regressions, 1);
}

TEST(BenchDiffTest, IdentityMismatchIsAnError) {
  const BenchReport base = Parse(kBaselineJson);
  // Same timing, different workload shape: checks changed.
  const BenchReport current = Parse(R"({"bench":"fig7a","rows":[
{"mode":"engine_off","fields":50,"wall_ms":100.0,"checks":9999},
{"mode":"engine_warm","fields":50,"wall_ms":10.0,"checks":1275}
]})");
  const DiffResult result = DiffReports(base, current, DiffOptions{});
  EXPECT_FALSE(result.ok());
  EXPECT_GE(result.errors, 1);
  EXPECT_EQ(result.regressions, 0);
}

TEST(BenchDiffTest, BenchNameAndRowCountMismatchesAreErrors) {
  const BenchReport base = Parse(kBaselineJson);

  BenchReport renamed = base;
  renamed.bench = "fig7b";
  EXPECT_GE(DiffReports(base, renamed, DiffOptions{}).errors, 1);

  BenchReport truncated = base;
  truncated.rows.pop_back();
  EXPECT_GE(DiffReports(base, truncated, DiffOptions{}).errors, 1);
}

TEST(BenchDiffTest, MissingGatedColumnIsAnError) {
  const BenchReport base = Parse(kBaselineJson);
  const BenchReport current = Parse(R"({"bench":"fig7a","rows":[
{"mode":"engine_off","fields":50,"checks":1275},
{"mode":"engine_warm","fields":50,"wall_ms":10.0,"checks":1275}
]})");
  EXPECT_GE(DiffReports(base, current, DiffOptions{}).errors, 1);
}

TEST(BenchDiffRenderTest, TextAndMarkdownCarryTheVerdicts) {
  const BenchReport base = Parse(kBaselineJson);
  const BenchReport current = Parse(WithWallMs(100.0, 20.0));
  const std::vector<DiffResult> results = {
      DiffReports(base, current, DiffOptions{})};

  const std::string text = DiffToText(results, /*verbose=*/false);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos) << text;
  EXPECT_NE(text.find("wall_ms"), std::string::npos) << text;
  EXPECT_NE(text.find("engine_warm"), std::string::npos) << text;

  const std::string verbose = DiffToText(results, /*verbose=*/true);
  EXPECT_GT(verbose.size(), text.size()) << "verbose shows pass lines";

  const std::string markdown = DiffToMarkdown(results);
  EXPECT_NE(markdown.find("|"), std::string::npos);
  EXPECT_NE(markdown.find("fig7a"), std::string::npos);
  EXPECT_NE(markdown.find("engine_warm"), std::string::npos);
}

}  // namespace
}  // namespace benchdiff
}  // namespace xmlprop
