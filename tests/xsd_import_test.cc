#include "keys/xsd_import.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "keys/satisfaction.h"
#include "paper_fixtures.h"

namespace xmlprop {
namespace {

using testing_fixtures::Fig1Tree;

constexpr const char* kBookXsd = R"(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="r">
    <xs:key name="bookKey">
      <xs:selector xpath=".//book"/>
      <xs:field xpath="@isbn"/>
    </xs:key>
  </xs:element>
  <xs:element name="book">
    <xs:key name="chapterKey">
      <xs:selector xpath="chapter"/>
      <xs:field xpath="@number"/>
    </xs:key>
  </xs:element>
  <xs:element name="chapter">
    <xs:unique name="sectionUnique">
      <xs:selector xpath="./section"/>
      <xs:field xpath="@number"/>
    </xs:unique>
  </xs:element>
</xs:schema>)";

TEST(XsdImportTest, ImportsKeysWithPaperSemantics) {
  Result<XsdImportResult> imported = ImportXsdKeys(kBookXsd);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  ASSERT_EQ(imported->keys.size(), 3u);

  const XmlKey& book = imported->keys[0];
  EXPECT_EQ(book.name(), "bookKey");
  EXPECT_EQ(book.context().ToString(), "//r");
  EXPECT_EQ(book.target().ToString(), "//book");
  EXPECT_EQ(book.attributes(), std::vector<std::string>{"isbn"});

  const XmlKey& chapter = imported->keys[1];
  EXPECT_EQ(chapter.context().ToString(), "//book");
  EXPECT_EQ(chapter.target().ToString(), "chapter");
  EXPECT_EQ(chapter.attributes(), std::vector<std::string>{"number"});

  const XmlKey& section = imported->keys[2];
  EXPECT_EQ(section.name(), "sectionUnique");
  EXPECT_EQ(section.target().ToString(), "section");
}

TEST(XsdImportTest, UniqueProducesWarning) {
  Result<XsdImportResult> imported = ImportXsdKeys(kBookXsd);
  ASSERT_TRUE(imported.ok());
  ASSERT_EQ(imported->warnings.size(), 1u);
  EXPECT_NE(imported->warnings[0].find("sectionUnique"), std::string::npos);
  EXPECT_NE(imported->warnings[0].find("K⁻"), std::string::npos);
}

TEST(XsdImportTest, ImportedKeysHoldOnFig1) {
  // The imported constraints correspond to K1/K2/K6 of the paper and the
  // Fig. 1 document satisfies them.
  Result<XsdImportResult> imported = ImportXsdKeys(kBookXsd);
  ASSERT_TRUE(imported.ok());
  Tree tree = Fig1Tree();
  for (const XmlKey& key : imported->keys) {
    EXPECT_TRUE(Satisfies(tree, key)) << key.ToString();
  }
}

TEST(XsdImportTest, RejectsNonSchemaRoot) {
  Result<XsdImportResult> r = ImportXsdKeys("<html/>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("xs:schema"), std::string::npos);
}

TEST(XsdImportTest, RejectsElementField) {
  // K⁻ restricts key paths to attributes (Section 2).
  Result<XsdImportResult> r = ImportXsdKeys(R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="r">
        <xs:key name="bad">
          <xs:selector xpath="book"/>
          <xs:field xpath="isbn"/>
        </xs:key>
      </xs:element>
    </xs:schema>)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("K⁻"), std::string::npos);
}

TEST(XsdImportTest, RejectsSelectorUnion) {
  Result<XsdImportResult> r = ImportXsdKeys(R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="r">
        <xs:key name="bad">
          <xs:selector xpath="book|journal"/>
          <xs:field xpath="@id"/>
        </xs:key>
      </xs:element>
    </xs:schema>)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("union"), std::string::npos);
}

TEST(XsdImportTest, RejectsOrphanConstraint) {
  Result<XsdImportResult> r = ImportXsdKeys(R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:key name="orphan">
        <xs:selector xpath="book"/>
        <xs:field xpath="@id"/>
      </xs:key>
    </xs:schema>)");
  ASSERT_FALSE(r.ok());
}

TEST(XsdImportTest, RejectsMissingSelector) {
  Result<XsdImportResult> r = ImportXsdKeys(R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="r">
        <xs:key name="bad">
          <xs:field xpath="@id"/>
        </xs:key>
      </xs:element>
    </xs:schema>)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("selector"), std::string::npos);
}

TEST(XsdImportTest, EmptySchemaYieldsNoKeys) {
  Result<XsdImportResult> r = ImportXsdKeys(
      R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"/>)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->keys.empty());
  EXPECT_TRUE(r->warnings.empty());
}

constexpr const char* kKeyrefXsd = R"(
  <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="db">
      <xs:key name="bookKey">
        <xs:selector xpath=".//book"/>
        <xs:field xpath="@isbn"/>
      </xs:key>
      <xs:keyref name="citeRef" refer="bookKey">
        <xs:selector xpath=".//cite"/>
        <xs:field xpath="@ref"/>
      </xs:keyref>
    </xs:element>
  </xs:schema>)";

TEST(XsdImportTest, KeyrefBecomesForeignKey) {
  Result<XsdImportResult> imported = ImportXsdKeys(kKeyrefXsd);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  ASSERT_EQ(imported->foreign_keys.size(), 1u);
  const XmlForeignKey& fk = imported->foreign_keys[0];
  EXPECT_EQ(fk.name(), "citeRef");
  EXPECT_EQ(fk.context().ToString(), "//db");
  EXPECT_EQ(fk.source_target().ToString(), "//cite");
  EXPECT_EQ(fk.source_attrs(), std::vector<std::string>{"ref"});
  EXPECT_EQ(fk.ref_target().ToString(), "//book");
  EXPECT_EQ(fk.ref_attrs(), std::vector<std::string>{"isbn"});
}

TEST(XsdImportTest, KeyrefToUnknownKeyRejected) {
  Result<XsdImportResult> r = ImportXsdKeys(R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="db">
        <xs:keyref name="bad" refer="ghost">
          <xs:selector xpath="cite"/><xs:field xpath="@ref"/>
        </xs:keyref>
      </xs:element>
    </xs:schema>)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown key"), std::string::npos);
}

TEST(XsdImportTest, KeyrefAcrossElementsRejected) {
  Result<XsdImportResult> r = ImportXsdKeys(R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="a">
        <xs:key name="k"><xs:selector xpath="x"/><xs:field xpath="@i"/></xs:key>
      </xs:element>
      <xs:element name="b">
        <xs:keyref name="bad" refer="k">
          <xs:selector xpath="y"/><xs:field xpath="@r"/>
        </xs:keyref>
      </xs:element>
    </xs:schema>)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("scoping element"), std::string::npos);
}

TEST(XsdImportTest, KeyrefArityMismatchRejected) {
  Result<XsdImportResult> r = ImportXsdKeys(R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="db">
        <xs:key name="k">
          <xs:selector xpath="x"/>
          <xs:field xpath="@a"/><xs:field xpath="@b"/>
        </xs:key>
        <xs:keyref name="bad" refer="k">
          <xs:selector xpath="y"/><xs:field xpath="@r"/>
        </xs:keyref>
      </xs:element>
    </xs:schema>)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("field count"), std::string::npos);
}

TEST(XsdExportTest, RoundTripsThroughImport) {
  Result<std::vector<XmlKey>> keys = ParseKeySet(R"(
    K1: (ε, (//book, {@isbn}))
    K2: (//book, (chapter, {@number}))
    K6: (//chapter, (section, {@number}))
    K3: (//book, (title, {}))
  )");
  ASSERT_TRUE(keys.ok());
  Result<std::string> xsd = ExportXsdKeys(*keys, "r");
  ASSERT_TRUE(xsd.ok()) << xsd.status().ToString();
  Result<XsdImportResult> back = ImportXsdKeys(*xsd);
  ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n" << *xsd;
  ASSERT_EQ(back->keys.size(), keys->size());
  // K1's ε context becomes //r (the root element scope); the others are
  // preserved verbatim. Export groups keys by element, so search by
  // content rather than position.
  bool k1_found = false;
  for (const XmlKey& b : back->keys) {
    if (b.context().ToString() == "//r" &&
        b.target().ToString() == "//book") {
      k1_found = true;
    }
  }
  EXPECT_TRUE(k1_found) << *xsd;
  for (size_t i = 1; i < keys->size(); ++i) {
    bool found = false;
    for (const XmlKey& b : back->keys) {
      if (b.target() == (*keys)[i].target() &&
          b.context() == (*keys)[i].context() &&
          b.attributes() == (*keys)[i].attributes()) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << (*keys)[i].ToString();
  }
}

class XsdRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(XsdRoundTripProperty, RandomExpressibleKeySetsRoundTrip) {
  // Random keys within the exportable fragment (ε or //label contexts,
  // no interior //): export → import must preserve every key's target
  // and attributes, with ε contexts rescoped to the root element.
  Rng rng(static_cast<uint64_t>(GetParam()) * 353 + 11);
  std::vector<std::string> labels = {"a", "b", "c"};
  std::vector<XmlKey> keys;
  int count = rng.UniformInt(1, 6);
  for (int i = 0; i < count; ++i) {
    PathExpr context;  // ε
    if (rng.Bernoulli(0.5)) {
      Result<PathExpr> c = PathExpr::Parse("//" + rng.Choose(labels));
      ASSERT_TRUE(c.ok());
      context = *c;
    }
    std::string target_text = rng.Bernoulli(0.3) ? "//" : "";
    target_text += rng.Choose(labels);
    if (rng.Bernoulli(0.4)) target_text += "/" + rng.Choose(labels);
    Result<PathExpr> target = PathExpr::Parse(target_text);
    ASSERT_TRUE(target.ok());
    std::vector<std::string> attrs;
    for (int a = 0; a < rng.UniformInt(0, 2); ++a) {
      attrs.push_back("k" + std::to_string(a));
    }
    keys.emplace_back("K" + std::to_string(i), context, *target, attrs);
  }

  Result<std::string> xsd = ExportXsdKeys(keys, "root");
  ASSERT_TRUE(xsd.ok()) << xsd.status().ToString();
  Result<XsdImportResult> back = ImportXsdKeys(*xsd);
  ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n" << *xsd;
  ASSERT_EQ(back->keys.size(), keys.size());
  for (const XmlKey& k : keys) {
    PathExpr expected_context = k.context();
    if (expected_context.IsEpsilon()) {
      Result<PathExpr> c = PathExpr::Parse("//root");
      ASSERT_TRUE(c.ok());
      expected_context = *c;
    }
    bool found = false;
    for (const XmlKey& b : back->keys) {
      if (b.name() == k.name()) {
        EXPECT_TRUE(b.context() == expected_context) << k.ToString();
        EXPECT_TRUE(b.target() == k.target()) << k.ToString();
        EXPECT_EQ(b.attributes(), k.attributes()) << k.ToString();
        found = true;
      }
    }
    EXPECT_TRUE(found) << k.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XsdRoundTripProperty,
                         ::testing::Range(0, 10));

TEST(XsdExportTest, RejectsInexpressibleContexts) {
  Result<std::vector<XmlKey>> keys =
      ParseKeySet("(//a/b, (c, {@x}))");  // two-step context
  ASSERT_TRUE(keys.ok());
  Result<std::string> xsd = ExportXsdKeys(*keys);
  ASSERT_FALSE(xsd.ok());
  EXPECT_NE(xsd.status().message().find("scoping"), std::string::npos);
}

TEST(XsdExportTest, RejectsInteriorDescendantTargets) {
  Result<std::vector<XmlKey>> keys = ParseKeySet("(ε, (a//b, {@x}))");
  ASSERT_TRUE(keys.ok());
  EXPECT_FALSE(ExportXsdKeys(*keys).ok());
}

TEST(XsdImportTest, UnprefixedSchemaAccepted) {
  Result<XsdImportResult> r = ImportXsdKeys(R"(
    <schema>
      <element name="r">
        <key name="k">
          <selector xpath=".//item"/>
          <field xpath="@sku"/>
        </key>
      </element>
    </schema>)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->keys.size(), 1u);
  EXPECT_EQ(r->keys[0].target().ToString(), "//item");
}

}  // namespace
}  // namespace xmlprop
