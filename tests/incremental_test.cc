#include "keys/incremental.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "paper_fixtures.h"
#include "synth/doc_generator.h"
#include "xml/parser.h"

namespace xmlprop {
namespace {

using testing_fixtures::PaperKeys;

Tree Fragment(std::string_view xml) {
  Result<Tree> t = ParseXml(xml);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(t).value();
}

std::vector<XmlKey> Keys(std::initializer_list<const char*> texts) {
  std::vector<XmlKey> out;
  for (const char* t : texts) {
    Result<XmlKey> k = XmlKey::Parse(t);
    EXPECT_TRUE(k.ok()) << k.status().ToString();
    out.push_back(std::move(k).value());
  }
  return out;
}

TEST(IncrementalTest, CleanImportReportsNothing) {
  IncrementalChecker checker(Keys({"(ε, (//book, {@isbn}))"}));
  Result<std::vector<TaggedViolation>> v1 =
      checker.Append(Fragment(R"(<book isbn="1"><title>A</title></book>)"));
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(v1->empty());
  Result<std::vector<TaggedViolation>> v2 =
      checker.Append(Fragment(R"(<book isbn="2"/>)"));
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(v2->empty());
  EXPECT_TRUE(SatisfiesAll(checker.document(), checker.keys()));
  EXPECT_EQ(checker.violation_count(), 0u);
}

TEST(IncrementalTest, DuplicateAcrossAppendsDetected) {
  IncrementalChecker checker(Keys({"(ε, (//book, {@isbn}))"}));
  ASSERT_TRUE(checker.Append(Fragment(R"(<book isbn="1"/>)")).ok());
  Result<std::vector<TaggedViolation>> v =
      checker.Append(Fragment(R"(<book isbn="1"/>)"));
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->size(), 1u);
  EXPECT_EQ((*v)[0].violation.kind, KeyViolation::Kind::kDuplicateValues);
  // node1 is the earlier book, node2 the new one.
  EXPECT_LT((*v)[0].violation.node1, (*v)[0].violation.node2);
}

TEST(IncrementalTest, MissingAttributeDetectedOnArrival) {
  IncrementalChecker checker(Keys({"(ε, (//book, {@isbn}))"}));
  Result<std::vector<TaggedViolation>> v =
      checker.Append(Fragment("<book/>"));
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->size(), 1u);
  EXPECT_EQ((*v)[0].violation.kind, KeyViolation::Kind::kMissingAttribute);
  EXPECT_EQ((*v)[0].violation.attribute, "isbn");
}

TEST(IncrementalTest, RelativeKeyScopesPerParent) {
  // chapter numbers repeat across books but not within one.
  IncrementalChecker checker(Keys({"(//book, (chapter, {@number}))"}));
  ASSERT_TRUE(
      checker.Append(Fragment(R"(<book isbn="1"><chapter number="1"/></book>)"))
          .ok());
  // A second book with chapter 1 is fine.
  Result<std::vector<TaggedViolation>> ok =
      checker.Append(Fragment(R"(<book isbn="2"><chapter number="1"/></book>)"));
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->empty());
  // Appending chapter 1 INTO book 1 collides.
  NodeId book1 = checker.document().node(checker.document().root()).children[0];
  Result<std::vector<TaggedViolation>> bad =
      checker.Append(book1, Fragment(R"(<chapter number="1"/>)"));
  ASSERT_TRUE(bad.ok());
  ASSERT_EQ(bad->size(), 1u);
  EXPECT_EQ((*bad)[0].violation.kind, KeyViolation::Kind::kDuplicateValues);
}

TEST(IncrementalTest, NewContextInsideFragmentChecked) {
  // A whole book arrives with an internal duplicate.
  IncrementalChecker checker(Keys({"(//book, (chapter, {@number}))"}));
  Result<std::vector<TaggedViolation>> v = checker.Append(Fragment(
      R"(<book isbn="1"><chapter number="1"/><chapter number="1"/></book>)"));
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->size(), 1u);
}

TEST(IncrementalTest, EmptyAttributeSetKeys) {
  IncrementalChecker checker(Keys({"(//book, (title, {}))"}));
  ASSERT_TRUE(
      checker.Append(Fragment(R"(<book><title>A</title></book>)")).ok());
  NodeId book = checker.document().node(checker.document().root()).children[0];
  Result<std::vector<TaggedViolation>> v =
      checker.Append(book, Fragment("<title>B</title>"));
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->size(), 1u);
  EXPECT_EQ((*v)[0].violation.kind, KeyViolation::Kind::kDuplicateValues);
}

TEST(IncrementalTest, DescendantContextKeys) {
  // Context //book matches books nested anywhere, including inside the
  // fragment being appended.
  IncrementalChecker checker(Keys({"(//book, (chapter, {@number}))"}));
  Result<std::vector<TaggedViolation>> v = checker.Append(Fragment(
      R"(<shelf><book isbn="1"><chapter number="2"/><chapter number="2"/></book></shelf>)"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 1u);
}

TEST(IncrementalTest, GraftRejectsBadParent) {
  IncrementalChecker checker(Keys({"(ε, (//book, {@isbn}))"}));
  EXPECT_FALSE(checker.Append(999, Fragment("<book/>")).ok());
}

// Property: the incremental verdicts agree with the batch checker —
// same total violation count, and "no violations" == "satisfies".
class IncrementalAgreesWithBatch : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalAgreesWithBatch, RandomAppendSequences) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2713 + 19);
  std::vector<XmlKey> sigma = PaperKeys();
  IncrementalChecker checker(sigma);

  RandomTreeSpec spec;
  spec.max_depth = 3;
  spec.max_children = 2;
  size_t incremental_total = 0;
  for (int step = 0; step < 6; ++step) {
    // Random fragment, random existing element as the graft point.
    Tree fragment = RandomTree(spec, &rng);
    // RandomTree roots are labelled "r"; give fragments realistic roots.
    Tree relabeled(rng.Choose(spec.labels));
    for (NodeId a : fragment.node(fragment.root()).attributes) {
      relabeled
          .CreateAttribute(relabeled.root(), fragment.node(a).label,
                           fragment.node(a).value)
          .ok();
    }
    for (NodeId c : fragment.node(fragment.root()).children) {
      if (fragment.node(c).kind == NodeKind::kText) {
        relabeled.CreateText(relabeled.root(), fragment.node(c).value);
      } else {
        EXPECT_TRUE(
            relabeled.Graft(relabeled.root(), fragment, c).ok());
      }
    }
    std::vector<NodeId> elements =
        checker.document().DescendantsOrSelf(checker.document().root());
    NodeId parent = elements[rng.UniformIndex(elements.size())];
    Result<std::vector<TaggedViolation>> v =
        checker.Append(parent, relabeled);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    incremental_total += v->size();
  }

  std::vector<TaggedViolation> batch = CheckAll(checker.document(), sigma);
  EXPECT_EQ(incremental_total, batch.size());
  EXPECT_EQ(checker.violation_count(), batch.size());
  EXPECT_EQ(incremental_total == 0,
            SatisfiesAll(checker.document(), sigma));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalAgreesWithBatch,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace xmlprop
