#include "core/publish.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "keys/satisfaction.h"
#include "paper_fixtures.h"
#include "synth/doc_generator.h"
#include "transform/eval.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xmlprop {
namespace {

using testing_fixtures::Fig1Tree;
using testing_fixtures::PaperKeys;
using testing_fixtures::UniversalTable;

// Instances compare as sets of tuples.
bool SameTuples(const Instance& a, const Instance& b) {
  if (a.size() != b.size()) return false;
  for (const Tuple& t : a.tuples()) {
    bool found = false;
    for (const Tuple& u : b.tuples()) {
      if (t == u) found = true;
    }
    if (!found) return false;
  }
  return true;
}

TEST(PublishTest, Fig1RoundTripsThroughUniversalRelation) {
  // Shred Fig. 1 into the universal relation, publish it back to XML,
  // and re-shred: the instances must coincide, and the published
  // document must satisfy all the keys.
  Tree original = Fig1Tree();
  TableTree u = UniversalTable();
  std::vector<XmlKey> sigma = PaperKeys();

  Instance shredded = EvalTableTree(original, u);
  Result<Tree> published = PublishXml(shredded, u, sigma);
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_TRUE(SatisfiesAll(*published, sigma)) << WriteXml(*published);

  Instance reshredded = EvalTableTree(*published, u);
  EXPECT_TRUE(SameTuples(shredded, reshredded))
      << "shredded:\n" << shredded.ToString() << "\npublished:\n"
      << WriteXml(*published) << "\nreshredded:\n"
      << reshredded.ToString();
}

TEST(PublishTest, GroupsByKeysNotByTuples) {
  // Two chapters of one book: the Cartesian-free instance has two tuples
  // sharing the book key; publishing must create ONE book element.
  Tree original = Fig1Tree();
  TableTree u = UniversalTable();
  Result<Tree> published =
      PublishXml(EvalTableTree(original, u), u, PaperKeys());
  ASSERT_TRUE(published.ok());
  Result<PathExpr> books = PathExpr::Parse("//book");
  ASSERT_TRUE(books.ok());
  EXPECT_EQ(books->EvalFromRoot(*published).size(), 2u);
  Result<PathExpr> chapters = PathExpr::Parse("//book/chapter");
  ASSERT_TRUE(chapters.ok());
  EXPECT_EQ(chapters->EvalFromRoot(*published).size(), 3u);
}

TEST(PublishTest, UnkeyedMultiValuedVariablesReconstruct) {
  // Two authors (unkeyed) × two chapters: the product instance must fold
  // back into exactly two author elements.
  Result<Tree> original = ParseXml(R"(<r><book isbn="1">
      <title>T</title>
      <author><name>A</name><contact>a@x</contact></author>
      <author><name>B</name><contact>b@x</contact></author>
      <chapter number="1"><name>N1</name></chapter>
      <chapter number="2"><name>N2</name></chapter>
  </book></r>)");
  ASSERT_TRUE(original.ok());
  TableTree u = UniversalTable();
  // K7 (one contact author) does not hold here; use the structural keys.
  Result<std::vector<XmlKey>> sigma = ParseKeySet(R"(
      K1: (ε, (//book, {@isbn}))
      K2: (//book, (chapter, {@number}))
      K3: (//book, (title, {}))
      K4: (//book/chapter, (name, {}))
      K6: (//book/chapter, (section, {@number}))
      K5: (//book/chapter/section, (name, {}))
      KA: (//author, (name, {}))
      KB: (//author, (contact, {}))
  )");
  ASSERT_TRUE(sigma.ok());

  Instance shredded = EvalTableTree(*original, u);
  EXPECT_EQ(shredded.size(), 4u);  // 2 authors × 2 chapters
  Result<Tree> published = PublishXml(shredded, u, *sigma);
  ASSERT_TRUE(published.ok()) << published.status().ToString();

  Result<PathExpr> authors = PathExpr::Parse("//author");
  ASSERT_TRUE(authors.ok());
  EXPECT_EQ(authors->EvalFromRoot(*published).size(), 2u)
      << WriteXml(*published);

  Instance reshredded = EvalTableTree(*published, u);
  EXPECT_TRUE(SameTuples(shredded, reshredded)) << WriteXml(*published);
}

TEST(PublishTest, NullRowsContributeOnlyPrefixes) {
  // A book with no chapters shreds to a null-suffixed tuple; publishing
  // must create the book but no chapter.
  Result<Tree> original = ParseXml(
      R"(<r><book isbn="9"><title>Solo</title></book></r>)");
  ASSERT_TRUE(original.ok());
  TableTree u = UniversalTable();
  Result<Tree> published =
      PublishXml(EvalTableTree(*original, u), u, PaperKeys());
  ASSERT_TRUE(published.ok());
  Result<PathExpr> chapters = PathExpr::Parse("//chapter");
  ASSERT_TRUE(chapters.ok());
  EXPECT_TRUE(chapters->EvalFromRoot(*published).empty());
  Result<PathExpr> books = PathExpr::Parse("//book");
  ASSERT_TRUE(books.ok());
  ASSERT_EQ(books->EvalFromRoot(*published).size(), 1u);
}

TEST(PublishTest, MultiLabelStepsNestChains) {
  // A mapping with a two-label step publishes as a nested chain.
  Result<Transformation> t = ParseTransformation(R"(
    rule R {
      v: value(A)
      X := Xr/wrap/item
      A := X/@id
    })");
  ASSERT_TRUE(t.ok());
  Result<TableTree> table = TableTree::Build(t->rules()[0]);
  ASSERT_TRUE(table.ok());
  Result<std::vector<XmlKey>> sigma =
      ParseKeySet("(ε, (wrap/item, {@id}))");
  ASSERT_TRUE(sigma.ok());
  Instance instance(table->schema());
  Tuple t1(1), t2(1);
  t1[0] = "1";
  t2[0] = "2";
  ASSERT_TRUE(instance.Add(t1).ok());
  ASSERT_TRUE(instance.Add(t2).ok());
  Result<Tree> published = PublishXml(instance, *table, *sigma);
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  Result<PathExpr> items = PathExpr::Parse("wrap/item");
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(items->EvalFromRoot(*published).size(), 2u)
      << WriteXml(*published);
}

TEST(PublishTest, InconsistentInstanceRejected) {
  // Same book key, two different titles: impossible under the keys.
  TableTree u = UniversalTable();
  Instance bad(u.schema());
  Tuple t1(8), t2(8);
  t1[0] = "1";  // bookIsbn
  t1[1] = "Title A";
  t2[0] = "1";
  t2[1] = "Title B";
  ASSERT_TRUE(bad.Add(t1).ok());
  ASSERT_TRUE(bad.Add(t2).ok());
  Result<Tree> published = PublishXml(bad, u, PaperKeys());
  ASSERT_FALSE(published.ok());
  EXPECT_NE(published.status().message().find("inconsistent"),
            std::string::npos);
}

TEST(PublishTest, SchemaMismatchRejected) {
  TableTree u = UniversalTable();
  Result<RelationSchema> other = RelationSchema::Parse("x(a)");
  ASSERT_TRUE(other.ok());
  Instance wrong(*other);
  EXPECT_FALSE(PublishXml(wrong, u, PaperKeys()).ok());
}

class PublishRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PublishRoundTrip, RandomDocumentsRoundTrip) {
  // Shred(Publish(Shred(doc))) == Shred(doc) for random key-satisfying
  // documents.
  Rng rng(static_cast<uint64_t>(GetParam()) * 4409 + 17);
  std::vector<XmlKey> sigma = PaperKeys();
  TableTree u = UniversalTable();
  RandomTreeSpec spec;
  Result<Tree> doc = RandomSatisfyingTree(spec, sigma, &rng);
  ASSERT_TRUE(doc.ok());

  Instance shredded = EvalTableTree(*doc, u);
  Result<Tree> published = PublishXml(shredded, u, sigma);
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  Instance reshredded = EvalTableTree(*published, u);
  EXPECT_TRUE(SameTuples(shredded, reshredded))
      << "doc:\n" << WriteXml(*doc) << "\npublished:\n"
      << WriteXml(*published);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PublishRoundTrip, ::testing::Range(0, 12));

}  // namespace
}  // namespace xmlprop
