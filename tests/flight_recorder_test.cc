#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xmlprop {
namespace obs {
namespace {

// Every test starts from a forgotten recorder: no registered rings, the
// sequence counter at zero, and the recorder force-enabled (the suite
// must not depend on XMLPROP_FLIGHT_RECORDER in the environment).
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetFlightRecorderEnabled(true);
    internal::ResetFlightRecorderForTest();
  }
  void TearDown() override { internal::ResetFlightRecorderForTest(); }
};

TEST_F(FlightRecorderTest, RecordsSpansMetricsAndLogs) {
  RecordSpanBegin("phase.alpha");
  RecordMetricDelta("some.counter", 7);
  RecordLogEvent(static_cast<int>(LogLevel::kWarn), "watch out");
  RecordSpanEnd("phase.alpha");

  const std::string dump = DumpFlightRecorderToString();
  EXPECT_NE(dump.find("span_begin"), std::string::npos) << dump;
  EXPECT_NE(dump.find("span_end"), std::string::npos) << dump;
  EXPECT_NE(dump.find("phase.alpha"), std::string::npos) << dump;
  EXPECT_NE(dump.find("some.counter"), std::string::npos) << dump;
  EXPECT_NE(dump.find("watch out"), std::string::npos) << dump;
}

TEST_F(FlightRecorderTest, DisabledRecorderDropsEverything) {
  SetFlightRecorderEnabled(false);
  RecordSpanBegin("invisible");
  RecordMetricDelta("invisible.counter", 1);
  SetFlightRecorderEnabled(true);

  const std::string dump = DumpFlightRecorderToString();
  EXPECT_EQ(dump.find("invisible"), std::string::npos) << dump;
}

TEST_F(FlightRecorderTest, RingKeepsOnlyTheLastCapacityEvents) {
  // Overfill the ring; only the newest kFlightRingCapacity events may
  // survive, and they must be exactly the highest-numbered ones.
  const size_t total = kFlightRingCapacity + 50;
  for (size_t i = 0; i < total; ++i) {
    RecordMetricDelta("evt." + std::to_string(i), 1);
  }
  const std::string dump = DumpFlightRecorderToString();
  EXPECT_EQ(dump.find("evt.0 "), std::string::npos) << "oldest survived";
  EXPECT_EQ(dump.find("evt.49 "), std::string::npos) << "pre-wrap survived";
  // The first retained event right after the wrap point...
  EXPECT_NE(dump.find("evt.50 "), std::string::npos) << dump.substr(0, 400);
  // ...through the newest.
  EXPECT_NE(dump.find("evt." + std::to_string(total - 1)), std::string::npos);
}

TEST_F(FlightRecorderTest, LongNamesAreTruncatedWithExplicitMarker) {
  EXPECT_EQ(FlightTruncatedTotal(), 0u);
  const std::string name(200, 'x');
  RecordMetricDelta(name, 1);
  const std::string dump = DumpFlightRecorderToString();
  // The kept prefix plus the UTF-8 ellipsis marker — truncation must be
  // visible in the dump, never a silently shortened name.
  const std::string marked =
      std::string(FlightEvent::kTruncatedTextBytes, 'x') + "\xE2\x80\xA6";
  EXPECT_NE(dump.find(marked), std::string::npos) << dump.substr(0, 400);
  EXPECT_EQ(dump.find(std::string(FlightEvent::kTruncatedTextBytes + 1, 'x')),
            std::string::npos)
      << "name not truncated to the marked prefix";
  EXPECT_EQ(FlightTruncatedTotal(), 1u);
  EXPECT_NE(dump.find("truncated_events: 1"), std::string::npos);
}

TEST_F(FlightRecorderTest, ShortNamesFillTheSlotWithoutMarkerOrCount) {
  // Exactly-capacity text still fits whole: no marker, no counter bump.
  const std::string name(FlightEvent::kTextCapacity, 'y');
  RecordMetricDelta(name, 1);
  const std::string dump = DumpFlightRecorderToString();
  EXPECT_NE(dump.find(name), std::string::npos);
  EXPECT_EQ(dump.find("\xE2\x80\xA6"), std::string::npos);
  EXPECT_EQ(FlightTruncatedTotal(), 0u);
  EXPECT_NE(dump.find("truncated_events: 0"), std::string::npos);
}

TEST_F(FlightRecorderTest, MergesThreadsInGlobalOrder) {
  RecordMetricDelta("main.first", 1);
  std::thread other([] { RecordMetricDelta("other.second", 1); });
  other.join();
  RecordMetricDelta("main.third", 1);

  const std::string dump = DumpFlightRecorderToString();
  const size_t first = dump.find("main.first");
  const size_t second = dump.find("other.second");
  const size_t third = dump.find("main.third");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  ASSERT_NE(third, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_LT(second, third);
}

TEST_F(FlightRecorderTest, DumpShowsActiveSpanStack) {
  Trace trace;
  ScopedTrace scoped(&trace);
  Span outer("outer.work");
  Span inner("inner.work");
  const std::string dump = DumpFlightRecorderToString();
  EXPECT_NE(dump.find("outer.work"), std::string::npos) << dump;
  EXPECT_NE(dump.find("inner.work"), std::string::npos) << dump;
}

TEST_F(FlightRecorderTest, OpenSpanStacksRenderCompactly) {
  Trace trace;
  ScopedTrace scoped(&trace);
  Span outer("stack.outer");
  Span inner("stack.inner");
  const std::string stacks = DumpOpenSpanStacksToString();
  EXPECT_NE(stacks.find("stack.outer > stack.inner"), std::string::npos)
      << stacks;
  EXPECT_NE(stacks.find("tid="), std::string::npos) << stacks;
}

TEST_F(FlightRecorderTest, MetricRegistryFeedsTheRing) {
  MetricRegistry registry;
  ScopedMetrics scope(&registry);
  Count("ring.fed.counter", 3);
  const std::string dump = DumpFlightRecorderToString();
  EXPECT_NE(dump.find("ring.fed.counter"), std::string::npos) << dump;
}

TEST_F(FlightRecorderTest, DumpToFdMatchesStringDump) {
  RecordMetricDelta("fd.dump.event", 9);
  char path[] = "/tmp/xmlprop_flight_fd_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  DumpFlightRecorderToFd(fd, 0);
  ::close(fd);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::remove(path);
  EXPECT_NE(buf.str().find("fd.dump.event"), std::string::npos) << buf.str();
}

TEST_F(FlightRecorderTest, ConcurrentWritersStayWellFormed) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 2000; ++i) {
        RecordMetricDelta("worker." + std::to_string(t), i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::string dump = DumpFlightRecorderToString();
  // Every line the merged dump emits for events must carry a seq marker;
  // the dump itself must terminate.
  EXPECT_NE(dump.find("worker."), std::string::npos);
}

// The crash-path acceptance test: a forked child installs the handler,
// opens spans, records events and aborts. The parent asserts the child
// died of SIGABRT and that the dump carries the last events and the
// active span stack. SIGABRT (not SIGSEGV) keeps the test ASan-friendly:
// ASan intercepts SEGV by default but leaves abort() alone.
TEST_F(FlightRecorderTest, ForcedCrashDumpHasEventsAndSpanStack) {
  char path[] = "/tmp/xmlprop_crash_dump_XXXXXX";
  const int tmp = mkstemp(path);
  ASSERT_GE(tmp, 0);
  ::close(tmp);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: deterministic recorder state, a live span stack, a known
    // tail of events, then a fatal signal.
    SetFlightRecorderEnabled(true);
    internal::ResetFlightRecorderForTest();
    InstallCrashHandler(path);
    Trace trace;
    ScopedTrace scoped(&trace);
    Span outer("crash.outer");
    Span inner("crash.inner");
    for (int i = 0; i < 300; ++i) {
      RecordMetricDelta("crash.evt." + std::to_string(i), i);
    }
    std::abort();  // never returns
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string dump = buf.str();
  std::remove(path);

  EXPECT_NE(dump.find("SIGABRT"), std::string::npos) << dump.substr(0, 400);
  // Active span stack at the moment of death.
  EXPECT_NE(dump.find("crash.outer"), std::string::npos);
  EXPECT_NE(dump.find("crash.inner"), std::string::npos);
  // The ring holds the newest kFlightRingCapacity events: 300 metric
  // events were recorded (plus span records), so the tail must be there
  // and the earliest must have been overwritten.
  EXPECT_NE(dump.find("crash.evt.299"), std::string::npos);
  EXPECT_NE(dump.find("crash.evt.200"), std::string::npos);
  EXPECT_EQ(dump.find("crash.evt.10 "), std::string::npos);
  // The header records peak RSS.
  EXPECT_NE(dump.find("vm_hwm_kb"), std::string::npos) << dump.substr(0, 400);
}

TEST_F(FlightRecorderTest, CrashDumpPathReflectsInstall) {
  InstallCrashHandler("/tmp/xmlprop_some_dump.txt");
  EXPECT_STREQ(CrashDumpPath(), "/tmp/xmlprop_some_dump.txt");
}

}  // namespace
}  // namespace obs
}  // namespace xmlprop
