#include "obs/context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/cost_attribution.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xmlprop {
namespace {

// The structural signature of a span tree: names, counts and nesting —
// everything except the (nondeterministic) durations. Two runs of the
// same workload are "bit-identical" when their shapes, counters and cost
// rows match; wall times never are.
std::string Shape(const std::vector<obs::SpanNode>& nodes) {
  std::string out;
  for (const obs::SpanNode& node : nodes) {
    out += node.name;
    out += ':';
    out += std::to_string(node.count);
    out += '(';
    out += Shape(node.children);
    out += ')';
  }
  return out;
}

// The shared workload: a root span fanning 48 items across the pool,
// each worker adopting the caller's token (span parent AND context
// binding), charging a counter and a per-constraint cost row. Everything
// it records is deterministic except timings.
void RunWorkload(ThreadPool* pool, const std::string& constraint) {
  obs::Span root("op");
  const obs::SpanToken parent = obs::CurrentSpan();
  pool->ParallelFor(48, [&](size_t begin, size_t end, size_t /*worker*/) {
    obs::SpanParent adopt(parent);
    obs::CostAttribution* costs = obs::ActiveCosts();
    obs::CostScope cost_scope(costs != nullptr
                                  ? costs->Intern(constraint)
                                  : obs::CostAttribution::kNoConstraint);
    obs::Span chunk("chunk");
    for (size_t i = begin; i < end; ++i) {
      obs::Span item("item");
      obs::Count("work.items");
      obs::CostAdd(obs::CostKind::kContexts);
    }
  });
}

// --------------------------------------------------------------------------
// Binding basics

TEST(ObsContextTest, DefaultContextIsNullBinding) {
  EXPECT_EQ(obs::CurrentObsContext(), nullptr);
  // At rest the binding is empty and no process registry is installed,
  // so the hot helpers are no-ops — the legacy default behavior.
  EXPECT_EQ(obs::ActiveMetrics(), nullptr);
  obs::Count("default.noop");  // must not crash
}

TEST(ObsContextTest, ScopedBindingRoutesChargesToTheContext) {
  obs::MetricRegistry process_registry;
  obs::ScopedMetrics process_scope(&process_registry);
  obs::ObsContext context(obs::ObsContextOptions{.name = "op-a"});
  {
    obs::ScopedObsContext bind(&context);
    EXPECT_EQ(obs::CurrentObsContext(), &context);
    EXPECT_EQ(obs::ActiveMetrics(), context.metrics());
    obs::Count("ctx.charge", 3);
  }
  EXPECT_EQ(obs::CurrentObsContext(), nullptr);
  obs::Count("process.charge");
  EXPECT_EQ(context.metrics()->Counter("ctx.charge"), 3u);
  EXPECT_EQ(context.metrics()->Counter("process.charge"), 0u);
  // The bound charge never leaked into the process registry...
  EXPECT_EQ(process_registry.Counter("ctx.charge"), 0u);
  // ...and the unbound charge fell back to it.
  EXPECT_EQ(process_registry.Counter("process.charge"), 1u);
}

TEST(ObsContextTest, ScopedContextsNestAndRestore) {
  obs::ObsContext outer(obs::ObsContextOptions{.name = "outer"});
  obs::ObsContext inner(obs::ObsContextOptions{.name = "inner"});
  obs::ScopedObsContext bind_outer(&outer);
  obs::Count("seen");
  {
    obs::ScopedObsContext bind_inner(&inner);
    EXPECT_EQ(obs::CurrentObsContext(), &inner);
    obs::Count("seen");
  }
  EXPECT_EQ(obs::CurrentObsContext(), &outer);
  obs::Count("seen");
  EXPECT_EQ(outer.metrics()->Counter("seen"), 2u);
  EXPECT_EQ(inner.metrics()->Counter("seen"), 1u);
}

TEST(ObsContextTest, SpanTokenCarriesTheBindingIntoForeignThreads) {
  obs::ObsContext context(obs::ObsContextOptions{.name = "carried"});
  obs::SpanToken token;
  {
    obs::ScopedObsContext bind(&context);
    token = obs::CurrentSpan();
  }
  // A thread that never bound the context adopts it through the token —
  // the exact mechanism ThreadPool workers use.
  std::thread worker([token] {
    EXPECT_EQ(obs::CurrentObsContext(), nullptr);
    obs::SpanParent adopt(token);
    EXPECT_NE(obs::CurrentObsContext(), nullptr);
    obs::Count("carried.charge");
  });
  worker.join();
  EXPECT_EQ(context.metrics()->Counter("carried.charge"), 1u);
}

TEST(ObsContextTest, SpanActivityStampsTheHeartbeat) {
  obs::ObsContext context(obs::ObsContextOptions{.name = "hb"});
  const uint64_t before = context.activity();
  {
    obs::ScopedObsContext bind(&context);
    obs::Span span("tick");
    obs::Count("tick.counter");
  }
  EXPECT_GT(context.activity(), before);
}

// --------------------------------------------------------------------------
// Close semantics

TEST(ObsContextTest, CloseFoldsTheShardExactlyOnce) {
  obs::MetricRegistry global;
  obs::ObsContext context(obs::ObsContextOptions{.name = "fold"});
  {
    obs::ScopedObsContext bind(&context);
    obs::Count("fold.charge", 7);
  }
  const obs::ObsContext::Result& result = context.Close(&global);
  EXPECT_TRUE(result.retained);  // no sampler: everything retained
  EXPECT_EQ(result.metrics.Counter("fold.charge"), 7u);
  EXPECT_EQ(global.Counter("fold.charge"), 7u);
  EXPECT_EQ(global.Counter("obs.traces_retained"), 1u);
  // Idempotent: a second close neither re-folds nor re-counts.
  context.Close(&global);
  EXPECT_EQ(global.Counter("fold.charge"), 7u);
  EXPECT_EQ(global.Counter("obs.traces_retained"), 1u);
}

TEST(ObsContextTest, ErrorForcesRetentionPastAZeroKeepSampler) {
  obs::TraceTailSampler sampler(0);  // retain nothing...
  obs::ObsContext plain(
      obs::ObsContextOptions{.name = "plain", .sampler = &sampler});
  {
    obs::ScopedObsContext bind(&plain);
    obs::Span span("work");
  }
  const obs::ObsContext::Result& plain_result = plain.Close(nullptr);
  EXPECT_FALSE(plain_result.retained);
  EXPECT_TRUE(plain_result.trace.roots.empty());
  EXPECT_EQ(plain_result.metrics.Counter("obs.traces_discarded"), 1u);

  obs::ObsContext failed(
      obs::ObsContextOptions{.name = "failed", .sampler = &sampler});
  {
    obs::ScopedObsContext bind(&failed);
    obs::Span span("work");
  }
  failed.MarkError("boom");
  const obs::ObsContext::Result& failed_result = failed.Close(nullptr);
  EXPECT_TRUE(failed_result.error);
  EXPECT_TRUE(failed_result.retained);  // ...unless the op failed
  ASSERT_EQ(failed_result.trace.roots.size(), 1u);
  EXPECT_EQ(failed_result.trace.roots[0].name, "work");
  EXPECT_EQ(failed_result.metrics.Counter("obs.traces_retained"), 1u);
}

// --------------------------------------------------------------------------
// Tail-based retention policy

TEST(TraceTailSamplerTest, SlowestKAdmitsOnlyTheTail) {
  obs::TraceTailSampler sampler(2);
  EXPECT_TRUE(sampler.Admit(10, false));   // heap fills
  EXPECT_TRUE(sampler.Admit(20, false));   // heap fills
  EXPECT_FALSE(sampler.Admit(5, false));   // faster than both kept
  EXPECT_TRUE(sampler.Admit(30, false));   // evicts the 10 ms slot
  EXPECT_FALSE(sampler.Admit(15, false));  // bar is now {20, 30}
  EXPECT_EQ(sampler.retained(), 3u);
  EXPECT_EQ(sampler.discarded(), 2u);
}

TEST(TraceTailSamplerTest, NegativeKeepRetainsEverything) {
  obs::TraceTailSampler sampler(-1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(sampler.Admit(i, false));
  EXPECT_EQ(sampler.retained(), 10u);
  EXPECT_EQ(sampler.discarded(), 0u);
}

TEST(TraceTailSamplerTest, ForcedAdmissionsStillRaiseTheBar) {
  obs::TraceTailSampler sampler(1);
  EXPECT_TRUE(sampler.Admit(100, true));  // forced (slow/error op)
  // An ordinary op faster than the forced one must not displace it.
  EXPECT_FALSE(sampler.Admit(50, false));
  EXPECT_TRUE(sampler.Admit(200, false));
}

// --------------------------------------------------------------------------
// Slow-op log plane

TEST(ObsContextTest, SlowOpEmitsStructuredRecordWithPhaseSummary) {
  static std::string captured;
  captured.clear();
  obs::SetLogSinkCallback(
      [](std::string_view line, void*) { captured.append(line); }, nullptr);
  obs::ObsContext context(
      obs::ObsContextOptions{.name = "slow-one", .slow_op_ms = 1e-6});
  {
    obs::ScopedObsContext bind(&context);
    obs::Span root("op");
    obs::Span phase("op.phase");
  }
  const obs::ObsContext::Result& result = context.Close(nullptr);
  obs::SetLogSinkCallback(nullptr, nullptr);
  EXPECT_TRUE(result.slow);
  EXPECT_TRUE(result.retained);
  EXPECT_NE(captured.find("slowop"), std::string::npos) << captured;
  EXPECT_NE(captured.find("slow-one"), std::string::npos) << captured;
  EXPECT_NE(captured.find("op.phase"), std::string::npos) << captured;
}

TEST(ObsContextTest, NdjsonLogRecordsCarryTheContextTag) {
  static std::string captured;
  captured.clear();
  obs::SetLogSinkCallback(
      [](std::string_view line, void*) { captured.append(line); }, nullptr);
  obs::SetLogFormat(obs::LogFormat::kNdjson);
  obs::ObsContext context(obs::ObsContextOptions{.name = "tagged"});
  {
    obs::ScopedObsContext bind(&context);
    obs::LogWarn("test", "bound record");
  }
  obs::LogWarn("test", "unbound record");
  obs::SetLogFormat(obs::LogFormat::kText);
  obs::SetLogSinkCallback(nullptr, nullptr);
  const size_t bound = captured.find("bound record");
  const size_t unbound = captured.find("unbound record");
  ASSERT_NE(bound, std::string::npos);
  ASSERT_NE(unbound, std::string::npos);
  EXPECT_NE(captured.substr(0, bound).find("\"ctx\":\"tagged\""),
            std::string::npos)
      << captured;
  EXPECT_EQ(captured.substr(bound, unbound - bound).find("\"ctx\""),
            std::string::npos)
      << "default-context record must not carry a ctx tag: " << captured;
}

// --------------------------------------------------------------------------
// Stall watchdog

TEST(StallWatchdogTest, FlagsAnIdleContextAndReArmsOnActivity) {
  static std::string captured;
  captured.clear();
  obs::SetLogSinkCallback(
      [](std::string_view line, void*) { captured.append(line); }, nullptr);
  obs::ObsContext context(obs::ObsContextOptions{.name = "stuck"});
  obs::StallWatchdog watchdog(/*stall_ms=*/20, /*poll_ms=*/5);
  watchdog.Watch(&context);
  const auto wait_for_stalls = [&](uint64_t target) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (watchdog.stalls_detected() < target &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return watchdog.stalls_detected() >= target;
  };
  ASSERT_TRUE(wait_for_stalls(1)) << "watchdog never flagged the idle context";
  // One episode = one flag: staying idle must not re-count.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(watchdog.stalls_detected(), 1u);
  // The stall report itself must not read as activity.
  const uint64_t activity_after_flag = context.activity();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(context.activity(), activity_after_flag);
  // Activity re-arms the episode; a fresh stall is flagged again.
  context.Touch();
  ASSERT_TRUE(wait_for_stalls(2)) << "watchdog did not re-arm after activity";
  watchdog.Unwatch(&context);
  obs::SetLogSinkCallback(nullptr, nullptr);
  EXPECT_GE(context.metrics()->Counter("obs.stalls_detected"), 1u);
  EXPECT_NE(captured.find("stalled"), std::string::npos) << captured;
  EXPECT_NE(captured.find("stuck"), std::string::npos) << captured;
}

TEST(StallWatchdogTest, CloseWhileWatchedUnregistersCleanly) {
  obs::MetricRegistry global;
  auto context = std::make_unique<obs::ObsContext>(
      obs::ObsContextOptions{.name = "short-lived"});
  obs::StallWatchdog watchdog(/*stall_ms=*/10000, /*poll_ms=*/5);
  watchdog.Watch(context.get());
  context->Close(&global);
  context.reset();  // the watchdog must not touch the dead context
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(watchdog.stalls_detected(), 0u);
}

// --------------------------------------------------------------------------
// The isolation acceptance test: two contexts, one pool, overlapping
// workers — each context's telemetry must equal a serial run's exactly
// (span-tree shape, counters, per-constraint cost rows), and folding
// both shards must equal the per-context sum.

TEST(ObsContextTest, ConcurrentContextsOnASharedPoolStayIsolated) {
  ThreadPool pool(3);  // forced fan-out: both ops share all 3 workers

  // Serial reference run.
  obs::ObsContext serial(obs::ObsContextOptions{.name = "serial"});
  {
    obs::ScopedObsContext bind(&serial);
    RunWorkload(&pool, "key-serial");
  }
  const obs::ObsContext::Result& reference = serial.Close(nullptr);
  const std::string reference_shape = Shape(reference.trace.roots);
  ASSERT_FALSE(reference_shape.empty());
  ASSERT_EQ(reference.metrics.Counter("work.items"), 48u);
  ASSERT_EQ(reference.constraint_costs.size(), 1u);
  ASSERT_EQ(reference.constraint_costs[0].Get(obs::CostKind::kContexts), 48u);

  // Two operations race on the same pool, each under its own context.
  obs::ObsContext ctx_a(obs::ObsContextOptions{.name = "op-a"});
  obs::ObsContext ctx_b(obs::ObsContextOptions{.name = "op-b"});
  std::thread runner_a([&] {
    obs::ScopedObsContext bind(&ctx_a);
    for (int round = 0; round < 8; ++round) RunWorkload(&pool, "key-a");
  });
  std::thread runner_b([&] {
    obs::ScopedObsContext bind(&ctx_b);
    for (int round = 0; round < 8; ++round) RunWorkload(&pool, "key-b");
  });
  runner_a.join();
  runner_b.join();

  obs::MetricRegistry global;
  const obs::ObsContext::Result& result_a = ctx_a.Close(&global);
  const obs::ObsContext::Result& result_b = ctx_b.Close(&global);

  for (const auto* result : {&result_a, &result_b}) {
    // Exactly 8 serial-identical operations, nothing interleaved: the
    // span tree is 8 copies of the reference root, the counters are 8x
    // the reference counters.
    ASSERT_EQ(result->trace.roots.size(), 1u);
    const obs::SpanNode& op = result->trace.roots[0];
    EXPECT_EQ(op.name, "op");
    EXPECT_EQ(op.count, 8u);
    EXPECT_EQ(result->metrics.Counter("work.items"), 8u * 48u);
    const obs::SpanNode* chunk = result->trace.Find("op/chunk");
    ASSERT_NE(chunk, nullptr);
    EXPECT_EQ(chunk->count, 8u * 3u);
    const obs::SpanNode* item = result->trace.Find("op/chunk/item");
    ASSERT_NE(item, nullptr);
    EXPECT_EQ(item->count, 8u * 48u);
  }
  // Disjoint cost tables: each context saw only its own constraint.
  ASSERT_EQ(result_a.constraint_costs.size(), 1u);
  EXPECT_EQ(result_a.constraint_costs[0].label, "key-a");
  EXPECT_EQ(result_a.constraint_costs[0].Get(obs::CostKind::kContexts),
            8u * 48u);
  ASSERT_EQ(result_b.constraint_costs.size(), 1u);
  EXPECT_EQ(result_b.constraint_costs[0].label, "key-b");
  EXPECT_EQ(result_b.constraint_costs[0].Get(obs::CostKind::kContexts),
            8u * 48u);
  // A single concurrent op's shape equals the serial reference shape:
  // compare one round's subtree by dividing the counts — equivalently,
  // one more serial run must reproduce the reference exactly.
  obs::ObsContext serial2(obs::ObsContextOptions{.name = "serial2"});
  {
    obs::ScopedObsContext bind(&serial2);
    RunWorkload(&pool, "key-serial");
  }
  EXPECT_EQ(Shape(serial2.Close(nullptr).trace.roots), reference_shape);

  // Process-level aggregation: the folded registry equals the sum over
  // contexts, counter by counter.
  EXPECT_EQ(global.Counter("work.items"),
            result_a.metrics.Counter("work.items") +
                result_b.metrics.Counter("work.items"));
  EXPECT_EQ(global.Counter("obs.traces_retained"), 2u);
}

}  // namespace
}  // namespace xmlprop
