#ifndef XMLPROP_TESTS_PAPER_FIXTURES_H_
#define XMLPROP_TESTS_PAPER_FIXTURES_H_

// Shared fixtures reproducing the paper's running example: the XML tree of
// Fig. 1, the key set K1-K7 of Example 2.1, the transformation of
// Example 2.4 and the universal relation of Example 3.1.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "keys/xml_key.h"
#include "transform/rule_parser.h"
#include "transform/table_tree.h"
#include "xml/parser.h"
#include "xml/tree.h"

namespace xmlprop {
namespace testing_fixtures {

/// The XML document of Fig. 1 (two books titled "XML"; the second book's
/// chapter 1 carries the two sections of Example 2.5).
inline const char* kFig1Xml = R"(<?xml version="1.0"?>
<r>
  <book isbn="123">
    <author><name>Tim Bray</name><contact>tbray@example.org</contact></author>
    <title>XML</title>
    <chapter number="1"><name>Introduction</name></chapter>
    <chapter number="10"><name>Conclusion</name></chapter>
  </book>
  <book isbn="234">
    <title>XML</title>
    <chapter number="1">
      <name>Getting Acquainted</name>
      <section number="1"><name>Fundamentals</name></section>
      <section number="2"><name>Attributes</name></section>
    </chapter>
  </book>
</r>)";

/// The key set of Example 2.1 (K1-K7).
inline const char* kPaperKeys = R"(
K1: (ε, (//book, {@isbn}))                     # a book is identified by @isbn
K2: (//book, (chapter, {@number}))             # chapter number, per book
K3: (//book, (title, {}))                      # at most one title per book
K4: (//book/chapter, (name, {}))               # at most one name per chapter
K5: (//book/chapter/section, (name, {}))       # at most one name per section
K6: (//book/chapter, (section, {@number}))     # section number, per chapter
K7: (//book, (author/contact, {}))             # at most one contact author
)";

/// The transformation of Example 2.4 (relations book, chapter, section).
inline const char* kPaperTransformation = R"(
rule book {
  isbn:    value(X1)
  title:   value(X2)
  author:  value(X4)
  contact: value(X5)
  Xa := Xr//book
  X1 := Xa/@isbn
  X2 := Xa/title
  Xb := Xa/author
  X4 := Xb/name
  X5 := Xb/contact
}
rule chapter {
  inBook: value(Y1)
  number: value(Y2)
  name:   value(Y3)
  Yb := Xr//book
  Y1 := Yb/@isbn
  Yc := Yb/chapter
  Y2 := Yc/@number
  Y3 := Yc/name
}
rule section {
  inChapt: value(Z1)
  number:  value(Z2)
  name:    value(Z3)
  Zc := Xr//book/chapter
  Z1 := Zc/@number
  Zs := Zc/section
  Z2 := Zs/@number
  Z3 := Zs/name
}
)";

/// The universal relation of Example 3.1 (Fig. 4's table tree).
inline const char* kUniversalRule = R"(
rule U {
  bookIsbn:    value(X1)
  bookTitle:   value(X2)
  bookAuthor:  value(X4)
  authContact: value(X5)
  chapNum:     value(C1)
  chapName:    value(C2)
  secNum:      value(S1)
  secName:     value(S2)
  Xa := Xr//book
  X1 := Xa/@isbn
  X2 := Xa/title
  Xg := Xa/author
  X4 := Xg/name
  X5 := Xg/contact
  Xc := Xa/chapter
  C1 := Xc/@number
  C2 := Xc/name
  Zs := Xc/section
  S1 := Zs/@number
  S2 := Zs/name
}
)";

inline Tree Fig1Tree() {
  Result<Tree> tree = ParseXml(kFig1Xml);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

inline std::vector<XmlKey> PaperKeys() {
  Result<std::vector<XmlKey>> keys = ParseKeySet(kPaperKeys);
  EXPECT_TRUE(keys.ok()) << keys.status().ToString();
  return std::move(keys).value();
}

inline Transformation PaperTransformation() {
  Result<Transformation> t = ParseTransformation(kPaperTransformation);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(t).value();
}

inline TableTree UniversalTable() {
  Result<TableRule> rule = ParseTableRule(kUniversalRule);
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
  Result<TableTree> table = TableTree::Build(*rule);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return std::move(table).value();
}

inline TableTree RuleTable(const Transformation& t, const std::string& name) {
  Result<const TableRule*> rule = t.FindRule(name);
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
  Result<TableTree> table = TableTree::Build(**rule);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return std::move(table).value();
}

}  // namespace testing_fixtures
}  // namespace xmlprop

#endif  // XMLPROP_TESTS_PAPER_FIXTURES_H_
