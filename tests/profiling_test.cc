// Tests for the deep-profiling plane: Perfetto/Chrome trace export over
// per-thread tracks, the SIGPROF sampling profiler, and the allocation
// accounting hooks.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/chrome_trace.h"
#include "obs/mem_stats.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace xmlprop {
namespace {

// Burns CPU until at least `ms` of wall time passed (the spin is
// CPU-bound, so ITIMER_PROF's CPU clock advances too).
void SpinFor(double ms) {
  const auto start = std::chrono::steady_clock::now();
  volatile uint64_t sink = 0;
  while (std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
             .count() < ms) {
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<uint64_t>(i);
  }
}

// --------------------------------------------------------------------------
// Per-thread tracks + Perfetto export

// Runs a trace whose fan-out provably lands on 3 distinct pool workers:
// each chunk spin-waits until all 3 chunks have started, which can only
// happen when every chunk holds its own thread.
obs::TraceSummary ThreeWorkerTrace() {
  ThreadPool pool(3);
  obs::Trace trace;
  {
    obs::ScopedTrace scope(&trace);
    obs::Span root("main-phase");
    const obs::SpanToken parent = obs::CurrentSpan();
    std::atomic<int> arrived{0};
    pool.ParallelFor(3, [&](size_t begin, size_t end, size_t /*worker*/) {
      obs::SpanParent adopt(parent);
      obs::Span chunk("worker-chunk");
      arrived.fetch_add(1);
      while (arrived.load() < 3) {
      }
      (void)begin;
      (void)end;
    });
  }
  return trace.Finish();
}

TEST(ThreadTrackTest, FanOutProducesOneTrackPerThread) {
  const obs::TraceSummary summary = ThreeWorkerTrace();
  // Main thread + 3 workers.
  ASSERT_EQ(summary.tracks.size(), 4u);
  int worker_tracks = 0;
  for (const obs::ThreadTrack& track : summary.tracks) {
    EXPECT_NE(track.tid, 0u);
    ASSERT_FALSE(track.events.empty());
    // Events within a track are sorted by start time.
    for (size_t i = 1; i < track.events.size(); ++i) {
      EXPECT_LE(track.events[i - 1].start_ms, track.events[i].start_ms);
    }
    if (track.thread_name.rfind("xmlprop-wk-", 0) == 0) ++worker_tracks;
  }
  // The pool named its workers and the trace captured those names.
  EXPECT_EQ(worker_tracks, 3);
}

TEST(ThreadTrackTest, WorkerNameIsStable) {
  EXPECT_EQ(ThreadPool::WorkerName(0), "xmlprop-wk-0");
  EXPECT_EQ(ThreadPool::WorkerName(3), "xmlprop-wk-3");
}

TEST(ChromeTraceTest, ExportRoundTripsThreeThreadTrace) {
  const obs::TraceSummary summary = ThreeWorkerTrace();
  const std::string json = obs::ExportChromeTrace(summary, "unit-test");

  // Frame of the Chrome Trace Event format.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");

  // Process + one thread_name metadata record per track.
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"unit-test\"}"),
            std::string::npos);
  size_t thread_meta = 0;
  for (size_t at = json.find("\"name\":\"thread_name\"");
       at != std::string::npos;
       at = json.find("\"name\":\"thread_name\"", at + 1)) {
    ++thread_meta;
  }
  EXPECT_EQ(thread_meta, summary.tracks.size());
  EXPECT_NE(json.find("xmlprop-wk-"), std::string::npos);

  // One complete event per recorded span, each carrying ts and dur.
  size_t complete_events = 0;
  for (size_t at = json.find("\"ph\":\"X\""); at != std::string::npos;
       at = json.find("\"ph\":\"X\"", at + 1)) {
    ++complete_events;
  }
  size_t recorded_spans = 0;
  for (const obs::ThreadTrack& track : summary.tracks) {
    recorded_spans += track.events.size();
  }
  EXPECT_EQ(complete_events, recorded_spans);
  EXPECT_NE(json.find("\"name\":\"main-phase\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker-chunk\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);

  // Structural sanity: balanced braces/brackets (no string in this
  // fixture contains either).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// --------------------------------------------------------------------------
// Sampling profiler

TEST(ProfilerTest, CapturesSamplesInBusySpan) {
  if (!obs::Profiler::Supported()) GTEST_SKIP() << "no SIGPROF here";
  obs::ProfilerOptions options;
  options.period_us = 1000;
  obs::Profiler profiler(options);
  ASSERT_TRUE(profiler.Start());
  {
    obs::Span busy("busy-span");
    SpinFor(200.0);
  }
  const obs::ProfileSummary& summary = profiler.Stop();
  ASSERT_GE(summary.samples, 1u) << "no SIGPROF sample in 200ms of spin";
  EXPECT_EQ(summary.period_us, 1000);

  // At least one sample attributed to the busy span, self and total.
  const auto it = std::find_if(
      summary.span_counts.begin(), summary.span_counts.end(),
      [](const obs::ProfileSpanCount& c) { return c.name == "busy-span"; });
  ASSERT_NE(it, summary.span_counts.end())
      << "busy-span missing from span_counts";
  EXPECT_GE(it->self, 1u);
  EXPECT_GE(it->total, it->self);

  // Collapsed output: every line is "stack count", and the busy span
  // roots at least one stack.
  const std::string collapsed = summary.ToCollapsed();
  EXPECT_NE(collapsed.find("busy-span"), std::string::npos) << collapsed;
  for (size_t start = 0; start < collapsed.size();) {
    const size_t end = collapsed.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = collapsed.substr(start, end - start);
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
    start = end + 1;
  }
}

TEST(ProfilerTest, StopIsIdempotentAndSecondProfilerIsRejected) {
  if (!obs::Profiler::Supported()) GTEST_SKIP() << "no SIGPROF here";
  obs::Profiler first;
  ASSERT_TRUE(first.Start());
  obs::Profiler second;
  EXPECT_FALSE(second.Start()) << "two profilers may not run at once";
  const obs::ProfileSummary& a = first.Stop();
  const obs::ProfileSummary& b = first.Stop();
  EXPECT_EQ(&a, &b);
  // With `first` gone, a new profiler can start again.
  obs::Profiler third;
  EXPECT_TRUE(third.Start());
  third.Stop();
}

TEST(ProfilerTest, NeverStartedProfilerReportsEmpty) {
  obs::Profiler profiler;
  const obs::ProfileSummary& summary = profiler.Stop();
  EXPECT_TRUE(summary.empty());
  EXPECT_TRUE(summary.span_counts.empty());
  EXPECT_TRUE(summary.ToCollapsed().empty());
}

// The disabled-cost contract: with no profiler or accounting scope
// active, Span does not even maintain the span-name cursor.
TEST(ProfilerTest, SpanCursorInactiveWhenNothingWantsIt) {
  ASSERT_EQ(obs::internal::g_span_stack_refs.load(), 0);
  const int depth_before = obs::internal::tls_span_depth;
  {
    obs::Span span("untracked");
    EXPECT_EQ(obs::internal::tls_span_depth, depth_before);
  }
  EXPECT_EQ(obs::internal::tls_span_depth, depth_before);
}

// --------------------------------------------------------------------------
// Memory accounting

TEST(MemStatsTest, PeakRssIsPositiveOnLinux) {
#if defined(__linux__)
  EXPECT_GT(obs::ReadPeakRssKb(), 0);
#else
  GTEST_SKIP();
#endif
}

TEST(MemStatsTest, ScopeCountsAndAttributesAllocations) {
  constexpr int kAllocs = 64;
  obs::MemorySummary summary;
  {
    obs::ScopedMemAccounting accounting;
    {
      obs::Span span("alloc-span");
      std::vector<std::unique_ptr<int[]>> blocks;
      blocks.reserve(kAllocs);
      for (int i = 0; i < kAllocs; ++i) {
        blocks.push_back(std::make_unique<int[]>(256));
      }
    }
    summary = accounting.Snapshot();
  }
  EXPECT_TRUE(summary.hooks_enabled);
  EXPECT_GE(summary.alloc_count, static_cast<uint64_t>(kAllocs));
  EXPECT_GE(summary.alloc_bytes,
            static_cast<uint64_t>(kAllocs) * 256 * sizeof(int));
  EXPECT_GE(summary.peak_live_bytes,
            static_cast<uint64_t>(kAllocs) * 256 * sizeof(int));
  EXPECT_GT(summary.max_rss_kb, 0);

  const auto it = std::find_if(
      summary.by_span.begin(), summary.by_span.end(),
      [](const obs::MemSpanAlloc& row) { return row.span == "alloc-span"; });
  ASSERT_NE(it, summary.by_span.end()) << "alloc-span missing from by_span";
  EXPECT_GE(it->count, static_cast<uint64_t>(kAllocs));

  // Outside the scope the hooks are off again.
  EXPECT_FALSE(obs::CurrentMemorySummary().hooks_enabled);
}

TEST(MemStatsTest, FreesBalanceLiveBytes) {
  obs::ScopedMemAccounting accounting;
  {
    // Allocate and free inside the scope; live bytes should return to
    // (near) the pre-allocation level.
    auto block = std::make_unique<char[]>(1 << 20);
    block[0] = 1;
  }
  const obs::MemorySummary summary = accounting.Snapshot();
  EXPECT_GE(summary.free_count, 1u);
  EXPECT_LT(summary.live_bytes, 1 << 20);
}

}  // namespace
}  // namespace xmlprop
