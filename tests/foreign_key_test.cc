#include "keys/foreign_key.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace xmlprop {
namespace {

Tree T(std::string_view xml) {
  Result<Tree> t = ParseXml(xml);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(t).value();
}

XmlForeignKey FK(std::string_view text) {
  Result<XmlForeignKey> fk = XmlForeignKey::Parse(text);
  EXPECT_TRUE(fk.ok()) << text << ": " << fk.status().ToString();
  return std::move(fk).value();
}

TEST(ForeignKeyParseTest, FullForm) {
  XmlForeignKey fk = FK(
      "FK1: (ε, (//cite, {@ref}) => (//book, {@isbn}))");
  EXPECT_EQ(fk.name(), "FK1");
  EXPECT_EQ(fk.context().ToString(), "ε");
  EXPECT_EQ(fk.source_target().ToString(), "//cite");
  EXPECT_EQ(fk.source_attrs(), std::vector<std::string>{"ref"});
  EXPECT_EQ(fk.ref_target().ToString(), "//book");
  EXPECT_EQ(fk.ref_attrs(), std::vector<std::string>{"isbn"});
}

TEST(ForeignKeyParseTest, MultiAttributeOrderPreserved) {
  XmlForeignKey fk =
      FK("(//db, (ref, {@x, @y}) => (item, {@a, @b}))");
  EXPECT_EQ(fk.source_attrs(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(fk.ref_attrs(), (std::vector<std::string>{"a", "b"}));
}

TEST(ForeignKeyParseTest, Errors) {
  EXPECT_FALSE(XmlForeignKey::Parse("").ok());
  EXPECT_FALSE(
      XmlForeignKey::Parse("(ε, (//a, {@x}) (//b, {@y}))").ok());  // no =>
  EXPECT_FALSE(
      XmlForeignKey::Parse("(ε, (//a, {}) => (//b, {}))").ok());  // empty
  EXPECT_FALSE(XmlForeignKey::Parse(
                   "(ε, (//a, {@x, @z}) => (//b, {@y}))")
                   .ok());  // arity mismatch
  EXPECT_FALSE(XmlForeignKey::Parse(
                   "(ε, (//a/@x, {@x}) => (//b, {@y}))")
                   .ok());  // attr path
}

TEST(ForeignKeyParseTest, ToStringRoundTrip) {
  const char* text = "FK: (//db, (cite, {@ref}) => (//book, {@isbn}))";
  XmlForeignKey fk = FK(text);
  XmlForeignKey again = FK(fk.ToString());
  EXPECT_EQ(again.name(), "FK");
  EXPECT_EQ(again.source_attrs(), fk.source_attrs());
  EXPECT_EQ(again.ref_target().ToString(), fk.ref_target().ToString());
}

TEST(ForeignKeyParseTest, SetParserWithComments) {
  Result<std::vector<XmlForeignKey>> fks = ParseForeignKeySet(R"(
    # bibliography references
    FK1: (ε, (//cite, {@ref}) => (//book, {@isbn}))
    FK2: (//db, (use, {@of}) => (item, {@id}))   # scoped
  )");
  ASSERT_TRUE(fks.ok()) << fks.status().ToString();
  ASSERT_EQ(fks->size(), 2u);
  EXPECT_EQ((*fks)[0].name(), "FK1");
  EXPECT_EQ((*fks)[1].context().ToString(), "//db");
}

TEST(ForeignKeyParseTest, SetParserPropagatesErrors) {
  EXPECT_FALSE(ParseForeignKeySet("FK1: garbage\n").ok());
}

TEST(ForeignKeyCheckTest, SatisfiedReference) {
  Tree tree = T(R"(<r>
      <book isbn="1"/><book isbn="2"/>
      <cite ref="1"/><cite ref="2"/><cite ref="1"/></r>)");
  XmlForeignKey fk = FK("(ε, (//cite, {@ref}) => (//book, {@isbn}))");
  EXPECT_TRUE(Satisfies(tree, fk));
}

TEST(ForeignKeyCheckTest, DanglingReferenceDetected) {
  Tree tree = T(R"(<r><book isbn="1"/><cite ref="9"/></r>)");
  XmlForeignKey fk = FK("(ε, (//cite, {@ref}) => (//book, {@isbn}))");
  std::vector<ForeignKeyViolation> v = CheckForeignKey(tree, fk);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ForeignKeyViolation::Kind::kDanglingReference);
  EXPECT_NE(v[0].Describe(tree, fk).find("9"), std::string::npos);
}

TEST(ForeignKeyCheckTest, ReferencedSideMustBeKey) {
  // Two books share @isbn: the referenced side fails to be a key even
  // though the inclusion holds.
  Tree tree = T(R"(<r><book isbn="1"/><book isbn="1"/><cite ref="1"/></r>)");
  XmlForeignKey fk = FK("(ε, (//cite, {@ref}) => (//book, {@isbn}))");
  std::vector<ForeignKeyViolation> v = CheckForeignKey(tree, fk);
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].kind, ForeignKeyViolation::Kind::kReferencedNotKey);
}

TEST(ForeignKeyCheckTest, MissingSourceAttribute) {
  Tree tree = T(R"(<r><book isbn="1"/><cite/></r>)");
  XmlForeignKey fk = FK("(ε, (//cite, {@ref}) => (//book, {@isbn}))");
  std::vector<ForeignKeyViolation> v = CheckForeignKey(tree, fk);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind,
            ForeignKeyViolation::Kind::kMissingSourceAttribute);
}

TEST(ForeignKeyCheckTest, RelativeScoping) {
  // References resolve within each context node separately: a cite in
  // one db cannot reference a book of another.
  Tree tree = T(R"(<r>
      <db><book isbn="1"/><cite ref="1"/></db>
      <db><book isbn="2"/><cite ref="1"/></db></r>)");
  XmlForeignKey fk = FK("(//db, (cite, {@ref}) => (book, {@isbn}))");
  std::vector<ForeignKeyViolation> v = CheckForeignKey(tree, fk);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ForeignKeyViolation::Kind::kDanglingReference);
}

TEST(ForeignKeyCheckTest, MultiAttributeTuples) {
  Tree tree = T(R"(<r>
      <item a="1" b="1"/><item a="1" b="2"/>
      <ref x="1" y="2"/><ref x="2" y="1"/></r>)");
  XmlForeignKey fk = FK("(ε, (//ref, {@x, @y}) => (//item, {@a, @b}))");
  std::vector<ForeignKeyViolation> v = CheckForeignKey(tree, fk);
  // (1,2) matches; (2,1) dangles.
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ForeignKeyViolation::Kind::kDanglingReference);
  EXPECT_NE(v[0].detail.find("2, 1"), std::string::npos);
}

TEST(ForeignKeyCheckTest, ReferencedKeyAccessor) {
  XmlForeignKey fk = FK("FK: (ε, (//cite, {@ref}) => (//book, {@isbn}))");
  XmlKey key = fk.ReferencedKey();
  EXPECT_EQ(key.target().ToString(), "//book");
  EXPECT_EQ(key.attributes(), std::vector<std::string>{"isbn"});
  EXPECT_EQ(key.name(), "FK.key");
}

}  // namespace
}  // namespace xmlprop
