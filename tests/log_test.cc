#include "obs/log.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace xmlprop {
namespace obs {
namespace {

// Captures every emitted line through the callback sink and restores the
// default log configuration afterwards, so the suite leaves no state for
// other tests (the logger is process-global).
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogLevel(LogLevel::kDebug);
    SetLogFormat(LogFormat::kText);
    SetLogSinkCallback(&Capture, &lines_);
  }
  void TearDown() override {
    SetLogSinkCallback(nullptr, nullptr);
    SetLogLevel(LogLevel::kWarn);
    SetLogFormat(LogFormat::kText);
  }

  static void Capture(std::string_view line, void* ctx) {
    static_cast<std::vector<std::string>*>(ctx)->emplace_back(line);
  }

  std::vector<std::string> lines_;
};

TEST_F(LogTest, TextFormatCarriesLevelComponentMessageAndFields) {
  LogWarn("parser", "unexpected token", {F("line", 42), F("file", "doc.xml")});
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& line = lines_[0];
  EXPECT_NE(line.find(" WARN "), std::string::npos) << line;
  EXPECT_NE(line.find("parser: unexpected token"), std::string::npos) << line;
  EXPECT_NE(line.find("line=42"), std::string::npos) << line;
  EXPECT_NE(line.find("file=doc.xml"), std::string::npos) << line;
  EXPECT_EQ(line.back(), '\n');
  // ISO-8601 UTC timestamp prefix: YYYY-MM-DDTHH:MM:SS.mmmZ.
  EXPECT_EQ(line[4], '-');
  EXPECT_EQ(line[10], 'T');
  EXPECT_EQ(line[23], 'Z');
}

TEST_F(LogTest, LevelsBelowTheSwitchAreDropped) {
  SetLogLevel(LogLevel::kWarn);
  LogDebug("x", "debug message");
  LogInfo("x", "info message");
  LogWarn("x", "warn message");
  LogError("x", "error message");
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_NE(lines_[0].find("warn message"), std::string::npos);
  EXPECT_NE(lines_[1].find("error message"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  SetLogLevel(LogLevel::kOff);
  LogError("x", "even errors");
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LogTest, LogEnabledMatchesTheSwitch) {
  SetLogLevel(LogLevel::kInfo);
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  EXPECT_TRUE(LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
}

TEST_F(LogTest, NdjsonFormatEmitsOneObjectPerLine) {
  SetLogFormat(LogFormat::kNdjson);
  LogError("cli", "bad \"flag\"", {F("count", 3), F("name", "x\ny")});
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& line = lines_[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.substr(line.size() - 2), "}\n");
  EXPECT_NE(line.find("\"level\":\"error\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"component\":\"cli\""), std::string::npos) << line;
  // Message quotes escaped, numbers unquoted, strings quoted + escaped.
  EXPECT_NE(line.find("bad \\\"flag\\\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"count\":3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"name\":\"x\\ny\""), std::string::npos) << line;
}

TEST_F(LogTest, NdjsonWithoutFieldsOmitsFieldsObject) {
  SetLogFormat(LogFormat::kNdjson);
  LogWarn("a", "plain");
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].find("\"fields\""), std::string::npos) << lines_[0];
}

TEST_F(LogTest, FieldConstructorsRenderTypes) {
  EXPECT_EQ(F("k", true).value, "true");
  EXPECT_FALSE(F("k", true).quoted);
  EXPECT_EQ(F("k", false).value, "false");
  EXPECT_EQ(F("k", int64_t{-5}).value, "-5");
  EXPECT_FALSE(F("k", int64_t{-5}).quoted);
  EXPECT_EQ(F("k", uint64_t{7}).value, "7");
  EXPECT_EQ(F("k", 1.5).value, "1.5");
  EXPECT_TRUE(F("k", "text").quoted);
  EXPECT_EQ(F("k", static_cast<const char*>(nullptr)).value, "");
}

TEST_F(LogTest, ParseLogLevelAcceptsKnownNamesOnly) {
  LogLevel level = LogLevel::kWarn;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kOff) << "failed parse must not touch out";
}

TEST_F(LogTest, ParseLogFormatAcceptsTextAndNdjson) {
  LogFormat format = LogFormat::kText;
  EXPECT_TRUE(ParseLogFormat("ndjson", &format));
  EXPECT_EQ(format, LogFormat::kNdjson);
  EXPECT_TRUE(ParseLogFormat("json", &format));
  EXPECT_EQ(format, LogFormat::kNdjson);
  EXPECT_TRUE(ParseLogFormat("text", &format));
  EXPECT_EQ(format, LogFormat::kText);
  EXPECT_FALSE(ParseLogFormat("xml", &format));
}

TEST_F(LogTest, LogLevelNamesRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    LogLevel parsed = LogLevel::kDebug;
    ASSERT_TRUE(ParseLogLevel(LogLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
}

TEST_F(LogTest, LogFileSinkBeatsTheCallback) {
  char path[] = "/tmp/xmlprop_log_file_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  ::close(fd);
  ASSERT_TRUE(SetLogFile(path));
  LogError("file", "to the file");
  SetLogSinkStderr();  // closes the file, back to default
  SetLogSinkCallback(&Capture, &lines_);

  EXPECT_TRUE(lines_.empty()) << "callback saw a line destined for the file";
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::remove(path);
  EXPECT_NE(content.find("to the file"), std::string::npos) << content;
}

TEST_F(LogTest, SetLogFileFailsOnUnwritablePath) {
  EXPECT_FALSE(SetLogFile("/nonexistent_dir_xyz/log.txt"));
  // Failure leaves the previous (callback) sink in place.
  LogError("x", "still captured");
  EXPECT_EQ(lines_.size(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace xmlprop
