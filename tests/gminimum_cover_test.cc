#include "core/gminimum_cover.h"

#include <gtest/gtest.h>

#include "paper_fixtures.h"

namespace xmlprop {
namespace {

using testing_fixtures::PaperKeys;
using testing_fixtures::UniversalTable;

TEST(GMinimumCoverTest, AgreesWithPropagationOnPaperFds) {
  // Section 6 treats GminimumCover as an alternative implementation of
  // propagation checking: the two must agree.
  TableTree u = UniversalTable();
  std::vector<XmlKey> sigma = PaperKeys();
  Result<GMinimumCover> checker = GMinimumCover::Build(sigma, u);
  ASSERT_TRUE(checker.ok()) << checker.status().ToString();

  const char* fds[] = {
      "bookIsbn -> bookTitle",
      "bookIsbn -> authContact",
      "bookIsbn -> bookAuthor",
      "bookIsbn, chapNum -> chapName",
      "bookIsbn, chapNum, secNum -> secName",
      "bookIsbn, secNum -> secName",
      "chapNum -> chapName",
      "bookTitle -> bookIsbn",
      "bookIsbn, chapNum -> bookTitle",
      "bookIsbn, bookTitle -> authContact",  // null condition differs? no:
                                             // bookTitle not attr-backed
      "bookIsbn, chapNum, secNum -> bookTitle",
      "secNum -> secName",
  };
  for (const char* text : fds) {
    Result<bool> direct = CheckPropagation(sigma, u, text);
    Result<bool> via_cover = checker->Check(text);
    ASSERT_TRUE(direct.ok()) << text;
    ASSERT_TRUE(via_cover.ok()) << text;
    EXPECT_EQ(*direct, *via_cover) << text;
  }
}

TEST(GMinimumCoverTest, NullConditionEnforced) {
  // bookIsbn, bookTitle -> authContact: implied by the cover under
  // Armstrong (augmentation), but bookTitle may be null when authContact
  // is present, so the full check must reject it.
  TableTree u = UniversalTable();
  Result<GMinimumCover> checker = GMinimumCover::Build(PaperKeys(), u);
  ASSERT_TRUE(checker.ok());
  Result<Fd> fd = ParseFd(u.schema(), "bookIsbn, bookTitle -> authContact");
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(checker->cover().Implies(*fd));  // Armstrong says yes
  Result<bool> full = checker->Check(*fd);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(*full);  // null condition says no
  // Algorithm propagation agrees.
  Result<bool> direct = CheckPropagation(PaperKeys(), u, *fd);
  ASSERT_TRUE(direct.ok());
  EXPECT_FALSE(*direct);
}

TEST(GMinimumCoverTest, OneShotHelper) {
  TableTree u = UniversalTable();
  Result<Fd> fd = ParseFd(u.schema(), "bookIsbn -> bookTitle");
  ASSERT_TRUE(fd.ok());
  Result<bool> r = CheckPropagationViaCover(PaperKeys(), u, *fd);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(GMinimumCoverTest, RejectsWrongUniverse) {
  TableTree u = UniversalTable();
  Result<GMinimumCover> checker = GMinimumCover::Build(PaperKeys(), u);
  ASSERT_TRUE(checker.ok());
  EXPECT_FALSE(checker->Check(Fd(AttrSet(2, {0}), AttrSet(2, {1}))).ok());
}

}  // namespace
}  // namespace xmlprop
