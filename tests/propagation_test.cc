#include "core/propagation.h"

#include <gtest/gtest.h>

#include "keys/satisfaction.h"
#include "paper_fixtures.h"
#include "relational/fd_check.h"
#include "transform/eval.h"
#include "transform/rule_parser.h"
#include "xml/parser.h"

namespace xmlprop {
namespace {

using testing_fixtures::PaperKeys;
using testing_fixtures::PaperTransformation;
using testing_fixtures::RuleTable;
using testing_fixtures::UniversalTable;

bool Propagated(const TableTree& table, const std::string& fd,
                PropagationStats* stats = nullptr) {
  Result<bool> r = CheckPropagation(PaperKeys(), table, fd, stats);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() && *r;
}

TEST(PropagationTest, PaperExample42Positive) {
  // Example 4.2: isbn → contact over Rule(book) is propagated.
  TableTree book = RuleTable(PaperTransformation(), "book");
  EXPECT_TRUE(Propagated(book, "isbn -> contact"));
}

TEST(PropagationTest, PaperExample42Negative) {
  // Example 4.2: (inChapt, number) → name over Rule(section) is NOT
  // propagated — chapter numbers do not identify chapters globally.
  TableTree section = RuleTable(PaperTransformation(), "section");
  EXPECT_FALSE(Propagated(section, "inChapt, number -> name"));
}

TEST(PropagationTest, Example11RefinedChapterKeyHolds) {
  // The refined design of Example 1.1: (inBook, number) → name over
  // Rule(chapter) — i.e. (isbn, chapterNum) is a safe key.
  TableTree chapter = RuleTable(PaperTransformation(), "chapter");
  EXPECT_TRUE(Propagated(chapter, "inBook, number -> name"));
}

TEST(PropagationTest, Example11OriginalDesignFails) {
  // The original design keyed Chapter by (bookTitle, chapterNum): title
  // does not identify a book, so the FD is not propagated.
  Result<Transformation> t = ParseTransformation(R"(
    rule chapterByTitle {
      bookTitle:   value(T1)
      chapterNum:  value(T2)
      chapterName: value(T3)
      Xb := Xr//book
      T1 := Xb/title
      Xc := Xb/chapter
      T2 := Xc/@number
      T3 := Xc/name
    })");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  Result<TableTree> table = TableTree::Build(t->rules()[0]);
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(Propagated(*table, "bookTitle, chapterNum -> chapterName"));
}

TEST(PropagationTest, BookRuleFds) {
  TableTree book = RuleTable(PaperTransformation(), "book");
  EXPECT_TRUE(Propagated(book, "isbn -> title"));
  // A book may have several authors (only the contact one is unique).
  EXPECT_FALSE(Propagated(book, "isbn -> author"));
  // title does not key books (two books named "XML").
  EXPECT_FALSE(Propagated(book, "title -> isbn"));
  EXPECT_TRUE(Propagated(book, "isbn -> title, contact"));
}

TEST(PropagationTest, UniversalRelationFds) {
  TableTree u = UniversalTable();
  EXPECT_TRUE(Propagated(u, "bookIsbn -> bookTitle"));
  EXPECT_TRUE(Propagated(u, "bookIsbn -> authContact"));
  EXPECT_TRUE(Propagated(u, "bookIsbn, chapNum -> chapName"));
  EXPECT_TRUE(Propagated(u, "bookIsbn, chapNum, secNum -> secName"));
  EXPECT_FALSE(Propagated(u, "bookIsbn -> chapName"));
  EXPECT_FALSE(Propagated(u, "chapNum -> chapName"));
  EXPECT_FALSE(Propagated(u, "bookIsbn, secNum -> secName"));
  EXPECT_FALSE(Propagated(u, "bookIsbn, chapNum, secNum -> bookTitle"));
  // ^ value-wise implied (augmentation of bookIsbn -> bookTitle), but a
  // chapterless book makes chapNum null while bookTitle is present,
  // violating condition (1) of the Section 3 semantics.
  EXPECT_FALSE(Propagated(u, "bookIsbn -> bookAuthor"));
}

TEST(PropagationTest, TrivialFdNeedsNonNullLhs) {
  // X → A with A ∈ X still requires the other LHS fields to be non-null
  // when A is present (condition 1 of the Section 3 FD semantics).
  TableTree book = RuleTable(PaperTransformation(), "book");
  // isbn → isbn: trivially fine (isbn is a required key attribute).
  EXPECT_TRUE(Propagated(book, "isbn -> isbn"));
  // (isbn, author) → isbn: author may be null while isbn is not.
  EXPECT_FALSE(Propagated(book, "isbn, author -> isbn"));
}

TEST(PropagationTest, ValueSemanticsIgnoresNullCondition) {
  TableTree book = RuleTable(PaperTransformation(), "book");
  Result<Fd> fd = ParseFd(book.schema(), "isbn, author -> isbn");
  ASSERT_TRUE(fd.ok());
  Result<bool> value_only = CheckValuePropagation(PaperKeys(), book, *fd);
  ASSERT_TRUE(value_only.ok());
  EXPECT_TRUE(*value_only);  // trivially true once nulls are ignored
  Result<bool> full = CheckPropagation(PaperKeys(), book, *fd);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(*full);
}

TEST(PropagationTest, LhsFieldsFromNonAttributesBlockNullSafety) {
  // (title, isbn) → contact: title is an element field, which no key can
  // force to exist, so the null-safety condition fails.
  TableTree book = RuleTable(PaperTransformation(), "book");
  EXPECT_FALSE(Propagated(book, "isbn, title -> contact"));
  Result<Fd> fd = ParseFd(book.schema(), "isbn, title -> contact");
  ASSERT_TRUE(fd.ok());
  Result<bool> value_only = CheckValuePropagation(PaperKeys(), book, *fd);
  ASSERT_TRUE(value_only.ok());
  EXPECT_TRUE(*value_only);  // superset of a keying LHS
}

TEST(PropagationTest, EmptyKeysPropagateAlmostNothing) {
  TableTree book = RuleTable(PaperTransformation(), "book");
  Result<bool> r = CheckPropagation({}, book, "isbn -> title");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(PropagationTest, StatsCountImplicationCalls) {
  TableTree book = RuleTable(PaperTransformation(), "book");
  PropagationStats stats;
  EXPECT_TRUE(Propagated(book, "isbn -> contact", &stats));
  EXPECT_GT(stats.implication_calls, 0u);
  EXPECT_GT(stats.exist_calls, 0u);
}

TEST(PropagationTest, ErrorOnWrongUniverse) {
  TableTree book = RuleTable(PaperTransformation(), "book");
  Fd bad(AttrSet(3, {0}), AttrSet(3, {1}));  // wrong arity
  EXPECT_FALSE(CheckPropagation(PaperKeys(), book, bad).ok());
}

TEST(PropagationTest, ErrorOnEmptyRhs) {
  TableTree book = RuleTable(PaperTransformation(), "book");
  Fd bad(AttrSet(4, {0}), AttrSet(4));
  EXPECT_FALSE(CheckPropagation(PaperKeys(), book, bad).ok());
}

TEST(PropagationTest, ErrorOnUnknownFieldName) {
  TableTree book = RuleTable(PaperTransformation(), "book");
  EXPECT_FALSE(CheckPropagation(PaperKeys(), book, "nosuch -> isbn").ok());
}

TEST(PropagationTest, ConstantFieldViaUniqueness) {
  // A root-level singleton: (ε, (config, {})) forces at most one config
  // node, so ∅ → value is propagated.
  Result<std::vector<XmlKey>> keys =
      ParseKeySet("(ε, (config, {}))");
  ASSERT_TRUE(keys.ok());
  Result<Transformation> t = ParseTransformation(R"(
    rule conf {
      val: value(V)
      C := Xr/config
      V := C/@v
    })");
  ASSERT_TRUE(t.ok());
  Result<TableTree> table = TableTree::Build(t->rules()[0]);
  ASSERT_TRUE(table.ok());
  Result<bool> r = CheckPropagation(*keys, *table, "-> val");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

// Counterexample witnesses: each FD the algorithm rejects must be
// *genuinely* violable — a concrete Σ-satisfying document whose shredded
// instance breaks the FD. This guards against vacuous "not propagated"
// verdicts.
TEST(PropagationTest, NegativeVerdictsHaveCounterexampleDocuments) {
  struct Case {
    const char* relation;
    const char* fd;
    const char* witness_xml;
  };
  // NOTE: condition (2) of the Section 3 semantics only compares tuples
  // that are completely null-free, so witnesses must populate every
  // field of the relation.
  const Case cases[] = {
      // Chapter numbers repeat across books (Example 4.2's negative).
      {"section", "inChapt, number -> name", R"(<r>
          <book isbn="1"><chapter number="7">
            <section number="1"><name>A</name></section>
          </chapter></book>
          <book isbn="2"><chapter number="7">
            <section number="1"><name>B</name></section>
          </chapter></book></r>)"},
      // Two books share a title (all book fields populated).
      {"book", "title -> isbn", R"(<r>
          <book isbn="1"><title>XML</title>
            <author><name>N1</name><contact>c1</contact></author></book>
          <book isbn="2"><title>XML</title>
            <author><name>N2</name><contact>c2</contact></author></book>
          </r>)"},
      // A book with two authors, in a contact-free relation. (On the
      // 4-field book rule this FD is unviolable: two null-free tuples
      // would need two contact authors, which K7 forbids — Fig. 5 is
      // deliberately conservative there.)
      {"book2", "isbn -> author", R"(<r>
          <book isbn="1"><title>T</title>
            <author><name>A</name></author>
            <author><name>B</name></author>
          </book></r>)"},
  };
  std::vector<XmlKey> sigma = PaperKeys();
  Result<Transformation> t = ParseTransformation(
      std::string(testing_fixtures::kPaperTransformation) + R"(
    rule book2 {
      isbn:   value(B1)
      title:  value(B2)
      author: value(B4)
      Ba := Xr//book
      B1 := Ba/@isbn
      B2 := Ba/title
      Bb := Ba/author
      B4 := Bb/name
    })");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  for (const Case& c : cases) {
    Result<Tree> doc = ParseXml(c.witness_xml);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    ASSERT_TRUE(SatisfiesAll(*doc, sigma)) << c.fd;

    TableTree table = RuleTable(*t, c.relation);
    Result<Fd> fd = ParseFd(table.schema(), c.fd);
    ASSERT_TRUE(fd.ok());
    Result<bool> verdict = CheckPropagation(sigma, table, *fd);
    ASSERT_TRUE(verdict.ok());
    EXPECT_FALSE(*verdict) << c.fd;

    Instance instance = EvalTableTree(*doc, table);
    EXPECT_TRUE(CheckFd(instance, *fd).has_value())
        << c.fd << " has no violation on its witness:\n"
        << instance.ToString();
  }
}

// A null-condition rejection also has a witness: isbn, author -> isbn is
// violated (condition 1) by a book without authors.
TEST(PropagationTest, NullConditionRejectionHasWitness) {
  std::vector<XmlKey> sigma = PaperKeys();
  TableTree book = RuleTable(PaperTransformation(), "book");
  Result<Fd> fd = ParseFd(book.schema(), "isbn, author -> isbn");
  ASSERT_TRUE(fd.ok());
  Result<Tree> doc = ParseXml(R"(<r><book isbn="1"/></r>)");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(SatisfiesAll(*doc, sigma));
  Instance instance = EvalTableTree(*doc, book);
  std::optional<FdViolation> v = CheckFd(instance, *fd);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, FdViolation::Kind::kIncompleteLhs);
}

TEST(LhsNonNullTest, DirectChecks) {
  TableTree book = RuleTable(PaperTransformation(), "book");
  std::vector<XmlKey> sigma = PaperKeys();
  // isbn (field 0) is forced to exist on //book; contact is field 3.
  AttrSet isbn(4, {0});
  Result<bool> ok = LhsNonNullWhenRhsPresent(sigma, book, isbn, 3);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  // title (field 1) is not attribute-backed.
  AttrSet title(4, {1});
  Result<bool> bad = LhsNonNullWhenRhsPresent(sigma, book, title, 3);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(*bad);
}

}  // namespace
}  // namespace xmlprop
