#include "synth/workload.h"

#include <gtest/gtest.h>

#include "core/gminimum_cover.h"
#include "core/minimum_cover.h"
#include "core/propagation.h"
#include "keys/implication.h"

namespace xmlprop {
namespace {

SyntheticWorkload Make(size_t fields, size_t depth, size_t keys,
                       uint64_t seed = 42) {
  WorkloadSpec spec;
  spec.fields = fields;
  spec.depth = depth;
  spec.keys = keys;
  spec.seed = seed;
  Result<SyntheticWorkload> w = MakeWorkload(spec);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

TEST(WorkloadTest, SpecHonored) {
  SyntheticWorkload w = Make(15, 5, 10);
  EXPECT_EQ(w.table.schema().arity(), 15u);
  EXPECT_EQ(w.table.Depth(), 6u);  // spine depth + field leaves
  EXPECT_EQ(w.keys.size(), 10u);
  EXPECT_TRUE(w.rule.Validate().ok());
}

TEST(WorkloadTest, Deterministic) {
  SyntheticWorkload a = Make(20, 6, 12, 7);
  SyntheticWorkload b = Make(20, 6, 12, 7);
  ASSERT_EQ(a.keys.size(), b.keys.size());
  for (size_t i = 0; i < a.keys.size(); ++i) {
    EXPECT_TRUE(a.keys[i] == b.keys[i]);
  }
  EXPECT_EQ(a.rule.ToString(), b.rule.ToString());
}

TEST(WorkloadTest, TrueFdPropagates) {
  for (auto [fields, depth, keys] :
       {std::tuple<size_t, size_t, size_t>{15, 5, 10},
        {30, 8, 20}, {8, 3, 3}, {5, 5, 5}, {12, 2, 30}}) {
    SyntheticWorkload w = Make(fields, depth, keys);
    Result<bool> r = CheckPropagation(w.keys, w.table, w.true_fd);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(*r) << "fields=" << fields << " depth=" << depth
                    << " keys=" << keys << " fd="
                    << w.true_fd.ToString(w.table.schema());
  }
}

TEST(WorkloadTest, FalseFdDoesNotPropagate) {
  for (auto [fields, depth, keys] :
       {std::tuple<size_t, size_t, size_t>{15, 5, 10},
        {30, 8, 20}, {8, 3, 3}, {12, 2, 30}}) {
    SyntheticWorkload w = Make(fields, depth, keys);
    Result<bool> r = CheckPropagation(w.keys, w.table, w.false_fd);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(*r) << "fields=" << fields << " depth=" << depth
                     << " keys=" << keys << " fd="
                     << w.false_fd.ToString(w.table.schema());
  }
}

TEST(WorkloadTest, ChainKeysFormTransitiveSet) {
  SyntheticWorkload w = Make(10, 4, 4);
  // The first `depth` keys are the chain; they are transitive.
  std::vector<XmlKey> chain(w.keys.begin(), w.keys.begin() + 4);
  EXPECT_TRUE(IsTransitiveSet(chain));
}

TEST(WorkloadTest, MinimumCoverRunsAndKeysDeepNodes) {
  SyntheticWorkload w = Make(15, 5, 10);
  Result<FdSet> cover = MinimumCover(w.keys, w.table);
  ASSERT_TRUE(cover.ok());
  EXPECT_FALSE(cover->empty());
  // The deepest spine variable is keyed by the chain-key fields.
  Result<std::vector<NodeKeyAssignment>> nk = ComputeNodeKeys(w.keys, w.table);
  ASSERT_TRUE(nk.ok());
  bool deep_keyed = false;
  for (const NodeKeyAssignment& a : *nk) {
    if (a.var == "V5" && a.canonical_key.has_value()) deep_keyed = true;
  }
  EXPECT_TRUE(deep_keyed);
}

TEST(WorkloadTest, DegenerateSpecsRejected) {
  WorkloadSpec zero_fields;
  zero_fields.fields = 0;
  EXPECT_FALSE(MakeWorkload(zero_fields).ok());
  WorkloadSpec zero_depth;
  zero_depth.depth = 0;
  EXPECT_FALSE(MakeWorkload(zero_depth).ok());
}

TEST(WorkloadTest, KeysFewerThanDepth) {
  // Only the first `keys` levels are chain-keyed; still a valid workload.
  SyntheticWorkload w = Make(20, 10, 3);
  EXPECT_EQ(w.keys.size(), 3u);
  Result<bool> r = CheckPropagation(w.keys, w.table, w.true_fd);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(WorkloadTest, LargeSpecBuildsQuickly) {
  // The Fig. 7(a) upper end: 500 fields.
  SyntheticWorkload w = Make(500, 10, 50);
  EXPECT_EQ(w.table.schema().arity(), 500u);
  EXPECT_EQ(w.keys.size(), 50u);
}

TEST(WorkloadTest, GminimumCoverAgreesOnWorkloadFds) {
  SyntheticWorkload w = Make(12, 4, 8);
  Result<GMinimumCover> checker = GMinimumCover::Build(w.keys, w.table);
  ASSERT_TRUE(checker.ok());
  for (const Fd& fd : {w.true_fd, w.false_fd}) {
    Result<bool> direct = CheckPropagation(w.keys, w.table, fd);
    Result<bool> via = checker->Check(fd);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(via.ok());
    EXPECT_EQ(*direct, *via) << fd.ToString(w.table.schema());
  }
}

}  // namespace
}  // namespace xmlprop
