#include "transform/table_tree.h"

#include <gtest/gtest.h>

#include "paper_fixtures.h"

namespace xmlprop {
namespace {

using testing_fixtures::PaperTransformation;
using testing_fixtures::RuleTable;
using testing_fixtures::UniversalTable;

TEST(TableTreeTest, BookRuleShape) {
  // Fig. 3(a): Xr -> Xa(//book) -> {X1(@isbn), X2(title), Xb(author)};
  // Xb -> {X4(name), X5(contact)}.
  TableTree t = RuleTable(PaperTransformation(), "book");
  EXPECT_EQ(t.size(), 7u);  // Xr + 6 variables
  EXPECT_EQ(t.node(t.root()).name, "Xr");
  Result<int> xa = t.IndexOf("Xa");
  ASSERT_TRUE(xa.ok());
  EXPECT_EQ(t.node(*xa).step.ToString(), "//book");
  EXPECT_EQ(t.node(*xa).children.size(), 3u);
  Result<int> xb = t.IndexOf("Xb");
  ASSERT_TRUE(xb.ok());
  EXPECT_EQ(t.node(*xb).children.size(), 2u);
}

TEST(TableTreeTest, FieldsAttachToVariables) {
  TableTree t = RuleTable(PaperTransformation(), "book");
  Result<int> x1 = t.IndexOf("X1");
  ASSERT_TRUE(x1.ok());
  EXPECT_EQ(t.node(*x1).field, 0);  // isbn is field 0
  EXPECT_EQ(t.VarForField(0), *x1);
  // Internal variables carry no field.
  Result<int> xa = t.IndexOf("Xa");
  ASSERT_TRUE(xa.ok());
  EXPECT_EQ(t.node(*xa).field, -1);
}

TEST(TableTreeTest, PathFromRoot) {
  // Fig. 3(b): ρ(Xr, Zs) = //book/chapter/section.
  TableTree t = RuleTable(PaperTransformation(), "section");
  Result<int> zs = t.IndexOf("Zs");
  ASSERT_TRUE(zs.ok());
  EXPECT_EQ(t.PathFromRoot(*zs).ToString(), "//book/chapter/section");
  EXPECT_EQ(t.PathFromRoot(t.root()).ToString(), "ε");
}

TEST(TableTreeTest, PathBetween) {
  TableTree t = RuleTable(PaperTransformation(), "book");
  Result<int> xb = t.IndexOf("Xb");
  Result<int> x5 = t.IndexOf("X5");
  ASSERT_TRUE(xb.ok());
  ASSERT_TRUE(x5.ok());
  // The paper's example: ρ(Xr, X5) = //book/author/contact.
  Result<PathExpr> p = t.PathBetween(t.root(), *x5);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "//book/author/contact");
  Result<PathExpr> p2 = t.PathBetween(*xb, *x5);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->ToString(), "contact");
  // ρ(v, v) = ε.
  Result<PathExpr> self = t.PathBetween(*xb, *xb);
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(self->IsEpsilon());
  // Non-ancestor pairs are rejected.
  EXPECT_FALSE(t.PathBetween(*x5, *xb).ok());
}

TEST(TableTreeTest, AncestorChain) {
  TableTree t = RuleTable(PaperTransformation(), "book");
  Result<int> x5 = t.IndexOf("X5");
  ASSERT_TRUE(x5.ok());
  std::vector<int> chain = t.AncestorChain(*x5);
  ASSERT_EQ(chain.size(), 4u);  // Xr, Xa, Xb, X5
  EXPECT_EQ(chain.front(), t.root());
  EXPECT_EQ(chain.back(), *x5);
  EXPECT_EQ(t.node(chain[1]).name, "Xa");
  EXPECT_EQ(t.node(chain[2]).name, "Xb");
}

TEST(TableTreeTest, IsAncestorOrSelf) {
  TableTree t = RuleTable(PaperTransformation(), "book");
  int xa = *t.IndexOf("Xa");
  int x5 = *t.IndexOf("X5");
  EXPECT_TRUE(t.IsAncestorOrSelf(t.root(), x5));
  EXPECT_TRUE(t.IsAncestorOrSelf(xa, x5));
  EXPECT_TRUE(t.IsAncestorOrSelf(x5, x5));
  EXPECT_FALSE(t.IsAncestorOrSelf(x5, xa));
}

TEST(TableTreeTest, Depth) {
  // book rule: Xr -> Xa -> Xb -> X4 is 3 edges deep.
  EXPECT_EQ(RuleTable(PaperTransformation(), "book").Depth(), 3u);
  // universal tree (Fig. 4): Xr -> Xa -> Xc -> Zs -> S1 is 4 edges.
  EXPECT_EQ(UniversalTable().Depth(), 4u);
}

TEST(TableTreeTest, UniversalTreeShape) {
  TableTree t = UniversalTable();
  EXPECT_EQ(t.schema().arity(), 8u);
  EXPECT_EQ(t.size(), 13u);  // Xr + 12 variables
  EXPECT_EQ(t.schema().ToString(),
            "U(bookIsbn, bookTitle, bookAuthor, authContact, chapNum, "
            "chapName, secNum, secName)");
}

TEST(TableTreeTest, IndexOfUnknownFails) {
  TableTree t = UniversalTable();
  EXPECT_FALSE(t.IndexOf("Nope").ok());
}

}  // namespace
}  // namespace xmlprop
