#include "core/minimum_cover.h"

#include <gtest/gtest.h>

#include "core/naive_cover.h"
#include "paper_fixtures.h"
#include "relational/cover.h"
#include "transform/rule_parser.h"

namespace xmlprop {
namespace {

using testing_fixtures::PaperKeys;
using testing_fixtures::UniversalTable;

FdSet MustCover(const std::vector<XmlKey>& sigma, const TableTree& table) {
  Result<FdSet> cover = MinimumCover(sigma, table);
  EXPECT_TRUE(cover.ok()) << cover.status().ToString();
  return std::move(cover).value();
}

TEST(MinimumCoverTest, PaperExample31ExactCover) {
  // Example 3.1's minimum cover:
  //   bookIsbn -> bookTitle
  //   bookIsbn -> authContact
  //   bookIsbn, chapNum -> chapName
  //   bookIsbn, chapNum, secNum -> secName
  TableTree u = UniversalTable();
  FdSet cover = MustCover(PaperKeys(), u);

  FdSet expected(u.schema());
  ASSERT_TRUE(expected.AddParsed("bookIsbn -> bookTitle").ok());
  ASSERT_TRUE(expected.AddParsed("bookIsbn -> authContact").ok());
  ASSERT_TRUE(expected.AddParsed("bookIsbn, chapNum -> chapName").ok());
  ASSERT_TRUE(
      expected.AddParsed("bookIsbn, chapNum, secNum -> secName").ok());

  EXPECT_TRUE(cover.EquivalentTo(expected)) << cover.ToString();
  EXPECT_EQ(cover.size(), 4u) << cover.ToString();
  EXPECT_TRUE(IsMinimal(cover));
}

TEST(MinimumCoverTest, CanonicalNodeKeys) {
  // Example 5.1's transitive keys: the section variable's key is
  // {bookIsbn, chapNum, secNum}; chapter is {bookIsbn, chapNum}.
  TableTree u = UniversalTable();
  Result<std::vector<NodeKeyAssignment>> keys =
      ComputeNodeKeys(PaperKeys(), u);
  ASSERT_TRUE(keys.ok());
  auto find = [&](const std::string& var) -> const NodeKeyAssignment& {
    for (const NodeKeyAssignment& nk : *keys) {
      if (nk.var == var) return nk;
    }
    static NodeKeyAssignment missing;
    ADD_FAILURE() << "no variable " << var;
    return missing;
  };
  EXPECT_TRUE(find("Xr").canonical_key.has_value());
  EXPECT_TRUE(find("Xr").canonical_key->Empty());
  ASSERT_TRUE(find("Xa").canonical_key.has_value());
  EXPECT_EQ(u.schema().FormatSet(*find("Xa").canonical_key), "bookIsbn");
  ASSERT_TRUE(find("Xc").canonical_key.has_value());
  EXPECT_EQ(u.schema().FormatSet(*find("Xc").canonical_key),
            "bookIsbn, chapNum");
  ASSERT_TRUE(find("Zs").canonical_key.has_value());
  EXPECT_EQ(u.schema().FormatSet(*find("Zs").canonical_key),
            "bookIsbn, chapNum, secNum");
  // The author variable is not keyed (several authors per book).
  EXPECT_FALSE(find("Xg").canonical_key.has_value());
}

TEST(MinimumCoverTest, AgreesWithNaiveOnPaperExample) {
  TableTree u = UniversalTable();
  FdSet poly = MustCover(PaperKeys(), u);
  Result<FdSet> naive = NaiveMinimumCover(PaperKeys(), u);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  EXPECT_TRUE(poly.EquivalentTo(*naive))
      << "poly:\n" << poly.ToString() << "naive:\n" << naive->ToString();
  EXPECT_TRUE(IsMinimal(*naive));
}

TEST(MinimumCoverTest, EveryCoverFdIsValuePropagated) {
  TableTree u = UniversalTable();
  FdSet cover = MustCover(PaperKeys(), u);
  for (const Fd& fd : cover.fds()) {
    Result<bool> p = CheckValuePropagation(PaperKeys(), u, fd);
    ASSERT_TRUE(p.ok());
    EXPECT_TRUE(*p) << fd.ToString(u.schema());
  }
}

TEST(MinimumCoverTest, EmptyKeySetGivesEmptyCover) {
  TableTree u = UniversalTable();
  FdSet cover = MustCover({}, u);
  EXPECT_TRUE(cover.empty()) << cover.ToString();
}

TEST(MinimumCoverTest, AlternativeKeysBecomeEquivalent) {
  // A node keyed two ways: (ε,(//p,{@a})) and (ε,(//p,{@b})). The cover
  // must make {a} and {b} equivalent.
  Result<std::vector<XmlKey>> keys =
      ParseKeySet("(ε, (//p, {@a}))\n(ε, (//p, {@b}))");
  ASSERT_TRUE(keys.ok());
  Result<Transformation> t = ParseTransformation(R"(
    rule U {
      a: value(A)
      b: value(B)
      c: value(C)
      P := Xr//p
      A := P/@a
      B := P/@b
      C := P/c
    })");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  Result<TableTree> table = TableTree::Build(t->rules()[0]);
  ASSERT_TRUE(table.ok());
  FdSet cover = MustCover(*keys, *table);
  Result<Fd> ab = ParseFd(table->schema(), "a -> b");
  Result<Fd> ba = ParseFd(table->schema(), "b -> a");
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  EXPECT_TRUE(cover.Implies(*ab)) << cover.ToString();
  EXPECT_TRUE(cover.Implies(*ba)) << cover.ToString();
}

TEST(MinimumCoverTest, RawCoverIsSupersetBeforeMinimize) {
  TableTree u = UniversalTable();
  Result<FdSet> raw = PropagatedCoverRaw(PaperKeys(), u);
  ASSERT_TRUE(raw.ok());
  FdSet minimized = MustCover(PaperKeys(), u);
  EXPECT_TRUE(raw->EquivalentTo(minimized));
  EXPECT_GE(raw->size(), minimized.size());
}

TEST(NaiveCoverTest, ScreenedVariantEquivalent) {
  // Screening skips candidates already implied; the resulting cover must
  // stay equivalent to the unscreened one.
  TableTree u = UniversalTable();
  NaiveOptions screened;
  screened.screen_implied = true;
  Result<FdSet> fast = NaiveMinimumCover(PaperKeys(), u, screened);
  Result<FdSet> slow = NaiveMinimumCover(PaperKeys(), u);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_TRUE(fast->EquivalentTo(*slow))
      << "screened:\n" << fast->ToString() << "unscreened:\n"
      << slow->ToString();
  EXPECT_TRUE(IsMinimal(*fast));
}

TEST(NaiveCoverTest, FieldCapEnforced) {
  TableTree u = UniversalTable();
  NaiveOptions options;
  options.max_fields = 4;  // universal relation has 8
  EXPECT_FALSE(NaiveMinimumCover(PaperKeys(), u, options).ok());
}

TEST(NaiveCoverTest, AllPropagatedContainsCover) {
  TableTree u = UniversalTable();
  Result<FdSet> all = AllPropagatedFds(PaperKeys(), u);
  ASSERT_TRUE(all.ok());
  FdSet cover = MustCover(PaperKeys(), u);
  // Γ implies its minimum cover and vice versa.
  EXPECT_TRUE(all->EquivalentTo(cover));
  // Γ contains each cover FD explicitly (covers are subsets of Γ up to
  // left-reduction; check implication FD-by-FD instead of membership).
  for (const Fd& fd : cover.fds()) {
    EXPECT_TRUE(all->Implies(fd));
  }
}

TEST(MinimumCoverTest, StatsExposeImplicationCalls) {
  TableTree u = UniversalTable();
  PropagationStats stats;
  Result<FdSet> cover = MinimumCover(PaperKeys(), u, &stats);
  ASSERT_TRUE(cover.ok());
  EXPECT_GT(stats.implication_calls, 0u);
}

}  // namespace
}  // namespace xmlprop
