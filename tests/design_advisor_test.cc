#include "core/design_advisor.h"

#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "transform/rule_parser.h"

namespace xmlprop {
namespace {

using testing_fixtures::kUniversalRule;
using testing_fixtures::PaperKeys;
using testing_fixtures::PaperTransformation;

TEST(DesignAdvisorTest, Example31EndToEnd) {
  Result<TableRule> rule = ParseTableRule(kUniversalRule);
  ASSERT_TRUE(rule.ok());
  Result<DesignReport> report = AdviseDesign(PaperKeys(), *rule);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->cover.size(), 4u);
  // Every BCNF fragment is in BCNF and the join is lossless; the
  // book/chapter/section fragments of the paper's decomposition appear.
  for (const SubRelation& f : report->bcnf) {
    EXPECT_TRUE(IsBcnf(f.attrs, report->cover))
        << f.ToString(report->universal);
  }
  EXPECT_TRUE(IsLosslessJoin(report->bcnf, report->cover));

  auto has = [&](std::initializer_list<const char*> names) {
    Result<AttrSet> want = report->universal.MakeSet(
        std::vector<std::string>(names.begin(), names.end()));
    EXPECT_TRUE(want.ok());
    for (const SubRelation& f : report->bcnf) {
      if (f.attrs == *want) return true;
    }
    return false;
  };
  EXPECT_TRUE(has({"bookIsbn", "bookTitle", "authContact"}));
  EXPECT_TRUE(has({"bookIsbn", "chapNum", "chapName"}));
  EXPECT_TRUE(has({"bookIsbn", "chapNum", "secNum", "secName"}));

  // 3NF synthesis is lossless and dependency-preserving.
  EXPECT_TRUE(IsLosslessJoin(report->third_nf, report->cover));
  EXPECT_TRUE(PreservesDependencies(report->third_nf, report->cover));
  for (const SubRelation& f : report->third_nf) {
    EXPECT_TRUE(Is3nf(f.attrs, report->cover));
  }
}

TEST(DesignAdvisorTest, ReportMentionsEverything) {
  Result<TableRule> rule = ParseTableRule(kUniversalRule);
  ASSERT_TRUE(rule.ok());
  Result<DesignReport> report = AdviseDesign(PaperKeys(), *rule);
  ASSERT_TRUE(report.ok());
  std::string text = report->ToString();
  EXPECT_NE(text.find("Minimum cover"), std::string::npos);
  EXPECT_NE(text.find("BCNF"), std::string::npos);
  EXPECT_NE(text.find("3NF"), std::string::npos);
  EXPECT_NE(text.find("bookIsbn -> bookTitle"), std::string::npos);
  EXPECT_NE(text.find("Zs: {bookIsbn, chapNum, secNum}"), std::string::npos);
  EXPECT_NE(text.find("Xg: (not keyed)"), std::string::npos);
}

TEST(DeclaredKeyCheckTest, Example11Scenario) {
  // The initial design keys Chapter by (bookTitle-ish) — here we model
  // the two candidate keys on the paper's chapter relation.
  std::vector<DeclaredKey> declared = {
      DeclaredKey{"chapter", {"inBook", "number"}},
      DeclaredKey{"chapter", {"number"}},
      DeclaredKey{"book", {"isbn"}},
      DeclaredKey{"book", {"title"}},
  };
  Result<std::vector<KeyCheckOutcome>> outcomes =
      CheckDeclaredKeys(PaperKeys(), PaperTransformation(), declared);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), 4u);
  EXPECT_TRUE((*outcomes)[0].guaranteed);   // (inBook, number) safe
  EXPECT_FALSE((*outcomes)[1].guaranteed);  // number alone unsafe
  EXPECT_FALSE((*outcomes)[3].guaranteed);  // title unsafe (two "XML"s)
}

TEST(DeclaredKeyCheckTest, BookIsbnNotFullyKeying) {
  // isbn does not determine `author` (multiple authors), so isbn is NOT a
  // guaranteed key of the 4-field book relation.
  std::vector<DeclaredKey> declared = {DeclaredKey{"book", {"isbn"}}};
  Result<std::vector<KeyCheckOutcome>> outcomes =
      CheckDeclaredKeys(PaperKeys(), PaperTransformation(), declared);
  ASSERT_TRUE(outcomes.ok());
  EXPECT_FALSE((*outcomes)[0].guaranteed);
}

TEST(DeclaredKeyCheckTest, UnknownRelationOrAttribute) {
  EXPECT_FALSE(CheckDeclaredKeys(PaperKeys(), PaperTransformation(),
                                 {DeclaredKey{"nope", {"x"}}})
                   .ok());
  EXPECT_FALSE(CheckDeclaredKeys(PaperKeys(), PaperTransformation(),
                                 {DeclaredKey{"book", {"zzz"}}})
                   .ok());
}

TEST(DeclaredKeyCheckTest, AllFieldsKeyIsTrivially1Guaranteed) {
  std::vector<DeclaredKey> declared = {
      DeclaredKey{"book", {"isbn", "title", "author", "contact"}}};
  Result<std::vector<KeyCheckOutcome>> outcomes =
      CheckDeclaredKeys(PaperKeys(), PaperTransformation(), declared);
  ASSERT_TRUE(outcomes.ok());
  EXPECT_TRUE((*outcomes)[0].guaranteed);
}

}  // namespace
}  // namespace xmlprop
