#include "keys/satisfaction.h"

#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "xml/parser.h"

namespace xmlprop {
namespace {

using testing_fixtures::Fig1Tree;
using testing_fixtures::PaperKeys;

XmlKey K(std::string_view text) {
  Result<XmlKey> k = XmlKey::Parse(text);
  EXPECT_TRUE(k.ok()) << k.status().ToString();
  return std::move(k).value();
}

Tree T(std::string_view xml) {
  Result<Tree> t = ParseXml(xml);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(t).value();
}

TEST(SatisfactionTest, Fig1SatisfiesAllPaperKeys) {
  // Example 2.3: the XML tree of Fig. 1 satisfies K1-K7.
  Tree tree = Fig1Tree();
  for (const XmlKey& key : PaperKeys()) {
    EXPECT_TRUE(Satisfies(tree, key)) << key.ToString();
  }
  EXPECT_TRUE(SatisfiesAll(tree, PaperKeys()));
}

TEST(SatisfactionTest, DuplicateKeyValuesDetected) {
  Tree tree = T(R"(<r><book isbn="1"/><book isbn="1"/></r>)");
  XmlKey key = K("(ε, (//book, {@isbn}))");
  std::vector<KeyViolation> v = CheckKey(tree, key);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, KeyViolation::Kind::kDuplicateValues);
  EXPECT_NE(v[0].node1, v[0].node2);
}

TEST(SatisfactionTest, MissingAttributeDetected) {
  // Condition (1) of Definition 2.1: key attributes must exist on every
  // target node — even a lone one.
  Tree tree = T(R"(<r><book/></r>)");
  XmlKey key = K("(ε, (//book, {@isbn}))");
  std::vector<KeyViolation> v = CheckKey(tree, key);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, KeyViolation::Kind::kMissingAttribute);
  EXPECT_EQ(v[0].attribute, "isbn");
}

TEST(SatisfactionTest, RelativeKeyScoping) {
  // The same @number may repeat across books but not within one book.
  Tree ok = T(R"(<r>
      <book isbn="1"><chapter number="1"/></book>
      <book isbn="2"><chapter number="1"/></book></r>)");
  XmlKey key = K("(//book, (chapter, {@number}))");
  EXPECT_TRUE(Satisfies(ok, key));

  Tree bad = T(R"(<r>
      <book isbn="1"><chapter number="1"/><chapter number="1"/></book></r>)");
  EXPECT_FALSE(Satisfies(bad, key));
}

TEST(SatisfactionTest, AbsoluteVersionOfRelativeKeyFails) {
  // Two books may both have chapter 1; (ε, (//chapter, {@number})) fails
  // while the relative K2 holds — the scoping distinction of Section 2.
  Tree tree = T(R"(<r>
      <book isbn="1"><chapter number="1"/></book>
      <book isbn="2"><chapter number="1"/></book></r>)");
  EXPECT_TRUE(Satisfies(tree, K("(//book, (chapter, {@number}))")));
  EXPECT_FALSE(Satisfies(tree, K("(ε, (//chapter, {@number}))")));
}

TEST(SatisfactionTest, EmptyAttributeSetMeansAtMostOne) {
  XmlKey key = K("(//book, (title, {}))");
  EXPECT_TRUE(Satisfies(T(R"(<r><book><title>A</title></book></r>)"), key));
  EXPECT_TRUE(Satisfies(T(R"(<r><book/></r>)"), key));
  EXPECT_FALSE(Satisfies(
      T(R"(<r><book><title>A</title><title>B</title></book></r>)"), key));
}

TEST(SatisfactionTest, MultiAttributeKey) {
  XmlKey key = K("(ε, (//p, {@a, @b}))");
  EXPECT_TRUE(Satisfies(T(R"(<r><p a="1" b="1"/><p a="1" b="2"/></r>)"), key));
  EXPECT_FALSE(Satisfies(T(R"(<r><p a="1" b="1"/><p a="1" b="1"/></r>)"), key));
}

TEST(SatisfactionTest, MultiStepTargetPath) {
  // K7-style: at most one author contact per book.
  XmlKey key = K("(//book, (author/contact, {}))");
  EXPECT_TRUE(Satisfies(T(R"(<r><book>
      <author><contact>x</contact></author><author/></book></r>)"), key));
  EXPECT_FALSE(Satisfies(T(R"(<r><book>
      <author><contact>x</contact></author>
      <author><contact>y</contact></author></book></r>)"), key));
}

TEST(SatisfactionTest, NestedContextsCheckedIndependently) {
  // A key with context //a applies to nested 'a' elements separately.
  Tree tree = T(R"(<r><a><b k="1"/><a><b k="1"/></a></a></r>)");
  // Outer 'a' sees only its direct b child; the nested a's b is separate.
  EXPECT_TRUE(Satisfies(tree, K("(//a, (b, {@k}))")));
  // But with target //b the outer context sees both b's, which collide.
  EXPECT_FALSE(Satisfies(tree, K("(//a, (//b, {@k}))")));
}

TEST(SatisfactionTest, CheckAllTagsKeyIndices) {
  Tree tree = T(R"(<r><book/><book/></r>)");
  std::vector<XmlKey> keys = {K("(ε, (//book, {@isbn}))"),
                              K("(ε, (//book, {}))")};
  std::vector<TaggedViolation> all = CheckAll(tree, keys);
  // Key 0: two missing-attribute violations; key 1: one duplicate.
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].key_index, 0u);
  EXPECT_EQ(all[2].key_index, 1u);
  EXPECT_EQ(all[2].violation.kind, KeyViolation::Kind::kDuplicateValues);
}

TEST(SatisfactionTest, DescribeMentionsPathAndKey) {
  Tree tree = T(R"(<r><book/></r>)");
  XmlKey key = K("KX: (ε, (//book, {@isbn}))");
  std::vector<KeyViolation> v = CheckKey(tree, key);
  ASSERT_EQ(v.size(), 1u);
  std::string desc = v[0].Describe(tree, key);
  EXPECT_NE(desc.find("KX"), std::string::npos);
  EXPECT_NE(desc.find("isbn"), std::string::npos);
  EXPECT_NE(desc.find("book"), std::string::npos);
}

TEST(SatisfactionTest, ViolationInFig2ScenarioTitleAsKey) {
  // Example 1.1: bookTitle cannot act as a key — two books share "XML".
  // The XML-side analogue: (ε, (//book, {@t})) with equal @t values.
  Tree tree = T(R"(<r><book t="XML"/><book t="XML"/></r>)");
  EXPECT_FALSE(Satisfies(tree, K("(ε, (//book, {@t}))")));
}

}  // namespace
}  // namespace xmlprop
