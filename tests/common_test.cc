#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace xmlprop {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::ParseError("").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopySharesState) {
  Status a = Status::NotFound("x");
  Status b = a;
  EXPECT_EQ(b.message(), "x");
  EXPECT_EQ(b.code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(StrUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  a b  "), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t\n "), "");
  EXPECT_EQ(TrimWhitespace("x"), "x");
}

TEST(StrUtilTest, SplitAndTrim) {
  EXPECT_EQ(SplitAndTrim("a, b ,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitAndTrim("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitAndTrim("", ','), (std::vector<std::string>{""}));
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StrUtilTest, Names) {
  EXPECT_TRUE(IsValidName("book"));
  EXPECT_TRUE(IsValidName("_x1"));
  EXPECT_TRUE(IsValidName("ns:tag"));
  EXPECT_FALSE(IsValidName(""));
  EXPECT_FALSE(IsValidName("1abc"));
  EXPECT_FALSE(IsValidName("a b"));
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, RangesRespected) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    int v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    EXPECT_LT(rng.UniformIndex(4), 4u);
  }
}

TEST(RngTest, IdentifierShape) {
  Rng rng(2);
  std::string id = rng.Identifier(8);
  EXPECT_EQ(id.size(), 8u);
  for (char c : id) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

}  // namespace
}  // namespace xmlprop
