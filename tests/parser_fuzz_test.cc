// Robustness fuzzing of the XML parser: random mutations of valid
// documents must either parse or return a Status — never crash, hang or
// produce an invalid tree. (Deterministic seeds; a cheap sanitizer-style
// harness that runs in every test invocation.)

#include <gtest/gtest.h>

#include "common/rng.h"
#include "synth/doc_generator.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xmlprop {
namespace {

// Structural sanity of a parsed tree: parent/child links are mutually
// consistent and every node is reachable exactly once.
void ExpectWellFormedTree(const Tree& tree) {
  size_t visited = 0;
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    ++visited;
    for (NodeId c : tree.node(n).children) {
      ASSERT_TRUE(tree.IsValid(c));
      EXPECT_EQ(tree.node(c).parent, n);
      if (tree.node(c).kind == NodeKind::kElement) stack.push_back(c);
      else ++visited;
    }
    for (NodeId a : tree.node(n).attributes) {
      ASSERT_TRUE(tree.IsValid(a));
      EXPECT_EQ(tree.node(a).kind, NodeKind::kAttribute);
      EXPECT_EQ(tree.node(a).parent, n);
      ++visited;
    }
  }
  EXPECT_EQ(visited, tree.size());
}

std::string Mutate(std::string xml, Rng* rng) {
  int mutations = rng->UniformInt(1, 4);
  for (int i = 0; i < mutations && !xml.empty(); ++i) {
    size_t pos = rng->UniformIndex(xml.size());
    switch (rng->UniformInt(0, 3)) {
      case 0:  // flip to a random printable or structural char
        xml[pos] = "<>&\"'/= abc\0!["[rng->UniformIndex(13)];
        break;
      case 1:  // delete
        xml.erase(pos, 1 + rng->UniformIndex(3));
        break;
      case 2:  // duplicate a span
        xml.insert(pos, xml.substr(pos, 1 + rng->UniformIndex(5)));
        break;
      case 3:  // inject a token
        xml.insert(pos, rng->Bernoulli(0.5) ? "<![CDATA[" : "&#x41;<x>");
        break;
    }
  }
  return xml;
}

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, MutatedDocumentsNeverCrash) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 48271 + 101);
  RandomTreeSpec spec;
  spec.max_depth = 4;
  spec.max_children = 3;
  for (int doc = 0; doc < 20; ++doc) {
    std::string xml = WriteXml(RandomTree(spec, &rng));
    for (int round = 0; round < 10; ++round) {
      std::string mutated = Mutate(xml, &rng);
      Result<Tree> parsed = ParseXml(mutated);
      if (parsed.ok()) {
        ExpectWellFormedTree(*parsed);
        // A successfully parsed tree must round-trip through the writer.
        Result<Tree> again = ParseXml(WriteXml(*parsed));
        EXPECT_TRUE(again.ok()) << again.status().ToString();
      } else {
        EXPECT_FALSE(parsed.status().message().empty());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 10));

TEST(ParserFuzzFixed, PathologicalInputs) {
  // Hand-picked nasties: deep nesting, unterminated constructs, stray
  // entity/DOCTYPE fragments, binary garbage.
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += "<a>";
  EXPECT_FALSE(ParseXml(deep).ok());

  for (const char* input : {
           "", "   ", "<", "<!", "<!--", "<!DOCTYPE", "<?xml",
           "<r><![CDATA[", "<r>&#xFFFFFFFFF;</r>", "<r>&#;</r>",
           "<r a=>", "<r a", "<r 1a=\"x\"/>", "<r/><r/>", "</r>",
           "\xff\xfe\x00\x01", "<r>\x01\x02</r>",
       }) {
    Result<Tree> parsed = ParseXml(input);
    // Crash-freedom is the property; some inputs (control chars in text)
    // legitimately parse.
    if (parsed.ok()) ExpectWellFormedTree(*parsed);
  }

  // Deep but balanced nesting parses fine.
  std::string balanced;
  for (int i = 0; i < 500; ++i) balanced += "<a>";
  for (int i = 0; i < 500; ++i) balanced += "</a>";
  Result<Tree> parsed = ParseXml(balanced);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 500u);
}

}  // namespace
}  // namespace xmlprop
