// Robustness fuzzing of the XML parser: random mutations of valid
// documents must either parse or return a Status — never crash, hang or
// produce an invalid tree. (Deterministic seeds; a cheap sanitizer-style
// harness that runs in every test invocation.)
//
// Also differential-tests the flat-core hot paths: reference
// implementations below re-state the historical recursive, node-at-a-time
// Value() and writer semantics through the public Node view API, and
// every fuzzed document must produce byte-identical output on both.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "synth/doc_generator.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xmlprop {
namespace {

// Structural sanity of a parsed tree: parent/child links are mutually
// consistent and every node is reachable exactly once.
void ExpectWellFormedTree(const Tree& tree) {
  size_t visited = 0;
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    ++visited;
    for (NodeId c : tree.node(n).children) {
      ASSERT_TRUE(tree.IsValid(c));
      EXPECT_EQ(tree.node(c).parent, n);
      if (tree.node(c).kind == NodeKind::kElement) stack.push_back(c);
      else ++visited;
    }
    for (NodeId a : tree.node(n).attributes) {
      ASSERT_TRUE(tree.IsValid(a));
      EXPECT_EQ(tree.node(a).kind, NodeKind::kAttribute);
      EXPECT_EQ(tree.node(a).parent, n);
      ++visited;
    }
  }
  EXPECT_EQ(visited, tree.size());
}

// Reference Value(): the pre-flat-core recursive definition, one
// temporary string per node, driven entirely by the Node view facade.
std::string ReferenceValue(const Tree& tree, NodeId id) {
  const Node n = tree.node(id);
  if (n.kind != NodeKind::kElement) return std::string(n.value);
  bool text_only = n.attributes.empty();
  for (NodeId c : n.children) {
    if (tree.node(c).kind == NodeKind::kElement) text_only = false;
  }
  if (text_only) {
    std::string out;
    for (NodeId c : n.children) out += std::string(tree.node(c).value);
    return out;
  }
  std::string out = "(";
  bool first = true;
  for (NodeId a : n.attributes) {
    if (!first) out += ", ";
    first = false;
    out += "@" + std::string(tree.node(a).label) + ": " +
           std::string(tree.node(a).value);
  }
  for (NodeId c : n.children) {
    if (!first) out += ", ";
    first = false;
    const Node child = tree.node(c);
    if (child.kind == NodeKind::kText) {
      out += std::string(child.value);
    } else {
      out += std::string(child.label) + ": " + ReferenceValue(tree, c);
    }
  }
  return out + ")";
}

// Reference writer: the pre-flat-core recursive serializer.
void ReferenceWriteElement(const Tree& tree, NodeId id, int depth,
                           bool inline_mode, const WriteOptions& options,
                           std::string* out) {
  const Node n = tree.node(id);
  const bool pretty = options.indent > 0 && !inline_mode;
  if (pretty) out->append(static_cast<size_t>(depth * options.indent), ' ');
  *out += "<" + std::string(n.label);
  for (NodeId attr : n.attributes) {
    const Node a = tree.node(attr);
    *out += " " + std::string(a.label) + "=\"" +
            EscapeXml(a.value, /*for_attribute=*/true) + "\"";
  }
  if (n.children.empty()) {
    *out += "/>";
    if (pretty) *out += "\n";
    return;
  }
  *out += ">";
  bool has_text = false;
  for (NodeId c : n.children) {
    if (tree.node(c).kind == NodeKind::kText) has_text = true;
  }
  const bool children_inline = inline_mode || has_text || options.indent == 0;
  if (!children_inline) *out += "\n";
  for (NodeId c : n.children) {
    const Node child = tree.node(c);
    if (child.kind == NodeKind::kText) {
      *out += EscapeXml(child.value, /*for_attribute=*/false);
    } else {
      ReferenceWriteElement(tree, c, depth + 1, children_inline, options,
                            out);
    }
  }
  if (!children_inline) {
    out->append(static_cast<size_t>(depth * options.indent), ' ');
  }
  *out += "</" + std::string(n.label) + ">";
  if (pretty) *out += "\n";
}

std::string ReferenceWrite(const Tree& tree, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"1.0\"?>";
    if (options.indent > 0) out += '\n';
  }
  ReferenceWriteElement(tree, tree.root(), 0, /*inline_mode=*/false,
                        options, &out);
  return out;
}

// Byte-identity of the flat hot paths against the references, plus a
// writer→parser round trip that must reproduce the same bytes again.
void ExpectFlatPathsMatchReference(const Tree& tree) {
  for (NodeId id = 0; id < static_cast<NodeId>(tree.size()); ++id) {
    ASSERT_EQ(tree.Value(id), ReferenceValue(tree, id)) << "node " << id;
  }
  for (int indent : {0, 2}) {
    WriteOptions options;
    options.indent = indent;
    const std::string flat = WriteXml(tree, options);
    ASSERT_EQ(flat, ReferenceWrite(tree, options)) << "indent " << indent;
    Result<Tree> again = ParseXml(flat);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    ASSERT_EQ(WriteXml(*again, options), flat) << "indent " << indent;
  }
}

std::string Mutate(std::string xml, Rng* rng) {
  int mutations = rng->UniformInt(1, 4);
  for (int i = 0; i < mutations && !xml.empty(); ++i) {
    size_t pos = rng->UniformIndex(xml.size());
    switch (rng->UniformInt(0, 3)) {
      case 0:  // flip to a random printable or structural char
        xml[pos] = "<>&\"'/= abc\0!["[rng->UniformIndex(13)];
        break;
      case 1:  // delete
        xml.erase(pos, 1 + rng->UniformIndex(3));
        break;
      case 2:  // duplicate a span
        xml.insert(pos, xml.substr(pos, 1 + rng->UniformIndex(5)));
        break;
      case 3:  // inject a token
        xml.insert(pos, rng->Bernoulli(0.5) ? "<![CDATA[" : "&#x41;<x>");
        break;
    }
  }
  return xml;
}

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, MutatedDocumentsNeverCrash) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 48271 + 101);
  RandomTreeSpec spec;
  spec.max_depth = 4;
  spec.max_children = 3;
  for (int doc = 0; doc < 20; ++doc) {
    std::string xml = WriteXml(RandomTree(spec, &rng));
    for (int round = 0; round < 10; ++round) {
      std::string mutated = Mutate(xml, &rng);
      Result<Tree> parsed = ParseXml(mutated);
      if (parsed.ok()) {
        ExpectWellFormedTree(*parsed);
        // A successfully parsed tree must round-trip through the writer.
        Result<Tree> again = ParseXml(WriteXml(*parsed));
        EXPECT_TRUE(again.ok()) << again.status().ToString();
      } else {
        EXPECT_FALSE(parsed.status().message().empty());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 10));

// Differential mode: random documents round-tripped through the parser
// must serialize and flatten byte-identically on the flat core and on
// the recursive reference paths.
class ParserDifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserDifferentialFuzz, FlatPathsMatchRecursiveReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 69621 + 7);
  RandomTreeSpec spec;
  spec.max_depth = 5;
  spec.max_children = 4;
  for (int doc = 0; doc < 10; ++doc) {
    Tree built = RandomTree(spec, &rng);
    ExpectFlatPathsMatchReference(built);
    Result<Tree> parsed = ParseXml(WriteXml(built));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ExpectFlatPathsMatchReference(*parsed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserDifferentialFuzz,
                         ::testing::Range(0, 5));

TEST(ParserDifferentialFixed, AdversarialInputs) {
  std::vector<std::string> inputs;

  // Deeply nested (balanced) document.
  std::string deep;
  for (int i = 0; i < 400; ++i) deep += "<a x=\"1\">";
  deep += "leaf";
  for (int i = 0; i < 400; ++i) deep += "</a>";
  inputs.push_back(deep);

  // Huge attribute values, with and without escapes.
  std::string huge(64 * 1024, 'v');
  inputs.push_back("<r a=\"" + huge + "\" b=\"&lt;" + huge + "&amp;\"/>");

  // Entity-heavy text: every other character is a reference.
  std::string entities = "<r>";
  for (int i = 0; i < 2000; ++i) entities += "x&amp;&#65;&lt;";
  entities += "</r>";
  inputs.push_back(entities);

  // Empty text runs: comments, PIs and CDATA separating nothing.
  inputs.push_back(
      "<r><a><!-- c --><?pi d?><![CDATA[]]></a><b></b>"
      "<c>  <!-- only whitespace around me -->  </c></r>");

  for (const std::string& input : inputs) {
    Result<Tree> parsed = ParseXml(input);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ExpectWellFormedTree(*parsed);
    ExpectFlatPathsMatchReference(*parsed);
  }
}

TEST(ParserFuzzFixed, PathologicalInputs) {
  // Hand-picked nasties: deep nesting, unterminated constructs, stray
  // entity/DOCTYPE fragments, binary garbage.
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += "<a>";
  EXPECT_FALSE(ParseXml(deep).ok());

  for (const char* input : {
           "", "   ", "<", "<!", "<!--", "<!DOCTYPE", "<?xml",
           "<r><![CDATA[", "<r>&#xFFFFFFFFF;</r>", "<r>&#;</r>",
           "<r a=>", "<r a", "<r 1a=\"x\"/>", "<r/><r/>", "</r>",
           "\xff\xfe\x00\x01", "<r>\x01\x02</r>",
       }) {
    Result<Tree> parsed = ParseXml(input);
    // Crash-freedom is the property; some inputs (control chars in text)
    // legitimately parse.
    if (parsed.ok()) ExpectWellFormedTree(*parsed);
  }

  // Deep but balanced nesting parses fine.
  std::string balanced;
  for (int i = 0; i < 500; ++i) balanced += "<a>";
  for (int i = 0; i < 500; ++i) balanced += "</a>";
  Result<Tree> parsed = ParseXml(balanced);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 500u);
}

}  // namespace
}  // namespace xmlprop
