#include "keys/xml_key.h"

#include <gtest/gtest.h>

namespace xmlprop {
namespace {

XmlKey K(std::string_view text) {
  Result<XmlKey> k = XmlKey::Parse(text);
  EXPECT_TRUE(k.ok()) << text << ": " << k.status().ToString();
  return std::move(k).value();
}

TEST(XmlKeyParseTest, AbsoluteKey) {
  XmlKey k = K("(ε, (//book, {@isbn}))");
  EXPECT_TRUE(k.IsAbsolute());
  EXPECT_EQ(k.context().ToString(), "ε");
  EXPECT_EQ(k.target().ToString(), "//book");
  EXPECT_EQ(k.attributes(), std::vector<std::string>{"isbn"});
}

TEST(XmlKeyParseTest, RelativeKeyWithName) {
  XmlKey k = K("K2: (//book, (chapter, {@number}))");
  EXPECT_EQ(k.name(), "K2");
  EXPECT_FALSE(k.IsAbsolute());
  EXPECT_EQ(k.context().ToString(), "//book");
}

TEST(XmlKeyParseTest, EmptyAttributeSet) {
  XmlKey k = K("(//book, (title, {}))");
  EXPECT_TRUE(k.attributes().empty());
}

TEST(XmlKeyParseTest, EmptyContextMeansEpsilon) {
  XmlKey k = K("( , (//book, {@isbn}))");
  EXPECT_TRUE(k.IsAbsolute());
}

TEST(XmlKeyParseTest, MultipleAttributesSortedAndDeduped) {
  XmlKey k = K("(ε, (//p, {@b, @a, @a}))");
  EXPECT_EQ(k.attributes(), (std::vector<std::string>{"a", "b"}));
}

TEST(XmlKeyParseTest, MultiStepPaths) {
  XmlKey k = K("(//book, (author/contact, {}))");
  EXPECT_EQ(k.target().ToString(), "author/contact");
}

TEST(XmlKeyParseTest, Errors) {
  EXPECT_FALSE(XmlKey::Parse("").ok());
  EXPECT_FALSE(XmlKey::Parse("(a, b)").ok());
  EXPECT_FALSE(XmlKey::Parse("(a, (b, {x}))").ok());      // attr without @
  EXPECT_FALSE(XmlKey::Parse("(a, (b, {@1}))").ok());     // bad attr name
  EXPECT_FALSE(XmlKey::Parse("(a/@x, (b, {@a}))").ok());  // attr in context
  EXPECT_FALSE(XmlKey::Parse("(a, (b/@x, {@a}))").ok());  // attr in target
  EXPECT_FALSE(XmlKey::Parse("(a, (b, @a))").ok());       // missing braces
  EXPECT_FALSE(XmlKey::Parse("a, (b, {@a})").ok());       // missing parens
}

TEST(XmlKeyTest, ToStringRoundTrip) {
  for (const char* text :
       {"(ε, (//book, {@isbn}))", "K2: (//book, (chapter, {@number}))",
        "(//book, (title, {}))", "(//a/b, (c//d, {@x, @y}))"}) {
    XmlKey k = K(text);
    XmlKey again = K(k.ToString());
    EXPECT_TRUE(k == again) << text;
    EXPECT_EQ(k.name(), again.name());
  }
}

TEST(XmlKeyTest, AttributesSubsetOf) {
  XmlKey small = K("(ε, (a, {@x}))");
  XmlKey big = K("(ε, (a, {@x, @y}))");
  XmlKey empty = K("(ε, (a, {}))");
  EXPECT_TRUE(small.AttributesSubsetOf(big));
  EXPECT_FALSE(big.AttributesSubsetOf(small));
  EXPECT_TRUE(empty.AttributesSubsetOf(small));
  EXPECT_TRUE(small.AttributesSubsetOf(small));
}

TEST(XmlKeyTest, SizeCountsAtomsAndAttrs) {
  EXPECT_EQ(K("(//a, (b/c, {@x}))").size(), 2u + 2u + 1u);
  EXPECT_EQ(K("(ε, (a, {}))").size(), 1u);
}

TEST(ParseKeySetTest, MultiLineWithComments) {
  Result<std::vector<XmlKey>> keys = ParseKeySet(R"(
    # two keys
    K1: (ε, (//book, {@isbn}))
    K2: (//book, (chapter, {@number}))  # relative
  )");
  ASSERT_TRUE(keys.ok()) << keys.status().ToString();
  ASSERT_EQ(keys->size(), 2u);
  EXPECT_EQ((*keys)[0].name(), "K1");
  EXPECT_EQ((*keys)[1].name(), "K2");
}

TEST(ParseKeySetTest, EmptyInput) {
  Result<std::vector<XmlKey>> keys = ParseKeySet("  \n # nothing\n");
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(keys->empty());
}

TEST(ParseKeySetTest, PropagatesErrors) {
  EXPECT_FALSE(ParseKeySet("K1: (ε, (//book, {@isbn}))\nbroken").ok());
}

}  // namespace
}  // namespace xmlprop
