// End-to-end property tests: the headline soundness invariants of the
// paper, checked against randomly generated documents and workloads.
//
//  1. Propagation soundness: if Algorithm propagation says an FD is
//     propagated from Σ, the FD holds (null-aware semantics, Section 3)
//     on σ(T) for every generated tree T ⊨ Σ.
//  2. Cover soundness: every FD in Algorithm minimumCover's output holds
//     on the null-free restriction of σ(T) (value semantics).
//  3. naive ≡ minimumCover: the exponential and polynomial covers are
//     Armstrong-equivalent on random workloads.
//  4. propagation ≡ GminimumCover: the two checking algorithms agree on
//     every candidate FD of random workloads.

#include <gtest/gtest.h>

#include "core/gminimum_cover.h"
#include "core/minimum_cover.h"
#include "core/naive_cover.h"
#include "core/propagation.h"
#include "keys/satisfaction.h"
#include "paper_fixtures.h"
#include "relational/fd_check.h"
#include "synth/doc_generator.h"
#include "synth/workload.h"
#include "transform/eval.h"

namespace xmlprop {
namespace {

using testing_fixtures::PaperKeys;
using testing_fixtures::UniversalTable;

// All single-RHS FDs over `arity` fields with |LHS| <= 2.
std::vector<Fd> SmallFdCandidates(size_t arity) {
  std::vector<Fd> out;
  for (size_t a = 0; a < arity; ++a) {
    out.push_back(Fd::SingleRhs(AttrSet(arity), a));
    for (size_t i = 0; i < arity; ++i) {
      if (i == a) continue;
      out.push_back(Fd::SingleRhs(AttrSet(arity, {i}), a));
      for (size_t j = i + 1; j < arity; ++j) {
        if (j == a) continue;
        out.push_back(Fd::SingleRhs(AttrSet(arity, {i, j}), a));
      }
    }
  }
  return out;
}

Instance NullFreeRestriction(const Instance& in) {
  Instance out(in.schema());
  for (const Tuple& t : in.tuples()) {
    if (!Instance::HasNull(t)) out.Add(t).ok();
  }
  return out;
}

class PropagationSoundness : public ::testing::TestWithParam<int> {};

TEST_P(PropagationSoundness, PropagatedFdsHoldOnGeneratedInstances) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 11);
  std::vector<XmlKey> sigma = PaperKeys();
  TableTree u = UniversalTable();
  std::vector<Fd> candidates = SmallFdCandidates(u.schema().arity());
  // Add the paper's wider FDs.
  for (const char* text :
       {"bookIsbn, chapNum, secNum -> secName",
        "bookIsbn, chapNum, secNum -> chapName",
        "bookIsbn, chapNum, secNum, secName -> chapName"}) {
    Result<Fd> fd = ParseFd(u.schema(), text);
    ASSERT_TRUE(fd.ok());
    candidates.push_back(*fd);
  }

  // Precompute verdicts once.
  std::vector<std::pair<Fd, bool>> verdicts;
  for (const Fd& fd : candidates) {
    Result<bool> p = CheckPropagation(sigma, u, fd);
    ASSERT_TRUE(p.ok());
    verdicts.emplace_back(fd, *p);
  }

  RandomTreeSpec spec;
  spec.max_depth = 5;
  spec.max_children = 3;
  for (int doc = 0; doc < 3; ++doc) {
    Result<Tree> tree = RandomSatisfyingTree(spec, sigma, &rng);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    Instance instance = EvalTableTree(*tree, u);
    for (const auto& [fd, propagated] : verdicts) {
      if (!propagated) continue;
      std::optional<FdViolation> v = CheckFd(instance, fd);
      EXPECT_FALSE(v.has_value())
          << fd.ToString(u.schema()) << " violated: "
          << (v ? v->Describe(instance, fd) : "") << "\n"
          << instance.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationSoundness, ::testing::Range(0, 6));

class CoverSoundness : public ::testing::TestWithParam<int> {};

TEST_P(CoverSoundness, CoverFdsHoldOnNullFreeInstances) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7907 + 5);
  std::vector<XmlKey> sigma = PaperKeys();
  TableTree u = UniversalTable();
  Result<FdSet> cover = MinimumCover(sigma, u);
  ASSERT_TRUE(cover.ok());

  RandomTreeSpec spec;
  for (int doc = 0; doc < 3; ++doc) {
    Result<Tree> tree = RandomSatisfyingTree(spec, sigma, &rng);
    ASSERT_TRUE(tree.ok());
    Instance instance = NullFreeRestriction(EvalTableTree(*tree, u));
    for (const Fd& fd : cover->fds()) {
      EXPECT_TRUE(SatisfiesFd(instance, fd))
          << fd.ToString(u.schema()) << "\n" << instance.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverSoundness, ::testing::Range(0, 6));

struct WorkloadCase {
  size_t fields;
  size_t depth;
  size_t keys;
};

class NaiveEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(NaiveEquivalence, PolynomialCoverEquivalentToNaive) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  const WorkloadCase cases[] = {
      {4, 2, 3}, {6, 3, 5}, {8, 4, 6}, {7, 2, 10}, {5, 5, 5}, {8, 3, 12},
  };
  for (const WorkloadCase& c : cases) {
    WorkloadSpec spec;
    spec.fields = c.fields;
    spec.depth = c.depth;
    spec.keys = c.keys;
    spec.seed = seed * 97 + 17;
    Result<SyntheticWorkload> w = MakeWorkload(spec);
    ASSERT_TRUE(w.ok());
    Result<FdSet> poly = MinimumCover(w->keys, w->table);
    Result<FdSet> naive = NaiveMinimumCover(w->keys, w->table);
    ASSERT_TRUE(poly.ok());
    ASSERT_TRUE(naive.ok());
    EXPECT_TRUE(poly->EquivalentTo(*naive))
        << "fields=" << c.fields << " depth=" << c.depth
        << " keys=" << c.keys << "\npoly:\n" << poly->ToString()
        << "naive:\n" << naive->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NaiveEquivalence, ::testing::Range(0, 5));

class CheckerAgreement : public ::testing::TestWithParam<int> {};

TEST_P(CheckerAgreement, PropagationAgreesWithGminimumCover) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  const WorkloadCase cases[] = {{6, 3, 5}, {8, 4, 8}, {5, 2, 6}};
  for (const WorkloadCase& c : cases) {
    WorkloadSpec spec;
    spec.fields = c.fields;
    spec.depth = c.depth;
    spec.keys = c.keys;
    spec.seed = seed * 131 + 29;
    Result<SyntheticWorkload> w = MakeWorkload(spec);
    ASSERT_TRUE(w.ok());
    Result<GMinimumCover> checker = GMinimumCover::Build(w->keys, w->table);
    ASSERT_TRUE(checker.ok());
    for (const Fd& fd : SmallFdCandidates(c.fields)) {
      Result<bool> direct = CheckPropagation(w->keys, w->table, fd);
      Result<bool> via = checker->Check(fd);
      ASSERT_TRUE(direct.ok());
      ASSERT_TRUE(via.ok());
      EXPECT_EQ(*direct, *via)
          << fd.ToString(w->table.schema()) << " fields=" << c.fields
          << " depth=" << c.depth << " keys=" << c.keys;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerAgreement, ::testing::Range(0, 5));

class WorkloadInstanceSoundness : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadInstanceSoundness, TrueFdHoldsOnGeneratedWorkloadDocs) {
  // Generate documents for a synthetic workload's alphabet and verify
  // the workload's true_fd on the mapped instance.
  uint64_t seed = static_cast<uint64_t>(GetParam());
  WorkloadSpec spec;
  spec.fields = 8;
  spec.depth = 3;
  spec.keys = 6;
  spec.seed = seed + 1;
  Result<SyntheticWorkload> w = MakeWorkload(spec);
  ASSERT_TRUE(w.ok());

  Rng rng(seed * 47 + 3);
  RandomTreeSpec tree_spec;
  tree_spec.labels = {"n1", "n2", "n3", "e1", "e3", "e5"};
  tree_spec.attributes = {"k1", "k2", "k3", "a0", "a2", "a4"};
  tree_spec.max_depth = 4;
  Result<Tree> tree = RandomSatisfyingTree(tree_spec, w->keys, &rng);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  Instance instance = EvalTableTree(*tree, w->table);
  EXPECT_TRUE(SatisfiesFd(instance, w->true_fd))
      << w->true_fd.ToString(w->table.schema()) << "\n"
      << instance.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadInstanceSoundness,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace xmlprop
