#include "service/session_cache.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "xml/writer.h"

namespace xmlprop {
namespace service {
namespace {

namespace fs = std::filesystem;

class SessionCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("xmlprop_session_cache_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    keys_path_ = Write("keys.txt", testing_fixtures::kPaperKeys);
    doc_path_ = Write("doc.xml", testing_fixtures::kFig1Xml);
    rules_path_ = Write("rules.txt", testing_fixtures::kPaperTransformation);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Write(const std::string& name, const std::string& content) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    return path;
  }

  // Atomic content replacement (write + rename), so concurrent readers
  // never observe a torn file.
  void Replace(const std::string& path, const std::string& content) {
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      out << content;
    }
    fs::rename(tmp, path);
  }

  fs::path dir_;
  std::string keys_path_;
  std::string doc_path_;
  std::string rules_path_;
};

TEST_F(SessionCacheTest, SecondLookupIsAHitAndSharesTheArtifact) {
  SessionCache cache(SessionCache::Options{});
  auto first = cache.Keys(keys_path_);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cache.Keys(keys_path_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same resident object
  const SessionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_EQ(stats.generation, 0u);
}

TEST_F(SessionCacheTest, ChangedFileInvalidatesAndBumpsGeneration) {
  SessionCache cache(SessionCache::Options{});
  auto first = cache.Keys(keys_path_);
  ASSERT_TRUE(first.ok());
  const size_t before = (*first)->size();

  Replace(keys_path_, "K1: (//book, (chapter, {@number}))\n");
  auto second = cache.Keys(keys_path_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->size(), 1u);
  EXPECT_NE((*second)->size(), before);
  // The evicted artifact stays valid for its holder.
  EXPECT_EQ((*first)->size(), before);

  const SessionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.generation, 1u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST_F(SessionCacheTest, UnreadableSourceDropsTheEntry) {
  SessionCache cache(SessionCache::Options{});
  ASSERT_TRUE(cache.Keys(keys_path_).ok());
  EXPECT_EQ(cache.stats().entries, 1u);
  fs::remove(keys_path_);
  auto gone = cache.Keys(keys_path_);
  EXPECT_FALSE(gone.ok());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_GE(cache.stats().generation, 1u);
}

TEST_F(SessionCacheTest, TinyBudgetServesUncached) {
  SessionCache cache(SessionCache::Options{1});  // nothing fits
  auto keys = cache.Keys(keys_path_);
  ASSERT_TRUE(keys.ok());
  EXPECT_FALSE((*keys)->empty());
  auto doc = cache.Doc(doc_path_);
  ASSERT_TRUE(doc.ok());
  const SessionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_GE(stats.rejected_oversize, 2u);
}

TEST_F(SessionCacheTest, LruEvictionKeepsBytesUnderBudget) {
  // Budget sized to hold some but not all of the documents.
  constexpr size_t kBudget = 64 * 1024;
  SessionCache cache(SessionCache::Options{kBudget});
  for (int i = 0; i < 16; ++i) {
    std::string body = "<r>";
    for (int j = 0; j < 200; ++j) {
      body += "<item id=\"" + std::to_string(i * 1000 + j) + "\"/>";
    }
    body += "</r>";
    const std::string path =
        Write("doc_" + std::to_string(i) + ".xml", body);
    auto doc = cache.Doc(path);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  }
  const SessionCache::Stats stats = cache.stats();
  EXPECT_LE(stats.bytes, kBudget);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.entries, 16u);
}

TEST_F(SessionCacheTest, EngineLeaseIsExclusivePerKeySet) {
  SessionCache cache(SessionCache::Options{});
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        auto lease = cache.Engine(keys_path_);
        ASSERT_TRUE(lease.ok()) << lease.status().ToString();
        ASSERT_TRUE(lease->valid());
        const int now = concurrent.fetch_add(1) + 1;
        int seen = max_concurrent.load();
        while (now > seen && !max_concurrent.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        concurrent.fetch_sub(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // The per-engine mutex serializes every lease on one key set.
  EXPECT_EQ(max_concurrent.load(), 1);
}

TEST_F(SessionCacheTest, CoverArtifactIsKeyedOnRelationAndAlgorithm) {
  SessionCache cache(SessionCache::Options{});
  auto book = cache.Cover(keys_path_, rules_path_, "book", false);
  ASSERT_TRUE(book.ok()) << book.status().ToString();
  auto chapter = cache.Cover(keys_path_, rules_path_, "chapter", false);
  ASSERT_TRUE(chapter.ok());
  EXPECT_NE(book->get(), chapter->get());
  auto book_again = cache.Cover(keys_path_, rules_path_, "book", false);
  ASSERT_TRUE(book_again.ok());
  EXPECT_EQ(book->get(), book_again->get());
  auto book_naive = cache.Cover(keys_path_, rules_path_, "book", true);
  ASSERT_TRUE(book_naive.ok());
  EXPECT_NE(book->get(), book_naive->get());
}

TEST_F(SessionCacheTest, ClearDropsEverything) {
  SessionCache cache(SessionCache::Options{});
  ASSERT_TRUE(cache.Keys(keys_path_).ok());
  ASSERT_TRUE(cache.Doc(doc_path_).ok());
  EXPECT_EQ(cache.stats().entries, 2u);
  cache.Clear();
  const SessionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_GE(stats.generation, 1u);
}

// The ISSUE's concurrency acceptance test: randomized hit/miss traffic
// from several threads against a tiny budget while a writer flips one
// file between two versions. Every artifact a reader observes must be
// bit-identical to one of the two authored versions — never a blend,
// never a stale-fingerprint mix.
TEST_F(SessionCacheTest, ConcurrentRandomizedTrafficYieldsBitIdenticalViews) {
  const std::string v1 = "K1: (ε, (//book, {@isbn}))\n";
  const std::string v2 =
      "K1: (ε, (//book, {@isbn}))\n"
      "K2: (//book, (chapter, {@number}))\n";
  const std::string flip_path = Write("flip_keys.txt", v1);

  // Canonical per-version serializations, computed single-threaded.
  auto serialize = [](const std::vector<XmlKey>& keys) {
    std::ostringstream out;
    for (const XmlKey& k : keys) out << k.ToString() << "\n";
    return out.str();
  };
  SessionCache seed(SessionCache::Options{});
  auto k1 = seed.Keys(flip_path);
  ASSERT_TRUE(k1.ok());
  const std::string v1_view = serialize(**k1);
  Replace(flip_path, v2);
  auto k2 = seed.Keys(flip_path);
  ASSERT_TRUE(k2.ok());
  const std::string v2_view = serialize(**k2);
  ASSERT_NE(v1_view, v2_view);
  Replace(flip_path, v1);

  // Tiny budget: a few entries fit, so hits, misses, evictions and
  // invalidations all occur under contention.
  SessionCache cache(SessionCache::Options{32 * 1024});
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    bool odd = false;
    while (!stop.load(std::memory_order_acquire)) {
      Replace(flip_path, odd ? v2 : v1);
      odd = !odd;
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 6; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937 rng(1234u + static_cast<unsigned>(t));
      for (int i = 0; i < 120; ++i) {
        switch (rng() % 3) {
          case 0: {
            auto keys = cache.Keys(flip_path);
            if (!keys.ok()) {
              failures.fetch_add(1);
              break;
            }
            const std::string view = serialize(**keys);
            if (view != v1_view && view != v2_view) failures.fetch_add(1);
            break;
          }
          case 1: {
            auto keys = cache.Keys(keys_path_);
            if (!keys.ok() || (*keys)->size() != 7u) failures.fetch_add(1);
            break;
          }
          default: {
            auto doc = cache.Doc(doc_path_);
            if (!doc.ok() || (*doc)->size() == 0) failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_release);
  writer.join();

  EXPECT_EQ(failures.load(), 0);
  const SessionCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_LE(stats.bytes, 32u * 1024u);
}

TEST_F(SessionCacheTest, FingerprintDistinguishesContent) {
  EXPECT_NE(Fingerprint64("a"), Fingerprint64("b"));
  EXPECT_EQ(Fingerprint64("same"), Fingerprint64("same"));
  EXPECT_NE(Fingerprint64(""), Fingerprint64(std::string("\0", 1)));
}

}  // namespace
}  // namespace service
}  // namespace xmlprop
