#include "transform/rule.h"

#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "transform/rule_parser.h"

namespace xmlprop {
namespace {

using testing_fixtures::kPaperTransformation;

Result<TableRule> ParseOne(std::string_view body) {
  return ParseTableRule(std::string("rule R {\n") + std::string(body) +
                        "\n}\n");
}

TEST(RuleParserTest, PaperTransformationParses) {
  Result<Transformation> t = ParseTransformation(kPaperTransformation);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->rules().size(), 3u);
  EXPECT_EQ(t->rules()[0].relation_name(), "book");
  EXPECT_EQ(t->rules()[1].relation_name(), "chapter");
  EXPECT_EQ(t->rules()[2].relation_name(), "section");
  EXPECT_EQ(t->rules()[0].field_rules().size(), 4u);
  EXPECT_EQ(t->rules()[0].mappings().size(), 6u);
}

TEST(RuleParserTest, SchemaFollowsFieldOrder) {
  Result<Transformation> t = ParseTransformation(kPaperTransformation);
  ASSERT_TRUE(t.ok());
  RelationSchema s = t->rules()[0].Schema();
  EXPECT_EQ(s.ToString(), "book(isbn, title, author, contact)");
}

TEST(RuleParserTest, MappingRhsSplitsParentAndPath) {
  Result<TableRule> r = ParseOne(R"(
      f: value(X1)
      Xa := Xr//book
      X1 := Xa/@isbn)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->mappings()[0].parent, "Xr");
  EXPECT_EQ(r->mappings()[0].path.ToString(), "//book");
  EXPECT_EQ(r->mappings()[1].parent, "Xa");
  EXPECT_EQ(r->mappings()[1].path.ToString(), "@isbn");
}

TEST(RuleParserTest, CommentsIgnored) {
  Result<TableRule> r = ParseOne(R"(
      # field rules
      f: value(X1)   # the only field
      Xa := Xr//b    # var
      X1 := Xa/@x)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(RuleParserTest, ErrorMissingBrace) {
  EXPECT_FALSE(ParseTransformation("rule R {\n f: value(X)\n").ok());
}

TEST(RuleParserTest, ErrorBadHeader) {
  EXPECT_FALSE(ParseTransformation("table R {\n}\n").ok());
  EXPECT_FALSE(ParseTransformation("rule {\n}\n").ok());
}

TEST(RuleParserTest, ErrorMalformedLines) {
  EXPECT_FALSE(ParseOne("f: nonsense(X)").ok());
  EXPECT_FALSE(ParseOne("just some words").ok());
  EXPECT_FALSE(ParseOne("X := /nope").ok());
  EXPECT_FALSE(ParseOne("X := Xr").ok());
}

TEST(RuleValidationTest, UndeclaredParentRejected) {
  Result<TableRule> r = ParseOne(R"(
      f: value(X1)
      X1 := Zz/@x)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("undeclared parent"),
            std::string::npos);
}

TEST(RuleValidationTest, DescendantOnlyFromRoot) {
  // Definition 2.2: X := Y/P with P containing '//' requires Y = Xr.
  Result<TableRule> r = ParseOne(R"(
      f: value(X1)
      Xa := Xr/a
      X1 := Xa//b)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("'//'"), std::string::npos);

  Result<TableRule> ok = ParseOne(R"(
      f: value(X1)
      Xa := Xr//a
      X1 := Xa/b)");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(RuleValidationTest, FieldVariablesMustBeLeaves) {
  // Definition 2.2: no field value(Y) when some X := Y/P exists.
  Result<TableRule> r = ParseOne(R"(
      f: value(Xa)
      Xa := Xr//a
      X1 := Xa/b)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("child mappings"), std::string::npos);
}

TEST(RuleValidationTest, DuplicateVariableRejected) {
  EXPECT_FALSE(ParseOne(R"(
      f: value(X1)
      X1 := Xr/a
      X1 := Xr/b)").ok());
}

TEST(RuleValidationTest, DuplicateFieldRejected) {
  EXPECT_FALSE(ParseOne(R"(
      f: value(X1)
      f: value(X2)
      X1 := Xr/a
      X2 := Xr/b)").ok());
}

TEST(RuleValidationTest, SharedFieldVariableRejected) {
  EXPECT_FALSE(ParseOne(R"(
      f: value(X1)
      g: value(X1)
      X1 := Xr/a)").ok());
}

TEST(RuleValidationTest, FieldOnUndeclaredVariable) {
  EXPECT_FALSE(ParseOne("f: value(Ghost)").ok());
}

TEST(RuleValidationTest, NoFieldsRejected) {
  EXPECT_FALSE(ParseOne("X1 := Xr/a").ok());
}

TEST(RuleValidationTest, AttributeVariableCannotHaveChildren) {
  Result<TableRule> r = ParseOne(R"(
      f: value(X2)
      X1 := Xr/a/@attr
      X2 := X1/b)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("attribute-valued"),
            std::string::npos);
}

TEST(RuleValidationTest, RootCannotBeRemapped) {
  EXPECT_FALSE(ParseOne(R"(
      f: value(X1)
      Xr := Xr/a
      X1 := Xr/b)").ok());
}

TEST(TransformationTest, DuplicateRelationRejected) {
  Transformation t;
  TableRule a("R"), b("R");
  a.AddField("f", "X");
  a.AddMapping("X", std::string(kRootVar), PathExpr::Label("x"));
  b.AddField("g", "Y");
  b.AddMapping("Y", std::string(kRootVar), PathExpr::Label("y"));
  t.AddRule(a);
  t.AddRule(b);
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TransformationTest, FindRule) {
  Result<Transformation> t = ParseTransformation(kPaperTransformation);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->FindRule("chapter").ok());
  EXPECT_FALSE(t->FindRule("nope").ok());
}

TEST(RuleToStringTest, MentionsFieldsAndMappings) {
  Result<Transformation> t = ParseTransformation(kPaperTransformation);
  ASSERT_TRUE(t.ok());
  std::string s = t->rules()[0].ToString();
  EXPECT_NE(s.find("Rule(book)"), std::string::npos);
  EXPECT_NE(s.find("isbn: value(X1)"), std::string::npos);
  EXPECT_NE(s.find("Xa := Xr//book"), std::string::npos);
}

}  // namespace
}  // namespace xmlprop
