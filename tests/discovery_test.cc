#include "keys/discovery.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "keys/implication.h"
#include "keys/satisfaction.h"
#include "paper_fixtures.h"
#include "xml/parser.h"

namespace xmlprop {
namespace {

using testing_fixtures::Fig1Tree;

Tree T(std::string_view xml) {
  Result<Tree> t = ParseXml(xml);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(t).value();
}

bool Contains(const std::vector<DiscoveredKey>& keys,
              std::string_view context, std::string_view target,
              const std::vector<std::string>& attrs) {
  return std::any_of(keys.begin(), keys.end(), [&](const DiscoveredKey& d) {
    return d.key.context().ToString() == context &&
           d.key.target().ToString() == target &&
           d.key.attributes() == attrs;
  });
}

TEST(DiscoveryTest, FindsPaperStyleKeysOnFig1) {
  Tree tree = Fig1Tree();
  Result<std::vector<DiscoveredKey>> keys = DiscoverKeys(tree);
  ASSERT_TRUE(keys.ok()) << keys.status().ToString();

  // The paper's K1 (books keyed by @isbn document-wide) and K2 (chapters
  // keyed by @number per book) are discoverable from the data.
  EXPECT_TRUE(Contains(*keys, "ε", "//book", {"isbn"}))
      << "missing K1-like key";
  EXPECT_TRUE(Contains(*keys, "//book", "chapter", {"number"}))
      << "missing K2-like key";
  // K3: at most one title per book.
  EXPECT_TRUE(Contains(*keys, "//book", "title", {}));
  // K7: at most one author/contact per book. Fig. 1 additionally has at
  // most one author per book, so discovery may return the two stronger
  // single-step keys instead; the discovered set must IMPLY K7.
  std::vector<XmlKey> discovered_keys;
  for (const DiscoveredKey& d : *keys) discovered_keys.push_back(d.key);
  Result<XmlKey> k7 = XmlKey::Parse("(//book, (author/contact, {}))");
  ASSERT_TRUE(k7.ok());
  EXPECT_TRUE(Implies(discovered_keys, *k7));
}

TEST(DiscoveryTest, EveryDiscoveredKeyActuallyHolds) {
  Tree tree = Fig1Tree();
  Result<std::vector<DiscoveredKey>> keys = DiscoverKeys(tree);
  ASSERT_TRUE(keys.ok());
  EXPECT_FALSE(keys->empty());
  for (const DiscoveredKey& d : *keys) {
    EXPECT_TRUE(Satisfies(tree, d.key)) << d.key.ToString();
    EXPECT_GT(d.context_count, 0u);
    EXPECT_GT(d.target_count, 0u);
  }
}

TEST(DiscoveryTest, DoesNotProposeViolatedKeys) {
  // Two books share a title value; //book keyed by nothing-but-@t fails.
  Tree tree = T(R"(<r><book t="XML" isbn="1"/><book t="XML" isbn="2"/></r>)");
  Result<std::vector<DiscoveredKey>> keys = DiscoverKeys(tree);
  ASSERT_TRUE(keys.ok());
  EXPECT_FALSE(Contains(*keys, "ε", "//book", {"t"}));
  EXPECT_TRUE(Contains(*keys, "ε", "//book", {"isbn"}));
}

TEST(DiscoveryTest, MinimalAttributeSetsOnly) {
  // @isbn alone keys books, so {isbn, t} must not be proposed.
  Tree tree = T(R"(<r><book t="a" isbn="1"/><book t="b" isbn="2"/></r>)");
  Result<std::vector<DiscoveredKey>> keys = DiscoverKeys(tree);
  ASSERT_TRUE(keys.ok());
  for (const DiscoveredKey& d : *keys) {
    EXPECT_LE(d.key.attributes().size(), 1u) << d.key.ToString();
  }
}

TEST(DiscoveryTest, CompositeKeysWhenNeeded) {
  // Neither @a nor @b alone identifies; {a, b} does.
  Tree tree = T(R"(<r>
      <p a="1" b="1"/><p a="1" b="2"/><p a="2" b="1"/></r>)");
  Result<std::vector<DiscoveredKey>> keys = DiscoverKeys(tree);
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(Contains(*keys, "ε", "//p", {"a", "b"}));
  EXPECT_FALSE(Contains(*keys, "ε", "//p", {"a"}));
  EXPECT_FALSE(Contains(*keys, "ε", "//p", {"b"}));
}

TEST(DiscoveryTest, RelativeButNotAbsolute) {
  // Chapter numbers repeat across books: only the relative key holds.
  Tree tree = T(R"(<r>
      <book isbn="1"><chapter number="1"/><chapter number="2"/></book>
      <book isbn="2"><chapter number="1"/></book></r>)");
  Result<std::vector<DiscoveredKey>> keys = DiscoverKeys(tree);
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(Contains(*keys, "//book", "chapter", {"number"}));
  EXPECT_FALSE(Contains(*keys, "ε", "//chapter", {"number"}));
}

TEST(DiscoveryTest, PruningDropsImpliedKeys) {
  // With pruning, (//book, (chapter, {@n})) subsumes weaker variants
  // like (//shelf/book, ...) — and in particular the same key must not
  // appear twice reachable via different context spellings.
  Tree tree = T(R"(<r>
      <book isbn="1"><chapter n="1"/></book></r>)");
  DiscoveryOptions no_prune;
  no_prune.prune_implied = false;
  Result<std::vector<DiscoveredKey>> all = DiscoverKeys(tree, no_prune);
  Result<std::vector<DiscoveredKey>> pruned = DiscoverKeys(tree);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(pruned.ok());
  EXPECT_LT(pruned->size(), all->size());
  // Everything pruned is implied by what remains.
  std::vector<XmlKey> kept;
  for (const DiscoveredKey& d : *pruned) kept.push_back(d.key);
  for (const DiscoveredKey& d : *all) {
    bool in_kept = std::any_of(
        pruned->begin(), pruned->end(),
        [&](const DiscoveredKey& k) { return k.key == d.key; });
    if (!in_kept) {
      EXPECT_TRUE(Implies(kept, d.key)) << d.key.ToString();
    }
  }
}

TEST(DiscoveryTest, CandidateCapEnforced) {
  Tree tree = Fig1Tree();
  DiscoveryOptions options;
  options.max_candidates = 3;
  Result<std::vector<DiscoveredKey>> keys = DiscoverKeys(tree, options);
  EXPECT_FALSE(keys.ok());
}

TEST(DiscoveryTest, TargetLengthBoundRespected) {
  Tree tree = Fig1Tree();
  DiscoveryOptions options;
  options.max_target_length = 1;
  Result<std::vector<DiscoveredKey>> keys = DiscoverKeys(tree, options);
  ASSERT_TRUE(keys.ok());
  for (const DiscoveredKey& d : *keys) {
    // Non-descendant targets have at most one step.
    if (d.key.target().IsSimple()) {
      EXPECT_LE(d.key.target().length(), 1u) << d.key.ToString();
    }
  }
}

TEST(DiscoveryTest, MinSupportFiltersSingletonEvidence) {
  // One author in the whole document: without support filtering the
  // vacuous key (ε, (//author, {})) is proposed; with min_targets = 2 it
  // is not, while the two-book @isbn key survives.
  Tree tree = Fig1Tree();
  Result<std::vector<DiscoveredKey>> all = DiscoverKeys(tree);
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(Contains(*all, "ε", "//author", {}));

  DiscoveryOptions options;
  options.min_targets = 2;
  Result<std::vector<DiscoveredKey>> supported = DiscoverKeys(tree, options);
  ASSERT_TRUE(supported.ok());
  EXPECT_FALSE(Contains(*supported, "ε", "//author", {}));
  EXPECT_TRUE(Contains(*supported, "ε", "//book", {"isbn"}));
  for (const DiscoveredKey& d : *supported) {
    EXPECT_GE(d.target_count, 2u) << d.key.ToString();
  }
}

TEST(DiscoveryTest, TrivialDocument) {
  Tree tree = T("<r/>");
  Result<std::vector<DiscoveredKey>> keys = DiscoverKeys(tree);
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(keys->empty());
}

}  // namespace
}  // namespace xmlprop
