#include "relational/csv.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace xmlprop {
namespace {

RelationSchema S() {
  Result<RelationSchema> s = RelationSchema::Parse("t(a, b, c)");
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

TEST(CsvTest, WriteBasic) {
  Instance i(S());
  ASSERT_TRUE(i.Add({Field("1"), Field("x"), std::nullopt}).ok());
  EXPECT_EQ(WriteCsv(i), "a,b,c\n1,x,\n");
}

TEST(CsvTest, QuotingRules) {
  Instance i(S());
  ASSERT_TRUE(i.Add({Field("has,comma"), Field("has \"quote\""),
                     Field("")}).ok());
  std::string csv = WriteCsv(i);
  EXPECT_EQ(csv, "a,b,c\n\"has,comma\",\"has \"\"quote\"\"\",\"\"\n");
}

TEST(CsvTest, ReadBasic) {
  Result<Instance> i = ReadCsv(S(), "a,b,c\n1,x,\n2,y,z\n");
  ASSERT_TRUE(i.ok()) << i.status().ToString();
  ASSERT_EQ(i->size(), 2u);
  EXPECT_EQ(i->tuples()[0][0], Field("1"));
  EXPECT_EQ(i->tuples()[0][2], std::nullopt);  // unquoted empty = NULL
  EXPECT_EQ(i->tuples()[1][2], Field("z"));
}

TEST(CsvTest, QuotedEmptyIsEmptyStringNotNull) {
  Result<Instance> i = ReadCsv(S(), "a,b,c\n1,\"\",\n");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->tuples()[0][1], Field(""));
  EXPECT_EQ(i->tuples()[0][2], std::nullopt);
}

TEST(CsvTest, HeaderReordersColumns) {
  Result<Instance> i = ReadCsv(S(), "c,a,b\nz,1,y\n");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->tuples()[0][0], Field("1"));
  EXPECT_EQ(i->tuples()[0][1], Field("y"));
  EXPECT_EQ(i->tuples()[0][2], Field("z"));
}

TEST(CsvTest, EmbeddedNewlinesAndCrlf) {
  Result<Instance> i =
      ReadCsv(S(), "a,b,c\r\n\"line1\nline2\",x,y\r\n");
  ASSERT_TRUE(i.ok()) << i.status().ToString();
  EXPECT_EQ(i->tuples()[0][0], Field("line1\nline2"));
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(ReadCsv(S(), "").ok());                     // no header
  EXPECT_FALSE(ReadCsv(S(), "a,b\n1,2\n").ok());           // arity
  EXPECT_FALSE(ReadCsv(S(), "a,b,zz\n1,2,3\n").ok());      // unknown col
  EXPECT_FALSE(ReadCsv(S(), "a,a,b\n1,2,3\n").ok());       // repeated col
  EXPECT_FALSE(ReadCsv(S(), "a,b,c\n1,2\n").ok());         // short row
  EXPECT_FALSE(ReadCsv(S(), "a,b,c\n\"open,2,3\n").ok());  // unterminated
  EXPECT_FALSE(ReadCsv(S(), "a,b,c\nx\"y,2,3\n").ok());    // stray quote
}

TEST(CsvTest, BlankLinesSkipped) {
  Result<Instance> i = ReadCsv(S(), "a,b,c\n\n1,2,3\n\n");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->size(), 1u);
}

TEST(CsvTest, RoundTripRandomInstances) {
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    Instance original(S());
    int rows = rng.UniformInt(0, 8);
    for (int r = 0; r < rows; ++r) {
      Tuple t(3);
      for (size_t c = 0; c < 3; ++c) {
        switch (rng.UniformInt(0, 4)) {
          case 0:
            break;  // NULL
          case 1:
            t[c] = "";
            break;
          case 2:
            t[c] = "plain" + std::to_string(rng.UniformInt(0, 9));
            break;
          case 3:
            t[c] = "with,comma\"and\"quotes";
            break;
          case 4:
            t[c] = "multi\nline\r\nvalue";
            break;
        }
      }
      ASSERT_TRUE(original.Add(std::move(t)).ok());
    }
    Result<Instance> back = ReadCsv(S(), WriteCsv(original));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ASSERT_EQ(back->size(), original.size());
    for (size_t r = 0; r < original.size(); ++r) {
      EXPECT_EQ(back->tuples()[r], original.tuples()[r]);
    }
  }
}

}  // namespace
}  // namespace xmlprop
