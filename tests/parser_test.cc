#include "xml/parser.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "synth/doc_generator.h"
#include "xml/writer.h"

namespace xmlprop {
namespace {

Tree MustParse(std::string_view xml, const ParseOptions& options = {}) {
  Result<Tree> t = ParseXml(xml, options);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(t).value();
}

TEST(ParserTest, MinimalDocument) {
  Tree t = MustParse("<r/>");
  EXPECT_EQ(t.node(t.root()).label, "r");
  EXPECT_TRUE(t.node(t.root()).children.empty());
}

TEST(ParserTest, DeclarationAndWhitespace) {
  Tree t = MustParse("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n  <r/>\n");
  EXPECT_EQ(t.node(t.root()).label, "r");
}

TEST(ParserTest, AttributesBothQuoteStyles) {
  Tree t = MustParse("<r a=\"1\" b='two'/>");
  EXPECT_EQ(t.AttributeValue(t.root(), "a"), "1");
  EXPECT_EQ(t.AttributeValue(t.root(), "b"), "two");
}

TEST(ParserTest, NestedElementsAndText) {
  Tree t = MustParse("<r><a>hi</a><b><c/></b></r>");
  ASSERT_EQ(t.node(t.root()).children.size(), 2u);
  NodeId a = t.node(t.root()).children[0];
  EXPECT_EQ(t.Value(a), "hi");
}

TEST(ParserTest, WhitespaceOnlyTextDroppedByDefault) {
  Tree t = MustParse("<r>\n  <a/>\n</r>");
  ASSERT_EQ(t.node(t.root()).children.size(), 1u);
  EXPECT_EQ(t.node(t.node(t.root()).children[0]).label, "a");
}

TEST(ParserTest, WhitespaceKeptOnRequest) {
  ParseOptions options;
  options.keep_whitespace_text = true;
  Tree t = MustParse("<r> <a/> </r>", options);
  EXPECT_EQ(t.node(t.root()).children.size(), 3u);
}

TEST(ParserTest, PredefinedEntities) {
  Tree t = MustParse("<r a=\"&lt;&amp;&gt;\">&quot;x&apos;</r>");
  EXPECT_EQ(t.AttributeValue(t.root(), "a"), "<&>");
  ASSERT_EQ(t.node(t.root()).children.size(), 1u);
  EXPECT_EQ(t.node(t.node(t.root()).children[0]).value, "\"x'");
}

TEST(ParserTest, NumericCharacterReferences) {
  Tree t = MustParse("<r>&#65;&#x42;&#xE9;</r>");
  EXPECT_EQ(t.Value(t.root()), "AB\xC3\xA9");  // 'A', 'B', U+00E9 as UTF-8
}

TEST(ParserTest, CdataSection) {
  Tree t = MustParse("<r><![CDATA[a < b & c]]></r>");
  EXPECT_EQ(t.Value(t.root()), "a < b & c");
}

TEST(ParserTest, CommentsAndPisSkipped) {
  Tree t = MustParse(
      "<!-- head --><?pi data?><r><!-- in --><a/><?x?></r><!-- tail -->");
  ASSERT_EQ(t.node(t.root()).children.size(), 1u);
}

TEST(ParserTest, DoctypeWithInternalSubsetSkipped) {
  Tree t = MustParse(
      "<!DOCTYPE r [ <!ELEMENT r (a)> <!ATTLIST r x CDATA #IMPLIED> ]><r/>");
  EXPECT_EQ(t.node(t.root()).label, "r");
}

TEST(ParserTest, SelfClosingNested) {
  Tree t = MustParse("<r><a x=\"1\"/><b/></r>");
  EXPECT_EQ(t.node(t.root()).children.size(), 2u);
}

TEST(ParserTest, ErrorMismatchedTags) {
  Result<Tree> t = ParseXml("<r><a></b></r>");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("mismatched"), std::string::npos);
}

TEST(ParserTest, ErrorUnterminatedElement) {
  EXPECT_FALSE(ParseXml("<r><a>").ok());
}

TEST(ParserTest, ErrorDuplicateAttribute) {
  EXPECT_FALSE(ParseXml("<r a=\"1\" a=\"2\"/>").ok());
}

TEST(ParserTest, ErrorContentAfterRoot) {
  EXPECT_FALSE(ParseXml("<r/><r2/>").ok());
}

TEST(ParserTest, ErrorBadEntity) {
  EXPECT_FALSE(ParseXml("<r>&nope;</r>").ok());
  EXPECT_FALSE(ParseXml("<r>&#xZZ;</r>").ok());
  EXPECT_FALSE(ParseXml("<r>& loose</r>").ok());
}

TEST(ParserTest, ErrorLtInAttribute) {
  EXPECT_FALSE(ParseXml("<r a=\"<\"/>").ok());
}

TEST(ParserTest, ErrorReportsPosition) {
  Result<Tree> t = ParseXml("<r>\n<a></b>\n</r>");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("2:"), std::string::npos);
}

// Structural equality of two trees (labels, attrs, text, order).
bool TreesEqual(const Tree& a, NodeId na, const Tree& b, NodeId nb) {
  const Node& x = a.node(na);
  const Node& y = b.node(nb);
  if (x.kind != y.kind || x.label != y.label || x.value != y.value)
    return false;
  if (x.attributes.size() != y.attributes.size() ||
      x.children.size() != y.children.size())
    return false;
  for (size_t i = 0; i < x.attributes.size(); ++i) {
    if (!TreesEqual(a, x.attributes[i], b, y.attributes[i])) return false;
  }
  for (size_t i = 0; i < x.children.size(); ++i) {
    if (!TreesEqual(a, x.children[i], b, y.children[i])) return false;
  }
  return true;
}

TEST(WriterTest, EscapesSpecials) {
  Tree t("r");
  ASSERT_TRUE(t.CreateAttribute(t.root(), "a", "x\"<&>").ok());
  t.CreateText(t.root(), "1 < 2 & 3 > 2");
  std::string xml = WriteXml(t);
  EXPECT_NE(xml.find("&quot;"), std::string::npos);
  EXPECT_NE(xml.find("&lt;"), std::string::npos);
  EXPECT_NE(xml.find("&amp;"), std::string::npos);
}

TEST(WriterTest, RoundTripHandBuilt) {
  Tree t("r");
  NodeId book = t.CreateElement(t.root(), "book");
  ASSERT_TRUE(t.CreateAttribute(book, "isbn", "a&b\"c").ok());
  NodeId title = t.CreateElement(book, "title");
  t.CreateText(title, "<XML> & more");
  Tree back = MustParse(WriteXml(t));
  EXPECT_TRUE(TreesEqual(t, t.root(), back, back.root()));
}

// Property: random trees survive write→parse byte-structure-exactly.
class RoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripProperty, WriteParseIsIdentity) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  RandomTreeSpec spec;
  spec.max_depth = 5;
  spec.max_children = 4;
  Tree t = RandomTree(spec, &rng);
  // Pretty form: indentation whitespace is dropped again by the default
  // parse options; generated text is never whitespace-only.
  Tree back = MustParse(WriteXml(t));
  EXPECT_TRUE(TreesEqual(t, t.root(), back, back.root()));
  // Compact form adds no whitespace at all, so keeping whitespace must
  // also reproduce the tree exactly.
  WriteOptions compact;
  compact.indent = 0;
  ParseOptions keep;
  keep.keep_whitespace_text = true;
  Tree back2 = MustParse(WriteXml(t, compact), keep);
  EXPECT_TRUE(TreesEqual(t, t.root(), back2, back2.root()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace xmlprop
