#include "xml/tree.h"

#include <gtest/gtest.h>

namespace xmlprop {
namespace {

Tree SampleTree() {
  // <r><book isbn="1"><title>XML</title><chapter number="2"/></book></r>
  Tree t("r");
  NodeId book = t.CreateElement(t.root(), "book");
  EXPECT_TRUE(t.CreateAttribute(book, "isbn", "1").ok());
  NodeId title = t.CreateElement(book, "title");
  t.CreateText(title, "XML");
  NodeId chapter = t.CreateElement(book, "chapter");
  EXPECT_TRUE(t.CreateAttribute(chapter, "number", "2").ok());
  return t;
}

TEST(TreeTest, RootIsElementZero) {
  Tree t("r");
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.node(0).kind, NodeKind::kElement);
  EXPECT_EQ(t.node(0).label, "r");
  EXPECT_EQ(t.node(0).parent, kInvalidNode);
}

TEST(TreeTest, ParentChildLinks) {
  Tree t = SampleTree();
  NodeId book = t.node(t.root()).children[0];
  EXPECT_EQ(t.node(book).label, "book");
  EXPECT_EQ(t.node(book).parent, t.root());
  EXPECT_EQ(t.node(book).children.size(), 2u);
  EXPECT_EQ(t.node(book).attributes.size(), 1u);
}

TEST(TreeTest, DuplicateAttributeRejected) {
  Tree t("r");
  ASSERT_TRUE(t.CreateAttribute(t.root(), "a", "1").ok());
  Result<NodeId> dup = t.CreateAttribute(t.root(), "a", "2");
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
}

TEST(TreeTest, AttributeLookup) {
  Tree t = SampleTree();
  NodeId book = t.node(t.root()).children[0];
  EXPECT_EQ(t.AttributeValue(book, "isbn"), "1");
  EXPECT_FALSE(t.AttributeValue(book, "missing").has_value());
  EXPECT_TRUE(t.FindAttribute(book, "isbn").has_value());
}

TEST(TreeTest, SetAttributeValueUpdatesAndCreates) {
  Tree t("r");
  ASSERT_TRUE(t.SetAttributeValue(t.root(), "a", "1").ok());
  EXPECT_EQ(t.AttributeValue(t.root(), "a"), "1");
  ASSERT_TRUE(t.SetAttributeValue(t.root(), "a", "2").ok());
  EXPECT_EQ(t.AttributeValue(t.root(), "a"), "2");
  EXPECT_EQ(t.node(t.root()).attributes.size(), 1u);
}

TEST(TreeTest, ValueOfAttributeAndText) {
  Tree t = SampleTree();
  NodeId book = t.node(t.root()).children[0];
  NodeId isbn = *t.FindAttribute(book, "isbn");
  EXPECT_EQ(t.Value(isbn), "1");
  NodeId title = t.node(book).children[0];
  EXPECT_EQ(t.Value(title), "XML");  // text-only element flattens
}

TEST(TreeTest, ValueOfStructuredElementIsPreorder) {
  // Example 2.5: value(section) = "(@number: 1, name: Introduction)"-style.
  Tree t("r");
  NodeId section = t.CreateElement(t.root(), "section");
  ASSERT_TRUE(t.CreateAttribute(section, "number", "1").ok());
  NodeId name = t.CreateElement(section, "name");
  t.CreateText(name, "Introduction");
  EXPECT_EQ(t.Value(section), "(@number: 1, name: Introduction)");
}

TEST(TreeTest, DescendantsOrSelfDocumentOrder) {
  Tree t = SampleTree();
  std::vector<NodeId> d = t.DescendantsOrSelf(t.root());
  ASSERT_EQ(d.size(), 4u);  // r, book, title, chapter
  EXPECT_EQ(d[0], t.root());
  EXPECT_EQ(t.node(d[1]).label, "book");
  EXPECT_EQ(t.node(d[2]).label, "title");
  EXPECT_EQ(t.node(d[3]).label, "chapter");
}

TEST(TreeTest, ChildElementsFiltersByLabel) {
  Tree t = SampleTree();
  NodeId book = t.node(t.root()).children[0];
  EXPECT_EQ(t.ChildElements(book, "title").size(), 1u);
  EXPECT_EQ(t.ChildElements(book, "chapter").size(), 1u);
  EXPECT_TRUE(t.ChildElements(book, "nosuch").empty());
}

TEST(TreeTest, AncestorOrSelf) {
  Tree t = SampleTree();
  NodeId book = t.node(t.root()).children[0];
  NodeId title = t.node(book).children[0];
  EXPECT_TRUE(t.IsAncestorOrSelf(t.root(), title));
  EXPECT_TRUE(t.IsAncestorOrSelf(title, title));
  EXPECT_FALSE(t.IsAncestorOrSelf(title, book));
}

TEST(TreeTest, GraftDeepCopies) {
  Tree src("frag");
  NodeId a = src.CreateElement(src.root(), "a");
  ASSERT_TRUE(src.CreateAttribute(a, "x", "1").ok());
  src.CreateText(a, "hello");

  Tree dst("r");
  Result<NodeId> grafted = dst.Graft(dst.root(), src, src.root());
  ASSERT_TRUE(grafted.ok());
  EXPECT_EQ(dst.node(*grafted).label, "frag");
  ASSERT_EQ(dst.node(*grafted).children.size(), 1u);
  NodeId copied_a = dst.node(*grafted).children[0];
  EXPECT_EQ(dst.AttributeValue(copied_a, "x"), "1");
  EXPECT_EQ(dst.Value(copied_a), "(@x: 1, hello)");
  // The source is untouched.
  EXPECT_EQ(src.size(), 4u);
}

TEST(TreeTest, GraftSubtreeOnly) {
  Tree src("frag");
  NodeId a = src.CreateElement(src.root(), "a");
  src.CreateElement(a, "b");
  src.CreateElement(src.root(), "c");

  Tree dst("r");
  Result<NodeId> grafted = dst.Graft(dst.root(), src, a);
  ASSERT_TRUE(grafted.ok());
  EXPECT_EQ(dst.node(*grafted).label, "a");
  EXPECT_EQ(dst.size(), 3u);  // r, a, b — 'c' not copied
}

TEST(TreeTest, GraftRejectsBadArguments) {
  Tree src("frag");
  NodeId a = src.CreateElement(src.root(), "a");
  Result<NodeId> attr = src.CreateAttribute(a, "x", "1");
  ASSERT_TRUE(attr.ok());
  Tree dst("r");
  EXPECT_FALSE(dst.Graft(999, src, src.root()).ok());
  EXPECT_FALSE(dst.Graft(dst.root(), src, *attr).ok());  // not an element
}

TEST(TreeTest, PathLabelsFromRoot) {
  Tree t = SampleTree();
  NodeId book = t.node(t.root()).children[0];
  NodeId title = t.node(book).children[0];
  EXPECT_EQ(t.PathLabelsFromRoot(title),
            (std::vector<std::string>{"book", "title"}));
  EXPECT_TRUE(t.PathLabelsFromRoot(t.root()).empty());
}

}  // namespace
}  // namespace xmlprop
