// Regression guards for the paper's complexity claims (Sections 4-6):
// the cost driver of both checking algorithms is the number of calls to
// Algorithm implication, which must scale linearly with the table-tree
// depth for `propagation` and polynomially (≈ nodes × ancestors × keys
// + nodes²) for `minimumCover`. These tests pin loose upper bounds so a
// future change that accidentally blows up the call count fails fast.

#include <gtest/gtest.h>

#include "core/minimum_cover.h"
#include "core/propagation.h"
#include "synth/workload.h"

namespace xmlprop {
namespace {

SyntheticWorkload Make(size_t fields, size_t depth, size_t keys) {
  WorkloadSpec spec;
  spec.fields = fields;
  spec.depth = depth;
  spec.keys = keys;
  Result<SyntheticWorkload> w = MakeWorkload(spec);
  EXPECT_TRUE(w.ok());
  return std::move(w).value();
}

TEST(ComplexityTest, PropagationImplicationCallsLinearInDepth) {
  // Fig. 5 issues at most 2 implication calls per ancestor of the RHS
  // variable, per RHS attribute.
  for (size_t depth : {2u, 5u, 10u, 20u}) {
    SyntheticWorkload w = Make(/*fields=*/depth, depth, /*keys=*/depth);
    // All chain keys but the deepest → the deepest (walks every level;
    // the workload's true_fd can degenerate to a call-free trivial FD).
    const size_t arity = w.table.schema().arity();
    AttrSet lhs = w.table.schema().FullSet();
    lhs.Reset(arity - 1);
    Fd fd = Fd::SingleRhs(std::move(lhs), arity - 1);
    PropagationStats stats;
    Result<bool> r = CheckPropagation(w.keys, w.table, fd, &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(stats.implication_calls, 2 * (depth + 2))
        << "depth=" << depth;
    EXPECT_GE(stats.implication_calls, depth) << "depth=" << depth;
  }
}

TEST(ComplexityTest, PropagationCallsIndependentOfKeyCount) {
  // More keys make each implication call dearer but must not change the
  // number of calls (that is governed by the ancestor walk).
  SyntheticWorkload small = Make(15, 10, 10);
  SyntheticWorkload large = Make(15, 10, 100);
  PropagationStats s1, s2;
  ASSERT_TRUE(CheckPropagation(small.keys, small.table, small.true_fd, &s1)
                  .ok());
  ASSERT_TRUE(CheckPropagation(large.keys, large.table, large.true_fd, &s2)
                  .ok());
  EXPECT_EQ(s1.implication_calls, s2.implication_calls);
}

TEST(ComplexityTest, MinimumCoverCallsPolynomiallyBounded) {
  // Candidate search: nodes × ancestors × (keys + 1); FD generation:
  // keyed-nodes × field-nodes. A generous closed-form bound:
  for (auto [fields, depth, keys] :
       {std::tuple<size_t, size_t, size_t>{15, 5, 10},
        {30, 10, 20}, {60, 10, 40}}) {
    SyntheticWorkload w = Make(fields, depth, keys);
    PropagationStats stats;
    Result<FdSet> cover = MinimumCover(w.keys, w.table, &stats);
    ASSERT_TRUE(cover.ok());
    size_t nodes = w.table.size();
    size_t bound = nodes * (depth + 2) * (keys + 1) + nodes * nodes;
    EXPECT_LE(stats.implication_calls, bound)
        << "fields=" << fields << " depth=" << depth << " keys=" << keys;
  }
}

TEST(ComplexityTest, MinimumCoverScalesToOracleColumnLimit) {
  // 1000 fields — the Oracle limit quoted in Section 6 — must stay in
  // interactive time (the paper's own propagation took minutes there on
  // 2003 hardware; minimumCover is our polynomial workhorse).
  SyntheticWorkload w = Make(1000, 10, 50);
  Result<FdSet> cover = MinimumCover(w.keys, w.table);
  ASSERT_TRUE(cover.ok());
  EXPECT_GT(cover->size(), 0u);
}

}  // namespace
}  // namespace xmlprop
