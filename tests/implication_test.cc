#include "keys/implication.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "keys/satisfaction.h"
#include "paper_fixtures.h"
#include "synth/doc_generator.h"

namespace xmlprop {
namespace {

using testing_fixtures::PaperKeys;

XmlKey K(std::string_view text) {
  Result<XmlKey> k = XmlKey::Parse(text);
  EXPECT_TRUE(k.ok()) << k.status().ToString();
  return std::move(k).value();
}

std::vector<XmlKey> Keys(std::initializer_list<const char*> texts) {
  std::vector<XmlKey> out;
  for (const char* t : texts) out.push_back(K(t));
  return out;
}

TEST(ImplicationTest, EpsilonAxiom) {
  // (P, (ε, {})) holds with no keys at all: any subtree has one root.
  EXPECT_TRUE(Implies({}, K("(//anything, (ε, {}))")));
  EXPECT_TRUE(Implies({}, K("(ε, (ε, {}))")));
}

TEST(ImplicationTest, EpsilonWithAttributesNeedsExistence) {
  // (C, (ε, {@a})) additionally requires @a to exist on the C nodes
  // (Definition 2.1 condition 1) — identification alone is trivial.
  EXPECT_TRUE(ImpliesIdentification({}, K("(//book, (ε, {@isbn}))")));
  EXPECT_FALSE(Implies({}, K("(//book, (ε, {@isbn}))")));
  // With a key forcing @isbn on books, the full implication holds.
  EXPECT_TRUE(Implies(Keys({"(ε, (//book, {@isbn}))"}),
                      K("(//book, (ε, {@isbn}))")));
}

TEST(ImplicationTest, ReflexivityAndSuperkey) {
  std::vector<XmlKey> sigma = Keys({"(ε, (//book, {@isbn}))"});
  EXPECT_TRUE(ImpliesIdentification(sigma, K("(ε, (//book, {@isbn}))")));
  // Superkey (identification only): more attributes still identify.
  EXPECT_TRUE(
      ImpliesIdentification(sigma, K("(ε, (//book, {@isbn, @extra}))")));
  // But the full implication fails: @extra need not exist.
  EXPECT_FALSE(Implies(sigma, K("(ε, (//book, {@isbn, @extra}))")));
  // Fewer attributes do not identify.
  EXPECT_FALSE(ImpliesIdentification(sigma, K("(ε, (//book, {}))")));
}

TEST(ImplicationTest, TargetToContext) {
  // The paper's example rule: (ε, (//book, {@isbn})) gives
  // (//, (book, {@isbn})) — identify books under any context node.
  std::vector<XmlKey> sigma = Keys({"(ε, (//book, {@isbn}))"});
  EXPECT_TRUE(ImpliesIdentification(sigma, K("(//, (book, {@isbn}))")));
  EXPECT_TRUE(ImpliesIdentification(sigma, K("(//, (//book, {@isbn}))")));
  EXPECT_TRUE(
      ImpliesIdentification(sigma, K("(//shelf, (book, {@isbn}))")));
}

TEST(ImplicationTest, ContextContainment) {
  // Key in a wide context applies in a narrower one.
  std::vector<XmlKey> sigma = Keys({"(//book, (chapter, {@number}))"});
  EXPECT_TRUE(ImpliesIdentification(
      sigma, K("(//shelf/book, (chapter, {@number}))")));
  // Wider-than-declared contexts are not implied.
  EXPECT_FALSE(ImpliesIdentification(sigma, K("(//, (chapter, {@number}))")));
}

TEST(ImplicationTest, TargetContainment) {
  std::vector<XmlKey> sigma = Keys({"(//book, (//name, {@id}))"});
  EXPECT_TRUE(ImpliesIdentification(sigma, K("(//book, (name, {@id}))")));
  EXPECT_TRUE(
      ImpliesIdentification(sigma, K("(//book, (chapter/name, {@id}))")));
}

TEST(ImplicationTest, NegativeChapterNotGloballyKeyed) {
  // Example 4.2's failing checks: chapters are keyed per book, not per
  // document.
  std::vector<XmlKey> sigma = PaperKeys();
  EXPECT_FALSE(ImpliesIdentification(
      sigma, K("(ε, (//book/chapter, {@number}))")));
  EXPECT_FALSE(ImpliesIdentification(
      sigma, K("(ε, (//book/chapter/section, {@number}))")));
}

TEST(ImplicationTest, PositivePaperChecks) {
  // Example 4.2's succeeding checks.
  std::vector<XmlKey> sigma = PaperKeys();
  EXPECT_TRUE(ImpliesIdentification(sigma, K("(ε, (//book, {@isbn}))")));
  EXPECT_TRUE(
      ImpliesIdentification(sigma, K("(//book, (author/contact, {}))")));
  EXPECT_TRUE(
      ImpliesIdentification(sigma, K("(//book, (chapter, {@number}))")));
  EXPECT_TRUE(
      ImpliesIdentification(sigma, K("(//book/chapter, (name, {}))")));
}

TEST(ImplicationTest, CompositionOfUniqueness) {
  // (ε,(a,{})) and (a,(b,{})) force at most one a/b node — derivable only
  // through the composition rule, not by a single witness.
  std::vector<XmlKey> sigma = Keys({"(ε, (a, {}))", "(a, (b, {}))"});
  EXPECT_FALSE(FindWitness(sigma, K("(ε, (a/b, {}))")).has_value());
  EXPECT_TRUE(ImpliesIdentification(sigma, K("(ε, (a/b, {}))")));
}

TEST(ImplicationTest, CompositionWithAttributesOnTail) {
  // ≤1 'a' per doc + b keyed by @k under a ⟹ a/b keyed by @k globally.
  std::vector<XmlKey> sigma = Keys({"(ε, (a, {}))", "(a, (b, {@k}))"});
  EXPECT_TRUE(ImpliesIdentification(sigma, K("(ε, (a/b, {@k}))")));
  // The reverse shape (attributes on the head) is not derivable: many
  // 'a' nodes with distinct @k each contribute a 'b'.
  std::vector<XmlKey> sigma2 = Keys({"(ε, (a, {@k}))", "(a, (b, {}))"});
  EXPECT_FALSE(ImpliesIdentification(sigma2, K("(ε, (a/b, {}))")));
}

TEST(ImplicationTest, ThreeLevelComposition) {
  std::vector<XmlKey> sigma =
      Keys({"(ε, (a, {}))", "(a, (b, {}))", "(a/b, (c, {}))"});
  EXPECT_TRUE(ImpliesIdentification(sigma, K("(ε, (a/b/c, {}))")));
}

TEST(ImplicationTest, LongTargetsStayPolynomial) {
  // A 26-step composed-uniqueness chain: without memoization the split
  // recursion would be exponential; with it this finishes instantly.
  std::vector<XmlKey> sigma;
  std::string prefix;
  std::string target_text;
  for (char c = 'a'; c <= 'z'; ++c) {
    std::string label(1, c);
    Result<XmlKey> k =
        XmlKey::Parse("(" + (prefix.empty() ? "ε" : prefix) + ", (" +
                      label + ", {}))");
    ASSERT_TRUE(k.ok());
    sigma.push_back(std::move(k).value());
    prefix += (prefix.empty() ? "" : "/") + label;
    target_text = prefix;
  }
  Result<XmlKey> phi = XmlKey::Parse("(ε, (" + target_text + ", {}))");
  ASSERT_TRUE(phi.ok());
  EXPECT_TRUE(ImpliesIdentification(sigma, *phi));
  // Breaking one link in the middle breaks the chain.
  sigma.erase(sigma.begin() + 13);
  EXPECT_FALSE(ImpliesIdentification(sigma, *phi));
}

TEST(ImplicationTest, WitnessDescribesDerivation) {
  std::vector<XmlKey> sigma = PaperKeys();
  std::optional<ImplicationWitness> w =
      FindWitness(sigma, K("(//, (book, {@isbn}))"));
  ASSERT_TRUE(w.has_value());
  ASSERT_TRUE(w->witness_index.has_value());
  EXPECT_EQ(sigma[*w->witness_index].name(), "K1");
  std::string desc = w->Describe(sigma, K("(//, (book, {@isbn}))"));
  EXPECT_NE(desc.find("K1"), std::string::npos);
}

TEST(ImplicationTest, FullImplicationChecksExistence) {
  std::vector<XmlKey> sigma = PaperKeys();
  // //book/chapter nodes must carry @number (K2's condition 1 covers
  // them), so the full implication of the relative key holds.
  EXPECT_TRUE(Implies(sigma, K("(//book, (chapter, {@number}))")));
  // @isbn is not forced on chapters.
  EXPECT_FALSE(Implies(sigma, K("(//book, (chapter, {@isbn, @number}))")));
}

TEST(TransitiveSetTest, PaperExample41) {
  // {K1, K2} is transitive; {K2} alone is not.
  std::vector<XmlKey> k1k2 = Keys(
      {"(ε, (//book, {@isbn}))", "(//book, (chapter, {@number}))"});
  EXPECT_TRUE(IsTransitiveSet(k1k2));
  EXPECT_FALSE(IsTransitiveSet(Keys({"(//book, (chapter, {@number}))"})));
}

TEST(TransitiveSetTest, ChainOfThree) {
  EXPECT_TRUE(IsTransitiveSet(Keys({
      "(ε, (//book, {@isbn}))",
      "(//book, (chapter, {@number}))",
      "(//book/chapter, (section, {@number}))",
  })));
  // Remove the middle link: the section key is orphaned.
  EXPECT_FALSE(IsTransitiveSet(Keys({
      "(ε, (//book, {@isbn}))",
      "(//book/chapter, (section, {@number}))",
  })));
}

TEST(TransitiveSetTest, EquivalentContextPathsCount) {
  // Immediate precedence is up to path equivalence (// ≡ ////).
  EXPECT_TRUE(IsTransitiveSet(Keys({
      "(ε, (//book, {@isbn}))",
      "(////book, (chapter, {@number}))",
  })));
}

TEST(ImmediatelyPrecedesTest, Definition) {
  EXPECT_TRUE(ImmediatelyPrecedes(K("(ε, (//book, {@isbn}))"),
                                  K("(//book, (chapter, {@n}))")));
  EXPECT_FALSE(ImmediatelyPrecedes(K("(ε, (//book, {@isbn}))"),
                                   K("(//shelf, (chapter, {@n}))")));
}

// Soundness property: whenever Implies(Σ, φ) says yes, every randomly
// generated document satisfying Σ also satisfies φ.
class ImplicationSoundness : public ::testing::TestWithParam<int> {};

TEST_P(ImplicationSoundness, ImpliedKeysHoldOnSatisfyingDocs) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 13);
  std::vector<XmlKey> sigma = PaperKeys();
  std::vector<XmlKey> candidates = Keys({
      "(ε, (//book, {@isbn}))",
      "(ε, (//book, {@isbn, @number}))",
      "(//, (book, {@isbn}))",
      "(//book, (chapter, {@number}))",
      "(//book, (chapter, {@number, @isbn}))",
      "(//book, (title, {}))",
      "(//book, (chapter/name, {}))",
      "(//book/chapter, (name, {}))",
      "(ε, (//chapter, {@number}))",
      "(//book, (//section, {@number}))",
      "(//book/chapter, (section, {@number}))",
      "(ε, (//book/title, {}))",
  });
  RandomTreeSpec spec;  // paper-flavoured label alphabet by default
  for (int doc = 0; doc < 5; ++doc) {
    Result<Tree> tree = RandomSatisfyingTree(spec, sigma, &rng);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    ASSERT_TRUE(SatisfiesAll(*tree, sigma));
    for (const XmlKey& phi : candidates) {
      if (Implies(sigma, phi)) {
        EXPECT_TRUE(Satisfies(*tree, phi))
            << phi.ToString() << " claimed implied but violated";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationSoundness, ::testing::Range(0, 8));

}  // namespace
}  // namespace xmlprop
