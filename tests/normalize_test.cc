#include "relational/normalize.h"

#include <gtest/gtest.h>

namespace xmlprop {
namespace {

FdSet PaperExample12() {
  // Example 1.2: Chapter(isbn, bookTitle, author, chapterNum, chapterName)
  // with cover {isbn -> bookTitle, isbn chapterNum -> chapterName}.
  Result<RelationSchema> s = RelationSchema::Parse(
      "Chapter(isbn, bookTitle, author, chapterNum, chapterName)");
  EXPECT_TRUE(s.ok());
  FdSet f(*s);
  EXPECT_TRUE(f.AddParsed("isbn -> bookTitle").ok());
  EXPECT_TRUE(f.AddParsed("isbn, chapterNum -> chapterName").ok());
  return f;
}

bool HasFragment(const std::vector<SubRelation>& frags, const AttrSet& set) {
  for (const SubRelation& f : frags) {
    if (f.attrs == set) return true;
  }
  return false;
}

TEST(BcnfTest, PaperExample12Decomposition) {
  FdSet cover = PaperExample12();
  std::vector<SubRelation> frags = DecomposeBcnf(cover);

  // Book(isbn, bookTitle) and Chapter(isbn, chapterNum, chapterName) must
  // appear; every fragment must be in BCNF and the join lossless.
  EXPECT_TRUE(HasFragment(frags, AttrSet(5, {0, 1})));
  EXPECT_TRUE(HasFragment(frags, AttrSet(5, {0, 3, 4})));
  for (const SubRelation& f : frags) {
    EXPECT_TRUE(IsBcnf(f.attrs, cover)) << f.ToString(cover.schema());
  }
  EXPECT_TRUE(IsLosslessJoin(frags, cover));
}

TEST(BcnfTest, AlreadyNormalizedStaysWhole) {
  Result<RelationSchema> s = RelationSchema::Parse("R(a, b)");
  ASSERT_TRUE(s.ok());
  FdSet f(*s);
  ASSERT_TRUE(f.AddParsed("a -> b").ok());  // a is a key: BCNF already
  std::vector<SubRelation> frags = DecomposeBcnf(f);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0].attrs.Count(), 2u);
}

TEST(BcnfTest, TransitiveChainSplits) {
  Result<RelationSchema> s = RelationSchema::Parse("R(a, b, c)");
  ASSERT_TRUE(s.ok());
  FdSet f(*s);
  ASSERT_TRUE(f.AddParsed("a -> b").ok());
  ASSERT_TRUE(f.AddParsed("b -> c").ok());
  std::vector<SubRelation> frags = DecomposeBcnf(f);
  EXPECT_EQ(frags.size(), 2u);
  for (const SubRelation& fr : frags) EXPECT_TRUE(IsBcnf(fr.attrs, f));
  EXPECT_TRUE(IsLosslessJoin(frags, f));
}

TEST(BcnfTest, NoFdsNoSplit) {
  Result<RelationSchema> s = RelationSchema::Parse("R(a, b, c)");
  ASSERT_TRUE(s.ok());
  FdSet f(*s);
  std::vector<SubRelation> frags = DecomposeBcnf(f);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_TRUE(IsLosslessJoin(frags, f));
}

TEST(ThirdNfTest, SynthesisGroupsByLhs) {
  Result<RelationSchema> s = RelationSchema::Parse("R(a, b, c, d)");
  ASSERT_TRUE(s.ok());
  FdSet f(*s);
  ASSERT_TRUE(f.AddParsed("a -> b").ok());
  ASSERT_TRUE(f.AddParsed("a -> c").ok());
  ASSERT_TRUE(f.AddParsed("c -> d").ok());
  std::vector<SubRelation> frags = Synthesize3nf(f);
  // Groups: {a,b,c} and {c,d}; {a,b,c} contains the key a.
  EXPECT_EQ(frags.size(), 2u);
  EXPECT_TRUE(HasFragment(frags, AttrSet(4, {0, 1, 2})));
  EXPECT_TRUE(HasFragment(frags, AttrSet(4, {2, 3})));
  for (const SubRelation& fr : frags) EXPECT_TRUE(Is3nf(fr.attrs, f));
  EXPECT_TRUE(IsLosslessJoin(frags, f));
  EXPECT_TRUE(PreservesDependencies(frags, f));
}

TEST(ThirdNfTest, AddsKeyFragmentWhenMissing) {
  Result<RelationSchema> s = RelationSchema::Parse("R(a, b, c)");
  ASSERT_TRUE(s.ok());
  FdSet f(*s);
  ASSERT_TRUE(f.AddParsed("a -> b").ok());
  // No group contains a key of R ({a,c}); synthesis must add one.
  std::vector<SubRelation> frags = Synthesize3nf(f);
  bool some_key = false;
  for (const SubRelation& fr : frags) some_key |= f.IsSuperkey(fr.attrs);
  EXPECT_TRUE(some_key);
  EXPECT_TRUE(IsLosslessJoin(frags, f));
}

TEST(ThirdNfTest, DependencyPreservationWhereBcnfFails) {
  // Classic SJT example: R(s, j, t), sj -> t, t -> j.
  // BCNF cannot preserve sj -> t; 3NF synthesis can.
  Result<RelationSchema> s = RelationSchema::Parse("R(s, j, t)");
  ASSERT_TRUE(s.ok());
  FdSet f(*s);
  ASSERT_TRUE(f.AddParsed("s, j -> t").ok());
  ASSERT_TRUE(f.AddParsed("t -> j").ok());
  std::vector<SubRelation> frags3 = Synthesize3nf(f);
  EXPECT_TRUE(PreservesDependencies(frags3, f));
  EXPECT_TRUE(IsLosslessJoin(frags3, f));
  std::vector<SubRelation> fragsB = DecomposeBcnf(f);
  EXPECT_TRUE(IsLosslessJoin(fragsB, f));
  EXPECT_FALSE(PreservesDependencies(fragsB, f));
}

TEST(NormalFormCheckersTest, ViolationsDetected) {
  Result<RelationSchema> s = RelationSchema::Parse("R(a, b, c)");
  ASSERT_TRUE(s.ok());
  FdSet f(*s);
  ASSERT_TRUE(f.AddParsed("a -> b").ok());
  ASSERT_TRUE(f.AddParsed("b -> c").ok());
  AttrSet whole = s->FullSet();
  EXPECT_FALSE(IsBcnf(whole, f));  // b -> c with b not a key
  EXPECT_FALSE(Is3nf(whole, f));   // c is not prime
  EXPECT_TRUE(IsBcnf(AttrSet(3, {0, 1}), f));
}

TEST(LosslessJoinTest, LossyDecompositionDetected) {
  // R(a, b, c) with only a->b: splitting {a,b} | {b,c} is lossy.
  Result<RelationSchema> s = RelationSchema::Parse("R(a, b, c)");
  ASSERT_TRUE(s.ok());
  FdSet f(*s);
  ASSERT_TRUE(f.AddParsed("a -> b").ok());
  std::vector<SubRelation> lossy = {SubRelation{"R1", AttrSet(3, {0, 1})},
                                    SubRelation{"R2", AttrSet(3, {1, 2})}};
  EXPECT_FALSE(IsLosslessJoin(lossy, f));
  std::vector<SubRelation> lossless = {SubRelation{"R1", AttrSet(3, {0, 1})},
                                       SubRelation{"R2", AttrSet(3, {0, 2})}};
  EXPECT_TRUE(IsLosslessJoin(lossless, f));
}

TEST(SubRelationTest, ToStringUsesUniversalNames) {
  Result<RelationSchema> s = RelationSchema::Parse("R(a, b, c)");
  ASSERT_TRUE(s.ok());
  SubRelation r{"Book", AttrSet(3, {0, 2})};
  EXPECT_EQ(r.ToString(*s), "Book(a, c)");
}

}  // namespace
}  // namespace xmlprop
