#include "transform/eval.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "xml/parser.h"

namespace xmlprop {
namespace {

using testing_fixtures::Fig1Tree;
using testing_fixtures::PaperTransformation;

Tree T(std::string_view xml) {
  Result<Tree> t = ParseXml(xml);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(t).value();
}

bool HasTuple(const Instance& i, const std::vector<Field>& t) {
  return std::find(i.tuples().begin(), i.tuples().end(), t) !=
         i.tuples().end();
}

TEST(EvalTest, PaperExample25SectionInstance) {
  // Example 2.5: evaluating Rule(section) over Fig. 1 yields
  //   (1, 1, Fundamentals) and (1, 2, Attributes)
  // for the one chapter that has sections; the section-less chapters
  // contribute "incomplete" rows with nulls (the Section 3 subtlety).
  Tree tree = Fig1Tree();
  Transformation t = PaperTransformation();
  Result<const TableRule*> rule = t.FindRule("section");
  ASSERT_TRUE(rule.ok());
  Result<Instance> instance = EvalRule(tree, **rule);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_TRUE(HasTuple(*instance, {"1", "1", "Fundamentals"}));
  EXPECT_TRUE(HasTuple(*instance, {"1", "2", "Attributes"}));
  // Chapters 1 and 10 of book 123 have no sections.
  EXPECT_TRUE(HasTuple(*instance, {"1", std::nullopt, std::nullopt}));
  EXPECT_TRUE(HasTuple(*instance, {"10", std::nullopt, std::nullopt}));
  EXPECT_EQ(instance->size(), 4u);
}

TEST(EvalTest, ChapterInstanceMatchesFig2b) {
  // Fig. 2(b): (123,1,Introduction), (123,10,Conclusion),
  //            (234,1,Getting Acquainted) — keyed by isbn.
  Tree tree = Fig1Tree();
  Transformation t = PaperTransformation();
  Result<const TableRule*> rule = t.FindRule("chapter");
  ASSERT_TRUE(rule.ok());
  Result<Instance> instance = EvalRule(tree, **rule);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->size(), 3u);
  EXPECT_TRUE(HasTuple(*instance, {"123", "1", "Introduction"}));
  EXPECT_TRUE(HasTuple(*instance, {"123", "10", "Conclusion"}));
  EXPECT_TRUE(HasTuple(*instance, {"234", "1", "Getting Acquainted"}));
}

TEST(EvalTest, BookInstanceWithNulls) {
  // Book 234 has no author: author and contact become NULL.
  Tree tree = Fig1Tree();
  Transformation t = PaperTransformation();
  Result<const TableRule*> rule = t.FindRule("book");
  ASSERT_TRUE(rule.ok());
  Result<Instance> instance = EvalRule(tree, **rule);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->size(), 2u);
  EXPECT_TRUE(HasTuple(
      *instance, {"123", "XML", "Tim Bray", "tbray@example.org"}));
  EXPECT_TRUE(HasTuple(*instance, {"234", "XML", std::nullopt, std::nullopt}));
}

TEST(EvalTest, CartesianProductAcrossSiblings) {
  // Two chapters × two authors = 4 tuples in a joint rule.
  Tree tree = T(R"(<r><book isbn="1">
      <author>A</author><author>B</author>
      <chapter number="1"/><chapter number="2"/></book></r>)");
  Result<Transformation> t = ParseTransformation(R"(
    rule U {
      isbn: value(I)
      auth: value(A)
      chap: value(C)
      Xb := Xr//book
      I := Xb/@isbn
      A := Xb/author
      C := Xb/chapter
    })");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  Result<Instance> instance = EvalRule(tree, t->rules()[0]);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->size(), 4u);
}

TEST(EvalTest, MissingSubtreeYieldsNullDescendants) {
  // A book without an author: fields below the author variable are null.
  Tree tree = T(R"(<r><book isbn="1"/></r>)");
  Result<Transformation> t = ParseTransformation(R"(
    rule book {
      isbn: value(X1)
      name: value(X4)
      Xa := Xr//book
      X1 := Xa/@isbn
      Xb := Xa/author
      X4 := Xb/name
    })");
  ASSERT_TRUE(t.ok());
  Result<Instance> instance = EvalRule(tree, t->rules()[0]);
  ASSERT_TRUE(instance.ok());
  ASSERT_EQ(instance->size(), 1u);
  EXPECT_EQ(instance->tuples()[0][0], Field("1"));
  EXPECT_EQ(instance->tuples()[0][1], std::nullopt);
}

TEST(EvalTest, NoMatchesStillEmitsAllNullTuple) {
  // A rule over a document with no books: one tuple, all fields null —
  // the "incomplete tuples" the paper's Section 3 semantics discusses.
  Tree tree = T("<r><other/></r>");
  Transformation t = PaperTransformation();
  Result<const TableRule*> rule = t.FindRule("book");
  ASSERT_TRUE(rule.ok());
  Result<Instance> instance = EvalRule(tree, **rule);
  ASSERT_TRUE(instance.ok());
  ASSERT_EQ(instance->size(), 1u);
  EXPECT_TRUE(Instance::HasNull(instance->tuples()[0]));
  for (const Field& f : instance->tuples()[0]) EXPECT_EQ(f, std::nullopt);
}

TEST(EvalTest, DuplicateTuplesCollapse) {
  // Two chapters with identical contents produce one tuple (set
  // semantics) when the key attribute is not part of the rule.
  Tree tree = T(R"(<r><book isbn="1">
      <chapter number="1"><name>Intro</name></chapter>
      <chapter number="2"><name>Intro</name></chapter></book></r>)");
  Result<Transformation> t = ParseTransformation(R"(
    rule names {
      isbn: value(I)
      name: value(N)
      Xb := Xr//book
      I := Xb/@isbn
      Xc := Xb/chapter
      N := Xc/name
    })");
  ASSERT_TRUE(t.ok());
  Result<Instance> instance = EvalRule(tree, t->rules()[0]);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->size(), 1u);
}

TEST(EvalTest, DescendantMappingCollectsAllMatches) {
  Tree tree = T(R"(<r><a><book isbn="1"/></a><book isbn="2"/></r>)");
  Result<Transformation> t = ParseTransformation(R"(
    rule books {
      isbn: value(I)
      Xb := Xr//book
      I := Xb/@isbn
    })");
  ASSERT_TRUE(t.ok());
  Result<Instance> instance = EvalRule(tree, t->rules()[0]);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->size(), 2u);
}

TEST(EvalTest, EvalTransformationAllRules) {
  Tree tree = Fig1Tree();
  Result<std::vector<Instance>> all =
      EvalTransformation(tree, PaperTransformation());
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 3u);
  EXPECT_EQ((*all)[0].schema().name(), "book");
  EXPECT_EQ((*all)[1].size(), 3u);  // chapter
  EXPECT_EQ((*all)[2].size(), 4u);  // section (incl. null rows)
}

TEST(EvalTest, MultiStepAttributeMapping) {
  // A mapping may reach an attribute through intermediate labels:
  // N := Xb/chapter/@number ranges over all chapter numbers of the book.
  Tree tree = T(R"(<r><book isbn="1">
      <chapter number="1"/><chapter number="2"/></book></r>)");
  Result<Transformation> t = ParseTransformation(R"(
    rule nums {
      isbn: value(I)
      num:  value(N)
      Xb := Xr//book
      I := Xb/@isbn
      N := Xb/chapter/@number
    })");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  Result<Instance> instance = EvalRule(tree, t->rules()[0]);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->size(), 2u);
  EXPECT_TRUE(HasTuple(*instance, {"1", "1"}));
  EXPECT_TRUE(HasTuple(*instance, {"1", "2"}));
}

TEST(EvalTest, ValueOfElementFieldUsesSubtreeSerialization) {
  // A field variable bound to a structured element serializes pre-order.
  Tree tree = T(R"(<r><book isbn="1"><author><name>X</name></author></book></r>)");
  Result<Transformation> t = ParseTransformation(R"(
    rule b {
      a: value(A)
      Xb := Xr//book
      A := Xb/author
    })");
  ASSERT_TRUE(t.ok());
  Result<Instance> instance = EvalRule(tree, t->rules()[0]);
  ASSERT_TRUE(instance.ok());
  ASSERT_EQ(instance->size(), 1u);
  EXPECT_EQ(instance->tuples()[0][0], Field("(name: X)"));
}

}  // namespace
}  // namespace xmlprop
