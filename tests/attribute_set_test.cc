#include "relational/attribute_set.h"

#include <gtest/gtest.h>

namespace xmlprop {
namespace {

TEST(AttrSetTest, EmptyByDefault) {
  AttrSet s(10);
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.universe_size(), 10u);
}

TEST(AttrSetTest, SetTestReset) {
  AttrSet s(130);  // spans three words
  s.Set(0);
  s.Set(64);
  s.Set(129);
  EXPECT_TRUE(s.Test(0));
  EXPECT_TRUE(s.Test(64));
  EXPECT_TRUE(s.Test(129));
  EXPECT_FALSE(s.Test(1));
  EXPECT_EQ(s.Count(), 3u);
  s.Reset(64);
  EXPECT_FALSE(s.Test(64));
  EXPECT_EQ(s.Count(), 2u);
}

TEST(AttrSetTest, InitializerList) {
  AttrSet s(8, {1, 3, 5});
  EXPECT_EQ(s.ToVector(), (std::vector<size_t>{1, 3, 5}));
}

TEST(AttrSetTest, ToVectorSortedAcrossWords) {
  AttrSet s(200, {199, 0, 63, 64, 127, 128});
  EXPECT_EQ(s.ToVector(), (std::vector<size_t>{0, 63, 64, 127, 128, 199}));
}

TEST(AttrSetTest, SubsetAndIntersects) {
  AttrSet a(100, {1, 2}), b(100, {1, 2, 3}), c(100, {4});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(AttrSet(100).IsSubsetOf(c));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(AttrSetTest, Algebra) {
  AttrSet a(70, {1, 65}), b(70, {2, 65});
  EXPECT_EQ(a.Union(b).ToVector(), (std::vector<size_t>{1, 2, 65}));
  EXPECT_EQ(a.Intersect(b).ToVector(), (std::vector<size_t>{65}));
  EXPECT_EQ(a.Minus(b).ToVector(), (std::vector<size_t>{1}));
  AttrSet c = a;
  c.UnionInPlace(b);
  EXPECT_EQ(c, a.Union(b));
}

TEST(AttrSetTest, EqualityAndOrdering) {
  AttrSet a(10, {1}), b(10, {1}), c(10, {2});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a < c || c < a);
  EXPECT_FALSE(a < b);
}

TEST(AttrSetTest, ForEachMemberMatchesToVector) {
  for (size_t universe : {0ul, 1ul, 63ul, 64ul, 65ul, 130ul, 1000ul}) {
    AttrSet s(universe);
    for (size_t i = 0; i < universe; i += 3) s.Set(i);
    if (universe > 0) s.Set(universe - 1);
    std::vector<size_t> seen;
    s.ForEachMember([&](size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, s.ToVector()) << "universe " << universe;
  }
}

TEST(AttrSetTest, LargeUniverse1000) {
  // The Oracle column-limit scale of Section 6.
  AttrSet s(1000);
  for (size_t i = 0; i < 1000; i += 7) s.Set(i);
  EXPECT_EQ(s.Count(), 143u);
  EXPECT_TRUE(s.Test(994));
  EXPECT_FALSE(s.Test(995));
}

}  // namespace
}  // namespace xmlprop
