#include "relational/fd.h"

#include <gtest/gtest.h>

#include "relational/cover.h"
#include "relational/fd_set.h"

namespace xmlprop {
namespace {

RelationSchema S() {
  Result<RelationSchema> s = RelationSchema::Parse("R(a, b, c, d, e)");
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

Fd F(const RelationSchema& schema, std::string_view text) {
  Result<Fd> fd = ParseFd(schema, text);
  EXPECT_TRUE(fd.ok()) << text << ": " << fd.status().ToString();
  return std::move(fd).value();
}

TEST(SchemaTest, ParseAndLookup) {
  RelationSchema s = S();
  EXPECT_EQ(s.name(), "R");
  EXPECT_EQ(s.arity(), 5u);
  EXPECT_EQ(s.IndexOf("c"), 2u);
  EXPECT_FALSE(s.IndexOf("zzz").has_value());
  EXPECT_EQ(s.ToString(), "R(a, b, c, d, e)");
}

TEST(SchemaTest, ParseErrors) {
  EXPECT_FALSE(RelationSchema::Parse("R").ok());
  EXPECT_FALSE(RelationSchema::Parse("R(a, a)").ok());
  EXPECT_FALSE(RelationSchema::Parse("1R(a)").ok());
  EXPECT_FALSE(RelationSchema::Parse("R(a, 1b)").ok());
}

TEST(SchemaTest, MakeAndFormatSet) {
  RelationSchema s = S();
  Result<AttrSet> set = s.MakeSet({"b", "d"});
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(s.FormatSet(*set), "b, d");
  EXPECT_FALSE(s.MakeSet({"nope"}).ok());
  EXPECT_EQ(s.FullSet().Count(), 5u);
}

TEST(FdParseTest, BasicAndUnicodeArrow) {
  RelationSchema s = S();
  Fd fd = F(s, "a, b -> c");
  EXPECT_EQ(fd.ToString(s), "a, b -> c");
  Fd fd2 = F(s, "a → c, d");
  EXPECT_EQ(fd2.ToString(s), "a -> c, d");
}

TEST(FdParseTest, EmptyLhsConstantFd) {
  RelationSchema s = S();
  Fd fd = F(s, "-> c");
  EXPECT_TRUE(fd.lhs.Empty());
  EXPECT_EQ(fd.rhs.ToVector(), (std::vector<size_t>{2}));
}

TEST(FdParseTest, Errors) {
  RelationSchema s = S();
  EXPECT_FALSE(ParseFd(s, "a, b").ok());
  EXPECT_FALSE(ParseFd(s, "a ->").ok());
  EXPECT_FALSE(ParseFd(s, "a -> zz").ok());
}

TEST(FdTest, TrivialityAndSplit) {
  RelationSchema s = S();
  EXPECT_TRUE(F(s, "a, b -> a").IsTrivial());
  EXPECT_FALSE(F(s, "a -> b").IsTrivial());
  std::vector<Fd> parts = SplitRhs(F(s, "a -> a, b, c"));
  ASSERT_EQ(parts.size(), 2u);  // a -> a dropped as trivial
}

TEST(FdSetTest, ClosureTextbook) {
  // Classic example: F = {a->b, b->c, cd->e}.
  FdSet f(S());
  ASSERT_TRUE(f.AddParsed("a -> b").ok());
  ASSERT_TRUE(f.AddParsed("b -> c").ok());
  ASSERT_TRUE(f.AddParsed("c, d -> e").ok());
  AttrSet a(5, {0});
  EXPECT_EQ(f.Closure(a).ToVector(), (std::vector<size_t>{0, 1, 2}));
  AttrSet ad(5, {0, 3});
  EXPECT_EQ(f.Closure(ad).Count(), 5u);
}

TEST(FdSetTest, ConstantFdsFireImmediately) {
  FdSet f(S());
  ASSERT_TRUE(f.AddParsed("-> a").ok());
  ASSERT_TRUE(f.AddParsed("a -> b").ok());
  EXPECT_TRUE(f.Closure(AttrSet(5)).Test(1));
}

TEST(FdSetTest, ImpliesAndEquivalence) {
  FdSet f(S()), g(S());
  ASSERT_TRUE(f.AddParsed("a -> b").ok());
  ASSERT_TRUE(f.AddParsed("b -> c").ok());
  ASSERT_TRUE(g.AddParsed("a -> b, c").ok());
  ASSERT_TRUE(g.AddParsed("b -> c").ok());
  EXPECT_TRUE(f.Implies(F(S(), "a -> c")));
  EXPECT_FALSE(f.Implies(F(S(), "b -> a")));
  EXPECT_TRUE(f.EquivalentTo(g));
}

TEST(FdSetTest, AddIfNewSkipsImplied) {
  FdSet f(S());
  ASSERT_TRUE(f.AddParsed("a -> b").ok());
  EXPECT_FALSE(f.AddIfNew(F(S(), "a -> b")));
  EXPECT_FALSE(f.AddIfNew(F(S(), "a, c -> b")));  // implied by augmentation
  EXPECT_TRUE(f.AddIfNew(F(S(), "b -> c")));
  EXPECT_EQ(f.size(), 2u);
}

TEST(FdSetTest, IsSuperkey) {
  FdSet f(S());
  ASSERT_TRUE(f.AddParsed("a -> b, c").ok());
  ASSERT_TRUE(f.AddParsed("a -> d, e").ok());
  EXPECT_TRUE(f.IsSuperkey(AttrSet(5, {0})));
  EXPECT_FALSE(f.IsSuperkey(AttrSet(5, {1})));
}

TEST(FdSetTest, NormalizedSplitsAndDedupes) {
  FdSet f(S());
  ASSERT_TRUE(f.AddParsed("a -> b, c").ok());
  ASSERT_TRUE(f.AddParsed("a -> b").ok());
  ASSERT_TRUE(f.AddParsed("a -> a, b").ok());  // trivial piece dropped
  FdSet n = f.Normalized();
  EXPECT_EQ(n.size(), 2u);  // a->b, a->c
  EXPECT_TRUE(n.EquivalentTo(f));
}

TEST(MinimizeTest, RemovesExtraneousAttributes) {
  // ab->c with a->b: b is extraneous.
  FdSet f(S());
  ASSERT_TRUE(f.AddParsed("a, b -> c").ok());
  ASSERT_TRUE(f.AddParsed("a -> b").ok());
  FdSet m = Minimize(f);
  EXPECT_TRUE(m.EquivalentTo(f));
  EXPECT_TRUE(IsMinimal(m));
  for (const Fd& fd : m.fds()) {
    EXPECT_LE(fd.lhs.Count(), 1u);
  }
}

TEST(MinimizeTest, RemovesRedundantFds) {
  // a->b, b->c, a->c: the last is redundant.
  FdSet f(S());
  ASSERT_TRUE(f.AddParsed("a -> b").ok());
  ASSERT_TRUE(f.AddParsed("b -> c").ok());
  ASSERT_TRUE(f.AddParsed("a -> c").ok());
  FdSet m = Minimize(f);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.EquivalentTo(f));
  EXPECT_TRUE(IsMinimal(m));
}

TEST(MinimizeTest, KeepsEquivalenceCycles) {
  // a->b, b->a: both needed.
  FdSet f(S());
  ASSERT_TRUE(f.AddParsed("a -> b").ok());
  ASSERT_TRUE(f.AddParsed("b -> a").ok());
  FdSet m = Minimize(f);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(IsMinimal(m));
}

TEST(MinimizeTest, DropsTrivialInput) {
  FdSet f(S());
  ASSERT_TRUE(f.AddParsed("a -> a").ok());
  ASSERT_TRUE(f.AddParsed("a, b -> b").ok());
  FdSet m = Minimize(f);
  EXPECT_TRUE(m.empty());
}

TEST(MinimizeTest, BeeriBernsteinExample) {
  // F = {a->bc, b->c, a->b, ab->c}: minimum cover is {a->b, b->c}.
  FdSet f(S());
  ASSERT_TRUE(f.AddParsed("a -> b, c").ok());
  ASSERT_TRUE(f.AddParsed("b -> c").ok());
  ASSERT_TRUE(f.AddParsed("a -> b").ok());
  ASSERT_TRUE(f.AddParsed("a, b -> c").ok());
  FdSet m = Minimize(f);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.EquivalentTo(f));
  EXPECT_TRUE(IsMinimal(m));
}

TEST(IsMinimalTest, DetectsRedundancyAndExtraneous) {
  FdSet redundant(S());
  ASSERT_TRUE(redundant.AddParsed("a -> b").ok());
  ASSERT_TRUE(redundant.AddParsed("b -> c").ok());
  ASSERT_TRUE(redundant.AddParsed("a -> c").ok());
  EXPECT_FALSE(IsMinimal(redundant));

  FdSet extraneous(S());
  ASSERT_TRUE(extraneous.AddParsed("a -> b").ok());
  ASSERT_TRUE(extraneous.AddParsed("a, b -> c").ok());
  EXPECT_FALSE(IsMinimal(extraneous));

  FdSet minimal(S());
  ASSERT_TRUE(minimal.AddParsed("a -> b").ok());
  ASSERT_TRUE(minimal.AddParsed("b -> c").ok());
  EXPECT_TRUE(IsMinimal(minimal));
}

}  // namespace
}  // namespace xmlprop
