// Differential tests of the streaming parse-to-index plane: for every
// input, ParseXmlIndexed must produce a tree bit-identical to ParseXml
// (rows, intern pools, Euler numbering, arena) and an index that answers
// every query identically to TreeIndex built over that tree — and errors
// must match byte for byte, including positions reported across chunk
// boundaries of the incremental StreamParser front-end.

#include "xml/stream_parser.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "synth/doc_generator.h"
#include "xml/parser.h"
#include "xml/tree_index.h"
#include "xml/writer.h"

namespace xmlprop {
namespace {

// Column-level identity of two trees through the public accessors: same
// rows in the same order, same intern pools, same Euler numbering, same
// arena size.
void ExpectTreesIdentical(const Tree& a, const Tree& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.element_count(), b.element_count());
  EXPECT_EQ(a.attribute_count(), b.attribute_count());
  EXPECT_EQ(a.arena_bytes(), b.arena_bytes());
  ASSERT_EQ(a.label_count(), b.label_count());
  ASSERT_EQ(a.value_count(), b.value_count());
  for (size_t l = 0; l < a.label_count(); ++l) {
    EXPECT_EQ(a.label_text(static_cast<LabelId>(l)),
              b.label_text(static_cast<LabelId>(l)))
        << "label " << l;
  }
  for (size_t v = 0; v < a.value_count(); ++v) {
    EXPECT_EQ(a.value_text(static_cast<ValueId>(v)),
              b.value_text(static_cast<ValueId>(v)))
        << "value " << v;
  }
  for (NodeId id = 0; id < static_cast<NodeId>(a.size()); ++id) {
    const Node na = a.node(id);
    const Node nb = b.node(id);
    ASSERT_EQ(na.kind, nb.kind) << "node " << id;
    EXPECT_EQ(na.label, nb.label) << "node " << id;
    EXPECT_EQ(na.value, nb.value) << "node " << id;
    EXPECT_EQ(na.parent, nb.parent) << "node " << id;
    EXPECT_EQ(a.label_id_of(id), b.label_id_of(id)) << "node " << id;
    EXPECT_EQ(a.value_id_of(id), b.value_id_of(id)) << "node " << id;
    std::vector<NodeId> ca(na.children.begin(), na.children.end());
    std::vector<NodeId> cb(nb.children.begin(), nb.children.end());
    EXPECT_EQ(ca, cb) << "children of " << id;
    std::vector<NodeId> aa(na.attributes.begin(), na.attributes.end());
    std::vector<NodeId> ab(nb.attributes.begin(), nb.attributes.end());
    EXPECT_EQ(aa, ab) << "attributes of " << id;
  }
  ASSERT_TRUE(a.euler_valid());
  ASSERT_TRUE(b.euler_valid());
  a.FinalizeEuler();
  b.FinalizeEuler();
  EXPECT_EQ(a.elements_by_pre(), b.elements_by_pre());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.pre_data()[i], b.pre_data()[i]) << "pre of " << i;
    EXPECT_EQ(a.pre_end_data()[i], b.pre_end_data()[i]) << "pre_end of " << i;
  }
  EXPECT_EQ(WriteXml(a), WriteXml(b));
}

// Query-level identity of two indexes over identical trees.
void ExpectIndexesEquivalent(const TreeIndex& a, const TreeIndex& b) {
  ASSERT_EQ(a.label_count(), b.label_count());
  EXPECT_EQ(a.value_count(), b.value_count());
  ASSERT_EQ(a.element_count(), b.element_count());
  EXPECT_EQ(a.attribute_count(), b.attribute_count());
  const size_t n = a.tree().size();
  const size_t labels = a.label_count();
  for (size_t l = 0; l < labels; ++l) {
    EXPECT_EQ(a.ElementsWithLabel(static_cast<LabelId>(l)),
              b.ElementsWithLabel(static_cast<LabelId>(l)))
        << "label " << l;
  }
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    if (a.tree().node(id).kind != NodeKind::kElement) continue;
    EXPECT_EQ(a.pre(id), b.pre(id)) << "pre of " << id;
    EXPECT_EQ(a.pre_end(id), b.pre_end(id)) << "pre_end of " << id;
    EXPECT_EQ(a.label_of(id), b.label_of(id)) << "label_of " << id;
    for (size_t l = 0; l < labels; ++l) {
      const LabelId label = static_cast<LabelId>(l);
      const TreeIndex::NodeSpan sa = a.ChildrenWithLabel(id, label);
      const TreeIndex::NodeSpan sb = b.ChildrenWithLabel(id, label);
      const std::vector<NodeId> va(sa.begin(), sa.end());
      const std::vector<NodeId> vb(sb.begin(), sb.end());
      EXPECT_EQ(va, vb) << "children of " << id << " label " << l;
      EXPECT_EQ(a.AttributeWithLabel(id, label),
                b.AttributeWithLabel(id, label))
          << "attr of " << id << " label " << l;
    }
  }
}

// The core differential: both parse paths on one input, with agreement on
// success, tree content, index answers, and error bytes.
void ExpectStreamingMatchesFlat(const std::string& input) {
  Result<Tree> flat = ParseXml(input);
  Result<IndexedDoc> stream = ParseXmlIndexed(input);
  ASSERT_EQ(flat.ok(), stream.ok())
      << "flat: " << flat.status().ToString()
      << " stream: " << stream.status().ToString();
  if (!flat.ok()) {
    EXPECT_EQ(flat.status().ToString(), stream.status().ToString());
    return;
  }
  ExpectTreesIdentical(*flat, *stream->tree);
  TreeIndex reference(*stream->tree);
  ExpectIndexesEquivalent(reference, *stream->index);
}

// Chunked front-end: arbitrary chunking must reproduce the single-shot
// result (or the single-shot error, with the same global position).
void ExpectChunkedMatchesSingleShot(const std::string& input, Rng* rng) {
  StreamParser parser;
  Status fed = Status::OK();
  size_t pos = 0;
  while (pos < input.size()) {
    const size_t len =
        1 + rng->UniformIndex(rng->Bernoulli(0.5) ? 7 : 97);
    const size_t take = std::min(len, input.size() - pos);
    fed = parser.Feed(std::string_view(input).substr(pos, take));
    if (!fed.ok()) break;
    pos += take;
  }
  Result<IndexedDoc> chunked = parser.Finish();
  Result<Tree> flat = ParseXml(input);
  ASSERT_EQ(flat.ok(), chunked.ok())
      << "flat: " << flat.status().ToString()
      << " chunked: " << chunked.status().ToString();
  if (!flat.ok()) {
    EXPECT_EQ(flat.status().ToString(), chunked.status().ToString());
    if (!fed.ok()) {
      // A mid-stream error must be the same error, sticky.
      EXPECT_EQ(fed.ToString(), flat.status().ToString());
    }
    return;
  }
  ExpectTreesIdentical(*flat, *chunked->tree);
}

std::vector<std::string> FixedDocuments() {
  std::vector<std::string> inputs;
  inputs.push_back("<r/>");
  inputs.push_back("<r a=\"1\"/>");
  inputs.push_back(
      "<?xml version=\"1.0\"?>\n<!DOCTYPE r>\n<r>\n  <a x=\"1\" y=\"2\">text"
      "</a>\n  <!-- note --><b/><?pi data?>\n  <a x=\"1\">again</a>\n</r>\n");
  inputs.push_back(
      "<bib><conf id=\"c1\"><year y=\"03\"><paper id=\"p1\"><title>T1"
      "</title></paper><paper id=\"p2\"/></year></conf>"
      "<conf id=\"c2\"/></bib>");
  inputs.push_back("<r>&lt;&amp;&gt;&quot;&apos;&#65;&#x42;</r>");
  inputs.push_back("<r><![CDATA[raw <>&\"' bytes]]>tail</r>");

  std::string deep;
  for (int i = 0; i < 300; ++i) deep += "<a x=\"1\">";
  deep += "leaf";
  for (int i = 0; i < 300; ++i) deep += "</a>";
  inputs.push_back(deep);

  std::string huge(16 * 1024, 'v');
  inputs.push_back("<r a=\"" + huge + "\" b=\"&lt;" + huge + "&amp;\"/>");

  std::string entities = "<r>";
  for (int i = 0; i < 500; ++i) entities += "x&amp;&#65;&lt;";
  entities += "</r>";
  inputs.push_back(entities);

  inputs.push_back(
      "<r><a><!-- c --><?pi d?><![CDATA[]]></a><b></b>"
      "<c>  <!-- only whitespace around me -->  </c></r>");
  return inputs;
}

std::vector<std::string> FixedErrors() {
  return {
      "", "   ", "<", "<!", "<!--", "<!DOCTYPE", "<?xml",
      "<r><![CDATA[", "<r>&#xFFFFFFFFF;</r>", "<r>&#;</r>",
      "<r a=>", "<r a", "<r 1a=\"x\"/>", "<r/><r/>", "</r>",
      "<r>\nsome text\n  <a b=\"1\" b=\"2\"/></r>",
      "<r><a></b></r>", "<r>&unknown;</r>", "<r", "<r><a>",
      "\xff\xfe\x00\x01", "<r>\x01\x02</r>",
  };
}

TEST(StreamParserTest, FixedDocumentsMatchFlatParse) {
  for (const std::string& input : FixedDocuments()) {
    SCOPED_TRACE(input.substr(0, 60));
    ExpectStreamingMatchesFlat(input);
  }
}

TEST(StreamParserTest, FixedErrorsMatchFlatParse) {
  for (const std::string& input : FixedErrors()) {
    SCOPED_TRACE(input.substr(0, 60));
    ExpectStreamingMatchesFlat(input);
  }
}

TEST(StreamParserTest, ChunkedFixedInputs) {
  Rng rng(4242);
  for (const std::string& input : FixedDocuments()) {
    SCOPED_TRACE(input.substr(0, 60));
    for (int round = 0; round < 3; ++round) {
      ExpectChunkedMatchesSingleShot(input, &rng);
    }
  }
  for (const std::string& input : FixedErrors()) {
    SCOPED_TRACE(input.substr(0, 60));
    for (int round = 0; round < 3; ++round) {
      ExpectChunkedMatchesSingleShot(input, &rng);
    }
  }
}

class StreamParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(StreamParserFuzz, RandomDocumentsAndMutations) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 92821 + 31);
  RandomTreeSpec spec;
  spec.max_depth = 4;
  spec.max_children = 3;
  for (int doc = 0; doc < 8; ++doc) {
    WriteOptions options;
    options.indent = rng.Bernoulli(0.5) ? 2 : 0;
    std::string xml = WriteXml(RandomTree(spec, &rng), options);
    ExpectStreamingMatchesFlat(xml);
    ExpectChunkedMatchesSingleShot(xml, &rng);
    // Mutations: agreement on accept/reject and on the bytes either way.
    for (int round = 0; round < 6; ++round) {
      std::string mutated = xml;
      const size_t pos = rng.UniformIndex(mutated.size());
      switch (rng.UniformInt(0, 2)) {
        case 0:
          mutated[pos] = "<>&\"'/= abc!["[rng.UniformIndex(12)];
          break;
        case 1:
          mutated.erase(pos, 1 + rng.UniformIndex(3));
          break;
        case 2:
          mutated.insert(pos, rng.Bernoulli(0.5) ? "<![CDATA[" : "&#x41;<x>");
          break;
      }
      ExpectStreamingMatchesFlat(mutated);
      ExpectChunkedMatchesSingleShot(mutated, &rng);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamParserFuzz, ::testing::Range(0, 6));

}  // namespace
}  // namespace xmlprop
