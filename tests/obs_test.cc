#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace xmlprop {
namespace {

// --------------------------------------------------------------------------
// MetricRegistry

TEST(MetricRegistryTest, CountersAccumulate) {
  obs::MetricRegistry registry;
  registry.Add("a");
  registry.Add("a", 4);
  registry.Add("b", 2);
  EXPECT_EQ(registry.Counter("a"), 5u);
  EXPECT_EQ(registry.Counter("b"), 2u);
  EXPECT_EQ(registry.Counter("never"), 0u);
}

TEST(MetricRegistryTest, ConcurrentCountsSumExactly) {
  obs::MetricRegistry registry;
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (size_t i = 0; i < kPerThread; ++i) {
        registry.Add("shared");
        registry.Add("by_two", 2);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.Counter("shared"), kThreads * kPerThread);
  EXPECT_EQ(registry.Counter("by_two"), 2 * kThreads * kPerThread);
}

TEST(MetricRegistryTest, SnapshotIsNameSorted) {
  obs::MetricRegistry registry;
  registry.Add("zebra");
  registry.Add("alpha", 3);
  registry.Add("middle", 2);
  registry.SetGauge("g2", 7);
  registry.SetGauge("g1", -1);
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].first, "alpha");
  EXPECT_EQ(snapshot.counters[1].first, "middle");
  EXPECT_EQ(snapshot.counters[2].first, "zebra");
  ASSERT_EQ(snapshot.gauges.size(), 2u);
  EXPECT_EQ(snapshot.gauges[0].first, "g1");
  EXPECT_EQ(snapshot.gauges[0].second, -1);
  EXPECT_EQ(snapshot.Counter("alpha"), 3u);
  EXPECT_EQ(snapshot.Counter("missing"), 0u);
}

TEST(MetricRegistryTest, HistogramsTrackMoments) {
  obs::MetricRegistry registry;
  registry.Observe("h", 2.0);
  registry.Observe("h", -1.0);
  registry.Observe("h", 5.0);
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const obs::HistogramSnapshot& h = snapshot.histograms[0].second;
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 6.0);
  EXPECT_DOUBLE_EQ(h.min, -1.0);
  EXPECT_DOUBLE_EQ(h.max, 5.0);
}

TEST(MetricRegistryTest, HistogramBucketsAreMonotoneAndClamped) {
  using H = obs::HistogramSnapshot;
  // Non-positive values land in bucket 0; indices grow with the value
  // and saturate at the last bucket.
  EXPECT_EQ(H::BucketIndex(0.0), 0);
  EXPECT_EQ(H::BucketIndex(-5.0), 0);
  int prev = 0;
  for (double v = 1e-9; v < 1e12; v *= 4) {
    const int index = H::BucketIndex(v);
    EXPECT_GE(index, prev);
    EXPECT_LT(index, H::kNumBuckets);
    // Each value is within its bucket's inclusive upper bound, except
    // when it saturated into the last bucket (which is open-ended).
    if (index < H::kNumBuckets - 1) {
      EXPECT_LE(v, H::BucketUpperBound(index));
    }
    prev = index;
  }
  EXPECT_EQ(H::BucketIndex(1e300), H::kNumBuckets - 1);
}

TEST(MetricRegistryTest, PercentilesBracketTheDistribution) {
  obs::MetricRegistry registry;
  // 100 observations of 1ms and one slow 1000ms outlier: p50 must stay
  // near the bulk, p99+ must reach for the tail.
  for (int i = 0; i < 100; ++i) registry.Observe("lat", 1.0);
  registry.Observe("lat", 1000.0);
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const obs::HistogramSnapshot& h = snapshot.histograms[0].second;
  EXPECT_EQ(h.count, 101u);
  EXPECT_LE(h.Percentile(50), 2.0);
  EXPECT_GE(h.Percentile(50), h.min);
  EXPECT_GE(h.Percentile(99.9), 500.0);
  EXPECT_LE(h.Percentile(99.9), h.max);
  // Percentiles are monotone in p and clamped to [min, max].
  EXPECT_LE(h.Percentile(50), h.Percentile(95));
  EXPECT_LE(h.Percentile(95), h.Percentile(99));
  EXPECT_EQ(h.Percentile(0), h.min);
  EXPECT_EQ(h.Percentile(100), h.max);
}

TEST(MetricRegistryTest, PercentileOfEmptyHistogramIsZero) {
  obs::HistogramSnapshot h;
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(0), 0.0);
  EXPECT_EQ(h.Percentile(100), 0.0);
}

TEST(MetricRegistryTest, SingleSamplePercentilesCollapseToTheSample) {
  obs::MetricRegistry registry;
  registry.Observe("one", 7.25);
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const obs::HistogramSnapshot& h = snapshot.histograms[0].second;
  EXPECT_EQ(h.count, 1u);
  EXPECT_EQ(h.min, 7.25);
  EXPECT_EQ(h.max, 7.25);
  // Every percentile of a single observation is that observation —
  // interpolation inside the bucket must clamp to [min, max].
  EXPECT_EQ(h.Percentile(0), 7.25);
  EXPECT_EQ(h.Percentile(50), 7.25);
  EXPECT_EQ(h.Percentile(95), 7.25);
  EXPECT_EQ(h.Percentile(100), 7.25);
}

TEST(MetricRegistryTest, ExtremeObservationsSaturateTheLastBucket) {
  using H = obs::HistogramSnapshot;
  // Values past the bucket range — including +inf, where
  // ceil(log2(value)) overflows any int cast — clamp to the last bucket
  // instead of indexing out of bounds.
  EXPECT_EQ(H::BucketIndex(1e308), H::kNumBuckets - 1);
  EXPECT_EQ(H::BucketIndex(std::numeric_limits<double>::max()),
            H::kNumBuckets - 1);
  EXPECT_EQ(H::BucketIndex(std::numeric_limits<double>::infinity()),
            H::kNumBuckets - 1);

  obs::MetricRegistry registry;
  registry.Observe("extreme", std::numeric_limits<double>::infinity());
  registry.Observe("extreme", 1.0);
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const obs::HistogramSnapshot& h = snapshot.histograms[0].second;
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.buckets[H::kNumBuckets - 1], 1u);
  // Percentiles stay ordered and finite-of-bucket-bounded even with an
  // infinite max recorded.
  EXPECT_LE(h.Percentile(50), h.Percentile(99));
}

TEST(MetricRegistryTest, ConcurrentObserveSnapshotsStayConsistent) {
  obs::MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::atomic<bool> stop{false};
  // A reader snapshots concurrently with the writers; every snapshot it
  // takes must be internally consistent (bucket sum == count).
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::MetricsSnapshot snapshot = registry.Snapshot();
      for (const auto& [name, h] : snapshot.histograms) {
        uint64_t in_buckets = 0;
        for (uint64_t b : h.buckets) in_buckets += b;
        EXPECT_EQ(in_buckets, h.count) << name;
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry] {
      for (int i = 0; i < kIters; ++i) {
        registry.Observe("contended", static_cast<double>(i % 100));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const obs::HistogramSnapshot& h = snapshot.histograms[0].second;
  EXPECT_EQ(h.count, static_cast<uint64_t>(kThreads) * kIters);
  uint64_t in_buckets = 0;
  for (uint64_t b : h.buckets) in_buckets += b;
  EXPECT_EQ(in_buckets, h.count);
}

TEST(MetricRegistryTest, GlobalHelpersNoOpWhenInactive) {
  ASSERT_EQ(obs::ActiveMetrics(), nullptr);
  obs::Count("ignored");       // must not crash, must not observe anywhere
  obs::Gauge("ignored", 1);
  obs::Observe("ignored", 1.0);
  size_t field = 0;
  obs::CountInto(&field, "ignored", 3);
  EXPECT_EQ(field, 3u);  // the legacy struct still sees the movement
}

TEST(MetricRegistryTest, ScopedMetricsInstallsAndRestores) {
  obs::MetricRegistry outer;
  obs::MetricRegistry inner;
  EXPECT_EQ(obs::ActiveMetrics(), nullptr);
  {
    obs::ScopedMetrics outer_scope(&outer);
    EXPECT_EQ(obs::ActiveMetrics(), &outer);
    obs::Count("x");
    {
      obs::ScopedMetrics inner_scope(&inner);
      EXPECT_EQ(obs::ActiveMetrics(), &inner);
      obs::Count("x", 10);
    }
    EXPECT_EQ(obs::ActiveMetrics(), &outer);
    obs::Count("x");
  }
  EXPECT_EQ(obs::ActiveMetrics(), nullptr);
  EXPECT_EQ(outer.Counter("x"), 2u);
  EXPECT_EQ(inner.Counter("x"), 10u);
}

TEST(MetricRegistryTest, CountIntoBumpsBothStructAndRegistry) {
  obs::MetricRegistry registry;
  obs::ScopedMetrics scope(&registry);
  size_t field = 0;
  obs::CountInto(&field, "both", 2);
  obs::CountInto(nullptr, "both", 5);  // nullptr struct: registry only
  EXPECT_EQ(field, 2u);
  EXPECT_EQ(registry.Counter("both"), 7u);
}

// --------------------------------------------------------------------------
// Trace / Span

TEST(TraceTest, SpansAreNoOpsWithoutActiveTrace) {
  obs::Span span("orphan");  // must not crash or record anywhere
  EXPECT_EQ(obs::CurrentSpan().seq, 0u);
}

TEST(TraceTest, NestingProducesParentChildTree) {
  obs::Trace trace;
  {
    obs::ScopedTrace scope(&trace);
    obs::Span root("root");
    {
      obs::Span child("child_a");
      obs::Span grand("grandchild");
    }
    obs::Span child_b("child_b");
  }
  const obs::TraceSummary& summary = trace.Finish();
  ASSERT_EQ(summary.roots.size(), 1u);
  const obs::SpanNode& root = summary.roots[0];
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.count, 1u);
  ASSERT_EQ(root.children.size(), 2u);
  // Sibling order is start order, not completion order.
  EXPECT_EQ(root.children[0].name, "child_a");
  EXPECT_EQ(root.children[1].name, "child_b");
  ASSERT_EQ(root.children[0].children.size(), 1u);
  EXPECT_EQ(root.children[0].children[0].name, "grandchild");
  EXPECT_NE(summary.Find("root/child_a/grandchild"), nullptr);
  EXPECT_EQ(summary.Find("root/nope"), nullptr);
}

TEST(TraceTest, SameNameSiblingsAggregate) {
  obs::Trace trace;
  {
    obs::ScopedTrace scope(&trace);
    obs::Span root("root");
    for (int i = 0; i < 5; ++i) {
      obs::Span repeated("phase");
    }
  }
  const obs::TraceSummary& summary = trace.Finish();
  ASSERT_EQ(summary.roots.size(), 1u);
  ASSERT_EQ(summary.roots[0].children.size(), 1u);
  EXPECT_EQ(summary.roots[0].children[0].name, "phase");
  EXPECT_EQ(summary.roots[0].children[0].count, 5u);
}

TEST(TraceTest, FinishIsIdempotent) {
  obs::Trace trace;
  {
    obs::ScopedTrace scope(&trace);
    obs::Span span("only");
  }
  const obs::TraceSummary& first = trace.Finish();
  const obs::TraceSummary& second = trace.Finish();
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(first.roots.size(), 1u);
}

// The structural signature of a span tree: names, counts and nesting —
// everything except the (nondeterministic) durations.
std::string Shape(const std::vector<obs::SpanNode>& nodes) {
  std::string out;
  for (const obs::SpanNode& node : nodes) {
    out += node.name;
    out += ':';
    out += std::to_string(node.count);
    out += '(';
    out += Shape(node.children);
    out += ')';
  }
  return out;
}

// Mirrors tree_index_test.cc's fan-out determinism test: a forced
// 3-thread pool runs identically-named spans that adopt the fan-out
// caller's span; the aggregated tree's structure must be identical on
// every run regardless of which thread ran which chunk.
TEST(TraceTest, PoolFanOutAggregatesDeterministically) {
  std::string first_shape;
  for (int run = 0; run < 5; ++run) {
    ThreadPool pool(3);
    obs::Trace trace;
    {
      obs::ScopedTrace scope(&trace);
      obs::Span root("fanout");
      const obs::SpanToken parent = obs::CurrentSpan();
      pool.ParallelFor(64, [&](size_t begin, size_t end, size_t /*worker*/) {
        obs::SpanParent adopt(parent);
        obs::Span chunk("chunk");
        for (size_t i = begin; i < end; ++i) {
          obs::Span item("item");
        }
      });
    }
    const obs::TraceSummary& summary = trace.Finish();
    ASSERT_EQ(summary.roots.size(), 1u);
    const obs::SpanNode* chunk = summary.Find("fanout/chunk");
    ASSERT_NE(chunk, nullptr);
    EXPECT_EQ(chunk->count, 3u);  // one chunk span per pool slot
    const obs::SpanNode* item = summary.Find("fanout/chunk/item");
    ASSERT_NE(item, nullptr);
    EXPECT_EQ(item->count, 64u);  // all items nest under the merged chunk
    const std::string shape = Shape(summary.roots);
    if (run == 0) {
      first_shape = shape;
    } else {
      EXPECT_EQ(shape, first_shape) << "run " << run;
    }
  }
}

TEST(TraceTest, WorkerRecordsWithoutAdoptionBecomeRoots) {
  ThreadPool pool(2);
  obs::Trace trace;
  {
    obs::ScopedTrace scope(&trace);
    obs::Span root("main");
    pool.ParallelFor(8, [&](size_t begin, size_t end, size_t /*worker*/) {
      // No SpanParent: worker spans have no parent on their thread.
      obs::Span chunk("detached");
      (void)begin;
      (void)end;
    });
  }
  const obs::TraceSummary& summary = trace.Finish();
  // "main" and the aggregated "detached" both surface as roots.
  EXPECT_NE(summary.Find("main"), nullptr);
  const obs::SpanNode* detached = summary.Find("detached");
  ASSERT_NE(detached, nullptr);
  EXPECT_EQ(detached->count, 2u);
}

// --------------------------------------------------------------------------
// Report

obs::RunReport MakeReport() {
  obs::MetricRegistry registry;
  obs::Trace trace;
  {
    obs::ScopedMetrics metrics_scope(&registry);
    obs::ScopedTrace trace_scope(&trace);
    obs::Span root("cmd");
    obs::Span child("phase");
    obs::Count("some.counter", 42);
    registry.SetGauge("some.gauge", -3);
    registry.Observe("some.histogram", 1.5);
  }
  obs::RunReport report;
  report.command = "cmd";
  report.config = "flag=value";
  report.trace = trace.Finish();
  report.metrics = registry.Snapshot();
  return report;
}

TEST(ReportTest, JsonHasGoldenShape) {
  const std::string json = obs::ReportToJson(MakeReport());
  // Required top-level keys, in the documented order.
  EXPECT_NE(json.find("\"version\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"command\":\"cmd\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"config\":\"flag=value\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"spans\":[{\"name\":\"cmd\""), std::string::npos);
  EXPECT_NE(json.find("\"children\":[{\"name\":\"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{\"counters\":{\"some.counter\":42}"),
            std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"some.gauge\":-3}"), std::string::npos);
  // Histogram rows carry the bucket-estimated percentiles since v2.
  EXPECT_NE(json.find("\"histograms\":{\"some.histogram\":{\"count\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  // The memory object is always present (peak RSS needs no hooks); the
  // profile object only appears when the profiler ran.
  EXPECT_NE(json.find("\"memory\":{\"max_rss_kb\":"), std::string::npos);
  EXPECT_EQ(json.find("\"profile\":"), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity (no nested quotes
  // in this fixture, so counting is exact).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ReportTest, TextTreeListsSpansAndMetrics) {
  const std::string text = obs::ReportToText(MakeReport());
  EXPECT_NE(text.find("trace: cmd [flag=value]"), std::string::npos);
  EXPECT_NE(text.find("  cmd"), std::string::npos);
  EXPECT_NE(text.find("    phase"), std::string::npos);
  EXPECT_NE(text.find("some.counter = 42"), std::string::npos);
  EXPECT_NE(text.find("some.gauge = -3 (gauge)"), std::string::npos);
}

TEST(ReportTest, JsonEscapesControlAndQuoteCharacters) {
  EXPECT_EQ(obs::JsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(obs::JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(ReportTest, TraceCoversWallTime) {
  // The root span is opened immediately after the trace starts, so its
  // total must cover (almost) all of the trace's wall time — the
  // acceptance bar for per-phase reports.
  obs::Trace trace;
  {
    obs::ScopedTrace scope(&trace);
    obs::Span root("root");
    // A little real work so wall_ms is not pure noise.
    volatile uint64_t x = 0;
    for (int i = 0; i < 200000; ++i) x = x + static_cast<uint64_t>(i);
  }
  const obs::TraceSummary& summary = trace.Finish();
  EXPECT_GE(summary.RootTotalMs(), 0.5 * summary.wall_ms);
}

}  // namespace
}  // namespace xmlprop
