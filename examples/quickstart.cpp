// Quickstart: the paper's running example end to end.
//
//  1. Parse the XML document of Fig. 1.
//  2. Declare the XML keys K1-K7 of Example 2.1 and verify the document
//     satisfies them.
//  3. Define the transformation of Example 2.4 (relations book, chapter,
//     section) and shred the document.
//  4. Ask the propagation question of Example 4.2: which relational FDs
//     are *guaranteed* by the XML keys, for every conforming document?
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/propagation.h"
#include "keys/satisfaction.h"
#include "transform/eval.h"
#include "transform/rule_parser.h"
#include "xml/parser.h"

namespace {

constexpr const char* kXml = R"(<?xml version="1.0"?>
<r>
  <book isbn="123">
    <author><name>Tim Bray</name><contact>tbray@example.org</contact></author>
    <title>XML</title>
    <chapter number="1"><name>Introduction</name></chapter>
    <chapter number="10"><name>Conclusion</name></chapter>
  </book>
  <book isbn="234">
    <title>XML</title>
    <chapter number="1">
      <name>Getting Acquainted</name>
      <section number="1"><name>Fundamentals</name></section>
      <section number="2"><name>Attributes</name></section>
    </chapter>
  </book>
</r>)";

constexpr const char* kKeys = R"(
K1: (ε, (//book, {@isbn}))                  # a book is identified by @isbn
K2: (//book, (chapter, {@number}))          # chapter number, per book
K3: (//book, (title, {}))                   # at most one title per book
K4: (//book/chapter, (name, {}))            # at most one name per chapter
K5: (//book/chapter/section, (name, {}))    # at most one name per section
K6: (//book/chapter, (section, {@number}))  # section number, per chapter
K7: (//book, (author/contact, {}))          # at most one contact author
)";

constexpr const char* kTransformation = R"(
rule book {
  isbn:    value(X1)
  title:   value(X2)
  author:  value(X4)
  contact: value(X5)
  Xa := Xr//book
  X1 := Xa/@isbn
  X2 := Xa/title
  Xb := Xa/author
  X4 := Xb/name
  X5 := Xb/contact
}
rule chapter {
  inBook: value(Y1)
  number: value(Y2)
  name:   value(Y3)
  Yb := Xr//book
  Y1 := Yb/@isbn
  Yc := Yb/chapter
  Y2 := Yc/@number
  Y3 := Yc/name
}
rule section {
  inChapt: value(Z1)
  number:  value(Z2)
  name:    value(Z3)
  Zc := Xr//book/chapter
  Z1 := Zc/@number
  Zs := Zc/section
  Z2 := Zs/@number
  Z3 := Zs/name
}
)";

int Fail(const xmlprop::Status& status) {
  std::cerr << "error: " << status.ToString() << std::endl;
  return 1;
}

}  // namespace

int main() {
  using namespace xmlprop;

  // 1. Parse the document.
  Result<Tree> tree = ParseXml(kXml);
  if (!tree.ok()) return Fail(tree.status());
  std::cout << "Parsed Fig. 1 document: " << tree->size() << " nodes\n\n";

  // 2. Keys and satisfaction.
  Result<std::vector<XmlKey>> keys = ParseKeySet(kKeys);
  if (!keys.ok()) return Fail(keys.status());
  std::cout << "XML keys (Example 2.1):\n";
  for (const XmlKey& k : *keys) std::cout << "  " << k.ToString() << "\n";
  std::cout << "Document satisfies all keys: "
            << (SatisfiesAll(*tree, *keys) ? "yes" : "NO") << "\n\n";

  // 3. Shred into relations (Example 2.4 / 2.5).
  Result<Transformation> transformation =
      ParseTransformation(kTransformation);
  if (!transformation.ok()) return Fail(transformation.status());
  Result<std::vector<Instance>> instances =
      EvalTransformation(*tree, *transformation);
  if (!instances.ok()) return Fail(instances.status());
  for (const Instance& instance : *instances) {
    std::cout << instance.ToString() << "\n";
  }

  // 4. Key propagation (Example 4.2).
  struct Question {
    const char* relation;
    const char* fd;
  };
  const Question questions[] = {
      {"book", "isbn -> contact"},
      {"book", "isbn -> title"},
      {"book", "isbn -> author"},
      {"book", "title -> isbn"},
      {"chapter", "inBook, number -> name"},
      {"section", "inChapt, number -> name"},
  };
  std::cout << "Propagation verdicts (guaranteed for EVERY conforming "
               "document):\n";
  for (const Question& q : questions) {
    Result<const TableRule*> rule = transformation->FindRule(q.relation);
    if (!rule.ok()) return Fail(rule.status());
    Result<TableTree> table = TableTree::Build(**rule);
    if (!table.ok()) return Fail(table.status());
    Result<bool> verdict = CheckPropagation(*keys, *table, q.fd);
    if (!verdict.ok()) return Fail(verdict.status());
    std::cout << "  " << q.relation << ": " << q.fd << "  =>  "
              << (*verdict ? "propagated" : "not propagated") << "\n";
  }
  std::cout << "\n'section: inChapt, number -> name' fails because chapter\n"
               "numbers identify chapters only within a book (K2 is a\n"
               "relative key) — exactly Example 4.2's negative case.\n";
  return 0;
}
