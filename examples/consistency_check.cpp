// Consistency checking of a *predefined* consumer schema (Example 1.1):
//
// The consumer first stores chapters as Chapter(bookTitle, chapterNum,
// chapterName) with key (bookTitle, chapterNum). Importing the data of
// Fig. 1 violates that key — two books are both titled "XML". The
// designers switch to Chapter(isbn, chapterNum, chapterName) keyed by
// (isbn, chapterNum) and see no violation; but were they merely lucky
// with this data set? Key propagation answers: the refined key is
// *provably* safe for every document satisfying the XML keys.
//
// Build & run:  ./build/examples/consistency_check

#include <iostream>

#include "core/design_advisor.h"
#include "keys/satisfaction.h"
#include "relational/fd_check.h"
#include "transform/eval.h"
#include "transform/rule_parser.h"
#include "xml/parser.h"

namespace {

constexpr const char* kXml = R"(<r>
  <book isbn="123">
    <title>XML</title>
    <chapter number="1"><name>Introduction</name></chapter>
    <chapter number="10"><name>Conclusion</name></chapter>
  </book>
  <book isbn="234">
    <title>XML</title>
    <chapter number="1"><name>Getting Acquainted</name></chapter>
  </book>
</r>)";

constexpr const char* kKeys = R"(
K1: (ε, (//book, {@isbn}))
K2: (//book, (chapter, {@number}))
K3: (//book, (title, {}))
K4: (//book/chapter, (name, {}))
)";

// Both candidate designs, as one transformation.
constexpr const char* kDesigns = R"(
rule ChapterByTitle {        # the initial design of Example 1.1
  bookTitle:   value(T1)
  chapterNum:  value(T2)
  chapterName: value(T3)
  Xb := Xr//book
  T1 := Xb/title
  Xc := Xb/chapter
  T2 := Xc/@number
  T3 := Xc/name
}
rule ChapterByIsbn {         # the refined design
  isbn:        value(I1)
  chapterNum:  value(I2)
  chapterName: value(I3)
  Yb := Xr//book
  I1 := Yb/@isbn
  Yc := Yb/chapter
  I2 := Yc/@number
  I3 := Yc/name
}
)";

int Fail(const xmlprop::Status& s) {
  std::cerr << "error: " << s.ToString() << std::endl;
  return 1;
}

}  // namespace

int main() {
  using namespace xmlprop;

  Result<Tree> tree = ParseXml(kXml);
  if (!tree.ok()) return Fail(tree.status());
  Result<std::vector<XmlKey>> keys = ParseKeySet(kKeys);
  if (!keys.ok()) return Fail(keys.status());
  Result<Transformation> designs = ParseTransformation(kDesigns);
  if (!designs.ok()) return Fail(designs.status());

  std::cout << "Document satisfies the XML keys: "
            << (SatisfiesAll(*tree, *keys) ? "yes" : "NO") << "\n\n";

  // Step 1: import under both designs and check the declared keys on the
  // actual data (Fig. 2(a) vs Fig. 2(b)).
  Result<std::vector<Instance>> instances =
      EvalTransformation(*tree, *designs);
  if (!instances.ok()) return Fail(instances.status());
  struct Declared {
    size_t instance;
    const char* fd;
  };
  const Declared declared[] = {
      {0, "bookTitle, chapterNum -> chapterName"},
      {1, "isbn, chapterNum -> chapterName"},
  };
  for (const Declared& d : declared) {
    const Instance& instance = (*instances)[d.instance];
    Result<Fd> fd = ParseFd(instance.schema(), d.fd);
    if (!fd.ok()) return Fail(fd.status());
    std::optional<FdViolation> violation = CheckFd(instance, *fd);
    std::cout << instance.ToString();
    std::cout << "declared key FD '" << d.fd << "' on this import: "
              << (violation ? "VIOLATED — " + violation->Describe(instance, *fd)
                            : "holds")
              << "\n\n";
  }

  // Step 2: the propagation question — will the refined key hold for
  // EVERY conforming document, or were we lucky?
  Result<std::vector<KeyCheckOutcome>> outcomes = CheckDeclaredKeys(
      *keys, *designs,
      {DeclaredKey{"ChapterByTitle", {"bookTitle", "chapterNum"}},
       DeclaredKey{"ChapterByIsbn", {"isbn", "chapterNum"}}});
  if (!outcomes.ok()) return Fail(outcomes.status());
  for (const KeyCheckOutcome& o : *outcomes) {
    std::cout << "key (" ;
    for (size_t i = 0; i < o.key.attributes.size(); ++i) {
      std::cout << (i ? ", " : "") << o.key.attributes[i];
    }
    std::cout << ") of " << o.key.relation << ": "
              << (o.guaranteed
                      ? "GUARANTEED by the XML keys (never violated)"
                      : "not guaranteed (may break on other documents)")
              << "\n";
  }
  return 0;
}
