// Schema refinement from scratch (Examples 1.2 and 3.1): start from a
// universal relation over every field of interest, compute a minimum
// cover of all FDs propagated from the XML keys (Algorithm minimumCover),
// and decompose into BCNF / 3NF guided by that cover.
//
// Build & run:  ./build/examples/schema_refinement

#include <iostream>

#include "core/design_advisor.h"
#include "keys/xml_key.h"
#include "transform/rule_parser.h"

namespace {

constexpr const char* kKeys = R"(
K1: (ε, (//book, {@isbn}))
K2: (//book, (chapter, {@number}))
K3: (//book, (title, {}))
K4: (//book/chapter, (name, {}))
K5: (//book/chapter/section, (name, {}))
K6: (//book/chapter, (section, {@number}))
K7: (//book, (author/contact, {}))
)";

// The universal relation of Example 3.1 (Fig. 4's table tree): one rough
// schema holding every field the designers care about.
constexpr const char* kUniversal = R"(
rule U {
  bookIsbn:    value(X1)
  bookTitle:   value(X2)
  bookAuthor:  value(X4)
  authContact: value(X5)
  chapNum:     value(C1)
  chapName:    value(C2)
  secNum:      value(S1)
  secName:     value(S2)
  Xa := Xr//book
  X1 := Xa/@isbn
  X2 := Xa/title
  Xg := Xa/author
  X4 := Xg/name
  X5 := Xg/contact
  Xc := Xa/chapter
  C1 := Xc/@number
  C2 := Xc/name
  Zs := Xc/section
  S1 := Zs/@number
  S2 := Zs/name
}
)";

}  // namespace

int main() {
  using namespace xmlprop;

  Result<std::vector<XmlKey>> keys = ParseKeySet(kKeys);
  if (!keys.ok()) {
    std::cerr << keys.status().ToString() << std::endl;
    return 1;
  }
  Result<TableRule> universal = ParseTableRule(kUniversal);
  if (!universal.ok()) {
    std::cerr << universal.status().ToString() << std::endl;
    return 1;
  }

  Result<DesignReport> report = AdviseDesign(*keys, *universal);
  if (!report.ok()) {
    std::cerr << report.status().ToString() << std::endl;
    return 1;
  }

  std::cout << report->ToString();
  std::cout
      << "\nReading the report:\n"
         "  * The minimum cover is Example 3.1's — four FDs, found in\n"
         "    polynomial time (the naive route enumerates 2^7 x 8\n"
         "    candidate FDs).\n"
         "  * bookAuthor appears in no FD: a book may have several\n"
         "    authors, so no key determines it (the paper's point about\n"
         "    isbn -> author NOT being mapped from the keys).\n"
         "  * The BCNF decomposition materializes book / chapter /\n"
         "    section fragments keyed exactly like the paper's refined\n"
         "    schema R.\n";
  return 0;
}
