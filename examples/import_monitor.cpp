// Streaming import with incremental key validation.
//
// Example 1.1's import story, made operational: fragments of XML arrive
// one at a time (a feed of <book> records); the IncrementalChecker
// maintains per-key value indexes and flags each violation the moment
// the offending fragment lands — without re-scanning the accumulated
// document. At the end, the (possibly dirty) accumulated document and
// the import log agree with a full batch re-check.
//
// Build & run:  ./build/examples/import_monitor

#include <iostream>

#include "keys/incremental.h"
#include "keys/xml_key.h"
#include "xml/parser.h"

namespace {

constexpr const char* kKeys = R"(
K1: (ε, (//book, {@isbn}))
K2: (//book, (chapter, {@number}))
K3: (//book, (title, {}))
)";

// The feed: the third record reuses isbn 123; the fourth has an internal
// duplicate chapter and a missing isbn.
constexpr const char* kFeed[] = {
    R"(<book isbn="123"><title>XML</title>
        <chapter number="1"/><chapter number="10"/></book>)",
    R"(<book isbn="234"><title>XML</title><chapter number="1"/></book>)",
    R"(<book isbn="123"><title>Duplicate ISBN!</title></book>)",
    R"(<book><title>Anonymous</title>
        <chapter number="7"/><chapter number="7"/></book>)",
};

int Fail(const xmlprop::Status& s) {
  std::cerr << "error: " << s.ToString() << std::endl;
  return 1;
}

}  // namespace

int main() {
  using namespace xmlprop;

  Result<std::vector<XmlKey>> keys = ParseKeySet(kKeys);
  if (!keys.ok()) return Fail(keys.status());

  IncrementalChecker checker(*keys);
  int record = 0;
  for (const char* xml : kFeed) {
    ++record;
    Result<Tree> fragment = ParseXml(xml);
    if (!fragment.ok()) return Fail(fragment.status());
    Result<std::vector<TaggedViolation>> violations =
        checker.Append(*fragment);
    if (!violations.ok()) return Fail(violations.status());

    std::cout << "record " << record << ": ";
    if (violations->empty()) {
      std::cout << "ok\n";
    } else {
      std::cout << violations->size() << " violation(s)\n";
      for (const TaggedViolation& tv : *violations) {
        std::cout << "    "
                  << tv.violation.Describe(checker.document(),
                                           (*keys)[tv.key_index])
                  << "\n";
      }
    }
  }

  std::cout << "\nimport finished: " << checker.violation_count()
            << " violation(s) across " << record << " records\n";
  std::cout << "batch re-check agrees: "
            << (CheckAll(checker.document(), *keys).size() ==
                        checker.violation_count()
                    ? "yes"
                    : "NO")
            << "\n";
  return 0;
}
