// A larger scenario: a DBLP-like bibliography exchanged as XML.
//
//   conf  — identified globally by @id          (absolute key)
//   year  — identified by @y, per conference    (relative key)
//   paper — identified by @no, per year         (relative key)
//   at most one title per paper, one location per year
//
// The example (1) generates a random document that provably satisfies
// the keys (RandomSatisfyingTree), (2) shreds it into a universal
// relation, and (3) derives the minimum cover and a BCNF design — the
// full pipeline a consumer warehouse would run before creating tables.
//
// Build & run:  ./build/examples/bibliography

#include <iostream>

#include "common/rng.h"
#include "core/design_advisor.h"
#include "keys/satisfaction.h"
#include "synth/doc_generator.h"
#include "transform/eval.h"
#include "transform/rule_parser.h"
#include "xml/writer.h"

namespace {

constexpr const char* kKeys = R"(
KC: (ε, (//conf, {@id}))
KY: (//conf, (year, {@y}))
KP: (//conf/year, (paper, {@no}))
KT: (//conf/year/paper, (title, {}))
KL: (//conf/year, (location, {}))
)";

constexpr const char* kUniversal = R"(
rule Bib {
  confId:   value(CI)
  year:     value(YY)
  location: value(LV)
  paperNo:  value(PN)
  title:    value(TV)
  C  := Xr//conf
  CI := C/@id
  Y  := C/year
  YY := Y/@y
  L  := Y/location
  LV := L/@city
  P  := Y/paper
  PN := P/@no
  T  := P/title
  TV := T/@text
}
)";

int Fail(const xmlprop::Status& s) {
  std::cerr << "error: " << s.ToString() << std::endl;
  return 1;
}

}  // namespace

int main() {
  using namespace xmlprop;

  Result<std::vector<XmlKey>> keys = ParseKeySet(kKeys);
  if (!keys.ok()) return Fail(keys.status());

  // 1. Generate a structured bibliography with deliberately colliding
  //    key values, then let RepairToSatisfy patch it into a document
  //    that provably satisfies the keys (exactly what a provider-side
  //    cleaning step would do).
  Rng rng(2026);
  Tree raw("r");
  const char* cities[] = {"Bangalore", "Boston", "Tokyo"};
  for (int c = 0; c < 3; ++c) {
    NodeId conf = raw.CreateElement(raw.root(), "conf");
    // Small value range => guaranteed @id collisions to repair.
    raw.CreateAttribute(conf, "id", "icde" + std::to_string(rng.UniformInt(0, 1))).ok();
    for (int y = 0; y < 2; ++y) {
      NodeId year = raw.CreateElement(conf, "year");
      raw.CreateAttribute(year, "y", std::to_string(2002 + rng.UniformInt(0, 1))).ok();
      NodeId location = raw.CreateElement(year, "location");
      raw.CreateAttribute(location, "city", cities[rng.UniformIndex(3)]).ok();
      for (int p = 0; p < rng.UniformInt(1, 3); ++p) {
        NodeId paper = raw.CreateElement(year, "paper");
        raw.CreateAttribute(paper, "no", std::to_string(rng.UniformInt(1, 2))).ok();
        NodeId title = raw.CreateElement(paper, "title");
        raw.CreateAttribute(title, "text", "paper-" + rng.Identifier(4)).ok();
      }
    }
  }
  Result<Tree> doc = RepairToSatisfy(std::move(raw), *keys);
  if (!doc.ok()) return Fail(doc.status());
  std::cout << "Generated bibliography (" << doc->size()
            << " nodes), satisfies keys: "
            << (SatisfiesAll(*doc, *keys) ? "yes" : "NO") << "\n\n";
  std::cout << WriteXml(*doc) << "\n";

  // 2. Shred into the universal relation.
  Result<TableRule> universal = ParseTableRule(kUniversal);
  if (!universal.ok()) return Fail(universal.status());
  Result<Instance> instance = EvalRule(*doc, *universal);
  if (!instance.ok()) return Fail(instance.status());
  std::cout << instance->ToString() << "\n";

  // 3. Minimum cover + normalized design.
  Result<DesignReport> report = AdviseDesign(*keys, *universal);
  if (!report.ok()) return Fail(report.status());
  std::cout << report->ToString();
  std::cout << "\nThe relative keys chain down the hierarchy: papers are\n"
               "keyed by (confId, year, paperNo) — the transitive-key\n"
               "construction of Section 4 — and the BCNF design splits\n"
               "conference / year / paper tables accordingly.\n";
  return 0;
}
