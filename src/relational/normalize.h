#ifndef XMLPROP_RELATIONAL_NORMALIZE_H_
#define XMLPROP_RELATIONAL_NORMALIZE_H_

#include <string>
#include <vector>

#include "relational/cover.h"
#include "relational/fd_set.h"

namespace xmlprop {

/// A fragment of a decomposed universal relation: a name plus the subset
/// of universal attributes it keeps.
struct SubRelation {
  std::string name;
  AttrSet attrs;

  /// "name(attr, attr, ...)" using the universal schema's names.
  std::string ToString(const RelationSchema& universal) const;
};

/// BCNF decomposition of the universal relation guided by a cover of its
/// propagated FDs — the design-refinement step of Examples 1.2 / 3.1.
///
/// Classic split loop: while some X ⊆ S has X⁺ ∩ S ⊋ X and X⁺ ⊉ S,
/// replace S by (X ∪ (X⁺∩S)) and (S − (X⁺∩S − X)). Violations are found
/// by the cover-driven fast path (LHSs of cover FDs), falling back to an
/// exact subset search for fragments of width ≤ 18 — BCNF of a subschema
/// is coNP-hard to decide in general [Beeri & Bernstein], so very wide
/// fragments get the textbook best effort only. For fragments within the
/// exact width the result is guaranteed to pass IsBcnf.
std::vector<SubRelation> DecomposeBcnf(const FdSet& cover);

/// Bernstein's 3NF synthesis from a minimum cover: one relation per
/// LHS-group of the cover, plus a key relation when no fragment contains
/// a key of the universal relation; fragments subsumed by others are
/// dropped. Dependency-preserving and lossless.
std::vector<SubRelation> Synthesize3nf(const FdSet& cover);

/// Exact BCNF test for fragment `attrs` under global FDs `fds`
/// (projection computed by closure over all subsets — exponential; only
/// call on small fragments, e.g. in tests). A fragment is in BCNF iff for
/// every X ⊂ attrs, X⁺ ∩ attrs ∈ {X, attrs...} — precisely: any X whose
/// closure gains an attribute of the fragment must be a key of it.
bool IsBcnf(const AttrSet& attrs, const FdSet& fds);

/// Exact 3NF test for fragment `attrs` under global FDs (exponential,
/// test-sized inputs only): every violating FD's RHS attribute must be
/// prime (contained in some candidate key of the fragment).
bool Is3nf(const AttrSet& attrs, const FdSet& fds);

/// Chase-based lossless-join test: true iff the decomposition joins back
/// to the original universal relation under `fds` (tableau chase of
/// [Aho, Beeri & Ullman]).
bool IsLosslessJoin(const std::vector<SubRelation>& decomposition,
                    const FdSet& fds);

/// True iff every FD of `fds` is implied by the union of the FD
/// projections onto the fragments (dependency preservation; projections
/// computed by the closure-based algorithm, exponential in fragment
/// width — test-sized inputs only).
bool PreservesDependencies(const std::vector<SubRelation>& decomposition,
                           const FdSet& fds);

}  // namespace xmlprop

#endif  // XMLPROP_RELATIONAL_NORMALIZE_H_
