#ifndef XMLPROP_RELATIONAL_CSV_H_
#define XMLPROP_RELATIONAL_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "relational/instance.h"

namespace xmlprop {

/// RFC 4180-style CSV for relation instances, with one extension for SQL
/// semantics: an *unquoted empty* cell is NULL, while a *quoted empty*
/// cell ("") is the empty string. Fields containing commas, quotes, CR
/// or LF are quoted; embedded quotes double ("").
///
/// The first line is the header; on reading it must list exactly the
/// schema's attributes (any order — columns are mapped by name).
std::string WriteCsv(const Instance& instance);

/// Parses CSV text into an instance of `schema`. Rows are deduplicated
/// (set semantics, like Instance::Add). Errors carry 1-based line
/// numbers.
Result<Instance> ReadCsv(const RelationSchema& schema, std::string_view text);

}  // namespace xmlprop

#endif  // XMLPROP_RELATIONAL_CSV_H_
