#include "relational/fd_check.h"

#include <map>
#include <vector>

namespace xmlprop {

namespace {

// Projects tuple `t` on `attrs`; nullopt fields become engaged==false.
std::vector<Field> Project(const Tuple& t, const AttrSet& attrs) {
  std::vector<Field> out;
  for (size_t i : attrs.ToVector()) out.push_back(t[i]);
  return out;
}

bool AnyNull(const std::vector<Field>& fields) {
  for (const Field& f : fields) {
    if (!f.has_value()) return true;
  }
  return false;
}

}  // namespace

std::string FdViolation::Describe(const Instance& instance,
                                  const Fd& fd) const {
  std::string out =
      "FD " + fd.ToString(instance.schema()) + " violated: ";
  if (kind == Kind::kIncompleteLhs) {
    out += "tuple #" + std::to_string(tuple1) +
           " has null in the LHS but a non-null RHS field";
  } else {
    out += "tuples #" + std::to_string(tuple1) + " and #" +
           std::to_string(tuple2) + " agree on the LHS but differ on the RHS";
  }
  return out;
}

std::optional<FdViolation> CheckFd(const Instance& instance, const Fd& fd) {
  const std::vector<Tuple>& tuples = instance.tuples();

  // Condition (1): null in X forces null throughout Y.
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (AnyNull(Project(tuples[i], fd.lhs))) {
      for (size_t a : fd.rhs.ToVector()) {
        if (tuples[i][a].has_value()) {
          return FdViolation{FdViolation::Kind::kIncompleteLhs, i, 0};
        }
      }
    }
  }

  // Condition (2): classic FD semantics restricted to completely
  // null-free tuples.
  std::map<std::vector<Field>, size_t> by_lhs;
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (Instance::HasNull(tuples[i])) continue;
    std::vector<Field> x = Project(tuples[i], fd.lhs);
    auto [it, inserted] = by_lhs.emplace(std::move(x), i);
    if (!inserted) {
      size_t j = it->second;
      if (Project(tuples[i], fd.rhs) != Project(tuples[j], fd.rhs)) {
        return FdViolation{FdViolation::Kind::kDisagreement, j, i};
      }
    }
  }
  return std::nullopt;
}

bool SatisfiesFd(const Instance& instance, const Fd& fd) {
  return !CheckFd(instance, fd).has_value();
}

}  // namespace xmlprop
