#include "relational/schema.h"

#include "common/str_util.h"

namespace xmlprop {

RelationSchema::RelationSchema(std::string name,
                               std::vector<std::string> attributes)
    : name_(std::move(name)), attributes_(std::move(attributes)) {}

Result<RelationSchema> RelationSchema::Parse(std::string_view text) {
  std::string_view s = TrimWhitespace(text);
  size_t open = s.find('(');
  if (open == std::string_view::npos || s.back() != ')') {
    return Status::ParseError("expected name(attr, ...): " + std::string(text));
  }
  std::string name(TrimWhitespace(s.substr(0, open)));
  if (!IsValidName(name)) {
    return Status::ParseError("bad relation name: " + std::string(text));
  }
  std::string_view attrs = s.substr(open + 1, s.size() - open - 2);
  std::vector<std::string> attributes;
  if (!TrimWhitespace(attrs).empty()) {
    attributes = SplitAndTrim(attrs, ',');
  }
  RelationSchema schema(std::move(name), std::move(attributes));
  for (size_t i = 0; i < schema.attributes_.size(); ++i) {
    if (!IsValidName(schema.attributes_[i])) {
      return Status::ParseError("bad attribute name '" +
                                schema.attributes_[i] + "' in " +
                                std::string(text));
    }
    for (size_t j = i + 1; j < schema.attributes_.size(); ++j) {
      if (schema.attributes_[i] == schema.attributes_[j]) {
        return Status::ParseError("duplicate attribute '" +
                                  schema.attributes_[i] + "' in " +
                                  std::string(text));
      }
    }
  }
  return schema;
}

std::optional<size_t> RelationSchema::IndexOf(
    std::string_view attribute) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] == attribute) return i;
  }
  return std::nullopt;
}

AttrSet RelationSchema::FullSet() const {
  AttrSet set(arity());
  for (size_t i = 0; i < arity(); ++i) set.Set(i);
  return set;
}

Result<AttrSet> RelationSchema::MakeSet(
    const std::vector<std::string>& names) const {
  AttrSet set(arity());
  for (const std::string& n : names) {
    std::optional<size_t> idx = IndexOf(n);
    if (!idx.has_value()) {
      return Status::NotFound("attribute '" + n + "' not in relation " +
                              name_);
    }
    set.Set(*idx);
  }
  return set;
}

std::string RelationSchema::FormatSet(const AttrSet& set) const {
  std::vector<std::string> names;
  for (size_t i : set.ToVector()) names.push_back(attributes_[i]);
  return Join(names, ", ");
}

std::string RelationSchema::ToString() const {
  return name_ + "(" + Join(attributes_, ", ") + ")";
}

}  // namespace xmlprop
