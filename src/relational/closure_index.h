#ifndef XMLPROP_RELATIONAL_CLOSURE_INDEX_H_
#define XMLPROP_RELATIONAL_CLOSURE_INDEX_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "relational/attribute_set.h"
#include "relational/fd.h"

namespace xmlprop {

/// Sentinel for closure queries: skip no FD.
inline constexpr size_t kNoSkip = static_cast<size_t>(-1);

/// Per-caller scratch state of a LinClosure query: the unsatisfied-LHS
/// counters plus the attribute worklist. Counters are epoch-stamped so a
/// new query "resets" them in O(1) — a counter whose stamp is not the
/// current epoch reads as the FD's full LHS size. The scratch is what
/// makes one compiled ClosureIndex shareable across threads: the index
/// is immutable during queries, every mutable word lives here, so each
/// pool worker owns a private scratch and queries race-free.
class ClosureScratch {
 public:
  ClosureScratch() = default;

  /// Test hook: jump the epoch counter (e.g. next to the uint32 wrap
  /// point, to exercise the wraparound path).
  void SetEpochForTesting(uint32_t epoch) { epoch_ = epoch; }
  uint32_t epoch_for_testing() const { return epoch_; }

 private:
  friend class ClosureIndex;

  /// Starts a query over `nodes` FD nodes: sizes the arrays, bumps the
  /// epoch, and — on the (once per 2^32 queries) wrap — falls back to the
  /// O(nodes) full stamp clear that the epoch trick normally avoids.
  void Begin(size_t nodes) {
    if (stamp_.size() < nodes) {
      stamp_.resize(nodes, 0);
      remaining_.resize(nodes, 0);
    }
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
    queue_.clear();
  }

  std::vector<uint32_t> remaining_;  ///< LHS attrs not yet in the closure
  std::vector<uint32_t> stamp_;      ///< epoch at which remaining_ is valid
  std::vector<uint32_t> queue_;      ///< attribute-position worklist
  uint32_t epoch_ = 0;               ///< 0 = "no query ran yet"
  // Dense-plane state: the closure accumulator as raw words plus the
  // surviving-node worklist (fired nodes are swap-compacted away).
  std::vector<uint64_t> closure_words_;
  std::vector<uint64_t> target_words_;
  std::vector<uint32_t> active_;
};

/// Options for compiling a ClosureIndex.
struct ClosureIndexOptions {
  /// Merge FDs with identical LHS into one node (one counter, one merged
  /// RHS bitset). Closures are unchanged — X → Y and X → Z fire exactly
  /// when X → YZ fires — but the counter plane shrinks, which is the form
  /// `FdSet` feeds its whole-set queries through. Incompatible with
  /// `skip_index` queries and with patching, both of which address
  /// individual source FDs.
  bool merge_same_lhs = false;
};

/// A compiled, reusable view of one FD list, replacing the seed's
/// O(|F|²) fired-flag fixpoint with one of two execution plans picked at
/// compile time:
///
///  - **Counter plan** (LinClosure, [Beeri & Bernstein]): compilation
///    lays the attribute → FD adjacency out as a CSR over attribute
///    positions; a query seeds the worklist with the start set,
///    decrements each reachable FD's unsatisfied-LHS counter, and fires
///    the FD the moment its counter hits zero — O(|F| + counter touches)
///    per query. Wins when closures fire a small slice of the FD list
///    (sparse reachability, wide universes).
///
///  - **Dense plan**: compilation packs every LHS/RHS into one flat
///    node-major word plane; a query runs a subset-test fixpoint over it
///    with fired-node compaction. Each round streams contiguous words —
///    no per-FD pointer chase (AttrSet stores its words on the heap) and
///    no random counter traffic — which wins when closures saturate a
///    dense FD list, the regime the naive cover algorithm's minimize
///    step lives in.
///
/// The plan only changes the traversal; the computed closure is the same
/// set either way, so callers (and the bit-identity property tests) never
/// observe which plan ran. Selection: dense when the adjacency is heavier
/// than the word plane (Σ|LHS| > nodes × words), counters otherwise.
/// Queries are allocation-free after the first query on a scratch.
///
/// The index stays valid across the two in-place rewrites `minimize`
/// performs: `ShrinkLhs` patches one adjacency entry when left-reduction
/// drops an extraneous attribute, and `Deactivate` retires a redundant FD
/// — both O(degree), no recompilation.
///
/// Thread-safety: queries are const and touch only the caller's scratch,
/// so one index serves many threads concurrently; patching is a mutation
/// and must be externally synchronized (the cover algorithms patch only
/// from their sequential passes).
class ClosureIndex {
 public:
  ClosureIndex() = default;
  /// Compiles `fds` over a universe of `universe_size` attribute
  /// positions. Every member attribute of every FD must lie below
  /// `universe_size`.
  ClosureIndex(const std::vector<Fd>& fds, size_t universe_size,
               const ClosureIndexOptions& options = {});

  size_t universe_size() const { return universe_; }
  /// Source FDs the index was compiled from.
  size_t fd_count() const { return fd_count_; }
  /// Counter nodes after merging (== fd_count() unless merge_same_lhs).
  size_t node_count() const { return lhs_count_.size(); }
  /// Which execution plan the compile selected (observable for tests and
  /// bench labels only — query results are plan-independent).
  bool dense_plan() const { return dense_; }

  /// The attribute closure of `start` under the compiled FDs, optionally
  /// ignoring the source FD at `skip_index` (redundancy elimination's
  /// "(F − φ) ⊨ φ" test; requires an unmerged compile). Identical to
  /// `ClosureOver(fds, start, skip_index)` on the FDs as patched so far.
  AttrSet Closure(const AttrSet& start, ClosureScratch* scratch,
                  size_t skip_index = kNoSkip) const;

  /// Decides `target ⊆ Closure(start)` — the membership form every
  /// minimize/implication check actually needs — terminating as soon as
  /// the target is covered instead of saturating the closure. Identical
  /// verdict to computing the full closure; on positive queries (an
  /// extraneous-attribute hit, an implied FD) it typically fires a small
  /// fraction of the counter plane.
  bool Reaches(const AttrSet& start, const AttrSet& target,
               ClosureScratch* scratch, size_t skip_index = kNoSkip) const;

  /// Patches the index for "source FD `fd_index` lost LHS attribute
  /// `attr`" (left-reduction accepted the shrink). Unmerged compiles
  /// only.
  void ShrinkLhs(size_t fd_index, size_t attr);

  /// Permanently removes source FD `fd_index` from closure computation
  /// (redundancy elimination accepted the drop). Unmerged compiles only.
  void Deactivate(size_t fd_index);

 private:
  static constexpr uint32_t kTombstone = static_cast<uint32_t>(-1);

  void Fire(uint32_t node, AttrSet* closure, ClosureScratch* scratch) const;
  uint32_t ResolveSkipNode(size_t skip_index) const;
  AttrSet CounterClosure(const AttrSet& start, ClosureScratch* scratch,
                         uint32_t skip_node) const;
  bool CounterReaches(const AttrSet& start, const AttrSet& target,
                      ClosureScratch* scratch, uint32_t skip_node) const;
  /// Runs the dense fixpoint over scratch->closure_words_ (already seeded
  /// with the start set). With a target, returns as soon as it is
  /// covered; otherwise saturates. Returns whether the target was hit.
  bool DenseRun(ClosureScratch* scratch, uint32_t skip_node,
                bool has_target) const;

  size_t universe_ = 0;
  size_t fd_count_ = 0;
  size_t words_per_set_ = 0;
  bool merged_ = false;
  bool dense_ = false;
  // CSR: node ids of the FDs whose LHS contains attribute a live in
  // entries_[offsets_[a] .. offsets_[a + 1]). ShrinkLhs tombstones
  // entries in place.
  std::vector<uint32_t> offsets_;
  std::vector<uint32_t> entries_;
  std::vector<uint32_t> lhs_count_;       ///< per node: |LHS| after patches
  std::vector<AttrSet> rhs_;              ///< per node: (merged) RHS
  std::vector<char> dead_;                ///< per node: deactivated
  std::vector<uint32_t> node_of_fd_;      ///< source FD index → node id
  std::vector<uint32_t> empty_lhs_nodes_; ///< fire unconditionally
  // Dense plan: node-major flat word plane (words_per_set_ words per
  // node) plus the live-node list Deactivate compacts.
  std::vector<uint64_t> lhs_words_;
  std::vector<uint64_t> rhs_words_;
  std::vector<uint32_t> live_nodes_;
};

/// Ablation switch for the compiled closure kernel — the
/// `--no-closure-index` escape hatch (mirroring the data plane's
/// `--index`). When off, `FdSet::Closure` and `Minimize` run the seed's
/// fired-flag fixpoint byte-for-byte.
///
/// Two layers: a process-wide default plus a per-thread override. The
/// override is what `xmlprop serve` needs — two concurrent requests on
/// different handler threads can run one kernel-on and one kernel-off
/// without bleeding into each other (a process atomic would make one
/// request's `--no-closure-index` ablate a stranger's closure calls).
/// Every kernel-vs-seed decision point (FdSet::Closure/Implies/
/// IsSuperkey, cover.cc Minimize) reads the switch on the thread that
/// owns the request, before any pool fan-out, so the thread-scoped guard
/// covers the whole command.
namespace internal {
extern std::atomic<bool> g_closure_index_enabled;
/// 0 = no override (use the process default); +1 force on; -1 force off.
extern thread_local int t_closure_index_override;
}  // namespace internal

inline bool ClosureIndexEnabled() {
  const int override_state = internal::t_closure_index_override;
  if (override_state != 0) return override_state > 0;
  return internal::g_closure_index_enabled.load(std::memory_order_relaxed);
}
/// Sets the process-wide default (tests / single-command tools only;
/// serve-mode requests use the scoped per-thread guards below).
inline void SetClosureIndexEnabled(bool enabled) {
  internal::g_closure_index_enabled.store(enabled, std::memory_order_relaxed);
}

/// RAII guard: forces the kernel on or off for the current thread for
/// the guard's lifetime (nests; restores the previous override). The
/// serve request loop wraps each command in one of these, keyed by the
/// request's own flags.
class ScopedClosureIndexOverride {
 public:
  explicit ScopedClosureIndexOverride(bool enabled)
      : previous_(internal::t_closure_index_override) {
    internal::t_closure_index_override = enabled ? 1 : -1;
  }
  ~ScopedClosureIndexOverride() {
    internal::t_closure_index_override = previous_;
  }
  ScopedClosureIndexOverride(const ScopedClosureIndexOverride&) = delete;
  ScopedClosureIndexOverride& operator=(const ScopedClosureIndexOverride&) =
      delete;

 private:
  int previous_;
};

/// RAII guard: disables the closure kernel for a scope (CLI flag, the
/// bench ablations' "off" arm, property tests' reference arm).
/// Thread-scoped, so a concurrent serve request on another thread keeps
/// its own setting.
class ScopedClosureIndexDisable : public ScopedClosureIndexOverride {
 public:
  ScopedClosureIndexDisable() : ScopedClosureIndexOverride(false) {}
};

}  // namespace xmlprop

#endif  // XMLPROP_RELATIONAL_CLOSURE_INDEX_H_
