#include "relational/instance.h"

#include <algorithm>

#include "obs/metrics.h"

namespace xmlprop {

Status Instance::Add(Tuple tuple) {
  if (tuple.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " != schema arity " +
        std::to_string(schema_.arity()) + " for relation " + schema_.name());
  }
  if (std::find(tuples_.begin(), tuples_.end(), tuple) == tuples_.end()) {
    tuples_.push_back(std::move(tuple));
  } else {
    obs::Count("shred.rows_deduped");
  }
  return Status::OK();
}

Status Instance::AddUnique(Tuple tuple) {
  if (tuple.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " != schema arity " +
        std::to_string(schema_.arity()) + " for relation " + schema_.name());
  }
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

bool Instance::HasNull(const Tuple& tuple) {
  return std::any_of(tuple.begin(), tuple.end(),
                     [](const Field& f) { return !f.has_value(); });
}

std::string Instance::ToString() const {
  std::string out = schema_.ToString();
  out += '\n';
  for (const Tuple& t : tuples_) {
    out += "  (";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += ", ";
      out += t[i].has_value() ? *t[i] : std::string("NULL");
    }
    out += ")\n";
  }
  return out;
}

ColumnarInstance::ColumnarInstance(RelationSchema schema)
    : schema_(std::move(schema)), columns_(schema_.arity()) {}

ColumnarInstance::ValueRef ColumnarInstance::Intern(const std::string& value) {
  auto [it, inserted] =
      value_ids_.emplace(value, static_cast<ValueRef>(pool_.size()));
  if (inserted) pool_.push_back(value);
  return it->second;
}

uint64_t ColumnarInstance::HashRow(const std::vector<ValueRef>& row) const {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a over the id tuple
  for (ValueRef id : row) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(id));
    h *= 1099511628211ULL;
  }
  return h;
}

bool ColumnarInstance::RowEquals(size_t row,
                                 const std::vector<ValueRef>& candidate) const {
  for (size_t f = 0; f < columns_.size(); ++f) {
    if (columns_[f][row] != candidate[f]) return false;
  }
  return true;
}

Status ColumnarInstance::AddRow(const std::vector<ValueRef>& row) {
  if (row.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.arity()) + " for relation " + schema_.name());
  }
  for (ValueRef id : row) {
    if (id != kNull &&
        (id < 0 || static_cast<size_t>(id) >= pool_.size())) {
      return Status::InvalidArgument("unknown value id in row for relation " +
                                     schema_.name());
    }
  }
  std::vector<uint32_t>& bucket = dedup_[HashRow(row)];
  for (uint32_t existing : bucket) {
    if (RowEquals(existing, row)) {
      obs::Count("shred.rows_deduped");
      return Status::OK();
    }
  }
  bucket.push_back(static_cast<uint32_t>(rows_));
  for (size_t f = 0; f < columns_.size(); ++f) {
    columns_[f].push_back(row[f]);
  }
  ++rows_;
  return Status::OK();
}

Instance ColumnarInstance::ToInstance() const {
  Instance out(schema_);
  out.Reserve(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    Tuple tuple(schema_.arity());
    for (size_t f = 0; f < columns_.size(); ++f) {
      const ValueRef id = columns_[f][r];
      if (id != kNull) tuple[f] = pool_[static_cast<size_t>(id)];
    }
    // Rows are already unique by construction; skip Add's linear scan.
    CheckOk(out.AddUnique(std::move(tuple)), "ColumnarInstance::ToInstance");
  }
  return out;
}

}  // namespace xmlprop
