#include "relational/instance.h"

#include <algorithm>

namespace xmlprop {

Status Instance::Add(Tuple tuple) {
  if (tuple.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " != schema arity " +
        std::to_string(schema_.arity()) + " for relation " + schema_.name());
  }
  if (std::find(tuples_.begin(), tuples_.end(), tuple) == tuples_.end()) {
    tuples_.push_back(std::move(tuple));
  }
  return Status::OK();
}

bool Instance::HasNull(const Tuple& tuple) {
  return std::any_of(tuple.begin(), tuple.end(),
                     [](const Field& f) { return !f.has_value(); });
}

std::string Instance::ToString() const {
  std::string out = schema_.ToString();
  out += '\n';
  for (const Tuple& t : tuples_) {
    out += "  (";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += ", ";
      out += t[i].has_value() ? *t[i] : std::string("NULL");
    }
    out += ")\n";
  }
  return out;
}

}  // namespace xmlprop
