#ifndef XMLPROP_RELATIONAL_INSTANCE_H_
#define XMLPROP_RELATIONAL_INSTANCE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"

namespace xmlprop {

/// One field value: a string, or null (nullopt). XML shredding produces
/// null when a variable's node set is empty (Section 2, "semistructured"
/// subtlety).
using Field = std::optional<std::string>;

/// One tuple; positions follow the owning instance's schema.
using Tuple = std::vector<Field>;

/// A relation instance: a schema plus a bag of tuples (the transformation
/// semantics can legitimately produce duplicates; they are deduplicated
/// on construction to match set semantics of the generated instance I_i).
class Instance {
 public:
  Instance() = default;
  explicit Instance(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }

  /// Appends `tuple` unless an identical tuple is already present.
  /// Fails if the arity does not match the schema.
  Status Add(Tuple tuple);

  /// Pre-allocates storage for `n` tuples.
  void Reserve(size_t n) { tuples_.reserve(n); }

  /// Appends `tuple` without the duplicate scan (same arity check). Only
  /// for callers that already guarantee uniqueness — e.g. the columnar
  /// materialization, which deduplicates by hashed value ids and would
  /// otherwise pay Add's linear scan once per tuple (quadratic overall).
  Status AddUnique(Tuple tuple);

  /// True iff some field of `tuple` is null.
  static bool HasNull(const Tuple& tuple);

  /// Tuples projected on `attrs`, rendered for display.
  std::string ToString() const;

 private:
  RelationSchema schema_;
  std::vector<Tuple> tuples_;
};

/// A column-oriented relation instance over interned values: every
/// distinct field string is stored once in a value pool and rows are
/// tuples of dense ValueRef ids (kNull = NULL). The indexed shredder
/// emits into this representation — id rows hash and compare in O(arity)
/// integer operations, so duplicate elimination is linear instead of the
/// row-store's scan-per-insert — and ToInstance() materializes the
/// classic row Instance with identical tuples in identical order.
class ColumnarInstance {
 public:
  using ValueRef = int32_t;
  static constexpr ValueRef kNull = -1;

  ColumnarInstance() = default;
  explicit ColumnarInstance(RelationSchema schema);

  const RelationSchema& schema() const { return schema_; }
  size_t size() const { return rows_; }
  size_t pool_size() const { return pool_.size(); }

  /// Interns `value`, returning its dense id (stable for the instance's
  /// lifetime; equal strings always yield equal ids).
  ValueRef Intern(const std::string& value);

  /// The pooled string behind `id`.
  const std::string& ValueString(ValueRef id) const {
    return pool_[static_cast<size_t>(id)];
  }

  /// Appends `row` (one ValueRef per schema field) unless an identical
  /// row is present; fails on arity mismatch or an id that was never
  /// interned here.
  Status AddRow(const std::vector<ValueRef>& row);

  /// The column of schema position `field` (size() entries).
  const std::vector<ValueRef>& Column(size_t field) const {
    return columns_[field];
  }

  /// The row-oriented Instance with the same tuples in insertion order.
  Instance ToInstance() const;

 private:
  uint64_t HashRow(const std::vector<ValueRef>& row) const;
  bool RowEquals(size_t row, const std::vector<ValueRef>& candidate) const;

  RelationSchema schema_;
  std::vector<std::vector<ValueRef>> columns_;
  size_t rows_ = 0;
  std::unordered_map<std::string, ValueRef> value_ids_;
  std::vector<std::string> pool_;
  /// Hash → row indices with that hash (manual chaining keeps the dedup
  /// structure trivially movable, unlike a stateful-hasher set).
  std::unordered_map<uint64_t, std::vector<uint32_t>> dedup_;
};

}  // namespace xmlprop

#endif  // XMLPROP_RELATIONAL_INSTANCE_H_
