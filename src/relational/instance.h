#ifndef XMLPROP_RELATIONAL_INSTANCE_H_
#define XMLPROP_RELATIONAL_INSTANCE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"

namespace xmlprop {

/// One field value: a string, or null (nullopt). XML shredding produces
/// null when a variable's node set is empty (Section 2, "semistructured"
/// subtlety).
using Field = std::optional<std::string>;

/// One tuple; positions follow the owning instance's schema.
using Tuple = std::vector<Field>;

/// A relation instance: a schema plus a bag of tuples (the transformation
/// semantics can legitimately produce duplicates; they are deduplicated
/// on construction to match set semantics of the generated instance I_i).
class Instance {
 public:
  Instance() = default;
  explicit Instance(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }

  /// Appends `tuple` unless an identical tuple is already present.
  /// Fails if the arity does not match the schema.
  Status Add(Tuple tuple);

  /// True iff some field of `tuple` is null.
  static bool HasNull(const Tuple& tuple);

  /// Tuples projected on `attrs`, rendered for display.
  std::string ToString() const;

 private:
  RelationSchema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace xmlprop

#endif  // XMLPROP_RELATIONAL_INSTANCE_H_
