#include "relational/sql_ddl.h"

#include <algorithm>

#include "common/str_util.h"

namespace xmlprop {

namespace {

// A minimal subset of `attrs` whose closure (under the cover) contains
// all of `attrs` — greedy shrink from the full fragment.
AttrSet MinimalFragmentKey(const AttrSet& attrs, const FdSet& cover) {
  AttrSet key = attrs;
  attrs.ForEachMember([&](size_t a) {
    AttrSet reduced = key;
    reduced.Reset(a);
    if (attrs.IsSubsetOf(cover.Closure(reduced))) key = std::move(reduced);
  });
  return key;
}

std::string EscapeSqlString(const std::string& v) {
  std::string out;
  out.reserve(v.size() + 2);
  out += '\'';
  for (char c : v) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += '\'';
  return out;
}

}  // namespace

std::string TableDdl::ToSql(const DdlOptions& options) const {
  std::string out = "CREATE TABLE " + name + " (";
  // An empty key means the FDs force at most one row (every column is a
  // constant); SQL cannot spell PRIMARY KEY (), so the clause is dropped
  // with an explanatory comment.
  if (primary_key.empty()) out += "  -- singleton: at most one row";
  out += "\n";
  for (size_t i = 0; i < columns.size(); ++i) {
    const std::string& col = columns[i];
    bool is_key = std::find(primary_key.begin(), primary_key.end(), col) !=
                  primary_key.end();
    out += "  " + col + " " + options.column_type;
    if (is_key && options.not_null_keys) out += " NOT NULL";
    bool more = (i + 1 < columns.size()) || !primary_key.empty() ||
                (options.foreign_keys && !foreign_keys.empty());
    if (more) out += ",";
    out += "\n";
  }
  if (!primary_key.empty()) {
    out += "  PRIMARY KEY (" + Join(primary_key, ", ") + ")";
    if (options.foreign_keys && !foreign_keys.empty()) out += ",";
    out += "\n";
  }
  if (options.foreign_keys) {
    for (size_t i = 0; i < foreign_keys.size(); ++i) {
      out += "  " + foreign_keys[i];
      if (i + 1 < foreign_keys.size()) out += ",";
      out += "\n";
    }
  }
  out += ");";
  return out;
}

Result<std::vector<TableDdl>> GenerateDdl(
    const std::vector<SubRelation>& decomposition, const FdSet& cover) {
  const RelationSchema& universal = cover.schema();
  std::vector<TableDdl> tables;
  std::vector<AttrSet> keys;

  for (const SubRelation& fragment : decomposition) {
    if (fragment.attrs.universe_size() != universal.arity()) {
      return Status::InvalidArgument(
          "fragment " + fragment.name +
          " is not over the cover's universal schema");
    }
    if (fragment.attrs.Empty()) {
      return Status::InvalidArgument("fragment " + fragment.name +
                                     " has no attributes");
    }
    TableDdl table;
    table.name = fragment.name;
    fragment.attrs.ForEachMember([&](size_t a) {
      table.columns.push_back(universal.attributes()[a]);
    });
    AttrSet key = MinimalFragmentKey(fragment.attrs, cover);
    key.ForEachMember([&](size_t a) {
      table.primary_key.push_back(universal.attributes()[a]);
    });
    keys.push_back(std::move(key));
    tables.push_back(std::move(table));
  }

  // Foreign keys: fragment i references fragment j when i ⊇ key(j)
  // (and i != j, and key(j) is a proper subset of i's attributes so the
  // reference is informative). Transitively implied references are
  // suppressed: no FK to j when some other reachable key strictly
  // extends key(j) — in a hierarchy, section references chapter but not
  // (redundantly) book.
  for (size_t i = 0; i < decomposition.size(); ++i) {
    for (size_t j = 0; j < decomposition.size(); ++j) {
      if (i == j || keys[j].Empty()) continue;
      if (!keys[j].IsSubsetOf(decomposition[i].attrs)) continue;
      if (decomposition[i].attrs == keys[j]) continue;
      bool shadowed = false;
      for (size_t l = 0; l < decomposition.size() && !shadowed; ++l) {
        if (l == i || l == j) continue;
        shadowed = keys[j].IsSubsetOf(keys[l]) && !(keys[j] == keys[l]) &&
                   keys[l].IsSubsetOf(decomposition[i].attrs);
      }
      if (shadowed) continue;
      // Skip self-shadowing: if key(j) equals key(i) the two fragments
      // share a key; emit the reference only from the wider fragment,
      // or from the later one when equal in width (deterministic).
      if (keys[j] == keys[i] &&
          (decomposition[i].attrs.Count() < decomposition[j].attrs.Count() ||
           (decomposition[i].attrs.Count() ==
                decomposition[j].attrs.Count() &&
            i < j))) {
        continue;
      }
      std::vector<std::string> cols;
      keys[j].ForEachMember([&](size_t a) {
        cols.push_back(cover.schema().attributes()[a]);
      });
      tables[i].foreign_keys.push_back(
          "FOREIGN KEY (" + Join(cols, ", ") + ") REFERENCES " +
          decomposition[j].name + "(" + Join(cols, ", ") + ")");
    }
  }
  return tables;
}

Result<std::string> GenerateDdlScript(
    const std::vector<SubRelation>& decomposition, const FdSet& cover,
    const DdlOptions& options) {
  XMLPROP_ASSIGN_OR_RETURN(std::vector<TableDdl> tables,
                           GenerateDdl(decomposition, cover));
  std::string out;
  for (const TableDdl& t : tables) {
    out += t.ToSql(options);
    out += "\n\n";
  }
  return out;
}

std::string GenerateInserts(const Instance& instance) {
  std::string out;
  const RelationSchema& schema = instance.schema();
  std::string prefix = "INSERT INTO " + schema.name() + " (" +
                       Join(schema.attributes(), ", ") + ") VALUES (";
  for (const Tuple& t : instance.tuples()) {
    out += prefix;
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += ", ";
      out += t[i].has_value() ? EscapeSqlString(*t[i]) : std::string("NULL");
    }
    out += ");\n";
  }
  return out;
}

}  // namespace xmlprop
