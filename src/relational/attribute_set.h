#ifndef XMLPROP_RELATIONAL_ATTRIBUTE_SET_H_
#define XMLPROP_RELATIONAL_ATTRIBUTE_SET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace xmlprop {

/// A set of relational attributes, represented as a bitset over a fixed
/// universe of `universe_size` attribute positions (the columns of one
/// relation schema). Supports the set algebra needed by FD reasoning:
/// union, difference, subset, iteration. The benchmarks run universes of
/// up to 1000 attributes (the Oracle column limit quoted in Section 6), so
/// the representation is a packed word vector rather than a single word.
class AttrSet {
 public:
  AttrSet() = default;
  explicit AttrSet(size_t universe_size);
  AttrSet(size_t universe_size, std::initializer_list<size_t> members);

  size_t universe_size() const { return universe_size_; }

  bool Test(size_t i) const;
  void Set(size_t i);
  void Reset(size_t i);

  bool Empty() const;
  size_t Count() const;

  /// Membership list in increasing order.
  std::vector<size_t> ToVector() const;

  /// Invokes fn(position) for every member, in increasing order —
  /// word-wise countr_zero iteration, no vector allocation. The hot-loop
  /// replacement for ToVector(); `fn` must not mutate this set while the
  /// iteration runs (copy first when reducing in place).
  template <typename Fn>
  void ForEachMember(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        fn(wi * 64 + static_cast<size_t>(std::countr_zero(w)));
        w &= w - 1;
      }
    }
  }

  bool IsSubsetOf(const AttrSet& other) const;
  bool Intersects(const AttrSet& other) const;

  AttrSet Union(const AttrSet& other) const;
  AttrSet Intersect(const AttrSet& other) const;
  AttrSet Minus(const AttrSet& other) const;

  void UnionInPlace(const AttrSet& other);

  friend bool operator==(const AttrSet& a, const AttrSet& b) {
    return a.universe_size_ == b.universe_size_ && a.words_ == b.words_;
  }

  /// Strict total order (for use as map keys / canonical sorting).
  friend bool operator<(const AttrSet& a, const AttrSet& b) {
    if (a.universe_size_ != b.universe_size_) {
      return a.universe_size_ < b.universe_size_;
    }
    return a.words_ < b.words_;
  }

 private:
  size_t universe_size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace xmlprop

#endif  // XMLPROP_RELATIONAL_ATTRIBUTE_SET_H_
