#include "relational/normalize.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <optional>
#include <utility>

namespace xmlprop {

namespace {

// Enumerates all subsets of `members` (as AttrSets over `universe`),
// invoking `fn(subset)`; aborts early if fn returns false. Caller must
// keep |members| small (tests only).
template <typename Fn>
void ForEachSubset(const std::vector<size_t>& members, size_t universe,
                   Fn fn) {
  assert(members.size() <= 22 && "subset enumeration is test-sized only");
  const size_t n = members.size();
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    AttrSet subset(universe);
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) subset.Set(members[i]);
    }
    if (!fn(subset)) return;
  }
}

// Minimal candidate keys of the fragment `attrs` under global `fds`
// (closure taken in the full universe, key test restricted to the
// fragment). Exponential; test-sized inputs only.
std::vector<AttrSet> CandidateKeysOfFragment(const AttrSet& attrs,
                                             const FdSet& fds) {
  std::vector<AttrSet> keys;
  std::vector<size_t> members = attrs.ToVector();
  ForEachSubset(members, attrs.universe_size(), [&](const AttrSet& x) {
    if (attrs.IsSubsetOf(fds.Closure(x))) keys.push_back(x);
    return true;
  });
  // Keep only minimal ones.
  std::vector<AttrSet> minimal;
  for (const AttrSet& k : keys) {
    bool is_minimal = std::none_of(
        keys.begin(), keys.end(), [&](const AttrSet& other) {
          return !(other == k) && other.IsSubsetOf(k);
        });
    if (is_minimal) minimal.push_back(k);
  }
  return minimal;
}

void DropSubsumedFragments(std::vector<SubRelation>* fragments) {
  std::vector<SubRelation> kept;
  for (size_t i = 0; i < fragments->size(); ++i) {
    const AttrSet& a = (*fragments)[i].attrs;
    bool subsumed = false;
    for (size_t j = 0; j < fragments->size(); ++j) {
      if (i == j) continue;
      const AttrSet& b = (*fragments)[j].attrs;
      if (a.IsSubsetOf(b) && (!(a == b) || j < i)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back((*fragments)[i]);
  }
  *fragments = std::move(kept);
}

}  // namespace

std::string SubRelation::ToString(const RelationSchema& universal) const {
  return name + "(" + universal.FormatSet(attrs) + ")";
}

std::vector<SubRelation> DecomposeBcnf(const FdSet& cover) {
  const RelationSchema& universal = cover.schema();
  std::deque<AttrSet> pending = {universal.FullSet()};
  std::vector<SubRelation> done;

  // Width up to which the exact (exponential) violation search runs after
  // the cover-driven fast path finds nothing. Deciding BCNF of a
  // subschema under projected FDs is coNP-hard [Beeri & Bernstein], so
  // very wide fragments get the textbook cover-driven best effort only.
  constexpr size_t kExactWidth = 18;

  while (!pending.empty()) {
    AttrSet s = pending.front();
    pending.pop_front();

    // A violation is an X ⊆ s whose closure gains an attribute of s
    // without covering all of s; splitting on it preserves losslessness.
    std::optional<AttrSet> violation;
    for (const Fd& fd : cover.fds()) {
      if (!fd.lhs.IsSubsetOf(s)) continue;
      AttrSet closure = cover.Closure(fd.lhs);
      if (closure.Intersect(s).Minus(fd.lhs).Empty()) continue;  // trivial
      if (s.IsSubsetOf(closure)) continue;  // lhs is a superkey of s
      violation = fd.lhs;
      break;
    }
    if (!violation.has_value() && s.Count() <= kExactWidth) {
      // Exact pass: violations may hide behind LHSs that are not cover
      // LHSs (e.g. {b,c} firing a,c → d after b → a).
      ForEachSubset(s.ToVector(), s.universe_size(), [&](const AttrSet& x) {
        AttrSet closure = cover.Closure(x);
        if (!closure.Intersect(s).Minus(x).Empty() &&
            !s.IsSubsetOf(closure)) {
          violation = x;
          return false;
        }
        return true;
      });
    }

    if (violation.has_value()) {
      AttrSet closure = cover.Closure(*violation);
      AttrSet gain = closure.Intersect(s).Minus(*violation);
      pending.push_back(violation->Union(closure.Intersect(s)));
      pending.push_back(s.Minus(gain));
    } else {
      done.push_back(SubRelation{"", s});
    }
  }

  DropSubsumedFragments(&done);
  for (size_t i = 0; i < done.size(); ++i) {
    done[i].name = "R" + std::to_string(i + 1);
  }
  return done;
}

std::vector<SubRelation> Synthesize3nf(const FdSet& cover) {
  const RelationSchema& universal = cover.schema();
  // Group the (single-RHS, left-reduced) cover by LHS.
  std::map<AttrSet, AttrSet> groups;
  for (const Fd& fd : cover.fds()) {
    auto [it, inserted] = groups.emplace(fd.lhs, fd.lhs.Union(fd.rhs));
    if (!inserted) it->second.UnionInPlace(fd.rhs);
  }

  std::vector<SubRelation> fragments;
  for (const auto& [lhs, attrs] : groups) {
    fragments.push_back(SubRelation{"", attrs});
  }
  if (fragments.empty()) {
    fragments.push_back(SubRelation{"", universal.FullSet()});
  }

  // Ensure some fragment holds a key of the universal relation.
  bool has_key = std::any_of(
      fragments.begin(), fragments.end(),
      [&](const SubRelation& f) { return cover.IsSuperkey(f.attrs); });
  if (!has_key) {
    // Shrink the full attribute set to a minimal key greedily.
    const AttrSet full = universal.FullSet();
    AttrSet key = full;
    full.ForEachMember([&](size_t a) {
      AttrSet reduced = key;
      reduced.Reset(a);
      if (cover.IsSuperkey(reduced)) key = std::move(reduced);
    });
    fragments.push_back(SubRelation{"", key});
  }

  DropSubsumedFragments(&fragments);
  for (size_t i = 0; i < fragments.size(); ++i) {
    fragments[i].name = "R" + std::to_string(i + 1);
  }
  return fragments;
}

bool IsBcnf(const AttrSet& attrs, const FdSet& fds) {
  bool ok = true;
  ForEachSubset(attrs.ToVector(), attrs.universe_size(),
                [&](const AttrSet& x) {
                  AttrSet closure = fds.Closure(x);
                  AttrSet gain = closure.Intersect(attrs).Minus(x);
                  if (!gain.Empty() && !attrs.IsSubsetOf(closure)) {
                    ok = false;
                    return false;
                  }
                  return true;
                });
  return ok;
}

bool Is3nf(const AttrSet& attrs, const FdSet& fds) {
  std::vector<AttrSet> keys = CandidateKeysOfFragment(attrs, fds);
  AttrSet prime(attrs.universe_size());
  for (const AttrSet& k : keys) prime.UnionInPlace(k);

  bool ok = true;
  ForEachSubset(attrs.ToVector(), attrs.universe_size(),
                [&](const AttrSet& x) {
                  AttrSet closure = fds.Closure(x);
                  AttrSet gain = closure.Intersect(attrs).Minus(x);
                  if (gain.Empty()) return true;
                  if (attrs.IsSubsetOf(closure)) return true;  // superkey
                  bool all_prime = true;
                  gain.ForEachMember([&](size_t a) {
                    if (!prime.Test(a)) all_prime = false;
                  });
                  if (!all_prime) {
                    ok = false;
                    return false;
                  }
                  return true;
                });
  return ok;
}

bool IsLosslessJoin(const std::vector<SubRelation>& decomposition,
                    const FdSet& fds) {
  const size_t cols = fds.schema().arity();
  const size_t rows = decomposition.size();
  if (rows == 0) return false;

  // Tableau: symbol 0 is the distinguished variable of a column; each
  // non-distinguished cell starts with a unique positive symbol.
  std::vector<std::vector<int>> t(rows, std::vector<int>(cols, 0));
  int next_symbol = 1;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (!decomposition[r].attrs.Test(c)) t[r][c] = next_symbol++;
    }
  }

  // Merged-LHS form: the chase is confluent, so folding X → Y and X → Z
  // into one X → YZ rule changes neither the fixpoint nor the verdict,
  // and halves the row-pair scans on split-heavy inputs.
  FdSet norm = fds.Normalized(/*merge_same_lhs=*/true);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : norm.fds()) {
      std::vector<size_t> x = fd.lhs.ToVector();
      std::vector<size_t> y = fd.rhs.ToVector();
      for (size_t r1 = 0; r1 < rows; ++r1) {
        for (size_t r2 = r1 + 1; r2 < rows; ++r2) {
          bool agree = std::all_of(x.begin(), x.end(), [&](size_t c) {
            return t[r1][c] == t[r2][c];
          });
          if (!agree) continue;
          for (size_t c : y) {
            if (t[r1][c] == t[r2][c]) continue;
            // Equate the two symbols, preferring the distinguished one.
            int keep = std::min(t[r1][c], t[r2][c]);
            int drop = std::max(t[r1][c], t[r2][c]);
            for (size_t r = 0; r < rows; ++r) {
              if (t[r][c] == drop) t[r][c] = keep;
            }
            changed = true;
          }
        }
      }
    }
  }

  for (size_t r = 0; r < rows; ++r) {
    if (std::all_of(t[r].begin(), t[r].end(),
                    [](int s) { return s == 0; })) {
      return true;
    }
  }
  return false;
}

bool PreservesDependencies(const std::vector<SubRelation>& decomposition,
                           const FdSet& fds) {
  FdSet projected(fds.schema());
  for (const SubRelation& frag : decomposition) {
    ForEachSubset(frag.attrs.ToVector(), frag.attrs.universe_size(),
                  [&](const AttrSet& x) {
                    AttrSet gain =
                        fds.Closure(x).Intersect(frag.attrs).Minus(x);
                    if (!gain.Empty()) projected.Add(Fd(x, gain));
                    return true;
                  });
  }
  return projected.ImpliesAll(fds);
}

}  // namespace xmlprop
