#ifndef XMLPROP_RELATIONAL_FD_SET_H_
#define XMLPROP_RELATIONAL_FD_SET_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/fd.h"
#include "relational/schema.h"

namespace xmlprop {

/// Sentinel for ClosureOver: skip no FD.
inline constexpr size_t kNoSkip = static_cast<size_t>(-1);

/// The attribute closure of `start` under `fds`, optionally ignoring the
/// FD at `skip_index` (used by redundancy elimination to test
/// "(F − φ) ⊨ φ" without copying the set). Allocation-light bitset
/// fixpoint — the hot path of the cover algorithms.
AttrSet ClosureOver(const std::vector<Fd>& fds, const AttrSet& start,
                    size_t skip_index = kNoSkip);

/// A set of FDs over one relation schema, with the closure/implication
/// machinery of Armstrong's axioms — the foundation both of `minimize`
/// (Section 5) and of GminimumCover's relational FD implication step.
class FdSet {
 public:
  FdSet() = default;
  explicit FdSet(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  const std::vector<Fd>& fds() const { return fds_; }
  /// Mutable access for in-place rewriting (cover algorithms).
  std::vector<Fd>& mutable_fds() { return fds_; }
  size_t size() const { return fds_.size(); }
  bool empty() const { return fds_.empty(); }

  /// Appends an FD (no dedup — covers handle redundancy).
  void Add(Fd fd) { fds_.push_back(std::move(fd)); }

  /// Appends an FD only if it is not already implied; returns whether it
  /// was added. Keeps incrementally-built sets lean.
  bool AddIfNew(const Fd& fd);

  /// Parses and appends "a, b -> c".
  Status AddParsed(std::string_view text);

  /// The attribute closure X⁺ under this FD set.
  AttrSet Closure(const AttrSet& start) const;

  /// True iff this set implies `fd` (Y ⊆ X⁺).
  bool Implies(const Fd& fd) const;

  /// True iff this set implies every FD in `other`.
  bool ImpliesAll(const FdSet& other) const;

  /// True iff the two sets are covers of each other.
  bool EquivalentTo(const FdSet& other) const;

  /// True iff `candidate_key` determines every attribute of the schema.
  bool IsSuperkey(const AttrSet& candidate_key) const;

  /// Rewrites to single-attribute RHS form, dropping trivial FDs and
  /// exact duplicates. Preserves equivalence.
  FdSet Normalized() const;

  /// One FD per line.
  std::string ToString() const;

 private:
  RelationSchema schema_;
  std::vector<Fd> fds_;
};

}  // namespace xmlprop

#endif  // XMLPROP_RELATIONAL_FD_SET_H_
