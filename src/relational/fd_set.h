#ifndef XMLPROP_RELATIONAL_FD_SET_H_
#define XMLPROP_RELATIONAL_FD_SET_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/closure_index.h"
#include "relational/fd.h"
#include "relational/schema.h"

namespace xmlprop {

/// The attribute closure of `start` under `fds`, optionally ignoring the
/// FD at `skip_index` (used by redundancy elimination to test
/// "(F − φ) ⊨ φ" without copying the set). Allocation-light bitset
/// fixpoint — the seed reference path; the cover algorithms and FdSet
/// route through the compiled `ClosureIndex` kernel instead unless
/// `--no-closure-index` turns it off.
AttrSet ClosureOver(const std::vector<Fd>& fds, const AttrSet& start,
                    size_t skip_index = kNoSkip);

/// A set of FDs over one relation schema, with the closure/implication
/// machinery of Armstrong's axioms — the foundation both of `minimize`
/// (Section 5) and of GminimumCover's relational FD implication step.
///
/// Closure queries lazily compile a `ClosureIndex` over the current FDs
/// (merged-LHS form) and reuse it until the set is mutated; the cached
/// index and its scratch make the const query methods non-reentrant, so
/// share one FdSet across threads only behind external synchronization.
class FdSet {
 public:
  FdSet() = default;
  explicit FdSet(RelationSchema schema) : schema_(std::move(schema)) {}

  // The cached closure index is per-object state, not value state: copies
  // recompile lazily on first query.
  FdSet(const FdSet& other) : schema_(other.schema_), fds_(other.fds_) {}
  FdSet& operator=(const FdSet& other) {
    if (this != &other) {
      schema_ = other.schema_;
      fds_ = other.fds_;
      InvalidateIndex();
    }
    return *this;
  }
  FdSet(FdSet&&) = default;
  FdSet& operator=(FdSet&&) = default;

  const RelationSchema& schema() const { return schema_; }
  const std::vector<Fd>& fds() const { return fds_; }
  /// Mutable access for in-place rewriting (cover algorithms).
  std::vector<Fd>& mutable_fds() {
    InvalidateIndex();
    return fds_;
  }
  size_t size() const { return fds_.size(); }
  bool empty() const { return fds_.empty(); }

  /// Appends an FD (no dedup — covers handle redundancy).
  void Add(Fd fd) {
    InvalidateIndex();
    fds_.push_back(std::move(fd));
  }

  /// Appends an FD only if it is not already implied; returns whether it
  /// was added. Keeps incrementally-built sets lean.
  bool AddIfNew(const Fd& fd);

  /// Parses and appends "a, b -> c".
  Status AddParsed(std::string_view text);

  /// The attribute closure X⁺ under this FD set.
  AttrSet Closure(const AttrSet& start) const;

  /// True iff this set implies `fd` (Y ⊆ X⁺).
  bool Implies(const Fd& fd) const;

  /// True iff this set implies every FD in `other`.
  bool ImpliesAll(const FdSet& other) const;

  /// True iff the two sets are covers of each other.
  bool EquivalentTo(const FdSet& other) const;

  /// True iff `candidate_key` determines every attribute of the schema.
  bool IsSuperkey(const AttrSet& candidate_key) const;

  /// Rewrites to single-attribute RHS form, dropping trivial FDs and
  /// exact duplicates. Preserves equivalence. With `merge_same_lhs`, FDs
  /// sharing an LHS are merged back into one FD with the union RHS
  /// (still sorted / deterministic) — sound wherever only the implied
  /// closure matters, but NOT inside `Minimize`, whose removal decisions
  /// are sensitive to how RHS attributes are grouped into FDs.
  FdSet Normalized(bool merge_same_lhs = false) const;

  /// One FD per line.
  std::string ToString() const;

 private:
  void InvalidateIndex() { index_.reset(); }
  /// The compiled closure kernel over the current FDs (merged-LHS form),
  /// built on first query after a mutation.
  const ClosureIndex& Index() const;

  RelationSchema schema_;
  std::vector<Fd> fds_;
  mutable std::unique_ptr<ClosureIndex> index_;
  mutable ClosureScratch scratch_;
};

}  // namespace xmlprop

#endif  // XMLPROP_RELATIONAL_FD_SET_H_
