#include "relational/attribute_set.h"

#include <bit>
#include <cassert>

namespace xmlprop {

namespace {
constexpr size_t kBits = 64;
}  // namespace

AttrSet::AttrSet(size_t universe_size)
    : universe_size_(universe_size),
      words_((universe_size + kBits - 1) / kBits, 0) {}

AttrSet::AttrSet(size_t universe_size, std::initializer_list<size_t> members)
    : AttrSet(universe_size) {
  for (size_t m : members) Set(m);
}

bool AttrSet::Test(size_t i) const {
  assert(i < universe_size_);
  return (words_[i / kBits] >> (i % kBits)) & 1u;
}

void AttrSet::Set(size_t i) {
  assert(i < universe_size_);
  words_[i / kBits] |= uint64_t{1} << (i % kBits);
}

void AttrSet::Reset(size_t i) {
  assert(i < universe_size_);
  words_[i / kBits] &= ~(uint64_t{1} << (i % kBits));
}

bool AttrSet::Empty() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

size_t AttrSet::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

std::vector<size_t> AttrSet::ToVector() const {
  std::vector<size_t> out;
  out.reserve(Count());
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      int bit = std::countr_zero(w);
      out.push_back(wi * kBits + static_cast<size_t>(bit));
      w &= w - 1;
    }
  }
  return out;
}

bool AttrSet::IsSubsetOf(const AttrSet& other) const {
  assert(universe_size_ == other.universe_size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

bool AttrSet::Intersects(const AttrSet& other) const {
  assert(universe_size_ == other.universe_size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

AttrSet AttrSet::Union(const AttrSet& other) const {
  AttrSet out = *this;
  out.UnionInPlace(other);
  return out;
}

AttrSet AttrSet::Intersect(const AttrSet& other) const {
  assert(universe_size_ == other.universe_size_);
  AttrSet out = *this;
  for (size_t i = 0; i < words_.size(); ++i) out.words_[i] &= other.words_[i];
  return out;
}

AttrSet AttrSet::Minus(const AttrSet& other) const {
  assert(universe_size_ == other.universe_size_);
  AttrSet out = *this;
  for (size_t i = 0; i < words_.size(); ++i) out.words_[i] &= ~other.words_[i];
  return out;
}

void AttrSet::UnionInPlace(const AttrSet& other) {
  assert(universe_size_ == other.universe_size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

}  // namespace xmlprop
