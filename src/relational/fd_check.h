#ifndef XMLPROP_RELATIONAL_FD_CHECK_H_
#define XMLPROP_RELATIONAL_FD_CHECK_H_

#include <optional>
#include <string>

#include "relational/fd.h"
#include "relational/instance.h"

namespace xmlprop {

/// A witness that an instance violates an FD under the paper's null-aware
/// semantics (Section 3).
struct FdViolation {
  enum class Kind {
    /// Condition (1): a tuple whose X projection contains null has a
    /// non-null attribute in its Y projection ("an incomplete key cannot
    /// determine complete fields").
    kIncompleteLhs,
    /// Condition (2): two null-free tuples agree on X but differ on Y.
    kDisagreement,
  };
  Kind kind = Kind::kIncompleteLhs;
  size_t tuple1 = 0;
  size_t tuple2 = 0;  // set only for kDisagreement

  std::string Describe(const Instance& instance, const Fd& fd) const;
};

/// Checks I ⊨ X → Y per the paper's Section 3 semantics:
///   (1) for any tuple t, if π_X(t) contains null then so does π_Y(t); and
///   (2) for tuples t1 ≠ t2 with no nulls at all, π_X(t1) = π_X(t2)
///       implies π_Y(t1) = π_Y(t2).
/// Returns the first violation found, or nullopt when satisfied.
std::optional<FdViolation> CheckFd(const Instance& instance, const Fd& fd);

/// True iff the instance satisfies `fd`.
bool SatisfiesFd(const Instance& instance, const Fd& fd);

}  // namespace xmlprop

#endif  // XMLPROP_RELATIONAL_FD_CHECK_H_
