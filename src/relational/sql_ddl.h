#ifndef XMLPROP_RELATIONAL_SQL_DDL_H_
#define XMLPROP_RELATIONAL_SQL_DDL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/fd_set.h"
#include "relational/instance.h"
#include "relational/normalize.h"

namespace xmlprop {

/// Options for DDL generation.
struct DdlOptions {
  /// SQL type used for every column (the paper's data model is untyped
  /// text values).
  std::string column_type = "TEXT";
  /// Emit NOT NULL on primary-key columns.
  bool not_null_keys = true;
  /// Emit FOREIGN KEY clauses between fragments (see GenerateDdl).
  bool foreign_keys = true;
};

/// A fragment with its inferred constraints, ready to print.
struct TableDdl {
  std::string name;
  std::vector<std::string> columns;
  /// Column names of the chosen primary key (a minimal key of the
  /// fragment under the cover's FDs).
  std::vector<std::string> primary_key;
  /// "FOREIGN KEY (a, b) REFERENCES t(a, b)" clauses.
  std::vector<std::string> foreign_keys;

  std::string ToSql(const DdlOptions& options) const;
};

/// Turns a normalized decomposition (DecomposeBcnf / Synthesize3nf output)
/// plus the FD cover into CREATE TABLE statements:
///   - each fragment's primary key is a minimal subset of its attributes
///     determining the whole fragment (via the cover's closures);
///   - a foreign key is emitted from fragment A to fragment B when A
///     contains all of B's primary-key columns (the standard
///     shared-key-join wiring of a hierarchical decomposition).
/// Fragments must be over `cover`'s universal schema.
Result<std::vector<TableDdl>> GenerateDdl(
    const std::vector<SubRelation>& decomposition, const FdSet& cover);

/// Renders the full script ("CREATE TABLE ...;\n\n..." in order).
Result<std::string> GenerateDdlScript(
    const std::vector<SubRelation>& decomposition, const FdSet& cover,
    const DdlOptions& options = {});

/// INSERT statements for an instance (nulls become SQL NULL; values are
/// single-quoted with '' escaping). Useful together with the shredding
/// evaluator to bulk-load a consumer database.
std::string GenerateInserts(const Instance& instance);

}  // namespace xmlprop

#endif  // XMLPROP_RELATIONAL_SQL_DDL_H_
