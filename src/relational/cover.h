#ifndef XMLPROP_RELATIONAL_COVER_H_
#define XMLPROP_RELATIONAL_COVER_H_

#include "relational/fd_set.h"

namespace xmlprop {

class ThreadPool;

/// The paper's `minimize` function (Section 5, after [Beeri & Bernstein]):
/// given a set F of FDs, produces a non-redundant cover by
///   1. eliminating extraneous LHS attributes: for each X → Y and B ∈ X,
///      drop B when F ⊨ (X − B) → Y; then
///   2. eliminating redundant FDs: drop φ when (G − φ) ⊨ φ.
/// Input is normalized to single-attribute RHS first, so the result is a
/// *minimum cover* in the sense of [Maier'80]: non-redundant, left-reduced,
/// single-RHS.
///
/// Runs on the compiled LinClosure kernel (`ClosureIndex`) unless
/// `--no-closure-index` disabled it, patching the index in place as FDs
/// shrink or drop. With `pool` (and enough FDs to amortize the fan-out)
/// the independent per-FD checks of both passes run batched across the
/// pool's workers; output is bit-identical to the sequential seed path in
/// every mode — the same FDs in the same order.
FdSet Minimize(const FdSet& input, ThreadPool* pool = nullptr);

/// True iff `cover` is non-redundant (no FD implied by the others) and
/// left-reduced (no extraneous LHS attribute). Used by tests.
bool IsMinimal(const FdSet& cover);

}  // namespace xmlprop

#endif  // XMLPROP_RELATIONAL_COVER_H_
