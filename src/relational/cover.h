#ifndef XMLPROP_RELATIONAL_COVER_H_
#define XMLPROP_RELATIONAL_COVER_H_

#include "relational/fd_set.h"

namespace xmlprop {

/// The paper's `minimize` function (Section 5, after [Beeri & Bernstein]):
/// given a set F of FDs, produces a non-redundant cover by
///   1. eliminating extraneous LHS attributes: for each X → Y and B ∈ X,
///      drop B when F ⊨ (X − B) → Y; then
///   2. eliminating redundant FDs: drop φ when (G − φ) ⊨ φ.
/// Quadratic in |F| (each step is a linear-time closure).
/// Input is normalized to single-attribute RHS first, so the result is a
/// *minimum cover* in the sense of [Maier'80]: non-redundant, left-reduced,
/// single-RHS.
FdSet Minimize(const FdSet& input);

/// True iff `cover` is non-redundant (no FD implied by the others) and
/// left-reduced (no extraneous LHS attribute). Used by tests.
bool IsMinimal(const FdSet& cover);

}  // namespace xmlprop

#endif  // XMLPROP_RELATIONAL_COVER_H_
