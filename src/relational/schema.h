#ifndef XMLPROP_RELATIONAL_SCHEMA_H_
#define XMLPROP_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/attribute_set.h"

namespace xmlprop {

/// A relation schema: a name plus an ordered list of attribute (field)
/// names. Attribute positions index into AttrSets over this schema.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<std::string> attributes);

  /// Parses "name(attr1, attr2, ...)". Attribute names must be valid
  /// identifiers and distinct.
  static Result<RelationSchema> Parse(std::string_view text);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& attributes() const { return attributes_; }
  size_t arity() const { return attributes_.size(); }

  /// Position of `attribute`, or nullopt.
  std::optional<size_t> IndexOf(std::string_view attribute) const;

  /// An empty AttrSet over this schema's attribute universe.
  AttrSet EmptySet() const { return AttrSet(arity()); }
  /// The set of all attributes.
  AttrSet FullSet() const;

  /// Builds an AttrSet from attribute names; fails on unknown names.
  Result<AttrSet> MakeSet(const std::vector<std::string>& names) const;

  /// "attr1, attr2" rendering of a set (sorted by position).
  std::string FormatSet(const AttrSet& set) const;

  /// "name(attr1, attr2, ...)".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<std::string> attributes_;
};

}  // namespace xmlprop

#endif  // XMLPROP_RELATIONAL_SCHEMA_H_
