#include "relational/cover.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace xmlprop {

FdSet Minimize(const FdSet& input) {
  obs::Span span("cover.minimize");
  obs::Count("cover.minimize_input_fds", input.size());
  FdSet working = input.Normalized();

  // Step 1 (Lines 1-4 of the paper's `minimize`): remove extraneous
  // attributes. B ∈ X is extraneous in X → A when F ⊨ (X − B) → A.
  // Checked against the full set F, which preserves equivalence.
  for (Fd& fd : working.mutable_fds()) {
    for (size_t b : fd.lhs.ToVector()) {
      AttrSet reduced = fd.lhs;
      reduced.Reset(b);
      if (fd.rhs.IsSubsetOf(working.Closure(reduced))) {
        fd.lhs = std::move(reduced);
      }
    }
  }

  // Left-reduction typically collapses many FDs onto the same reduced
  // form; dropping exact duplicates here keeps the quadratic redundancy
  // pass tractable for the naive algorithm's exponential inputs.
  working = working.Normalized();

  // Step 2 (Lines 5-8): remove redundant FDs. φ is redundant when the
  // remaining FDs still imply it — tested by a closure that skips φ
  // in place (no per-candidate set copies). Removed FDs are masked by
  // emptying them: an FD with Y ⊆ X never fires nor contributes.
  FdSet result(working.schema());
  std::vector<Fd> remaining = working.fds();
  std::vector<char> removed(remaining.size(), 0);
  for (size_t i = 0; i < remaining.size(); ++i) {
    AttrSet closure = ClosureOver(remaining, remaining[i].lhs, i);
    if (remaining[i].rhs.IsSubsetOf(closure)) {
      removed[i] = 1;
      remaining[i].rhs = remaining[i].lhs;  // neutralize: trivial FD
    }
  }
  for (size_t i = 0; i < remaining.size(); ++i) {
    if (!removed[i]) result.Add(std::move(remaining[i]));
  }
  obs::Count("cover.minimize_output_fds", result.size());
  return result;
}

bool IsMinimal(const FdSet& cover) {
  const std::vector<Fd>& fds = cover.fds();
  for (size_t i = 0; i < fds.size(); ++i) {
    // Non-redundancy.
    FdSet others(cover.schema());
    for (size_t j = 0; j < fds.size(); ++j) {
      if (j != i) others.Add(fds[j]);
    }
    if (others.Implies(fds[i])) return false;
    // Left-reduction.
    for (size_t b : fds[i].lhs.ToVector()) {
      AttrSet reduced = fds[i].lhs;
      reduced.Reset(b);
      if (fds[i].rhs.IsSubsetOf(cover.Closure(reduced))) return false;
    }
  }
  return true;
}

}  // namespace xmlprop
