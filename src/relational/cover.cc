#include "relational/cover.h"

#include <utility>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/closure_index.h"

namespace xmlprop {

namespace {

/// Below this many FDs the pool fan-out costs more than the checks.
constexpr size_t kParallelMinimizeThreshold = 32;

/// Step 1 (Lines 1-4 of the paper's `minimize`): remove extraneous LHS
/// attributes. B ∈ X is extraneous in X → A when F ⊨ (X − B) → A.
///
/// Bit-identity with the seed loop: every accepted drop preserves
/// equivalence of F as a theory, so the closure *function* is the same
/// whether queried against the patched set (sequential arm) or the
/// original compile (parallel arm) — and each FD's chain of drop
/// decisions depends only on that function and its own LHS, never on
/// other FDs' mutations. Hence both arms reproduce the seed's decisions
/// exactly, in the seed's attribute order.
void LeftReduce(std::vector<Fd>* fds, size_t arity, ThreadPool* pool) {
  obs::Span span("cover.lhs_reduce");
  ClosureIndex index(*fds, arity);
  auto reduce_fd = [&index](Fd* fd, size_t fd_index, ClosureScratch* scratch,
                            bool patch) {
    const AttrSet snapshot = fd->lhs;
    snapshot.ForEachMember([&](size_t b) {
      AttrSet reduced = fd->lhs;
      reduced.Reset(b);
      if (index.Reaches(reduced, fd->rhs, scratch)) {
        fd->lhs = std::move(reduced);
        if (patch) index.ShrinkLhs(fd_index, b);
      }
    });
  };
  if (pool != nullptr) {
    std::vector<ClosureScratch> scratches(pool->size());
    pool->ParallelFor(fds->size(),
                      [&](size_t begin, size_t end, size_t worker) {
                        for (size_t i = begin; i < end; ++i) {
                          reduce_fd(&(*fds)[i], i, &scratches[worker],
                                    /*patch=*/false);
                        }
                      });
  } else {
    ClosureScratch scratch;
    for (size_t i = 0; i < fds->size(); ++i) {
      reduce_fd(&(*fds)[i], i, &scratch, /*patch=*/true);
    }
  }
}

/// Step 2 (Lines 5-8): remove redundant FDs. φ_i is redundant when the
/// FDs surviving so far, minus φ_i, still imply it. The surviving set is
/// prefix-dependent, so removal decisions must run in the seed's order —
/// the parallel arm only *prechecks* each φ_i against the full set F − φ_i
/// (a superset of every later surviving set): an FD that survives the
/// precheck survives the sequential pass too, by monotonicity of closure
/// in the FD set. The sequential confirm then revisits only precheck
/// casualties, deactivating accepted removals in the index, which
/// reproduces the seed's decisions exactly.
std::vector<char> DropRedundant(const std::vector<Fd>& fds, size_t arity,
                                ThreadPool* pool) {
  obs::Span span("cover.redundancy");
  ClosureIndex index(fds, arity);
  std::vector<char> candidate(fds.size(), 1);
  if (pool != nullptr) {
    std::vector<ClosureScratch> scratches(pool->size());
    pool->ParallelFor(
        fds.size(), [&](size_t begin, size_t end, size_t worker) {
          for (size_t i = begin; i < end; ++i) {
            candidate[i] =
                index.Reaches(fds[i].lhs, fds[i].rhs, &scratches[worker], i)
                    ? 1
                    : 0;
          }
        });
  }
  std::vector<char> removed(fds.size(), 0);
  ClosureScratch scratch;
  for (size_t i = 0; i < fds.size(); ++i) {
    if (candidate[i] == 0) continue;
    if (index.Reaches(fds[i].lhs, fds[i].rhs, &scratch, i)) {
      removed[i] = 1;
      index.Deactivate(i);
    }
  }
  return removed;
}

/// Seed fallback, kept verbatim for `--no-closure-index` runs and as the
/// reference arm of the cover bit-identity tests.
FdSet MinimizeSeed(const FdSet& input) {
  FdSet working = input.Normalized();
  for (Fd& fd : working.mutable_fds()) {
    for (size_t b : fd.lhs.ToVector()) {
      AttrSet reduced = fd.lhs;
      reduced.Reset(b);
      if (fd.rhs.IsSubsetOf(working.Closure(reduced))) {
        fd.lhs = std::move(reduced);
      }
    }
  }
  working = working.Normalized();
  FdSet result(working.schema());
  std::vector<Fd> remaining = working.fds();
  std::vector<char> removed(remaining.size(), 0);
  for (size_t i = 0; i < remaining.size(); ++i) {
    AttrSet closure = ClosureOver(remaining, remaining[i].lhs, i);
    if (remaining[i].rhs.IsSubsetOf(closure)) {
      removed[i] = 1;
      remaining[i].rhs = remaining[i].lhs;  // neutralize: trivial FD
    }
  }
  for (size_t i = 0; i < remaining.size(); ++i) {
    if (!removed[i]) result.Add(std::move(remaining[i]));
  }
  return result;
}

/// The compiled kernel indexes FDs by attribute position, so it needs
/// every member bitset sized to the schema. Degenerate inputs (foreign
/// universes from hand-built test sets) take the seed path instead.
bool UniverseConsistent(const FdSet& input) {
  const size_t arity = input.schema().arity();
  for (const Fd& fd : input.fds()) {
    if (fd.lhs.universe_size() != arity || fd.rhs.universe_size() != arity) {
      return false;
    }
  }
  return true;
}

}  // namespace

FdSet Minimize(const FdSet& input, ThreadPool* pool) {
  obs::Span span("cover.minimize");
  obs::Count("cover.minimize_input_fds", input.size());
  if (!ClosureIndexEnabled() || !UniverseConsistent(input)) {
    FdSet result = MinimizeSeed(input);
    obs::Count("cover.minimize_output_fds", result.size());
    return result;
  }

  FdSet working = input.Normalized();
  const size_t arity = working.schema().arity();
  auto pool_for = [pool](size_t n) -> ThreadPool* {
    return pool != nullptr && pool->size() > 1 &&
                   n >= kParallelMinimizeThreshold
               ? pool
               : nullptr;
  };

  LeftReduce(&working.mutable_fds(), arity, pool_for(working.size()));

  // Left-reduction typically collapses many FDs onto the same reduced
  // form; dropping exact duplicates here keeps the quadratic redundancy
  // pass tractable for the naive algorithm's exponential inputs.
  working = working.Normalized();

  std::vector<char> removed =
      DropRedundant(working.fds(), arity, pool_for(working.size()));
  FdSet result(working.schema());
  for (size_t i = 0; i < working.fds().size(); ++i) {
    if (!removed[i]) result.Add(working.fds()[i]);
  }
  obs::Count("cover.minimize_output_fds", result.size());
  return result;
}

bool IsMinimal(const FdSet& cover) {
  const std::vector<Fd>& fds = cover.fds();
  for (size_t i = 0; i < fds.size(); ++i) {
    // Non-redundancy.
    FdSet others(cover.schema());
    for (size_t j = 0; j < fds.size(); ++j) {
      if (j != i) others.Add(fds[j]);
    }
    if (others.Implies(fds[i])) return false;
    // Left-reduction.
    for (size_t b : fds[i].lhs.ToVector()) {
      AttrSet reduced = fds[i].lhs;
      reduced.Reset(b);
      if (fds[i].rhs.IsSubsetOf(cover.Closure(reduced))) return false;
    }
  }
  return true;
}

}  // namespace xmlprop
