#include "relational/closure_index.h"

#include <bit>
#include <cassert>
#include <map>

#include "obs/cost_attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xmlprop {

namespace internal {
std::atomic<bool> g_closure_index_enabled{true};
thread_local int t_closure_index_override = 0;
}  // namespace internal

ClosureIndex::ClosureIndex(const std::vector<Fd>& fds, size_t universe_size,
                           const ClosureIndexOptions& options)
    : universe_(universe_size),
      fd_count_(fds.size()),
      words_per_set_((universe_size + 63) / 64),
      merged_(options.merge_same_lhs) {
  obs::Count("closure.index_compiles");
  node_of_fd_.resize(fds.size());

  // Node assignment: one node per FD, or — merged — one per distinct LHS
  // in first-occurrence order (deterministic; merging only unions RHS
  // bitsets, which cannot change any closure).
  if (merged_) {
    std::map<AttrSet, uint32_t> node_of_lhs;
    for (size_t f = 0; f < fds.size(); ++f) {
      auto [it, inserted] = node_of_lhs.emplace(
          fds[f].lhs, static_cast<uint32_t>(lhs_count_.size()));
      if (inserted) {
        lhs_count_.push_back(static_cast<uint32_t>(fds[f].lhs.Count()));
        rhs_.push_back(fds[f].rhs);
      } else {
        rhs_[it->second].UnionInPlace(fds[f].rhs);
      }
      node_of_fd_[f] = it->second;
    }
  } else {
    lhs_count_.reserve(fds.size());
    rhs_.reserve(fds.size());
    for (size_t f = 0; f < fds.size(); ++f) {
      node_of_fd_[f] = static_cast<uint32_t>(f);
      lhs_count_.push_back(static_cast<uint32_t>(fds[f].lhs.Count()));
      rhs_.push_back(fds[f].rhs);
    }
  }
  dead_.assign(node_count(), 0);
  for (uint32_t n = 0; n < node_count(); ++n) {
    if (lhs_count_[n] == 0) empty_lhs_nodes_.push_back(n);
  }

  // CSR build over attribute positions: degree count, prefix sum, fill.
  // Each attribute's entry list ends up sorted by node id (fill walks
  // nodes in order), so traversal order — and with it every counter
  // decrement — is deterministic.
  offsets_.assign(universe_ + 1, 0);
  if (merged_) {
    // Count degrees from distinct nodes only: walk FDs, crediting the
    // node the first time it appears.
    std::vector<char> seen(node_count(), 0);
    for (size_t f = 0; f < fds.size(); ++f) {
      const uint32_t n = node_of_fd_[f];
      if (seen[n]) continue;
      seen[n] = 1;
      fds[f].lhs.ForEachMember([&](size_t a) { ++offsets_[a + 1]; });
    }
    for (size_t a = 0; a < universe_; ++a) offsets_[a + 1] += offsets_[a];
    entries_.assign(offsets_[universe_], 0);
    std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    std::fill(seen.begin(), seen.end(), 0);
    for (size_t f = 0; f < fds.size(); ++f) {
      const uint32_t n = node_of_fd_[f];
      if (seen[n]) continue;
      seen[n] = 1;
      fds[f].lhs.ForEachMember(
          [&](size_t a) { entries_[cursor[a]++] = n; });
    }
  } else {
    for (const Fd& fd : fds) {
      fd.lhs.ForEachMember([&](size_t a) { ++offsets_[a + 1]; });
    }
    for (size_t a = 0; a < universe_; ++a) offsets_[a + 1] += offsets_[a];
    entries_.assign(offsets_[universe_], 0);
    std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (size_t f = 0; f < fds.size(); ++f) {
      fds[f].lhs.ForEachMember([&](size_t a) {
        entries_[cursor[a]++] = static_cast<uint32_t>(f);
      });
    }
  }

  // Plan selection. The counter plan's query cost tracks the adjacency
  // (one random counter touch per reached (FD, attr) incidence); the
  // dense plan's tracks the word plane (one streaming subset test per
  // live node per round). When the adjacency outweighs the plane the
  // closures are firing most of the FD list anyway, and streaming wins.
  dense_ = !entries_.empty() && entries_.size() > node_count() * words_per_set_;
  if (dense_) {
    const size_t W = words_per_set_;
    lhs_words_.assign(node_count() * W, 0);
    rhs_words_.assign(node_count() * W, 0);
    // The LHS plane falls straight out of the CSR (works for both merged
    // and unmerged compiles); the RHS plane out of the node RHS sets.
    for (size_t a = 0; a < universe_; ++a) {
      for (uint32_t e = offsets_[a]; e < offsets_[a + 1]; ++e) {
        lhs_words_[entries_[e] * W + a / 64] |= uint64_t{1} << (a % 64);
      }
    }
    for (uint32_t n = 0; n < node_count(); ++n) {
      rhs_[n].ForEachMember([&](size_t b) {
        rhs_words_[n * W + b / 64] |= uint64_t{1} << (b % 64);
      });
    }
  }
  live_nodes_.resize(node_count());
  for (uint32_t n = 0; n < node_count(); ++n) live_nodes_[n] = n;
  // Visit small-LHS nodes first: they fire earliest, so the closure
  // cascades within a single pass and membership queries meet their
  // witness FDs sooner. Pure scheduling — the fixpoint set is visit-order
  // independent.
  std::stable_sort(live_nodes_.begin(), live_nodes_.end(),
                   [this](uint32_t a, uint32_t b) {
                     return lhs_count_[a] < lhs_count_[b];
                   });
}

void ClosureIndex::Fire(uint32_t node, AttrSet* closure,
                        ClosureScratch* scratch) const {
  rhs_[node].ForEachMember([&](size_t b) {
    if (!closure->Test(b)) {
      closure->Set(b);
      scratch->queue_.push_back(static_cast<uint32_t>(b));
    }
  });
}

uint32_t ClosureIndex::ResolveSkipNode(size_t skip_index) const {
  return skip_index == kNoSkip || skip_index >= fd_count_
             ? kTombstone
             : node_of_fd_[skip_index];
}

AttrSet ClosureIndex::CounterClosure(const AttrSet& start,
                                     ClosureScratch* scratch,
                                     uint32_t skip_node) const {
  AttrSet closure = start;
  scratch->Begin(node_count());
  const uint32_t epoch = scratch->epoch_;
  start.ForEachMember(
      [&](size_t a) { scratch->queue_.push_back(static_cast<uint32_t>(a)); });
  for (uint32_t n : empty_lhs_nodes_) {
    if (n == skip_node || dead_[n] != 0) continue;
    Fire(n, &closure, scratch);
  }

  size_t touches = 0;
  for (size_t head = 0; head < scratch->queue_.size(); ++head) {
    const uint32_t a = scratch->queue_[head];
    const uint32_t end = offsets_[a + 1];
    for (uint32_t e = offsets_[a]; e < end; ++e) {
      const uint32_t n = entries_[e];
      if (n == kTombstone || n == skip_node || dead_[n] != 0) continue;
      ++touches;
      uint32_t remaining =
          scratch->stamp_[n] == epoch ? scratch->remaining_[n] : lhs_count_[n];
      scratch->stamp_[n] = epoch;
      scratch->remaining_[n] = --remaining;
      if (remaining == 0) Fire(n, &closure, scratch);
    }
  }
  obs::Count("closure.counter_touches", touches);
  obs::CostAdd(obs::CostKind::kClosureTouches, touches);
  return closure;
}

bool ClosureIndex::CounterReaches(const AttrSet& start, const AttrSet& target,
                                  ClosureScratch* scratch,
                                  uint32_t skip_node) const {
  AttrSet closure = start;
  scratch->Begin(node_count());
  const uint32_t epoch = scratch->epoch_;
  start.ForEachMember(
      [&](size_t a) { scratch->queue_.push_back(static_cast<uint32_t>(a)); });
  size_t touches = 0;
  bool reached = false;
  for (uint32_t n : empty_lhs_nodes_) {
    if (n == skip_node || dead_[n] != 0) continue;
    Fire(n, &closure, scratch);
    if (target.IsSubsetOf(closure)) {
      reached = true;
      break;
    }
  }
  for (size_t head = 0; !reached && head < scratch->queue_.size(); ++head) {
    const uint32_t a = scratch->queue_[head];
    const uint32_t end = offsets_[a + 1];
    for (uint32_t e = offsets_[a]; e < end; ++e) {
      const uint32_t n = entries_[e];
      if (n == kTombstone || n == skip_node || dead_[n] != 0) continue;
      ++touches;
      uint32_t remaining =
          scratch->stamp_[n] == epoch ? scratch->remaining_[n] : lhs_count_[n];
      scratch->stamp_[n] = epoch;
      scratch->remaining_[n] = --remaining;
      if (remaining == 0) {
        Fire(n, &closure, scratch);
        if (target.IsSubsetOf(closure)) {
          reached = true;
          break;
        }
      }
    }
  }
  obs::Count("closure.counter_touches", touches);
  obs::CostAdd(obs::CostKind::kClosureTouches, touches);
  return reached;
}

bool ClosureIndex::DenseRun(ClosureScratch* scratch, uint32_t skip_node,
                            bool has_target) const {
  const size_t W = words_per_set_;
  uint64_t* C = scratch->closure_words_.data();
  const uint64_t* T = scratch->target_words_.data();
  auto target_covered = [&]() {
    for (size_t w = 0; w < W; ++w) {
      if (T[w] & ~C[w]) return false;
    }
    return true;
  };

  size_t touches = 0;
  bool changed = false;
  auto visit = [&](uint32_t n) -> int {  // -1 survive, 0 fired, 1 target hit
    ++touches;
    const uint64_t* L = lhs_words_.data() + size_t{n} * W;
    for (size_t w = 0; w < W; ++w) {
      if (L[w] & ~C[w]) return -1;
    }
    // Fire: union the RHS in and retire the node. The closure is a set,
    // so visit order never shows in the result — only in the pass count.
    const uint64_t* R = rhs_words_.data() + size_t{n} * W;
    uint64_t diff = 0;
    for (size_t w = 0; w < W; ++w) {
      const uint64_t next = C[w] | R[w];
      diff |= next ^ C[w];
      C[w] = next;
    }
    if (diff != 0) {
      changed = true;
      if (has_target && target_covered()) return 1;
    }
    return 0;
  };

  // Pass 1 streams the compiled live list directly and collects the
  // survivors; later passes swap-compact the survivor list in place.
  scratch->active_.clear();
  for (uint32_t n : live_nodes_) {
    if (n == skip_node) continue;
    const int v = visit(n);
    if (v == 1) {
      obs::Count("closure.counter_touches", touches);
      obs::CostAdd(obs::CostKind::kClosureTouches, touches);
      return true;
    }
    if (v == -1) scratch->active_.push_back(n);
  }
  uint32_t* active = scratch->active_.data();
  size_t m = scratch->active_.size();
  while (changed) {
    changed = false;
    for (size_t i = 0; i < m;) {
      const int v = visit(active[i]);
      if (v == 1) {
        obs::Count("closure.counter_touches", touches);
      obs::CostAdd(obs::CostKind::kClosureTouches, touches);
        return true;
      }
      if (v == -1) {
        ++i;
      } else {
        active[i] = active[--m];
      }
    }
  }
  obs::Count("closure.counter_touches", touches);
  obs::CostAdd(obs::CostKind::kClosureTouches, touches);
  return false;
}

AttrSet ClosureIndex::Closure(const AttrSet& start, ClosureScratch* scratch,
                              size_t skip_index) const {
  obs::Span span("closure");
  obs::Count("closure.queries");
  assert(start.universe_size() == universe_);
  assert(skip_index == kNoSkip || !merged_);
  const uint32_t skip_node = ResolveSkipNode(skip_index);
  if (!dense_) return CounterClosure(start, scratch, skip_node);

  const size_t W = words_per_set_;
  scratch->closure_words_.assign(W, 0);
  start.ForEachMember([&](size_t a) {
    scratch->closure_words_[a / 64] |= uint64_t{1} << (a % 64);
  });
  DenseRun(scratch, skip_node, /*has_target=*/false);
  AttrSet closure(universe_);
  for (size_t w = 0; w < W; ++w) {
    uint64_t bits = scratch->closure_words_[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      closure.Set(w * 64 + static_cast<size_t>(b));
    }
  }
  return closure;
}

bool ClosureIndex::Reaches(const AttrSet& start, const AttrSet& target,
                           ClosureScratch* scratch,
                           size_t skip_index) const {
  obs::Span span("closure");
  obs::Count("closure.queries");
  assert(start.universe_size() == universe_);
  assert(skip_index == kNoSkip || !merged_);
  if (target.IsSubsetOf(start)) return true;
  const uint32_t skip_node = ResolveSkipNode(skip_index);
  if (!dense_) return CounterReaches(start, target, scratch, skip_node);

  const size_t W = words_per_set_;
  scratch->closure_words_.assign(W, 0);
  start.ForEachMember([&](size_t a) {
    scratch->closure_words_[a / 64] |= uint64_t{1} << (a % 64);
  });
  scratch->target_words_.assign(W, 0);
  target.ForEachMember([&](size_t b) {
    scratch->target_words_[b / 64] |= uint64_t{1} << (b % 64);
  });
  return DenseRun(scratch, skip_node, /*has_target=*/true);
}

void ClosureIndex::ShrinkLhs(size_t fd_index, size_t attr) {
  assert(!merged_);
  assert(fd_index < fd_count_);
  obs::Count("closure.index_patches");
  const uint32_t node = node_of_fd_[fd_index];
  if (dense_) {
    lhs_words_[node * words_per_set_ + attr / 64] &=
        ~(uint64_t{1} << (attr % 64));
  }
  const uint32_t end = offsets_[attr + 1];
  for (uint32_t e = offsets_[attr]; e < end; ++e) {
    if (entries_[e] == node) {
      entries_[e] = kTombstone;
      if (--lhs_count_[node] == 0) empty_lhs_nodes_.push_back(node);
      return;
    }
  }
  assert(false && "attr was not on the FD's compiled LHS");
}

void ClosureIndex::Deactivate(size_t fd_index) {
  assert(!merged_);
  assert(fd_index < fd_count_);
  obs::Count("closure.index_patches");
  const uint32_t node = node_of_fd_[fd_index];
  dead_[node] = 1;
  for (size_t i = 0; i < live_nodes_.size(); ++i) {
    if (live_nodes_[i] == node) {
      live_nodes_[i] = live_nodes_.back();
      live_nodes_.pop_back();
      break;
    }
  }
}

}  // namespace xmlprop
