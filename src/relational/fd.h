#ifndef XMLPROP_RELATIONAL_FD_H_
#define XMLPROP_RELATIONAL_FD_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/attribute_set.h"
#include "relational/schema.h"

namespace xmlprop {

/// A functional dependency X → Y over one relation schema. Algorithms
/// that compute covers normalize to single-attribute right-hand sides;
/// user-facing FDs may have set-valued RHS.
struct Fd {
  AttrSet lhs;
  AttrSet rhs;

  Fd() = default;
  Fd(AttrSet l, AttrSet r) : lhs(std::move(l)), rhs(std::move(r)) {}

  /// Convenience: X → {a}.
  static Fd SingleRhs(AttrSet l, size_t attr) {
    AttrSet r(l.universe_size());
    r.Set(attr);
    return Fd(std::move(l), std::move(r));
  }

  /// Trivial iff Y ⊆ X (implied by reflexivity alone).
  bool IsTrivial() const { return rhs.IsSubsetOf(lhs); }

  /// "a, b -> c" under `schema`'s attribute names.
  std::string ToString(const RelationSchema& schema) const;

  friend bool operator==(const Fd& a, const Fd& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
  friend bool operator<(const Fd& a, const Fd& b) {
    if (!(a.lhs == b.lhs)) return a.lhs < b.lhs;
    return a.rhs < b.rhs;
  }
};

/// Parses "a, b -> c, d" (also accepts the arrow "→"). All attributes
/// must belong to `schema`; the LHS may be empty ("-> c" means the
/// constant FD ∅ → c).
Result<Fd> ParseFd(const RelationSchema& schema, std::string_view text);

/// Splits an FD with a k-attribute RHS into k single-RHS FDs
/// (Armstrong decomposition). Trivial pieces (A ∈ X) are dropped.
std::vector<Fd> SplitRhs(const Fd& fd);

}  // namespace xmlprop

#endif  // XMLPROP_RELATIONAL_FD_H_
