#include "relational/fd.h"

#include "common/str_util.h"

namespace xmlprop {

std::string Fd::ToString(const RelationSchema& schema) const {
  return schema.FormatSet(lhs) + " -> " + schema.FormatSet(rhs);
}

Result<Fd> ParseFd(const RelationSchema& schema, std::string_view text) {
  std::string_view s = TrimWhitespace(text);
  size_t arrow_len = 2;
  size_t arrow = s.find("->");
  if (arrow == std::string_view::npos) {
    arrow = s.find("→");
    arrow_len = std::string_view("→").size();
  }
  if (arrow == std::string_view::npos) {
    return Status::ParseError("FD must contain '->': " + std::string(text));
  }
  std::string_view lhs_text = TrimWhitespace(s.substr(0, arrow));
  std::string_view rhs_text = TrimWhitespace(s.substr(arrow + arrow_len));
  if (rhs_text.empty()) {
    return Status::ParseError("FD has empty right-hand side: " +
                              std::string(text));
  }

  std::vector<std::string> lhs_names;
  if (!lhs_text.empty()) lhs_names = SplitAndTrim(lhs_text, ',');
  std::vector<std::string> rhs_names = SplitAndTrim(rhs_text, ',');

  XMLPROP_ASSIGN_OR_RETURN(AttrSet lhs, schema.MakeSet(lhs_names));
  XMLPROP_ASSIGN_OR_RETURN(AttrSet rhs, schema.MakeSet(rhs_names));
  return Fd(std::move(lhs), std::move(rhs));
}

std::vector<Fd> SplitRhs(const Fd& fd) {
  std::vector<Fd> out;
  for (size_t attr : fd.rhs.ToVector()) {
    if (fd.lhs.Test(attr)) continue;  // trivial piece
    out.push_back(Fd::SingleRhs(fd.lhs, attr));
  }
  return out;
}

}  // namespace xmlprop
