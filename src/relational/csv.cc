#include "relational/csv.h"

#include <vector>

namespace xmlprop {

namespace {

bool NeedsQuoting(const std::string& s) {
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(const Field& f, std::string* out) {
  if (!f.has_value()) return;  // NULL: unquoted empty
  const std::string& s = *f;
  if (s.empty() || NeedsQuoting(s)) {
    out->push_back('"');
    for (char c : s) {
      if (c == '"') out->push_back('"');
      out->push_back(c);
    }
    out->push_back('"');
  } else {
    *out += s;
  }
}

// One parsed cell: text plus whether it was quoted (to distinguish NULL
// from the empty string).
struct Cell {
  std::string text;
  bool quoted = false;
};

// Splits `text` into rows of cells; handles quoted cells with embedded
// separators/newlines and doubled quotes.
Result<std::vector<std::vector<Cell>>> Tokenize(std::string_view text) {
  std::vector<std::vector<Cell>> rows;
  std::vector<Cell> row;
  Cell cell;
  size_t line = 1;
  bool in_quotes = false;
  bool cell_started = false;

  auto end_cell = [&]() {
    row.push_back(std::move(cell));
    cell = Cell{};
    cell_started = false;
  };
  auto end_row = [&]() {
    end_cell();
    // Skip fully blank lines (a single empty unquoted cell).
    if (!(row.size() == 1 && !row[0].quoted && row[0].text.empty())) {
      rows.push_back(std::move(row));
    }
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.text.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        cell.text.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (cell_started && !cell.text.empty()) {
          return Status::ParseError("CSV line " + std::to_string(line) +
                                    ": quote inside unquoted cell");
        }
        in_quotes = true;
        cell.quoted = true;
        cell_started = true;
        break;
      case ',':
        end_cell();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        ++line;
        break;
      default:
        cell.text.push_back(c);
        cell_started = true;
    }
  }
  if (in_quotes) {
    return Status::ParseError("CSV: unterminated quoted cell");
  }
  if (cell_started || !row.empty()) end_row();
  return rows;
}

}  // namespace

std::string WriteCsv(const Instance& instance) {
  std::string out;
  const RelationSchema& schema = instance.schema();
  for (size_t i = 0; i < schema.arity(); ++i) {
    if (i > 0) out += ',';
    out += schema.attributes()[i];
  }
  out += '\n';
  for (const Tuple& t : instance.tuples()) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += ',';
      AppendField(t[i], &out);
    }
    out += '\n';
  }
  return out;
}

Result<Instance> ReadCsv(const RelationSchema& schema,
                         std::string_view text) {
  XMLPROP_ASSIGN_OR_RETURN(std::vector<std::vector<Cell>> rows,
                           Tokenize(text));
  if (rows.empty()) {
    return Status::ParseError("CSV: missing header line");
  }
  // Header: map columns to schema positions by name.
  const std::vector<Cell>& header = rows[0];
  if (header.size() != schema.arity()) {
    return Status::ParseError(
        "CSV header has " + std::to_string(header.size()) +
        " columns; schema " + schema.name() + " has " +
        std::to_string(schema.arity()));
  }
  std::vector<size_t> position(header.size());
  std::vector<bool> used(schema.arity(), false);
  for (size_t i = 0; i < header.size(); ++i) {
    std::optional<size_t> idx = schema.IndexOf(header[i].text);
    if (!idx.has_value()) {
      return Status::ParseError("CSV header column '" + header[i].text +
                                "' is not an attribute of " + schema.name());
    }
    if (used[*idx]) {
      return Status::ParseError("CSV header repeats column '" +
                                header[i].text + "'");
    }
    used[*idx] = true;
    position[i] = *idx;
  }

  Instance instance(schema);
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != header.size()) {
      return Status::ParseError(
          "CSV row " + std::to_string(r + 1) + " has " +
          std::to_string(rows[r].size()) + " cells, expected " +
          std::to_string(header.size()));
    }
    Tuple t(schema.arity());
    for (size_t i = 0; i < rows[r].size(); ++i) {
      const Cell& cell = rows[r][i];
      if (cell.text.empty() && !cell.quoted) continue;  // NULL
      t[position[i]] = cell.text;
    }
    XMLPROP_RETURN_NOT_OK(instance.Add(std::move(t)));
  }
  return instance;
}

}  // namespace xmlprop
