#include "relational/fd_set.h"

#include <algorithm>

#include "obs/metrics.h"

namespace xmlprop {

bool FdSet::AddIfNew(const Fd& fd) {
  if (Implies(fd)) return false;
  InvalidateIndex();
  fds_.push_back(fd);
  return true;
}

Status FdSet::AddParsed(std::string_view text) {
  XMLPROP_ASSIGN_OR_RETURN(Fd fd, ParseFd(schema_, text));
  Add(std::move(fd));
  return Status::OK();
}

AttrSet ClosureOver(const std::vector<Fd>& fds, const AttrSet& start,
                    size_t skip_index) {
  // Fixpoint with a fired-flag per FD. Worst case O(|fds|²) subset tests;
  // kept verbatim as the `--no-closure-index` reference path and as the
  // oracle the ClosureIndex property tests compare against.
  obs::Count("closure.legacy_queries");
  AttrSet closure = start;
  std::vector<char> fired(fds.size(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t f = 0; f < fds.size(); ++f) {
      if (fired[f] || f == skip_index) continue;
      if (fds[f].lhs.IsSubsetOf(closure)) {
        fired[f] = 1;
        if (!fds[f].rhs.IsSubsetOf(closure)) {
          closure.UnionInPlace(fds[f].rhs);
          changed = true;
        }
      }
    }
  }
  return closure;
}

const ClosureIndex& FdSet::Index() const {
  if (index_ == nullptr) {
    // Merged-LHS compile: whole-set queries never skip individual FDs,
    // so the smaller counter plane is always admissible here.
    ClosureIndexOptions options;
    options.merge_same_lhs = true;
    index_ = std::make_unique<ClosureIndex>(fds_, schema_.arity(), options);
  }
  return *index_;
}

AttrSet FdSet::Closure(const AttrSet& start) const {
  if (!ClosureIndexEnabled() || start.universe_size() != schema_.arity()) {
    // Degenerate callers (default-constructed sets queried with foreign
    // universes) keep the seed fixpoint, which never indexes by position.
    return ClosureOver(fds_, start, kNoSkip);
  }
  return Index().Closure(start, &scratch_);
}

bool FdSet::Implies(const Fd& fd) const {
  if (!ClosureIndexEnabled() || fd.lhs.universe_size() != schema_.arity() ||
      fd.rhs.universe_size() != schema_.arity()) {
    return fd.rhs.IsSubsetOf(Closure(fd.lhs));
  }
  // Membership form: stops as soon as the RHS is covered.
  return Index().Reaches(fd.lhs, fd.rhs, &scratch_);
}

bool FdSet::ImpliesAll(const FdSet& other) const {
  return std::all_of(other.fds_.begin(), other.fds_.end(),
                     [this](const Fd& fd) { return Implies(fd); });
}

bool FdSet::EquivalentTo(const FdSet& other) const {
  return ImpliesAll(other) && other.ImpliesAll(*this);
}

bool FdSet::IsSuperkey(const AttrSet& candidate_key) const {
  if (!ClosureIndexEnabled() ||
      candidate_key.universe_size() != schema_.arity()) {
    return schema_.FullSet().IsSubsetOf(Closure(candidate_key));
  }
  return Index().Reaches(candidate_key, schema_.FullSet(), &scratch_);
}

FdSet FdSet::Normalized(bool merge_same_lhs) const {
  FdSet out(schema_);
  for (const Fd& fd : fds_) {
    for (Fd& piece : SplitRhs(fd)) {
      out.fds_.push_back(std::move(piece));
    }
  }
  // Sort + unique keeps deduplication O(k log k); the naive cover
  // algorithm feeds exponentially many FDs through here.
  std::sort(out.fds_.begin(), out.fds_.end());
  out.fds_.erase(std::unique(out.fds_.begin(), out.fds_.end()),
                 out.fds_.end());
  if (merge_same_lhs && !out.fds_.empty()) {
    // Adjacent runs share an LHS after the sort; fold each run into one
    // FD with the union RHS. Order stays the sorted order of run heads.
    std::vector<Fd> merged;
    merged.reserve(out.fds_.size());
    for (Fd& fd : out.fds_) {
      if (!merged.empty() && merged.back().lhs == fd.lhs) {
        merged.back().rhs.UnionInPlace(fd.rhs);
      } else {
        merged.push_back(std::move(fd));
      }
    }
    out.fds_ = std::move(merged);
  }
  return out;
}

std::string FdSet::ToString() const {
  std::string out;
  for (const Fd& fd : fds_) {
    out += fd.ToString(schema_);
    out += '\n';
  }
  return out;
}

}  // namespace xmlprop
