#include "relational/fd_set.h"

#include <algorithm>
#include <deque>

namespace xmlprop {

bool FdSet::AddIfNew(const Fd& fd) {
  if (Implies(fd)) return false;
  fds_.push_back(fd);
  return true;
}

Status FdSet::AddParsed(std::string_view text) {
  XMLPROP_ASSIGN_OR_RETURN(Fd fd, ParseFd(schema_, text));
  Add(std::move(fd));
  return Status::OK();
}

AttrSet ClosureOver(const std::vector<Fd>& fds, const AttrSet& start,
                    size_t skip_index) {
  // Fixpoint with a fired-flag per FD. Worst case O(|fds|²) subset tests,
  // but each test is a handful of word operations on the attribute
  // bitsets and the loop allocates nothing beyond one flag vector — in
  // practice far faster than index-based closures for the set sizes the
  // cover algorithms produce (profiled; this is the hottest path of
  // Algorithm naive's minimize step).
  AttrSet closure = start;
  std::vector<char> fired(fds.size(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t f = 0; f < fds.size(); ++f) {
      if (fired[f] || f == skip_index) continue;
      if (fds[f].lhs.IsSubsetOf(closure)) {
        fired[f] = 1;
        if (!fds[f].rhs.IsSubsetOf(closure)) {
          closure.UnionInPlace(fds[f].rhs);
          changed = true;
        }
      }
    }
  }
  return closure;
}

AttrSet FdSet::Closure(const AttrSet& start) const {
  return ClosureOver(fds_, start, kNoSkip);
}

bool FdSet::Implies(const Fd& fd) const {
  return fd.rhs.IsSubsetOf(Closure(fd.lhs));
}

bool FdSet::ImpliesAll(const FdSet& other) const {
  return std::all_of(other.fds_.begin(), other.fds_.end(),
                     [this](const Fd& fd) { return Implies(fd); });
}

bool FdSet::EquivalentTo(const FdSet& other) const {
  return ImpliesAll(other) && other.ImpliesAll(*this);
}

bool FdSet::IsSuperkey(const AttrSet& candidate_key) const {
  return schema_.FullSet().IsSubsetOf(Closure(candidate_key));
}

FdSet FdSet::Normalized() const {
  FdSet out(schema_);
  for (const Fd& fd : fds_) {
    for (Fd& piece : SplitRhs(fd)) {
      out.fds_.push_back(std::move(piece));
    }
  }
  // Sort + unique keeps deduplication O(k log k); the naive cover
  // algorithm feeds exponentially many FDs through here.
  std::sort(out.fds_.begin(), out.fds_.end());
  out.fds_.erase(std::unique(out.fds_.begin(), out.fds_.end()),
                 out.fds_.end());
  return out;
}

std::string FdSet::ToString() const {
  std::string out;
  for (const Fd& fd : fds_) {
    out += fd.ToString(schema_);
    out += '\n';
  }
  return out;
}

}  // namespace xmlprop
