#include "keys/satisfaction.h"

#include <map>

#include "common/str_util.h"

namespace xmlprop {

std::string KeyViolation::Describe(const Tree& tree, const XmlKey& key) const {
  std::string out = "key ";
  out += key.name().empty() ? key.ToString() : key.name();
  if (kind == Kind::kMissingAttribute) {
    out += ": target node <" + tree.node(node1).label + "> (path /" +
           Join(tree.PathLabelsFromRoot(node1), "/") + ") lacks @" + attribute;
  } else {
    out += ": target nodes <" + tree.node(node1).label + "> (path /" +
           Join(tree.PathLabelsFromRoot(node1), "/") + ") and <" +
           tree.node(node2).label + "> (path /" +
           Join(tree.PathLabelsFromRoot(node2), "/") +
           ") agree on all key attributes";
  }
  out += " under context node ";
  out += (context == tree.root())
             ? std::string("/")
             : "/" + Join(tree.PathLabelsFromRoot(context), "/");
  return out;
}

std::vector<KeyViolation> CheckKey(const Tree& tree, const XmlKey& key) {
  std::vector<KeyViolation> violations;
  for (NodeId ctx : key.context().EvalFromRoot(tree)) {
    if (tree.node(ctx).kind != NodeKind::kElement) continue;
    std::vector<NodeId> targets = key.target().Eval(tree, ctx);

    // Condition (1): every target node carries every key attribute.
    // (Uniqueness of an attribute per element is a Tree invariant.)
    // Nodes with missing attributes are excluded from the value-equality
    // check: the key's semantics never compares them.
    std::map<std::vector<std::string>, NodeId> seen;
    for (NodeId t : targets) {
      if (tree.node(t).kind != NodeKind::kElement) continue;
      bool complete = true;
      std::vector<std::string> values;
      values.reserve(key.attributes().size());
      for (const std::string& attr : key.attributes()) {
        std::optional<std::string> v = tree.AttributeValue(t, attr);
        if (!v.has_value()) {
          KeyViolation viol;
          viol.kind = KeyViolation::Kind::kMissingAttribute;
          viol.context = ctx;
          viol.node1 = t;
          viol.attribute = attr;
          violations.push_back(std::move(viol));
          complete = false;
        } else {
          values.push_back(std::move(*v));
        }
      }
      if (!complete) continue;

      // Condition (2): equal key values imply the same node.
      auto [it, inserted] = seen.emplace(std::move(values), t);
      if (!inserted) {
        KeyViolation viol;
        viol.kind = KeyViolation::Kind::kDuplicateValues;
        viol.context = ctx;
        viol.node1 = it->second;
        viol.node2 = t;
        violations.push_back(std::move(viol));
      }
    }
  }
  return violations;
}

bool Satisfies(const Tree& tree, const XmlKey& key) {
  return CheckKey(tree, key).empty();
}

bool SatisfiesAll(const Tree& tree, const std::vector<XmlKey>& keys) {
  for (const XmlKey& key : keys) {
    if (!Satisfies(tree, key)) return false;
  }
  return true;
}

std::vector<TaggedViolation> CheckAll(const Tree& tree,
                                      const std::vector<XmlKey>& keys) {
  std::vector<TaggedViolation> out;
  for (size_t i = 0; i < keys.size(); ++i) {
    for (KeyViolation& v : CheckKey(tree, keys[i])) {
      out.push_back(TaggedViolation{i, std::move(v)});
    }
  }
  return out;
}

}  // namespace xmlprop
