#include "keys/satisfaction.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>

#include <atomic>

#include "common/str_util.h"
#include "obs/cost_attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xmlprop {

std::string KeyViolation::Describe(const Tree& tree, const XmlKey& key) const {
  const std::string& name = key.name().empty() ? key.ToString() : key.name();
  const std::string path1 = Join(tree.PathLabelsFromRoot(node1), "/");
  const std::string context_path =
      (context == tree.root())
          ? std::string("/")
          : "/" + Join(tree.PathLabelsFromRoot(context), "/");
  std::string out;
  out.reserve(name.size() + path1.size() + context_path.size() + 96);
  out += "key ";
  out += name;
  if (kind == Kind::kMissingAttribute) {
    out += ": target node <" + std::string(tree.node(node1).label) +
           "> (path /" + path1 + ") lacks @" + attribute;
  } else {
    const std::string path2 = Join(tree.PathLabelsFromRoot(node2), "/");
    out += ": target nodes <" + std::string(tree.node(node1).label) +
           "> (path /" + path1 + ") and <" +
           std::string(tree.node(node2).label) + "> (path /" + path2 +
           ") agree on all key attributes";
  }
  out += " under context node ";
  out += context_path;
  return out;
}

std::vector<KeyViolation> CheckKey(const Tree& tree, const XmlKey& key) {
  std::vector<KeyViolation> violations;
  size_t contexts = 0;
  size_t tuples_hashed = 0;
  for (NodeId ctx : key.context().EvalFromRoot(tree)) {
    if (tree.node(ctx).kind != NodeKind::kElement) continue;
    ++contexts;
    std::vector<NodeId> targets = key.target().Eval(tree, ctx);

    // Condition (1): every target node carries every key attribute.
    // (Uniqueness of an attribute per element is a Tree invariant.)
    // Nodes with missing attributes are excluded from the value-equality
    // check: the key's semantics never compares them.
    std::map<std::vector<std::string>, NodeId> seen;
    for (NodeId t : targets) {
      if (tree.node(t).kind != NodeKind::kElement) continue;
      bool complete = true;
      std::vector<std::string> values;
      values.reserve(key.attributes().size());
      for (const std::string& attr : key.attributes()) {
        std::optional<std::string> v = tree.AttributeValue(t, attr);
        if (!v.has_value()) {
          KeyViolation viol;
          viol.kind = KeyViolation::Kind::kMissingAttribute;
          viol.context = ctx;
          viol.node1 = t;
          viol.attribute = attr;
          violations.push_back(std::move(viol));
          complete = false;
        } else {
          values.push_back(std::move(*v));
        }
      }
      if (!complete) continue;
      ++tuples_hashed;

      // Condition (2): equal key values imply the same node.
      auto [it, inserted] = seen.emplace(std::move(values), t);
      if (!inserted) {
        KeyViolation viol;
        viol.kind = KeyViolation::Kind::kDuplicateValues;
        viol.context = ctx;
        viol.node1 = it->second;
        viol.node2 = t;
        violations.push_back(std::move(viol));
      }
    }
  }
  obs::Count("check.contexts", contexts);
  obs::Count("check.tuples_hashed", tuples_hashed);
  obs::CostAdd(obs::CostKind::kContexts, contexts);
  obs::CostAdd(obs::CostKind::kTuplesHashed, tuples_hashed);
  return violations;
}

bool Satisfies(const Tree& tree, const XmlKey& key) {
  return CheckKey(tree, key).empty();
}

bool SatisfiesAll(const Tree& tree, const std::vector<XmlKey>& keys) {
  for (const XmlKey& key : keys) {
    if (!Satisfies(tree, key)) return false;
  }
  return true;
}

namespace {

// The label a key's costs are attributed under (--explain-cost rows).
std::string CostLabel(const XmlKey& key) {
  return key.name().empty() ? key.ToString() : key.name();
}

}  // namespace

std::vector<TaggedViolation> CheckAll(const Tree& tree,
                                      const std::vector<XmlKey>& keys) {
  obs::Span span("check.run");
  obs::CostAttribution* costs = obs::ActiveCosts();
  std::vector<TaggedViolation> out;
  for (size_t i = 0; i < keys.size(); ++i) {
    const uint32_t cost_id = costs != nullptr
                                 ? costs->Intern(CostLabel(keys[i]))
                                 : obs::CostAttribution::kNoConstraint;
    obs::CostScope scope(cost_id);
    obs::ScopedCostTimer timer(cost_id);
    std::vector<KeyViolation> violations = CheckKey(tree, keys[i]);
    if (costs != nullptr) {
      costs->Add(cost_id, obs::CostKind::kViolations, violations.size());
    }
    for (KeyViolation& v : violations) {
      out.push_back(TaggedViolation{i, std::move(v)});
    }
  }
  obs::Count("check.keys", keys.size());
  obs::Count("check.violations", out.size());
  return out;
}

// ---------------------------------------------------------------------------
// Indexed path.

namespace {

// Flat open-addressing dedup over fixed-arity tuples of interned value
// ids — the condition-(2) check. Tuples live in one contiguous arity-
// strided array, hashed with FNV-1a over the raw id bytes, so the hot
// loop is a bulk hash + one memcmp per probe with no per-tuple
// allocation. A zero-arity key degenerates correctly: every target
// carries the same (empty) tuple, so the first one seen owns it.
// Reusable across contexts: Reset() re-sizes for the next target set
// (capacity is sized so the table never rehashes mid-scan).
class TupleDedup {
 public:
  void Reset(size_t arity, size_t max_tuples) {
    arity_ = arity;
    tuples_.clear();
    owners_.clear();
    size_t want = 16;
    while (want < (max_tuples + 1) * 2) want <<= 1;
    if (slots_.size() != want) slots_.resize(want);
    std::fill(slots_.begin(), slots_.end(), -1);
  }

  // Inserts `tuple` (arity_ ids) owned by `owner` if unseen; returns the
  // owning node (== `owner` iff this tuple is new).
  NodeId FindOrInsert(const ValueId* tuple, NodeId owner) {
    uint64_t h = 1469598103934665603ULL;
    for (size_t a = 0; a < arity_; ++a) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(tuple[a]));
      h *= 1099511628211ULL;
    }
    const size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(h) & mask;
    while (slots_[i] >= 0) {
      const size_t t = static_cast<size_t>(slots_[i]);
      if (arity_ == 0 ||
          std::memcmp(tuples_.data() + t * arity_, tuple,
                      arity_ * sizeof(ValueId)) == 0) {
        return owners_[t];
      }
      i = (i + 1) & mask;
    }
    slots_[i] = static_cast<int32_t>(owners_.size());
    tuples_.insert(tuples_.end(), tuple, tuple + arity_);
    owners_.push_back(owner);
    return owner;
  }

  std::vector<ValueId>* scratch_tuple() { return &tmp_; }

 private:
  size_t arity_ = 0;
  std::vector<ValueId> tuples_;
  std::vector<NodeId> owners_;
  std::vector<int32_t> slots_;
  std::vector<ValueId> tmp_;
};

// The key attributes resolved to interned label ids once per key (a
// kNoLabel entry means the document never uses the attribute name, so
// every target trivially lacks it).
std::vector<LabelId> ResolveAttributes(const TreeIndex& index,
                                       const XmlKey& key) {
  std::vector<LabelId> labels;
  labels.reserve(key.attributes().size());
  for (const std::string& attr : key.attributes()) {
    labels.push_back(index.FindLabel(attr));
  }
  return labels;
}

// Checks `key` under one context node over pre-evaluated `targets`,
// appending violations to `out`. Mirrors the loop structure of the
// tree-walking CheckKey exactly (same order, same witness nodes); only
// the value comparison changes, from string vectors to interned ids.
// Returns the number of complete tuples folded into the dedup table
// (the check.tuples_hashed / per-key cost accounting unit).
size_t CheckContext(const TreeIndex& index, const XmlKey& key,
                    const std::vector<LabelId>& attr_labels, NodeId ctx,
                    const std::vector<NodeId>& targets, TupleDedup* dedup,
                    std::vector<KeyViolation>* out) {
  const NodeKind* kind = index.tree().kind_data();
  dedup->Reset(attr_labels.size(), targets.size());
  std::vector<ValueId>& values = *dedup->scratch_tuple();
  size_t tuples_hashed = 0;
  for (NodeId t : targets) {
    if (kind[static_cast<size_t>(t)] != NodeKind::kElement) continue;
    bool complete = true;
    values.clear();
    for (size_t a = 0; a < attr_labels.size(); ++a) {
      const NodeId attr = index.AttributeWithLabel(t, attr_labels[a]);
      if (attr == kInvalidNode) {
        KeyViolation viol;
        viol.kind = KeyViolation::Kind::kMissingAttribute;
        viol.context = ctx;
        viol.node1 = t;
        viol.attribute = key.attributes()[a];
        out->push_back(std::move(viol));
        complete = false;
      } else {
        values.push_back(index.attr_value_id(attr));
      }
    }
    if (!complete) continue;
    ++tuples_hashed;
    const NodeId first = dedup->FindOrInsert(values.data(), t);
    if (first != t) {
      KeyViolation viol;
      viol.kind = KeyViolation::Kind::kDuplicateValues;
      viol.context = ctx;
      viol.node1 = first;
      viol.node2 = t;
      out->push_back(std::move(viol));
    }
  }
  return tuples_hashed;
}

// Context nodes of `path`, filtered to elements (the indexed checker
// filters once up front; the tree-walking baseline filters per key).
std::vector<NodeId> ElementContexts(const TreeIndex& index,
                                    const PathExpr& path) {
  std::vector<NodeId> out = path.EvalFromRoot(index);
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&index](NodeId n) {
                             return index.tree().node(n).kind !=
                                    NodeKind::kElement;
                           }),
            out.end());
  return out;
}

}  // namespace

std::vector<KeyViolation> CheckKey(const TreeIndex& index,
                                   const XmlKey& key) {
  std::vector<KeyViolation> violations;
  const std::vector<LabelId> attr_labels = ResolveAttributes(index, key);
  TupleDedup dedup;
  size_t tuples_hashed = 0;
  const std::vector<NodeId> ctxs = ElementContexts(index, key.context());
  for (NodeId ctx : ctxs) {
    const std::vector<NodeId> targets = key.target().Eval(index, ctx);
    tuples_hashed += CheckContext(index, key, attr_labels, ctx, targets,
                                  &dedup, &violations);
  }
  obs::Count("check.contexts", ctxs.size());
  obs::Count("check.tuples_hashed", tuples_hashed);
  obs::CostAdd(obs::CostKind::kContexts, ctxs.size());
  obs::CostAdd(obs::CostKind::kTuplesHashed, tuples_hashed);
  return violations;
}

std::vector<KeyViolation> CheckKeyAtContext(const TreeIndex& index,
                                            const XmlKey& key, NodeId ctx) {
  std::vector<KeyViolation> violations;
  const std::vector<LabelId> attr_labels = ResolveAttributes(index, key);
  TupleDedup dedup;
  const std::vector<NodeId> targets = key.target().Eval(index, ctx);
  const size_t tuples_hashed = CheckContext(index, key, attr_labels, ctx,
                                            targets, &dedup, &violations);
  obs::Count("check.contexts", 1);
  obs::Count("check.tuples_hashed", tuples_hashed);
  obs::CostAdd(obs::CostKind::kContexts);
  obs::CostAdd(obs::CostKind::kTuplesHashed, tuples_hashed);
  return violations;
}

bool Satisfies(const TreeIndex& index, const XmlKey& key) {
  return CheckKey(index, key).empty();
}

bool SatisfiesAll(const TreeIndex& index, const std::vector<XmlKey>& keys) {
  for (const XmlKey& key : keys) {
    if (!Satisfies(index, key)) return false;
  }
  return true;
}

std::vector<TaggedViolation> CheckAll(const TreeIndex& index,
                                      const std::vector<XmlKey>& keys,
                                      const CheckOptions& options) {
  obs::Span check_span("check.run");
  // Phase A: evaluate each distinct context path once, shared across keys.
  std::unordered_map<std::string, size_t> context_ids;
  std::vector<std::vector<NodeId>> context_sets;
  std::vector<size_t> key_context(keys.size());
  {
    obs::Span span("check.contexts");
    for (size_t k = 0; k < keys.size(); ++k) {
      auto [it, inserted] = context_ids.emplace(keys[k].context().ToString(),
                                                context_sets.size());
      if (inserted) {
        context_sets.push_back(ElementContexts(index, keys[k].context()));
      }
      key_context[k] = it->second;
    }
  }

  // Phase B: evaluate each distinct (context set, target path) pair once.
  // target_sets[p][c] are the targets of the c-th context node.
  std::unordered_map<std::string, size_t> target_ids;
  std::vector<std::vector<std::vector<NodeId>>> target_sets;
  std::vector<size_t> pair_context_set;
  std::vector<const PathExpr*> pair_target;
  std::vector<size_t> key_pair(keys.size());
  for (size_t k = 0; k < keys.size(); ++k) {
    std::string id = std::to_string(key_context[k]);
    id += '|';
    id += keys[k].target().ToString();
    auto [it, inserted] = target_ids.emplace(std::move(id),
                                             target_sets.size());
    if (inserted) {
      target_sets.emplace_back(context_sets[key_context[k]].size());
      pair_context_set.push_back(key_context[k]);
      pair_target.push_back(&keys[k].target());
    }
    key_pair[k] = it->second;
  }

  // Work items of both parallel phases: contiguous context chunks. A work
  // item owns its output slot, so workers never contend and the merge
  // below is deterministic regardless of scheduling.
  const size_t grain = options.contexts_per_task > 0
                           ? options.contexts_per_task
                           : 1;
  struct Chunk {
    size_t owner;  // pair index (phase B) or key index (phase C)
    size_t begin;
    size_t end;
  };
  auto make_chunks = [grain](size_t owners,
                             const std::function<size_t(size_t)>& size_of) {
    std::vector<Chunk> chunks;
    for (size_t o = 0; o < owners; ++o) {
      const size_t n = size_of(o);
      for (size_t begin = 0; begin < n; begin += grain) {
        chunks.push_back(Chunk{o, begin, std::min(begin + grain, n)});
      }
    }
    return chunks;
  };
  auto run_chunks = [&options](const std::vector<Chunk>& chunks,
                               const char* chunk_span,
                               const std::function<void(const Chunk&)>& body) {
    if (options.pool != nullptr && chunks.size() > 1) {
      // Workers adopt the caller's span so chunk time nests under the
      // phase regardless of which pool thread runs which chunk; the
      // identically-named chunk spans aggregate into one node.
      const obs::SpanToken parent = obs::CurrentSpan();
      options.pool->ParallelFor(
          chunks.size(),
          [&chunks, &body, chunk_span, parent](size_t begin, size_t end,
                                               size_t /*worker*/) {
            obs::SpanParent adopt(parent);
            obs::Span span(chunk_span);
            for (size_t i = begin; i < end; ++i) body(chunks[i]);
          });
    } else {
      obs::Span span(chunk_span);
      for (const Chunk& chunk : chunks) body(chunk);
    }
  };

  const std::vector<Chunk> target_chunks = make_chunks(
      target_sets.size(), [&](size_t p) {
        return context_sets[pair_context_set[p]].size();
      });
  {
    obs::Span span("check.targets");
    run_chunks(target_chunks, "check.target_chunk", [&](const Chunk& chunk) {
      const std::vector<NodeId>& ctxs =
          context_sets[pair_context_set[chunk.owner]];
      for (size_t c = chunk.begin; c < chunk.end; ++c) {
        target_sets[chunk.owner][c] =
            pair_target[chunk.owner]->Eval(index, ctxs[c]);
      }
    });
  }

  // Phase C: per (key, context-partition) attribute/uniqueness checks.
  std::vector<std::vector<LabelId>> attr_labels;
  attr_labels.reserve(keys.size());
  for (const XmlKey& key : keys) {
    attr_labels.push_back(ResolveAttributes(index, key));
  }
  // Per-key cost attribution (--explain-cost): intern each key's label
  // once up front; chunks then charge contexts/tuples/violations/wall
  // time to their owning key. Chunks own disjoint work, so the per-key
  // sums reconcile exactly with the aggregate counters below.
  obs::CostAttribution* costs = obs::ActiveCosts();
  std::vector<uint32_t> cost_ids;
  if (costs != nullptr) {
    cost_ids.reserve(keys.size());
    for (const XmlKey& key : keys) {
      cost_ids.push_back(costs->Intern(CostLabel(key)));
    }
  }
  const std::vector<Chunk> check_chunks = make_chunks(
      keys.size(),
      [&](size_t k) { return context_sets[key_context[k]].size(); });
  std::vector<std::vector<KeyViolation>> slots(check_chunks.size());
  std::atomic<size_t> tuples_hashed_total{0};
  {
    obs::Span span("check.scan");
    run_chunks(check_chunks, "check.scan_chunk", [&](const Chunk& chunk) {
      const size_t i = static_cast<size_t>(&chunk - check_chunks.data());
      const uint32_t cost_id = cost_ids.empty()
                                   ? obs::CostAttribution::kNoConstraint
                                   : cost_ids[chunk.owner];
      obs::CostScope scope(cost_id);
      obs::ScopedCostTimer timer(cost_id);
      const std::vector<NodeId>& ctxs = context_sets[key_context[chunk.owner]];
      const std::vector<std::vector<NodeId>>& targets =
          target_sets[key_pair[chunk.owner]];
      TupleDedup dedup;
      size_t tuples_hashed = 0;
      for (size_t c = chunk.begin; c < chunk.end; ++c) {
        tuples_hashed += CheckContext(index, keys[chunk.owner],
                                      attr_labels[chunk.owner], ctxs[c],
                                      targets[c], &dedup, &slots[i]);
      }
      tuples_hashed_total.fetch_add(tuples_hashed, std::memory_order_relaxed);
      if (costs != nullptr) {
        costs->Add(cost_id, obs::CostKind::kContexts,
                   chunk.end - chunk.begin);
        costs->Add(cost_id, obs::CostKind::kTuplesHashed, tuples_hashed);
      }
    });
  }

  // Deterministic shard merge: chunks were built key-major in context
  // order, which is exactly the sequential (and tree-walking) order.
  std::vector<TaggedViolation> out;
  for (size_t i = 0; i < check_chunks.size(); ++i) {
    if (costs != nullptr && !slots[i].empty()) {
      costs->Add(cost_ids[check_chunks[i].owner],
                 obs::CostKind::kViolations, slots[i].size());
    }
    for (KeyViolation& v : slots[i]) {
      out.push_back(TaggedViolation{check_chunks[i].owner, std::move(v)});
    }
  }

  // Stats land in the active registry unconditionally (fixing the old
  // silent loss when no struct was threaded through); the CheckStats
  // struct stays as a compatibility view for callers that pass one.
  size_t contexts = 0;
  for (size_t k = 0; k < keys.size(); ++k) {
    contexts += context_sets[key_context[k]].size();
  }
  const size_t tasks = target_chunks.size() + check_chunks.size();
  if (options.stats != nullptr) {
    options.stats->context_sets = context_sets.size();
    options.stats->target_sets = target_sets.size();
    options.stats->contexts = contexts;
    options.stats->tasks = tasks;
  }
  obs::Count("check.context_sets", context_sets.size());
  obs::Count("check.target_sets", target_sets.size());
  obs::Count("check.contexts", contexts);
  obs::Count("check.tuples_hashed",
             tuples_hashed_total.load(std::memory_order_relaxed));
  obs::Count("check.tasks", tasks);
  obs::Count("check.keys", keys.size());
  obs::Count("check.violations", out.size());
  return out;
}

}  // namespace xmlprop
