#ifndef XMLPROP_KEYS_SATISFACTION_H_
#define XMLPROP_KEYS_SATISFACTION_H_

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "keys/xml_key.h"
#include "xml/tree.h"
#include "xml/tree_index.h"

namespace xmlprop {

/// One witness that a tree violates a key (Definition 2.1).
struct KeyViolation {
  enum class Kind {
    /// A target node lacks one of the key attributes (condition 1).
    kMissingAttribute,
    /// Two distinct target nodes agree on all key attribute values
    /// (condition 2).
    kDuplicateValues,
  };

  Kind kind = Kind::kMissingAttribute;
  /// The context node under which the violation occurs.
  NodeId context = kInvalidNode;
  /// The offending target node(s); node2 is set only for kDuplicateValues.
  NodeId node1 = kInvalidNode;
  NodeId node2 = kInvalidNode;
  /// The missing attribute for kMissingAttribute; empty otherwise.
  std::string attribute;

  /// Human-readable description referencing node ids and paths.
  std::string Describe(const Tree& tree, const XmlKey& key) const;
};

/// Returns every violation of `key` in `tree` (empty = satisfied).
/// Runs in time O(|tree| + targets·attrs) per context node.
std::vector<KeyViolation> CheckKey(const Tree& tree, const XmlKey& key);

/// True iff `tree` satisfies `key` (short-circuiting CheckKey).
bool Satisfies(const Tree& tree, const XmlKey& key);

/// True iff `tree` satisfies every key in `keys`.
bool SatisfiesAll(const Tree& tree, const std::vector<XmlKey>& keys);

/// Collects violations across a key set, tagged by key index.
struct TaggedViolation {
  size_t key_index;
  KeyViolation violation;
};
std::vector<TaggedViolation> CheckAll(const Tree& tree,
                                      const std::vector<XmlKey>& keys);

/// Observability counters of an indexed CheckAll run (how much path work
/// the sharing avoided and how the fan-out partitioned it).
struct CheckStats {
  size_t context_sets = 0;  ///< distinct context paths evaluated
  size_t target_sets = 0;   ///< distinct (context set, target path) evals
  size_t contexts = 0;      ///< total context nodes checked (over all keys)
  size_t tasks = 0;         ///< (key, context-partition) work items
};

/// Options of the indexed CheckAll path.
struct CheckOptions {
  /// Worker pool for the per-(key, context-partition) fan-out; nullptr
  /// runs sequentially. Violations are identical and identically ordered
  /// either way: every work item writes to its own slot and the slots are
  /// merged in (key, context) order, never in completion order.
  ThreadPool* pool = nullptr;
  /// Context nodes per work item (the fan-out grain).
  size_t contexts_per_task = 64;
  /// Filled with sharing/fan-out counters when non-null.
  CheckStats* stats = nullptr;
};

/// Indexed CheckKey: identical violations to CheckKey(tree, key) (the
/// index-off ablation baseline), with context/target evaluation running
/// set-at-a-time against the index and value tuples compared as interned
/// ids instead of string vectors.
std::vector<KeyViolation> CheckKey(const TreeIndex& index, const XmlKey& key);

/// One iteration of the indexed CheckKey loop: checks `key` under the
/// single context node `ctx` (missing-attribute violations in key-attribute
/// order, then duplicate-tuple violations in target document order). The
/// delta plane's localized re-check primitive: concatenating the results
/// over a key's context nodes in document order reproduces
/// CheckKey(index, key) exactly.
std::vector<KeyViolation> CheckKeyAtContext(const TreeIndex& index,
                                            const XmlKey& key, NodeId ctx);

/// Indexed Satisfies / SatisfiesAll (same verdicts as the tree overloads).
bool Satisfies(const TreeIndex& index, const XmlKey& key);
bool SatisfiesAll(const TreeIndex& index, const std::vector<XmlKey>& keys);

/// Indexed CheckAll: shares context evaluation across keys with equal
/// context paths (and target evaluation across keys with equal context
/// and target paths), then checks per (key, context-partition) — in
/// parallel when `options.pool` is set. Output is identical to
/// CheckAll(tree, keys), including order.
std::vector<TaggedViolation> CheckAll(const TreeIndex& index,
                                      const std::vector<XmlKey>& keys,
                                      const CheckOptions& options = {});

}  // namespace xmlprop

#endif  // XMLPROP_KEYS_SATISFACTION_H_
