#ifndef XMLPROP_KEYS_SATISFACTION_H_
#define XMLPROP_KEYS_SATISFACTION_H_

#include <string>
#include <vector>

#include "keys/xml_key.h"
#include "xml/tree.h"

namespace xmlprop {

/// One witness that a tree violates a key (Definition 2.1).
struct KeyViolation {
  enum class Kind {
    /// A target node lacks one of the key attributes (condition 1).
    kMissingAttribute,
    /// Two distinct target nodes agree on all key attribute values
    /// (condition 2).
    kDuplicateValues,
  };

  Kind kind = Kind::kMissingAttribute;
  /// The context node under which the violation occurs.
  NodeId context = kInvalidNode;
  /// The offending target node(s); node2 is set only for kDuplicateValues.
  NodeId node1 = kInvalidNode;
  NodeId node2 = kInvalidNode;
  /// The missing attribute for kMissingAttribute; empty otherwise.
  std::string attribute;

  /// Human-readable description referencing node ids and paths.
  std::string Describe(const Tree& tree, const XmlKey& key) const;
};

/// Returns every violation of `key` in `tree` (empty = satisfied).
/// Runs in time O(|tree| + targets·attrs) per context node.
std::vector<KeyViolation> CheckKey(const Tree& tree, const XmlKey& key);

/// True iff `tree` satisfies `key` (short-circuiting CheckKey).
bool Satisfies(const Tree& tree, const XmlKey& key);

/// True iff `tree` satisfies every key in `keys`.
bool SatisfiesAll(const Tree& tree, const std::vector<XmlKey>& keys);

/// Collects violations across a key set, tagged by key index.
struct TaggedViolation {
  size_t key_index;
  KeyViolation violation;
};
std::vector<TaggedViolation> CheckAll(const Tree& tree,
                                      const std::vector<XmlKey>& keys);

}  // namespace xmlprop

#endif  // XMLPROP_KEYS_SATISFACTION_H_
