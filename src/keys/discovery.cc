#include "keys/discovery.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "keys/implication.h"
#include "keys/satisfaction.h"

namespace xmlprop {

namespace {

// All simple label paths of length 1..max_len starting below `from`
// (label steps only, no attributes), deduplicated.
void CollectRelativePaths(const Tree& tree, NodeId from, size_t max_len,
                          std::set<std::vector<std::string>>* out) {
  struct Frame {
    NodeId node;
    std::vector<std::string> path;
  };
  std::vector<Frame> stack = {{from, {}}};
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (frame.path.size() >= max_len) continue;
    for (NodeId child : tree.node(frame.node).children) {
      if (tree.node(child).kind != NodeKind::kElement) continue;
      std::vector<std::string> extended = frame.path;
      extended.push_back(tree.node(child).label);
      out->insert(extended);
      stack.push_back({child, std::move(extended)});
    }
  }
}

PathExpr PathFromLabels(const std::vector<std::string>& labels) {
  std::vector<PathAtom> atoms;
  atoms.reserve(labels.size());
  for (const std::string& l : labels) atoms.push_back(PathAtom::Label(l));
  return PathExpr::FromAtoms(std::move(atoms));
}

// Attribute names present on every node of `targets` (the only
// attributes a satisfiable key may use — Definition 2.1 condition 1).
std::vector<std::string> CommonAttributes(const Tree& tree,
                                          const std::vector<NodeId>& targets) {
  std::vector<std::string> common;
  bool first = true;
  for (NodeId t : targets) {
    std::set<std::string> here;
    for (NodeId attr : tree.node(t).attributes) {
      here.insert(tree.node(attr).label);
    }
    if (first) {
      common.assign(here.begin(), here.end());
      first = false;
    } else {
      common.erase(std::remove_if(common.begin(), common.end(),
                                  [&](const std::string& a) {
                                    return here.find(a) == here.end();
                                  }),
                   common.end());
    }
    if (common.empty()) break;
  }
  return common;
}

// All subsets of `attrs` with size in [1, max_size], smallest first.
std::vector<std::vector<std::string>> AttributeSubsets(
    const std::vector<std::string>& attrs, size_t max_size) {
  std::vector<std::vector<std::string>> subsets;
  const size_t n = attrs.size();
  if (n > 20) return subsets;  // degenerate documents; give up gracefully
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    std::vector<std::string> subset;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) subset.push_back(attrs[i]);
    }
    if (subset.size() <= max_size) subsets.push_back(std::move(subset));
  }
  std::stable_sort(subsets.begin(), subsets.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() < b.size();
                   });
  return subsets;
}

}  // namespace

Result<std::vector<DiscoveredKey>> DiscoverKeys(
    const Tree& tree, const DiscoveryOptions& options) {
  // Candidate contexts: ε plus //L for every element label.
  std::set<std::string> labels;
  for (NodeId n : tree.DescendantsOrSelf(tree.root())) {
    if (n != tree.root()) labels.insert(tree.node(n).label);
  }
  struct ContextCand {
    PathExpr path;
    std::vector<NodeId> nodes;
  };
  std::vector<ContextCand> contexts;
  contexts.push_back({PathExpr(), {tree.root()}});
  for (const std::string& label : labels) {
    XMLPROP_ASSIGN_OR_RETURN(
        PathExpr p, PathExpr::Parse("//" + label));
    std::vector<NodeId> nodes = p.EvalFromRoot(tree);
    if (!nodes.empty()) contexts.push_back({std::move(p), std::move(nodes)});
  }

  std::vector<DiscoveredKey> discovered;
  size_t candidates_examined = 0;

  for (const ContextCand& ctx : contexts) {
    // Target candidates: relative simple paths under the context nodes;
    // for the root context also //L (the paper's absolute-key idiom).
    std::set<std::vector<std::string>> rel_paths;
    for (NodeId n : ctx.nodes) {
      CollectRelativePaths(tree, n, options.max_target_length, &rel_paths);
    }
    std::vector<PathExpr> targets;
    for (const auto& labels_path : rel_paths) {
      targets.push_back(PathFromLabels(labels_path));
    }
    if (ctx.path.IsEpsilon()) {
      for (const std::string& label : labels) {
        XMLPROP_ASSIGN_OR_RETURN(PathExpr p,
                                 PathExpr::Parse("//" + label));
        targets.push_back(std::move(p));
      }
    }

    for (const PathExpr& target : targets) {
      if (++candidates_examined > options.max_candidates) {
        return Status::InvalidArgument(
            "key discovery exceeded max_candidates=" +
            std::to_string(options.max_candidates) +
            "; raise the limit or tighten the bounds");
      }
      // Gather all targets (for evidence counts and common attributes).
      std::vector<NodeId> all_targets;
      for (NodeId n : ctx.nodes) {
        std::vector<NodeId> t = target.Eval(tree, n);
        all_targets.insert(all_targets.end(), t.begin(), t.end());
      }
      if (all_targets.size() < std::max<size_t>(options.min_targets, 1)) {
        continue;
      }

      // Try ∅ first (strongest), then minimal attribute sets.
      std::vector<std::vector<std::string>> attr_sets = {{}};
      for (auto& s : AttributeSubsets(CommonAttributes(tree, all_targets),
                                      options.max_attributes)) {
        attr_sets.push_back(std::move(s));
      }
      std::vector<std::vector<std::string>> kept;
      for (const std::vector<std::string>& attrs : attr_sets) {
        // Skip supersets of already-kept sets (non-minimal).
        bool dominated = false;
        for (const auto& k : kept) {
          dominated = std::includes(attrs.begin(), attrs.end(), k.begin(),
                                    k.end());
          if (dominated) break;
        }
        if (dominated) continue;
        XmlKey key("", ctx.path, target, attrs);
        if (Satisfies(tree, key)) {
          kept.push_back(attrs);
          DiscoveredKey dk;
          dk.key = std::move(key);
          dk.context_count = ctx.nodes.size();
          dk.target_count = all_targets.size();
          discovered.push_back(std::move(dk));
        }
      }
    }
  }

  if (options.prune_implied) {
    // Drop keys implied by the remaining ones (full Def. 2.1 semantics).
    std::vector<DiscoveredKey> reduced;
    for (size_t i = 0; i < discovered.size(); ++i) {
      std::vector<XmlKey> others;
      for (size_t j = 0; j < discovered.size(); ++j) {
        if (j == i) continue;
        // Keys already pruned do not count as support.
        bool pruned = true;
        for (const DiscoveredKey& r : reduced) {
          if (r.key == discovered[j].key) pruned = false;
        }
        if (j > i || !pruned) others.push_back(discovered[j].key);
      }
      if (!Implies(others, discovered[i].key)) {
        reduced.push_back(discovered[i]);
      }
    }
    discovered = std::move(reduced);
  }

  // Name the keys deterministically.
  for (size_t i = 0; i < discovered.size(); ++i) {
    discovered[i].key = XmlKey("D" + std::to_string(i + 1),
                               discovered[i].key.context(),
                               discovered[i].key.target(),
                               discovered[i].key.attributes());
  }
  return discovered;
}

}  // namespace xmlprop
