#ifndef XMLPROP_KEYS_DELTA_H_
#define XMLPROP_KEYS_DELTA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "keys/satisfaction.h"
#include "keys/xml_key.h"
#include "xml/tree.h"
#include "xml/tree_index.h"

namespace xmlprop {

/// Summary of one structural edit applied through DeltaDoc: the patched
/// Euler range and the localized re-check it triggered.
struct EditDelta {
  /// Root of the inserted (new id) or deleted (now detached) subtree.
  NodeId subtree_root = kInvalidNode;
  /// The dirty Euler range [dirty_begin, dirty_end): the pre-order slots
  /// the edit occupied (insert: of the new elements; delete: of the
  /// removed ones, in pre-edit coordinates).
  int32_t dirty_begin = 0;
  int32_t dirty_end = 0;
  size_t elements_added = 0;
  size_t elements_removed = 0;

  /// Live (key, context) pairs after the edit, and how many of them the
  /// dirty-range intersection test actually re-checked. The ratio is the
  /// saving over a full re-check.
  size_t pairs_total = 0;
  size_t pairs_rechecked = 0;

  /// Violations the edit introduced / retired, relative to the cached
  /// verdicts before the edit. Ordered per key index ascending; within a
  /// key, contexts in document order; within a context, check order.
  std::vector<TaggedViolation> added;
  std::vector<TaggedViolation> removed;
};

/// A mutable checked document — the incremental plane (DESIGN.md
/// "Streaming + incremental plane"). DeltaDoc owns a Tree, a TreeIndex
/// over it, and per-(key, context) violation verdicts. Subtree inserts
/// and deletes patch the index columns in place (an Euler shift of the
/// suffix, per-label list splices, relocated CSR runs) instead of
/// rebuilding, and re-run key satisfaction only for (key, context) pairs
/// whose target sets can intersect the dirty Euler range:
///
///   - a context node strictly outside the edited subtree reaches into it
///     only if it is an ancestor of the edit site (target paths navigate
///     downward), and only matters if some edited element's label word
///     actually matches the key's target path from that context;
///   - context nodes inside an inserted subtree are new and are checked
///     from scratch; ones inside a deleted subtree just drop their cache.
///
/// Every other (key, context) verdict provably cannot change, so after
/// each edit Violations() equals a full CheckAll over the current
/// document — the differential property the delta tests enforce — at a
/// cost proportional to the edit, not the document.
class DeltaDoc {
 public:
  /// Takes ownership of `tree` and runs one full check to seed the
  /// per-context verdict cache. `keys` may be empty (pure structural
  /// edits, no checking).
  DeltaDoc(Tree tree, std::vector<XmlKey> keys);

  // The index borrows the tree's columns and the cache holds NodeIds;
  // neither survives a copy of the underlying tree.
  DeltaDoc(const DeltaDoc&) = delete;
  DeltaDoc& operator=(const DeltaDoc&) = delete;

  const Tree& tree() const { return tree_; }
  const TreeIndex& index() const { return index_; }
  const std::vector<XmlKey>& keys() const { return keys_; }

  /// Grafts a deep copy of `fragment`'s subtree at `fragment_root` as the
  /// last child of `parent` (an attached element), patches the index, and
  /// re-checks the affected (key, context) pairs. Fails without side
  /// effects if `parent` is invalid or detached.
  Result<EditDelta> InsertSubtree(NodeId parent, const Tree& fragment,
                                  NodeId fragment_root);
  Result<EditDelta> InsertSubtree(NodeId parent, const Tree& fragment) {
    return InsertSubtree(parent, fragment, fragment.root());
  }

  /// Detaches the subtree rooted at `node` (an attached element, not the
  /// root), patches the index, and re-checks the affected pairs. The rows
  /// stay allocated (NodeIds never recycle) but become unreachable.
  Result<EditDelta> DeleteSubtree(NodeId node);

  /// Current violations, identical in content and order to
  /// CheckAll(tree(), keys()) over the current document.
  std::vector<TaggedViolation> Violations() const;
  size_t violation_count() const;

 private:
  struct EditSite;

  // Captures everything the re-check needs about an edit: the attachment
  // parent, its ancestor chain, and the edited elements with their full
  // root-to-element label words. Built while the subtree is attached.
  EditSite MakeSite(NodeId parent, std::vector<NodeId> elems) const;

  // Shared re-check driver: walks the ancestor chain of the edit site and
  // the edited elements' label words, re-checks the intersecting pairs,
  // and fills the delta's added/removed/pair counters.
  void RecheckAfterEdit(const EditSite& site, bool deleting, EditDelta* out);

  // Re-checks one (key, context) pair against the patched index, diffs it
  // against the cached verdict, and updates cache + delta.
  void RecheckContext(size_t key_index, NodeId ctx, EditDelta* out);

  // Context nodes of `key` in document order (the indexed evaluator
  // restricted to elements).
  std::vector<NodeId> ContextNodes(const XmlKey& key) const;

  Tree tree_;
  std::vector<XmlKey> keys_;
  TreeIndex index_;

  // Per key: context node -> its current violations (only contexts with
  // at least one violation are present).
  std::vector<std::unordered_map<NodeId, std::vector<KeyViolation>>> caches_;
  size_t pair_count_ = 0;  // live (key, context) pairs

  // Attribute rows per interned value, so deletes know when a distinct
  // value goes out of use (and inserts when one is genuinely new).
  std::vector<uint32_t> value_refs_;
};

}  // namespace xmlprop

#endif  // XMLPROP_KEYS_DELTA_H_
