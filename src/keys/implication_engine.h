#ifndef XMLPROP_KEYS_IMPLICATION_ENGINE_H_
#define XMLPROP_KEYS_IMPLICATION_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "keys/implication.h"
#include "keys/xml_key.h"

namespace xmlprop {

/// Interned identifier of a normalized path-atom sequence (or of a sorted
/// attribute set). Ids are dense, starting at 0; equal sequences always
/// intern to the same id within one engine.
using InternId = uint32_t;

/// Memo state of the (context, target, attribute-set) identification
/// recursion. Unlike the per-call memo of the free ImpliesIdentification
/// (which keys on S-emptiness, valid only while S is fixed), the
/// persistent engine memo keys on the *full* interned attribute set so
/// entries stay sound across queries with different S.
struct IdentState {
  InternId context;
  InternId target;
  InternId attrs;

  friend bool operator==(const IdentState& a, const IdentState& b) {
    return a.context == b.context && a.target == b.target &&
           a.attrs == b.attrs;
  }
};

struct IdentStateHash {
  size_t operator()(const IdentState& s) const {
    uint64_t h = (uint64_t{s.context} << 32) ^ (uint64_t{s.target} << 16) ^
                 uint64_t{s.attrs};
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }
};

/// A private memo overlay used by one worker during a parallel batch.
/// Workers read the engine's global caches (frozen for the duration of
/// the batch) and write only here; the engine merges shards back after
/// the join. Verdicts are pure functions of (Σ, query), so the merge
/// order cannot change any result — it only decides which duplicate
/// entry wins, and duplicates are equal.
struct MemoShard {
  std::unordered_map<uint64_t, char> contains;  ///< (super id, sub id)
  std::unordered_map<IdentState, char, IdentStateHash> ident;
  std::unordered_map<uint64_t, char> exist;  ///< (path id, attrs id)

  size_t ident_queries = 0, ident_hits = 0;
  size_t contains_queries = 0, contains_hits = 0;
  size_t exist_queries = 0, exist_hits = 0;
};

/// Tuning knobs of an ImplicationEngine.
struct EngineOptions {
  /// Master switch for the verdict caches (the engine-off ablation
  /// still gets split tables and batching, but recomputes verdicts).
  bool caching = true;
  /// Worker threads for ParallelRun; 0 = hardware concurrency, 1 =
  /// never spawn a pool (fully sequential).
  size_t parallelism = 0;
  /// Minimum batch size before a ParallelRun actually fans out.
  size_t parallel_threshold = 8;
};

/// A persistent, Σ-scoped implication engine (DESIGN.md §4, "Implication
/// engine"): owns one key set for a session and turns the per-call memo
/// tables of the free implication functions into shared compute state
/// that survives across queries — the query-engine playbook of reusable
/// caches applied to the paper's hot path.
///
///   - Path interning: every normalized atom sequence (query contexts and
///     targets, plus the composition intermediates the identification
///     recursion creates) gets a dense id; PathContains verdicts are
///     cached in a flat hash map keyed by the id pair.
///   - Split tables: each Σ-key's witness splits T ≡ T1/T2 — the
///     (cut1, cut2) candidates FindWitness enumerates — are materialized
///     once at construction as interned C/T1 and T2 sequences, so the
///     per-query witness scan is pure cache lookups after warm-up.
///   - Persistent identification memo: the recursion's states are cached
///     on (context id, target id, attribute-set id) for the engine's
///     lifetime instead of being rebuilt per call.
///   - Parallel fan-out: independent queries can be evaluated on a small
///     thread pool; each worker writes to a private MemoShard merged on
///     join, so the caches never race and results are deterministic.
///
/// Verdicts are identical to the free functions' (property-tested): the
/// caches only memoize a pure function of (Σ, query).
///
/// Thread-safety contract: the engine is externally synchronized — call
/// it from one thread at a time. During ParallelRun the global caches are
/// frozen (read-only) and workers write to shards; the interner, which
/// must stay globally consistent, is the one mutex-protected structure.
class ImplicationEngine {
 public:
  using Options = EngineOptions;

  /// Monotonic counters since construction (cache hits/misses and
  /// parallel fan-out accounting; exposed to PropagationStats).
  struct Counters {
    size_t ident_queries = 0, ident_hits = 0;
    size_t contains_queries = 0, contains_hits = 0;
    size_t exist_queries = 0, exist_hits = 0;
    size_t parallel_batches = 0, parallel_tasks = 0;

    size_t hits() const { return ident_hits + contains_hits + exist_hits; }
    size_t queries() const {
      return ident_queries + contains_queries + exist_queries;
    }
    size_t misses() const { return queries() - hits(); }
  };

  explicit ImplicationEngine(std::vector<XmlKey> sigma,
                             const Options& options = Options());
  ~ImplicationEngine();

  ImplicationEngine(const ImplicationEngine&) = delete;
  ImplicationEngine& operator=(const ImplicationEngine&) = delete;

  const std::vector<XmlKey>& sigma() const { return sigma_; }
  const Options& options() const { return options_; }
  const Counters& counters() const { return counters_; }
  /// Worker slots a ParallelRun may use (1 when no pool was created).
  size_t parallelism() const;

  /// The engine's worker pool, for callers that batch their own
  /// independent work (e.g. Minimize's per-FD checks); nullptr when the
  /// engine runs single-threaded.
  ThreadPool* pool() const { return pool_.get(); }

  /// Cached equivalents of the free functions (identical verdicts).
  /// `shard` routes cache writes to a worker-private overlay during
  /// parallel batches; pass nullptr (the default) outside of one.
  bool ImpliesIdentification(const XmlKey& phi, MemoShard* shard = nullptr);
  bool AttributesExist(const PathExpr& node_path,
                       const std::vector<std::string>& attrs,
                       MemoShard* shard = nullptr);
  bool Implies(const XmlKey& phi, MemoShard* shard = nullptr);

  /// Evaluates `queries` (independently) and returns their verdicts in
  /// input order, fanning out over the pool when the batch is large
  /// enough. Deterministic: equal to calling ImpliesIdentification on
  /// each query in order.
  std::vector<char> ImpliesIdentificationBatch(
      const std::vector<XmlKey>& queries);

  /// Runs body(task, shard) for every task in [0, n) — sequentially with
  /// shard == nullptr below the parallel threshold, else on the pool with
  /// one private shard per worker, merged (in worker order) on join.
  /// Tasks must be independent and may only touch the engine through the
  /// shard-taking entry points above.
  void ParallelRun(size_t n,
                   const std::function<void(size_t task, MemoShard* shard)>&
                       body);

 private:
  struct KeySplit;
  struct KeyInfo;

  InternId InternAtoms(const std::vector<PathAtom>& atoms);
  InternId InternAttrs(const std::vector<std::string>& attrs);

  bool CachedContains(InternId super_id, const PathExpr& super,
                      InternId sub_id, const PathExpr& sub, MemoShard* shard);
  bool WitnessExists(const PathExpr& context, InternId context_id,
                     const PathExpr& target, InternId target_id,
                     const std::vector<std::string>& attrs, MemoShard* shard);
  bool IdentRec(const PathExpr& context, InternId context_id,
                const PathExpr& target, InternId target_id,
                const std::vector<std::string>& attrs, InternId attrs_id,
                MemoShard* shard);
  void MergeShard(const MemoShard& shard);

  std::vector<XmlKey> sigma_;
  Options options_;
  std::vector<KeyInfo> key_info_;
  std::unique_ptr<ThreadPool> pool_;

  // Interners: the one piece of state workers mutate during a batch,
  // guarded by intern_mu_ (ids must be globally consistent or the
  // id-keyed caches would be meaningless).
  std::mutex intern_mu_;
  std::unordered_map<std::string, InternId> path_ids_;
  std::unordered_map<std::string, InternId> attrs_ids_;
  InternId empty_attrs_id_ = 0;  ///< id of S = ∅, the recursion's workhorse

  // Global verdict caches. Written only by the owner thread outside of
  // ParallelRun; frozen (read-only) while a batch is in flight.
  std::unordered_map<uint64_t, char> contains_cache_;
  std::unordered_map<IdentState, char, IdentStateHash> ident_cache_;
  std::unordered_map<uint64_t, char> exist_cache_;

  Counters counters_;
};

/// A polymorphic handle the propagation/cover algorithms run against:
/// either a persistent engine (with an optional worker shard, during
/// parallel fan-out) or a bare Σ (the engine-off ablation path, byte-for-
/// byte the seed behavior). Keeps the algorithm bodies oblivious to which
/// mode they run in.
class KeyOracle {
 public:
  /// Engine-off: free-function implication over `sigma`.
  explicit KeyOracle(const std::vector<XmlKey>& sigma) : sigma_(&sigma) {}
  /// Engine-on; `shard` non-null only inside an engine ParallelRun task.
  explicit KeyOracle(ImplicationEngine& engine, MemoShard* shard = nullptr)
      : engine_(&engine), shard_(shard) {}

  const std::vector<XmlKey>& keys() const {
    return engine_ != nullptr ? engine_->sigma() : *sigma_;
  }
  ImplicationEngine* engine() const { return engine_; }
  MemoShard* shard() const { return shard_; }

  bool ImpliesIdentification(const XmlKey& phi) const {
    return engine_ != nullptr ? engine_->ImpliesIdentification(phi, shard_)
                              : xmlprop::ImpliesIdentification(*sigma_, phi);
  }
  bool AttributesExist(const PathExpr& node_path,
                       const std::vector<std::string>& attrs) const {
    return engine_ != nullptr
               ? engine_->AttributesExist(node_path, attrs, shard_)
               : xmlprop::AttributesExist(keys(), node_path, attrs);
  }

 private:
  const std::vector<XmlKey>* sigma_ = nullptr;
  ImplicationEngine* engine_ = nullptr;
  MemoShard* shard_ = nullptr;
};

}  // namespace xmlprop

#endif  // XMLPROP_KEYS_IMPLICATION_ENGINE_H_
