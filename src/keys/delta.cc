#include "keys/delta.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace xmlprop {

namespace {

// True iff `id` is reachable from the root via parent links (i.e. not a
// row detached by an earlier DeleteSubtree).
bool Attached(const Tree& tree, NodeId id) {
  const NodeId* parent = tree.parent_data();
  for (NodeId a = id; a != tree.root();) {
    const NodeId up = parent[static_cast<size_t>(a)];
    if (up == kInvalidNode) return false;
    a = up;
  }
  return true;
}

bool SameViolation(const KeyViolation& a, const KeyViolation& b) {
  return a.kind == b.kind && a.context == b.context && a.node1 == b.node1 &&
         a.node2 == b.node2 && a.attribute == b.attribute;
}

}  // namespace

struct DeltaDoc::EditSite {
  NodeId parent = kInvalidNode;
  std::vector<NodeId> chain;  // root .. parent, top-down
  std::vector<std::string> parent_word;  // labels root -> parent (excl. root)
  std::vector<NodeId> elems;  // edited elements, document order
  std::vector<std::vector<std::string>> words;  // full word per elems[i]
};

DeltaDoc::EditSite DeltaDoc::MakeSite(NodeId parent,
                                      std::vector<NodeId> elems) const {
  EditSite site;
  site.parent = parent;
  site.elems = std::move(elems);
  const NodeId* parent_of = tree_.parent_data();
  for (NodeId a = parent;; a = parent_of[static_cast<size_t>(a)]) {
    site.chain.push_back(a);
    if (a == tree_.root()) break;
  }
  std::reverse(site.chain.begin(), site.chain.end());
  site.parent_word = tree_.PathLabelsFromRoot(parent);

  // Edited elements come parents-before-children, so each word extends
  // an already computed one.
  std::unordered_map<NodeId, size_t> pos;
  pos.reserve(site.elems.size());
  for (size_t i = 0; i < site.elems.size(); ++i) pos.emplace(site.elems[i], i);
  site.words.resize(site.elems.size());
  for (size_t i = 0; i < site.elems.size(); ++i) {
    const NodeId m = site.elems[i];
    const NodeId up = parent_of[static_cast<size_t>(m)];
    const std::vector<std::string>& base =
        up == parent ? site.parent_word : site.words[pos.at(up)];
    site.words[i] = base;
    site.words[i].emplace_back(tree_.label_text(tree_.label_id_of(m)));
  }
  return site;
}

DeltaDoc::DeltaDoc(Tree tree, std::vector<XmlKey> keys)
    : tree_(std::move(tree)), keys_(std::move(keys)), index_(tree_) {
  obs::Span span("delta.seed");
  index_.AdoptOwnedEuler();
  // Reference counts for the index's distinct-value tally, which counts
  // values reachable through attributes only (text nodes may share pool
  // entries without contributing).
  value_refs_.assign(tree_.value_count(), 0);
  const ValueId* vid = tree_.value_id_data();
  const NodeKind* kind = tree_.kind_data();
  for (size_t i = 0; i < tree_.size(); ++i) {
    if (kind[i] == NodeKind::kAttribute && vid[i] >= 0) {
      ++value_refs_[static_cast<size_t>(vid[i])];
    }
  }
  // One full check seeds the per-context verdict cache.
  caches_.resize(keys_.size());
  for (size_t k = 0; k < keys_.size(); ++k) {
    for (NodeId ctx : ContextNodes(keys_[k])) {
      ++pair_count_;
      std::vector<KeyViolation> v = CheckKeyAtContext(index_, keys_[k], ctx);
      if (!v.empty()) caches_[k].emplace(ctx, std::move(v));
    }
  }
}

std::vector<NodeId> DeltaDoc::ContextNodes(const XmlKey& key) const {
  std::vector<NodeId> out = key.context().EvalFromRoot(index_);
  const NodeKind* kind = tree_.kind_data();
  out.erase(std::remove_if(out.begin(), out.end(),
                           [kind](NodeId n) {
                             return kind[static_cast<size_t>(n)] !=
                                    NodeKind::kElement;
                           }),
            out.end());
  return out;
}

Result<EditDelta> DeltaDoc::InsertSubtree(NodeId parent, const Tree& fragment,
                                          NodeId fragment_root) {
  if (!tree_.IsValid(parent) ||
      tree_.kind_data()[static_cast<size_t>(parent)] != NodeKind::kElement) {
    return Status::InvalidArgument("insert parent must be an element");
  }
  if (!Attached(tree_, parent)) {
    return Status::InvalidArgument("insert parent is detached");
  }

  EditDelta out;
  std::vector<NodeId> new_elems;
  NodeId child = kInvalidNode;
  {
    obs::Span span("delta.patch");
    const NodeId first_new = static_cast<NodeId>(tree_.size());
    Result<NodeId> grafted = tree_.Graft(parent, fragment, fragment_root);
    if (!grafted.ok()) return grafted.status();
    child = grafted.value();
    index_.RefreshColumns();

    // New rows were appended in document order; pick out the elements.
    const NodeKind* kind = tree_.kind_data();
    for (NodeId i = first_new; i < static_cast<NodeId>(tree_.size()); ++i) {
      if (kind[static_cast<size_t>(i)] == NodeKind::kElement) {
        new_elems.push_back(i);
      }
    }
    const int32_t k = static_cast<int32_t>(new_elems.size());
    std::vector<int32_t>& pre = index_.own_pre_;
    std::vector<int32_t>& pre_end = index_.own_pre_end_;
    std::vector<NodeId>& by_pre = index_.own_elements_by_pre_;
    const int32_t insert_at = pre_end[static_cast<size_t>(parent)];

    // Euler shift of the suffix: every element at or after the insertion
    // point moves k slots right; ancestors-or-self of the graft parent
    // (whose intervals gain the new subtree) extend by k. All other
    // intervals are disjoint from the dirty range and stay put.
    for (size_t p = static_cast<size_t>(insert_at); p < by_pre.size(); ++p) {
      const size_t e = static_cast<size_t>(by_pre[p]);
      pre[e] += k;
      pre_end[e] += k;
    }
    const NodeId* parent_of = tree_.parent_data();
    for (NodeId a = parent;; a = parent_of[static_cast<size_t>(a)]) {
      pre_end[static_cast<size_t>(a)] += k;
      if (a == tree_.root()) break;
    }

    // New rows: pre by rank, pre_end by a reverse sweep (graft rows come
    // parents-before-children).
    pre.resize(tree_.size(), -1);
    pre_end.resize(tree_.size(), -1);
    for (int32_t r = 0; r < k; ++r) {
      const size_t e = static_cast<size_t>(new_elems[static_cast<size_t>(r)]);
      pre[e] = insert_at + r;
      pre_end[e] = insert_at + r + 1;
    }
    for (int32_t r = k - 1; r > 0; --r) {
      const size_t e = static_cast<size_t>(new_elems[static_cast<size_t>(r)]);
      const NodeId up = parent_of[e];
      if (up >= first_new) {
        pre_end[static_cast<size_t>(up)] =
            std::max(pre_end[static_cast<size_t>(up)], pre_end[e]);
      }
    }
    by_pre.insert(by_pre.begin() + insert_at, new_elems.begin(),
                  new_elems.end());
    index_.pre_ = pre.data();
    index_.pre_end_ = pre_end.data();

    // Per-label lists: the new elements form one contiguous pre run per
    // label — a single range-insert each, at the lower_bound position.
    index_.elements_with_label_.resize(tree_.label_count());
    {
      std::unordered_map<LabelId, std::vector<NodeId>> by_label;
      for (NodeId e : new_elems) {
        by_label[index_.label_of_[static_cast<size_t>(e)]].push_back(e);
      }
      for (auto& [label, elems] : by_label) {
        std::vector<NodeId>& list =
            index_.elements_with_label_[static_cast<size_t>(label)];
        auto it = std::lower_bound(
            list.begin(), list.end(), insert_at,
            [&pre](NodeId e, int32_t p) {
              return pre[static_cast<size_t>(e)] < p;
            });
        list.insert(it, elems.begin(), elems.end());
      }
    }

    // CSR runs of the new elements, appended at the array tails.
    index_.bucket_span_.resize(tree_.size());
    index_.attr_span_.resize(tree_.size());
    {
      std::vector<NodeId> scratch;
      for (NodeId e : new_elems) index_.AppendNodeRuns(e, &scratch);
    }

    // The graft parent gained one last child: relocate the affected run
    // to the tail (the old slots become dead space — compacting would
    // mean rewriting every other node's spans, defeating the point).
    {
      const LabelId clabel = index_.label_of_[static_cast<size_t>(child)];
      TreeIndex::SpanRef& bspan =
          index_.bucket_span_[static_cast<size_t>(parent)];
      const uint32_t lo = bspan.begin;
      const uint32_t hi = bspan.begin + bspan.count;
      uint32_t pos = hi;
      bool found = false;
      for (uint32_t b = lo; b < hi; ++b) {
        if (index_.bucket_array_[b].label == clabel) {
          pos = b;
          found = true;
          break;
        }
        if (index_.bucket_array_[b].label > clabel) {
          pos = b;
          break;
        }
      }
      if (found) {
        // Existing bucket: its child run grows by one at the end (the
        // grafted root is the parent's last child in document order).
        TreeIndex::Bucket& bk = index_.bucket_array_[pos];
        const uint32_t nb = static_cast<uint32_t>(index_.child_array_.size());
        index_.child_array_.reserve(index_.child_array_.size() +
                                    (bk.end - bk.begin) + 1);
        for (uint32_t c = bk.begin; c < bk.end; ++c) {
          index_.child_array_.push_back(index_.child_array_[c]);
        }
        index_.child_array_.push_back(child);
        bk.begin = nb;
        bk.end = static_cast<uint32_t>(index_.child_array_.size());
      } else {
        // New label among the parent's children: relocate the whole
        // bucket run with a singleton bucket spliced at its sorted slot.
        const uint32_t cb = static_cast<uint32_t>(index_.child_array_.size());
        index_.child_array_.push_back(child);
        const uint32_t nb = static_cast<uint32_t>(index_.bucket_array_.size());
        index_.bucket_array_.reserve(nb + bspan.count + 1);
        for (uint32_t b = lo; b < hi; ++b) {
          if (b == pos) {
            index_.bucket_array_.push_back(
                TreeIndex::Bucket{clabel, cb, cb + 1});
          }
          index_.bucket_array_.push_back(index_.bucket_array_[b]);
        }
        if (pos == hi) {
          index_.bucket_array_.push_back(TreeIndex::Bucket{clabel, cb, cb + 1});
        }
        bspan.begin = nb;
        bspan.count += 1;
      }
    }

    // Interned-value reuse: only genuinely new attribute values bump the
    // distinct count.
    value_refs_.resize(tree_.value_count(), 0);
    const ValueId* vid = tree_.value_id_data();
    const NodeKind* row_kind = tree_.kind_data();
    for (NodeId i = first_new; i < static_cast<NodeId>(tree_.size()); ++i) {
      if (row_kind[static_cast<size_t>(i)] != NodeKind::kAttribute) continue;
      const ValueId v = vid[static_cast<size_t>(i)];
      if (v >= 0 && value_refs_[static_cast<size_t>(v)]++ == 0) {
        ++index_.value_count_;
      }
    }

    out.subtree_root = child;
    out.dirty_begin = insert_at;
    out.dirty_end = insert_at + k;
    out.elements_added = static_cast<size_t>(k);
  }

  const EditSite site = MakeSite(parent, std::move(new_elems));
  RecheckAfterEdit(site, /*deleting=*/false, &out);
  return out;
}

Result<EditDelta> DeltaDoc::DeleteSubtree(NodeId node) {
  if (!tree_.IsValid(node) ||
      tree_.kind_data()[static_cast<size_t>(node)] != NodeKind::kElement) {
    return Status::InvalidArgument("delete target must be an element");
  }
  if (node == tree_.root()) {
    return Status::InvalidArgument("cannot delete the document root");
  }
  if (!Attached(tree_, node)) {
    return Status::InvalidArgument("delete target is already detached");
  }

  std::vector<int32_t>& pre = index_.own_pre_;
  std::vector<int32_t>& pre_end = index_.own_pre_end_;
  std::vector<NodeId>& by_pre = index_.own_elements_by_pre_;
  const int32_t begin = pre[static_cast<size_t>(node)];
  const int32_t end = pre_end[static_cast<size_t>(node)];
  const int32_t k = end - begin;
  const NodeId parent = tree_.parent_data()[static_cast<size_t>(node)];

  // The doomed elements are exactly the dirty Euler slice; capture them
  // (and their label words) while still attached.
  std::vector<NodeId> doomed(by_pre.begin() + begin, by_pre.begin() + end);
  const EditSite site = MakeSite(parent, doomed);

  EditDelta out;
  out.subtree_root = node;
  out.dirty_begin = begin;
  out.dirty_end = end;
  out.elements_removed = static_cast<size_t>(k);
  {
    obs::Span span("delta.patch");
    const NodeId* first_attr = tree_.first_attr_data();
    const NodeId* next_sibling = tree_.next_sibling_data();
    const ValueId* vid = tree_.value_id_data();

    // Distinct-value bookkeeping before the rows go unreachable.
    for (NodeId e : doomed) {
      for (NodeId a = first_attr[static_cast<size_t>(e)]; a != kInvalidNode;
           a = next_sibling[static_cast<size_t>(a)]) {
        const ValueId v = vid[static_cast<size_t>(a)];
        if (v >= 0 && --value_refs_[static_cast<size_t>(v)] == 0) {
          --index_.value_count_;
        }
      }
    }

    // Per-label lists: within one label the doomed entries are a single
    // contiguous pre run — one range-erase each (old pre values).
    {
      std::vector<LabelId> labels;
      for (NodeId e : doomed) {
        labels.push_back(index_.label_of_[static_cast<size_t>(e)]);
      }
      std::sort(labels.begin(), labels.end());
      labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
      for (LabelId label : labels) {
        std::vector<NodeId>& list =
            index_.elements_with_label_[static_cast<size_t>(label)];
        const auto cmp = [&pre](NodeId e, int32_t p) {
          return pre[static_cast<size_t>(e)] < p;
        };
        auto lo = std::lower_bound(list.begin(), list.end(), begin, cmp);
        auto hi = std::lower_bound(lo, list.end(), end, cmp);
        list.erase(lo, hi);
      }
    }

    // Euler shift: close the gap.
    by_pre.erase(by_pre.begin() + begin, by_pre.begin() + end);
    for (size_t p = static_cast<size_t>(begin); p < by_pre.size(); ++p) {
      const size_t e = static_cast<size_t>(by_pre[p]);
      pre[e] -= k;
      pre_end[e] -= k;
    }
    const NodeId* parent_of = tree_.parent_data();
    for (NodeId a = parent;; a = parent_of[static_cast<size_t>(a)]) {
      pre_end[static_cast<size_t>(a)] -= k;
      if (a == tree_.root()) break;
    }

    // Remove `node` from its parent's bucket (in place: the run only
    // shrinks, so no relocation is needed).
    {
      const LabelId clabel = index_.label_of_[static_cast<size_t>(node)];
      TreeIndex::SpanRef& bspan =
          index_.bucket_span_[static_cast<size_t>(parent)];
      const uint32_t lo = bspan.begin;
      const uint32_t hi = bspan.begin + bspan.count;
      for (uint32_t b = lo; b < hi; ++b) {
        TreeIndex::Bucket& bk = index_.bucket_array_[b];
        if (bk.label != clabel) continue;
        for (uint32_t c = bk.begin; c < bk.end; ++c) {
          if (index_.child_array_[c] != node) continue;
          for (uint32_t m = c; m + 1 < bk.end; ++m) {
            index_.child_array_[m] = index_.child_array_[m + 1];
          }
          --bk.end;
          break;
        }
        if (bk.begin == bk.end) {
          for (uint32_t m = b; m + 1 < hi; ++m) {
            index_.bucket_array_[m] = index_.bucket_array_[m + 1];
          }
          --bspan.count;
        }
        break;
      }
    }

    // Zombie rows: dead Euler slots and empty spans, so a stale NodeId
    // queries to nothing rather than to garbage.
    for (NodeId e : doomed) {
      pre[static_cast<size_t>(e)] = -1;
      pre_end[static_cast<size_t>(e)] = -1;
      index_.bucket_span_[static_cast<size_t>(e)] = TreeIndex::SpanRef{};
      index_.attr_span_[static_cast<size_t>(e)] = TreeIndex::SpanRef{};
    }

    const Status detached = tree_.DetachSubtree(node);
    if (!detached.ok()) return detached;
  }

  RecheckAfterEdit(site, /*deleting=*/true, &out);
  return out;
}

void DeltaDoc::RecheckContext(size_t key_index, NodeId ctx, EditDelta* out) {
  ++out->pairs_rechecked;
  std::vector<KeyViolation> after = CheckKeyAtContext(index_, keys_[key_index], ctx);
  auto& cache = caches_[key_index];
  const auto it = cache.find(ctx);
  if (it != cache.end()) {
    const std::vector<KeyViolation>& before = it->second;
    for (const KeyViolation& v : after) {
      if (std::none_of(before.begin(), before.end(), [&v](const KeyViolation& b) {
            return SameViolation(v, b);
          })) {
        out->added.push_back(TaggedViolation{key_index, v});
      }
    }
    for (const KeyViolation& v : before) {
      if (std::none_of(after.begin(), after.end(), [&v](const KeyViolation& a) {
            return SameViolation(v, a);
          })) {
        out->removed.push_back(TaggedViolation{key_index, v});
      }
    }
  } else {
    for (const KeyViolation& v : after) {
      out->added.push_back(TaggedViolation{key_index, v});
    }
  }
  if (after.empty()) {
    if (it != cache.end()) cache.erase(it);
  } else if (it != cache.end()) {
    it->second = std::move(after);
  } else {
    cache.emplace(ctx, std::move(after));
  }
}

void DeltaDoc::RecheckAfterEdit(const EditSite& site, bool deleting,
                                EditDelta* out) {
  obs::Span span("delta.recheck");
  for (size_t k = 0; k < keys_.size(); ++k) {
    const XmlKey& key = keys_[k];

    // Ancestor-chain contexts: the only old contexts whose target sets
    // can reach the dirty range — and only those for which some edited
    // element's label word actually matches the target path.
    std::vector<std::string> prefix;
    prefix.reserve(site.parent_word.size());
    for (size_t i = 0; i < site.chain.size(); ++i) {
      if (i > 0) prefix.push_back(site.parent_word[i - 1]);
      if (!key.context().MatchesWord(prefix)) continue;
      bool reaches = false;
      for (const std::vector<std::string>& word : site.words) {
        const std::vector<std::string> sub(word.begin() + static_cast<long>(i),
                                           word.end());
        if (key.target().MatchesWord(sub)) {
          reaches = true;
          break;
        }
      }
      if (!reaches) continue;
      RecheckContext(k, site.chain[i], out);
    }

    // Contexts inside the edited subtree: new ones are checked from
    // scratch, deleted ones just drop their cached verdicts.
    for (size_t m = 0; m < site.elems.size(); ++m) {
      if (!key.context().MatchesWord(site.words[m])) continue;
      if (deleting) {
        --pair_count_;
        auto& cache = caches_[k];
        const auto it = cache.find(site.elems[m]);
        if (it != cache.end()) {
          for (const KeyViolation& v : it->second) {
            out->removed.push_back(TaggedViolation{k, v});
          }
          cache.erase(it);
        }
      } else {
        ++pair_count_;
        RecheckContext(k, site.elems[m], out);
      }
    }
  }
  out->pairs_total = pair_count_;

  obs::Count("incremental.edits");
  obs::Count("incremental.contexts_rechecked", out->pairs_rechecked);
  // Parts-per-million of live (key, context) pairs this edit re-checked —
  // the dirty-range saving over a full check.
  const int64_t ppm =
      pair_count_ == 0
          ? 0
          : static_cast<int64_t>(out->pairs_rechecked * 1000000 / pair_count_);
  obs::Gauge("incremental.recheck_ratio", ppm);
}

std::vector<TaggedViolation> DeltaDoc::Violations() const {
  std::vector<TaggedViolation> out;
  for (size_t k = 0; k < keys_.size(); ++k) {
    std::vector<std::pair<int32_t, const std::vector<KeyViolation>*>> ctxs;
    ctxs.reserve(caches_[k].size());
    for (const auto& [ctx, v] : caches_[k]) {
      ctxs.emplace_back(index_.pre(ctx), &v);
    }
    std::sort(ctxs.begin(), ctxs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [p, v] : ctxs) {
      for (const KeyViolation& viol : *v) {
        out.push_back(TaggedViolation{k, viol});
      }
    }
  }
  return out;
}

size_t DeltaDoc::violation_count() const {
  size_t n = 0;
  for (const auto& cache : caches_) {
    for (const auto& [ctx, v] : cache) n += v.size();
  }
  return n;
}

}  // namespace xmlprop
