#include "keys/xsd_import.h"

#include <map>

#include "common/str_util.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xmlprop {

namespace {

// The local part of a possibly-prefixed XML name ("xs:key" -> "key").
std::string_view LocalName(std::string_view name) {
  size_t colon = name.rfind(':');
  return colon == std::string_view::npos ? name : name.substr(colon + 1);
}

// Translates an XML Schema selector xpath (restricted subset) into the
// paper's path language: ".//a/b" -> "//a/b", "./a" -> "a", "a/b" -> "a/b".
Result<PathExpr> TranslateSelector(std::string_view xpath,
                                   const std::string& constraint) {
  std::string_view s = TrimWhitespace(xpath);
  if (s.find('|') != std::string_view::npos) {
    return Status::InvalidArgument(
        "constraint " + constraint +
        ": selector unions ('|') are outside the paper's path language");
  }
  std::string translated;
  if (StartsWith(s, ".//")) {
    translated = "//" + std::string(s.substr(3));
  } else if (StartsWith(s, "./")) {
    translated = std::string(s.substr(2));
  } else if (s == ".") {
    translated = "";
  } else {
    translated = std::string(s);
  }
  // Reject other axes / functions the subset does not carry.
  for (std::string_view bad : {"::", "..", "(", "["}) {
    if (translated.find(bad) != std::string::npos) {
      return Status::InvalidArgument("constraint " + constraint +
                                     ": unsupported xpath construct '" +
                                     std::string(bad) + "' in selector '" +
                                     std::string(xpath) + "'");
    }
  }
  Result<PathExpr> path = PathExpr::Parse(translated);
  if (!path.ok()) {
    return Status::InvalidArgument("constraint " + constraint +
                                   ": cannot translate selector '" +
                                   std::string(xpath) +
                                   "': " + path.status().message());
  }
  if (path->EndsWithAttribute()) {
    return Status::InvalidArgument("constraint " + constraint +
                                   ": selector must target elements");
  }
  return path;
}

// Translates an xs:field xpath, which must be a plain attribute "@a"
// (K⁻ restricts key paths to simple attributes — Section 2).
Result<std::string> TranslateField(std::string_view xpath,
                                   const std::string& constraint) {
  std::string_view s = TrimWhitespace(xpath);
  if (StartsWith(s, "./")) s = s.substr(2);
  if (s.empty() || s[0] != '@' || !IsValidName(s.substr(1))) {
    return Status::InvalidArgument(
        "constraint " + constraint + ": field '" + std::string(xpath) +
        "' is not a simple attribute; the key class K⁻ of the paper "
        "(Section 2) restricts key paths to attributes @a");
  }
  return std::string(s.substr(1));
}

// The nearest ancestor <xs:element name="..."> of `node`, or empty.
std::string EnclosingElementName(const Tree& tree, NodeId node) {
  NodeId cur = tree.node(node).parent;
  while (cur != kInvalidNode) {
    if (LocalName(tree.node(cur).label) == "element") {
      std::optional<std::string> name = tree.AttributeValue(cur, "name");
      if (name.has_value()) return *name;
    }
    cur = tree.node(cur).parent;
  }
  return "";
}


// Selector path and ordered field attributes of one identity constraint.
struct ConstraintParts {
  PathExpr target;
  std::vector<std::string> attributes;  // declaration order
};

Result<ConstraintParts> ParseConstraintParts(const Tree& tree, NodeId node,
                                             const std::string& name) {
  std::optional<NodeId> selector;
  std::vector<NodeId> fields;
  for (NodeId child : tree.node(node).children) {
    std::string_view child_local = LocalName(tree.node(child).label);
    if (child_local == "selector") {
      if (selector.has_value()) {
        return Status::InvalidArgument("constraint " + name +
                                       " has multiple selectors");
      }
      selector = child;
    } else if (child_local == "field") {
      fields.push_back(child);
    }
  }
  if (!selector.has_value()) {
    return Status::InvalidArgument("constraint " + name +
                                   " lacks an xs:selector");
  }
  std::optional<std::string> selector_xpath =
      tree.AttributeValue(*selector, "xpath");
  if (!selector_xpath.has_value()) {
    return Status::InvalidArgument("constraint " + name +
                                   ": selector lacks @xpath");
  }
  ConstraintParts parts;
  XMLPROP_ASSIGN_OR_RETURN(parts.target,
                           TranslateSelector(*selector_xpath, name));
  for (NodeId field : fields) {
    std::optional<std::string> xpath = tree.AttributeValue(field, "xpath");
    if (!xpath.has_value()) {
      return Status::InvalidArgument("constraint " + name +
                                     ": field lacks @xpath");
    }
    XMLPROP_ASSIGN_OR_RETURN(std::string attr, TranslateField(*xpath, name));
    parts.attributes.push_back(std::move(attr));
  }
  return parts;
}

}  // namespace

Result<XsdImportResult> ImportXsdKeys(std::string_view xsd_text) {
  XMLPROP_ASSIGN_OR_RETURN(Tree tree, ParseXml(xsd_text));
  if (LocalName(tree.node(tree.root()).label) != "schema") {
    return Status::InvalidArgument(
        "not an XML Schema document (root is <" +
        std::string(tree.node(tree.root()).label) +
        ">, expected xs:schema)");
  }

  XsdImportResult result;

  // Referenced-key lookup for keyrefs: name -> (element, parts).
  struct KeyDecl {
    std::string element;
    ConstraintParts parts;
  };
  std::map<std::string, KeyDecl> keys_by_name;

  // Pass 1: xs:key / xs:unique.
  for (NodeId node : tree.DescendantsOrSelf(tree.root())) {
    std::string_view local = LocalName(tree.node(node).label);
    bool is_key = (local == "key");
    bool is_unique = (local == "unique");
    if (!is_key && !is_unique) continue;

    std::string name =
        tree.AttributeValue(node, "name").value_or("(anonymous)");
    if (is_unique) {
      result.warnings.push_back(
          "xs:unique '" + name +
          "' imported with xs:key semantics: the key class K⁻ "
          "(Definition 2.1) requires key attributes to exist on targets");
    }

    // Context: instances of the declaring element.
    std::string element = EnclosingElementName(tree, node);
    if (element.empty()) {
      return Status::InvalidArgument(
          "constraint " + name +
          " is not declared inside an <xs:element name=...>");
    }
    XMLPROP_ASSIGN_OR_RETURN(PathExpr context,
                             PathExpr::Parse("//" + element));
    XMLPROP_ASSIGN_OR_RETURN(ConstraintParts parts,
                             ParseConstraintParts(tree, node, name));
    keys_by_name.emplace(name, KeyDecl{element, parts});
    result.keys.emplace_back(name, std::move(context),
                             std::move(parts.target),
                             std::move(parts.attributes));
  }

  // Pass 2: xs:keyref -> XmlForeignKey.
  for (NodeId node : tree.DescendantsOrSelf(tree.root())) {
    if (LocalName(tree.node(node).label) != "keyref") continue;
    std::string name =
        tree.AttributeValue(node, "name").value_or("(anonymous)");
    std::optional<std::string> refer = tree.AttributeValue(node, "refer");
    if (!refer.has_value()) {
      return Status::InvalidArgument("keyref " + name + " lacks @refer");
    }
    std::string refer_local(LocalName(*refer));
    auto it = keys_by_name.find(refer_local);
    if (it == keys_by_name.end()) {
      return Status::InvalidArgument("keyref " + name +
                                     " refers to unknown key '" +
                                     refer_local + "'");
    }
    std::string element = EnclosingElementName(tree, node);
    if (element.empty()) {
      return Status::InvalidArgument(
          "keyref " + name + " is not declared inside an <xs:element>");
    }
    if (element != it->second.element) {
      return Status::InvalidArgument(
          "keyref " + name + " is declared on <" + element +
          "> but refers to a key on <" + it->second.element +
          ">; both sides must share the scoping element");
    }
    XMLPROP_ASSIGN_OR_RETURN(ConstraintParts source,
                             ParseConstraintParts(tree, node, name));
    if (source.attributes.size() != it->second.parts.attributes.size() ||
        source.attributes.empty()) {
      return Status::InvalidArgument(
          "keyref " + name +
          ": field count does not match the referenced key");
    }
    XMLPROP_ASSIGN_OR_RETURN(PathExpr context,
                             PathExpr::Parse("//" + element));
    result.foreign_keys.emplace_back(
        name, std::move(context), std::move(source.target),
        std::move(source.attributes), it->second.parts.target,
        it->second.parts.attributes);
  }
  return result;
}

Result<std::string> ExportXsdKeys(const std::vector<XmlKey>& keys,
                                  std::string_view root_element) {
  // Group keys by the element their context addresses.
  std::map<std::string, std::vector<const XmlKey*>> by_element;
  for (const XmlKey& key : keys) {
    std::string element;
    if (key.context().IsEpsilon()) {
      element = std::string(root_element);
    } else {
      const auto& atoms = key.context().atoms();
      if (atoms.size() == 2 && atoms[0].is_descendant() &&
          !atoms[1].is_descendant() && !atoms[1].is_attribute()) {
        element = atoms[1].label;
      } else {
        return Status::InvalidArgument(
            "key " + key.ToString() +
            ": only ε or //label contexts map onto XML Schema's "
            "per-element constraint scoping");
      }
    }
    // Selector subset check: interior "//" is outside the XSD xpath
    // fragment (only a leading .// is allowed).
    const auto& t = key.target().atoms();
    for (size_t i = 1; i < t.size(); ++i) {
      if (t[i].is_descendant()) {
        return Status::InvalidArgument(
            "key " + key.ToString() +
            ": interior '//' cannot be expressed as an XSD selector");
      }
    }
    by_element[element].push_back(&key);
  }

  Tree schema("xs:schema");
  XMLPROP_RETURN_NOT_OK(
      schema
          .CreateAttribute(schema.root(), "xmlns:xs",
                           "http://www.w3.org/2001/XMLSchema")
          .status());
  size_t counter = 0;
  for (const auto& [element, element_keys] : by_element) {
    NodeId decl = schema.CreateElement(schema.root(), "xs:element");
    XMLPROP_RETURN_NOT_OK(
        schema.CreateAttribute(decl, "name", element).status());
    for (const XmlKey* key : element_keys) {
      NodeId constraint = schema.CreateElement(decl, "xs:key");
      std::string name = key->name().empty()
                             ? "key" + std::to_string(++counter)
                             : key->name();
      XMLPROP_RETURN_NOT_OK(
          schema.CreateAttribute(constraint, "name", name).status());
      NodeId selector = schema.CreateElement(constraint, "xs:selector");
      std::string xpath = key->target().ToString();
      if (key->target().IsEpsilon()) {
        xpath = ".";
      } else if (StartsWith(xpath, "//")) {
        xpath = "." + xpath;
      }
      XMLPROP_RETURN_NOT_OK(
          schema.CreateAttribute(selector, "xpath", xpath).status());
      for (const std::string& attr : key->attributes()) {
        NodeId field = schema.CreateElement(constraint, "xs:field");
        XMLPROP_RETURN_NOT_OK(
            schema.CreateAttribute(field, "xpath", "@" + attr).status());
      }
    }
  }
  return WriteXml(schema);
}

}  // namespace xmlprop
