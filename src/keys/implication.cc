#include "keys/implication.h"

#include <algorithm>
#include <map>
#include <string>

namespace xmlprop {

std::string ImplicationWitness::Describe(const std::vector<XmlKey>& sigma,
                                         const XmlKey& phi) const {
  std::string out = "Σ ⊨ " + phi.ToString() + " ";
  if (!witness_index.has_value()) {
    out += "by the epsilon axiom (target ≡ ε)";
    return out;
  }
  const XmlKey& k = sigma[*witness_index];
  out += "witnessed by " + (k.name().empty() ? k.ToString() : k.name());
  out += " via split " + k.target().ToString() + " ≡ " + t1.ToString() +
         " / " + t2.ToString();
  out += "; target-to-context gives (" + k.context().Concat(t1).ToString() +
         ", (" + t2.ToString() + ", ...)); containment + superkey close the gap";
  return out;
}

namespace {

// One candidate split of a witness key's target: T ≡ T[0,cut1) / T[cut2,n)
// with cut2 == cut1 (a boundary split) or cut2 == cut1 - 1 (the
// self-overlapping split of a "//" atom, since // ≡ ////).
struct SplitPoint {
  size_t cut1;
  size_t cut2;
};

// Tests whether key k witnesses φ via the split (cut1, cut2):
// target-to-context gives (C/T1, (T2, S')); context and target
// containment then close the gap. Runs on atom spans — no allocation.
bool SplitWitnesses(const XmlKey& k, const XmlKey& phi, SplitPoint sp) {
  return PathContains(
             AtomSeq::Concat(k.context(), k.target(), 0, sp.cut1),
             AtomSeq::Of(phi.context())) &&
         PathContains(
             AtomSeq::Slice(k.target(), sp.cut2, k.target().length()),
             AtomSeq::Of(phi.target()));
}

}  // namespace

std::optional<ImplicationWitness> FindWitness(const std::vector<XmlKey>& sigma,
                                              const XmlKey& phi) {
  // Epsilon axiom: a subtree has exactly one root, so identification under
  // any attribute set is trivial when the target is ε.
  if (phi.target().IsEpsilon()) {
    return ImplicationWitness{std::nullopt, PathExpr(), PathExpr()};
  }
  for (size_t i = 0; i < sigma.size(); ++i) {
    const XmlKey& k = sigma[i];
    // Superkey rule precondition (identification only): the witness's
    // attributes must all be among φ's attributes.
    if (!k.AttributesSubsetOf(phi)) continue;
    const size_t n = k.target().length();
    for (size_t cut = 0; cut <= n; ++cut) {
      SplitPoint sp{cut, cut};
      if (SplitWitnesses(k, phi, sp)) {
        const auto& atoms = k.target().atoms();
        return ImplicationWitness{
            i,
            PathExpr::FromAtoms({atoms.begin(),
                                 atoms.begin() + static_cast<long>(cut)}),
            PathExpr::FromAtoms({atoms.begin() + static_cast<long>(cut),
                                 atoms.end()})};
      }
      // Overlapping split: a "//" atom may belong to both halves.
      if (cut < n && k.target().atoms()[cut].is_descendant()) {
        SplitPoint overlap{cut + 1, cut};
        if (SplitWitnesses(k, phi, overlap)) {
          const auto& atoms = k.target().atoms();
          return ImplicationWitness{
              i,
              PathExpr::FromAtoms(
                  {atoms.begin(), atoms.begin() + static_cast<long>(cut) + 1}),
              PathExpr::FromAtoms(
                  {atoms.begin() + static_cast<long>(cut), atoms.end()})};
        }
      }
    }
  }
  return std::nullopt;
}

namespace {

// Recursive decision procedure for identification, closed under the
// composition rule. The recursion strictly decreases the measure
// (|target atoms|, S non-empty), so it is a DAG; `memo` caches results on
// (context, target, S-emptiness) states.
bool ImpliesIdentRec(const std::vector<XmlKey>& sigma, const XmlKey& phi,
                     std::map<std::string, bool>* memo) {
  if (phi.target().IsEpsilon()) return true;

  // Single-atom targets cannot be composed, so the witness search is the
  // whole computation — skip the (string-keyed) memo table for them.
  // Note there is no explicit weakening step: a witness key with an empty
  // attribute set already passes the S' ⊆ S test inside FindWitness, so
  // "(C,(T,∅)) identifies under any S" falls out of the search.
  const std::vector<PathAtom>& atoms = phi.target().atoms();
  if (atoms.size() <= 1) return FindWitness(sigma, phi).has_value();

  std::string state = phi.context().ToString() + "|" +
                      phi.target().ToString() + "|" +
                      (phi.attributes().empty() ? "0" : "1");
  auto it = memo->find(state);
  if (it != memo->end()) return it->second;

  bool result = FindWitness(sigma, phi).has_value();

  // Composition: Qt ≡ A/B (non-overlapping, both non-ε): at most one
  // A-node per context, and B identified under Qc/A.
  for (size_t cut = 1; !result && cut < atoms.size(); ++cut) {
    PathExpr a = PathExpr::FromAtoms(
        {atoms.begin(), atoms.begin() + static_cast<long>(cut)});
    PathExpr b = PathExpr::FromAtoms(
        {atoms.begin() + static_cast<long>(cut), atoms.end()});
    XmlKey first("", phi.context(), a, {});
    if (!ImpliesIdentRec(sigma, first, memo)) continue;
    XmlKey second("", phi.context().Concat(a), b, phi.attributes());
    result = ImpliesIdentRec(sigma, second, memo);
  }

  (*memo)[state] = result;
  return result;
}

}  // namespace

bool ImpliesIdentification(const std::vector<XmlKey>& sigma,
                           const XmlKey& phi) {
  std::map<std::string, bool> memo;
  return ImpliesIdentRec(sigma, phi, &memo);
}

bool AttributesExist(const std::vector<XmlKey>& sigma,
                     const PathExpr& node_path,
                     const std::vector<std::string>& attrs) {
  // A key (C, (T, S)) requires every node in [[C/T]] to carry all
  // attributes of S (Definition 2.1 condition 1); if L(node_path) ⊆
  // L(C/T) this covers the nodes at node_path. Sorting `needed` once lets
  // each covering key be consumed by a single merge pass against its
  // (already sorted) attribute set instead of a quadratic find-and-erase.
  std::vector<std::string> needed = attrs;
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  std::vector<char> have(needed.size(), 0);
  size_t remaining = needed.size();
  for (const XmlKey& key : sigma) {
    if (remaining == 0) break;
    if (key.attributes().empty()) continue;
    if (!PathContains(key.context().Concat(key.target()), node_path)) {
      continue;
    }
    const std::vector<std::string>& s = key.attributes();
    size_t a = 0, b = 0;
    while (a < needed.size() && b < s.size()) {
      if (needed[a] < s[b]) {
        ++a;
      } else if (s[b] < needed[a]) {
        ++b;
      } else {
        if (have[a] == 0) {
          have[a] = 1;
          --remaining;
        }
        ++a;
        ++b;
      }
    }
  }
  return remaining == 0;
}

bool Implies(const std::vector<XmlKey>& sigma, const XmlKey& phi) {
  if (!ImpliesIdentification(sigma, phi)) return false;
  if (phi.attributes().empty()) return true;
  return AttributesExist(sigma, phi.context().Concat(phi.target()),
                         phi.attributes());
}

bool ImmediatelyPrecedes(const XmlKey& a, const XmlKey& b) {
  return PathEquivalent(a.context().Concat(a.target()), b.context());
}

bool IsTransitiveSet(const std::vector<XmlKey>& keys) {
  const size_t n = keys.size();
  // anchored[i] == true once key i is known to be preceded (transitively)
  // by an absolute key, or is itself absolute.
  std::vector<char> anchored(n, 0);
  std::vector<size_t> frontier;
  for (size_t i = 0; i < n; ++i) {
    if (keys[i].IsAbsolute()) {
      anchored[i] = 1;
      frontier.push_back(i);
    }
  }

  // ImmediatelyPrecedes runs the path-equivalence DP, so probing it
  // inside a fixpoint re-derives the same verdicts O(n) times. Compute
  // the adjacency matrix once and run a BFS over it: n² DP calls total
  // instead of the naive fixpoint's n³ worst case.
  std::vector<char> precedes(n * n, 0);
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < n; ++i) {
      if (i != j && ImmediatelyPrecedes(keys[j], keys[i])) {
        precedes[j * n + i] = 1;
      }
    }
  }
  while (!frontier.empty()) {
    const size_t j = frontier.back();
    frontier.pop_back();
    for (size_t i = 0; i < n; ++i) {
      if (anchored[i] == 0 && precedes[j * n + i] != 0) {
        anchored[i] = 1;
        frontier.push_back(i);
      }
    }
  }
  return std::all_of(anchored.begin(), anchored.end(),
                     [](char b) { return b != 0; });
}

}  // namespace xmlprop
