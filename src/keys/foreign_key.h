#ifndef XMLPROP_KEYS_FOREIGN_KEY_H_
#define XMLPROP_KEYS_FOREIGN_KEY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "keys/xml_key.h"
#include "xml/tree.h"

namespace xmlprop {

/// An XML foreign key, the second constraint species of XML Schema that
/// Section 3 discusses: within every context node n ∈ [[C]],
///
///   (C, (T1, {@a1..@ak})  ⊆  (T2, {@b1..@bk}))
///
/// requires (i) each T1-node's attribute tuple (a1..ak) to equal the
/// (b1..bk) tuple of some T2-node under the same context (inclusion), and
/// (ii) (C, (T2, {@b1..@bk})) to be a key (the referenced side must
/// identify — XML Schema's keyref-targets-key rule).
///
/// IMPORTANT: this class exists for *checking documents only*. There is
/// deliberately no propagation API for it: Theorem 3.2 proves that
/// propagation for keys + foreign keys is undecidable for any
/// transformation language expressing the identity mapping (by reduction
/// from implication of relational keys + foreign keys [Fan & Libkin,
/// JACM'02]).
class XmlForeignKey {
 public:
  XmlForeignKey() = default;
  XmlForeignKey(std::string name, PathExpr context, PathExpr source_target,
                std::vector<std::string> source_attrs, PathExpr ref_target,
                std::vector<std::string> ref_attrs);

  /// Parses "name: (C, (T1, {@a1,..}) => (T2, {@b1,..}))". The two
  /// attribute lists must have equal, non-zero length; positions
  /// correspond (a_i references b_i).
  static Result<XmlForeignKey> Parse(std::string_view text);

  const std::string& name() const { return name_; }
  const PathExpr& context() const { return context_; }
  const PathExpr& source_target() const { return source_target_; }
  const std::vector<std::string>& source_attrs() const {
    return source_attrs_;
  }
  const PathExpr& ref_target() const { return ref_target_; }
  const std::vector<std::string>& ref_attrs() const { return ref_attrs_; }

  /// The key constraint on the referenced side, (C, (T2, {@b1..@bk})).
  XmlKey ReferencedKey() const;

  std::string ToString() const;

 private:
  std::string name_;
  PathExpr context_;
  PathExpr source_target_;
  std::vector<std::string> source_attrs_;  // in declaration order
  PathExpr ref_target_;
  std::vector<std::string> ref_attrs_;     // in declaration order
};

/// One violation of a foreign key.
struct ForeignKeyViolation {
  enum class Kind {
    /// A source node lacks one of the referencing attributes.
    kMissingSourceAttribute,
    /// A source tuple matches no referenced node's tuple (dangling).
    kDanglingReference,
    /// The referenced side fails to be a key (duplicate / missing attrs).
    kReferencedNotKey,
  };
  Kind kind = Kind::kDanglingReference;
  NodeId context = kInvalidNode;
  NodeId node = kInvalidNode;  ///< the offending source node, if any
  std::string detail;

  std::string Describe(const Tree& tree, const XmlForeignKey& fk) const;
};

/// Parses a newline-separated list of foreign keys; '#' starts a comment
/// (same conventions as ParseKeySet).
Result<std::vector<XmlForeignKey>> ParseForeignKeySet(std::string_view text);

/// All violations of `fk` in `tree` (empty = satisfied).
std::vector<ForeignKeyViolation> CheckForeignKey(const Tree& tree,
                                                 const XmlForeignKey& fk);

/// True iff `tree` satisfies `fk`.
bool Satisfies(const Tree& tree, const XmlForeignKey& fk);

}  // namespace xmlprop

#endif  // XMLPROP_KEYS_FOREIGN_KEY_H_
