#ifndef XMLPROP_KEYS_INCREMENTAL_H_
#define XMLPROP_KEYS_INCREMENTAL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "keys/delta.h"
#include "keys/satisfaction.h"
#include "keys/xml_key.h"
#include "xml/tree.h"

namespace xmlprop {

/// Incremental key validation for bulk imports — the Example 1.1
/// scenario ("while importing this XML data, violations of the key are
/// detected") without re-scanning the whole document per fragment.
///
/// The checker owns a growing document through the delta plane
/// (keys/delta.h): each Append is a DeltaDoc::InsertSubtree, which grafts
/// the fragment, patches the query index in place (Euler shift of the
/// suffix, interned-value reuse) and re-checks only the (key, context)
/// pairs whose intervals intersect the dirty Euler range. On top of the
/// patched document this class reports each violation once, at the append
/// that introduces it:
///   - context nodes *inside* the new subtree (all their targets are
///     new), and
///   - existing context nodes on the ancestor chain of the graft point
///     (target paths only navigate downward, so no other old context can
///     reach a new node);
/// new targets are matched against per-key value indexes maintained
/// across appends, so each append costs O(|fragment| · depth · |Σ|)
/// regardless of document size (the full recheck is O(|document|) per
/// key). Agreement with the batch checker is property-tested.
class IncrementalChecker {
 public:
  /// Starts an empty document whose root is labelled `root_label`.
  explicit IncrementalChecker(std::vector<XmlKey> keys,
                              std::string root_label = "r");

  const Tree& document() const { return delta_->tree(); }
  const std::vector<XmlKey>& keys() const { return delta_->keys(); }

  /// Grafts `fragment` (its root element becomes a child of `parent`)
  /// and returns the violations this append introduces. The fragment is
  /// kept either way — the import log records the offences, as in the
  /// paper's import story. Violations are reported exactly once, at the
  /// append that introduces them; if no append ever reports one, the
  /// final document satisfies every key.
  Result<std::vector<TaggedViolation>> Append(NodeId parent,
                                              const Tree& fragment);

  /// Convenience: append under the document root.
  Result<std::vector<TaggedViolation>> Append(const Tree& fragment) {
    return Append(document().root(), fragment);
  }

  /// Total violations reported so far.
  size_t violation_count() const { return violation_count_; }

 private:
  struct TargetIndex {
    /// (context node, key attribute values) -> first target seen.
    std::map<std::pair<NodeId, std::vector<std::string>>, NodeId> seen;
  };

  void CheckNewTarget(size_t key_index, NodeId context, NodeId target,
                      std::vector<TaggedViolation>* out);

  std::unique_ptr<DeltaDoc> delta_;  // non-movable: holds the document
  std::vector<TargetIndex> index_;   // one per key
  size_t violation_count_ = 0;
};

}  // namespace xmlprop

#endif  // XMLPROP_KEYS_INCREMENTAL_H_
