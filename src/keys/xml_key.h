#ifndef XMLPROP_KEYS_XML_KEY_H_
#define XMLPROP_KEYS_XML_KEY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/path.h"

namespace xmlprop {

/// An XML key of the class K⁻ studied by the paper (Section 2), written
///
///   name : (C, (T, {@a1, ..., @ak}))
///
/// following the syntax of Buneman et al. [WWW'01]: C is the *context*
/// path expression, T the *target* path expression, and the key paths are
/// restricted to simple attributes @ai. A key with empty context (C = ε)
/// is *absolute*, otherwise *relative*.
///
/// Semantics (Definition 2.1): a tree satisfies the key iff for every
/// context node n ∈ [[C]] and all n1, n2 ∈ n[[T]]:
///   (1) n1 and n2 each carry every attribute @ai (key attributes are
///       required to exist on target nodes), and
///   (2) if n1 and n2 agree on the values of all @ai then n1 = n2.
///
/// An empty attribute set is meaningful: (C, (T, {})) asserts that each
/// context node has *at most one* T-target (e.g. "each book has at most
/// one title", key K3 of Example 2.1).
class XmlKey {
 public:
  XmlKey() = default;
  XmlKey(std::string name, PathExpr context, PathExpr target,
         std::vector<std::string> attributes);

  /// Parses "name : (C, (T, {@a1, ..., @ak}))"; the "name :" prefix is
  /// optional, C may be written "ε" or left empty, and the attribute set
  /// may be "{}". Context and target must not contain attribute steps.
  static Result<XmlKey> Parse(std::string_view text);

  const std::string& name() const { return name_; }
  const PathExpr& context() const { return context_; }
  const PathExpr& target() const { return target_; }
  /// Attribute names *without* the '@' prefix, sorted and deduplicated.
  const std::vector<std::string>& attributes() const { return attributes_; }

  /// True iff the context is the empty path (key scoped at the root).
  bool IsAbsolute() const { return context_.IsEpsilon(); }

  /// True iff every attribute of this key also belongs to `other`
  /// (the precondition for the superkey inference rule).
  bool AttributesSubsetOf(const XmlKey& other) const;

  /// Size |k| used in complexity accounting: atoms of C and T plus the
  /// number of key attributes.
  size_t size() const {
    return context_.length() + target_.length() + attributes_.size();
  }

  /// "name: (C, (T, {@a1, ..., @ak}))" (name omitted when empty).
  std::string ToString() const;

  friend bool operator==(const XmlKey& a, const XmlKey& b) {
    return a.context_ == b.context_ && a.target_ == b.target_ &&
           a.attributes_ == b.attributes_;
  }

 private:
  std::string name_;
  PathExpr context_;
  PathExpr target_;
  std::vector<std::string> attributes_;
};

/// Parses a whitespace/newline-separated list of keys; '#' starts a
/// comment running to end of line. Convenient for examples and tests.
Result<std::vector<XmlKey>> ParseKeySet(std::string_view text);

}  // namespace xmlprop

#endif  // XMLPROP_KEYS_XML_KEY_H_
