#include "keys/incremental.h"

#include <algorithm>

namespace xmlprop {

namespace {

// Labels on the path from ancestor `from` down to `to` (exclusive of
// `from`, inclusive of `to`). `from` must be an ancestor-or-self of `to`.
std::vector<std::string> LabelsBetween(const Tree& tree, NodeId from,
                                       NodeId to) {
  std::vector<std::string> labels;
  NodeId cur = to;
  while (cur != from) {
    labels.push_back(tree.node(cur).label);
    cur = tree.node(cur).parent;
  }
  std::reverse(labels.begin(), labels.end());
  return labels;
}

}  // namespace

IncrementalChecker::IncrementalChecker(std::vector<XmlKey> keys,
                                       std::string root_label)
    : keys_(std::move(keys)),
      document_(std::move(root_label)),
      index_(keys_.size()) {}

void IncrementalChecker::CheckNewTarget(size_t key_index, NodeId context,
                                        NodeId target,
                                        std::vector<TaggedViolation>* out) {
  const XmlKey& key = keys_[key_index];
  bool complete = true;
  std::vector<std::string> values;
  values.reserve(key.attributes().size());
  for (const std::string& attr : key.attributes()) {
    std::optional<std::string> v = document_.AttributeValue(target, attr);
    if (!v.has_value()) {
      KeyViolation viol;
      viol.kind = KeyViolation::Kind::kMissingAttribute;
      viol.context = context;
      viol.node1 = target;
      viol.attribute = attr;
      out->push_back(TaggedViolation{key_index, std::move(viol)});
      complete = false;
    } else {
      values.push_back(std::move(*v));
    }
  }
  if (!complete) return;

  auto [it, inserted] = index_[key_index].seen.emplace(
      std::make_pair(context, std::move(values)), target);
  if (!inserted && it->second != target) {
    KeyViolation viol;
    viol.kind = KeyViolation::Kind::kDuplicateValues;
    viol.context = context;
    viol.node1 = it->second;
    viol.node2 = target;
    out->push_back(TaggedViolation{key_index, std::move(viol)});
  }
}

Result<std::vector<TaggedViolation>> IncrementalChecker::Append(
    NodeId parent, const Tree& fragment) {
  XMLPROP_ASSIGN_OR_RETURN(NodeId new_root,
                           document_.Graft(parent, fragment,
                                           fragment.root()));
  std::vector<NodeId> new_elements = document_.DescendantsOrSelf(new_root);

  std::vector<TaggedViolation> violations;
  for (size_t ki = 0; ki < keys_.size(); ++ki) {
    const XmlKey& key = keys_[ki];

    // (a) Existing contexts that can reach the new subtree: the
    // ancestor-or-self chain of the graft parent.
    std::vector<NodeId> contexts;
    for (NodeId n = parent; n != kInvalidNode; n = document_.node(n).parent) {
      if (key.context().MatchesWord(document_.PathLabelsFromRoot(n))) {
        contexts.push_back(n);
      }
    }
    std::reverse(contexts.begin(), contexts.end());  // document order

    // (b) Contexts inside the new subtree.
    for (NodeId n : new_elements) {
      if (key.context().MatchesWord(document_.PathLabelsFromRoot(n))) {
        contexts.push_back(n);
      }
    }

    for (NodeId ctx : contexts) {
      for (NodeId m : new_elements) {
        if (!document_.IsAncestorOrSelf(ctx, m)) continue;
        if (key.target().MatchesWord(LabelsBetween(document_, ctx, m))) {
          CheckNewTarget(ki, ctx, m, &violations);
        }
      }
    }
  }
  violation_count_ += violations.size();
  return violations;
}

}  // namespace xmlprop
