#include "keys/incremental.h"

#include <algorithm>
#include <utility>

namespace xmlprop {

namespace {

// Labels on the path from ancestor `from` down to `to` (exclusive of
// `from`, inclusive of `to`). `from` must be an ancestor-or-self of `to`.
std::vector<std::string> LabelsBetween(const Tree& tree, NodeId from,
                                       NodeId to) {
  std::vector<std::string> labels;
  NodeId cur = to;
  while (cur != from) {
    labels.push_back(tree.node(cur).label);
    cur = tree.node(cur).parent;
  }
  std::reverse(labels.begin(), labels.end());
  return labels;
}

}  // namespace

IncrementalChecker::IncrementalChecker(std::vector<XmlKey> keys,
                                       std::string root_label)
    : delta_(new DeltaDoc(Tree(root_label), std::move(keys))),
      index_(delta_->keys().size()) {}

void IncrementalChecker::CheckNewTarget(size_t key_index, NodeId context,
                                        NodeId target,
                                        std::vector<TaggedViolation>* out) {
  const Tree& document = delta_->tree();
  const XmlKey& key = delta_->keys()[key_index];
  bool complete = true;
  std::vector<std::string> values;
  values.reserve(key.attributes().size());
  for (const std::string& attr : key.attributes()) {
    std::optional<std::string> v = document.AttributeValue(target, attr);
    if (!v.has_value()) {
      KeyViolation viol;
      viol.kind = KeyViolation::Kind::kMissingAttribute;
      viol.context = context;
      viol.node1 = target;
      viol.attribute = attr;
      out->push_back(TaggedViolation{key_index, std::move(viol)});
      complete = false;
    } else {
      values.push_back(std::move(*v));
    }
  }
  if (!complete) return;

  auto [it, inserted] = index_[key_index].seen.emplace(
      std::make_pair(context, std::move(values)), target);
  if (!inserted && it->second != target) {
    KeyViolation viol;
    viol.kind = KeyViolation::Kind::kDuplicateValues;
    viol.context = context;
    viol.node1 = it->second;
    viol.node2 = target;
    out->push_back(TaggedViolation{key_index, std::move(viol)});
  }
}

Result<std::vector<TaggedViolation>> IncrementalChecker::Append(
    NodeId parent, const Tree& fragment) {
  XMLPROP_ASSIGN_OR_RETURN(EditDelta delta,
                           delta_->InsertSubtree(parent, fragment));
  const Tree& document = delta_->tree();
  const NodeId new_root = delta.subtree_root;
  std::vector<NodeId> new_elements = document.DescendantsOrSelf(new_root);

  std::vector<TaggedViolation> violations;
  const std::vector<XmlKey>& keys = delta_->keys();
  for (size_t ki = 0; ki < keys.size(); ++ki) {
    const XmlKey& key = keys[ki];

    // (a) Existing contexts that can reach the new subtree: the
    // ancestor-or-self chain of the graft parent.
    std::vector<NodeId> contexts;
    for (NodeId n = parent; n != kInvalidNode; n = document.node(n).parent) {
      if (key.context().MatchesWord(document.PathLabelsFromRoot(n))) {
        contexts.push_back(n);
      }
    }
    std::reverse(contexts.begin(), contexts.end());  // document order

    // (b) Contexts inside the new subtree.
    for (NodeId n : new_elements) {
      if (key.context().MatchesWord(document.PathLabelsFromRoot(n))) {
        contexts.push_back(n);
      }
    }

    for (NodeId ctx : contexts) {
      for (NodeId m : new_elements) {
        if (!document.IsAncestorOrSelf(ctx, m)) continue;
        if (key.target().MatchesWord(LabelsBetween(document, ctx, m))) {
          CheckNewTarget(ki, ctx, m, &violations);
        }
      }
    }
  }
  violation_count_ += violations.size();
  return violations;
}

}  // namespace xmlprop
