#ifndef XMLPROP_KEYS_XSD_IMPORT_H_
#define XMLPROP_KEYS_XSD_IMPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "keys/foreign_key.h"
#include "keys/xml_key.h"

namespace xmlprop {

/// Result of importing identity constraints from an XML Schema document.
struct XsdImportResult {
  std::vector<XmlKey> keys;
  /// xs:keyref constraints, paired with the xs:key/xs:unique they refer
  /// to. Checkable on documents only — their propagation is undecidable
  /// (Theorem 3.2).
  std::vector<XmlForeignKey> foreign_keys;
  /// Human-readable notes about approximations made (e.g. xs:unique
  /// imported with xs:key semantics; see ImportXsdKeys).
  std::vector<std::string> warnings;
};

/// Imports xs:key / xs:unique identity constraints from an XML Schema
/// document into the paper's key class K⁻. The paper positions its keys
/// as "a subset of those in XML Schema" (Section 1); this is the bridge.
///
/// Mapping, per constraint declared inside `<xs:element name="E">`:
///   - context  := //E  (instances of the declaring element, wherever
///     they occur — the schema's scoping, approximated path-wise);
///   - target   := the xs:selector xpath, restricted to the subset the
///     paper's path language carries: child steps `a/b`, a leading
///     `.//` (descendant), and `.` prefixes. Unions ('|') and other
///     axes are rejected;
///   - key paths := the xs:field xpaths, which must be attributes
///     (`@a`) — K⁻'s restriction (Section 2). Element fields are
///     rejected with a pointer to the restriction.
///
/// xs:unique differs from xs:key only in not requiring the fields to
/// exist; K⁻ (Definition 2.1) always requires existence, so xs:unique is
/// imported with key semantics and a warning is recorded.
///
/// xs:keyref constraints become XmlForeignKeys: the source side comes
/// from the keyref's selector/fields, the referenced side from the
/// xs:key/xs:unique named by @refer (which must be declared under the
/// same element, giving both sides the same context — XML Schema's
/// scoping rule for keyrefs). Keyrefs referring to keys declared
/// elsewhere are rejected.
Result<XsdImportResult> ImportXsdKeys(std::string_view xsd_text);

/// The inverse bridge: renders keys as an XML Schema document with one
/// xs:key per constraint, declared under an <xs:element name="..."> per
/// distinct context. Only keys whose context is ε or //label can be
/// expressed (the schema's scoping is per-element); others are rejected.
/// Round-trips through ImportXsdKeys (modulo key order).
Result<std::string> ExportXsdKeys(const std::vector<XmlKey>& keys,
                                  std::string_view root_element = "r");

}  // namespace xmlprop

#endif  // XMLPROP_KEYS_XSD_IMPORT_H_
