#include "keys/implication_engine.h"

#include <algorithm>

#include "obs/cost_attribution.h"
#include "obs/trace.h"
#include "xml/path.h"

namespace xmlprop {

namespace {

// Canonical byte key of a normalized atom sequence (kind tag + label,
// NUL-separated — labels cannot contain NUL).
std::string AtomsKey(const std::vector<PathAtom>& atoms) {
  std::string key;
  key.reserve(atoms.size() * 8);
  for (const PathAtom& a : atoms) {
    key.push_back(a.is_descendant() ? '\x01' : '\x02');
    key += a.label;
    key.push_back('\0');
  }
  return key;
}

uint64_t PackPair(InternId a, InternId b) {
  return (uint64_t{a} << 32) | uint64_t{b};
}

}  // namespace

// One candidate witness split of a Σ-key's target, T ≡ T1/T2: the
// materialized (normalized) C/T1 prefix and T2 suffix with their interned
// ids. Precomputed once so every query's witness scan is two cache probes
// per split.
struct ImplicationEngine::KeySplit {
  PathExpr prefix;  // C/T[0, cut1)
  PathExpr suffix;  // T[cut2, n)
  InternId prefix_id;
  InternId suffix_id;
};

struct ImplicationEngine::KeyInfo {
  std::vector<KeySplit> splits;
  PathExpr full_path;  // C/T, the exist() containment probe
  InternId full_path_id;
};

ImplicationEngine::ImplicationEngine(std::vector<XmlKey> sigma,
                                     const Options& options)
    : sigma_(std::move(sigma)), options_(options) {
  size_t threads = options_.parallelism;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  empty_attrs_id_ = InternAttrs({});

  // Split tables: enumerate exactly the (cut1, cut2) candidates
  // FindWitness walks — every atom boundary, plus the self-overlapping
  // split of each "//" atom (// ≡ ////).
  key_info_.reserve(sigma_.size());
  for (const XmlKey& k : sigma_) {
    KeyInfo info;
    const std::vector<PathAtom>& t = k.target().atoms();
    const size_t n = t.size();
    auto add_split = [&](size_t cut1, size_t cut2) {
      KeySplit sp;
      sp.prefix = k.context().Concat(
          PathExpr::FromAtoms({t.begin(), t.begin() + static_cast<long>(cut1)}));
      sp.suffix = PathExpr::FromAtoms(
          {t.begin() + static_cast<long>(cut2), t.end()});
      sp.prefix_id = InternAtoms(sp.prefix.atoms());
      sp.suffix_id = InternAtoms(sp.suffix.atoms());
      info.splits.push_back(std::move(sp));
    };
    for (size_t cut = 0; cut <= n; ++cut) {
      add_split(cut, cut);
      if (cut < n && t[cut].is_descendant()) add_split(cut + 1, cut);
    }
    info.full_path = k.context().Concat(k.target());
    info.full_path_id = InternAtoms(info.full_path.atoms());
    key_info_.push_back(std::move(info));
  }
}

ImplicationEngine::~ImplicationEngine() = default;

size_t ImplicationEngine::parallelism() const {
  return pool_ != nullptr ? pool_->size() : 1;
}

InternId ImplicationEngine::InternAtoms(const std::vector<PathAtom>& atoms) {
  std::string key = AtomsKey(atoms);
  std::lock_guard<std::mutex> lock(intern_mu_);
  auto [it, inserted] =
      path_ids_.emplace(std::move(key), static_cast<InternId>(path_ids_.size()));
  return it->second;
}

InternId ImplicationEngine::InternAttrs(const std::vector<std::string>& attrs) {
  std::vector<std::string> sorted = attrs;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::string key;
  for (const std::string& a : sorted) {
    key += a;
    key.push_back('\0');
  }
  std::lock_guard<std::mutex> lock(intern_mu_);
  auto [it, inserted] = attrs_ids_.emplace(
      std::move(key), static_cast<InternId>(attrs_ids_.size()));
  return it->second;
}

bool ImplicationEngine::CachedContains(InternId super_id, const PathExpr& super,
                                       InternId sub_id, const PathExpr& sub,
                                       MemoShard* shard) {
  if (shard != nullptr) {
    ++shard->contains_queries;
  } else {
    ++counters_.contains_queries;
  }
  const uint64_t key = PackPair(super_id, sub_id);
  if (options_.caching) {
    if (shard != nullptr) {
      auto it = shard->contains.find(key);
      if (it != shard->contains.end()) {
        ++shard->contains_hits;
        obs::CostAdd(obs::CostKind::kMemoHits);
        return it->second != 0;
      }
    }
    auto it = contains_cache_.find(key);
    if (it != contains_cache_.end()) {
      if (shard != nullptr) {
        ++shard->contains_hits;
      } else {
        ++counters_.contains_hits;
      }
      obs::CostAdd(obs::CostKind::kMemoHits);
      return it->second != 0;
    }
  }
  const bool verdict = PathContains(super, sub);
  if (options_.caching) {
    (shard != nullptr ? shard->contains : contains_cache_)[key] =
        verdict ? 1 : 0;
  }
  return verdict;
}

bool ImplicationEngine::WitnessExists(const PathExpr& context,
                                      InternId context_id,
                                      const PathExpr& target,
                                      InternId target_id,
                                      const std::vector<std::string>& attrs,
                                      MemoShard* shard) {
  for (size_t i = 0; i < sigma_.size(); ++i) {
    const XmlKey& k = sigma_[i];
    // Superkey rule precondition: S' ⊆ S (both sides sorted).
    if (!std::includes(attrs.begin(), attrs.end(), k.attributes().begin(),
                       k.attributes().end())) {
      continue;
    }
    for (const KeySplit& sp : key_info_[i].splits) {
      if (CachedContains(sp.prefix_id, sp.prefix, context_id, context,
                         shard) &&
          CachedContains(sp.suffix_id, sp.suffix, target_id, target, shard)) {
        return true;
      }
    }
  }
  return false;
}

bool ImplicationEngine::IdentRec(const PathExpr& context, InternId context_id,
                                 const PathExpr& target, InternId target_id,
                                 const std::vector<std::string>& attrs,
                                 InternId attrs_id, MemoShard* shard) {
  if (target.IsEpsilon()) return true;  // epsilon axiom

  if (shard != nullptr) {
    ++shard->ident_queries;
  } else {
    ++counters_.ident_queries;
  }
  const IdentState state{context_id, target_id, attrs_id};
  if (options_.caching) {
    if (shard != nullptr) {
      auto it = shard->ident.find(state);
      if (it != shard->ident.end()) {
        ++shard->ident_hits;
        obs::CostAdd(obs::CostKind::kMemoHits);
        return it->second != 0;
      }
    }
    auto it = ident_cache_.find(state);
    if (it != ident_cache_.end()) {
      if (shard != nullptr) {
        ++shard->ident_hits;
      } else {
        ++counters_.ident_hits;
      }
      obs::CostAdd(obs::CostKind::kMemoHits);
      return it->second != 0;
    }
  }

  bool result =
      WitnessExists(context, context_id, target, target_id, attrs, shard);

  // Composition rule: Qt ≡ A/B with at most one A-node per context and B
  // identified under Qc/A — same recursion as the free procedure.
  const std::vector<PathAtom>& atoms = target.atoms();
  static const std::vector<std::string> kNoAttrs;
  for (size_t cut = 1; !result && cut < atoms.size(); ++cut) {
    PathExpr a = PathExpr::FromAtoms(
        {atoms.begin(), atoms.begin() + static_cast<long>(cut)});
    PathExpr b = PathExpr::FromAtoms(
        {atoms.begin() + static_cast<long>(cut), atoms.end()});
    if (!IdentRec(context, context_id, a, InternAtoms(a.atoms()), kNoAttrs,
                  empty_attrs_id_, shard)) {
      continue;
    }
    PathExpr ctx2 = context.Concat(a);
    result = IdentRec(ctx2, InternAtoms(ctx2.atoms()), b,
                      InternAtoms(b.atoms()), attrs, attrs_id, shard);
  }

  if (options_.caching) {
    (shard != nullptr ? shard->ident : ident_cache_)[state] = result ? 1 : 0;
  }
  return result;
}

bool ImplicationEngine::ImpliesIdentification(const XmlKey& phi,
                                              MemoShard* shard) {
  return IdentRec(phi.context(), InternAtoms(phi.context().atoms()),
                  phi.target(), InternAtoms(phi.target().atoms()),
                  phi.attributes(), InternAttrs(phi.attributes()), shard);
}

bool ImplicationEngine::AttributesExist(const PathExpr& node_path,
                                        const std::vector<std::string>& attrs,
                                        MemoShard* shard) {
  if (shard != nullptr) {
    ++shard->exist_queries;
  } else {
    ++counters_.exist_queries;
  }
  const InternId path_id = InternAtoms(node_path.atoms());
  const InternId attrs_id = InternAttrs(attrs);
  const uint64_t key = PackPair(path_id, attrs_id);
  if (options_.caching) {
    if (shard != nullptr) {
      auto it = shard->exist.find(key);
      if (it != shard->exist.end()) {
        ++shard->exist_hits;
        obs::CostAdd(obs::CostKind::kMemoHits);
        return it->second != 0;
      }
    }
    auto it = exist_cache_.find(key);
    if (it != exist_cache_.end()) {
      if (shard != nullptr) {
        ++shard->exist_hits;
      } else {
        ++counters_.exist_hits;
      }
      obs::CostAdd(obs::CostKind::kMemoHits);
      return it->second != 0;
    }
  }

  // The free AttributesExist, with the per-key L(node_path) ⊆ L(C/T)
  // probe routed through the containment cache.
  std::vector<std::string> needed = attrs;
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  std::vector<char> have(needed.size(), 0);
  size_t remaining = needed.size();
  for (size_t i = 0; i < sigma_.size() && remaining > 0; ++i) {
    const XmlKey& k = sigma_[i];
    if (k.attributes().empty()) continue;
    if (!CachedContains(key_info_[i].full_path_id, key_info_[i].full_path,
                        path_id, node_path, shard)) {
      continue;
    }
    // Both sides sorted: one linear merge pass marks covered attributes.
    const std::vector<std::string>& s = k.attributes();
    size_t a = 0, b = 0;
    while (a < needed.size() && b < s.size()) {
      if (needed[a] < s[b]) {
        ++a;
      } else if (s[b] < needed[a]) {
        ++b;
      } else {
        if (have[a] == 0) {
          have[a] = 1;
          --remaining;
        }
        ++a;
        ++b;
      }
    }
  }
  const bool verdict = remaining == 0;
  if (options_.caching) {
    (shard != nullptr ? shard->exist : exist_cache_)[key] = verdict ? 1 : 0;
  }
  return verdict;
}

bool ImplicationEngine::Implies(const XmlKey& phi, MemoShard* shard) {
  if (!ImpliesIdentification(phi, shard)) return false;
  if (phi.attributes().empty()) return true;
  return AttributesExist(phi.context().Concat(phi.target()), phi.attributes(),
                         shard);
}

std::vector<char> ImplicationEngine::ImpliesIdentificationBatch(
    const std::vector<XmlKey>& queries) {
  std::vector<char> out(queries.size(), 0);
  ParallelRun(queries.size(), [&](size_t i, MemoShard* shard) {
    out[i] = ImpliesIdentification(queries[i], shard) ? 1 : 0;
  });
  return out;
}

void ImplicationEngine::MergeShard(const MemoShard& shard) {
  // Duplicate entries across shards hold equal verdicts (pure function of
  // (Σ, query)), so first-wins insertion is deterministic-by-construction.
  contains_cache_.insert(shard.contains.begin(), shard.contains.end());
  ident_cache_.insert(shard.ident.begin(), shard.ident.end());
  exist_cache_.insert(shard.exist.begin(), shard.exist.end());
  counters_.ident_queries += shard.ident_queries;
  counters_.ident_hits += shard.ident_hits;
  counters_.contains_queries += shard.contains_queries;
  counters_.contains_hits += shard.contains_hits;
  counters_.exist_queries += shard.exist_queries;
  counters_.exist_hits += shard.exist_hits;
}

void ImplicationEngine::ParallelRun(
    size_t n, const std::function<void(size_t, MemoShard*)>& body) {
  if (pool_ == nullptr || pool_->size() <= 1 ||
      n < options_.parallel_threshold) {
    for (size_t i = 0; i < n; ++i) body(i, nullptr);
    return;
  }
  ++counters_.parallel_batches;
  counters_.parallel_tasks += n;
  std::vector<MemoShard> shards(pool_->size());
  {
    obs::Span span("implication.batch");
    // Worker task time nests under implication.batch no matter which
    // pool thread runs which slice (identically-named task spans
    // aggregate into one deterministic node).
    const obs::SpanToken parent = obs::CurrentSpan();
    pool_->ParallelFor(n, [&](size_t begin, size_t end, size_t worker) {
      obs::SpanParent adopt(parent);
      obs::Span task_span("implication.task_chunk");
      for (size_t i = begin; i < end; ++i) body(i, &shards[worker]);
    });
  }
  {
    obs::Span span("implication.merge_shards");
    for (const MemoShard& shard : shards) MergeShard(shard);
  }
}

}  // namespace xmlprop
