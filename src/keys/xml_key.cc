#include "keys/xml_key.h"

#include <algorithm>

#include "common/str_util.h"

namespace xmlprop {

XmlKey::XmlKey(std::string name, PathExpr context, PathExpr target,
               std::vector<std::string> attributes)
    : name_(std::move(name)),
      context_(std::move(context)),
      target_(std::move(target)),
      attributes_(std::move(attributes)) {
  std::sort(attributes_.begin(), attributes_.end());
  attributes_.erase(std::unique(attributes_.begin(), attributes_.end()),
                    attributes_.end());
}

namespace {

Status KeySyntaxError(std::string_view text, std::string_view what) {
  return Status::ParseError("key syntax error (" + std::string(what) +
                            "): " + std::string(text));
}

}  // namespace

Result<XmlKey> XmlKey::Parse(std::string_view text) {
  std::string_view s = TrimWhitespace(text);

  // Optional "name :" prefix (name must not contain parentheses).
  std::string name;
  size_t colon = s.find(':');
  size_t paren = s.find('(');
  if (colon != std::string_view::npos &&
      (paren == std::string_view::npos || colon < paren)) {
    name = std::string(TrimWhitespace(s.substr(0, colon)));
    s = TrimWhitespace(s.substr(colon + 1));
  }

  if (s.empty() || s.front() != '(' || s.back() != ')') {
    return KeySyntaxError(text, "expected (C, (T, {...}))");
  }
  std::string_view body = TrimWhitespace(s.substr(1, s.size() - 2));

  // Split "C , (T, {...})" at the top-level comma.
  size_t depth = 0;
  size_t split = std::string_view::npos;
  for (size_t i = 0; i < body.size(); ++i) {
    if (body[i] == '(' || body[i] == '{') ++depth;
    if (body[i] == ')' || body[i] == '}') {
      if (depth == 0) return KeySyntaxError(text, "unbalanced parentheses");
      --depth;
    }
    if (body[i] == ',' && depth == 0) {
      split = i;
      break;
    }
  }
  if (split == std::string_view::npos) {
    return KeySyntaxError(text, "missing top-level comma");
  }
  std::string_view context_text = TrimWhitespace(body.substr(0, split));
  std::string_view rest = TrimWhitespace(body.substr(split + 1));

  if (rest.empty() || rest.front() != '(' || rest.back() != ')') {
    return KeySyntaxError(text, "expected (T, {...}) after context");
  }
  std::string_view inner = TrimWhitespace(rest.substr(1, rest.size() - 2));

  size_t brace = inner.find('{');
  size_t inner_comma = inner.rfind(',', brace == std::string_view::npos
                                              ? std::string_view::npos
                                              : brace);
  if (brace == std::string_view::npos ||
      inner_comma == std::string_view::npos || inner.back() != '}') {
    return KeySyntaxError(text, "expected (T, {@a1, ...})");
  }
  std::string_view target_text = TrimWhitespace(inner.substr(0, inner_comma));
  std::string_view attrs_text =
      TrimWhitespace(inner.substr(brace + 1, inner.size() - brace - 2));

  XMLPROP_ASSIGN_OR_RETURN(PathExpr context, PathExpr::Parse(context_text));
  XMLPROP_ASSIGN_OR_RETURN(PathExpr target, PathExpr::Parse(target_text));
  if (context.EndsWithAttribute() || target.EndsWithAttribute()) {
    return KeySyntaxError(text,
                          "context/target must not contain attribute steps");
  }

  std::vector<std::string> attributes;
  if (!attrs_text.empty()) {
    for (const std::string& piece : SplitAndTrim(attrs_text, ',')) {
      if (piece.empty() || piece[0] != '@' ||
          !IsValidName(std::string_view(piece).substr(1))) {
        return KeySyntaxError(text, "bad key attribute '" + piece + "'");
      }
      attributes.push_back(piece.substr(1));
    }
  }
  return XmlKey(std::move(name), std::move(context), std::move(target),
                std::move(attributes));
}

bool XmlKey::AttributesSubsetOf(const XmlKey& other) const {
  // Both sides are sorted and unique (constructor invariant).
  return std::includes(other.attributes_.begin(), other.attributes_.end(),
                       attributes_.begin(), attributes_.end());
}

std::string XmlKey::ToString() const {
  std::string out;
  if (!name_.empty()) {
    out += name_;
    out += ": ";
  }
  out += '(';
  out += context_.ToString();
  out += ", (";
  out += target_.ToString();
  out += ", {";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += '@';
    out += attributes_[i];
  }
  out += "}))";
  return out;
}

Result<std::vector<XmlKey>> ParseKeySet(std::string_view text) {
  std::vector<XmlKey> keys;
  size_t start = 0;
  while (start <= text.size()) {
    size_t eol = text.find('\n', start);
    std::string_view line = (eol == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, eol - start);
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = TrimWhitespace(line);
    if (!line.empty()) {
      XMLPROP_ASSIGN_OR_RETURN(XmlKey key, XmlKey::Parse(line));
      keys.push_back(std::move(key));
    }
    if (eol == std::string_view::npos) break;
    start = eol + 1;
  }
  return keys;
}

}  // namespace xmlprop
