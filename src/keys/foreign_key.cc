#include "keys/foreign_key.h"

#include <map>
#include <set>

#include "common/str_util.h"
#include "keys/satisfaction.h"

namespace xmlprop {

XmlForeignKey::XmlForeignKey(std::string name, PathExpr context,
                             PathExpr source_target,
                             std::vector<std::string> source_attrs,
                             PathExpr ref_target,
                             std::vector<std::string> ref_attrs)
    : name_(std::move(name)),
      context_(std::move(context)),
      source_target_(std::move(source_target)),
      source_attrs_(std::move(source_attrs)),
      ref_target_(std::move(ref_target)),
      ref_attrs_(std::move(ref_attrs)) {}

namespace {

Status FkSyntaxError(std::string_view text, std::string_view what) {
  return Status::ParseError("foreign key syntax error (" +
                            std::string(what) + "): " + std::string(text));
}

// Parses "(T, {@a, @b})" into a path and ordered attribute list.
Status ParseSide(std::string_view side, std::string_view original,
                 PathExpr* path, std::vector<std::string>* attrs) {
  std::string_view s = TrimWhitespace(side);
  if (s.empty() || s.front() != '(' || s.back() != ')') {
    return FkSyntaxError(original, "expected (T, {@a, ...})");
  }
  std::string_view inner = TrimWhitespace(s.substr(1, s.size() - 2));
  size_t brace = inner.find('{');
  size_t comma = inner.rfind(
      ',', brace == std::string_view::npos ? std::string_view::npos : brace);
  if (brace == std::string_view::npos || comma == std::string_view::npos ||
      inner.back() != '}') {
    return FkSyntaxError(original, "expected (T, {@a, ...})");
  }
  Result<PathExpr> parsed =
      PathExpr::Parse(TrimWhitespace(inner.substr(0, comma)));
  XMLPROP_RETURN_NOT_OK(parsed.status());
  *path = std::move(parsed).value();
  std::string_view attr_text =
      TrimWhitespace(inner.substr(brace + 1, inner.size() - brace - 2));
  attrs->clear();
  if (!attr_text.empty()) {
    for (const std::string& piece : SplitAndTrim(attr_text, ',')) {
      if (piece.empty() || piece[0] != '@' ||
          !IsValidName(std::string_view(piece).substr(1))) {
        return FkSyntaxError(original, "bad attribute '" + piece + "'");
      }
      attrs->push_back(piece.substr(1));
    }
  }
  return Status::OK();
}

// Ordered attribute value tuple of `node`, or nullopt if any is missing.
std::optional<std::vector<std::string>> TupleOf(
    const Tree& tree, NodeId node, const std::vector<std::string>& attrs) {
  std::vector<std::string> tuple;
  tuple.reserve(attrs.size());
  for (const std::string& a : attrs) {
    std::optional<std::string> v = tree.AttributeValue(node, a);
    if (!v.has_value()) return std::nullopt;
    tuple.push_back(std::move(*v));
  }
  return tuple;
}

}  // namespace

Result<XmlForeignKey> XmlForeignKey::Parse(std::string_view text) {
  std::string_view s = TrimWhitespace(text);

  std::string name;
  size_t colon = s.find(':');
  size_t paren = s.find('(');
  if (colon != std::string_view::npos &&
      (paren == std::string_view::npos || colon < paren)) {
    name = std::string(TrimWhitespace(s.substr(0, colon)));
    s = TrimWhitespace(s.substr(colon + 1));
  }
  if (s.empty() || s.front() != '(' || s.back() != ')') {
    return FkSyntaxError(text, "expected (C, (T1, {...}) => (T2, {...}))");
  }
  std::string_view body = TrimWhitespace(s.substr(1, s.size() - 2));

  // Split at the top-level comma (end of the context path).
  size_t depth = 0;
  size_t split = std::string_view::npos;
  for (size_t i = 0; i < body.size(); ++i) {
    if (body[i] == '(' || body[i] == '{') ++depth;
    if (body[i] == ')' || body[i] == '}') {
      if (depth == 0) return FkSyntaxError(text, "unbalanced parentheses");
      --depth;
    }
    if (body[i] == ',' && depth == 0) {
      split = i;
      break;
    }
  }
  if (split == std::string_view::npos) {
    return FkSyntaxError(text, "missing top-level comma after context");
  }
  Result<PathExpr> context =
      PathExpr::Parse(TrimWhitespace(body.substr(0, split)));
  XMLPROP_RETURN_NOT_OK(context.status());
  std::string_view rest = TrimWhitespace(body.substr(split + 1));

  size_t arrow = rest.find("=>");
  if (arrow == std::string_view::npos) {
    return FkSyntaxError(text, "missing '=>'");
  }
  PathExpr source_target, ref_target;
  std::vector<std::string> source_attrs, ref_attrs;
  XMLPROP_RETURN_NOT_OK(ParseSide(rest.substr(0, arrow), text,
                                  &source_target, &source_attrs));
  XMLPROP_RETURN_NOT_OK(
      ParseSide(rest.substr(arrow + 2), text, &ref_target, &ref_attrs));

  if (source_attrs.empty() || source_attrs.size() != ref_attrs.size()) {
    return FkSyntaxError(
        text, "attribute lists must be non-empty and of equal length");
  }
  if (context->EndsWithAttribute() || source_target.EndsWithAttribute() ||
      ref_target.EndsWithAttribute()) {
    return FkSyntaxError(text, "paths must target elements");
  }
  return XmlForeignKey(std::move(name), std::move(context).value(),
                       std::move(source_target), std::move(source_attrs),
                       std::move(ref_target), std::move(ref_attrs));
}

XmlKey XmlForeignKey::ReferencedKey() const {
  return XmlKey(name_.empty() ? "" : name_ + ".key", context_, ref_target_,
                ref_attrs_);
}

std::string XmlForeignKey::ToString() const {
  std::string out;
  if (!name_.empty()) out += name_ + ": ";
  out += "(" + context_.ToString() + ", (" + source_target_.ToString() +
         ", {";
  for (size_t i = 0; i < source_attrs_.size(); ++i) {
    out += (i ? ", @" : "@") + source_attrs_[i];
  }
  out += "}) => (" + ref_target_.ToString() + ", {";
  for (size_t i = 0; i < ref_attrs_.size(); ++i) {
    out += (i ? ", @" : "@") + ref_attrs_[i];
  }
  out += "}))";
  return out;
}

Result<std::vector<XmlForeignKey>> ParseForeignKeySet(
    std::string_view text) {
  std::vector<XmlForeignKey> fks;
  size_t start = 0;
  while (start <= text.size()) {
    size_t eol = text.find('\n', start);
    std::string_view line = (eol == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, eol - start);
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = TrimWhitespace(line);
    if (!line.empty()) {
      XMLPROP_ASSIGN_OR_RETURN(XmlForeignKey fk, XmlForeignKey::Parse(line));
      fks.push_back(std::move(fk));
    }
    if (eol == std::string_view::npos) break;
    start = eol + 1;
  }
  return fks;
}

std::string ForeignKeyViolation::Describe(const Tree& tree,
                                          const XmlForeignKey& fk) const {
  std::string out = "foreign key ";
  out += fk.name().empty() ? fk.ToString() : fk.name();
  switch (kind) {
    case Kind::kMissingSourceAttribute:
      out += ": source node <" + std::string(tree.node(node).label) +
             "> lacks " + detail;
      break;
    case Kind::kDanglingReference:
      out += ": source node <" + std::string(tree.node(node).label) +
             "> references missing tuple " + detail;
      break;
    case Kind::kReferencedNotKey:
      out += ": referenced side is not a key (" + detail + ")";
      break;
  }
  return out;
}

std::vector<ForeignKeyViolation> CheckForeignKey(const Tree& tree,
                                                 const XmlForeignKey& fk) {
  std::vector<ForeignKeyViolation> violations;

  // (ii) the referenced side must be a key.
  for (const KeyViolation& kv : CheckKey(tree, fk.ReferencedKey())) {
    ForeignKeyViolation v;
    v.kind = ForeignKeyViolation::Kind::kReferencedNotKey;
    v.context = kv.context;
    v.node = kv.node1;
    v.detail = kv.kind == KeyViolation::Kind::kMissingAttribute
                   ? "missing @" + kv.attribute
                   : "duplicate key values";
    violations.push_back(std::move(v));
  }

  // (i) inclusion, per context node.
  for (NodeId ctx : fk.context().EvalFromRoot(tree)) {
    if (tree.node(ctx).kind != NodeKind::kElement) continue;
    std::set<std::vector<std::string>> referenced;
    for (NodeId r : fk.ref_target().Eval(tree, ctx)) {
      std::optional<std::vector<std::string>> tuple =
          TupleOf(tree, r, fk.ref_attrs());
      if (tuple.has_value()) referenced.insert(std::move(*tuple));
    }
    for (NodeId s : fk.source_target().Eval(tree, ctx)) {
      std::optional<std::vector<std::string>> tuple =
          TupleOf(tree, s, fk.source_attrs());
      if (!tuple.has_value()) {
        ForeignKeyViolation v;
        v.kind = ForeignKeyViolation::Kind::kMissingSourceAttribute;
        v.context = ctx;
        v.node = s;
        v.detail = "one of its referencing attributes";
        violations.push_back(std::move(v));
        continue;
      }
      if (referenced.find(*tuple) == referenced.end()) {
        ForeignKeyViolation v;
        v.kind = ForeignKeyViolation::Kind::kDanglingReference;
        v.context = ctx;
        v.node = s;
        v.detail = "(" + Join(*tuple, ", ") + ")";
        violations.push_back(std::move(v));
      }
    }
  }
  return violations;
}

bool Satisfies(const Tree& tree, const XmlForeignKey& fk) {
  return CheckForeignKey(tree, fk).empty();
}

}  // namespace xmlprop
