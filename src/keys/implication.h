#ifndef XMLPROP_KEYS_IMPLICATION_H_
#define XMLPROP_KEYS_IMPLICATION_H_

#include <optional>
#include <string>
#include <vector>

#include "keys/xml_key.h"

namespace xmlprop {

/// A single-key witness explaining why Σ implies the *identification*
/// component of a key φ = (Qc, (Qt, S)): either the epsilon axiom
/// (witness_index unset, Qt ≡ ε), or a key k = (C, (T, S')) ∈ Σ with
/// S' ⊆ S whose target splits as T ≡ T1/T2 such that L(Qc) ⊆ L(C/T1)
/// (target-to-context + context containment) and L(Qt) ⊆ L(T2) (target
/// containment). See DESIGN.md §4.
struct ImplicationWitness {
  /// Index into Σ of the witnessing key; unset for the epsilon axiom.
  std::optional<size_t> witness_index;
  /// The split of the witnessing key's target (both ε for epsilon axiom).
  PathExpr t1;
  PathExpr t2;

  /// Human-readable derivation.
  std::string Describe(const std::vector<XmlKey>& sigma,
                       const XmlKey& phi) const;
};

/// Finds a single-key witness for the identification component of φ, or
/// nullopt. (ImpliesIdentification additionally closes under the
/// composition rule and so can succeed where this fails.)
std::optional<ImplicationWitness> FindWitness(const std::vector<XmlKey>& sigma,
                                              const XmlKey& phi);

/// Decides whether Σ forces the *identification* component of φ:
/// in every tree satisfying Σ, two target nodes of φ agreeing on all of
/// φ's attributes (when present) are the same node. This is condition (2)
/// of Definition 2.1 alone — attribute *existence* (condition 1) is
/// deliberately not required, because it is what the paper's `exist`
/// function (Fig. 5) checks separately; see AttributesExist.
///
/// Sound rules implemented (DESIGN.md §4):
///   - epsilon: a subtree has one root, so (C, (ε, S)) identifies;
///   - single-key witness per FindWitness (superkey S' ⊆ S + target-to-
///     context + the two containment rules);
///   - composition: Qt ≡ A/B with Σ forcing ≤1 A-node per Qc-context
///     (identification with S = ∅) and identification of B under Qc/A;
///   - weakening: at most one target ((Qc,(Qt,∅))) identifies under any S.
/// Polynomial via memoized recursion over splits.
bool ImpliesIdentification(const std::vector<XmlKey>& sigma,
                           const XmlKey& phi);

/// The paper's function `exist` (Fig. 5): true iff every attribute in
/// `attrs` is required by Σ to exist on every node reachable by
/// `node_path` — i.e. for each @l ∈ attrs some key (C, (T, S)) has
/// @l ∈ S and L(node_path) ⊆ L(C/T) (Definition 2.1 condition 1 makes
/// key attributes mandatory on target nodes).
bool AttributesExist(const std::vector<XmlKey>& sigma,
                     const PathExpr& node_path,
                     const std::vector<std::string>& attrs);

/// Algorithm `implication` (Section 4): full Definition 2.1 implication
/// Σ ⊨ φ — identification plus mandatory existence of φ's attributes on
/// its target nodes. Every tree satisfying Σ satisfies φ.
bool Implies(const std::vector<XmlKey>& sigma, const XmlKey& phi);

/// "(Q, (Q', S)) immediately precedes (Q1, (Q1', S1))" iff Q1 ≡ Q/Q'
/// (Section 4). The `precedes` relation is its transitive closure.
bool ImmediatelyPrecedes(const XmlKey& a, const XmlKey& b);

/// True iff `keys` is a *transitive set* (Section 4): every relative key
/// is preceded (transitively) by an absolute key in the set. A transitive
/// set identifies nodes uniquely within the whole document by providing
/// key values along the context chain up to the root (Example 4.1).
bool IsTransitiveSet(const std::vector<XmlKey>& keys);

}  // namespace xmlprop

#endif  // XMLPROP_KEYS_IMPLICATION_H_
