#ifndef XMLPROP_KEYS_DISCOVERY_H_
#define XMLPROP_KEYS_DISCOVERY_H_

#include <vector>

#include "common/result.h"
#include "keys/xml_key.h"
#include "xml/tree.h"

namespace xmlprop {

/// Bounds for the key-discovery search.
struct DiscoveryOptions {
  /// Largest key attribute set tried (∅ — "at most one target" — is
  /// always tried as well).
  size_t max_attributes = 2;
  /// Longest relative target path tried (simple label steps only).
  size_t max_target_length = 2;
  /// Safety cap on the number of (context, target) candidates examined.
  size_t max_candidates = 20000;
  /// When true, keys implied (Algorithm implication) by other discovered
  /// keys are pruned from the result.
  bool prune_implied = true;
  /// Minimum evidence: candidates whose total target count across all
  /// contexts is below this are dropped. 1 accepts everything the
  /// document supports; ≥2 filters out "keys" vacuously true on
  /// singleton targets (useful for autodesign on small samples).
  size_t min_targets = 1;
};

/// A key that holds on the examined document, with evidence counts.
struct DiscoveredKey {
  XmlKey key;
  /// Number of context nodes the key was checked under.
  size_t context_count = 0;
  /// Total number of target nodes across all contexts.
  size_t target_count = 0;
};

/// Mines the XML keys (class K⁻) satisfied by `tree`: the Example 1.1
/// situation in reverse — instead of "digging through the documentation",
/// propose the constraints the data obeys, to be confirmed by the data
/// owner. Discovered keys hold on *this* document; they are candidate
/// constraints, not guarantees.
///
/// Search space: contexts ε and //L for every element label L in the
/// document; targets are the label paths observed under the context
/// nodes (up to max_target_length, plus //L targets for the root
/// context); attribute sets are subsets (≤ max_attributes) of the
/// attributes common to every target node, plus ∅. Within one
/// (context, target) pair only minimal attribute sets are kept, and
/// (optionally) keys implied by the rest are pruned, so the result is a
/// reduced cover of what was observed.
Result<std::vector<DiscoveredKey>> DiscoverKeys(
    const Tree& tree, const DiscoveryOptions& options = {});

}  // namespace xmlprop

#endif  // XMLPROP_KEYS_DISCOVERY_H_
