#ifndef XMLPROP_COMMON_RNG_H_
#define XMLPROP_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace xmlprop {

/// Deterministic pseudo-random source used by the synthetic workload and
/// document generators and by property tests. Thin wrapper around
/// std::mt19937_64 so every generated artifact is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int UniformInt(int lo, int hi) {
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform size_t in [0, n-1]. Requires n > 0.
  size_t UniformIndex(size_t n) {
    std::uniform_int_distribution<size_t> dist(0, n - 1);
    return dist(engine_);
  }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p < 0 ? 0 : (p > 1 ? 1 : p));
    return dist(engine_);
  }

  /// A lowercase identifier of `len` characters.
  std::string Identifier(int len) {
    std::string s;
    s.reserve(static_cast<size_t>(len));
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + UniformInt(0, 25)));
    }
    return s;
  }

  /// Picks a uniformly random element of `v`. Requires v non-empty.
  template <typename T>
  const T& Choose(const std::vector<T>& v) {
    return v[UniformIndex(v.size())];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace xmlprop

#endif  // XMLPROP_COMMON_RNG_H_
