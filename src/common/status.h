#ifndef XMLPROP_COMMON_STATUS_H_
#define XMLPROP_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace xmlprop {

/// Machine-readable category of an error carried by a Status.
enum class StatusCode {
  kOk = 0,
  /// The input violates a syntactic rule (malformed XML, path, key or rule
  /// DSL text).
  kParseError,
  /// The input is syntactically fine but semantically invalid (e.g. a table
  /// rule that is not connected to the root, a key over an unknown relation).
  kInvalidArgument,
  /// A referenced entity (relation, field, variable, attribute) is missing.
  kNotFound,
  /// An internal invariant was broken; indicates a bug in this library.
  kInternal,
};

/// Returns a short human-readable name for `code` ("ParseError", ...).
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object: the result of an operation that can
/// fail without a value. Functions that produce a value use Result<T>.
///
/// Statuses are cheap to copy in the OK case (single pointer test) and
/// carry a code plus message otherwise. This library never throws across
/// its public API; all fallible entry points return Status or Result.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(message)})) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  /// The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const State> state_;
};

/// Propagates a non-OK Status out of the current function.
#define XMLPROP_RETURN_NOT_OK(expr)                \
  do {                                             \
    ::xmlprop::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (false)

/// Aborts the process (printing `context` and the status to stderr) when
/// `status` is not OK. For call sites whose contract makes failure a
/// programming error — e.g. arity-checked inserts after Build-time
/// validation — where discarding the Status (a bare `.ok()`) would
/// silently swallow bugs.
void CheckOk(const Status& status, const char* context);

}  // namespace xmlprop

#endif  // XMLPROP_COMMON_STATUS_H_
