#ifndef XMLPROP_COMMON_RESULT_H_
#define XMLPROP_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace xmlprop {

/// The result of a fallible computation producing a T: either a value or a
/// non-OK Status. Mirrors arrow::Result. Accessing the value of an errored
/// Result is a programming error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from a value — lets `return value;` work.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from a non-OK status — lets `return Status::...;` work.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() && "Result constructed from OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The carried status; Status::OK() when a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define XMLPROP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define XMLPROP_ASSIGN_OR_RETURN(lhs, expr) \
  XMLPROP_ASSIGN_OR_RETURN_IMPL(            \
      XMLPROP_CONCAT_(_result_, __LINE__), lhs, expr)

#define XMLPROP_CONCAT_INNER_(a, b) a##b
#define XMLPROP_CONCAT_(a, b) XMLPROP_CONCAT_INNER_(a, b)

}  // namespace xmlprop

#endif  // XMLPROP_COMMON_RESULT_H_
