#ifndef XMLPROP_COMMON_THREAD_POOL_H_
#define XMLPROP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace xmlprop {

/// A small fixed-size pool of worker threads with a plain shared task
/// queue — deliberately work-stealing-free: the implication engine only
/// submits statically partitioned chunks of independent queries, so a
/// single queue keeps the scheduling deterministic and the code tiny.
///
/// ParallelFor blocks the calling thread until every chunk has run, which
/// is what makes the engine's shard-merge-on-join discipline safe: while
/// a ParallelFor is in flight the caller cannot touch shared state, and
/// after it returns the workers are guaranteed idle.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (itself clamped to at least 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// The OS-visible name of worker slot `worker` ("xmlprop-wk-3") — the
  /// same string pthread_setname_np published, so trace thread tracks and
  /// external tools (top -H, perf) agree on naming.
  static std::string WorkerName(size_t worker);

  /// Runs body(begin, end, worker) over a static partition of [0, n) into
  /// size() contiguous chunks, one per worker slot, and waits for all of
  /// them. `worker` ∈ [0, size()) identifies the chunk's slot so callers
  /// can give each chunk private scratch state (the engine's memo
  /// shards). Chunks may execute on any thread and in any order; callers
  /// must only rely on the partition itself being deterministic.
  void ParallelFor(size_t n,
                   const std::function<void(size_t begin, size_t end,
                                            size_t worker)>& body);

  /// Enqueues one task for any idle worker and returns immediately — the
  /// asynchronous entry point the `xmlprop serve` request loop runs on
  /// (ParallelFor stays the batch API the reasoning kernels use). Tasks
  /// posted before destruction are drained, never dropped. Do not mix
  /// Post with ParallelFor on the same pool instance: ParallelFor's join
  /// waits for ALL in-flight tasks, posted ones included.
  void Post(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running — the
  /// server's drain barrier before shutdown.
  void Wait();

  /// Tasks queued or running right now (admission-control input; racy by
  /// nature, callers must tolerate small over/undershoot).
  size_t pending() const;

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace xmlprop

#endif  // XMLPROP_COMMON_THREAD_POOL_H_
