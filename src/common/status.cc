#include "common/status.h"

namespace xmlprop {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace xmlprop
