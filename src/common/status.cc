#include "common/status.h"

#include <cstdlib>
#include <string>

#include "obs/log.h"

namespace xmlprop {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

void CheckOk(const Status& status, const char* context) {
  if (status.ok()) return;
  obs::LogError("status", std::string(context) + ": " + status.ToString());
  std::abort();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace xmlprop
