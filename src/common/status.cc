#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace xmlprop {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

void CheckOk(const Status& status, const char* context) {
  if (status.ok()) return;
  std::fprintf(stderr, "%s: %s\n", context, status.ToString().c_str());
  std::abort();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace xmlprop
