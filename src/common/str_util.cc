#include "common/str_util.h"

#include <cctype>

namespace xmlprop {

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    std::string_view piece = (pos == std::string_view::npos)
                                 ? s.substr(start)
                                 : s.substr(start, pos - start);
    out.emplace_back(TrimWhitespace(piece));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

bool IsValidName(std::string_view s) {
  if (s.empty() || !IsNameStartChar(s[0])) return false;
  for (char c : s.substr(1)) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

}  // namespace xmlprop
