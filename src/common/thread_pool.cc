#include "common/thread_pool.h"

#include <algorithm>
#include <cstdio>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace xmlprop {

std::string ThreadPool::WorkerName(size_t worker) {
  // Linux thread names are capped at 15 chars + NUL; this fits to
  // 9999 workers.
  char buf[16];
  std::snprintf(buf, sizeof(buf), "xmlprop-wk-%zu", worker);
  return buf;
}

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] {
#if defined(__linux__)
      pthread_setname_np(pthread_self(), WorkerName(i).c_str());
#endif
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      // FIFO: the serve request loop posts here, and a queue that served
      // newest-first would starve the oldest waiting request.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    size_t n,
    const std::function<void(size_t begin, size_t end, size_t worker)>& body) {
  if (n == 0) return;
  const size_t workers = std::min(size(), n);
  if (workers <= 1) {
    body(0, n, 0);
    return;
  }
  const size_t chunk = (n + workers - 1) / workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t w = 0; w < workers; ++w) {
      const size_t begin = w * chunk;
      const size_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      ++in_flight_;
      queue_.push_back([&body, begin, end, w] { body(begin, end, w); });
    }
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++in_flight_;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

}  // namespace xmlprop
