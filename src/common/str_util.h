#ifndef XMLPROP_COMMON_STR_UTIL_H_
#define XMLPROP_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace xmlprop {

/// Splits `s` on `sep`, trimming ASCII whitespace from each piece.
/// Empty pieces are kept (so "a,,b" -> {"a", "", "b"}).
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `c` may start an XML name (letters, '_', ':').
bool IsNameStartChar(char c);

/// True iff `c` may continue an XML name (name start chars, digits, '-', '.').
bool IsNameChar(char c);

/// True iff `s` is a non-empty XML name per the two predicates above.
bool IsValidName(std::string_view s);

}  // namespace xmlprop

#endif  // XMLPROP_COMMON_STR_UTIL_H_
