#include "service/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace xmlprop {
namespace service {

Result<Reply> Call(const std::string& socket_path, const Request& request) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("connect: socket path too long: " +
                                   socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("connect: socket: ") +
                            std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string what = std::strerror(errno);
    ::close(fd);
    return Status::NotFound("connect " + socket_path + ": " + what +
                            " (is `xmlprop serve` running?)");
  }
  // A rejecting server (overloaded, shutting down) replies and closes
  // without reading the request, so this write can fail with EPIPE while
  // the reject frame already sits in our receive buffer — always attempt
  // the read and only report the write failure if no reply came back.
  const bool wrote = WriteFrame(fd, EncodeRequest(request));
  Result<std::string> frame = ReadFrame(fd);
  ::close(fd);
  if (!frame.ok()) {
    if (!wrote) return Status::Internal("connect: write failed");
    return Status::Internal("connect: no reply (" + frame.status().message() +
                            ")");
  }
  return DecodeReply(*frame);
}

}  // namespace service
}  // namespace xmlprop
