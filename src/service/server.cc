#include "service/server.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/log.h"
#include "obs/trace.h"

namespace xmlprop {
namespace service {

namespace {

double NowUnixMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Bounds how long a worker can block on one peer's socket. Without it an
// idle or half-dead client pins a pool worker plus an admitted slot
// until it goes away on its own.
void SetSocketTimeouts(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void WriteRejectAndClose(int fd, const std::string& kind,
                         const std::string& what) {
  Reply reply;
  reply.reject = kind;
  reply.exit_code = 1;
  reply.err = what;
  WriteFrame(fd, EncodeReply(reply));
  ::close(fd);
}

// Process-global observability/lifecycle flags a daemon request may not
// set (they would mutate state shared by every concurrent request). The
// same list guards RunForService; this copy produces the typed reject
// before the request is admitted to an ObsContext.
bool FindUnsupportedFlag(const std::vector<std::string>& argv,
                         std::string* which) {
  static constexpr const char* kGlobalFlags[] = {
      "trace",       "metrics",       "profile",
      "trace-format", "log-level",    "log-format",
      "log-file",    "quiet",         "metrics-format",
      "metrics-out", "metrics-interval-ms", "explain-cost",
      "crash-dump",  "slow-op-ms",    "stall-ms",
      "trace-retain", "no-flight-recorder", "connect"};
  for (const std::string& arg : argv) {
    for (const char* flag : kGlobalFlags) {
      const std::string name = std::string("--") + flag;
      if (arg == name || arg.rfind(name + "=", 0) == 0) {
        *which = flag;
        return true;
      }
    }
  }
  return false;
}

}  // namespace

ServiceServer::ServiceServer(const Options& options, CommandExecutor executor)
    : options_(options),
      executor_(std::move(executor)),
      cache_(SessionCache::Options{options.cache_bytes}),
      sampler_(options.trace_retain) {
  if (options_.stall_ms > 0) watchdog_.emplace(options_.stall_ms);
}

ServiceServer::~ServiceServer() { Shutdown(); }

Status ServiceServer::Start() {
  if (options_.socket_path.empty()) {
    return Status::InvalidArgument("serve: missing socket path");
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("serve: socket path too long: " +
                                   options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  // A stale socket file from a dead daemon would make bind fail forever.
  ::unlink(options_.socket_path.c_str());
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("serve: socket: ") +
                            std::strerror(errno));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("serve: bind " + options_.socket_path + ": " +
                            what);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("serve: listen: " + what);
  }
  pool_ = std::make_unique<ThreadPool>(options_.workers);
  if (!options_.metrics_out.empty() && options_.metrics_interval_ms > 0) {
    metrics_writer_.emplace(&registry_, options_.metrics_out,
                            options_.metrics_interval_ms);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  obs::LogInfo("serve", "listening",
               {obs::F("socket", options_.socket_path),
                obs::F("workers", static_cast<int64_t>(pool_->size())),
                obs::F("max_inflight",
                       static_cast<int64_t>(options_.max_inflight))});
  return Status::OK();
}

void ServiceServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown() on the listen socket wakes us with EINVAL; any other
      // error on a closed/stopping listener also ends the loop.
      break;
    }
    SetSocketTimeouts(fd, options_.io_timeout_ms);
    if (stopping_.load(std::memory_order_acquire)) {
      requests_rejected_.fetch_add(1, std::memory_order_relaxed);
      registry_.Add("service.rejected_shutting_down");
      WriteRejectAndClose(fd, "shutting-down", "server is shutting down");
      continue;
    }
    // Admission control: the pool queue is bounded by max_inflight; the
    // overflow gets a typed reject instead of unbounded buffering.
    const int admitted = inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (admitted > options_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      requests_rejected_.fetch_add(1, std::memory_order_relaxed);
      registry_.Add("service.rejected_overloaded");
      WriteRejectAndClose(
          fd, "overloaded",
          "server at capacity (" + std::to_string(options_.max_inflight) +
              " requests in flight); retry later");
      continue;
    }
    pool_->Post([this, fd] {
      HandleConnection(fd);
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
}

void ServiceServer::HandleConnection(int fd) {
  Result<std::string> frame = ReadFrame(fd);
  if (!frame.ok()) {
    // Clean EOF (a probe connection) gets no reply; garbage gets the
    // typed reject.
    if (frame.status().code() != StatusCode::kNotFound) {
      WriteRejectAndClose(fd, "bad-request", frame.status().message());
      return;
    }
    ::close(fd);
    return;
  }
  Reply reply;
  // Last-resort guard: nothing may throw past a pool worker (that would
  // std::terminate the daemon), so any stray exception from decode or
  // command execution becomes a typed reject on this one connection.
  try {
    Result<Request> request = DecodeRequest(*frame);
    if (!request.ok()) {
      reply.reject = "bad-request";
      reply.exit_code = 1;
      reply.err = request.status().message();
    } else {
      reply = Execute(*request);
    }
  } catch (const std::exception& e) {
    reply = Reply();
    reply.reject = "internal-error";
    reply.exit_code = 1;
    reply.err = std::string("unhandled exception: ") + e.what();
  } catch (...) {
    reply = Reply();
    reply.reject = "internal-error";
    reply.exit_code = 1;
    reply.err = "unhandled exception";
  }
  std::string payload = EncodeReply(reply);
  if (payload.size() > kMaxFrameBytes) {
    // WriteFrame would silently drop an oversized payload and the client
    // would report a generic "no reply"; tell it what happened instead.
    Reply oversize;
    oversize.reject = "oversized-reply";
    oversize.exit_code = 1;
    oversize.request_id = reply.request_id;
    oversize.wall_ms = reply.wall_ms;
    oversize.err = "reply of " + std::to_string(payload.size()) +
                   " bytes exceeds the frame cap of " +
                   std::to_string(kMaxFrameBytes) +
                   " bytes; run the command without --connect";
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    registry_.Add("service.rejected_oversized_reply");
    payload = EncodeReply(oversize);
  }
  WriteFrame(fd, payload);
  ::close(fd);
}

Reply ServiceServer::Execute(const Request& request) {
  Reply reply;
  if (request.op == "ping") {
    reply.body = "pong";
    return reply;
  }
  if (request.op == "metrics") {
    reply.body = MetricsExposition();
    return reply;
  }
  if (request.op == "stats") {
    reply.body = StatsJson();
    return reply;
  }
  if (request.op == "shutdown") {
    reply.body = "shutting down";
    // Flip admission off and wake the accept loop; the serve command's
    // Wait()/Shutdown() does the join + drain (joining the pool from a
    // pool worker would deadlock).
    if (!stopping_.exchange(true, std::memory_order_acq_rel)) {
      ::shutdown(listen_fd_, SHUT_RDWR);
    }
    return reply;
  }
  if (request.op != "run") {
    reply.reject = "bad-request";
    reply.exit_code = 1;
    reply.err = "unknown op '" + request.op + "'";
    return reply;
  }
  if (request.argv.empty()) {
    reply.reject = "bad-request";
    reply.exit_code = 1;
    reply.err = "run: empty argv";
    return reply;
  }
  std::string flag;
  if (FindUnsupportedFlag(request.argv, &flag)) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    registry_.Add("service.rejected_unsupported_flag");
    reply.reject = "unsupported-flag";
    reply.exit_code = 1;
    reply.err = "--" + flag +
                " is not available per-request in serve mode (configure it "
                "on `xmlprop serve`)";
    return reply;
  }

  // One ObsContext per request: private trace/metric/cost state, the
  // slow-op and stall planes, flight-recorder registration of (command,
  // request id) while open, and a fold into the server registry at close
  // so the process exposition is the sum over requests.
  obs::ObsContextOptions ctx_options;
  ctx_options.name = request.argv[0];
  ctx_options.slow_op_ms = options_.slow_op_ms;
  ctx_options.sampler = &sampler_;
  obs::ObsContext context(std::move(ctx_options));
  if (watchdog_) watchdog_->Watch(&context);
  std::ostringstream out;
  std::ostringstream err;
  int code;
  {
    obs::ScopedObsContext bind(&context);
    obs::Span root(context.name().c_str());
    code = executor_(request.argv, &cache_, out, err);
  }
  if (code == 1) context.MarkError(err.str());
  const obs::ObsContext::Result& result = context.Close(&registry_);
  registry_.Add("service.requests");
  registry_.Observe("service.request_ms", result.wall_ms);
  requests_served_.fetch_add(1, std::memory_order_relaxed);

  reply.exit_code = code;
  reply.out = out.str();
  reply.err = err.str();
  reply.wall_ms = result.wall_ms;
  reply.request_id = context.id();
  AccessLog(request, reply, result, context.id());
  return reply;
}

void ServiceServer::AccessLog(const Request& request, const Reply& reply,
                              const obs::ObsContext::Result& result,
                              uint64_t id) {
  if (options_.access_log.empty()) return;
  char buf[64];
  std::string line = "{\"ts_ms\": ";
  std::snprintf(buf, sizeof(buf), "%.3f", NowUnixMs());
  line.append(buf);
  line.append(", \"id\": " + std::to_string(id));
  line.append(", \"cmd\": \"" + JsonEscape(request.argv.empty()
                                               ? request.op
                                               : request.argv[0]) +
              "\"");
  line.append(", \"code\": " + std::to_string(reply.exit_code));
  std::snprintf(buf, sizeof(buf), "%.3f", result.wall_ms);
  line.append(", \"wall_ms\": ").append(buf);
  line.append(", \"slow\": ").append(result.slow ? "true" : "false");
  line.append(", \"error\": ").append(result.error ? "true" : "false");
  line.append(", \"trace_retained\": ")
      .append(result.retained ? "true" : "false");
  line.append("}\n");
  std::lock_guard<std::mutex> lock(access_log_mu_);
  if (options_.access_log == "-") {
    std::cerr << line;
  } else {
    std::ofstream f(options_.access_log, std::ios::app);
    if (f) f << line;
  }
}

std::string ServiceServer::MetricsExposition() {
  registry_.SetGauge("service.inflight",
                     inflight_.load(std::memory_order_relaxed));
  const SessionCache::Stats cache_stats = cache_.stats();
  registry_.SetGauge("service.cache_bytes",
                     static_cast<int64_t>(cache_stats.bytes));
  registry_.SetGauge("service.cache_entries",
                     static_cast<int64_t>(cache_stats.entries));
  registry_.SetGauge("service.cache_generation",
                     static_cast<int64_t>(cache_stats.generation));
  return obs::RenderOpenMetrics(registry_.Snapshot());
}

std::string ServiceServer::StatsJson() {
  const SessionCache::Stats s = cache_.stats();
  std::string out = "{";
  out += "\"requests_served\": " + std::to_string(requests_served()) + ", ";
  out += "\"requests_rejected\": " + std::to_string(requests_rejected()) +
         ", ";
  out += "\"inflight\": " +
         std::to_string(inflight_.load(std::memory_order_relaxed)) + ", ";
  out += "\"cache_hits\": " + std::to_string(s.hits) + ", ";
  out += "\"cache_misses\": " + std::to_string(s.misses) + ", ";
  out += "\"cache_evictions\": " + std::to_string(s.evictions) + ", ";
  out += "\"cache_invalidations\": " + std::to_string(s.invalidations) + ", ";
  out += "\"cache_rejected_oversize\": " +
         std::to_string(s.rejected_oversize) + ", ";
  out += "\"cache_generation\": " + std::to_string(s.generation) + ", ";
  out += "\"cache_entries\": " + std::to_string(s.entries) + ", ";
  out += "\"cache_bytes\": " + std::to_string(s.bytes);
  out += "}";
  return out;
}

void ServiceServer::Wait() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (accept_thread_.joinable()) accept_thread_.join();
  }
  Shutdown();
}

void ServiceServer::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (stopped_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_) pool_->Wait();
  // Watchdog before contexts is the safe order here: every request
  // context closed when its task finished, so the watchdog has no
  // watched entries left.
  watchdog_.reset();
  if (metrics_writer_) {
    metrics_writer_->Stop();  // final snapshot includes every fold
    metrics_writer_.reset();
  } else if (!options_.metrics_out.empty()) {
    obs::WriteOpenMetricsFile(registry_.Snapshot(), options_.metrics_out);
  }
  pool_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());
  stopped_.store(true, std::memory_order_release);
}

}  // namespace service
}  // namespace xmlprop
