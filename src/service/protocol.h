#ifndef XMLPROP_SERVICE_PROTOCOL_H_
#define XMLPROP_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace xmlprop {
namespace service {

// The `xmlprop serve` wire protocol: length-prefixed NDJSON over a Unix
// domain socket. Each frame is a 4-byte little-endian payload length
// followed by exactly one JSON object terminated with '\n' (the payload
// IS an NDJSON line; the length prefix lets both sides read without
// scanning and enforce the frame cap before buffering). One connection
// carries one request and one reply.

/// Frames larger than this are rejected before buffering — a corrupt
/// length prefix must not allocate gigabytes.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Protocol revision, echoed in every reply.
inline constexpr int kProtocolVersion = 1;

struct Request {
  /// "run" executes `argv` as a CLI command line; "ping", "metrics",
  /// "stats" and "shutdown" are control operations (argv ignored).
  std::string op;
  std::vector<std::string> argv;
};

struct Reply {
  /// Empty = the request was admitted and executed. Otherwise the typed
  /// reject kind: "overloaded" (admission control), "bad-request"
  /// (unparseable frame / read timeout), "unsupported-flag" (a
  /// process-global flag in serve mode), "shutting-down",
  /// "oversized-reply" (output exceeds the frame cap), "internal-error"
  /// (unexpected exception; the daemon survives).
  std::string reject;
  int exit_code = 0;
  std::string out;   ///< the command's stdout, byte-for-byte
  std::string err;   ///< the command's stderr / diagnostics
  std::string body;  ///< control-op payload (metrics exposition, stats)
  double wall_ms = 0;
  uint64_t request_id = 0;
};

std::string EncodeRequest(const Request& request);
Result<Request> DecodeRequest(const std::string& json);
std::string EncodeReply(const Reply& reply);
Result<Reply> DecodeReply(const std::string& json);

/// Escapes `s` as the inside of a JSON string literal (no quotes).
std::string JsonEscape(const std::string& s);

/// Writes one frame (length prefix + payload) to `fd`, retrying short
/// writes. Returns false on I/O error.
bool WriteFrame(int fd, const std::string& payload);

/// Reads one frame's payload from `fd`. NotFound on clean EOF before any
/// byte, InvalidArgument on oversized frames, Internal on I/O errors or
/// truncated frames.
Result<std::string> ReadFrame(int fd);

}  // namespace service
}  // namespace xmlprop

#endif  // XMLPROP_SERVICE_PROTOCOL_H_
