#include "service/protocol.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>

#include <sys/socket.h>
#include <unistd.h>

namespace xmlprop {
namespace service {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

void AppendString(std::string* out, const char* key, const std::string& v) {
  out->push_back('"');
  out->append(key);
  out->append("\": \"");
  AppendEscaped(out, v);
  out->push_back('"');
}

// -------------------------------------------------------------------------
// A minimal recursive-descent parser for the protocol's own JSON: objects
// with string keys and string / number / bool / array-of-string values.
// Both ends of the wire are this codec, so the subset is closed.

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Status Fail(const std::string& what) {
    return Status::InvalidArgument("protocol: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Fail("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // The codec only emits \u00XX for control bytes; decode the
          // low byte and pass anything else through as UTF-8-ish bytes.
          if (value < 0x80) {
            out.push_back(static_cast<char>(value));
          } else if (value < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (value >> 6)));
            out.push_back(static_cast<char>(0x80 | (value & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (value >> 12)));
            out.push_back(static_cast<char>(0x80 | ((value >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (value & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Result<double> ParseNumber() {
    SkipWs();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::strchr("+-.eE0123456789", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected number");
    // The char scan above is permissive (it accepts "-", ".", "1e999");
    // stod must not throw out of a daemon worker, so convert guarded and
    // require the whole token to be consumed.
    const std::string token = text_.substr(start, pos_ - start);
    try {
      size_t consumed = 0;
      const double value = std::stod(token, &consumed);
      if (consumed != token.size()) return Fail("bad number");
      return value;
    } catch (const std::exception&) {
      return Fail("bad number");
    }
  }

  Result<bool> ParseBool() {
    SkipWs();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    return Fail("expected bool");
  }

  Result<std::vector<std::string>> ParseStringArray() {
    if (!Consume('[')) return Fail("expected array");
    std::vector<std::string> out;
    if (Consume(']')) return out;
    for (;;) {
      XMLPROP_ASSIGN_OR_RETURN(std::string item, ParseString());
      out.push_back(std::move(item));
      if (Consume(']')) return out;
      if (!Consume(',')) return Fail("expected ',' in array");
    }
  }

  /// Skips one value of ANY JSON shape — including nested objects and
  /// heterogeneous arrays the current revision never emits — so unknown
  /// keys stay ignorable across protocol revisions.
  Status SkipValue() {
    switch (Peek()) {
      case '"':
        return ParseString().status();
      case '[': {
        Consume('[');
        if (Consume(']')) return Status::OK();
        for (;;) {
          const Status item = SkipValue();
          if (!item.ok()) return item;
          if (Consume(']')) return Status::OK();
          if (!Consume(',')) return Fail("expected ',' in array");
        }
      }
      case '{': {
        Consume('{');
        if (Consume('}')) return Status::OK();
        for (;;) {
          Result<std::string> key = ParseString();
          if (!key.ok()) return key.status();
          if (!Consume(':')) return Fail("expected ':'");
          const Status value = SkipValue();
          if (!value.ok()) return value;
          if (Consume('}')) return Status::OK();
          if (!Consume(',')) return Fail("expected ',' in object");
        }
      }
      case 't':
      case 'f':
        return ParseBool().status();
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return Status::OK();
        }
        return Fail("expected null");
      default:
        return ParseNumber().status();
    }
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

template <typename FieldFn>
Status ParseObject(Parser* p, const FieldFn& field) {
  if (!p->Consume('{')) return p->Fail("expected object");
  if (p->Consume('}')) return Status::OK();
  for (;;) {
    Result<std::string> key = p->ParseString();
    if (!key.ok()) return key.status();
    if (!p->Consume(':')) return p->Fail("expected ':'");
    Status field_status = field(*key);
    if (!field_status.ok()) return field_status;
    if (p->Consume('}')) return Status::OK();
    if (!p->Consume(',')) return p->Fail("expected ',' in object");
  }
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  AppendEscaped(&out, s);
  return out;
}

std::string EncodeRequest(const Request& request) {
  std::string out = "{";
  AppendString(&out, "op", request.op);
  out.append(", \"argv\": [");
  for (size_t i = 0; i < request.argv.size(); ++i) {
    if (i > 0) out.append(", ");
    out.push_back('"');
    AppendEscaped(&out, request.argv[i]);
    out.push_back('"');
  }
  out.append("]}\n");
  return out;
}

Result<Request> DecodeRequest(const std::string& json) {
  Parser p(json);
  Request request;
  const Status parsed =
      ParseObject(&p, [&](const std::string& key) -> Status {
        if (key == "op") {
          XMLPROP_ASSIGN_OR_RETURN(request.op, p.ParseString());
          return Status::OK();
        }
        if (key == "argv") {
          XMLPROP_ASSIGN_OR_RETURN(request.argv, p.ParseStringArray());
          return Status::OK();
        }
        return p.SkipValue();
      });
  if (!parsed.ok()) return parsed;
  if (request.op.empty()) {
    return Status::InvalidArgument("protocol: request missing op");
  }
  return request;
}

std::string EncodeReply(const Reply& reply) {
  std::string out = "{\"v\": " + std::to_string(kProtocolVersion);
  out.append(", ");
  AppendString(&out, "reject", reply.reject);
  out.append(", \"exit_code\": " + std::to_string(reply.exit_code));
  out.append(", \"request_id\": " + std::to_string(reply.request_id));
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", reply.wall_ms);
  out.append(", \"wall_ms\": ").append(buf);
  out.append(", ");
  AppendString(&out, "out", reply.out);
  out.append(", ");
  AppendString(&out, "err", reply.err);
  out.append(", ");
  AppendString(&out, "body", reply.body);
  out.append("}\n");
  return out;
}

Result<Reply> DecodeReply(const std::string& json) {
  Parser p(json);
  Reply reply;
  const Status parsed =
      ParseObject(&p, [&](const std::string& key) -> Status {
        if (key == "reject") {
          XMLPROP_ASSIGN_OR_RETURN(reply.reject, p.ParseString());
        } else if (key == "exit_code") {
          XMLPROP_ASSIGN_OR_RETURN(double v, p.ParseNumber());
          reply.exit_code = static_cast<int>(v);
        } else if (key == "request_id") {
          XMLPROP_ASSIGN_OR_RETURN(double v, p.ParseNumber());
          reply.request_id = static_cast<uint64_t>(v);
        } else if (key == "wall_ms") {
          XMLPROP_ASSIGN_OR_RETURN(reply.wall_ms, p.ParseNumber());
        } else if (key == "out") {
          XMLPROP_ASSIGN_OR_RETURN(reply.out, p.ParseString());
        } else if (key == "err") {
          XMLPROP_ASSIGN_OR_RETURN(reply.err, p.ParseString());
        } else if (key == "body") {
          XMLPROP_ASSIGN_OR_RETURN(reply.body, p.ParseString());
        } else {
          return p.SkipValue();
        }
        return Status::OK();
      });
  if (!parsed.ok()) return parsed;
  return reply;
}

bool WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const uint32_t n = static_cast<uint32_t>(payload.size());
  unsigned char prefix[4] = {
      static_cast<unsigned char>(n & 0xFF),
      static_cast<unsigned char>((n >> 8) & 0xFF),
      static_cast<unsigned char>((n >> 16) & 0xFF),
      static_cast<unsigned char>((n >> 24) & 0xFF),
  };
  std::string frame(reinterpret_cast<char*>(prefix), 4);
  frame.append(payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not kill
    // the daemon with SIGPIPE.
    const ssize_t w = ::send(fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  return true;
}

namespace {

// Reads exactly `n` bytes; 0 = clean EOF before any byte, -1 = error or
// truncation, 1 = success.
int ReadExact(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) {
      if (got == 0) return 0;
      errno = 0;  // truncation, not an errno condition
      return -1;
    }
    got += static_cast<size_t>(r);
  }
  return 1;
}

}  // namespace

Result<std::string> ReadFrame(int fd) {
  char prefix[4];
  const int header = ReadExact(fd, prefix, 4);
  if (header == 0) return Status::NotFound("eof");
  if (header < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Internal("protocol: read timed out");
    }
    return Status::Internal("protocol: truncated frame header");
  }
  const uint32_t n = static_cast<uint32_t>(static_cast<unsigned char>(prefix[0])) |
                     (static_cast<uint32_t>(static_cast<unsigned char>(prefix[1])) << 8) |
                     (static_cast<uint32_t>(static_cast<unsigned char>(prefix[2])) << 16) |
                     (static_cast<uint32_t>(static_cast<unsigned char>(prefix[3])) << 24);
  if (n > kMaxFrameBytes) {
    return Status::InvalidArgument("protocol: frame exceeds " +
                                   std::to_string(kMaxFrameBytes) + " bytes");
  }
  std::string payload(n, '\0');
  if (n > 0 && ReadExact(fd, payload.data(), n) != 1) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Internal("protocol: read timed out");
    }
    return Status::Internal("protocol: truncated frame payload");
  }
  return payload;
}

}  // namespace service
}  // namespace xmlprop
