#ifndef XMLPROP_SERVICE_CLIENT_H_
#define XMLPROP_SERVICE_CLIENT_H_

#include <string>

#include "common/result.h"
#include "service/protocol.h"

namespace xmlprop {
namespace service {

/// Sends one request to the daemon at `socket_path` and reads the reply.
/// NotFound when the socket does not exist / nothing listens; Internal on
/// wire errors.
Result<Reply> Call(const std::string& socket_path, const Request& request);

}  // namespace service
}  // namespace xmlprop

#endif  // XMLPROP_SERVICE_CLIENT_H_
