#include "service/session_cache.h"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>

#include "core/minimum_cover.h"
#include "core/naive_cover.h"
#include "obs/mem_stats.h"
#include "obs/metrics.h"
#include "transform/rule_parser.h"
#include "xml/parser.h"
#include "xml/tree_index.h"

namespace xmlprop {
namespace service {

namespace {

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Stats every source path into one signature vector. Any stat failure
// maps to NotFound, mirroring ReadFileBytes.
Result<std::vector<SessionCache::StatSig>> StatSources(
    const std::vector<std::string>& source_paths) {
  std::vector<SessionCache::StatSig> sigs;
  sigs.reserve(source_paths.size());
  for (const std::string& path : source_paths) {
    struct ::stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return Status::NotFound("cannot stat file: " + path);
    }
    SessionCache::StatSig sig;
    sig.ino = static_cast<uint64_t>(st.st_ino);
    sig.size = static_cast<uint64_t>(st.st_size);
    sig.mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                   static_cast<int64_t>(st.st_mtim.tv_nsec);
    sigs.push_back(sig);
  }
  return sigs;
}

// File mtimes tick on the kernel's coarse clock, so an in-place rewrite
// can land inside the same timestamp as the bytes an entry was stamped
// with. A signature is only trusted once its mtime is safely in the
// past (the git "racy timestamp" guard); fresher files take the
// content-fingerprint path.
bool SigsSettled(const std::vector<SessionCache::StatSig>& sigs) {
  struct ::timespec now;
  if (::clock_gettime(CLOCK_REALTIME, &now) != 0) return false;
  const int64_t now_ns =
      static_cast<int64_t>(now.tv_sec) * 1000000000 + now.tv_nsec;
  constexpr int64_t kSettleNs = 20 * 1000 * 1000;  // > one jiffy at HZ=100
  for (const SessionCache::StatSig& sig : sigs) {
    if (sig.mtime_ns + kSettleNs > now_ns) return false;
  }
  return true;
}

// The "index: ..." line LoadIndexedDoc prints, minus the output-dialect
// prefix (the CLI prepends that at print time).
std::string IndexStatsLine(const IndexedDoc& doc, double ms) {
  std::ostringstream line;
  line << "index: " << doc.tree->size() << " nodes ("
       << doc.index->element_count() << " elements, "
       << doc.index->attribute_count() << " attributes), "
       << doc.index->label_count() << " labels, " << doc.index->value_count()
       << " attr values, built in " << ms << " ms\n";
  return line.str();
}

}  // namespace

uint64_t Fingerprint64(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

SessionCache::SessionCache(const Options& options) : options_(options) {}
SessionCache::~SessionCache() = default;

void SessionCache::EvictToFitLocked(size_t incoming_bytes) {
  while (bytes_ + incoming_bytes > options_.max_bytes && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    if (it != entries_.end()) {
      bytes_ -= it->second.bytes;
      entries_.erase(it);
      ++stats_.evictions;
      obs::Count("service.cache_evictions");
    }
  }
}

void SessionCache::InsertLocked(const std::string& key, uint64_t fingerprint,
                                std::vector<StatSig> sigs, Built built) {
  // A racing builder may have inserted under this key between our miss
  // check and now; release its bytes and LRU node first, or bytes_
  // inflates permanently and the stale LRU node can later evict the
  // fresh entry as if least-recently-used.
  DropEntryLocked(key);
  EvictToFitLocked(built.bytes);
  Entry entry;
  entry.fingerprint = fingerprint;
  entry.generation = stats_.generation;
  entry.bytes = built.bytes;
  entry.sigs = std::move(sigs);
  entry.artifact = std::move(built.artifact);
  entry.stats_line = std::move(built.stats_line);
  entry.engine_mu = std::move(built.engine_mu);
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  bytes_ += entry.bytes;
  entries_[key] = std::move(entry);
}

void SessionCache::DropEntryLocked(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  ++stats_.invalidations;
  ++stats_.generation;
}

template <typename BuildFn>
Result<SessionCache::Entry> SessionCache::GetOrBuild(
    const std::string& key, const std::vector<std::string>& source_paths,
    const BuildFn& build) {
  // O(1) fast path: if every source stats to the signature the entry was
  // stamped with, the bytes cannot have changed (rename-replace swaps
  // the inode, in-place writes move the nanosecond mtime) — serve the
  // hit without touching file contents.
  Result<std::vector<StatSig>> sigs = StatSources(source_paths);
  if (!sigs.ok()) {
    // An unreadable source also invalidates whatever was cached for it.
    std::lock_guard<std::mutex> lock(mu_);
    DropEntryLocked(key);
    return sigs.status();
  }
  if (SigsSettled(*sigs)) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.sigs == *sigs) {
      ++stats_.hits;
      obs::Count("service.cache_hits");
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second;
    }
  }

  // Slow path. One read serves both the fingerprint and (on a miss) the
  // parse, so an answer is always computed from the exact bytes it was
  // stamped with.
  std::vector<std::string> sources;
  size_t source_bytes = 0;
  uint64_t fingerprint = 0;
  for (const std::string& path : source_paths) {
    Result<std::string> bytes = ReadFileBytes(path);
    if (!bytes.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      DropEntryLocked(key);
      return bytes.status();
    }
    source_bytes += bytes->size();
    // Chain the per-file hashes so file order matters.
    fingerprint = fingerprint * 1099511628211ull + Fingerprint64(*bytes);
    sources.push_back(*std::move(bytes));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (it->second.fingerprint == fingerprint) {
        // Touched but byte-identical (or the stat raced a concurrent
        // replace that landed the same content): refresh the signature
        // and keep serving the artifact.
        it->second.sigs = *std::move(sigs);
        ++stats_.hits;
        obs::Count("service.cache_hits");
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        return it->second;
      }
      // Source changed under the same key: stamp a new generation and
      // rebuild below.
      DropEntryLocked(key);
      obs::Count("service.cache_invalidations");
    }
    ++stats_.misses;
    obs::Count("service.cache_misses");
  }

  // Single-flight: one build at a time, which also keeps the
  // process-global ScopedMemAccounting scope exclusive.
  std::lock_guard<std::mutex> build_lock(build_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.fingerprint == fingerprint) {
      // Lost the race to another request building the same artifact.
      ++stats_.hits;
      obs::Count("service.cache_hits");
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second;
    }
  }

  Built built;
  {
    obs::ScopedMemAccounting accounting;
    Result<Built> result = build(sources);
    if (!result.ok()) return result.status();
    built = *std::move(result);
    const obs::MemorySummary mem = accounting.Snapshot();
    size_t accounted =
        mem.hooks_enabled && mem.live_bytes > 0
            ? static_cast<size_t>(mem.live_bytes)
            : source_bytes * 2;  // hooks unavailable: size-proportional guess
    built.bytes = std::max(accounted, source_bytes);
  }

  Entry out;
  out.fingerprint = fingerprint;
  out.bytes = built.bytes;
  out.sigs = *sigs;
  out.artifact = built.artifact;
  out.stats_line = built.stats_line;
  out.engine_mu = built.engine_mu;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.generation = stats_.generation;
    if (built.bytes > options_.max_bytes) {
      // Uncacheable: still serve the artifact, just do not retain it.
      ++stats_.rejected_oversize;
      obs::Count("service.cache_rejected_oversize");
    } else {
      InsertLocked(key, fingerprint, *std::move(sigs), std::move(built));
    }
  }
  return out;
}

Result<std::shared_ptr<const std::vector<XmlKey>>> SessionCache::Keys(
    const std::string& path) {
  XMLPROP_ASSIGN_OR_RETURN(
      Entry entry,
      GetOrBuild("keys\t" + path, {path},
                 [](const std::vector<std::string>& sources) -> Result<Built> {
                   XMLPROP_ASSIGN_OR_RETURN(std::vector<XmlKey> keys,
                                            ParseKeySet(sources[0]));
                   Built built;
                   built.artifact = std::make_shared<const std::vector<XmlKey>>(
                       std::move(keys));
                   return built;
                 }));
  return std::static_pointer_cast<const std::vector<XmlKey>>(entry.artifact);
}

Result<std::shared_ptr<const Transformation>> SessionCache::Rules(
    const std::string& path) {
  XMLPROP_ASSIGN_OR_RETURN(
      Entry entry,
      GetOrBuild("rules\t" + path, {path},
                 [](const std::vector<std::string>& sources) -> Result<Built> {
                   XMLPROP_ASSIGN_OR_RETURN(Transformation rules,
                                            ParseTransformation(sources[0]));
                   Built built;
                   built.artifact =
                       std::make_shared<const Transformation>(std::move(rules));
                   return built;
                 }));
  return std::static_pointer_cast<const Transformation>(entry.artifact);
}

Result<std::shared_ptr<const Tree>> SessionCache::Doc(
    const std::string& path) {
  XMLPROP_ASSIGN_OR_RETURN(
      Entry entry,
      GetOrBuild("doc\t" + path, {path},
                 [](const std::vector<std::string>& sources) -> Result<Built> {
                   XMLPROP_ASSIGN_OR_RETURN(Tree tree, ParseXml(sources[0]));
                   // Finalize the lazily derived Euler ranges now, while
                   // the tree is still private to the build: shared
                   // readers then only ever touch immutable state.
                   tree.FinalizeEuler();
                   Built built;
                   built.artifact =
                       std::make_shared<const Tree>(std::move(tree));
                   return built;
                 }));
  return std::static_pointer_cast<const Tree>(entry.artifact);
}

Result<std::shared_ptr<const IndexedDoc>> SessionCache::Indexed(
    const std::string& path, bool streaming, std::string* stats_line) {
  const std::string key =
      std::string("indexed\t") + (streaming ? "s\t" : "t\t") + path;
  XMLPROP_ASSIGN_OR_RETURN(
      Entry entry,
      GetOrBuild(
          key, {path},
          [streaming](const std::vector<std::string>& sources)
              -> Result<Built> {
            IndexedDoc doc;
            double ms = 0;
            if (streaming) {
              const auto start = std::chrono::steady_clock::now();
              XMLPROP_ASSIGN_OR_RETURN(doc, ParseXmlIndexed(sources[0]));
              ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
            } else {
              XMLPROP_ASSIGN_OR_RETURN(Tree tree, ParseXml(sources[0]));
              doc.tree = std::make_unique<Tree>(std::move(tree));
              const auto start = std::chrono::steady_clock::now();
              doc.index = std::make_unique<TreeIndex>(*doc.tree);
              ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
            }
            doc.tree->FinalizeEuler();
            Built built;
            built.stats_line = IndexStatsLine(doc, ms);
            built.artifact = std::shared_ptr<const IndexedDoc>(
                new IndexedDoc(std::move(doc)));
            return built;
          }));
  if (stats_line != nullptr) *stats_line = entry.stats_line;
  return std::static_pointer_cast<const IndexedDoc>(entry.artifact);
}

Result<EngineLease> SessionCache::Engine(const std::string& keys_path) {
  XMLPROP_ASSIGN_OR_RETURN(
      Entry entry,
      GetOrBuild("engine\t" + keys_path, {keys_path},
                 [](const std::vector<std::string>& sources) -> Result<Built> {
                   XMLPROP_ASSIGN_OR_RETURN(std::vector<XmlKey> keys,
                                            ParseKeySet(sources[0]));
                   Built built;
                   built.artifact = std::shared_ptr<const ImplicationEngine>(
                       new ImplicationEngine(std::move(keys)));
                   built.engine_mu = std::make_shared<std::mutex>();
                   return built;
                 }));
  // The lease mutates the engine's memo; the cache stores it const-
  // erased but hands out exclusive access, so the cast is sound.
  auto engine = std::const_pointer_cast<ImplicationEngine>(
      std::static_pointer_cast<const ImplicationEngine>(entry.artifact));
  return EngineLease(std::move(engine), std::move(entry.engine_mu));
}

Result<std::shared_ptr<const CoverArtifact>> SessionCache::Cover(
    const std::string& keys_path, const std::string& rules_path,
    const std::string& relation, bool naive) {
  const std::string key = "cover\t" + keys_path + "\t" + rules_path + "\t" +
                          relation + "\t" + (naive ? "n" : "m");
  XMLPROP_ASSIGN_OR_RETURN(
      Entry entry,
      GetOrBuild(
          key, {keys_path, rules_path},
          [&relation, naive](
              const std::vector<std::string>& sources) -> Result<Built> {
            XMLPROP_ASSIGN_OR_RETURN(std::vector<XmlKey> keys,
                                     ParseKeySet(sources[0]));
            XMLPROP_ASSIGN_OR_RETURN(Transformation rules,
                                     ParseTransformation(sources[1]));
            const TableRule* rule = nullptr;
            if (!relation.empty()) {
              XMLPROP_ASSIGN_OR_RETURN(rule, rules.FindRule(relation));
            } else if (rules.rules().size() == 1) {
              rule = &rules.rules()[0];
            } else {
              return Status::InvalidArgument(
                  "the rules file defines several relations; pick one with "
                  "--relation NAME");
            }
            XMLPROP_ASSIGN_OR_RETURN(TableTree table, TableTree::Build(*rule));
            auto artifact = std::make_shared<CoverArtifact>();
            XMLPROP_ASSIGN_OR_RETURN(
                artifact->cover, naive ? NaiveMinimumCover(keys, table)
                                       : MinimumCover(keys, table));
            artifact->table = std::move(table);
            Built built;
            built.artifact = std::shared_ptr<const CoverArtifact>(artifact);
            return built;
          }));
  return std::static_pointer_cast<const CoverArtifact>(entry.artifact);
}

SessionCache::Stats SessionCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = entries_.size();
  out.bytes = bytes_;
  return out;
}

void SessionCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  ++stats_.generation;
}

}  // namespace service
}  // namespace xmlprop
