#ifndef XMLPROP_SERVICE_SESSION_CACHE_H_
#define XMLPROP_SERVICE_SESSION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/artifacts.h"

namespace xmlprop {
namespace service {

/// Content fingerprint (FNV-1a, 64-bit) — the generation stamp's input.
uint64_t Fingerprint64(const std::string& bytes);

/// The daemon's keyed compiled-artifact cache: one SessionCache serves
/// every request of an `xmlprop serve` process.
///
/// Keys are (artifact kind, source path[, parameters]); entries carry
/// the fingerprint of the source bytes they were compiled from plus the
/// stat signature (inode, size, nanosecond mtime) of each source file.
/// A lookup whose sources stat to the stamped signatures is a hit in
/// O(1) — no byte is re-read. When the signature differs the source is
/// re-read and re-fingerprinted: a fingerprint match refreshes the
/// signature and stays a hit (the file was rewritten with identical
/// bytes), a mismatch invalidates the stale entry and rebuilds — the
/// generation counter stamps each rebuild, so a document or Σ change is
/// observable in `stats()` and never serves stale verdicts.
///
/// Capacity is bounded by accounted bytes. Builds run single-flight
/// under one build mutex (also making the process-global
/// ScopedMemAccounting scope exclusive); accounted bytes are the build's
/// live allocation delta, floored at the source text size. The
/// accounting is approximate under concurrency (allocations of requests
/// running during a build window land in the build's scope) — it bounds
/// memory, it is not a profiler. An artifact larger than the whole
/// budget is returned uncached (`rejected_oversize`). Eviction is LRU;
/// evicting an entry only drops the cache's reference — leases and
/// shared_ptr holders keep using their artifact safely.
///
/// Thread-safe. ImplicationEngines are handed out under a per-engine
/// mutex (EngineLease) because the engine memo is externally
/// synchronized; everything else is shared immutable state (Trees have
/// their Euler ranges finalized at build time).
class SessionCache : public ArtifactProvider {
 public:
  struct Options {
    /// Accounted-byte budget. 0 = cache nothing (every build is a miss
    /// and returned uncached — the ablation configuration).
    size_t max_bytes = 256u << 20;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;   ///< fingerprint-mismatch rebuilds
    uint64_t rejected_oversize = 0;
    uint64_t generation = 0;      ///< bumped on every invalidation
    size_t entries = 0;
    size_t bytes = 0;
  };

  /// The O(1) hit-validation signature of one source file. A lookup
  /// whose sources all stat to the signatures the entry was stamped with
  /// is served without re-reading the bytes; any difference (inode —
  /// rename-replace always allocates a new one — size, or nanosecond
  /// mtime) falls back to the full content-fingerprint check, so an
  /// in-place rewrite with identical bytes refreshes the signature and
  /// stays a hit while a real change invalidates.
  struct StatSig {
    uint64_t ino = 0;
    uint64_t size = 0;
    int64_t mtime_ns = 0;
    bool operator==(const StatSig& other) const {
      return ino == other.ino && size == other.size &&
             mtime_ns == other.mtime_ns;
    }
  };

  explicit SessionCache(const Options& options);
  ~SessionCache() override;

  Result<std::shared_ptr<const std::vector<XmlKey>>> Keys(
      const std::string& path) override;
  Result<std::shared_ptr<const Transformation>> Rules(
      const std::string& path) override;
  Result<std::shared_ptr<const Tree>> Doc(const std::string& path) override;
  Result<std::shared_ptr<const IndexedDoc>> Indexed(
      const std::string& path, bool streaming,
      std::string* stats_line) override;
  Result<EngineLease> Engine(const std::string& keys_path) override;
  Result<std::shared_ptr<const CoverArtifact>> Cover(
      const std::string& keys_path, const std::string& rules_path,
      const std::string& relation, bool naive) override;

  Stats stats() const;

  /// Drops every entry and bumps the generation (e.g. on SIGHUP-style
  /// reconfiguration). In-flight artifact holders are unaffected.
  void Clear();

 private:
  struct Entry {
    uint64_t fingerprint = 0;
    uint64_t generation = 0;
    size_t bytes = 0;
    std::vector<StatSig> sigs;              ///< fast-path validation stamp
    std::shared_ptr<const void> artifact;
    std::string stats_line;                 ///< Indexed entries only
    std::shared_ptr<std::mutex> engine_mu;  ///< Engine entries only
    std::list<std::string>::iterator lru_it;
  };

  struct Built {
    std::shared_ptr<const void> artifact;
    size_t bytes = 0;
    std::string stats_line;
    std::shared_ptr<std::mutex> engine_mu;
  };

  /// Hit: returns the entry's artifact (LRU-touched). Miss/stale: calls
  /// `build(source_bytes)` single-flight and inserts the result.
  template <typename BuildFn>
  Result<Entry> GetOrBuild(const std::string& key,
                           const std::vector<std::string>& source_paths,
                           const BuildFn& build);

  void InsertLocked(const std::string& key, uint64_t fingerprint,
                    std::vector<StatSig> sigs, Built built);
  void DropEntryLocked(const std::string& key);
  void EvictToFitLocked(size_t incoming_bytes);

  const Options options_;
  mutable std::mutex mu_;
  std::mutex build_mu_;  ///< single-flight build serialization
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< front = most recently used
  size_t bytes_ = 0;
  Stats stats_;
};

}  // namespace service
}  // namespace xmlprop

#endif  // XMLPROP_SERVICE_SESSION_CACHE_H_
