#ifndef XMLPROP_SERVICE_ARTIFACTS_H_
#define XMLPROP_SERVICE_ARTIFACTS_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "keys/implication_engine.h"
#include "keys/xml_key.h"
#include "relational/fd_set.h"
#include "transform/rule.h"
#include "transform/table_tree.h"
#include "xml/stream_parser.h"
#include "xml/tree.h"

namespace xmlprop {
namespace service {

/// A cached minimum cover: the TableTree it was computed over (the
/// schema the FDs print against) plus the cover itself. Shared readers
/// may only enumerate `cover.fds()` / read `table.schema()` — closure
/// queries against a shared FdSet would race on its lazily compiled
/// index.
struct CoverArtifact {
  TableTree table;
  FdSet cover;
};

/// Exclusive access to a resident ImplicationEngine. The engine is
/// externally synchronized (its memo tables are mutated by queries), so
/// the provider hands it out under a per-engine mutex: the lease holds
/// the lock for its lifetime, serializing requests that share one key
/// set while letting requests on different key sets run concurrently.
/// The shared_ptr keeps the engine alive even if the cache evicts the
/// entry mid-request.
class EngineLease {
 public:
  EngineLease() = default;
  EngineLease(std::shared_ptr<ImplicationEngine> engine,
              std::shared_ptr<std::mutex> mu)
      : mu_(std::move(mu)), engine_(std::move(engine)) {
    if (mu_) lock_ = std::unique_lock<std::mutex>(*mu_);
  }
  EngineLease(EngineLease&&) = default;
  EngineLease& operator=(EngineLease&&) = default;

  ImplicationEngine& engine() { return *engine_; }
  bool valid() const { return engine_ != nullptr; }

 private:
  // Declaration order matters: the lock must release before the mutex's
  // shared_ptr drops its reference.
  std::shared_ptr<std::mutex> mu_;
  std::shared_ptr<ImplicationEngine> engine_;
  std::unique_lock<std::mutex> lock_;
};

/// The compiled-artifact plane the CLI command bodies load through when
/// they run inside the `xmlprop serve` daemon. A one-shot run passes no
/// provider and parses its inputs from scratch; the daemon passes its
/// SessionCache, so repeated requests reuse the parsed key set, the
/// parsed transformation, the document Tree, the TreeIndex, the
/// ImplicationEngine memo and non-engine minimum covers across requests.
///
/// Every getter re-fingerprints the named file's bytes: a changed file
/// is rebuilt (and the stale entry invalidated), so answers are always
/// computed against the file's current content — the cache trades parse
/// work, never freshness.
class ArtifactProvider {
 public:
  virtual ~ArtifactProvider() = default;

  /// Parsed key set Σ of the keys file.
  virtual Result<std::shared_ptr<const std::vector<XmlKey>>> Keys(
      const std::string& path) = 0;

  /// Parsed transformation of the rules file.
  virtual Result<std::shared_ptr<const Transformation>> Rules(
      const std::string& path) = 0;

  /// Parsed document tree, with its Euler ranges finalized at build time
  /// so concurrent shared readers never touch the lazy path.
  virtual Result<std::shared_ptr<const Tree>> Doc(const std::string& path) = 0;

  /// Parsed + indexed document (`--index` / `--streaming` data plane).
  /// `stats_line` receives the "index: ..." line the CLI prints —
  /// computed on build, replayed verbatim on a hit, so warm output stays
  /// identical to cold output (the build-time digits are the one field
  /// that can differ between daemon and one-shot runs either way).
  virtual Result<std::shared_ptr<const IndexedDoc>> Indexed(
      const std::string& path, bool streaming, std::string* stats_line) = 0;

  /// Exclusive lease on the resident ImplicationEngine for this key set.
  virtual Result<EngineLease> Engine(const std::string& keys_path) = 0;

  /// Cached minimum cover (non-engine path only: its output is a pure
  /// function of the inputs, so a warm replay is byte-identical).
  virtual Result<std::shared_ptr<const CoverArtifact>> Cover(
      const std::string& keys_path, const std::string& rules_path,
      const std::string& relation, bool naive) = 0;
};

}  // namespace service
}  // namespace xmlprop

#endif  // XMLPROP_SERVICE_ARTIFACTS_H_
