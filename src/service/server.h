#ifndef XMLPROP_SERVICE_SERVER_H_
#define XMLPROP_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "service/protocol.h"
#include "service/session_cache.h"

namespace xmlprop {
namespace service {

/// Executes one CLI command line against the daemon's artifact provider,
/// writing the command's stdout/stderr to the streams. Supplied by the
/// CLI layer (tools/cli.cc) so the service library does not depend on
/// it.
using CommandExecutor = std::function<int(
    const std::vector<std::string>& argv, ArtifactProvider* provider,
    std::ostream& out, std::ostream& err)>;

/// The `xmlprop serve` daemon: a Unix-domain-socket listener that keeps
/// compiled artifacts resident in a SessionCache and runs each request
/// in its own ObsContext on a shared ThreadPool.
///
///   - Admission control: at most `max_inflight` requests are admitted
///     (queued + running, the pool's bounded queue); excess connections
///     get a typed "overloaded" reject frame immediately instead of
///     unbounded queueing.
///   - Per-request observability: every admitted "run" request gets an
///     ObsContext named after its command (slow-op threshold, stall
///     watchdog and tail sampler as configured), registered with the
///     flight recorder while open — a crash dump names the in-flight
///     request ids. Contexts fold into the server registry at close, so
///     the `metrics` operation's OpenMetrics exposition is the exact sum
///     over requests. One access-log NDJSON line per request.
///   - Lifecycle: Start() binds and spawns the accept loop; a "shutdown"
///     request (or Shutdown()) stops admission, drains the pool and
///     joins every thread; Wait() blocks until that completes.
class ServiceServer {
 public:
  struct Options {
    std::string socket_path;
    /// Worker threads executing requests. 0 = hardware concurrency.
    size_t workers = 0;
    /// SessionCache accounted-byte budget.
    size_t cache_bytes = 256u << 20;
    /// Admitted (queued + running) request bound; beyond it connections
    /// are rejected with kind "overloaded".
    int max_inflight = 64;
    /// Per-socket receive/send timeout (SO_RCVTIMEO/SO_SNDTIMEO) on
    /// accepted connections. A peer that connects and never sends a full
    /// frame would otherwise hold a pool worker and an admitted slot
    /// forever; max_inflight such peers would wedge the daemon. 0
    /// disables (not recommended).
    int io_timeout_ms = 10000;
    /// Per-request slow-op threshold (ms); 0 disables.
    double slow_op_ms = 0;
    /// Stall watchdog threshold (ms); 0 disables the watchdog.
    int stall_ms = 0;
    /// Tail-based trace retention (K slowest); negative retains all.
    int trace_retain = -1;
    /// Access-log sink: empty = none, "-" = the server's stderr, else a
    /// file path (append).
    std::string access_log;
    /// OpenMetrics scrape file, rewritten every metrics_interval_ms (one
    /// final snapshot at shutdown either way). Empty = none.
    std::string metrics_out;
    int metrics_interval_ms = 0;
  };

  ServiceServer(const Options& options, CommandExecutor executor);
  ~ServiceServer();
  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds the socket and starts accepting. InvalidArgument/Internal on
  /// bind failures (stale socket files are unlinked first).
  Status Start();

  /// Blocks until a shutdown request drained the server.
  void Wait();

  /// Programmatic shutdown (idempotent): stop admission, drain, join.
  void Shutdown();

  SessionCache* cache() { return &cache_; }
  const obs::MetricRegistry* registry() const { return &registry_; }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  uint64_t requests_rejected() const {
    return requests_rejected_.load(std::memory_order_relaxed);
  }

  /// The OpenMetrics exposition of the server registry plus live service
  /// gauges — the `metrics` operation's payload.
  std::string MetricsExposition();

  /// Flat JSON object with request counters and SessionCache statistics
  /// — the `stats` operation's payload.
  std::string StatsJson();

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  Reply Execute(const Request& request);
  void AccessLog(const Request& request, const Reply& reply,
                 const obs::ObsContext::Result& result, uint64_t id);

  const Options options_;
  CommandExecutor executor_;
  SessionCache cache_;
  obs::MetricRegistry registry_;
  obs::TraceTailSampler sampler_;
  std::optional<obs::StallWatchdog> watchdog_;
  std::optional<obs::PeriodicMetricsWriter> metrics_writer_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<int> inflight_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> requests_rejected_{0};
  std::mutex shutdown_mu_;
  std::mutex access_log_mu_;
};

}  // namespace service
}  // namespace xmlprop

#endif  // XMLPROP_SERVICE_SERVER_H_
