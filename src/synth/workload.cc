#include "synth/workload.h"

#include <algorithm>
#include <string>

#include "common/rng.h"

namespace xmlprop {

namespace {

std::string LevelLabel(size_t i) { return "n" + std::to_string(i); }
std::string LevelVar(size_t i) { return "V" + std::to_string(i); }

// Root path of the level-i variable: //n1/n2/.../ni (ε for i = 0).
Result<PathExpr> LevelPath(size_t i) {
  std::string text;
  for (size_t k = 1; k <= i; ++k) {
    text += (k == 1) ? "//" : "/";
    text += LevelLabel(k);
  }
  return PathExpr::Parse(text);
}

}  // namespace

Result<SyntheticWorkload> MakeWorkload(const WorkloadSpec& spec) {
  if (spec.fields == 0 || spec.depth == 0) {
    return Status::InvalidArgument("workload needs fields >= 1, depth >= 1");
  }
  Rng rng(spec.seed);
  SyntheticWorkload w;
  w.rule = TableRule("U");

  // Spine: V1 := Xr//n1, Vi := V(i-1)/ni.
  for (size_t i = 1; i <= spec.depth; ++i) {
    std::string path_text =
        (i == 1) ? "//" + LevelLabel(1) : LevelLabel(i);
    XMLPROP_ASSIGN_OR_RETURN(PathExpr path, PathExpr::Parse(path_text));
    w.rule.AddMapping(LevelVar(i), i == 1 ? std::string(kRootVar)
                                          : LevelVar(i - 1),
                      std::move(path));
  }

  // Fields. The first min(depth, fields) are the chain-key attributes
  // key<i> = @k<i> of level i; the remainder are data fields distributed
  // round-robin over the levels, alternating attribute / element children.
  const size_t key_levels = std::min(spec.depth, spec.fields);
  // chain_key_field[i-1] = schema position of level i's key attribute.
  std::vector<size_t> chain_key_field;
  // attr/element data fields per level (field position, mapping name).
  std::vector<std::vector<std::pair<size_t, std::string>>> attr_fields(
      spec.depth + 1);
  std::vector<std::vector<std::pair<size_t, std::string>>> elem_fields(
      spec.depth + 1);

  size_t next_field = 0;
  for (size_t i = 1; i <= key_levels; ++i) {
    std::string var = "KA" + std::to_string(i);
    XMLPROP_ASSIGN_OR_RETURN(PathExpr path,
                             PathExpr::Parse("@k" + std::to_string(i)));
    w.rule.AddMapping(var, LevelVar(i), std::move(path));
    w.rule.AddField("key" + std::to_string(i), var);
    chain_key_field.push_back(next_field++);
  }
  for (size_t j = 0; next_field < spec.fields; ++j) {
    size_t level = (j % spec.depth) + 1;
    bool attr = (j % 2 == 0);
    std::string var = "F" + std::to_string(j);
    std::string field = "f" + std::to_string(j);
    std::string step =
        attr ? "@a" + std::to_string(j) : "e" + std::to_string(j);
    XMLPROP_ASSIGN_OR_RETURN(PathExpr path, PathExpr::Parse(step));
    w.rule.AddMapping(var, LevelVar(level), std::move(path));
    w.rule.AddField(field, var);
    if (attr) {
      attr_fields[level].emplace_back(next_field, "a" + std::to_string(j));
    } else {
      elem_fields[level].emplace_back(next_field, "e" + std::to_string(j));
    }
    ++next_field;
  }

  // Keys. Chain keys first: level i identified by @k<i> relative to the
  // level-(i-1) context.
  const size_t chain_keys = std::min(spec.depth, spec.keys);
  for (size_t i = 1; i <= chain_keys; ++i) {
    XMLPROP_ASSIGN_OR_RETURN(PathExpr ctx, LevelPath(i - 1));
    XMLPROP_ASSIGN_OR_RETURN(
        PathExpr target,
        PathExpr::Parse(i == 1 ? "//" + LevelLabel(1) : LevelLabel(i)));
    w.keys.emplace_back("CK" + std::to_string(i), std::move(ctx),
                        std::move(target),
                        std::vector<std::string>{"k" + std::to_string(i)});
  }
  // Extra keys: uniqueness keys for element fields, alternative attribute
  // keys, and synthetic uniqueness keys as filler.
  for (size_t j = chain_keys; j < spec.keys; ++j) {
    size_t level = 1 + rng.UniformIndex(spec.depth);
    std::string name = "XK" + std::to_string(j);
    if (j % 3 == 0 && !elem_fields[level].empty()) {
      // Uniqueness: each level node has at most one such element child.
      XMLPROP_ASSIGN_OR_RETURN(PathExpr ctx, LevelPath(level));
      XMLPROP_ASSIGN_OR_RETURN(
          PathExpr target,
          PathExpr::Parse(rng.Choose(elem_fields[level]).second));
      w.keys.emplace_back(name, std::move(ctx), std::move(target),
                          std::vector<std::string>{});
    } else if (!attr_fields[level].empty()) {
      // Alternative key: level also identified by a data attribute.
      XMLPROP_ASSIGN_OR_RETURN(PathExpr ctx, LevelPath(level - 1));
      XMLPROP_ASSIGN_OR_RETURN(
          PathExpr target,
          PathExpr::Parse(level == 1 ? "//" + LevelLabel(1)
                                     : LevelLabel(level)));
      const auto& chosen = rng.Choose(attr_fields[level]);
      w.keys.emplace_back(name, std::move(ctx), std::move(target),
                          std::vector<std::string>{chosen.second});
    } else {
      // Filler: uniqueness of a synthetic element not in the table tree.
      XMLPROP_ASSIGN_OR_RETURN(PathExpr ctx, LevelPath(level));
      XMLPROP_ASSIGN_OR_RETURN(PathExpr target,
                               PathExpr::Parse("u" + std::to_string(j)));
      w.keys.emplace_back(name, std::move(ctx), std::move(target),
                          std::vector<std::string>{});
    }
  }

  XMLPROP_ASSIGN_OR_RETURN(w.table, TableTree::Build(w.rule));
  const size_t arity = w.table.schema().arity();

  // The deepest level whose whole chain (1..d*) has both key fields and
  // chain keys.
  const size_t keyed_depth = std::min(chain_keys, key_levels);

  // true_fd: chain keys of levels 1..L → an attribute data field at the
  // deepest such level L <= keyed_depth. Attribute fields are unique per
  // element (no extra uniqueness key needed), and restricting the LHS to
  // levels <= L keeps every LHS attribute on an ancestor of the RHS
  // variable — required by the null-safety half of propagation.
  std::optional<size_t> rhs;
  size_t rhs_level = keyed_depth;
  for (size_t level = keyed_depth; level >= 1 && !rhs.has_value(); --level) {
    if (!attr_fields[level].empty()) {
      rhs = attr_fields[level].front().first;
      rhs_level = level;
    }
    if (level == 1) break;
  }
  if (!rhs.has_value()) {
    // Degenerate: every field is a chain-key attribute; fall back to the
    // trivial (but still null-safe) FD keys -> deepest key.
    rhs = keyed_depth > 0 ? chain_key_field[keyed_depth - 1] : size_t{0};
    rhs_level = keyed_depth;
  }
  AttrSet lhs(arity);
  for (size_t i = 0; i < std::min(rhs_level, keyed_depth); ++i) {
    lhs.Set(chain_key_field[i]);
  }
  w.true_fd = Fd::SingleRhs(lhs, *rhs);

  // false_fd: an element data field alone cannot determine the first
  // field (element fields never key anything — keys carry attributes);
  // next preference is a deep attribute field (keys only relative to its
  // parent context, never globally); last resort is the constant FD
  // ∅ → field0, which fails whenever the root has several descendants.
  std::optional<size_t> false_lhs;
  for (size_t level = spec.depth; level >= 1; --level) {
    if (!elem_fields[level].empty()) {
      false_lhs = elem_fields[level].back().first;
      break;
    }
    if (level == 1) break;
  }
  if (!false_lhs.has_value()) {
    for (size_t level = spec.depth; level >= 2; --level) {
      if (!attr_fields[level].empty()) {
        false_lhs = attr_fields[level].back().first;
        break;
      }
    }
  }
  AttrSet f(arity);
  if (false_lhs.has_value() && *false_lhs != 0) f.Set(*false_lhs);
  w.false_fd = Fd::SingleRhs(std::move(f), 0);
  return w;
}

}  // namespace xmlprop
