#include "synth/doc_generator.h"

#include <set>
#include <string>

#include "keys/satisfaction.h"

namespace xmlprop {

namespace {

void GrowRandom(Tree* tree, NodeId node, int depth,
                const RandomTreeSpec& spec, Rng* rng) {
  for (const std::string& attr : spec.attributes) {
    if (rng->Bernoulli(spec.attribute_prob)) {
      // Duplicate attributes cannot happen (alphabet names are distinct).
      tree->CreateAttribute(node, attr,
                            std::to_string(rng->UniformInt(
                                0, spec.value_range - 1)))
          .ok();
    }
  }
  int children =
      depth >= spec.max_depth ? 0 : rng->UniformInt(0, spec.max_children);
  if (children == 0) {
    if (rng->Bernoulli(spec.text_prob)) {
      tree->CreateText(node, std::to_string(rng->UniformInt(
                                 0, spec.value_range - 1)));
    }
    return;
  }
  for (int i = 0; i < children; ++i) {
    NodeId child = tree->CreateElement(node, rng->Choose(spec.labels));
    GrowRandom(tree, child, depth + 1, spec, rng);
  }
}

void CopyExcept(const Tree& src, Tree* dst, NodeId src_node, NodeId dst_node,
                NodeId victim) {
  for (NodeId attr : src.node(src_node).attributes) {
    if (attr == victim) continue;
    dst->CreateAttribute(dst_node, src.node(attr).label, src.node(attr).value)
        .ok();
  }
  for (NodeId child : src.node(src_node).children) {
    if (child == victim) continue;
    const Node& c = src.node(child);
    if (c.kind == NodeKind::kText) {
      dst->CreateText(dst_node, c.value);
    } else {
      NodeId copy = dst->CreateElement(dst_node, c.label);
      CopyExcept(src, dst, child, copy, victim);
    }
  }
}

}  // namespace

Tree RandomTree(const RandomTreeSpec& spec, Rng* rng) {
  Tree tree("r");
  GrowRandom(&tree, tree.root(), 0, spec, rng);
  return tree;
}

Result<Tree> WithoutSubtree(const Tree& tree, NodeId victim) {
  if (!tree.IsValid(victim) || victim == tree.root()) {
    return Status::InvalidArgument("cannot remove the root or an invalid node");
  }
  Tree out(tree.node(tree.root()).label);
  CopyExcept(tree, &out, tree.root(), out.root(), victim);
  return out;
}

Result<Tree> RepairToSatisfy(Tree tree, const std::vector<XmlKey>& sigma,
                             int max_rounds) {
  size_t fresh_counter = 0;
  auto fresh = [&fresh_counter]() {
    return "fresh_" + std::to_string(fresh_counter++);
  };

  for (int round = 0; round < max_rounds; ++round) {
    std::vector<TaggedViolation> violations = CheckAll(tree, sigma);
    if (violations.empty()) return tree;

    // Batch all fixes that keep node ids stable; do at most one deletion
    // per round (a deletion rebuilds the tree and invalidates ids).
    bool changed = false;
    std::set<std::pair<NodeId, std::string>> touched;
    std::optional<NodeId> to_delete;
    for (const TaggedViolation& tv : violations) {
      const XmlKey& key = sigma[tv.key_index];
      const KeyViolation& v = tv.violation;
      if (v.kind == KeyViolation::Kind::kMissingAttribute) {
        if (touched.insert({v.node1, v.attribute}).second) {
          XMLPROP_RETURN_NOT_OK(
              tree.SetAttributeValue(v.node1, v.attribute, fresh()));
          changed = true;
        }
      } else if (!key.attributes().empty()) {
        // Bump the second node's first key attribute to a fresh value.
        const std::string& attr = key.attributes().front();
        if (touched.insert({v.node2, attr}).second) {
          XMLPROP_RETURN_NOT_OK(tree.SetAttributeValue(v.node2, attr, fresh()));
          changed = true;
        }
      } else if (!to_delete.has_value()) {
        // "At most one target": drop the second node entirely.
        to_delete = v.node2;
      }
    }
    if (to_delete.has_value() && !changed) {
      XMLPROP_ASSIGN_OR_RETURN(tree, WithoutSubtree(tree, *to_delete));
      changed = true;
    }
    if (!changed) {
      return Status::Internal("repair loop made no progress");
    }
  }
  return Status::Internal("repair did not converge within max_rounds");
}

Result<Tree> RandomSatisfyingTree(const RandomTreeSpec& spec,
                                  const std::vector<XmlKey>& sigma, Rng* rng) {
  return RepairToSatisfy(RandomTree(spec, rng), sigma);
}

}  // namespace xmlprop
