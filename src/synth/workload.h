#ifndef XMLPROP_SYNTH_WORKLOAD_H_
#define XMLPROP_SYNTH_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "keys/xml_key.h"
#include "relational/fd.h"
#include "transform/rule.h"
#include "transform/table_tree.h"

namespace xmlprop {

/// Knobs of the Section 6 experiments: the number of universal-relation
/// fields, the depth of the table tree, and the number of XML keys.
/// (The paper chose depth 2..20 "based on the average tree depth found in
/// real XML data" [Choi, WebDB'02], fields up to 500, and keys up to 100.)
struct WorkloadSpec {
  size_t fields = 15;
  size_t depth = 5;
  size_t keys = 10;
  uint64_t seed = 42;
};

/// A generated benchmark instance: a universal-relation table rule whose
/// table tree is a spine of `depth` element variables with `fields` leaf
/// fields distributed over the levels, plus a key set of size `keys`:
///   - one *chain key* per level (level i identified by @k<i> relative to
///     the level-(i-1) context) — these make deep fields transitively
///     keyed, mirroring the book/chapter/section schema of the paper;
///   - extra keys beyond the depth alternate between uniqueness keys for
///     element-child fields ((ctx, (e, {}))) and *alternative* attribute
///     keys ((ctx, (level, {@other}))), which exercise the key-equivalence
///     machinery of Algorithm minimumCover.
struct SyntheticWorkload {
  TableRule rule;
  TableTree table;
  std::vector<XmlKey> keys;

  /// An FD expected to be propagated: the chain-key fields of the deepest
  /// fully-keyed level → some field determined by that level (degenerates
  /// to a trivial FD when every field is a chain-key attribute).
  Fd true_fd;

  /// An FD expected NOT to be propagated (a non-keying LHS).
  Fd false_fd;
};

/// Builds the workload deterministically from the spec. Fails when the
/// spec is degenerate (zero fields or depth).
Result<SyntheticWorkload> MakeWorkload(const WorkloadSpec& spec);

}  // namespace xmlprop

#endif  // XMLPROP_SYNTH_WORKLOAD_H_
