#ifndef XMLPROP_SYNTH_DOC_GENERATOR_H_
#define XMLPROP_SYNTH_DOC_GENERATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "keys/xml_key.h"
#include "xml/tree.h"

namespace xmlprop {

/// Shape parameters for RandomTree. Small alphabets and value ranges are
/// deliberate: they provoke key collisions, shared labels and missing
/// attributes, which is what the repair loop and the property tests feed
/// on.
struct RandomTreeSpec {
  std::vector<std::string> labels = {"book", "chapter", "section", "title",
                                     "author", "name", "contact"};
  std::vector<std::string> attributes = {"isbn", "number", "id"};
  int max_depth = 4;
  int max_children = 3;
  /// Probability that an element gets each attribute of the alphabet.
  double attribute_prob = 0.5;
  /// Attribute/text values are drawn uniformly from [0, value_range).
  int value_range = 3;
  /// Probability that a leaf element gets a text child.
  double text_prob = 0.5;
};

/// Generates a random XML tree (no constraints enforced).
Tree RandomTree(const RandomTreeSpec& spec, Rng* rng);

/// Returns a copy of `tree` without the subtree rooted at `victim`
/// (which must not be the document root). Attribute "subtrees" are the
/// attribute node itself.
Result<Tree> WithoutSubtree(const Tree& tree, NodeId victim);

/// Repairs `tree` until it satisfies every key in `sigma`:
///   - a target node missing a key attribute gets it, with a globally
///     fresh value;
///   - of two target nodes agreeing on all key attributes, one has an
///     attribute bumped to a fresh value — or, for attribute-less keys
///     ((C, (T, {})), "at most one T"), the second node is deleted.
/// Fresh values never collide, so the loop terminates; `max_rounds`
/// guards against bugs. The result satisfies SatisfiesAll(result, sigma).
Result<Tree> RepairToSatisfy(Tree tree, const std::vector<XmlKey>& sigma,
                             int max_rounds = 1000);

/// Convenience: RandomTree + RepairToSatisfy — a random document that
/// provably satisfies `sigma` (the generator behind the soundness
/// property tests).
Result<Tree> RandomSatisfyingTree(const RandomTreeSpec& spec,
                                  const std::vector<XmlKey>& sigma, Rng* rng);

}  // namespace xmlprop

#endif  // XMLPROP_SYNTH_DOC_GENERATOR_H_
