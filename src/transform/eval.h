#ifndef XMLPROP_TRANSFORM_EVAL_H_
#define XMLPROP_TRANSFORM_EVAL_H_

#include <vector>

#include "common/result.h"
#include "relational/instance.h"
#include "transform/rule.h"
#include "transform/table_tree.h"
#include "xml/tree.h"
#include "xml/tree_index.h"

namespace xmlprop {

/// Evaluates Rule(R) over an XML tree (the semantics of Section 2):
/// variables range over node sets reached by their mapping paths, the
/// root variable binds to the document root, tuples are produced for
/// every joint binding (the implicit Cartesian product), and a variable
/// whose node set is empty binds to null — as do its descendants and the
/// field it populates.
Result<Instance> EvalRule(const Tree& tree, const TableRule& rule);

/// EvalRule over a pre-built table tree (avoids re-validation in loops).
Instance EvalTableTree(const Tree& tree, const TableTree& table);

/// σ(T): evaluates every table rule of the transformation.
Result<std::vector<Instance>> EvalTransformation(
    const Tree& tree, const Transformation& transformation);

/// Indexed shredding (the fast data plane; identical tuples, identical
/// order — property-tested against the tree-walking overloads above):
/// variable node sets come from the set-at-a-time indexed path evaluator
/// and are memoized per (variable, parent binding) — the Cartesian
/// enumeration revisits the same parent binding once per combination of
/// unrelated variables — and Tree::Value is computed at most once per
/// node instead of once per tuple the node appears in.
Instance EvalTableTree(const TreeIndex& index, const TableTree& table);

/// Indexed shredding into the columnar, interned-value representation:
/// the same tuple set as EvalTableTree, but each distinct value string is
/// stored once and rows are value-id tuples (deduplicated by hash, not by
/// the row-store's linear scan).
ColumnarInstance EvalTableTreeColumnar(const TreeIndex& index,
                                       const TableTree& table);

/// EvalRule / EvalTransformation over the indexed data plane.
Result<Instance> EvalRule(const TreeIndex& index, const TableRule& rule);
Result<std::vector<Instance>> EvalTransformation(
    const TreeIndex& index, const Transformation& transformation);

}  // namespace xmlprop

#endif  // XMLPROP_TRANSFORM_EVAL_H_
