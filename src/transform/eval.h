#ifndef XMLPROP_TRANSFORM_EVAL_H_
#define XMLPROP_TRANSFORM_EVAL_H_

#include <vector>

#include "common/result.h"
#include "relational/instance.h"
#include "transform/rule.h"
#include "transform/table_tree.h"
#include "xml/tree.h"

namespace xmlprop {

/// Evaluates Rule(R) over an XML tree (the semantics of Section 2):
/// variables range over node sets reached by their mapping paths, the
/// root variable binds to the document root, tuples are produced for
/// every joint binding (the implicit Cartesian product), and a variable
/// whose node set is empty binds to null — as do its descendants and the
/// field it populates.
Result<Instance> EvalRule(const Tree& tree, const TableRule& rule);

/// EvalRule over a pre-built table tree (avoids re-validation in loops).
Instance EvalTableTree(const Tree& tree, const TableTree& table);

/// σ(T): evaluates every table rule of the transformation.
Result<std::vector<Instance>> EvalTransformation(
    const Tree& tree, const Transformation& transformation);

}  // namespace xmlprop

#endif  // XMLPROP_TRANSFORM_EVAL_H_
