#ifndef XMLPROP_TRANSFORM_RULE_H_
#define XMLPROP_TRANSFORM_RULE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "xml/path.h"

namespace xmlprop {

/// The distinguished root variable of every table rule (X_r in the paper).
inline constexpr std::string_view kRootVar = "Xr";

/// A variable mapping "X := Y/P" (Definition 2.2): X ranges over the
/// nodes reached from each binding of Y by path expression P.
struct VarMapping {
  std::string var;
  std::string parent;  ///< a previously declared variable or kRootVar
  PathExpr path;

  std::string ToString() const {
    std::string p = path.ToString();
    bool descendant_start = p.size() >= 2 && p[0] == '/' && p[1] == '/';
    return var + " := " + parent + (descendant_start ? "" : "/") + p;
  }
};

/// A field rule "f : value(X)": field f of the relation is populated with
/// value(X) for each binding of X.
struct FieldRule {
  std::string field;
  std::string var;

  std::string ToString() const { return field + ": value(" + var + ")"; }
};

/// One table rule Rule(R) of a transformation (Definition 2.2): a set of
/// field rules over a set of variables connected to the root. Build with
/// the fluent AddField/AddMapping API or parse the DSL via
/// ParseTableRule (rule_parser.h), then call Validate() — the algorithms
/// require a validated rule (they consume its TableTree form).
///
/// Well-formedness (checked by Validate):
///   - every variable is declared exactly once and connected to Xr;
///   - in X := Y/P, P is a *simple* path (no "//") unless Y is Xr;
///   - no field is defined by value(Y) when Y has a child variable
///     (field variables are leaves of the table tree);
///   - field names are distinct, field variables are declared and
///     distinct, paths are non-empty, and nothing hangs below an
///     attribute-valued variable.
class TableRule {
 public:
  TableRule() = default;
  explicit TableRule(std::string relation_name)
      : relation_name_(std::move(relation_name)) {}

  const std::string& relation_name() const { return relation_name_; }
  const std::vector<FieldRule>& field_rules() const { return field_rules_; }
  const std::vector<VarMapping>& mappings() const { return mappings_; }

  void AddField(std::string field, std::string var) {
    field_rules_.push_back(FieldRule{std::move(field), std::move(var)});
  }
  void AddMapping(std::string var, std::string parent, PathExpr path) {
    mappings_.push_back(
        VarMapping{std::move(var), std::move(parent), std::move(path)});
  }

  /// The relation schema R(f1, ..., fn) defined by the field rules,
  /// in declaration order.
  RelationSchema Schema() const;

  /// Checks Definition 2.2 well-formedness; returns the first problem.
  Status Validate() const;

  /// Pretty-prints in the paper's notation.
  std::string ToString() const;

 private:
  std::string relation_name_;
  std::vector<FieldRule> field_rules_;
  std::vector<VarMapping> mappings_;
};

/// A transformation σ: one table rule per target relation
/// (Definition 2.2).
class Transformation {
 public:
  Transformation() = default;
  explicit Transformation(std::vector<TableRule> rules)
      : rules_(std::move(rules)) {}

  const std::vector<TableRule>& rules() const { return rules_; }
  void AddRule(TableRule rule) { rules_.push_back(std::move(rule)); }

  /// The rule for relation `name`, or NotFound.
  Result<const TableRule*> FindRule(std::string_view name) const;

  /// Validates every rule and checks relation names are distinct.
  Status Validate() const;

  std::string ToString() const;

 private:
  std::vector<TableRule> rules_;
};

}  // namespace xmlprop

#endif  // XMLPROP_TRANSFORM_RULE_H_
