#ifndef XMLPROP_TRANSFORM_RULE_PARSER_H_
#define XMLPROP_TRANSFORM_RULE_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "transform/rule.h"

namespace xmlprop {

/// Parses the textual transformation DSL, a close transliteration of the
/// paper's notation (Example 2.4). One `rule <relation> { ... }` block per
/// table rule; inside a block, one item per line:
///
///   rule book {
///     isbn:    value(X1)        # field rules: f: value(X)
///     title:   value(X2)
///     author:  value(X4)
///     contact: value(X5)
///     Xa := Xr//book            # variable mappings: X := Y/P
///     X1 := Xa/@isbn
///     X2 := Xa/title
///     Xb := Xa/author
///     X4 := Xb/name
///     X5 := Xb/contact
///   }
///
/// '#' comments run to end of line. The root variable is spelled `Xr`.
/// In a mapping RHS the parent variable is the leading identifier; the
/// rest is the path ("Xa/@isbn" → parent Xa, path "@isbn"; "Xr//book" →
/// parent Xr, path "//book"). Parents must be declared before use.
/// The parsed rules are Validate()d before being returned.
Result<Transformation> ParseTransformation(std::string_view text);

/// Parses a single `rule ... { ... }` block (or bare block body when the
/// text contains exactly one rule).
Result<TableRule> ParseTableRule(std::string_view text);

}  // namespace xmlprop

#endif  // XMLPROP_TRANSFORM_RULE_PARSER_H_
