#include "transform/rule.h"

#include <map>
#include <set>

namespace xmlprop {

RelationSchema TableRule::Schema() const {
  std::vector<std::string> attrs;
  attrs.reserve(field_rules_.size());
  for (const FieldRule& f : field_rules_) attrs.push_back(f.field);
  return RelationSchema(relation_name_, std::move(attrs));
}

Status TableRule::Validate() const {
  if (relation_name_.empty()) {
    return Status::InvalidArgument("table rule without a relation name");
  }
  if (field_rules_.empty()) {
    return Status::InvalidArgument("Rule(" + relation_name_ +
                                   ") has no field rules");
  }

  // Variables: declared once, parents declared before use (connectivity
  // to the root), paths well-formed.
  std::set<std::string> declared;
  std::set<std::string> has_children;  // parents of some mapping
  for (const VarMapping& m : mappings_) {
    if (m.var == kRootVar) {
      return Status::InvalidArgument("Rule(" + relation_name_ +
                                     "): the root variable cannot be remapped");
    }
    if (!declared.insert(m.var).second) {
      return Status::InvalidArgument("Rule(" + relation_name_ +
                                     "): variable " + m.var +
                                     " declared twice");
    }
    bool parent_is_root = (m.parent == kRootVar);
    if (!parent_is_root && declared.find(m.parent) == declared.end()) {
      return Status::InvalidArgument(
          "Rule(" + relation_name_ + "): variable " + m.var +
          " uses undeclared parent " + m.parent +
          " (declare parents first; all variables must connect to " +
          std::string(kRootVar) + ")");
    }
    if (m.path.IsEpsilon()) {
      return Status::InvalidArgument("Rule(" + relation_name_ +
                                     "): empty path in mapping for " + m.var);
    }
    // Definition 2.2(1): only mappings from the root may use "//".
    if (!parent_is_root && !m.path.IsSimple()) {
      return Status::InvalidArgument(
          "Rule(" + relation_name_ + "): mapping " + m.ToString() +
          " uses '//' but its parent is not the root variable");
    }
    has_children.insert(m.parent);
  }

  // Nothing may hang below an attribute-valued variable.
  for (const VarMapping& m : mappings_) {
    if (m.path.EndsWithAttribute() && has_children.count(m.var) > 0) {
      return Status::InvalidArgument(
          "Rule(" + relation_name_ + "): variable " + m.var +
          " is attribute-valued but has child mappings");
    }
  }

  // Field rules: distinct names, distinct declared leaf variables.
  std::set<std::string> field_names;
  std::set<std::string> field_vars;
  for (const FieldRule& f : field_rules_) {
    if (!field_names.insert(f.field).second) {
      return Status::InvalidArgument("Rule(" + relation_name_ +
                                     "): duplicate field " + f.field);
    }
    if (declared.find(f.var) == declared.end()) {
      return Status::InvalidArgument("Rule(" + relation_name_ + "): field " +
                                     f.field + " uses undeclared variable " +
                                     f.var);
    }
    if (!field_vars.insert(f.var).second) {
      return Status::InvalidArgument(
          "Rule(" + relation_name_ + "): variable " + f.var +
          " populates more than one field (Definition 2.2 requires distinct "
          "variables)");
    }
    // Definition 2.2(2): field variables are leaves of the table tree.
    if (has_children.count(f.var) > 0) {
      return Status::InvalidArgument(
          "Rule(" + relation_name_ + "): field " + f.field +
          " is defined by value(" + f.var +
          ") but that variable has child mappings");
    }
  }
  return Status::OK();
}

std::string TableRule::ToString() const {
  std::string out = "Rule(" + relation_name_ + ") = {";
  for (size_t i = 0; i < field_rules_.size(); ++i) {
    if (i > 0) out += ", ";
    out += field_rules_[i].ToString();
  }
  out += "},\n  ";
  for (size_t i = 0; i < mappings_.size(); ++i) {
    if (i > 0) out += ", ";
    out += mappings_[i].ToString();
  }
  return out;
}

Result<const TableRule*> Transformation::FindRule(
    std::string_view name) const {
  for (const TableRule& r : rules_) {
    if (r.relation_name() == name) return &r;
  }
  return Status::NotFound("no table rule for relation " + std::string(name));
}

Status Transformation::Validate() const {
  std::set<std::string> names;
  for (const TableRule& r : rules_) {
    XMLPROP_RETURN_NOT_OK(r.Validate());
    if (!names.insert(r.relation_name()).second) {
      return Status::InvalidArgument("duplicate table rule for relation " +
                                     r.relation_name());
    }
  }
  return Status::OK();
}

std::string Transformation::ToString() const {
  std::string out;
  for (const TableRule& r : rules_) {
    out += r.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace xmlprop
