#include "transform/rule_parser.h"

#include <vector>

#include "common/str_util.h"

namespace xmlprop {

namespace {

// Strips '#' comments and splits into trimmed, non-empty lines.
std::vector<std::string> CleanLines(std::string_view text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t eol = text.find('\n', start);
    std::string_view line = (eol == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, eol - start);
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = TrimWhitespace(line);
    if (!line.empty()) lines.emplace_back(line);
    if (eol == std::string_view::npos) break;
    start = eol + 1;
  }
  return lines;
}

// Parses "f: value(X)" into a field rule; returns false if the line does
// not look like one (so the caller can try a mapping).
bool TryParseFieldRule(std::string_view line, FieldRule* out, Status* error) {
  size_t colon = line.find(':');
  if (colon == std::string_view::npos) return false;
  // ":=" marks a mapping, not a field rule.
  if (colon + 1 < line.size() && line[colon + 1] == '=') return false;
  std::string field(TrimWhitespace(line.substr(0, colon)));
  std::string_view rest = TrimWhitespace(line.substr(colon + 1));
  if (!StartsWith(rest, "value(") || rest.back() != ')') {
    *error = Status::ParseError("expected 'field: value(Var)': " +
                                std::string(line));
    return true;  // it was a field rule, just malformed
  }
  std::string var(
      TrimWhitespace(rest.substr(6, rest.size() - 7)));
  if (!IsValidName(field) || !IsValidName(var)) {
    *error = Status::ParseError("bad field rule: " + std::string(line));
    return true;
  }
  out->field = std::move(field);
  out->var = std::move(var);
  *error = Status::OK();
  return true;
}

// Parses "X := Y/P" (parent = leading identifier of the RHS).
Status ParseMapping(std::string_view line, VarMapping* out) {
  size_t assign = line.find(":=");
  if (assign == std::string_view::npos) {
    return Status::ParseError("expected 'X := Y/path' or 'f: value(X)': " +
                              std::string(line));
  }
  std::string var(TrimWhitespace(line.substr(0, assign)));
  std::string_view rhs = TrimWhitespace(line.substr(assign + 2));
  if (!IsValidName(var)) {
    return Status::ParseError("bad variable name in mapping: " +
                              std::string(line));
  }
  // Leading identifier = parent variable.
  size_t i = 0;
  while (i < rhs.size() && IsNameChar(rhs[i])) ++i;
  std::string parent(rhs.substr(0, i));
  if (parent.empty() || i >= rhs.size() || rhs[i] != '/') {
    return Status::ParseError("mapping RHS must be 'Parent/path': " +
                              std::string(line));
  }
  // "Y//p" keeps the descendant marker; "Y/p" drops the separator.
  std::string_view path_text = rhs.substr(i);
  if (!StartsWith(path_text, "//")) path_text = path_text.substr(1);
  XMLPROP_ASSIGN_OR_RETURN(PathExpr path, PathExpr::Parse(path_text));
  out->var = std::move(var);
  out->parent = std::move(parent);
  out->path = std::move(path);
  return Status::OK();
}

Status ParseRuleBody(const std::vector<std::string>& lines, size_t begin,
                     size_t end, TableRule* rule) {
  for (size_t i = begin; i < end; ++i) {
    FieldRule field;
    Status field_status;
    if (TryParseFieldRule(lines[i], &field, &field_status)) {
      XMLPROP_RETURN_NOT_OK(field_status);
      rule->AddField(std::move(field.field), std::move(field.var));
      continue;
    }
    VarMapping mapping;
    XMLPROP_RETURN_NOT_OK(ParseMapping(lines[i], &mapping));
    rule->AddMapping(std::move(mapping.var), std::move(mapping.parent),
                     std::move(mapping.path));
  }
  return Status::OK();
}

}  // namespace

Result<Transformation> ParseTransformation(std::string_view text) {
  std::vector<std::string> lines = CleanLines(text);
  Transformation transformation;
  size_t i = 0;
  while (i < lines.size()) {
    std::string_view header = lines[i];
    if (!StartsWith(header, "rule ") && !StartsWith(header, "rule{")) {
      return Status::ParseError("expected 'rule <relation> {': " +
                                std::string(header));
    }
    std::string_view after = TrimWhitespace(header.substr(4));
    if (after.empty() || after.back() != '{') {
      return Status::ParseError("rule header must end with '{': " +
                                std::string(header));
    }
    std::string relation(TrimWhitespace(after.substr(0, after.size() - 1)));
    if (!IsValidName(relation)) {
      return Status::ParseError("bad relation name in rule header: " +
                                std::string(header));
    }
    // Find the closing '}' line.
    size_t close = i + 1;
    while (close < lines.size() && lines[close] != "}") ++close;
    if (close == lines.size()) {
      return Status::ParseError("missing '}' for rule " + relation);
    }
    TableRule rule(relation);
    XMLPROP_RETURN_NOT_OK(ParseRuleBody(lines, i + 1, close, &rule));
    transformation.AddRule(std::move(rule));
    i = close + 1;
  }
  XMLPROP_RETURN_NOT_OK(transformation.Validate());
  return transformation;
}

Result<TableRule> ParseTableRule(std::string_view text) {
  XMLPROP_ASSIGN_OR_RETURN(Transformation t, ParseTransformation(text));
  if (t.rules().size() != 1) {
    return Status::InvalidArgument("expected exactly one rule, found " +
                                   std::to_string(t.rules().size()));
  }
  return t.rules()[0];
}

}  // namespace xmlprop
