#include "transform/eval.h"

namespace xmlprop {

namespace {

// Depth-first enumeration over variable bindings. Variables are visited
// in table-tree index order, which is topological (parents precede
// children by construction). binding[i] == kInvalidNode encodes null.
class Enumerator {
 public:
  Enumerator(const Tree& tree, const TableTree& table, Instance* out)
      : tree_(tree), table_(table), out_(out),
        binding_(table.size(), kInvalidNode) {}

  void Run() {
    binding_[0] = tree_.root();
    Recurse(1);
  }

 private:
  void Recurse(size_t var) {
    if (var == table_.size()) {
      Emit();
      return;
    }
    const TableTree::VarNode& node = table_.node(static_cast<int>(var));
    NodeId parent_binding = binding_[static_cast<size_t>(node.parent)];
    std::vector<NodeId> choices;
    if (parent_binding != kInvalidNode) {
      choices = node.step.Eval(tree_, parent_binding);
    }
    if (choices.empty()) {
      // Empty node set: the variable (and transitively its descendants)
      // binds to null and the field, if any, becomes NULL.
      binding_[var] = kInvalidNode;
      Recurse(var + 1);
      return;
    }
    for (NodeId choice : choices) {
      binding_[var] = choice;
      Recurse(var + 1);
    }
  }

  void Emit() {
    Tuple tuple(table_.schema().arity());
    for (size_t f = 0; f < table_.schema().arity(); ++f) {
      int var = table_.VarForField(f);
      NodeId n = binding_[static_cast<size_t>(var)];
      if (n != kInvalidNode) tuple[f] = tree_.Value(n);
    }
    // Instance::Add only fails on arity mismatch, which cannot happen here.
    out_->Add(std::move(tuple)).ok();
  }

  const Tree& tree_;
  const TableTree& table_;
  Instance* out_;
  std::vector<NodeId> binding_;
};

}  // namespace

Instance EvalTableTree(const Tree& tree, const TableTree& table) {
  Instance instance(table.schema());
  Enumerator(tree, table, &instance).Run();
  return instance;
}

Result<Instance> EvalRule(const Tree& tree, const TableRule& rule) {
  XMLPROP_ASSIGN_OR_RETURN(TableTree table, TableTree::Build(rule));
  return EvalTableTree(tree, table);
}

Result<std::vector<Instance>> EvalTransformation(
    const Tree& tree, const Transformation& transformation) {
  XMLPROP_RETURN_NOT_OK(transformation.Validate());
  std::vector<Instance> instances;
  for (const TableRule& rule : transformation.rules()) {
    XMLPROP_ASSIGN_OR_RETURN(Instance instance, EvalRule(tree, rule));
    instances.push_back(std::move(instance));
  }
  return instances;
}

}  // namespace xmlprop
