#include "transform/eval.h"

#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace xmlprop {

namespace {

// Depth-first enumeration over variable bindings. Variables are visited
// in table-tree index order, which is topological (parents precede
// children by construction). binding[i] == kInvalidNode encodes null.
class Enumerator {
 public:
  Enumerator(const Tree& tree, const TableTree& table, Instance* out)
      : tree_(tree), table_(table), out_(out),
        binding_(table.size(), kInvalidNode) {}

  void Run() {
    binding_[0] = tree_.root();
    Recurse(1);
  }

 private:
  void Recurse(size_t var) {
    if (var == table_.size()) {
      Emit();
      return;
    }
    const TableTree::VarNode& node = table_.node(static_cast<int>(var));
    NodeId parent_binding = binding_[static_cast<size_t>(node.parent)];
    std::vector<NodeId> choices;
    if (parent_binding != kInvalidNode) {
      choices = node.step.Eval(tree_, parent_binding);
    }
    if (choices.empty()) {
      // Empty node set: the variable (and transitively its descendants)
      // binds to null and the field, if any, becomes NULL.
      binding_[var] = kInvalidNode;
      Recurse(var + 1);
      return;
    }
    for (NodeId choice : choices) {
      binding_[var] = choice;
      Recurse(var + 1);
    }
  }

  void Emit() {
    Tuple tuple(table_.schema().arity());
    for (size_t f = 0; f < table_.schema().arity(); ++f) {
      int var = table_.VarForField(f);
      NodeId n = binding_[static_cast<size_t>(var)];
      if (n != kInvalidNode) tuple[f] = tree_.Value(n);
    }
    // Add only fails on arity mismatch, which Build-time validation rules
    // out — but a discarded Status would hide exactly that class of bug.
    CheckOk(out_->Add(std::move(tuple)), "EvalTableTree: Instance::Add");
  }

  const Tree& tree_;
  const TableTree& table_;
  Instance* out_;
  std::vector<NodeId> binding_;
};

// The indexed twin of Enumerator: same recursion, same emission order,
// but node sets come from the set-at-a-time evaluator and are memoized
// per (variable, parent binding) — the Cartesian product re-enters a
// variable once per combination of its *unrelated* predecessors, with the
// parent binding unchanged — and values are interned once per node.
class IndexedEnumerator {
 public:
  IndexedEnumerator(const TreeIndex& index, const TableTree& table,
                    ColumnarInstance* out)
      : index_(index), table_(table), out_(out),
        binding_(table.size(), kInvalidNode),
        choice_memo_(table.size()),
        value_of_(index.tree().size(), kUnknown),
        row_(table.schema().arity(), ColumnarInstance::kNull) {}

  void Run() {
    binding_[0] = index_.tree().root();
    Recurse(1);
  }

 private:
  static constexpr ColumnarInstance::ValueRef kUnknown = -2;

  const std::vector<NodeId>& Choices(size_t var, NodeId parent_binding) {
    auto [it, inserted] = choice_memo_[var].try_emplace(parent_binding);
    if (inserted) {
      it->second =
          table_.node(static_cast<int>(var)).step.Eval(index_, parent_binding);
    }
    return it->second;
  }

  ColumnarInstance::ValueRef ValueOf(NodeId n) {
    ColumnarInstance::ValueRef& slot = value_of_[static_cast<size_t>(n)];
    if (slot == kUnknown) {
      value_buf_.clear();
      index_.tree().AppendValue(n, &value_buf_);
      slot = out_->Intern(value_buf_);
    }
    return slot;
  }

  void Recurse(size_t var) {
    if (var == table_.size()) {
      Emit();
      return;
    }
    NodeId parent_binding =
        binding_[static_cast<size_t>(table_.node(static_cast<int>(var)).parent)];
    if (parent_binding == kInvalidNode) {
      binding_[var] = kInvalidNode;
      Recurse(var + 1);
      return;
    }
    const std::vector<NodeId>& choices = Choices(var, parent_binding);
    if (choices.empty()) {
      binding_[var] = kInvalidNode;
      Recurse(var + 1);
      return;
    }
    for (NodeId choice : choices) {
      binding_[var] = choice;
      Recurse(var + 1);
    }
  }

  void Emit() {
    for (size_t f = 0; f < row_.size(); ++f) {
      NodeId n = binding_[static_cast<size_t>(table_.VarForField(f))];
      row_[f] = (n != kInvalidNode) ? ValueOf(n) : ColumnarInstance::kNull;
    }
    CheckOk(out_->AddRow(row_), "EvalTableTree: ColumnarInstance::AddRow");
  }

  const TreeIndex& index_;
  const TableTree& table_;
  ColumnarInstance* out_;
  std::vector<NodeId> binding_;
  std::vector<std::unordered_map<NodeId, std::vector<NodeId>>> choice_memo_;
  std::vector<ColumnarInstance::ValueRef> value_of_;
  std::vector<ColumnarInstance::ValueRef> row_;
  std::string value_buf_;
};

}  // namespace

Instance EvalTableTree(const Tree& tree, const TableTree& table) {
  obs::Span span("shred.eval");
  Instance instance(table.schema());
  Enumerator(tree, table, &instance).Run();
  obs::Count("shred.rows_emitted", instance.size());
  return instance;
}

Result<Instance> EvalRule(const Tree& tree, const TableRule& rule) {
  XMLPROP_ASSIGN_OR_RETURN(TableTree table, TableTree::Build(rule));
  return EvalTableTree(tree, table);
}

Result<std::vector<Instance>> EvalTransformation(
    const Tree& tree, const Transformation& transformation) {
  XMLPROP_RETURN_NOT_OK(transformation.Validate());
  std::vector<Instance> instances;
  for (const TableRule& rule : transformation.rules()) {
    XMLPROP_ASSIGN_OR_RETURN(Instance instance, EvalRule(tree, rule));
    instances.push_back(std::move(instance));
  }
  return instances;
}

ColumnarInstance EvalTableTreeColumnar(const TreeIndex& index,
                                       const TableTree& table) {
  obs::Span span("shred.eval");
  ColumnarInstance instance(table.schema());
  IndexedEnumerator(index, table, &instance).Run();
  obs::Count("shred.rows_emitted", instance.size());
  return instance;
}

Instance EvalTableTree(const TreeIndex& index, const TableTree& table) {
  return EvalTableTreeColumnar(index, table).ToInstance();
}

Result<Instance> EvalRule(const TreeIndex& index, const TableRule& rule) {
  XMLPROP_ASSIGN_OR_RETURN(TableTree table, TableTree::Build(rule));
  return EvalTableTree(index, table);
}

Result<std::vector<Instance>> EvalTransformation(
    const TreeIndex& index, const Transformation& transformation) {
  XMLPROP_RETURN_NOT_OK(transformation.Validate());
  std::vector<Instance> instances;
  for (const TableRule& rule : transformation.rules()) {
    XMLPROP_ASSIGN_OR_RETURN(Instance instance, EvalRule(index, rule));
    instances.push_back(std::move(instance));
  }
  return instances;
}

}  // namespace xmlprop
