#ifndef XMLPROP_TRANSFORM_TABLE_TREE_H_
#define XMLPROP_TRANSFORM_TABLE_TREE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "transform/rule.h"
#include "xml/path.h"

namespace xmlprop {

/// The tree form of a table rule (Fig. 3/4): every variable is a node,
/// edges carry the path expression of the variable's mapping, and leaves
/// that populate fields know their field position. The propagation and
/// minimum-cover algorithms operate on this structure.
class TableTree {
 public:
  /// A variable node. Index 0 is always the root variable Xr.
  struct VarNode {
    std::string name;
    int parent = -1;          ///< index of the parent variable node
    PathExpr step;            ///< path labelling the edge from the parent
    std::vector<int> children;
    int field = -1;           ///< schema position populated, or -1
  };

  /// Builds the tree from a rule; the rule is Validate()d first.
  static Result<TableTree> Build(const TableRule& rule);

  const RelationSchema& schema() const { return schema_; }
  const std::string& relation_name() const { return schema_.name(); }

  size_t size() const { return nodes_.size(); }
  int root() const { return 0; }
  const VarNode& node(int i) const { return nodes_[static_cast<size_t>(i)]; }

  /// Index of variable `name`, or NotFound.
  Result<int> IndexOf(std::string_view name) const;

  /// The variable node populating schema position `field`, or -1.
  int VarForField(size_t field) const {
    return field_to_var_[field];
  }

  /// ρ(root, v): concatenation of edge paths from the root down to `v`.
  /// Precomputed at Build time (the algorithms query it in inner loops).
  const PathExpr& PathFromRoot(int v) const {
    return root_paths_[static_cast<size_t>(v)];
  }

  /// ρ(u, v): the unique path from `u` down to `v`; `u` must be an
  /// ancestor-or-self of `v` (checked).
  Result<PathExpr> PathBetween(int u, int v) const;

  /// Nodes on the root→v chain, inclusive of both ends.
  std::vector<int> AncestorChain(int v) const;

  /// True iff `u` is `v` or an ancestor of `v`.
  bool IsAncestorOrSelf(int u, int v) const;

  /// Maximum number of edges root→leaf (the `depth` experiment knob of
  /// Section 6).
  size_t Depth() const;

 private:
  RelationSchema schema_;
  std::vector<VarNode> nodes_;
  std::vector<int> field_to_var_;
  std::vector<PathExpr> root_paths_;
};

}  // namespace xmlprop

#endif  // XMLPROP_TRANSFORM_TABLE_TREE_H_
