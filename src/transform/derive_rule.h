#ifndef XMLPROP_TRANSFORM_DERIVE_RULE_H_
#define XMLPROP_TRANSFORM_DERIVE_RULE_H_

#include <string>

#include "common/result.h"
#include "transform/rule.h"
#include "xml/tree.h"

namespace xmlprop {

/// Bounds for rule derivation.
struct DeriveOptions {
  /// Relation name of the derived universal relation.
  std::string relation_name = "U";
  /// Deepest element path turned into a variable.
  size_t max_depth = 6;
  /// Hard cap on derived fields (exceeded => error, never silent
  /// truncation).
  size_t max_fields = 200;
};

/// Derives a universal-relation table rule from a document's structure —
/// the "rough schema specified by a mapping from the XML document" that
/// the paper's design workflow starts from (Section 1), generated
/// instead of hand-written:
///
///   - every distinct element label path (up to max_depth) becomes a
///     variable, wired to its parent path's variable by a single label
///     step (the root-level paths map from Xr);
///   - every attribute observed on a path becomes a field
///     (`path_parts_attr`: value of @attr);
///   - an element path that never has element children or attributes but
///     carries text becomes a field itself (its value() is the text).
///
/// Together with DiscoverKeys this closes the loop: document → rough
/// schema + candidate keys → minimum cover → normalized design (the
/// CLI's `autodesign` command).
Result<TableRule> DeriveUniversalRule(const Tree& tree,
                                      const DeriveOptions& options = {});

}  // namespace xmlprop

#endif  // XMLPROP_TRANSFORM_DERIVE_RULE_H_
