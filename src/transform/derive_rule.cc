#include "transform/derive_rule.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/str_util.h"

namespace xmlprop {

namespace {

// Structural summary of one distinct element label path.
struct PathInfo {
  std::vector<std::string> labels;       // path from (below) the root
  int parent = -1;                       // index of the parent path
  std::vector<std::string> attributes;  // observed, first-seen order
  bool has_element_children = false;
  bool has_text = false;
};

// Field names must be identifiers; label characters outside the set are
// mapped to '_'.
std::string Sanitize(const std::string& s) {
  std::string out;
  for (char c : s) out.push_back(IsNameChar(c) && c != ':' ? c : '_');
  if (out.empty() || !IsNameStartChar(out[0])) out = "f_" + out;
  return out;
}

}  // namespace

Result<TableRule> DeriveUniversalRule(const Tree& tree,
                                      const DeriveOptions& options) {
  // Pass 1: collect distinct paths in document (first-encounter) order.
  std::vector<PathInfo> paths;
  std::map<std::vector<std::string>, int> path_index;

  struct Frame {
    NodeId node;
    int path = -1;  // index into `paths` (-1 for the root)
    size_t depth = 0;
  };
  std::vector<Frame> stack = {{tree.root(), -1, 0}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const Node& n = tree.node(frame.node);
    // Children in reverse so first-encounter order follows the document.
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      if (tree.node(*it).kind != NodeKind::kElement) continue;
      if (frame.depth >= options.max_depth) continue;
      std::vector<std::string> labels;
      if (frame.path >= 0) {
        labels = paths[static_cast<size_t>(frame.path)].labels;
      }
      labels.push_back(tree.node(*it).label);
      auto [entry, inserted] =
          path_index.emplace(labels, static_cast<int>(paths.size()));
      if (inserted) {
        PathInfo info;
        info.labels = std::move(labels);
        info.parent = frame.path;
        paths.push_back(std::move(info));
      }
      stack.push_back({*it, entry->second, frame.depth + 1});
    }
    if (frame.path < 0) continue;
    PathInfo& info = paths[static_cast<size_t>(frame.path)];
    for (NodeId attr : n.attributes) {
      const std::string& name = tree.node(attr).label;
      if (std::find(info.attributes.begin(), info.attributes.end(), name) ==
          info.attributes.end()) {
        info.attributes.push_back(name);
      }
    }
    for (NodeId child : n.children) {
      if (tree.node(child).kind == NodeKind::kElement) {
        info.has_element_children = true;
      } else if (tree.node(child).kind == NodeKind::kText) {
        info.has_text = true;
      }
    }
  }
  // Reversed-stack DFS visits parents before children, but attribute and
  // content flags accumulate across ALL occurrences of a path, which the
  // single pass above already does (every node is visited).

  // Pass 2: emit the rule. Variables in path order guarantee parents are
  // declared first (paths store their parent's index, always smaller?
  // not necessarily — a path can first be seen under a later parent
  // occurrence. Sort topologically by path length to be safe.)
  std::vector<size_t> order(paths.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return paths[a].labels.size() < paths[b].labels.size();
  });

  TableRule rule(options.relation_name);
  std::vector<std::string> var_of_path(paths.size());
  std::set<std::string> used_fields;
  size_t field_count = 0;
  size_t var_counter = 0;

  // First declare all element variables (parents before children).
  for (size_t idx : order) {
    PathInfo& p = paths[idx];
    std::string var = "V" + std::to_string(++var_counter);
    var_of_path[idx] = var;
    std::string parent_var = p.parent < 0
                                 ? std::string(kRootVar)
                                 : var_of_path[static_cast<size_t>(p.parent)];
    XMLPROP_ASSIGN_OR_RETURN(PathExpr step,
                             PathExpr::Parse(p.labels.back()));
    rule.AddMapping(var, parent_var, std::move(step));
  }

  auto unique_field = [&](std::string base) {
    std::string name = Sanitize(base);
    std::string candidate = name;
    int suffix = 1;
    while (!used_fields.insert(candidate).second) {
      candidate = name + "_" + std::to_string(++suffix);
    }
    return candidate;
  };

  // Then fields: attributes, and text-only leaves.
  for (size_t idx : order) {
    const PathInfo& p = paths[idx];
    std::string base = Join(p.labels, "_");
    for (const std::string& attr : p.attributes) {
      if (++field_count > options.max_fields) {
        return Status::InvalidArgument(
            "derived rule exceeds max_fields=" +
            std::to_string(options.max_fields) +
            "; raise DeriveOptions::max_fields or lower max_depth");
      }
      std::string var = "A" + std::to_string(field_count);
      XMLPROP_ASSIGN_OR_RETURN(PathExpr step, PathExpr::Parse("@" + attr));
      rule.AddMapping(var, var_of_path[idx], std::move(step));
      rule.AddField(unique_field(base + "_" + attr), var);
    }
    if (!p.has_element_children && p.attributes.empty() && p.has_text) {
      if (++field_count > options.max_fields) {
        return Status::InvalidArgument(
            "derived rule exceeds max_fields=" +
            std::to_string(options.max_fields));
      }
      // The element variable itself is the field (it is a leaf in the
      // table tree: no child variables were derived for it).
      rule.AddField(unique_field(base), var_of_path[idx]);
    }
  }

  if (rule.field_rules().empty()) {
    return Status::InvalidArgument(
        "document yields no fields (no attributes or text leaves within "
        "max_depth)");
  }
  XMLPROP_RETURN_NOT_OK(rule.Validate());
  return rule;
}

}  // namespace xmlprop
