#include "transform/table_tree.h"

#include <algorithm>
#include <map>

namespace xmlprop {

Result<TableTree> TableTree::Build(const TableRule& rule) {
  XMLPROP_RETURN_NOT_OK(rule.Validate());

  TableTree tree;
  tree.schema_ = rule.Schema();

  std::map<std::string, int, std::less<>> index;
  VarNode root;
  root.name = std::string(kRootVar);
  tree.nodes_.push_back(std::move(root));
  index.emplace(std::string(kRootVar), 0);

  for (const VarMapping& m : rule.mappings()) {
    auto parent_it = index.find(m.parent);
    if (parent_it == index.end()) {
      return Status::Internal("validated rule has unknown parent " +
                              m.parent);
    }
    VarNode node;
    node.name = m.var;
    node.parent = parent_it->second;
    node.step = m.path;
    int id = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(std::move(node));
    tree.nodes_[static_cast<size_t>(parent_it->second)].children.push_back(id);
    index.emplace(m.var, id);
  }

  tree.field_to_var_.assign(tree.schema_.arity(), -1);
  for (size_t f = 0; f < rule.field_rules().size(); ++f) {
    const FieldRule& fr = rule.field_rules()[f];
    auto it = index.find(fr.var);
    if (it == index.end()) {
      return Status::Internal("validated rule has unknown field variable " +
                              fr.var);
    }
    tree.nodes_[static_cast<size_t>(it->second)].field = static_cast<int>(f);
    tree.field_to_var_[f] = it->second;
  }
  // Precompute root paths (parents precede children in index order).
  tree.root_paths_.resize(tree.nodes_.size());
  for (size_t v = 1; v < tree.nodes_.size(); ++v) {
    const VarNode& node = tree.nodes_[v];
    tree.root_paths_[v] =
        tree.root_paths_[static_cast<size_t>(node.parent)].Concat(node.step);
  }
  return tree;
}

Result<int> TableTree::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound("no variable named " + std::string(name));
}

Result<PathExpr> TableTree::PathBetween(int u, int v) const {
  if (!IsAncestorOrSelf(u, v)) {
    return Status::InvalidArgument("variable " + node(u).name +
                                   " is not an ancestor of " + node(v).name);
  }
  PathExpr path;
  std::vector<PathExpr> steps;
  int cur = v;
  while (cur != u) {
    steps.push_back(node(cur).step);
    cur = node(cur).parent;
  }
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    path = path.Concat(*it);
  }
  return path;
}

std::vector<int> TableTree::AncestorChain(int v) const {
  std::vector<int> chain;
  int cur = v;
  while (cur != -1) {
    chain.push_back(cur);
    cur = node(cur).parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

bool TableTree::IsAncestorOrSelf(int u, int v) const {
  int cur = v;
  while (cur != -1) {
    if (cur == u) return true;
    cur = node(cur).parent;
  }
  return false;
}

size_t TableTree::Depth() const {
  size_t depth = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    size_t d = AncestorChain(static_cast<int>(i)).size() - 1;
    depth = std::max(depth, d);
  }
  return depth;
}

}  // namespace xmlprop
