#ifndef XMLPROP_OBS_FLIGHT_RECORDER_H_
#define XMLPROP_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace xmlprop {
namespace obs {

/// The flight recorder is the process black box for the live-service
/// story: an always-on, lock-free, allocation-free ring of the last N
/// span-begin/end, metric-delta and log events per thread, plus an
/// async-signal-safe crash handler that dumps the merged ring, every
/// registered thread's open-span stack and the peak RSS to a file before
/// re-raising the fatal signal. Unlike Trace (opt-in, buffered until
/// Finish) the recorder is on from process start and survives crashes —
/// it answers "what was the process doing right before it died" for a
/// daemon that never reaches a clean report path.
///
/// Hot-path contract: recording one event is one relaxed enabled-check,
/// one thread-local ring lookup (registration on a thread's first event
/// takes a spinlock-free slot claim), one global sequence fetch_add, a
/// steady_clock read and a ≤ 48-byte copy into preallocated storage. No
/// locks, no allocation, no syscalls.

/// What one ring entry records.
enum class FlightEventKind : uint8_t {
  kNone = 0,
  kSpanBegin = 1,
  kSpanEnd = 2,
  kMetric = 3,  ///< counter/gauge/histogram movement; value = delta
  kLog = 4,     ///< value = log level
};

/// One fixed-size POD ring record. `text` holds the (possibly truncated)
/// span/metric name or log message — copied, never referenced, so the
/// dump can never chase a dangling pointer. Text longer than the slot
/// keeps its first 44 bytes plus an explicit `…` marker (3-byte UTF-8)
/// and bumps the truncation counter (FlightTruncatedTotal) — truncation
/// is visible in the dump, never silent.
struct FlightEvent {
  static constexpr size_t kTextCapacity = 47;  ///< + NUL = 48 bytes
  /// Bytes of original text kept when truncating (the rest of the slot
  /// holds the `…` marker).
  static constexpr size_t kTruncatedTextBytes = 44;

  uint64_t seq = 0;    ///< global record order (1-based; 0 = empty slot)
  uint64_t ts_ns = 0;  ///< steady-clock nanoseconds since recorder epoch
  int64_t value = 0;   ///< metric delta, or log level
  FlightEventKind kind = FlightEventKind::kNone;
  char text[kTextCapacity + 1] = {};
};

/// Events kept per thread. Power of two; the ring keeps the most recent
/// kRingCapacity events a thread recorded.
inline constexpr size_t kFlightRingCapacity = 256;
/// Threads the recorder can register; later threads drop their events
/// (counted in `dropped_threads` of the dump header).
inline constexpr size_t kFlightMaxThreads = 64;

namespace internal {

/// -1 = undecided (consult XMLPROP_FLIGHT_RECORDER once), 0 = off, 1 = on.
extern std::atomic<int> g_flight_enabled;

/// Outlined slow paths: record one event / decide enablement from the
/// environment. Never call directly — use the Record* wrappers.
void FlightRecord(FlightEventKind kind, const char* text, size_t text_len,
                  int64_t value);
bool FlightDecideEnabled();

inline bool FlightEnabled() {
  const int state = g_flight_enabled.load(std::memory_order_relaxed);
  if (state > 0) return true;
  if (state == 0) return false;
  return FlightDecideEnabled();
}

}  // namespace internal

/// Records a span start/end. `name` is copied (truncated to 47 bytes).
inline void RecordSpanBegin(const char* name) {
  if (!internal::FlightEnabled()) return;
  internal::FlightRecord(FlightEventKind::kSpanBegin, name,
                         std::string_view(name).size(), 0);
}
inline void RecordSpanEnd(const char* name) {
  if (!internal::FlightEnabled()) return;
  internal::FlightRecord(FlightEventKind::kSpanEnd, name,
                         std::string_view(name).size(), 0);
}

/// Records a metric movement (counter add, gauge set, histogram observe).
inline void RecordMetricDelta(std::string_view name, int64_t value) {
  if (!internal::FlightEnabled()) return;
  internal::FlightRecord(FlightEventKind::kMetric, name.data(), name.size(),
                         value);
}

/// Records an emitted log line (message truncated; `level` is the
/// LogLevel's integer value).
inline void RecordLogEvent(int level, std::string_view message) {
  if (!internal::FlightEnabled()) return;
  internal::FlightRecord(FlightEventKind::kLog, message.data(),
                         message.size(), level);
}

/// Master switch, overriding the XMLPROP_FLIGHT_RECORDER environment
/// variable (set "0" to disable from the environment). Used by the A/B
/// overhead bench and the --no-flight-recorder CLI escape hatch.
void SetFlightRecorderEnabled(bool enabled);
bool FlightRecorderEnabled();

/// Installs the async-signal-safe crash handler for SIGSEGV, SIGABRT,
/// SIGBUS, SIGFPE and SIGILL. On a fatal signal the handler writes the
/// dump to `path` (copied into static storage; keep it short), notes the
/// dump location on stderr, restores the default handler and re-raises,
/// so the exit status still reflects the signal. Idempotent; the last
/// path wins.
void InstallCrashHandler(const char* path);

/// The path the crash handler would write to ("" when not installed).
const char* CrashDumpPath();

/// Renders the current recorder state — the dump the crash handler would
/// write, minus the signal line — into a string. Not async-signal-safe;
/// for tests, debugging and operator tooling.
std::string DumpFlightRecorderToString();

/// Renders every registered thread's open-span stack on one line each
/// ("tid=123 name=pool-0: a > b > c; ..."), reusing the crash dump's
/// merge path. The stall watchdog attaches this to its stall record so
/// operators see where each thread is stuck. Not async-signal-safe.
std::string DumpOpenSpanStacksToString();

/// Ring events whose text was truncated to fit the 48-byte slot since
/// process start (or the last test reset). Surfaced as the
/// `obs.flight_truncated_total` counter by the CLI.
uint64_t FlightTruncatedTotal();

// ---------------------------------------------------------------------------
// In-flight operation registry. The serve daemon registers each open
// request (its ObsContext does, transparently) so a crash dump names the
// requests that were being served when the process died — the black box
// answers "crashed doing what, for whom" across many concurrent
// requests, not just "crashed where". Preallocated fixed slots; reading
// is async-signal-safe (a concurrently reused slot at worst shows a torn
// but NUL-terminated name).

/// Operations the registry can hold at once; registrations beyond this
/// are dropped (counted in the dump's `dropped_operations` header).
inline constexpr size_t kMaxOpenOperations = 64;

/// Registers an in-flight operation. `name` is copied (truncated to 31
/// bytes); `id` must be non-zero (0 marks a free slot and is remapped to
/// 1). Returns the slot to pass to UnregisterOpenOperation, or -1 when
/// the table is full (the unregister of -1 is a no-op). Lifetime-safe
/// for a long-lived daemon: slots recycle, nothing grows.
int RegisterOpenOperation(const char* name, uint64_t id);
void UnregisterOpenOperation(int slot);

/// "check#12 cover#13" — the open operations, oldest slot first ("(none)"
/// when idle). Reuses the crash dump's rendering; for tests and the
/// serve `stats` endpoint. Not async-signal-safe (returns std::string);
/// the crash handler renders the same section through the fd path.
std::string DumpOpenOperationsToString();

/// Registrations dropped because the table was full.
uint64_t OpenOperationsDropped();

/// Async-signal-safe dump to an open file descriptor. `signal` > 0 adds
/// the fatal-signal header line. This is the crash handler's body,
/// exposed so tests can exercise the exact signal-path code.
void DumpFlightRecorderToFd(int fd, int signal);

namespace internal {
/// Test-only: forgets every registered ring and resets the sequence
/// counter. Callers must guarantee no other thread records concurrently.
void ResetFlightRecorderForTest();
/// Events dropped because more than kFlightMaxThreads threads recorded.
uint64_t FlightDroppedThreads();
}  // namespace internal

}  // namespace obs
}  // namespace xmlprop

#endif  // XMLPROP_OBS_FLIGHT_RECORDER_H_
