#include "obs/trace.h"

#include "obs/flight_recorder.h"

#include <algorithm>
#include <functional>
#include <thread>
#include <unordered_map>

#if defined(__linux__)
#include <pthread.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace xmlprop {
namespace obs {

namespace internal {
std::atomic<Trace*> g_active_trace{nullptr};

thread_local const char* tls_span_stack[kMaxSpanStack] = {};
thread_local int tls_span_depth = 0;
std::atomic<int> g_span_stack_refs{0};

namespace {

// Global start-order sequencer shared by every trace: a total order on
// span starts is what lets records name their parent across threads.
std::atomic<uint64_t> g_next_seq{1};

// Innermost open span on this thread (0 = none).
thread_local uint64_t tls_current_span = 0;

// One-entry (trace → buffer) cache so a thread registers with a trace
// once and then records lock-free.
thread_local Trace* tls_buffer_trace = nullptr;
thread_local ThreadBuffer* tls_buffer = nullptr;

double ElapsedMs(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

uint64_t CurrentTid() {
#if defined(__linux__)
  return static_cast<uint64_t>(::syscall(SYS_gettid));
#else
  return static_cast<uint64_t>(
      std::hash<std::thread::id>()(std::this_thread::get_id()));
#endif
}

std::string CurrentThreadName() {
#if defined(__linux__)
  char buf[32] = {};
  if (pthread_getname_np(pthread_self(), buf, sizeof(buf)) == 0 &&
      buf[0] != '\0') {
    return buf;
  }
#endif
  return "thread";
}

// Groups sibling raw records by name (first-start order) into aggregated
// SpanNodes, recursing into the union of each group's children.
std::vector<SpanNode> Aggregate(
    const std::vector<const SpanRecord*>& siblings,
    const std::unordered_map<uint64_t, std::vector<const SpanRecord*>>&
        children_of) {
  std::vector<SpanNode> nodes;
  std::vector<std::vector<const SpanRecord*>> members;
  std::unordered_map<std::string_view, size_t> index_of;
  for (const SpanRecord* record : siblings) {
    auto [it, inserted] =
        index_of.emplace(std::string_view(record->name), nodes.size());
    if (inserted) {
      nodes.push_back(SpanNode{record->name, 0, 0, {}});
      members.emplace_back();
    }
    SpanNode& node = nodes[it->second];
    ++node.count;
    node.total_ms += record->elapsed_ms;
    members[it->second].push_back(record);
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    std::vector<const SpanRecord*> child_records;
    for (const SpanRecord* member : members[i]) {
      auto it = children_of.find(member->seq);
      if (it == children_of.end()) continue;
      child_records.insert(child_records.end(), it->second.begin(),
                           it->second.end());
    }
    std::sort(child_records.begin(), child_records.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                return a->seq < b->seq;
              });
    nodes[i].children = Aggregate(child_records, children_of);
  }
  return nodes;
}

}  // namespace
}  // namespace internal

const SpanNode* SpanNode::Find(std::string_view child_name) const {
  for (const SpanNode& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

const SpanNode* TraceSummary::Find(std::string_view slash_path) const {
  const std::vector<SpanNode>* level = &roots;
  const SpanNode* found = nullptr;
  while (!slash_path.empty()) {
    size_t slash = slash_path.find('/');
    std::string_view head = slash_path.substr(0, slash);
    slash_path = (slash == std::string_view::npos)
                     ? std::string_view()
                     : slash_path.substr(slash + 1);
    found = nullptr;
    for (const SpanNode& node : *level) {
      if (node.name == head) {
        found = &node;
        break;
      }
    }
    if (found == nullptr) return nullptr;
    level = &found->children;
  }
  return found;
}

double TraceSummary::RootTotalMs() const {
  double total = 0;
  for (const SpanNode& root : roots) total += root.total_ms;
  return total;
}

Trace::Trace() : start_(std::chrono::steady_clock::now()) {}

Trace::~Trace() {
  // Invalidate any thread cache pointing at this trace: the caching
  // thread is this one (other threads' caches are benign — they compare
  // against the active trace before use, and a dead trace is never
  // active again because ScopedTrace unwinds before destruction).
  if (internal::tls_buffer_trace == this) {
    internal::tls_buffer_trace = nullptr;
    internal::tls_buffer = nullptr;
  }
}

internal::ThreadBuffer* Trace::BufferForThisThread() {
  if (internal::tls_buffer_trace == this) return internal::tls_buffer;
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<internal::ThreadBuffer>());
  internal::ThreadBuffer* buffer = buffers_.back().get();
  buffer->tid = internal::CurrentTid();
  buffer->thread_name = internal::CurrentThreadName();
  internal::tls_buffer_trace = this;
  internal::tls_buffer = buffer;
  return buffer;
}

const TraceSummary& Trace::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return summary_;
  finished_ = true;
  summary_.wall_ms =
      internal::ElapsedMs(start_, std::chrono::steady_clock::now());

  std::vector<const internal::SpanRecord*> all;
  for (const auto& buffer : buffers_) {
    for (const internal::SpanRecord& record : buffer->records) {
      all.push_back(&record);
    }
  }
  std::unordered_map<uint64_t, std::vector<const internal::SpanRecord*>>
      children_of;
  std::unordered_map<uint64_t, bool> known;
  known.reserve(all.size());
  for (const internal::SpanRecord* record : all) known[record->seq] = true;
  std::vector<const internal::SpanRecord*> roots;
  for (const internal::SpanRecord* record : all) {
    // A parent that never recorded (still open at Finish, or outside
    // this trace) demotes the span to a root rather than dropping it.
    if (record->parent_seq != 0 && known.count(record->parent_seq) > 0) {
      children_of[record->parent_seq].push_back(record);
    } else {
      roots.push_back(record);
    }
  }
  auto by_seq = [](const internal::SpanRecord* a,
                   const internal::SpanRecord* b) { return a->seq < b->seq; };
  std::sort(roots.begin(), roots.end(), by_seq);
  for (auto& [seq, child_list] : children_of) {
    std::sort(child_list.begin(), child_list.end(), by_seq);
  }
  summary_.roots = internal::Aggregate(roots, children_of);

  // Per-thread raw timelines for the Chrome Trace / Perfetto exporter.
  for (const auto& buffer : buffers_) {
    if (buffer->records.empty()) continue;
    ThreadTrack track;
    track.tid = buffer->tid;
    track.thread_name = buffer->thread_name;
    track.events.reserve(buffer->records.size());
    for (const internal::SpanRecord& record : buffer->records) {
      track.events.push_back(TraceEvent{record.name, record.seq,
                                        record.parent_seq, record.start_ms,
                                        record.elapsed_ms});
    }
    std::sort(track.events.begin(), track.events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.start_ms < b.start_ms;
              });
    summary_.tracks.push_back(std::move(track));
  }
  std::sort(summary_.tracks.begin(), summary_.tracks.end(),
            [](const ThreadTrack& a, const ThreadTrack& b) {
              return a.events.front().seq < b.events.front().seq;
            });
  return summary_;
}

ScopedTrace::ScopedTrace(Trace* trace)
    : previous_(internal::g_active_trace.exchange(trace,
                                                  std::memory_order_relaxed)) {}

ScopedTrace::~ScopedTrace() {
  internal::g_active_trace.store(previous_, std::memory_order_relaxed);
}

SpanToken CurrentSpan() {
  // The token carries this thread's observability binding alongside the
  // span seq, so SpanParent re-establishes BOTH in pool workers — span
  // parentage and ObsContext attribution ride one handshake.
  return SpanToken{internal::tls_current_span, internal::tls_obs_binding};
}

Span::Span(const char* name)
    : trace_(internal::tls_obs_binding.trace != nullptr
                 ? internal::tls_obs_binding.trace
                 : internal::g_active_trace.load(std::memory_order_relaxed)),
      name_(name) {
  // The flight recorder sees every span, traced or not — it is the
  // always-on black box, independent of the opt-in Trace plane.
  RecordSpanBegin(name_);
  internal::BindingTouch();  // span starts count as context activity
  const bool cursor_wanted =
      internal::g_span_stack_refs.load(std::memory_order_relaxed) > 0;
  if (trace_ == nullptr && !cursor_wanted) return;
  // Publish the name before the depth so a signal handler interrupting
  // between the two stores never reads a stale slot.
  const int depth = internal::tls_span_depth;
  if (depth < internal::kMaxSpanStack) {
    internal::tls_span_stack[depth] = name_;
  }
  std::atomic_signal_fence(std::memory_order_release);
  internal::tls_span_depth = depth + 1;
  pushed_ = true;
  if (trace_ == nullptr) return;  // cursor-only (profiler / mem hooks)
  seq_ = internal::g_next_seq.fetch_add(1, std::memory_order_relaxed);
  parent_seq_ = internal::tls_current_span;
  internal::tls_current_span = seq_;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  RecordSpanEnd(name_);
  if (pushed_) {
    internal::tls_span_depth -= 1;
    std::atomic_signal_fence(std::memory_order_release);
  }
  if (trace_ == nullptr || seq_ == 0) return;
  double elapsed =
      internal::ElapsedMs(start_, std::chrono::steady_clock::now());
  internal::tls_current_span = parent_seq_;
  trace_->BufferForThisThread()->records.push_back(internal::SpanRecord{
      name_, seq_, parent_seq_, internal::ElapsedMs(trace_->start_, start_),
      elapsed});
}

SpanParent::SpanParent(SpanToken parent)
    : previous_(internal::tls_current_span),
      previous_binding_(internal::tls_obs_binding) {
  internal::tls_current_span = parent.seq;
  internal::tls_obs_binding = parent.binding;
}

SpanParent::~SpanParent() {
  internal::tls_current_span = previous_;
  internal::tls_obs_binding = previous_binding_;
}

}  // namespace obs
}  // namespace xmlprop
