#include "obs/report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace xmlprop {
namespace obs {

namespace {

// %.6g keeps durations readable and valid JSON (no trailing garbage,
// never locale-dependent for these formats).
std::string Num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void SpanJson(const SpanNode& node, std::ostringstream& out) {
  out << "{\"name\":\"" << JsonEscape(node.name) << "\",\"count\":"
      << node.count << ",\"total_ms\":" << Num(node.total_ms)
      << ",\"children\":[";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out << ",";
    SpanJson(node.children[i], out);
  }
  out << "]}";
}

void SpanText(const SpanNode& node, int depth, std::ostringstream& out) {
  for (int i = 0; i < depth; ++i) out << "  ";
  out << node.name << "  " << Num(node.total_ms) << " ms";
  if (node.count > 1) out << "  (x" << node.count << ")";
  out << "\n";
  for (const SpanNode& child : node.children) {
    SpanText(child, depth + 1, out);
  }
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ReportToJson(const RunReport& report) {
  std::ostringstream out;
  out << "{\"version\":" << kReportVersion << ",\"command\":\""
      << JsonEscape(report.command) << "\",";
  if (!report.context.empty()) {
    out << "\"context\":\"" << JsonEscape(report.context) << "\",";
  }
  out << "\"config\":\""
      << JsonEscape(report.config) << "\",\"wall_ms\":"
      << Num(report.trace.wall_ms) << ",\"spans\":[";
  for (size_t i = 0; i < report.trace.roots.size(); ++i) {
    if (i > 0) out << ",";
    SpanJson(report.trace.roots[i], out);
  }
  out << "],\"metrics\":{\"counters\":{";
  for (size_t i = 0; i < report.metrics.counters.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << JsonEscape(report.metrics.counters[i].first)
        << "\":" << report.metrics.counters[i].second;
  }
  out << "},\"gauges\":{";
  for (size_t i = 0; i < report.metrics.gauges.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << JsonEscape(report.metrics.gauges[i].first)
        << "\":" << report.metrics.gauges[i].second;
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < report.metrics.histograms.size(); ++i) {
    if (i > 0) out << ",";
    const auto& [name, h] = report.metrics.histograms[i];
    out << "\"" << JsonEscape(name) << "\":{\"count\":" << h.count
        << ",\"sum\":" << Num(h.sum) << ",\"min\":" << Num(h.min)
        << ",\"max\":" << Num(h.max) << ",\"p50\":" << Num(h.Percentile(50))
        << ",\"p95\":" << Num(h.Percentile(95))
        << ",\"p99\":" << Num(h.Percentile(99)) << "}";
  }
  out << "}},\"memory\":{\"max_rss_kb\":" << report.memory.max_rss_kb;
  if (report.memory.hooks_enabled) {
    out << ",\"alloc_count\":" << report.memory.alloc_count
        << ",\"alloc_bytes\":" << report.memory.alloc_bytes
        << ",\"free_count\":" << report.memory.free_count
        << ",\"live_bytes\":" << report.memory.live_bytes
        << ",\"peak_live_bytes\":" << report.memory.peak_live_bytes
        << ",\"by_span\":{";
    for (size_t i = 0; i < report.memory.by_span.size(); ++i) {
      if (i > 0) out << ",";
      const MemSpanAlloc& row = report.memory.by_span[i];
      out << "\"" << JsonEscape(row.span) << "\":{\"count\":" << row.count
          << ",\"bytes\":" << row.bytes << "}";
    }
    out << "}";
  }
  out << "}";
  if (!report.profile.empty()) {
    out << ",\"profile\":{\"samples\":" << report.profile.samples
        << ",\"dropped\":" << report.profile.dropped
        << ",\"period_us\":" << report.profile.period_us << ",\"spans\":{";
    for (size_t i = 0; i < report.profile.span_counts.size(); ++i) {
      if (i > 0) out << ",";
      const ProfileSpanCount& row = report.profile.span_counts[i];
      out << "\"" << JsonEscape(row.name) << "\":{\"self\":" << row.self
          << ",\"total\":" << row.total << "}";
    }
    out << "}}";
  }
  if (!report.constraint_costs.empty()) {
    out << ",\"constraint_costs\":[";
    for (size_t i = 0; i < report.constraint_costs.size(); ++i) {
      if (i > 0) out << ",";
      const ConstraintCostRow& row = report.constraint_costs[i];
      out << "{\"constraint\":\"" << JsonEscape(row.label)
          << "\",\"contexts\":" << row.Get(CostKind::kContexts)
          << ",\"tuples_hashed\":" << row.Get(CostKind::kTuplesHashed)
          << ",\"closure_touches\":" << row.Get(CostKind::kClosureTouches)
          << ",\"memo_hits\":" << row.Get(CostKind::kMemoHits)
          << ",\"implication_calls\":" << row.Get(CostKind::kImplicationCalls)
          << ",\"violations\":" << row.Get(CostKind::kViolations)
          << ",\"wall_ms\":" << Num(row.WallMs()) << "}";
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

std::string CostTableToText(const std::vector<ConstraintCostRow>& rows) {
  std::ostringstream out;
  size_t label_width = 10;
  for (const ConstraintCostRow& row : rows) {
    label_width = std::max(label_width, row.label.size());
  }
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-*s %10s %12s %14s %10s %10s %10s %10s\n",
                static_cast<int>(label_width), "constraint", "contexts",
                "tuples", "closure", "memo", "implies", "violations",
                "wall_ms");
  out << line;
  for (const ConstraintCostRow& row : rows) {
    std::snprintf(line, sizeof(line),
                  "%-*s %10" PRIu64 " %12" PRIu64 " %14" PRIu64 " %10" PRIu64
                  " %10" PRIu64 " %10" PRIu64 " %10.3f\n",
                  static_cast<int>(label_width), row.label.c_str(),
                  row.Get(CostKind::kContexts),
                  row.Get(CostKind::kTuplesHashed),
                  row.Get(CostKind::kClosureTouches),
                  row.Get(CostKind::kMemoHits),
                  row.Get(CostKind::kImplicationCalls),
                  row.Get(CostKind::kViolations), row.WallMs());
    out << line;
  }
  return out.str();
}

std::string ReportToText(const RunReport& report) {
  std::ostringstream out;
  out << "trace: " << report.command;
  if (!report.context.empty()) out << " ctx=" << report.context;
  if (!report.config.empty()) out << " [" << report.config << "]";
  out << "  wall " << Num(report.trace.wall_ms) << " ms\n";
  for (const SpanNode& root : report.trace.roots) {
    SpanText(root, 1, out);
  }
  if (!report.metrics.empty()) {
    out << "metrics:\n";
    for (const auto& [name, value] : report.metrics.counters) {
      out << "  " << name << " = " << value << "\n";
    }
    for (const auto& [name, value] : report.metrics.gauges) {
      out << "  " << name << " = " << value << " (gauge)\n";
    }
    for (const auto& [name, h] : report.metrics.histograms) {
      out << "  " << name << " = count " << h.count << ", sum " << Num(h.sum)
          << ", min " << Num(h.min) << ", max " << Num(h.max) << ", p50 "
          << Num(h.Percentile(50)) << ", p95 " << Num(h.Percentile(95))
          << ", p99 " << Num(h.Percentile(99)) << "\n";
    }
  }
  if (!report.profile.empty()) {
    out << "profile: " << report.profile.samples << " samples ("
        << report.profile.dropped << " dropped, period "
        << report.profile.period_us << " us)\n";
    for (const ProfileSpanCount& row : report.profile.span_counts) {
      out << "  " << row.name << "  self " << row.self << "  total "
          << row.total << "\n";
    }
  }
  if (!report.constraint_costs.empty()) {
    out << "constraint costs (hot first):\n"
        << CostTableToText(report.constraint_costs);
  }
  out << "memory: max_rss " << report.memory.max_rss_kb << " kb";
  if (report.memory.hooks_enabled) {
    out << ", allocs " << report.memory.alloc_count << " ("
        << report.memory.alloc_bytes << " bytes), peak_live "
        << report.memory.peak_live_bytes << " bytes";
  }
  out << "\n";
  if (report.memory.hooks_enabled) {
    for (const MemSpanAlloc& row : report.memory.by_span) {
      out << "  " << row.span << "  allocs " << row.count << "  bytes "
          << row.bytes << "\n";
    }
  }
  return out.str();
}

}  // namespace obs
}  // namespace xmlprop
