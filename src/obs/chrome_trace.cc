#include "obs/chrome_trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/log.h"
#include "obs/report.h"

namespace xmlprop {
namespace obs {

namespace {

// Chrome Trace timestamps are microseconds; %.3f keeps nanosecond
// precision without scientific notation (ts must be a plain number).
std::string Us(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ms * 1000.0);
  return buf;
}

}  // namespace

std::string ExportChromeTrace(const TraceSummary& summary,
                              const std::string& process_name) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out << ",";
    first = false;
  };
  comma();
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\""
      << JsonEscape(process_name) << "\"}}";
  for (const ThreadTrack& track : summary.tracks) {
    comma();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << track.tid << ",\"args\":{\"name\":\""
        << JsonEscape(track.thread_name) << "\"}}";
  }
  for (const ThreadTrack& track : summary.tracks) {
    for (const TraceEvent& event : track.events) {
      comma();
      out << "{\"name\":\"" << JsonEscape(event.name)
          << "\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":"
          << track.tid << ",\"ts\":" << Us(event.start_ms)
          << ",\"dur\":" << Us(event.dur_ms) << ",\"args\":{\"seq\":"
          << event.seq << "}}";
    }
  }
  out << "]}";
  return out.str();
}

bool WriteChromeTrace(const TraceSummary& summary, const std::string& path,
                      const std::string& process_name) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    LogError("trace", "cannot write " + path);
    return false;
  }
  out << ExportChromeTrace(summary, process_name) << "\n";
  out.close();
  return static_cast<bool>(out);
}

}  // namespace obs
}  // namespace xmlprop
