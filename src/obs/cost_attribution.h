#ifndef XMLPROP_OBS_COST_ATTRIBUTION_H_
#define XMLPROP_OBS_COST_ATTRIBUTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/context_binding.h"

namespace xmlprop {
namespace obs {

/// Per-constraint cost attribution: which key / FD burned the cycles and
/// produced the violations. Constraint labels are interned once into
/// small ids; every hot-path charge is then one relaxed atomic add into a
/// preallocated row — no locks, no allocation, no label hashing after the
/// intern. Deep code (closure counter touches, implication memo hits)
/// charges the *current* constraint through a thread-local scope, so the
/// kernels stay ignorant of which key is being checked.
///
/// This is the accounting a repair planner ranks on (cf. cardinality
/// repair for FDs): hot-first per-constraint tables in `--explain-cost`
/// and the v3 run report, reconciling exactly with the aggregate
/// MetricRegistry counters.

/// The charge kinds one constraint accumulates. Order is the column
/// order of the rendered table.
enum class CostKind : int {
  kContexts = 0,      ///< context sets scanned (key checking)
  kTuplesHashed,      ///< flat tuples folded into dedup tables
  kClosureTouches,    ///< LinClosure counter/word touches
  kMemoHits,          ///< implication-engine memo hits
  kImplicationCalls,  ///< implication queries issued
  kViolations,        ///< violations attributed to this constraint
  kWallNs,            ///< wall time spent, nanoseconds
  kNumKinds,
};

inline constexpr int kNumCostKinds = static_cast<int>(CostKind::kNumKinds);

/// One constraint's totals, labelled. `values` is indexed by CostKind.
struct ConstraintCostRow {
  std::string label;
  uint64_t values[kNumCostKinds] = {};

  uint64_t Get(CostKind kind) const {
    return values[static_cast<int>(kind)];
  }
  double WallMs() const {
    return static_cast<double>(Get(CostKind::kWallNs)) / 1e6;
  }
};

/// The attribution table for one run. Thread-safe: Intern takes a mutex
/// (once per constraint), Add is lock-free on the preallocated rows.
class CostAttribution {
 public:
  /// Rows preallocated up front; constraints interned beyond this many
  /// are dropped (charged to nothing) rather than reallocating under
  /// concurrent writers.
  static constexpr uint32_t kMaxConstraints = 4096;
  /// Id meaning "no constraint in scope"; charges to it are dropped.
  static constexpr uint32_t kNoConstraint = ~uint32_t{0};

  CostAttribution();
  CostAttribution(const CostAttribution&) = delete;
  CostAttribution& operator=(const CostAttribution&) = delete;

  /// The id for `label`, interning it on first sight. Stable for the
  /// table's lifetime. Returns kNoConstraint once kMaxConstraints labels
  /// exist.
  uint32_t Intern(std::string_view label);

  /// Charges `delta` of `kind` to `id` (no-op for kNoConstraint).
  void Add(uint32_t id, CostKind kind, uint64_t delta);

  /// Labelled totals in intern order. Concurrent adds may or may not be
  /// visible; call after the charged work joined.
  std::vector<ConstraintCostRow> Snapshot() const;

  /// Number of constraints interned so far.
  uint32_t size() const;

 private:
  struct Row {
    std::atomic<uint64_t> values[kNumCostKinds];
  };

  std::unique_ptr<Row[]> rows_;
  std::atomic<uint32_t> count_{0};
  mutable std::mutex mu_;
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> labels_;
};

/// Sorts rows hot-first: wall time, then violations, then contexts
/// descending; label ascending as the deterministic tie-break.
void SortHotFirst(std::vector<ConstraintCostRow>* rows);

namespace internal {
extern std::atomic<CostAttribution*> g_active_costs;
extern thread_local uint32_t tls_cost_id;
}  // namespace internal

/// The table charges on this thread land in: the bound ObsContext's
/// table when one is installed, else the process-wide table, else
/// nullptr when attribution is off (the default: every helper below is
/// then one TLS read + one relaxed load).
inline CostAttribution* ActiveCosts() {
  if (CostAttribution* bound = internal::tls_obs_binding.costs) return bound;
  return internal::g_active_costs.load(std::memory_order_relaxed);
}

/// Installs `costs` as the active table for this scope (RAII, nests).
class ScopedCostAttribution {
 public:
  explicit ScopedCostAttribution(CostAttribution* costs);
  ~ScopedCostAttribution();
  ScopedCostAttribution(const ScopedCostAttribution&) = delete;
  ScopedCostAttribution& operator=(const ScopedCostAttribution&) = delete;

 private:
  CostAttribution* previous_;
};

/// Declares "this thread is now working for constraint `id`" (RAII,
/// nests; restores the enclosing constraint on destruction). Deep code
/// then charges via CostAdd without knowing the constraint.
class CostScope {
 public:
  explicit CostScope(uint32_t id) : previous_(internal::tls_cost_id) {
    internal::tls_cost_id = id;
  }
  ~CostScope() { internal::tls_cost_id = previous_; }
  CostScope(const CostScope&) = delete;
  CostScope& operator=(const CostScope&) = delete;

 private:
  uint32_t previous_;
};

/// Charges `delta` of `kind` to the current thread's constraint in the
/// active table. One relaxed load + TLS read when attribution is off or
/// no constraint is in scope.
inline void CostAdd(CostKind kind, uint64_t delta = 1) {
  CostAttribution* costs = ActiveCosts();
  if (costs == nullptr) return;
  const uint32_t id = internal::tls_cost_id;
  if (id == CostAttribution::kNoConstraint) return;
  costs->Add(id, kind, delta);
}

/// True when a table is installed AND a constraint is in scope — guard
/// for charges whose delta itself is expensive to compute.
inline bool CostActive() {
  return ActiveCosts() != nullptr &&
         internal::tls_cost_id != CostAttribution::kNoConstraint;
}

/// Charges wall time (kWallNs) for `id` over its lifetime. Measures only
/// when a table is active at construction.
class ScopedCostTimer {
 public:
  explicit ScopedCostTimer(uint32_t id);
  ~ScopedCostTimer();
  ScopedCostTimer(const ScopedCostTimer&) = delete;
  ScopedCostTimer& operator=(const ScopedCostTimer&) = delete;

 private:
  CostAttribution* costs_;
  uint32_t id_;
  uint64_t start_ns_ = 0;
};

}  // namespace obs
}  // namespace xmlprop

#endif  // XMLPROP_OBS_COST_ATTRIBUTION_H_
