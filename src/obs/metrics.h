#ifndef XMLPROP_OBS_METRICS_H_
#define XMLPROP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/context_binding.h"

namespace xmlprop {
namespace obs {

/// Aggregated state of one histogram metric: moments plus fixed
/// log2-scale buckets, so reports can quote p50/p95/p99 without storing
/// raw observations. Bucket `i` covers values up to 2^(i - kBucketShift)
/// — ~15 ns to ~137 s when observing milliseconds — and the last bucket
/// absorbs everything above.
struct HistogramSnapshot {
  static constexpr int kNumBuckets = 64;
  static constexpr int kBucketShift = 26;

  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  std::array<uint64_t, kNumBuckets> buckets{};

  /// The bucket a value folds into (values ≤ 0 go to bucket 0).
  static int BucketIndex(double value);
  /// The inclusive upper bound of bucket `index`.
  static double BucketUpperBound(int index);

  /// The `p`-th percentile (p in [0,100]) estimated by linear
  /// interpolation inside the containing bucket, clamped to [min,max].
  /// 0 when the histogram is empty.
  double Percentile(double p) const;
};

/// Point-in-time copy of a registry, sorted by metric name (deterministic
/// report order regardless of registration order).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// The counter's value, or 0 when absent.
  uint64_t Counter(std::string_view name) const;
};

/// A named-metric registry: thread-safe counters (monotonic adds),
/// gauges (last-write-wins levels) and histograms (moment summaries).
///
/// Counter cells are atomics with stable addresses, so concurrent bumps
/// from pool workers never lose increments and never take the registry
/// mutex after the cell exists (the mutex only guards name → cell
/// creation). The registry is the single sink the per-algorithm stats
/// structs (`PropagationStats`, `CheckStats`) are thin views over: code
/// paths bump the registry once and the structs mirror the movement.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Adds `delta` to the named counter (creating it at 0).
  void Add(std::string_view name, uint64_t delta = 1);
  /// The counter's current value (0 when never bumped).
  uint64_t Counter(std::string_view name) const;

  /// Sets the named gauge to `value` (last write wins).
  void SetGauge(std::string_view name, int64_t value);

  /// Folds `value` into the named histogram.
  void Observe(std::string_view name, double value);

  /// Deterministic (name-sorted) copy of everything recorded so far.
  MetricsSnapshot Snapshot() const;

  /// Folds a snapshot of another registry into this one — the
  /// context-close aggregation path (ObsContext::Close): counters add,
  /// gauges last-write-win, histograms merge moments and buckets. Writes
  /// the cells directly (no flight-recorder events), so folding a shard
  /// never floods the black-box ring with replayed deltas.
  void Merge(const MetricsSnapshot& snapshot);

 private:
  struct HistogramCell {
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::array<uint64_t, HistogramSnapshot::kNumBuckets> buckets{};
  };

  std::atomic<uint64_t>& CounterCell(std::string_view name);

  mutable std::mutex mu_;
  // unique_ptr cells: stable addresses across rehashes, so Add can write
  // through a reference obtained before other names were registered.
  std::unordered_map<std::string, std::unique_ptr<std::atomic<uint64_t>>>
      counters_;
  std::unordered_map<std::string, int64_t> gauges_;
  std::unordered_map<std::string, HistogramCell> histograms_;
};

/// The registry charges on this thread currently land in: the bound
/// ObsContext's shard when one is installed (ScopedObsContext /
/// SpanParent adoption), else the process-wide registry, else nullptr
/// when metrics are off. Library code never checks a flag — it calls the
/// Count/Gauge/Observe helpers below, which stay one TLS read + one
/// relaxed atomic load when nothing is installed (the "disabled overhead
/// below the noise floor" contract).
MetricRegistry* ActiveMetrics();

/// Installs `registry` as the active one for this scope (RAII; restores
/// the previous registry on destruction, so scopes nest).
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricRegistry* registry);
  ~ScopedMetrics();
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  MetricRegistry* previous_;
};

namespace internal {
extern std::atomic<MetricRegistry*> g_active_metrics;
}  // namespace internal

/// Bumps the named counter in the active registry, if any. The bound
/// context's shard wins over the process-global registry; a bound charge
/// also stamps the context's liveness heartbeat (stall watchdog).
inline void Count(const char* name, uint64_t delta = 1) {
  if (MetricRegistry* bound = internal::tls_obs_binding.metrics) {
    bound->Add(name, delta);
    internal::BindingTouch();
    return;
  }
  MetricRegistry* r =
      internal::g_active_metrics.load(std::memory_order_relaxed);
  if (r != nullptr) r->Add(name, delta);
}

/// Sets the named gauge in the active registry, if any.
inline void Gauge(const char* name, int64_t value) {
  if (MetricRegistry* bound = internal::tls_obs_binding.metrics) {
    bound->SetGauge(name, value);
    internal::BindingTouch();
    return;
  }
  MetricRegistry* r =
      internal::g_active_metrics.load(std::memory_order_relaxed);
  if (r != nullptr) r->SetGauge(name, value);
}

/// Observes `value` into the named histogram in the active registry.
inline void Observe(const char* name, double value) {
  if (MetricRegistry* bound = internal::tls_obs_binding.metrics) {
    bound->Observe(name, value);
    internal::BindingTouch();
    return;
  }
  MetricRegistry* r =
      internal::g_active_metrics.load(std::memory_order_relaxed);
  if (r != nullptr) r->Observe(name, value);
}

/// The one bump point for counters that also have a legacy stats-struct
/// field: increments the struct field when the caller passed one AND the
/// active registry either way. This is what fixes the silent stat loss of
/// `stats == nullptr` default parameters deep in call chains — the
/// registry records the movement even when no struct was threaded
/// through.
inline void CountInto(size_t* field, const char* name, uint64_t delta = 1) {
  if (field != nullptr) *field += delta;
  Count(name, delta);
}

}  // namespace obs
}  // namespace xmlprop

#endif  // XMLPROP_OBS_METRICS_H_
