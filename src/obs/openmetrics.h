#ifndef XMLPROP_OBS_OPENMETRICS_H_
#define XMLPROP_OBS_OPENMETRICS_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace xmlprop {
namespace obs {

/// OpenMetrics / Prometheus text exposition of a MetricsSnapshot.
///
/// Mapping: every metric name is prefixed `xmlprop_` and sanitized to
/// `[a-zA-Z_][a-zA-Z0-9_]*` (dots and dashes become underscores).
/// Counters render as `<name>_total`, gauges as `<name>`, histograms as
/// the standard cumulative `<name>_bucket{le="..."}` series (only the
/// buckets where the cumulative count moves, plus the mandatory
/// `le="+Inf"`) with `<name>_sum` and `<name>_count`. Output ends with
/// the OpenMetrics `# EOF` terminator, so a scraper (or the CI lint) can
/// detect truncation.
std::string RenderOpenMetrics(const MetricsSnapshot& snapshot);

/// `name` after prefixing and sanitization — exposed for tests and the
/// exposition itself.
std::string OpenMetricsName(std::string_view name);

/// Writes `RenderOpenMetrics(snapshot)` to `path` via a `<path>.tmp` +
/// rename, so a scraper never reads a half-written exposition. Returns
/// false when the file cannot be written.
bool WriteOpenMetricsFile(const MetricsSnapshot& snapshot,
                          const std::string& path);

/// Periodic snapshot-to-file mode for long runs: a background thread
/// writes the registry's exposition to `path` every `interval_ms`
/// milliseconds, plus one final atomic snapshot at Stop() (or
/// destruction), so short runs still leave the exposition on disk and
/// the last scrape always reflects the registry's final state — callers
/// that fold context shards in late call Stop() AFTER the fold.
/// The registry must outlive the writer.
class PeriodicMetricsWriter {
 public:
  PeriodicMetricsWriter(const MetricRegistry* registry, std::string path,
                        int interval_ms);
  ~PeriodicMetricsWriter();
  PeriodicMetricsWriter(const PeriodicMetricsWriter&) = delete;
  PeriodicMetricsWriter& operator=(const PeriodicMetricsWriter&) = delete;

  /// Joins the writer thread and writes the final snapshot. Idempotent;
  /// the destructor delegates here when never called explicitly.
  void Stop();

  /// Re-arms a stopped writer: spawns a fresh thread on the same
  /// registry/path/interval. Idempotent (a running writer is left
  /// alone), so a daemon that folds request contexts and flushes with
  /// Stop() can call Restart() on every request boundary without
  /// tracking writer state — the scrape file keeps updating for the
  /// process lifetime. Not thread-safe against a concurrent Stop().
  void Restart();

  /// Snapshots written so far (for tests; Stop()'s final write counts
  /// too).
  int writes() const;

 private:
  void Run();

  const MetricRegistry* registry_;
  std::string path_;
  int interval_ms_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;  // Stop() already ran (thread joined, flushed)
  int writes_ = 0;
  std::thread thread_;
};

}  // namespace obs
}  // namespace xmlprop

#endif  // XMLPROP_OBS_OPENMETRICS_H_
