#ifndef XMLPROP_OBS_TRACE_H_
#define XMLPROP_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/context_binding.h"

namespace xmlprop {
namespace obs {

/// One node in the aggregated span tree a Trace produces when it
/// finishes. Spans that ran under the same parent with the same name —
/// notably identical per-chunk spans fanned out across ThreadPool
/// workers — collapse into a single node with `count > 1`, which is what
/// makes the tree's *structure* deterministic even though chunk-to-thread
/// assignment is not. Children are ordered by the first time any span
/// with that name started (global start sequence), so sibling order is
/// the program's phase order, not the scheduler's.
struct SpanNode {
  std::string name;
  uint64_t count = 0;    ///< spans aggregated into this node
  double total_ms = 0;   ///< summed wall time across those spans
  std::vector<SpanNode> children;

  /// First child with `name`, or nullptr (one level, not recursive).
  const SpanNode* Find(std::string_view child_name) const;
};

/// One raw span occurrence on a thread's timeline, with its start offset
/// from the trace's start. Unlike SpanNode this is *not* aggregated —
/// it is the event stream the Chrome Trace / Perfetto exporter needs.
/// `name` points at the span's string literal.
struct TraceEvent {
  const char* name;
  uint64_t seq;
  uint64_t parent_seq;
  double start_ms;  ///< offset from the trace's start
  double dur_ms;
};

/// All events one thread recorded, plus the thread's identity (kernel
/// tid and pthread name, both captured when the thread first recorded
/// into the trace — after ThreadPool named its workers).
struct ThreadTrack {
  uint64_t tid = 0;
  std::string thread_name;
  std::vector<TraceEvent> events;  ///< sorted by start_ms
};

/// The finished result of a Trace: the aggregated span tree plus the
/// trace's own wall time.
struct TraceSummary {
  double wall_ms = 0;
  std::vector<SpanNode> roots;
  /// Per-thread raw event timelines (ordered by each track's first
  /// event), feeding obs::ExportChromeTrace. Empty iff no span recorded.
  std::vector<ThreadTrack> tracks;

  /// Depth-first lookup by dotted path, e.g. `Find("cover.run/cover.minimize")`.
  const SpanNode* Find(std::string_view slash_path) const;
  /// Sum of `total_ms` over the root spans (the "covered" wall time).
  double RootTotalMs() const;
};

class Trace;

namespace internal {

/// Raw record of one completed span, written lock-free to the recording
/// thread's buffer. `parent_seq` identifies the enclosing span by its
/// global start sequence (0 = root); sequences are totally ordered by a
/// global atomic, so parentage is unambiguous across threads.
struct SpanRecord {
  const char* name;
  uint64_t seq;         ///< global start order (1-based)
  uint64_t parent_seq;  ///< 0 when the span is a root
  double start_ms;      ///< offset from the trace's start
  double elapsed_ms;
};

/// Per-thread span buffer registered with (and merged by) the Trace.
/// Thread identity is captured at registration time (first record).
struct ThreadBuffer {
  uint64_t tid = 0;
  std::string thread_name;
  std::vector<SpanRecord> records;
};

extern std::atomic<Trace*> g_active_trace;

// ---------------------------------------------------------------------------
// Span-name cursor for sample attribution.
//
// The profiler's SIGPROF handler and the memory-accounting hooks need to
// know, from *inside* an interrupt or an allocation on any thread, which
// span that thread is currently executing. They read this thread-local
// stack of open span names. Span only maintains it while somebody wants
// it (a trace is active, or g_span_stack_refs > 0 — bumped by
// Profiler/ScopedMemAccounting), so the disabled cost of a Span stays
// two relaxed atomic loads.
//
// Signal safety: the writer (Span ctor/dtor on the same thread) stores
// the name *before* publishing the new depth, separated by a signal
// fence, so an interrupting reader never sees an uninitialized slot.

inline constexpr int kMaxSpanStack = 64;
extern thread_local const char* tls_span_stack[kMaxSpanStack];
extern thread_local int tls_span_depth;
extern std::atomic<int> g_span_stack_refs;

}  // namespace internal

/// A recording session. While active (see ScopedTrace), Span objects
/// record into per-thread buffers; Finish() merges the buffers and
/// aggregates them into a deterministic SpanNode tree.
///
/// Threading: recording is lock-free per thread (each thread owns its
/// buffer; the trace-wide mutex is taken only on first record from a new
/// thread, to register the buffer). Finish() must be called after all
/// recording threads are quiescent — in practice after ThreadPool
/// fan-outs returned, which the pool's blocking ParallelFor guarantees.
class Trace {
 public:
  Trace();
  ~Trace();
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Stops the clock, merges per-thread buffers and builds the tree.
  /// Idempotent: later calls return the first result.
  const TraceSummary& Finish();

 private:
  friend class Span;
  friend class ScopedTrace;

  internal::ThreadBuffer* BufferForThisThread();

  std::chrono::steady_clock::time_point start_;
  std::mutex mu_;  // guards buffers_ registration
  std::vector<std::unique_ptr<internal::ThreadBuffer>> buffers_;
  bool finished_ = false;
  TraceSummary summary_;
};

/// Installs `trace` as the process-wide active trace for this scope
/// (RAII; restores the previous trace, so traces nest).
class ScopedTrace {
 public:
  explicit ScopedTrace(Trace* trace);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  Trace* previous_;
};

/// Opaque handle to the current innermost span on this thread; capture
/// it before a ThreadPool fan-out and re-establish it inside workers
/// with SpanParent so worker spans nest under the caller's span. The
/// token also carries the caller's observability binding (ObsContext
/// cursor), so workers charge the same context the fan-out caller was
/// bound to — context propagation rides the existing adoption handshake,
/// no fan-out site changes needed.
struct SpanToken {
  uint64_t seq = 0;
  internal::ObsBinding binding{};
};

/// The current thread's innermost open span (0 token = no span / no
/// active trace). Cheap: one thread-local read.
SpanToken CurrentSpan();

/// RAII scoped timing span. When no trace is active this is one relaxed
/// atomic load in the constructor and one branch in the destructor —
/// cheap enough for hot paths guarded at phase granularity.
///
/// `name` must outlive the active Trace; pass string literals.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Trace* trace_;  // nullptr = inactive, destructor skips recording
  const char* name_;
  bool pushed_ = false;  // name is on this thread's span-name stack
  uint64_t seq_ = 0;
  uint64_t parent_seq_ = 0;
  std::chrono::steady_clock::time_point start_;
};

/// RAII guard that makes `parent` the current span for this thread,
/// restoring the previous one on destruction, and installs the token's
/// observability binding for the guard's scope (so the worker charges
/// the fan-out caller's ObsContext). Used inside ThreadPool worker
/// bodies to adopt the fan-out caller's span as parent. Safe because
/// ParallelFor blocks the caller, keeping the parent span (and its
/// context) open for the guard's whole lifetime.
class SpanParent {
 public:
  explicit SpanParent(SpanToken parent);
  ~SpanParent();
  SpanParent(const SpanParent&) = delete;
  SpanParent& operator=(const SpanParent&) = delete;

 private:
  uint64_t previous_;
  internal::ObsBinding previous_binding_;
};

}  // namespace obs
}  // namespace xmlprop

#endif  // XMLPROP_OBS_TRACE_H_
