#ifndef XMLPROP_OBS_CHROME_TRACE_H_
#define XMLPROP_OBS_CHROME_TRACE_H_

#include <string>

#include "obs/trace.h"

namespace xmlprop {
namespace obs {

/// Serializes a finished trace as Chrome Trace Event JSON (the format
/// ui.perfetto.dev and chrome://tracing load directly): one complete
/// ("ph":"X") event per span occurrence, one track per recording thread,
/// with thread_name/process_name metadata so ThreadPool workers show up
/// as `xmlprop-wk-N`. Timestamps are microseconds from the trace start.
std::string ExportChromeTrace(const TraceSummary& summary,
                              const std::string& process_name = "xmlprop");

/// Writes ExportChromeTrace(summary) to `path`; false (with a stderr
/// note) on I/O error.
bool WriteChromeTrace(const TraceSummary& summary, const std::string& path,
                      const std::string& process_name = "xmlprop");

}  // namespace obs
}  // namespace xmlprop

#endif  // XMLPROP_OBS_CHROME_TRACE_H_
