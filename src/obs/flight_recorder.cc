#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <pthread.h>
#include <sys/syscall.h>
#endif

#include "obs/trace.h"

namespace xmlprop {
namespace obs {

namespace internal {
std::atomic<int> g_flight_enabled{-1};
}  // namespace internal

namespace {

using internal::g_flight_enabled;

// One thread's ring. All state a crash-time reader touches is either
// atomic or plain POD written before the head advance; a torn in-flight
// record at worst shows stale text (every slot keeps a terminating NUL).
struct ThreadRing {
  std::atomic<uint64_t> head{0};  ///< monotonic count of records written
  std::atomic<int> state{0};      ///< 0 free, 1 active, 2 retired
  uint64_t tid = 0;
  char name[16] = {};
  // The owning thread's open-span stack (obs/trace.h span cursor),
  // cleared at thread exit so the crash dump never chases dead TLS.
  std::atomic<const char* const*> span_stack{nullptr};
  std::atomic<const int*> span_depth{nullptr};
  FlightEvent events[kFlightRingCapacity];
};

ThreadRing g_rings[kFlightMaxThreads];
std::atomic<uint32_t> g_ring_count{0};
std::atomic<uint64_t> g_seq{0};
std::atomic<uint64_t> g_clock_epoch_ns{0};
std::atomic<uint64_t> g_dropped_thread_events{0};
std::atomic<uint64_t> g_truncated_total{0};
// Bumped by ResetFlightRecorderForTest so stale thread-local ring
// pointers from before a reset re-register instead of scribbling on a
// reclaimed slot.
std::atomic<uint64_t> g_registration_epoch{1};

char g_crash_path[512] = {};
std::atomic<int> g_crash_in_progress{0};

// One in-flight operation slot. `id` doubles as the occupancy flag
// (0 = free); the name is written before the id is published, so a
// crash-time reader that sees a non-zero id sees a complete (or at
// worst torn-but-NUL-terminated) name.
struct OpenOperationSlot {
  std::atomic<uint64_t> id{0};
  char name[32] = {};
};

OpenOperationSlot g_open_operations[kMaxOpenOperations];
std::atomic<uint64_t> g_open_operations_dropped{0};

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t CurrentTid() {
#if defined(__linux__)
  return static_cast<uint64_t>(::syscall(SYS_gettid));
#else
  return 0;
#endif
}

// Registered ring of the calling thread; the destructor retires the slot
// (events stay readable for the black box, the TLS pointers do not).
struct TlsRing {
  ThreadRing* ring = nullptr;
  uint64_t epoch = 0;
  bool dropped = false;

  ~TlsRing() {
    if (ring != nullptr &&
        epoch == g_registration_epoch.load(std::memory_order_relaxed)) {
      ring->span_stack.store(nullptr, std::memory_order_relaxed);
      ring->span_depth.store(nullptr, std::memory_order_relaxed);
      ring->state.store(2, std::memory_order_release);
    }
    ring = nullptr;
  }
};

thread_local TlsRing tls_ring;

ThreadRing* RingForThisThread() {
  const uint64_t epoch = g_registration_epoch.load(std::memory_order_relaxed);
  if (tls_ring.epoch == epoch) {
    if (tls_ring.dropped) {
      g_dropped_thread_events.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    return tls_ring.ring;
  }
  const uint32_t slot = g_ring_count.fetch_add(1, std::memory_order_relaxed);
  tls_ring.epoch = epoch;
  if (slot >= kFlightMaxThreads) {
    tls_ring.ring = nullptr;
    tls_ring.dropped = true;
    g_dropped_thread_events.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  ThreadRing* ring = &g_rings[slot];
  ring->tid = CurrentTid();
#if defined(__linux__)
  if (pthread_getname_np(pthread_self(), ring->name, sizeof(ring->name)) != 0 ||
      ring->name[0] == '\0') {
    std::memcpy(ring->name, "thread", 7);
  }
#else
  std::memcpy(ring->name, "thread", 7);
#endif
  ring->span_stack.store(xmlprop::obs::internal::tls_span_stack,
                         std::memory_order_relaxed);
  ring->span_depth.store(&xmlprop::obs::internal::tls_span_depth,
                         std::memory_order_relaxed);
  ring->state.store(1, std::memory_order_release);
  tls_ring.ring = ring;
  tls_ring.dropped = false;
  return ring;
}

// ---------------------------------------------------------------------------
// Async-signal-safe dump rendering. Everything below formats into a
// caller-provided sink without allocating; the only library calls are
// memcpy/strlen and (for the fd sink) write(2).

class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual void Append(const char* data, size_t len) = 0;
};

class FdSink : public ByteSink {
 public:
  explicit FdSink(int fd) : fd_(fd) {}
  void Append(const char* data, size_t len) override {
    while (len > 0) {
      const ssize_t n = ::write(fd_, data, len);
      if (n <= 0) return;
      data += static_cast<size_t>(n);
      len -= static_cast<size_t>(n);
    }
  }

 private:
  int fd_;
};

class StringSink : public ByteSink {
 public:
  void Append(const char* data, size_t len) override { out.append(data, len); }
  std::string out;
};

void PutStr(ByteSink* sink, const char* s) { sink->Append(s, std::strlen(s)); }

void PutU64(ByteSink* sink, uint64_t v) {
  char buf[24];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v > 0);
  sink->Append(p, static_cast<size_t>(buf + sizeof(buf) - p));
}

void PutI64(ByteSink* sink, int64_t v) {
  if (v < 0) {
    PutStr(sink, "-");
    PutU64(sink, static_cast<uint64_t>(-(v + 1)) + 1);
  } else {
    PutU64(sink, static_cast<uint64_t>(v));
  }
}

const char* KindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSpanBegin:
      return "span_begin";
    case FlightEventKind::kSpanEnd:
      return "span_end";
    case FlightEventKind::kMetric:
      return "metric";
    case FlightEventKind::kLog:
      return "log";
    case FlightEventKind::kNone:
      break;
  }
  return "none";
}

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGABRT:
      return "SIGABRT";
    case SIGBUS:
      return "SIGBUS";
    case SIGFPE:
      return "SIGFPE";
    case SIGILL:
      return "SIGILL";
  }
  return "signal";
}

// Peak RSS in KiB from /proc/self/status VmHWM, with open/read only
// (the mem_stats reader uses iostreams, which are not signal-safe).
int64_t SignalSafePeakRssKb() {
  const int fd = ::open("/proc/self/status", O_RDONLY);
  if (fd < 0) return 0;
  char buf[8192];
  ssize_t total = 0;
  ssize_t n;
  while (total < static_cast<ssize_t>(sizeof(buf)) - 1 &&
         (n = ::read(fd, buf + total, sizeof(buf) - 1 -
                                          static_cast<size_t>(total))) > 0) {
    total += n;
  }
  ::close(fd);
  buf[total] = '\0';
  const char* line = std::strstr(buf, "VmHWM:");
  if (line == nullptr) return 0;
  line += 6;
  while (*line == ' ' || *line == '\t') ++line;
  int64_t kb = 0;
  while (*line >= '0' && *line <= '9') {
    kb = kb * 10 + (*line - '0');
    ++line;
  }
  return kb;
}

void DumpRing(ByteSink* sink, const ThreadRing& ring) {
  PutStr(sink, "thread tid=");
  PutU64(sink, ring.tid);
  PutStr(sink, " name=");
  PutStr(sink, ring.name[0] != '\0' ? ring.name : "thread");
  PutStr(sink, " events=");
  PutU64(sink, ring.head.load(std::memory_order_acquire));
  PutStr(sink, ring.state.load(std::memory_order_relaxed) == 2
                   ? " state=retired"
                   : " state=active");
  const char* const* stack = ring.span_stack.load(std::memory_order_relaxed);
  const int* depth_ptr = ring.span_depth.load(std::memory_order_relaxed);
  if (stack != nullptr && depth_ptr != nullptr) {
    int depth = *depth_ptr;
    if (depth < 0) depth = 0;
    if (depth > xmlprop::obs::internal::kMaxSpanStack) {
      depth = xmlprop::obs::internal::kMaxSpanStack;
    }
    PutStr(sink, " span_stack:");
    if (depth == 0) PutStr(sink, " (empty)");
    for (int i = 0; i < depth; ++i) {
      PutStr(sink, i == 0 ? " " : " > ");
      const char* name = stack[i];
      PutStr(sink, name != nullptr ? name : "?");
    }
  }
  PutStr(sink, "\n");
}

// "check#12 cover#13" (or "(none)") — every occupied operation slot,
// slot order. Async-signal-safe: bounded reads of preallocated storage.
void DumpOpenOperations(ByteSink* sink) {
  bool any = false;
  for (size_t i = 0; i < kMaxOpenOperations; ++i) {
    const uint64_t id = g_open_operations[i].id.load(std::memory_order_acquire);
    if (id == 0) continue;
    if (any) PutStr(sink, " ");
    any = true;
    sink->Append(g_open_operations[i].name,
                 ::strnlen(g_open_operations[i].name,
                           sizeof(g_open_operations[i].name) - 1));
    PutStr(sink, "#");
    PutU64(sink, id);
  }
  if (!any) PutStr(sink, "(none)");
}

void DumpCore(ByteSink* sink, int sig) {
  PutStr(sink, "xmlprop flight recorder dump\n");
  if (sig > 0) {
    PutStr(sink, "signal: ");
    PutU64(sink, static_cast<uint64_t>(sig));
    PutStr(sink, " (");
    PutStr(sink, SignalName(sig));
    PutStr(sink, ")\n");
  }
  PutStr(sink, "vm_hwm_kb: ");
  PutI64(sink, SignalSafePeakRssKb());
  PutStr(sink, "\ndropped_thread_events: ");
  PutU64(sink, g_dropped_thread_events.load(std::memory_order_relaxed));
  PutStr(sink, "\ntruncated_events: ");
  PutU64(sink, g_truncated_total.load(std::memory_order_relaxed));
  PutStr(sink, "\nopen_operations: ");
  DumpOpenOperations(sink);
  PutStr(sink, "\ndropped_operations: ");
  PutU64(sink, g_open_operations_dropped.load(std::memory_order_relaxed));
  PutStr(sink, "\n");

  uint32_t rings = g_ring_count.load(std::memory_order_acquire);
  if (rings > kFlightMaxThreads) rings = kFlightMaxThreads;
  PutStr(sink, "threads: ");
  PutU64(sink, rings);
  PutStr(sink, "\n");
  for (uint32_t r = 0; r < rings; ++r) DumpRing(sink, g_rings[r]);

  // Merge the per-ring windows by global sequence. Each ring is already
  // seq-ordered (one writer, monotonic head), so a k-way cursor merge is
  // linear and needs no extra storage.
  uint64_t cursor[kFlightMaxThreads];
  uint64_t end[kFlightMaxThreads];
  size_t total = 0;
  for (uint32_t r = 0; r < rings; ++r) {
    const uint64_t head = g_rings[r].head.load(std::memory_order_acquire);
    const uint64_t window =
        head < kFlightRingCapacity ? head : kFlightRingCapacity;
    cursor[r] = head - window;
    end[r] = head;
    total += window;
  }
  PutStr(sink, "events: ");
  PutU64(sink, total);
  PutStr(sink, " (merged, oldest first)\n");
  for (;;) {
    uint32_t best = kFlightMaxThreads;
    uint64_t best_seq = ~uint64_t{0};
    for (uint32_t r = 0; r < rings; ++r) {
      if (cursor[r] >= end[r]) continue;
      const FlightEvent& e =
          g_rings[r].events[cursor[r] % kFlightRingCapacity];
      if (e.seq < best_seq) {
        best_seq = e.seq;
        best = r;
      }
    }
    if (best == kFlightMaxThreads) break;
    const FlightEvent& e =
        g_rings[best].events[cursor[best] % kFlightRingCapacity];
    ++cursor[best];
    if (e.kind == FlightEventKind::kNone) continue;
    PutStr(sink, "  seq=");
    PutU64(sink, e.seq);
    PutStr(sink, " t_us=");
    PutU64(sink, e.ts_ns / 1000);
    PutStr(sink, " tid=");
    PutU64(sink, g_rings[best].tid);
    PutStr(sink, " ");
    PutStr(sink, KindName(e.kind));
    PutStr(sink, " ");
    // The text field always carries a NUL inside its fixed bounds.
    sink->Append(e.text, ::strnlen(e.text, FlightEvent::kTextCapacity));
    if (e.kind == FlightEventKind::kMetric ||
        e.kind == FlightEventKind::kLog) {
      PutStr(sink, " value=");
      PutI64(sink, e.value);
    }
    PutStr(sink, "\n");
  }
  PutStr(sink, "end of flight recorder dump\n");
}

extern "C" void XmlpropCrashHandler(int sig) {
  // First thread in wins; a second fatal signal (or a crash inside the
  // dump) falls through to the default action immediately.
  if (g_crash_in_progress.exchange(1) == 0 && g_crash_path[0] != '\0') {
    const int fd =
        ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      DumpFlightRecorderToFd(fd, sig);
      ::close(fd);
    }
    FdSink err(2);
    PutStr(&err, "xmlprop: fatal ");
    PutStr(&err, SignalName(sig));
    PutStr(&err, ", flight recorder dump written to ");
    PutStr(&err, g_crash_path);
    PutStr(&err, "\n");
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

namespace internal {

bool FlightDecideEnabled() {
  const char* env = std::getenv("XMLPROP_FLIGHT_RECORDER");
  const bool off = env != nullptr &&
                   (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
                    std::strcmp(env, "false") == 0);
  int expected = -1;
  g_flight_enabled.compare_exchange_strong(expected, off ? 0 : 1,
                                           std::memory_order_relaxed);
  return g_flight_enabled.load(std::memory_order_relaxed) > 0;
}

void FlightRecord(FlightEventKind kind, const char* text, size_t text_len,
                  int64_t value) {
  ThreadRing* ring = RingForThisThread();
  if (ring == nullptr) return;
  uint64_t epoch = g_clock_epoch_ns.load(std::memory_order_relaxed);
  const uint64_t now = NowNs();
  if (epoch == 0) {
    uint64_t expected = 0;
    g_clock_epoch_ns.compare_exchange_strong(expected, now,
                                             std::memory_order_relaxed);
    epoch = g_clock_epoch_ns.load(std::memory_order_relaxed);
  }
  const uint64_t head = ring->head.load(std::memory_order_relaxed);
  FlightEvent& e = ring->events[head % kFlightRingCapacity];
  e.seq = g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  e.ts_ns = now - epoch;
  e.value = value;
  e.kind = kind;
  if (text_len > FlightEvent::kTextCapacity) {
    // Keep a prefix and make the cut explicit: `…` in the dump plus a
    // counter, so an operator reading a truncated metric name knows it
    // was cut rather than mistaking the prefix for the full name.
    text_len = FlightEvent::kTruncatedTextBytes;
    if (text != nullptr) std::memcpy(e.text, text, text_len);
    std::memcpy(e.text + text_len, "\xE2\x80\xA6", 3);
    e.text[text_len + 3] = '\0';
    g_truncated_total.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (text != nullptr && text_len > 0) std::memcpy(e.text, text, text_len);
    e.text[text_len] = '\0';
  }
  ring->head.store(head + 1, std::memory_order_release);
}

void ResetFlightRecorderForTest() {
  g_registration_epoch.fetch_add(1, std::memory_order_relaxed);
  const uint32_t rings =
      std::min<uint32_t>(g_ring_count.load(std::memory_order_relaxed),
                         kFlightMaxThreads);
  for (uint32_t r = 0; r < rings; ++r) {
    g_rings[r].head.store(0, std::memory_order_relaxed);
    g_rings[r].state.store(0, std::memory_order_relaxed);
    g_rings[r].span_stack.store(nullptr, std::memory_order_relaxed);
    g_rings[r].span_depth.store(nullptr, std::memory_order_relaxed);
    std::memset(static_cast<void*>(g_rings[r].events), 0,
                sizeof(g_rings[r].events));
  }
  g_ring_count.store(0, std::memory_order_relaxed);
  g_seq.store(0, std::memory_order_relaxed);
  g_dropped_thread_events.store(0, std::memory_order_relaxed);
  g_truncated_total.store(0, std::memory_order_relaxed);
  for (size_t i = 0; i < kMaxOpenOperations; ++i) {
    g_open_operations[i].id.store(0, std::memory_order_relaxed);
    g_open_operations[i].name[0] = '\0';
  }
  g_open_operations_dropped.store(0, std::memory_order_relaxed);
}

uint64_t FlightDroppedThreads() {
  return g_dropped_thread_events.load(std::memory_order_relaxed);
}

}  // namespace internal

void SetFlightRecorderEnabled(bool enabled) {
  internal::g_flight_enabled.store(enabled ? 1 : 0,
                                   std::memory_order_relaxed);
}

bool FlightRecorderEnabled() { return internal::FlightEnabled(); }

void InstallCrashHandler(const char* path) {
  if (path == nullptr) return;
  const size_t len = std::strlen(path);
  if (len == 0 || len >= sizeof(g_crash_path)) return;
  std::memcpy(g_crash_path, path, len + 1);
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &XmlpropCrashHandler;
  sigemptyset(&action.sa_mask);
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    ::sigaction(sig, &action, nullptr);
  }
}

const char* CrashDumpPath() { return g_crash_path; }

std::string DumpFlightRecorderToString() {
  StringSink sink;
  DumpCore(&sink, 0);
  return std::move(sink.out);
}

std::string DumpOpenSpanStacksToString() {
  StringSink sink;
  uint32_t rings = g_ring_count.load(std::memory_order_acquire);
  if (rings > kFlightMaxThreads) rings = kFlightMaxThreads;
  bool first = true;
  for (uint32_t r = 0; r < rings; ++r) {
    const ThreadRing& ring = g_rings[r];
    if (ring.state.load(std::memory_order_acquire) != 1) continue;
    const char* const* stack = ring.span_stack.load(std::memory_order_relaxed);
    const int* depth_ptr = ring.span_depth.load(std::memory_order_relaxed);
    if (stack == nullptr || depth_ptr == nullptr) continue;
    if (!first) PutStr(&sink, "; ");
    first = false;
    PutStr(&sink, "tid=");
    PutU64(&sink, ring.tid);
    PutStr(&sink, " name=");
    PutStr(&sink, ring.name[0] != '\0' ? ring.name : "thread");
    PutStr(&sink, ":");
    int depth = *depth_ptr;
    if (depth < 0) depth = 0;
    if (depth > xmlprop::obs::internal::kMaxSpanStack) {
      depth = xmlprop::obs::internal::kMaxSpanStack;
    }
    if (depth == 0) PutStr(&sink, " (idle)");
    for (int i = 0; i < depth; ++i) {
      PutStr(&sink, i == 0 ? " " : " > ");
      const char* name = stack[i];
      PutStr(&sink, name != nullptr ? name : "?");
    }
  }
  if (first) PutStr(&sink, "(no registered threads)");
  return std::move(sink.out);
}

uint64_t FlightTruncatedTotal() {
  return g_truncated_total.load(std::memory_order_relaxed);
}

int RegisterOpenOperation(const char* name, uint64_t id) {
  if (id == 0) id = 1;
  for (size_t i = 0; i < kMaxOpenOperations; ++i) {
    uint64_t expected = 0;
    // Reserve with a sentinel first so two registrars never interleave
    // name writes in one slot; publish the real id after the copy.
    if (!g_open_operations[i].id.compare_exchange_strong(
            expected, ~uint64_t{0}, std::memory_order_acq_rel)) {
      continue;
    }
    char* slot_name = g_open_operations[i].name;
    const size_t cap = sizeof(g_open_operations[i].name) - 1;
    size_t len = name != nullptr ? ::strnlen(name, cap) : 0;
    if (len > 0) std::memcpy(slot_name, name, len);
    slot_name[len] = '\0';
    g_open_operations[i].id.store(id, std::memory_order_release);
    return static_cast<int>(i);
  }
  g_open_operations_dropped.fetch_add(1, std::memory_order_relaxed);
  return -1;
}

void UnregisterOpenOperation(int slot) {
  if (slot < 0 || static_cast<size_t>(slot) >= kMaxOpenOperations) return;
  g_open_operations[slot].id.store(0, std::memory_order_release);
}

std::string DumpOpenOperationsToString() {
  StringSink sink;
  DumpOpenOperations(&sink);
  return std::move(sink.out);
}

uint64_t OpenOperationsDropped() {
  return g_open_operations_dropped.load(std::memory_order_relaxed);
}

void DumpFlightRecorderToFd(int fd, int signal) {
  FdSink sink(fd);
  DumpCore(&sink, signal);
}

}  // namespace obs
}  // namespace xmlprop
