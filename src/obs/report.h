#ifndef XMLPROP_OBS_REPORT_H_
#define XMLPROP_OBS_REPORT_H_

#include <string>
#include <vector>

#include "obs/cost_attribution.h"
#include "obs/mem_stats.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace xmlprop {
namespace obs {

/// Everything one traced run produces, ready for serialization. The JSON
/// schema (see docs/observability.md) is versioned via `kReportVersion`;
/// CI validates emitted reports against the required top-level keys.
struct RunReport {
  std::string command;   ///< e.g. "cover" — the CLI verb or bench name
  /// Name of the ObsContext the run was charged to; empty on the default
  /// (process-global) context, which omits the JSON key entirely.
  std::string context;
  std::string config;    ///< free-form run configuration ("engine=on ...")
  TraceSummary trace;    ///< aggregated span tree + wall time
  MetricsSnapshot metrics;
  ProfileSummary profile;  ///< per-span sample counts (empty when off)
  MemorySummary memory;    ///< peak RSS always; counters when hooked
  /// Per-constraint cost rows (hot-first), filled when the run was
  /// attributed (`--explain-cost`); empty otherwise.
  std::vector<ConstraintCostRow> constraint_costs;
};

/// Bumped when the JSON layout changes incompatibly. Version 2 added
/// histogram percentiles, the `memory` object and the optional `profile`
/// object. Version 3 added the optional `constraint_costs` array
/// (per-key/FD cost attribution).
inline constexpr int kReportVersion = 3;

/// Serializes `report` as a single JSON object with top-level keys
/// `version`, `command`, `config`, `wall_ms`, `spans`, `metrics`,
/// `memory`, and — when the respective planes ran — `context` (after
/// `command`), `profile` and `constraint_costs`.
std::string ReportToJson(const RunReport& report);

/// Renders the hot-first per-constraint cost table as aligned text (the
/// `--explain-cost` stdout block; also embedded by ReportToText).
std::string CostTableToText(const std::vector<ConstraintCostRow>& rows);

/// Renders `report` as a human-readable text tree (spans indented with
/// per-node count/total, followed by the metric listing). Intended for
/// stderr, so it composes with machine-consumed stdout.
std::string ReportToText(const RunReport& report);

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string JsonEscape(std::string_view s);

}  // namespace obs
}  // namespace xmlprop

#endif  // XMLPROP_OBS_REPORT_H_
