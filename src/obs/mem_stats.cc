#include "obs/mem_stats.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "obs/trace.h"

#if defined(__linux__)
#include <malloc.h>
#include <sys/resource.h>
#endif

namespace xmlprop {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Global allocation counters. Everything here must be usable from inside
// operator new/delete: constant-initialized atomics, no allocation, no
// locks. The per-span table is a fixed-size open-addressed map keyed by
// span-name pointer (names are string literals, so pointer identity is
// name identity).

std::atomic<bool> g_mem_hooks_enabled{false};

std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};
std::atomic<uint64_t> g_free_count{0};
std::atomic<int64_t> g_live_bytes{0};
std::atomic<uint64_t> g_peak_live_bytes{0};

constexpr size_t kSpanSlots = 256;  // power of two
struct SpanSlot {
  std::atomic<const char*> name{nullptr};
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> bytes{0};
};
SpanSlot g_span_slots[kSpanSlots];
// Allocations that hit a full table or carry no open span.
std::atomic<uint64_t> g_unattributed_count{0};
std::atomic<uint64_t> g_unattributed_bytes{0};

size_t UsableSize(void* p) {
#if defined(__linux__)
  return malloc_usable_size(p);
#else
  return 0;
#endif
}

void NoteSpanAlloc(const char* span, size_t bytes) {
  size_t index =
      (reinterpret_cast<uintptr_t>(span) >> 4) & (kSpanSlots - 1);
  for (size_t probe = 0; probe < 16; ++probe) {
    SpanSlot& slot = g_span_slots[(index + probe) & (kSpanSlots - 1)];
    const char* current = slot.name.load(std::memory_order_acquire);
    if (current == nullptr) {
      const char* expected = nullptr;
      if (!slot.name.compare_exchange_strong(expected, span,
                                             std::memory_order_acq_rel)) {
        current = expected;
      } else {
        current = span;
      }
    }
    if (current == span) {
      slot.count.fetch_add(1, std::memory_order_relaxed);
      slot.bytes.fetch_add(bytes, std::memory_order_relaxed);
      return;
    }
  }
  g_unattributed_count.fetch_add(1, std::memory_order_relaxed);
  g_unattributed_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void NoteAlloc(void* p) {
  const size_t bytes = UsableSize(p);
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
  const int64_t live =
      g_live_bytes.fetch_add(static_cast<int64_t>(bytes),
                             std::memory_order_relaxed) +
      static_cast<int64_t>(bytes);
  uint64_t peak = g_peak_live_bytes.load(std::memory_order_relaxed);
  while (live > 0 && static_cast<uint64_t>(live) > peak &&
         !g_peak_live_bytes.compare_exchange_weak(
             peak, static_cast<uint64_t>(live), std::memory_order_relaxed)) {
  }

  const int depth = std::min(internal::tls_span_depth,
                             internal::kMaxSpanStack);
  if (depth > 0) {
    NoteSpanAlloc(internal::tls_span_stack[depth - 1], bytes);
  } else {
    g_unattributed_count.fetch_add(1, std::memory_order_relaxed);
    g_unattributed_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
}

void NoteFree(void* p) {
  g_free_count.fetch_add(1, std::memory_order_relaxed);
  g_live_bytes.fetch_sub(static_cast<int64_t>(UsableSize(p)),
                         std::memory_order_relaxed);
}

void ResetCounters() {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_bytes.store(0, std::memory_order_relaxed);
  g_free_count.store(0, std::memory_order_relaxed);
  g_live_bytes.store(0, std::memory_order_relaxed);
  g_peak_live_bytes.store(0, std::memory_order_relaxed);
  g_unattributed_count.store(0, std::memory_order_relaxed);
  g_unattributed_bytes.store(0, std::memory_order_relaxed);
  for (SpanSlot& slot : g_span_slots) {
    slot.name.store(nullptr, std::memory_order_relaxed);
    slot.count.store(0, std::memory_order_relaxed);
    slot.bytes.store(0, std::memory_order_relaxed);
  }
}

}  // namespace

namespace internal_mem {

// The allocation entry points the replaced global operators call.
// Defined here (same TU as the operators) so any binary that uses
// mem_stats pulls the replacements in with it.

bool HooksEnabled() {
  return g_mem_hooks_enabled.load(std::memory_order_relaxed);
}

void* AllocateOrThrow(size_t size, size_t align) {
  for (;;) {
    void* p;
    if (align <= alignof(std::max_align_t)) {
      p = std::malloc(size);
    } else {
      // aligned_alloc wants size to be a multiple of the alignment.
      const size_t rounded = (size + align - 1) / align * align;
      p = std::aligned_alloc(align, rounded);
    }
    if (p != nullptr) {
      if (HooksEnabled()) NoteAlloc(p);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* AllocateNoThrow(size_t size, size_t align) noexcept {
  try {
    return AllocateOrThrow(size, align);
  } catch (...) {
    return nullptr;
  }
}

void Deallocate(void* p) noexcept {
  if (p == nullptr) return;
  if (HooksEnabled()) NoteFree(p);
  std::free(p);
}

}  // namespace internal_mem

int64_t ReadPeakRssKb() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::strncmp(line, "VmHWM:", 6) == 0) {
        std::fclose(f);
        return std::atoll(line + 6);
      }
    }
    std::fclose(f);
  }
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss;
#endif
  return 0;
}

MemorySummary CurrentMemorySummary() {
  MemorySummary summary;
  summary.max_rss_kb = ReadPeakRssKb();
  if (!internal_mem::HooksEnabled()) return summary;
  summary.hooks_enabled = true;
  summary.alloc_count = g_alloc_count.load(std::memory_order_relaxed);
  summary.alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  summary.free_count = g_free_count.load(std::memory_order_relaxed);
  summary.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  summary.peak_live_bytes =
      g_peak_live_bytes.load(std::memory_order_relaxed);
  for (const SpanSlot& slot : g_span_slots) {
    const char* name = slot.name.load(std::memory_order_acquire);
    if (name == nullptr) continue;
    summary.by_span.push_back(
        MemSpanAlloc{name, slot.count.load(std::memory_order_relaxed),
                     slot.bytes.load(std::memory_order_relaxed)});
  }
  const uint64_t other = g_unattributed_count.load(std::memory_order_relaxed);
  if (other > 0) {
    summary.by_span.push_back(MemSpanAlloc{
        "(no span)", other,
        g_unattributed_bytes.load(std::memory_order_relaxed)});
  }
  std::sort(summary.by_span.begin(), summary.by_span.end(),
            [](const MemSpanAlloc& a, const MemSpanAlloc& b) {
              return a.span < b.span;
            });
  return summary;
}

ScopedMemAccounting::ScopedMemAccounting() {
  ResetCounters();
  internal::g_span_stack_refs.fetch_add(1, std::memory_order_relaxed);
  g_mem_hooks_enabled.store(true, std::memory_order_relaxed);
}

ScopedMemAccounting::~ScopedMemAccounting() {
  g_mem_hooks_enabled.store(false, std::memory_order_relaxed);
  internal::g_span_stack_refs.fetch_sub(1, std::memory_order_relaxed);
}

MemorySummary ScopedMemAccounting::Snapshot() const {
  return CurrentMemorySummary();
}

}  // namespace obs
}  // namespace xmlprop

// ---------------------------------------------------------------------------
// Global operator new/delete replacements. Malloc-backed, standard
// conforming (new-handler loop, nothrow variants, aligned variants);
// when no ScopedMemAccounting is active the only extra work over plain
// malloc is one relaxed atomic load.

namespace mem = xmlprop::obs::internal_mem;

void* operator new(std::size_t size) {
  return mem::AllocateOrThrow(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return mem::AllocateOrThrow(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return mem::AllocateOrThrow(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return mem::AllocateOrThrow(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return mem::AllocateNoThrow(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return mem::AllocateNoThrow(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return mem::AllocateNoThrow(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return mem::AllocateNoThrow(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { mem::Deallocate(p); }
void operator delete[](void* p) noexcept { mem::Deallocate(p); }
void operator delete(void* p, std::size_t) noexcept { mem::Deallocate(p); }
void operator delete[](void* p, std::size_t) noexcept { mem::Deallocate(p); }
void operator delete(void* p, std::align_val_t) noexcept {
  mem::Deallocate(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  mem::Deallocate(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  mem::Deallocate(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  mem::Deallocate(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  mem::Deallocate(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  mem::Deallocate(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  mem::Deallocate(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  mem::Deallocate(p);
}
