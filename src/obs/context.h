#ifndef XMLPROP_OBS_CONTEXT_H_
#define XMLPROP_OBS_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/context_binding.h"
#include "obs/cost_attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xmlprop {
namespace obs {

/// Request-scoped observability runtime.
///
/// An ObsContext owns one operation's entire telemetry state — a private
/// trace arena, metric registry shard, cost-attribution table and
/// log-field tag — so two operations running concurrently on overlapping
/// ThreadPool workers never interleave spans, merge counters or corrupt
/// per-constraint cost reconciliation. This is the isolation layer the
/// `xmlprop serve` daemon needs (ROADMAP): each session binds its own
/// context, and the process-level view is recovered by folding every
/// context's registry into the global one at close, so the OpenMetrics
/// exposition equals the sum over contexts.
///
/// Lifecycle: construct → ScopedObsContext (binds the calling thread;
/// ThreadPool workers inherit through SpanToken/SpanParent adoption) →
/// unbind → Close(). Close() stops the clock, decides tail retention,
/// emits the slow-op log record, folds the metric shard into the target
/// registry and publishes the per-context Result. Idempotent; the
/// destructor closes (without folding) when the owner never did.

class ObsContext;

/// Slowest-K admission policy for tail-based trace retention, shared by
/// the contexts of one server/process. Thread-safe. Admission is decided
/// at close time against the K slowest operations seen SO FAR (a
/// streaming approximation: earlier admissions are not revoked when a
/// slower tail arrives later). Errors and slow-ops force admission
/// regardless of K.
class TraceTailSampler {
 public:
  /// keep < 0: retain every trace (the single-command CLI default);
  /// keep == 0: retain none (unless forced); keep > 0: slowest-K.
  explicit TraceTailSampler(int keep) : keep_(keep) {}
  TraceTailSampler(const TraceTailSampler&) = delete;
  TraceTailSampler& operator=(const TraceTailSampler&) = delete;

  /// True when the operation's trace should be materialized.
  bool Admit(double wall_ms, bool force);

  uint64_t retained() const { return retained_.load(std::memory_order_relaxed); }
  uint64_t discarded() const {
    return discarded_.load(std::memory_order_relaxed);
  }

 private:
  const int keep_;
  std::mutex mu_;
  std::vector<double> slowest_;  // min-heap of the K slowest wall times
  std::atomic<uint64_t> retained_{0};
  std::atomic<uint64_t> discarded_{0};
};

/// Heartbeat thread that flags contexts with no span/metric activity for
/// `stall_ms` milliseconds: logs an error record carrying every
/// registered thread's open span stack (rendered through the
/// flight-recorder merge path) and bumps `obs.stalls_detected` on the
/// stalled context's registry. A context is flagged once per stall
/// episode; activity resuming re-arms it.
class StallWatchdog {
 public:
  /// `poll_ms` <= 0 picks max(1, stall_ms / 4).
  explicit StallWatchdog(int stall_ms, int poll_ms = 0);
  ~StallWatchdog();
  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  void Watch(ObsContext* context);
  void Unwatch(ObsContext* context);

  /// Stall episodes flagged so far (all watched contexts).
  uint64_t stalls_detected() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    ObsContext* context = nullptr;
    uint64_t last_activity = 0;
    std::chrono::steady_clock::time_point last_change;
    bool flagged = false;
  };

  void Run();

  const int stall_ms_;
  const int poll_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::vector<Entry> watched_;
  std::atomic<uint64_t> stalls_{0};
  std::thread thread_;
};

struct ObsContextOptions {
  /// Context name: the log `ctx` tag and the report's `context` field.
  std::string name = "op";
  /// Operations slower than this (milliseconds) emit the slow-op log
  /// record and force trace retention. 0 disables the slow-op plane.
  double slow_op_ms = 0;
  /// Tail-retention policy; nullptr retains every trace. Not owned —
  /// must outlive the context (it is the cross-context object).
  TraceTailSampler* sampler = nullptr;
};

class ObsContext {
 public:
  explicit ObsContext(ObsContextOptions options);
  ~ObsContext();
  ObsContext(const ObsContext&) = delete;
  ObsContext& operator=(const ObsContext&) = delete;

  const std::string& name() const { return options_.name; }
  /// Process-unique operation id (1-based, monotonic). While the context
  /// is open, (name, id) is registered with the flight recorder, so a
  /// crash dump names the in-flight requests ("open_operations:
  /// check#12 cover#13") — the serve daemon's "crashed doing what" line.
  uint64_t id() const { return id_; }
  Trace* trace() { return &trace_; }
  MetricRegistry* metrics() { return &metrics_; }
  CostAttribution* costs() { return &costs_; }

  /// Marks the operation failed. Errors force trace retention at Close.
  void MarkError(std::string_view what);

  /// The binding ScopedObsContext installs (and SpanToken carries).
  internal::ObsBinding binding();

  /// Span/metric charges recorded so far — the watchdog's heartbeat.
  uint64_t activity() const {
    return activity_.load(std::memory_order_relaxed);
  }
  /// Manual heartbeat for code between instrumented phases.
  void Touch() { activity_.fetch_add(1, std::memory_order_relaxed); }

  /// Everything one closed context produces.
  struct Result {
    double wall_ms = 0;
    bool retained = false;  ///< trace materialized (tail-sampling verdict)
    bool slow = false;      ///< wall_ms exceeded slow_op_ms
    bool error = false;     ///< MarkError was called
    TraceSummary trace;     ///< aggregated span tree; empty when discarded
    MetricsSnapshot metrics;  ///< this context's shard only
    std::vector<ConstraintCostRow> constraint_costs;  ///< intern order
  };

  /// Closes the context: stops the clock, bumps
  /// `obs.traces_retained`/`obs.traces_discarded` into the shard, decides
  /// retention (materializing the trace only when admitted), emits the
  /// slow-op log record, then folds the shard into `fold_into` (skipped
  /// when null) so process-level metrics equal the sum over contexts.
  /// Idempotent: later calls return the first Result.
  const Result& Close(MetricRegistry* fold_into);

  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  friend class StallWatchdog;

  ObsContextOptions options_;
  uint64_t id_ = 0;
  int open_operation_slot_ = -1;
  std::chrono::steady_clock::time_point start_;
  Trace trace_;
  MetricRegistry metrics_;
  CostAttribution costs_;
  std::atomic<uint64_t> activity_{0};
  std::atomic<bool> error_{false};
  std::string error_what_;
  std::mutex close_mu_;
  std::atomic<bool> closed_{false};
  std::atomic<StallWatchdog*> watchdog_{nullptr};
  Result result_;
};

/// Binds `context` to the current thread for this scope (RAII; restores
/// the previous binding, so contexts nest). ThreadPool workers inherit
/// the binding through the SpanToken captured by obs::CurrentSpan() and
/// re-established by obs::SpanParent — the same adoption handshake that
/// already carries span parentage across the fan-out. Passing nullptr
/// binds the default (process-global) context for the scope.
class ScopedObsContext {
 public:
  explicit ScopedObsContext(ObsContext* context);
  ~ScopedObsContext();
  ScopedObsContext(const ScopedObsContext&) = delete;
  ScopedObsContext& operator=(const ScopedObsContext&) = delete;

 private:
  internal::ObsBinding previous_;
};

/// The context bound to the current thread, or nullptr on the default
/// context. One TLS read.
ObsContext* CurrentObsContext();

}  // namespace obs
}  // namespace xmlprop

#endif  // XMLPROP_OBS_CONTEXT_H_
