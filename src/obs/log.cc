#include "obs/log.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <chrono>
#include <mutex>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "obs/context_binding.h"
#include "obs/flight_recorder.h"
#include "obs/report.h"

namespace xmlprop {
namespace obs {

namespace internal {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace internal

namespace {

std::atomic<int> g_log_format{static_cast<int>(LogFormat::kText)};

// Sink state. The mutex serializes whole-line writes (level/format are
// lock-free switches; only emission and sink swaps take it).
std::mutex g_sink_mu;
FILE* g_sink_file = nullptr;  // owned when non-null; nullptr = stderr
void (*g_sink_fn)(std::string_view, void*) = nullptr;
void* g_sink_ctx = nullptr;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      break;
  }
  return "OFF";
}

const char* ThreadName() {
  thread_local char name[32] = {};
  if (name[0] == '\0') {
#if defined(__linux__)
    if (pthread_getname_np(pthread_self(), name, sizeof(name)) != 0 ||
        name[0] == '\0') {
      std::snprintf(name, sizeof(name), "thread");
    }
#else
    std::snprintf(name, sizeof(name), "thread");
#endif
  }
  return name;
}

int64_t WallClockMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void AppendTimestamp(std::string* out, int64_t wall_ms) {
  const std::time_t secs = static_cast<std::time_t>(wall_ms / 1000);
  std::tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int>(wall_ms % 1000));
  out->append(buf);
}

std::string RenderText(LogLevel level, std::string_view component,
                       std::string_view message,
                       std::initializer_list<LogField> fields,
                       int64_t wall_ms) {
  std::string line;
  line.reserve(64 + message.size());
  AppendTimestamp(&line, wall_ms);
  line.push_back(' ');
  line.append(LevelTag(level));
  line.push_back(' ');
  line.append(ThreadName());
  // The bound ObsContext's tag, so interleaved records from concurrent
  // operations remain attributable. Absent on the default context, which
  // keeps single-command log lines byte-identical.
  if (internal::tls_obs_binding.log_tag != nullptr) {
    line.append(" [");
    line.append(internal::tls_obs_binding.log_tag);
    line.push_back(']');
  }
  line.push_back(' ');
  line.append(component);
  line.append(": ");
  line.append(message);
  for (const LogField& field : fields) {
    line.push_back(' ');
    line.append(field.key);
    line.push_back('=');
    line.append(field.value);
  }
  line.push_back('\n');
  return line;
}

std::string RenderNdjson(LogLevel level, std::string_view component,
                         std::string_view message,
                         std::initializer_list<LogField> fields,
                         int64_t wall_ms) {
  std::string line;
  line.reserve(96 + message.size());
  line.append("{\"ts_ms\":");
  line.append(std::to_string(wall_ms));
  line.append(",\"level\":\"");
  line.append(LogLevelName(level));
  line.append("\",\"thread\":\"");
  line.append(JsonEscape(ThreadName()));
  if (internal::tls_obs_binding.log_tag != nullptr) {
    line.append("\",\"ctx\":\"");
    line.append(JsonEscape(internal::tls_obs_binding.log_tag));
  }
  line.append("\",\"component\":\"");
  line.append(JsonEscape(component));
  line.append("\",\"msg\":\"");
  line.append(JsonEscape(message));
  line.push_back('"');
  if (fields.size() > 0) {
    line.append(",\"fields\":{");
    bool first = true;
    for (const LogField& field : fields) {
      if (!first) line.push_back(',');
      first = false;
      line.push_back('"');
      line.append(JsonEscape(field.key));
      line.append("\":");
      if (field.quoted) {
        line.push_back('"');
        line.append(JsonEscape(field.value));
        line.push_back('"');
      } else {
        line.append(field.value);
      }
    }
    line.push_back('}');
  }
  line.append("}\n");
  return line;
}

}  // namespace

LogField F(std::string_view key, std::string_view value) {
  return LogField{key, std::string(value), true};
}
LogField F(std::string_view key, const char* value) {
  return LogField{key, std::string(value != nullptr ? value : ""), true};
}
LogField F(std::string_view key, const std::string& value) {
  return LogField{key, value, true};
}
LogField F(std::string_view key, bool value) {
  return LogField{key, value ? "true" : "false", false};
}
LogField F(std::string_view key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return LogField{key, buf, false};
}
LogField F(std::string_view key, int64_t value) {
  return LogField{key, std::to_string(value), false};
}
LogField F(std::string_view key, uint64_t value) {
  return LogField{key, std::to_string(value), false};
}

namespace internal {

void LogEmit(LogLevel level, std::string_view component,
             std::string_view message,
             std::initializer_list<LogField> fields) {
  const int64_t wall_ms = WallClockMs();
  const std::string line =
      g_log_format.load(std::memory_order_relaxed) ==
              static_cast<int>(LogFormat::kNdjson)
          ? RenderNdjson(level, component, message, fields, wall_ms)
          : RenderText(level, component, message, fields, wall_ms);
  // The black box keeps the message even when the sink is a file that
  // later rotates away.
  RecordLogEvent(static_cast<int>(level), message);
  std::lock_guard<std::mutex> lock(g_sink_mu);
  // Precedence: an explicit log file beats the capture callback beats
  // stderr — so `--log-file` still works under a test harness that has
  // bound the callback to its captured error stream.
  if (g_sink_file != nullptr) {
    std::fwrite(line.data(), 1, line.size(), g_sink_file);
    std::fflush(g_sink_file);
    return;
  }
  if (g_sink_fn != nullptr) {
    g_sink_fn(line, g_sink_ctx);
    return;
  }
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace internal

void SetLogLevel(LogLevel level) {
  internal::g_log_level.store(static_cast<int>(level),
                              std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      internal::g_log_level.load(std::memory_order_relaxed));
}

void SetLogFormat(LogFormat format) {
  g_log_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

LogFormat GetLogFormat() {
  return static_cast<LogFormat>(
      g_log_format.load(std::memory_order_relaxed));
}

bool SetLogFile(const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) return false;
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink_file != nullptr) std::fclose(g_sink_file);
  g_sink_file = file;
  return true;
}

void SetLogSinkStderr() {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink_file != nullptr) std::fclose(g_sink_file);
  g_sink_file = nullptr;
}

void SetLogSinkCallback(void (*fn)(std::string_view line, void* ctx),
                        void* ctx) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink_fn = fn;
  g_sink_ctx = ctx;
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn" || text == "warning") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else if (text == "off") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

bool ParseLogFormat(std::string_view text, LogFormat* out) {
  if (text == "text") {
    *out = LogFormat::kText;
  } else if (text == "ndjson" || text == "json") {
    *out = LogFormat::kNdjson;
  } else {
    return false;
  }
  return true;
}

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      break;
  }
  return "off";
}

}  // namespace obs
}  // namespace xmlprop
