#ifndef XMLPROP_OBS_LOG_H_
#define XMLPROP_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace xmlprop {
namespace obs {

/// Structured, leveled event log — the service-facing diagnostics channel.
/// Every record carries a level, the originating thread's name, a short
/// component tag, a message, and optional key=value fields, rendered as
/// human text or NDJSON (one JSON object per line) to a pluggable sink
/// (stderr by default, or a file / test-capture callback). A global
/// atomic level switch makes disabled levels a single relaxed load, so
/// debug logging can stay in hot-adjacent code.
///
/// The CLI wires `--log-level` / `--log-format` / `--quiet` through this
/// switch on every command; the default level is `warn`, which keeps all
/// success paths silent on stderr (cli_test asserts stdout/stderr
/// bit-identity against that contract). Emitted records are also copied
/// into the flight recorder ring, so the crash dump carries the last
/// warnings even when the sink was a rotated-away file.

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  ///< level switch value only — records cannot be kOff
};

enum class LogFormat : int {
  kText = 0,    ///< `ts LEVEL thread component: message key=value ...`
  kNdjson = 1,  ///< `{"ts_ms":...,"level":"...","fields":{...}}` per line
};

/// One pre-rendered key=value attachment. Build with the `F(...)`
/// overloads below; `quoted` records whether NDJSON should emit the value
/// as a JSON string (true) or raw number/bool literal (false).
struct LogField {
  std::string_view key;
  std::string value;
  bool quoted = true;
};

/// Field constructors: strings stay strings, arithmetic values render
/// unquoted so NDJSON consumers get real numbers.
LogField F(std::string_view key, std::string_view value);
LogField F(std::string_view key, const char* value);
LogField F(std::string_view key, const std::string& value);
LogField F(std::string_view key, bool value);
LogField F(std::string_view key, double value);
LogField F(std::string_view key, int64_t value);
LogField F(std::string_view key, uint64_t value);
inline LogField F(std::string_view key, int value) {
  return F(key, static_cast<int64_t>(value));
}
inline LogField F(std::string_view key, unsigned value) {
  return F(key, static_cast<uint64_t>(value));
}

namespace internal {
extern std::atomic<int> g_log_level;
/// Outlined emission: renders and writes one record. Only called when
/// the level passed the switch.
void LogEmit(LogLevel level, std::string_view component,
             std::string_view message,
             std::initializer_list<LogField> fields);
}  // namespace internal

/// True when records at `level` currently reach the sink. Guard expensive
/// message formatting with this.
inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         internal::g_log_level.load(std::memory_order_relaxed);
}

/// Emits one record (no-op below the global level).
inline void LogEvent(LogLevel level, std::string_view component,
                     std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  if (!LogEnabled(level)) return;
  internal::LogEmit(level, component, message, fields);
}

/// Level-named conveniences.
inline void LogDebug(std::string_view component, std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  LogEvent(LogLevel::kDebug, component, message, fields);
}
inline void LogInfo(std::string_view component, std::string_view message,
                    std::initializer_list<LogField> fields = {}) {
  LogEvent(LogLevel::kInfo, component, message, fields);
}
inline void LogWarn(std::string_view component, std::string_view message,
                    std::initializer_list<LogField> fields = {}) {
  LogEvent(LogLevel::kWarn, component, message, fields);
}
inline void LogError(std::string_view component, std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  LogEvent(LogLevel::kError, component, message, fields);
}

/// Global switches. The defaults are kWarn / kText / stderr.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void SetLogFormat(LogFormat format);
LogFormat GetLogFormat();

/// Redirects the sink to `path` (append mode). Returns false (and leaves
/// the current sink in place) when the file cannot be opened.
bool SetLogFile(const std::string& path);
/// Restores the default stderr sink (closing any owned file).
void SetLogSinkStderr();
/// Test hook: every rendered line (including '\n') is handed to `fn`
/// instead of being written. Pass nullptr to restore the previous
/// file/stderr sink.
void SetLogSinkCallback(void (*fn)(std::string_view line, void* ctx),
                        void* ctx);

/// Parses "debug|info|warn|error|off" / "text|ndjson" (case-sensitive).
/// Returns false on unknown names, leaving `*out` untouched.
bool ParseLogLevel(std::string_view text, LogLevel* out);
bool ParseLogFormat(std::string_view text, LogFormat* out);
/// The canonical spelling of `level` ("debug", ..., "off").
std::string_view LogLevelName(LogLevel level);

}  // namespace obs
}  // namespace xmlprop

#endif  // XMLPROP_OBS_LOG_H_
