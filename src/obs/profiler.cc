#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "obs/trace.h"

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>
#endif

namespace xmlprop {
namespace obs {

// One captured sample: the interrupted thread's program counters
// (leaf-first, as backtrace() returns them) plus a snapshot of its
// open-span stack (outermost-first). Fixed-size so the signal handler
// writes into preallocated storage and never allocates.
struct Profiler::Sample {
  static constexpr int kMaxFrames = 40;
  static constexpr int kMaxSpans = 16;
  uint32_t tid;
  uint16_t num_frames;
  uint16_t num_spans;
  void* frames[kMaxFrames];
  const char* spans[kMaxSpans];
};

namespace {

std::atomic<Profiler*> g_active_profiler{nullptr};

#if defined(__linux__)
struct sigaction g_old_action;
struct itimerval g_old_timer;

void SigprofTrampoline(int /*sig*/, siginfo_t* /*info*/, void* /*ctx*/) {
  const int saved_errno = errno;
  ProfilerSignalDispatch();
  errno = saved_errno;
}

// Resolves a return address to a demangled symbol name (falling back to
// the module basename, then the raw address). Cached per Fold run.
std::string Symbolize(void* pc,
                      std::unordered_map<void*, std::string>* cache) {
  auto it = cache->find(pc);
  if (it != cache->end()) return it->second;
  std::string name;
  Dl_info info;
  // pc - 1: backtrace records return addresses; step back into the call
  // instruction so calls at function boundaries attribute correctly.
  void* lookup = static_cast<char*>(pc) - 1;
  if (dladdr(lookup, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      name = demangled;
    } else {
      name = info.dli_sname;
    }
    std::free(demangled);
  } else if (dladdr(lookup, &info) != 0 && info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    name = std::string("[") + (base ? base + 1 : info.dli_fname) + "]";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "[%p]", pc);
    name = buf;
  }
  // ';' is the collapsed-stack frame separator; never let a symbol
  // smuggle one in.
  std::replace(name.begin(), name.end(), ';', ':');
  cache->emplace(pc, name);
  return name;
}

// The handler's own frames sit at the leaf of every backtrace (Record,
// the trampoline, and the kernel's signal return stub). Returns how many
// leading frames to drop: one past the last marker frame found near the
// leaf.
size_t HandlerFrameSkip(const std::vector<std::string>& leaf_first) {
  static constexpr const char* kMarkers[] = {
      "ProfilerSignalDispatch", "SigprofTrampoline", "Profiler",
      "__restore_rt", "killpg"};
  size_t skip = 0;
  const size_t scan = std::min<size_t>(leaf_first.size(), 8);
  for (size_t i = 0; i < scan; ++i) {
    for (const char* marker : kMarkers) {
      if (leaf_first[i].find(marker) != std::string::npos) {
        skip = i + 1;
        break;
      }
    }
  }
  return skip;
}
#endif  // defined(__linux__)

}  // namespace

std::string ProfileSummary::ToCollapsed() const {
  std::ostringstream out;
  for (const auto& [stack, count] : folded) {
    out << stack << " " << count << "\n";
  }
  return out.str();
}

Profiler::Profiler(const ProfilerOptions& options) : options_(options) {}

Profiler::~Profiler() {
  if (running_) Stop();
}

bool Profiler::Supported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

void ProfilerSignalDispatch() {
  Profiler* profiler = g_active_profiler.load(std::memory_order_acquire);
  if (profiler != nullptr) profiler->Record();
}

void Profiler::Record() {
#if defined(__linux__)
  const uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
  if (i >= samples_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Sample& s = samples_[i];
  s.tid = static_cast<uint32_t>(::syscall(SYS_gettid));
  int depth = internal::tls_span_depth;
  std::atomic_signal_fence(std::memory_order_acquire);
  if (depth > internal::kMaxSpanStack) depth = internal::kMaxSpanStack;
  int spans = std::min(depth, static_cast<int>(Sample::kMaxSpans));
  for (int k = 0; k < spans; ++k) {
    // Keep the innermost kMaxSpans entries — self attribution needs the
    // top of the stack.
    s.spans[k] = internal::tls_span_stack[depth - spans + k];
  }
  s.num_spans = static_cast<uint16_t>(spans);
  const int frames = backtrace(s.frames, Sample::kMaxFrames);
  s.num_frames = static_cast<uint16_t>(frames < 0 ? 0 : frames);
#endif
}

bool Profiler::Start() {
#if defined(__linux__)
  if (running_ || stopped_) return false;
  Profiler* expected = nullptr;
  if (!g_active_profiler.compare_exchange_strong(expected, this)) {
    return false;  // another profiler is running
  }
  samples_.resize(options_.max_samples);
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  // Force libgcc's unwinder to load outside signal context (its lazy
  // first-call initialization is not async-signal-safe).
  void* warmup[4];
  backtrace(warmup, 4);
  internal::g_span_stack_refs.fetch_add(1, std::memory_order_relaxed);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &SigprofTrampoline;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, &g_old_action) != 0) {
    internal::g_span_stack_refs.fetch_sub(1, std::memory_order_relaxed);
    g_active_profiler.store(nullptr, std::memory_order_release);
    return false;
  }
  struct itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  timer.it_interval.tv_sec = options_.period_us / 1000000;
  timer.it_interval.tv_usec = options_.period_us % 1000000;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, &g_old_timer) != 0) {
    sigaction(SIGPROF, &g_old_action, nullptr);
    internal::g_span_stack_refs.fetch_sub(1, std::memory_order_relaxed);
    g_active_profiler.store(nullptr, std::memory_order_release);
    return false;
  }
  running_ = true;
  return true;
#else
  return false;
#endif
}

const ProfileSummary& Profiler::Stop() {
  if (stopped_) return summary_;
  stopped_ = true;
  summary_.period_us = options_.period_us;
  if (!running_) return summary_;
  running_ = false;
#if defined(__linux__)
  struct itimerval disarm;
  std::memset(&disarm, 0, sizeof(disarm));
  setitimer(ITIMER_PROF, &disarm, nullptr);
  g_active_profiler.store(nullptr, std::memory_order_release);
  // A signal raised just before the disarm may still be executing the
  // handler on another thread; give it two periods to drain before the
  // fold reads the sample buffer.
  ::usleep(static_cast<useconds_t>(options_.period_us) * 2 + 1000);
  sigaction(SIGPROF, &g_old_action, nullptr);
  setitimer(ITIMER_PROF, &g_old_timer, nullptr);
  internal::g_span_stack_refs.fetch_sub(1, std::memory_order_relaxed);
  Fold();
#endif
  return summary_;
}

void Profiler::Fold() {
#if defined(__linux__)
  const uint64_t captured =
      std::min<uint64_t>(next_.load(std::memory_order_relaxed),
                         samples_.size());
  summary_.samples = captured;
  summary_.dropped = dropped_.load(std::memory_order_relaxed);

  std::unordered_map<void*, std::string> symbol_cache;
  std::map<std::string, std::pair<uint64_t, uint64_t>> by_span;  // self,total
  std::map<std::string, uint64_t> folded;
  std::vector<std::string> names;
  for (uint64_t i = 0; i < captured; ++i) {
    const Sample& s = samples_[i];

    // Span attribution: self for the innermost, total for every
    // distinct span on the stack.
    const char* innermost =
        s.num_spans > 0 ? s.spans[s.num_spans - 1] : nullptr;
    if (innermost != nullptr) ++by_span[innermost].first;
    std::unordered_set<const char*> seen;
    for (int k = 0; k < s.num_spans; ++k) {
      if (seen.insert(s.spans[k]).second) ++by_span[s.spans[k]].second;
    }

    // Collapsed stack, rooted at the innermost span name.
    names.clear();
    for (int f = 0; f < s.num_frames; ++f) {
      names.push_back(Symbolize(s.frames[f], &symbol_cache));
    }
    const size_t skip = HandlerFrameSkip(names);
    std::string line = innermost != nullptr ? innermost : "(no span)";
    for (size_t f = names.size(); f > skip; --f) {
      line += ';';
      line += names[f - 1];
    }
    ++folded[line];
  }

  summary_.span_counts.reserve(by_span.size());
  for (const auto& [name, counts] : by_span) {
    summary_.span_counts.push_back(
        ProfileSpanCount{name, counts.first, counts.second});
  }
  summary_.folded.assign(folded.begin(), folded.end());
#endif
}

}  // namespace obs
}  // namespace xmlprop
