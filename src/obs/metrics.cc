#include "obs/metrics.h"

#include <algorithm>

namespace xmlprop {
namespace obs {

namespace internal {
std::atomic<MetricRegistry*> g_active_metrics{nullptr};
}  // namespace internal

uint64_t MetricsSnapshot::Counter(std::string_view name) const {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

std::atomic<uint64_t>& MetricRegistry::CounterCell(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(std::string(name));
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<std::atomic<uint64_t>>(0))
             .first;
  }
  return *it->second;
}

void MetricRegistry::Add(std::string_view name, uint64_t delta) {
  CounterCell(name).fetch_add(delta, std::memory_order_relaxed);
}

uint64_t MetricRegistry::Counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(std::string(name));
  if (it == counters_.end()) return 0;
  return it->second->load(std::memory_order_relaxed);
}

void MetricRegistry::SetGauge(std::string_view name, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[std::string(name)] = value;
}

void MetricRegistry::Observe(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramCell& cell = histograms_[std::string(name)];
  if (cell.count == 0) {
    cell.min = value;
    cell.max = value;
  } else {
    cell.min = std::min(cell.min, value);
    cell.max = std::max(cell.max, value);
  }
  ++cell.count;
  cell.sum += value;
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.counters.reserve(counters_.size());
    for (const auto& [name, cell] : counters_) {
      snapshot.counters.emplace_back(name,
                                     cell->load(std::memory_order_relaxed));
    }
    snapshot.gauges.reserve(gauges_.size());
    for (const auto& [name, value] : gauges_) {
      snapshot.gauges.emplace_back(name, value);
    }
    snapshot.histograms.reserve(histograms_.size());
    for (const auto& [name, cell] : histograms_) {
      snapshot.histograms.emplace_back(
          name, HistogramSnapshot{cell.count, cell.sum, cell.min, cell.max});
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

MetricRegistry* ActiveMetrics() {
  return internal::g_active_metrics.load(std::memory_order_relaxed);
}

ScopedMetrics::ScopedMetrics(MetricRegistry* registry)
    : previous_(internal::g_active_metrics.exchange(
          registry, std::memory_order_relaxed)) {}

ScopedMetrics::~ScopedMetrics() {
  internal::g_active_metrics.store(previous_, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace xmlprop
