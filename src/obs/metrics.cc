#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/flight_recorder.h"

namespace xmlprop {
namespace obs {

namespace internal {
std::atomic<MetricRegistry*> g_active_metrics{nullptr};
}  // namespace internal

int HistogramSnapshot::BucketIndex(double value) {
  if (!(value > 0)) return 0;
  const double raw = std::ceil(std::log2(value));
  // Guard the cast: +inf or anything past the last bucket's bound would
  // be UB to convert to int (and NaN cannot reach here — !(value > 0)
  // already routed it to bucket 0).
  if (raw >= static_cast<double>(kNumBuckets - kBucketShift)) {
    return kNumBuckets - 1;
  }
  const int index = static_cast<int>(raw) + kBucketShift;
  return std::clamp(index, 0, kNumBuckets - 1);
}

double HistogramSnapshot::BucketUpperBound(int index) {
  return std::ldexp(1.0, index - kBucketShift);
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(count);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= rank) {
      // Interpolate within the bucket's [lower, upper] range by how far
      // the rank sits among the bucket's observations.
      const double lower = i == 0 ? 0.0 : BucketUpperBound(i - 1);
      const double upper = BucketUpperBound(i);
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      const double estimate = lower + (upper - lower) * fraction;
      return std::clamp(estimate, min, max);
    }
    cumulative = next;
  }
  return max;
}

uint64_t MetricsSnapshot::Counter(std::string_view name) const {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

std::atomic<uint64_t>& MetricRegistry::CounterCell(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(std::string(name));
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<std::atomic<uint64_t>>(0))
             .first;
  }
  return *it->second;
}

void MetricRegistry::Add(std::string_view name, uint64_t delta) {
  CounterCell(name).fetch_add(delta, std::memory_order_relaxed);
  RecordMetricDelta(name, static_cast<int64_t>(delta));
}

uint64_t MetricRegistry::Counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(std::string(name));
  if (it == counters_.end()) return 0;
  return it->second->load(std::memory_order_relaxed);
}

void MetricRegistry::SetGauge(std::string_view name, int64_t value) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    gauges_[std::string(name)] = value;
  }
  RecordMetricDelta(name, value);
}

void MetricRegistry::Observe(std::string_view name, double value) {
  std::unique_lock<std::mutex> lock(mu_);
  HistogramCell& cell = histograms_[std::string(name)];
  if (cell.count == 0) {
    cell.min = value;
    cell.max = value;
  } else {
    cell.min = std::min(cell.min, value);
    cell.max = std::max(cell.max, value);
  }
  ++cell.count;
  cell.sum += value;
  ++cell.buckets[HistogramSnapshot::BucketIndex(value)];
  lock.unlock();
  RecordMetricDelta(name, static_cast<int64_t>(value));
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.counters.reserve(counters_.size());
    for (const auto& [name, cell] : counters_) {
      snapshot.counters.emplace_back(name,
                                     cell->load(std::memory_order_relaxed));
    }
    snapshot.gauges.reserve(gauges_.size());
    for (const auto& [name, value] : gauges_) {
      snapshot.gauges.emplace_back(name, value);
    }
    snapshot.histograms.reserve(histograms_.size());
    for (const auto& [name, cell] : histograms_) {
      snapshot.histograms.emplace_back(
          name, HistogramSnapshot{cell.count, cell.sum, cell.min, cell.max,
                                  cell.buckets});
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

void MetricRegistry::Merge(const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    if (value == 0) continue;
    CounterCell(name).fetch_add(value, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : snapshot.gauges) {
    gauges_[name] = value;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    if (h.count == 0) continue;
    HistogramCell& cell = histograms_[name];
    if (cell.count == 0) {
      cell.min = h.min;
      cell.max = h.max;
    } else {
      cell.min = std::min(cell.min, h.min);
      cell.max = std::max(cell.max, h.max);
    }
    cell.count += h.count;
    cell.sum += h.sum;
    for (int i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
      cell.buckets[i] += h.buckets[i];
    }
  }
}

MetricRegistry* ActiveMetrics() {
  if (MetricRegistry* bound = internal::tls_obs_binding.metrics) return bound;
  return internal::g_active_metrics.load(std::memory_order_relaxed);
}

ScopedMetrics::ScopedMetrics(MetricRegistry* registry)
    : previous_(internal::g_active_metrics.exchange(
          registry, std::memory_order_relaxed)) {}

ScopedMetrics::~ScopedMetrics() {
  internal::g_active_metrics.store(previous_, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace xmlprop
