#include "obs/openmetrics.h"

#include <cstdio>
#include <chrono>

namespace xmlprop {
namespace obs {

namespace {

void AppendDouble(std::string* out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out->append(buf);
}

void AppendHistogram(std::string* out, const std::string& name,
                     const HistogramSnapshot& hist) {
  out->append("# TYPE ").append(name).append(" histogram\n");
  uint64_t cumulative = 0;
  for (int i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
    if (hist.buckets[i] == 0) continue;
    cumulative += hist.buckets[i];
    out->append(name).append("_bucket{le=\"");
    if (i == HistogramSnapshot::kNumBuckets - 1) {
      out->append("+Inf");
    } else {
      AppendDouble(out, HistogramSnapshot::BucketUpperBound(i));
    }
    out->append("\"} ");
    out->append(std::to_string(cumulative));
    out->push_back('\n');
  }
  // The +Inf bucket is mandatory even when the last cell is empty.
  if (hist.buckets[HistogramSnapshot::kNumBuckets - 1] == 0) {
    out->append(name).append("_bucket{le=\"+Inf\"} ");
    out->append(std::to_string(cumulative));
    out->push_back('\n');
  }
  out->append(name).append("_sum ");
  AppendDouble(out, hist.sum);
  out->push_back('\n');
  out->append(name).append("_count ");
  out->append(std::to_string(hist.count));
  out->push_back('\n');
}

}  // namespace

std::string OpenMetricsName(std::string_view name) {
  std::string out = "xmlprop_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string RenderOpenMetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string om = OpenMetricsName(name);
    out.append("# TYPE ").append(om).append(" counter\n");
    out.append(om).append("_total ").append(std::to_string(value));
    out.push_back('\n');
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string om = OpenMetricsName(name);
    out.append("# TYPE ").append(om).append(" gauge\n");
    out.append(om).append(" ").append(std::to_string(value));
    out.push_back('\n');
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    AppendHistogram(&out, OpenMetricsName(name), hist);
  }
  out.append("# EOF\n");
  return out;
}

bool WriteOpenMetricsFile(const MetricsSnapshot& snapshot,
                          const std::string& path) {
  const std::string body = RenderOpenMetrics(snapshot);
  const std::string tmp = path + ".tmp";
  FILE* file = std::fopen(tmp.c_str(), "w");
  if (file == nullptr) return false;
  const bool wrote =
      std::fwrite(body.data(), 1, body.size(), file) == body.size();
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

PeriodicMetricsWriter::PeriodicMetricsWriter(const MetricRegistry* registry,
                                             std::string path,
                                             int interval_ms)
    : registry_(registry),
      path_(std::move(path)),
      interval_ms_(interval_ms > 0 ? interval_ms : 1000),
      thread_([this] { Run(); }) {}

PeriodicMetricsWriter::~PeriodicMetricsWriter() { Stop(); }

void PeriodicMetricsWriter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Final snapshot after the thread joined, so even runs shorter than
  // one interval leave the exposition on disk and the last scrape sees
  // everything the registry accumulated (including late context folds).
  if (WriteOpenMetricsFile(registry_->Snapshot(), path_)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++writes_;
  }
}

void PeriodicMetricsWriter::Restart() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopped_) return;  // still running: nothing to re-arm
    stopped_ = false;
    stop_ = false;
  }
  // Stop() joined the previous thread before flipping stopped_, so the
  // handle is safe to reuse here.
  thread_ = std::thread([this] { Run(); });
}

int PeriodicMetricsWriter::writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

void PeriodicMetricsWriter::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                     [this] { return stop_; })) {
      return;
    }
    lock.unlock();
    const bool ok = WriteOpenMetricsFile(registry_->Snapshot(), path_);
    lock.lock();
    if (ok) ++writes_;
  }
}

}  // namespace obs
}  // namespace xmlprop
