#ifndef XMLPROP_OBS_PROFILER_H_
#define XMLPROP_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace xmlprop {
namespace obs {

/// CPU samples attributed to one span name: `self` counts samples whose
/// innermost open span was this one, `total` counts samples with the
/// span anywhere on the open-span stack.
struct ProfileSpanCount {
  std::string name;
  uint64_t self = 0;
  uint64_t total = 0;
};

/// The folded result of one profiling session.
struct ProfileSummary {
  uint64_t samples = 0;  ///< samples captured (0 when never started)
  uint64_t dropped = 0;  ///< samples lost to buffer exhaustion
  int period_us = 0;     ///< sampling period (CPU time between signals)
  /// Per-span sample counts, name-sorted (merged into the run report).
  std::vector<ProfileSpanCount> span_counts;
  /// Collapsed call stacks: `span;outermost;...;innermost` → count,
  /// sorted by stack string. Feed ToCollapsed() to flamegraph.pl.
  std::vector<std::pair<std::string, uint64_t>> folded;

  bool empty() const { return samples == 0 && dropped == 0; }
  /// flamegraph.pl-compatible text: one `stack count` line per entry.
  std::string ToCollapsed() const;
};

struct ProfilerOptions {
  /// CPU-time sampling period in microseconds (ITIMER_PROF). 2 ms
  /// ≈ 500 samples per CPU-second — cheap enough to leave on for any
  /// CLI run, dense enough for the Fig. 7 workloads.
  int period_us = 2000;
  /// Preallocated sample capacity; samples past it are counted as
  /// dropped (the handler never allocates).
  size_t max_samples = 1 << 15;
};

/// A Linux SIGPROF sampling profiler. While running, a process-wide
/// CPU-time timer interrupts whichever thread is executing; the handler
/// captures that thread's backtrace and its open-span stack (the
/// thread-local span cursor obs::Span maintains) into a preallocated
/// buffer — no locks, no allocation, async-signal-safe. Stop() folds the
/// samples into collapsed stacks plus per-span self/total counts.
///
/// One profiler may run at a time (Start fails otherwise). On non-Linux
/// builds Supported() is false and Start() fails cleanly.
class Profiler {
 public:
  explicit Profiler(const ProfilerOptions& options = {});
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Whether this platform has the timer/SIGPROF machinery.
  static bool Supported();

  /// Installs the SIGPROF handler and arms the timer. False if another
  /// profiler is running or the platform lacks support.
  bool Start();

  /// Disarms the timer, restores the previous handler, folds the
  /// samples. Idempotent; returns the same summary on later calls.
  const ProfileSummary& Stop();

  bool running() const { return running_; }

 private:
  struct Sample;
  friend void ProfilerSignalDispatch();

  void Record();
  void Fold();

  ProfilerOptions options_;
  std::vector<Sample> samples_;
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> dropped_{0};
  bool running_ = false;
  bool stopped_ = false;
  ProfileSummary summary_;
};

/// Called by the SIGPROF handler; records into the running profiler, if
/// any (internal — exposed only for the signal trampoline).
void ProfilerSignalDispatch();

}  // namespace obs
}  // namespace xmlprop

#endif  // XMLPROP_OBS_PROFILER_H_
