#ifndef XMLPROP_OBS_MEM_STATS_H_
#define XMLPROP_OBS_MEM_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xmlprop {
namespace obs {

/// Allocations attributed to one span name (cumulative over the
/// accounting scope; frees are not attributable without per-block
/// headers, so live bytes are tracked globally only).
struct MemSpanAlloc {
  std::string span;
  uint64_t count = 0;
  uint64_t bytes = 0;
};

/// Memory readout for one run: process peak RSS (always available) plus
/// the opt-in operator new/delete counters when a ScopedMemAccounting
/// was active.
struct MemorySummary {
  int64_t max_rss_kb = 0;      ///< VmHWM — process-lifetime peak RSS
  bool hooks_enabled = false;  ///< the counters below were recorded
  uint64_t alloc_count = 0;
  uint64_t alloc_bytes = 0;    ///< cumulative, by usable block size
  uint64_t free_count = 0;
  int64_t live_bytes = 0;      ///< allocs minus frees inside the scope
  uint64_t peak_live_bytes = 0;
  std::vector<MemSpanAlloc> by_span;  ///< name-sorted
};

/// The process's peak resident set size in KiB, from /proc/self/status
/// VmHWM (getrusage fallback). 0 when unavailable.
int64_t ReadPeakRssKb();

/// Enables the global operator new/delete counting hooks for its
/// lifetime (resetting the counters on entry). Allocations are
/// attributed to the innermost open obs::Span via the same thread-local
/// span cursor the profiler uses. One scope at a time; nesting is a
/// programming error (the inner scope resets the outer's counts).
///
/// Disabled cost: the replaced operators add one relaxed atomic load per
/// new/delete when no scope is active.
class ScopedMemAccounting {
 public:
  ScopedMemAccounting();
  ~ScopedMemAccounting();
  ScopedMemAccounting(const ScopedMemAccounting&) = delete;
  ScopedMemAccounting& operator=(const ScopedMemAccounting&) = delete;

  /// Counters recorded so far in this scope (max_rss_kb filled too).
  MemorySummary Snapshot() const;
};

/// Fills a MemorySummary with the current peak RSS and, when a
/// ScopedMemAccounting is active, its counters.
MemorySummary CurrentMemorySummary();

}  // namespace obs
}  // namespace xmlprop

#endif  // XMLPROP_OBS_MEM_STATS_H_
