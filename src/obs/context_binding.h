#ifndef XMLPROP_OBS_CONTEXT_BINDING_H_
#define XMLPROP_OBS_CONTEXT_BINDING_H_

#include <atomic>
#include <cstdint>

namespace xmlprop {
namespace obs {

class ObsContext;
class Trace;
class MetricRegistry;
class CostAttribution;

namespace internal {

// ---------------------------------------------------------------------------
// The per-thread observability cursor.
//
// Every hot-path helper (Count/Gauge/Observe, Span, CostAdd, the log
// renderer) consults this thread-local binding FIRST and only falls back
// to the process-global atomics (g_active_trace / g_active_metrics /
// g_active_costs) when the slot is null. An all-null binding — the state
// of every thread that never entered an ObsContext — therefore behaves
// exactly like the pre-context code: one TLS read plus one branch on top
// of the original relaxed atomic load. That null state IS the "static
// default context"; it is what keeps single-command CLI output
// bit-identical and the disabled-path overhead inside the flight-recorder
// budget.
//
// The binding propagates across ThreadPool fan-outs by riding the
// existing span-adoption handshake: obs::CurrentSpan() captures it into
// the SpanToken and obs::SpanParent installs/restores it inside the
// worker body. Code between the two never touches it.
struct ObsBinding {
  ObsContext* context = nullptr;
  Trace* trace = nullptr;
  MetricRegistry* metrics = nullptr;
  CostAttribution* costs = nullptr;
  /// The owning context's liveness counter (stall-watchdog heartbeat);
  /// bumped relaxed on every bound span/metric charge.
  std::atomic<uint64_t>* activity = nullptr;
  /// The context's name, NUL-terminated, owned by (and outliving) the
  /// context — stamped onto log records as the `ctx` field.
  const char* log_tag = nullptr;
};

extern thread_local ObsBinding tls_obs_binding;

/// Marks the bound context live (no-op on the default context). Relaxed:
/// the watchdog only compares successive samples for inequality.
inline void BindingTouch() {
  std::atomic<uint64_t>* activity = tls_obs_binding.activity;
  if (activity != nullptr) activity->fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal
}  // namespace obs
}  // namespace xmlprop

#endif  // XMLPROP_OBS_CONTEXT_BINDING_H_
