#include "obs/cost_attribution.h"

#include <algorithm>
#include <chrono>

namespace xmlprop {
namespace obs {

namespace internal {
std::atomic<CostAttribution*> g_active_costs{nullptr};
thread_local uint32_t tls_cost_id = CostAttribution::kNoConstraint;
}  // namespace internal

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

CostAttribution::CostAttribution() : rows_(new Row[kMaxConstraints]) {
  for (uint32_t r = 0; r < kMaxConstraints; ++r) {
    for (int k = 0; k < kNumCostKinds; ++k) {
      rows_[r].values[k].store(0, std::memory_order_relaxed);
    }
  }
}

uint32_t CostAttribution::Intern(std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(std::string(label));
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(labels_.size());
  if (id >= kMaxConstraints) return kNoConstraint;
  labels_.emplace_back(label);
  ids_.emplace(labels_.back(), id);
  // Publish the new count after the label exists, so Snapshot never
  // reads past the labels it can name.
  count_.store(id + 1, std::memory_order_release);
  return id;
}

void CostAttribution::Add(uint32_t id, CostKind kind, uint64_t delta) {
  if (id >= kMaxConstraints) return;
  rows_[id].values[static_cast<int>(kind)].fetch_add(
      delta, std::memory_order_relaxed);
}

std::vector<ConstraintCostRow> CostAttribution::Snapshot() const {
  std::vector<std::string> labels;
  {
    std::lock_guard<std::mutex> lock(mu_);
    labels = labels_;
  }
  std::vector<ConstraintCostRow> rows(labels.size());
  for (size_t r = 0; r < labels.size(); ++r) {
    rows[r].label = std::move(labels[r]);
    for (int k = 0; k < kNumCostKinds; ++k) {
      rows[r].values[k] = rows_[r].values[k].load(std::memory_order_relaxed);
    }
  }
  return rows;
}

uint32_t CostAttribution::size() const {
  return count_.load(std::memory_order_acquire);
}

void SortHotFirst(std::vector<ConstraintCostRow>* rows) {
  std::stable_sort(rows->begin(), rows->end(),
                   [](const ConstraintCostRow& a, const ConstraintCostRow& b) {
                     if (a.Get(CostKind::kWallNs) != b.Get(CostKind::kWallNs)) {
                       return a.Get(CostKind::kWallNs) >
                              b.Get(CostKind::kWallNs);
                     }
                     if (a.Get(CostKind::kViolations) !=
                         b.Get(CostKind::kViolations)) {
                       return a.Get(CostKind::kViolations) >
                              b.Get(CostKind::kViolations);
                     }
                     if (a.Get(CostKind::kContexts) !=
                         b.Get(CostKind::kContexts)) {
                       return a.Get(CostKind::kContexts) >
                              b.Get(CostKind::kContexts);
                     }
                     return a.label < b.label;
                   });
}

ScopedCostAttribution::ScopedCostAttribution(CostAttribution* costs)
    : previous_(internal::g_active_costs.exchange(
          costs, std::memory_order_relaxed)) {}

ScopedCostAttribution::~ScopedCostAttribution() {
  internal::g_active_costs.store(previous_, std::memory_order_relaxed);
}

ScopedCostTimer::ScopedCostTimer(uint32_t id)
    : costs_(ActiveCosts()), id_(id) {
  if (costs_ != nullptr && id_ != CostAttribution::kNoConstraint) {
    start_ns_ = NowNs();
  } else {
    costs_ = nullptr;
  }
}

ScopedCostTimer::~ScopedCostTimer() {
  if (costs_ != nullptr) {
    costs_->Add(id_, CostKind::kWallNs, NowNs() - start_ns_);
  }
}

}  // namespace obs
}  // namespace xmlprop
