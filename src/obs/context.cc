#include "obs/context.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "obs/flight_recorder.h"
#include "obs/log.h"

namespace xmlprop {
namespace obs {

namespace internal {
thread_local ObsBinding tls_obs_binding;
}  // namespace internal

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

// "parse=1.234ms, check.contexts=0.512ms(x7)" — the slow-op record's
// per-phase summary. The root span is the operation itself; its children
// are the phases. Roots without children (no phase spans recorded)
// surface themselves.
std::string PhaseSummary(const TraceSummary& trace) {
  std::string out;
  char buf[48];
  auto append = [&](const SpanNode& node) {
    if (!out.empty()) out.append(", ");
    out.append(node.name);
    std::snprintf(buf, sizeof(buf), "=%.3fms", node.total_ms);
    out.append(buf);
    if (node.count > 1) {
      std::snprintf(buf, sizeof(buf), "(x%llu)",
                    static_cast<unsigned long long>(node.count));
      out.append(buf);
    }
  };
  for (const SpanNode& root : trace.roots) {
    if (root.children.empty()) {
      append(root);
    } else {
      for (const SpanNode& phase : root.children) append(phase);
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceTailSampler

bool TraceTailSampler::Admit(double wall_ms, bool force) {
  bool admit;
  if (force || keep_ < 0) {
    admit = true;
    if (keep_ > 0) {
      // A forced admission still occupies a slowest-K slot, so the bar
      // for later ordinary admissions keeps rising.
      std::lock_guard<std::mutex> lock(mu_);
      if (slowest_.size() < static_cast<size_t>(keep_)) {
        slowest_.push_back(wall_ms);
        std::push_heap(slowest_.begin(), slowest_.end(),
                       std::greater<double>());
      } else if (wall_ms > slowest_.front()) {
        std::pop_heap(slowest_.begin(), slowest_.end(),
                      std::greater<double>());
        slowest_.back() = wall_ms;
        std::push_heap(slowest_.begin(), slowest_.end(),
                       std::greater<double>());
      }
    }
  } else if (keep_ == 0) {
    admit = false;
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    if (slowest_.size() < static_cast<size_t>(keep_)) {
      slowest_.push_back(wall_ms);
      std::push_heap(slowest_.begin(), slowest_.end(), std::greater<double>());
      admit = true;
    } else if (wall_ms > slowest_.front()) {
      std::pop_heap(slowest_.begin(), slowest_.end(), std::greater<double>());
      slowest_.back() = wall_ms;
      std::push_heap(slowest_.begin(), slowest_.end(), std::greater<double>());
      admit = true;
    } else {
      admit = false;
    }
  }
  (admit ? retained_ : discarded_).fetch_add(1, std::memory_order_relaxed);
  return admit;
}

// ---------------------------------------------------------------------------
// StallWatchdog

StallWatchdog::StallWatchdog(int stall_ms, int poll_ms)
    : stall_ms_(stall_ms > 0 ? stall_ms : 1),
      poll_ms_(poll_ms > 0 ? poll_ms : std::max(1, stall_ms_ / 4)),
      thread_([this] { Run(); }) {}

StallWatchdog::~StallWatchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    // Sever the contexts' back-pointers: a context closed after the
    // watchdog died must not call Unwatch on a dead object.
    for (Entry& entry : watched_) {
      entry.context->watchdog_.store(nullptr, std::memory_order_relaxed);
    }
    watched_.clear();
  }
  cv_.notify_all();
  thread_.join();
}

void StallWatchdog::Watch(ObsContext* context) {
  if (context == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.context = context;
  entry.last_activity = context->activity();
  entry.last_change = std::chrono::steady_clock::now();
  watched_.push_back(entry);
  context->watchdog_.store(this, std::memory_order_relaxed);
}

void StallWatchdog::Unwatch(ObsContext* context) {
  if (context == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  watched_.erase(std::remove_if(watched_.begin(), watched_.end(),
                                [context](const Entry& entry) {
                                  return entry.context == context;
                                }),
                 watched_.end());
  context->watchdog_.store(nullptr, std::memory_order_relaxed);
}

void StallWatchdog::Run() {
#if defined(__linux__)
  pthread_setname_np(pthread_self(), "xmlprop-wdog");
#endif
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(poll_ms_),
                     [this] { return stop_; })) {
      return;
    }
    const auto now = std::chrono::steady_clock::now();
    for (Entry& entry : watched_) {
      const uint64_t activity = entry.context->activity();
      if (activity != entry.last_activity) {
        entry.last_activity = activity;
        entry.last_change = now;
        entry.flagged = false;  // re-arm: the context came back to life
        continue;
      }
      const double idle_ms = ElapsedMs(entry.last_change, now);
      if (entry.flagged || idle_ms < static_cast<double>(stall_ms_)) continue;
      entry.flagged = true;
      stalls_.fetch_add(1, std::memory_order_relaxed);
      // Charge the stalled context itself, so the fold carries the stall
      // into the process-level exposition. Registry adds do not count as
      // activity (only bound-thread charges touch the heartbeat), so the
      // watchdog never masks the very stall it reports.
      entry.context->metrics()->Add("obs.stalls_detected", 1);
      LogError("watchdog", "context stalled: no span/metric activity",
               {F("ctx", entry.context->name()), F("idle_ms", idle_ms),
                F("stall_ms", static_cast<int64_t>(stall_ms_)),
                F("open_spans", DumpOpenSpanStacksToString())});
    }
  }
}

// ---------------------------------------------------------------------------
// ObsContext

namespace {
std::atomic<uint64_t> g_next_context_id{1};
}  // namespace

ObsContext::ObsContext(ObsContextOptions options)
    : options_(std::move(options)),
      id_(g_next_context_id.fetch_add(1, std::memory_order_relaxed)),
      start_(std::chrono::steady_clock::now()) {
  if (options_.name.empty()) options_.name = "op";
  // The black box lists open contexts by (name, id): a crash mid-request
  // names exactly the requests that were in flight.
  open_operation_slot_ = RegisterOpenOperation(options_.name.c_str(), id_);
}

ObsContext::~ObsContext() {
  // An owner that never closed gets the un-folded close: retention and
  // the slow-op record still run, process aggregation is simply skipped.
  if (!closed()) Close(nullptr);
}

void ObsContext::MarkError(std::string_view what) {
  std::lock_guard<std::mutex> lock(close_mu_);
  error_.store(true, std::memory_order_relaxed);
  if (error_what_.empty()) error_what_.assign(what);
}

internal::ObsBinding ObsContext::binding() {
  internal::ObsBinding b;
  b.context = this;
  b.trace = &trace_;
  b.metrics = &metrics_;
  b.costs = &costs_;
  b.activity = &activity_;
  b.log_tag = options_.name.c_str();
  return b;
}

const ObsContext::Result& ObsContext::Close(MetricRegistry* fold_into) {
  std::lock_guard<std::mutex> lock(close_mu_);
  if (closed_.load(std::memory_order_acquire)) return result_;
  if (StallWatchdog* watchdog = watchdog_.load(std::memory_order_relaxed)) {
    watchdog->Unwatch(this);
  }
  result_.wall_ms = ElapsedMs(start_, std::chrono::steady_clock::now());
  result_.error = error_.load(std::memory_order_relaxed);
  result_.slow =
      options_.slow_op_ms > 0 && result_.wall_ms >= options_.slow_op_ms;
  // Errors and slow-ops always land in the retained set — they are the
  // tail the sampling exists to keep.
  const bool force = result_.slow || result_.error;
  result_.retained = options_.sampler == nullptr
                         ? true
                         : options_.sampler->Admit(result_.wall_ms, force);
  metrics_.Add(result_.retained ? "obs.traces_retained"
                                : "obs.traces_discarded");
  if (result_.retained) {
    result_.trace = trace_.Finish();  // materialize only when admitted
  }
  result_.metrics = metrics_.Snapshot();
  result_.constraint_costs = costs_.Snapshot();
  if (result_.slow) {
    LogWarn("slowop", "operation exceeded slow-op threshold",
            {F("ctx", options_.name), F("wall_ms", result_.wall_ms),
             F("threshold_ms", options_.slow_op_ms), F("error", result_.error),
             F("phases", PhaseSummary(result_.trace))});
  }
  if (result_.error) {
    LogError("obs", "operation failed",
             {F("ctx", options_.name), F("what", error_what_),
              F("wall_ms", result_.wall_ms)});
  }
  // Fold AFTER the retention counters were bumped, so the process-level
  // exposition equals the exact per-context sum.
  if (fold_into != nullptr) fold_into->Merge(result_.metrics);
  UnregisterOpenOperation(open_operation_slot_);
  open_operation_slot_ = -1;
  closed_.store(true, std::memory_order_release);
  return result_;
}

// ---------------------------------------------------------------------------
// ScopedObsContext

ScopedObsContext::ScopedObsContext(ObsContext* context)
    : previous_(internal::tls_obs_binding) {
  internal::tls_obs_binding =
      context != nullptr ? context->binding() : internal::ObsBinding{};
}

ScopedObsContext::~ScopedObsContext() {
  internal::tls_obs_binding = previous_;
}

ObsContext* CurrentObsContext() {
  return internal::tls_obs_binding.context;
}

}  // namespace obs
}  // namespace xmlprop
