#include "core/minimum_cover.h"

#include <algorithm>
#include <map>
#include <set>

#include "keys/implication.h"
#include "keys/implication_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/cover.h"

namespace xmlprop {

namespace {

// Shared state of one minimumCover run. Runs against a KeyOracle so the
// same body serves the engine-off (bare Σ) path and the engine path; with
// an engine, the independent implication checks of CandidatesFor and
// EmitFieldFds are evaluated as batches (cached + parallel fan-out).
struct CoverBuilder {
  KeyOracle oracle;
  ImplicationEngine* engine;  // null on the engine-off path
  const TableTree& table;
  PropagationStats* stats;

  // attr name -> field position, per table-tree variable.
  std::vector<std::map<std::string, size_t>> attr_fields;
  // Canonical transitive key per variable (fields), when keyed.
  std::vector<std::optional<AttrSet>> canonical;
  FdSet gamma;

  CoverBuilder(KeyOracle o, const TableTree& t, PropagationStats* st)
      : oracle(o), engine(o.engine()), table(t), stats(st),
        gamma(t.schema()) {}

  // Evaluates a batch of independent identification queries, in input
  // order. The call count is the same either way — every query is issued
  // unconditionally — so the Section 6 implication-call accounting is
  // unchanged by batching.
  std::vector<char> ImpliesBatch(const std::vector<XmlKey>& queries) {
    obs::Span span("cover.implication_checks");
    obs::CountInto(stats != nullptr ? &stats->implication_calls : nullptr,
                   "propagation.implication_calls", queries.size());
    if (engine != nullptr) return engine->ImpliesIdentificationBatch(queries);
    std::vector<char> out;
    out.reserve(queries.size());
    for (const XmlKey& q : queries) {
      out.push_back(oracle.ImpliesIdentification(q) ? 1 : 0);
    }
    return out;
  }

  void CollectAttrFields() {
    attr_fields.resize(table.size());
    for (size_t v = 0; v < table.size(); ++v) {
      for (int child : table.node(static_cast<int>(v)).children) {
        const TableTree::VarNode& c = table.node(child);
        if (c.field < 0) continue;
        if (c.step.length() != 1 || !c.step.atoms()[0].is_attribute()) {
          continue;
        }
        attr_fields[v].emplace(c.step.atoms()[0].label.substr(1),
                               static_cast<size_t>(c.field));
      }
    }
  }

  // The fields populated by v's attributes named in `attrs`, or nullopt
  // when some attribute is not populated as a field.
  std::optional<AttrSet> FieldsOfAttrs(size_t v,
                                       const std::vector<std::string>& attrs) {
    AttrSet fields(table.schema().arity());
    for (const std::string& a : attrs) {
      auto it = attr_fields[v].find(a);
      if (it == attr_fields[v].end()) return std::nullopt;
      fields.Set(it->second);
    }
    return fields;
  }

  // Candidate transitive keys of variable v (deduplicated, deterministic
  // order: by size, then lexicographic). All candidate implication checks
  // for v are independent, so they go out as one batch.
  Result<std::vector<AttrSet>> CandidatesFor(int v) {
    std::vector<XmlKey> queries;
    std::vector<AttrSet> on_success;  // candidate key if query i holds
    {
      obs::Span span("cover.candidate_generation");
      std::vector<int> chain = table.AncestorChain(v);
      chain.pop_back();  // proper ancestors only
      for (int u : chain) {
        const auto& base = canonical[static_cast<size_t>(u)];
        if (!base.has_value()) continue;
        XMLPROP_ASSIGN_OR_RETURN(PathExpr rho, table.PathBetween(u, v));
        PathExpr u_path = table.PathFromRoot(u);

        // v unique under u: keyed by the ancestor's key alone (S = ∅).
        queries.emplace_back("", u_path, rho, std::vector<std::string>{});
        on_success.push_back(*base);
        // One candidate per key of Σ whose attributes are all fields of v.
        for (const XmlKey& k : oracle.keys()) {
          if (k.attributes().empty()) continue;  // covered by the ∅ case
          std::optional<AttrSet> key_fields = FieldsOfAttrs(
              static_cast<size_t>(v), k.attributes());
          if (!key_fields.has_value()) continue;
          queries.emplace_back("", u_path, rho, k.attributes());
          on_success.push_back(base->Union(*key_fields));
        }
      }
      obs::Count("cover.candidates_generated", queries.size());
    }
    std::vector<char> verdicts = ImpliesBatch(queries);
    std::set<AttrSet> candidates;
    for (size_t i = 0; i < queries.size(); ++i) {
      if (verdicts[i] != 0) candidates.insert(on_success[i]);
    }
    // Pruned = candidates refuted by the implication check plus implied
    // ones that collapsed into an already-found key set.
    obs::Count("cover.candidates_pruned", queries.size() - candidates.size());
    std::vector<AttrSet> out(candidates.begin(), candidates.end());
    std::stable_sort(out.begin(), out.end(),
                     [](const AttrSet& a, const AttrSet& b) {
                       if (a.Count() != b.Count()) return a.Count() < b.Count();
                       return a < b;
                     });
    return out;
  }

  Status AssignKeys() {
    obs::Span span("cover.assign_keys");
    canonical.assign(table.size(), std::nullopt);
    canonical[0] = table.schema().EmptySet();  // the root is unique
    for (size_t v = 1; v < table.size(); ++v) {
      XMLPROP_ASSIGN_OR_RETURN(std::vector<AttrSet> candidates,
                               CandidatesFor(static_cast<int>(v)));
      if (candidates.empty()) continue;
      canonical[v] = candidates[0];
      // Alternative keys are pairwise equivalent to the canonical one
      // (the paper's equivalence property): emit both directions.
      for (size_t i = 1; i < candidates.size(); ++i) {
        for (size_t f : candidates[i].Minus(candidates[0]).ToVector()) {
          gamma.Add(Fd::SingleRhs(candidates[0], f));
        }
        for (size_t f : candidates[0].Minus(candidates[i]).ToVector()) {
          gamma.Add(Fd::SingleRhs(candidates[i], f));
        }
      }
    }
    return Status::OK();
  }

  Status EmitFieldFds() {
    obs::Span field_span("cover.field_fds");
    // Every (keyed v, field-populating descendant w) uniqueness check is
    // independent of the others: collect them all, run one batch, then
    // emit the FDs in the original deterministic order.
    std::vector<XmlKey> queries;
    std::vector<std::pair<size_t, size_t>> emit;  // (variable v, field f)
    for (size_t v = 0; v < table.size(); ++v) {
      if (!canonical[v].has_value()) continue;
      const AttrSet& key = *canonical[v];
      PathExpr v_path = table.PathFromRoot(static_cast<int>(v));
      for (size_t w = 0; w < table.size(); ++w) {
        const TableTree::VarNode& node = table.node(static_cast<int>(w));
        if (node.field < 0) continue;
        if (!table.IsAncestorOrSelf(static_cast<int>(v),
                                    static_cast<int>(w))) {
          continue;
        }
        size_t f = static_cast<size_t>(node.field);
        if (key.Test(f)) continue;  // trivial
        XMLPROP_ASSIGN_OR_RETURN(
            PathExpr rho,
            table.PathBetween(static_cast<int>(v), static_cast<int>(w)));
        queries.emplace_back("", v_path, rho.WithoutTrailingAttribute(),
                             std::vector<std::string>{});
        emit.emplace_back(v, f);
      }
    }
    std::vector<char> verdicts = ImpliesBatch(queries);
    for (size_t i = 0; i < queries.size(); ++i) {
      if (verdicts[i] != 0) {
        gamma.Add(Fd::SingleRhs(*canonical[emit[i].first], emit[i].second));
      }
    }
    return Status::OK();
  }
};

Result<FdSet> RawWith(KeyOracle oracle, const TableTree& table,
                      PropagationStats* stats) {
  CoverBuilder builder(oracle, table, stats);
  builder.CollectAttrFields();
  XMLPROP_RETURN_NOT_OK(builder.AssignKeys());
  XMLPROP_RETURN_NOT_OK(builder.EmitFieldFds());
  return std::move(builder.gamma);
}

Result<std::vector<NodeKeyAssignment>> NodeKeysWith(KeyOracle oracle,
                                                    const TableTree& table,
                                                    PropagationStats* stats) {
  CoverBuilder builder(oracle, table, stats);
  builder.CollectAttrFields();
  XMLPROP_RETURN_NOT_OK(builder.AssignKeys());
  std::vector<NodeKeyAssignment> out;
  for (size_t v = 0; v < table.size(); ++v) {
    out.push_back(NodeKeyAssignment{table.node(static_cast<int>(v)).name,
                                    builder.canonical[v]});
  }
  return out;
}

}  // namespace

Result<FdSet> PropagatedCoverRaw(const std::vector<XmlKey>& sigma,
                                 const TableTree& table,
                                 PropagationStats* stats) {
  return RawWith(KeyOracle(sigma), table, stats);
}

Result<FdSet> MinimumCover(const std::vector<XmlKey>& sigma,
                           const TableTree& table, PropagationStats* stats) {
  XMLPROP_ASSIGN_OR_RETURN(FdSet raw,
                           PropagatedCoverRaw(sigma, table, stats));
  return Minimize(raw);
}

Result<std::vector<NodeKeyAssignment>> ComputeNodeKeys(
    const std::vector<XmlKey>& sigma, const TableTree& table,
    PropagationStats* stats) {
  return NodeKeysWith(KeyOracle(sigma), table, stats);
}

Result<FdSet> PropagatedCoverRaw(ImplicationEngine& engine,
                                 const TableTree& table,
                                 PropagationStats* stats) {
  const ImplicationEngine::Counters before = engine.counters();
  Result<FdSet> raw = RawWith(KeyOracle(engine), table, stats);
  AbsorbEngineDelta(stats, before, engine.counters());
  return raw;
}

Result<FdSet> MinimumCover(ImplicationEngine& engine, const TableTree& table,
                           PropagationStats* stats) {
  XMLPROP_ASSIGN_OR_RETURN(FdSet raw,
                           PropagatedCoverRaw(engine, table, stats));
  // The engine's pool batches minimize's independent per-FD checks;
  // output order is bit-identical to the sequential path.
  return Minimize(raw, engine.pool());
}

Result<std::vector<NodeKeyAssignment>> ComputeNodeKeys(
    ImplicationEngine& engine, const TableTree& table,
    PropagationStats* stats) {
  const ImplicationEngine::Counters before = engine.counters();
  Result<std::vector<NodeKeyAssignment>> keys =
      NodeKeysWith(KeyOracle(engine), table, stats);
  AbsorbEngineDelta(stats, before, engine.counters());
  return keys;
}

}  // namespace xmlprop
