#ifndef XMLPROP_CORE_MINIMUM_COVER_H_
#define XMLPROP_CORE_MINIMUM_COVER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/propagation.h"
#include "keys/xml_key.h"
#include "relational/fd_set.h"
#include "transform/table_tree.h"

namespace xmlprop {

/// Debug/teaching output of Algorithm minimumCover: the canonical
/// transitive key chosen for each table-tree variable (the set of
/// universal-relation fields whose values pin down that variable's
/// binding), or nullopt when the variable is not keyed.
struct NodeKeyAssignment {
  std::string var;
  std::optional<AttrSet> canonical_key;
};

/// Algorithm `minimumCover` (Section 5): computes, in polynomial time, a
/// minimum cover of all FDs propagated from the XML keys `sigma` onto the
/// universal relation defined by `table`.
///
/// Reconstruction of the partially-OCR-lost pseudo-code (DESIGN.md §7),
/// following the surviving prose:
///   - traverse the table tree top-down; the root is keyed by ∅;
///   - at each variable v, build *candidate transitive keys*: for every
///     keyed ancestor u and every key k ∈ Σ whose attributes are all
///     populated as fields from v, if Σ forces identification of v under
///     u by k's attributes (Algorithm implication), the candidate is
///     canonical(u) ∪ fields(k); v unique under u (S = ∅) contributes
///     canonical(u) itself;
///   - one candidate becomes the node's canonical key; every other
///     candidate K' is linked to it by two-way FDs (making them
///     equivalent under Armstrong's axioms — the paper's key-equivalence
///     property);
///   - for each keyed v and each field f populated from a descendant-or-
///     self w of v that is unique under v, emit canonical(v) → f;
///   - finally `minimize` removes extraneous attributes and redundant FDs.
///
/// Contract (tested against Algorithm naive): the result is a minimum
/// cover of the FDs propagated under *value semantics*
/// (CheckValuePropagation); use GminimumCover for the full null-aware
/// per-FD check. Complexity O(n²·m²) with n = |Σ|, m = |table|.
Result<FdSet> MinimumCover(const std::vector<XmlKey>& sigma,
                           const TableTree& table,
                           PropagationStats* stats = nullptr);

/// The raw FD set Γ produced before the final `minimize` (for tests and
/// the ablation bench).
Result<FdSet> PropagatedCoverRaw(const std::vector<XmlKey>& sigma,
                                 const TableTree& table,
                                 PropagationStats* stats = nullptr);

/// The per-variable canonical keys the algorithm assigns (for diagnostics
/// and the design-advisor explanation output).
Result<std::vector<NodeKeyAssignment>> ComputeNodeKeys(
    const std::vector<XmlKey>& sigma, const TableTree& table,
    PropagationStats* stats = nullptr);

/// Engine-backed variants: FD-set-identical output, with the candidate
/// and field-FD implication checks evaluated as engine batches — cached
/// across queries (and across repeated covers on the same engine) and
/// fanned out over the engine's thread pool when batches are large
/// enough. This is the Fig. 7(a) fast path.
Result<FdSet> MinimumCover(ImplicationEngine& engine, const TableTree& table,
                           PropagationStats* stats = nullptr);
Result<FdSet> PropagatedCoverRaw(ImplicationEngine& engine,
                                 const TableTree& table,
                                 PropagationStats* stats = nullptr);
Result<std::vector<NodeKeyAssignment>> ComputeNodeKeys(
    ImplicationEngine& engine, const TableTree& table,
    PropagationStats* stats = nullptr);

}  // namespace xmlprop

#endif  // XMLPROP_CORE_MINIMUM_COVER_H_
