#ifndef XMLPROP_CORE_DESIGN_ADVISOR_H_
#define XMLPROP_CORE_DESIGN_ADVISOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/minimum_cover.h"
#include "keys/xml_key.h"
#include "relational/normalize.h"
#include "transform/rule.h"

namespace xmlprop {

/// The end-to-end design-refinement workflow of Examples 1.2 / 3.1:
/// from XML keys and a universal-relation table rule to a normalized
/// relational schema.
struct DesignReport {
  /// The universal relation the rule defines.
  RelationSchema universal;
  /// Minimum cover of the propagated FDs (Algorithm minimumCover).
  FdSet cover;
  /// Canonical transitive key per table-tree variable.
  std::vector<NodeKeyAssignment> node_keys;
  /// BCNF decomposition guided by the cover.
  std::vector<SubRelation> bcnf;
  /// 3NF synthesis (dependency-preserving alternative).
  std::vector<SubRelation> third_nf;

  /// Multi-section human-readable report.
  std::string ToString() const;
};

/// Runs minimumCover over the universal rule and decomposes to BCNF and
/// 3NF. The rule is validated; `sigma` is the key set of the source data.
Result<DesignReport> AdviseDesign(const std::vector<XmlKey>& sigma,
                                  const TableRule& universal_rule);

/// A key the consumer database declares on one of its relations
/// (Example 1.1: key of Chapter is {bookTitle, chapterNum}).
struct DeclaredKey {
  std::string relation;
  std::vector<std::string> attributes;
};

/// The verdict for one declared key: `guaranteed` means the key FD
/// (attributes → all other fields) is propagated from the XML keys, so
/// *no* conforming document can ever violate it.
struct KeyCheckOutcome {
  DeclaredKey key;
  bool guaranteed = false;
};

/// The consistency-check workflow of Example 1.1: validates each declared
/// relational key against the XML keys via Algorithm propagation. A key
/// that is not guaranteed may still hold on particular documents — the
/// designers were "lucky with this particular XML data set".
Result<std::vector<KeyCheckOutcome>> CheckDeclaredKeys(
    const std::vector<XmlKey>& sigma, const Transformation& transformation,
    const std::vector<DeclaredKey>& declared);

}  // namespace xmlprop

#endif  // XMLPROP_CORE_DESIGN_ADVISOR_H_
