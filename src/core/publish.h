#ifndef XMLPROP_CORE_PUBLISH_H_
#define XMLPROP_CORE_PUBLISH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "keys/xml_key.h"
#include "relational/instance.h"
#include "transform/table_tree.h"
#include "xml/tree.h"

namespace xmlprop {

/// The inverse bridge: publishes a universal-relation instance back to a
/// canonical XML document along the structure of the table tree — the
/// XML-publishing half of the XML⇄relational round trip (the paper's
/// transformation language is "similar to that of STORED", which works
/// both ways; Section 7 lists "understanding XML to XML transformations"
/// as an application).
///
/// Reconstruction must know which tuples describe the *same* element;
/// that is exactly what the XML keys decide. Elements are grouped per
/// variable of the table tree:
///   - a variable keyed by Σ (canonical transitive key from Algorithm
///     minimumCover's machinery) groups tuples by its key-field values —
///     one element per distinct non-null combination;
///   - an unkeyed variable (e.g. the multi-valued author of Example 3.1)
///     groups by its parent's group plus the values of every field
///     populated beneath it — the set-semantics inverse of the
///     evaluation's implicit Cartesian product;
///   - attribute fields become attributes, element-valued fields become
///     text children; tuples contribute only their non-null prefix.
///
/// "//"-steps materialize as a direct child edge and multi-label steps
/// as a nested chain (the canonical choices). Conflicting values for the
/// same keyed element (an instance inconsistent with the keys) are
/// reported as errors. Shred(Publish(I)) = I is property-tested for
/// instances produced by shredding key-satisfying documents.
Result<Tree> PublishXml(const Instance& instance, const TableTree& table,
                        const std::vector<XmlKey>& sigma,
                        std::string root_label = "r");

}  // namespace xmlprop

#endif  // XMLPROP_CORE_PUBLISH_H_
