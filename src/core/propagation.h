#ifndef XMLPROP_CORE_PROPAGATION_H_
#define XMLPROP_CORE_PROPAGATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "keys/implication_engine.h"
#include "keys/xml_key.h"
#include "relational/fd.h"
#include "transform/table_tree.h"

namespace xmlprop {

/// Counters exposed by the algorithms for the paper's Section 6 analysis
/// (execution time is dominated by calls to Algorithm `implication`, whose
/// count is governed by the table-tree depth). The cache/parallel fields
/// are filled only on the ImplicationEngine paths — they stay zero on the
/// engine-off (bare Σ) paths, whose call counts they never change.
struct PropagationStats {
  size_t implication_calls = 0;
  size_t exist_calls = 0;
  /// Engine memo hits/misses (identification + containment + exist).
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Batches the engine actually fanned out, and their total task count.
  size_t parallel_batches = 0;
  size_t parallel_tasks = 0;

  /// Adds the engine-counter movement between two snapshots.
  void AbsorbEngineDelta(const ImplicationEngine::Counters& before,
                         const ImplicationEngine::Counters& after) {
    cache_hits += after.hits() - before.hits();
    cache_misses += after.misses() - before.misses();
    parallel_batches += after.parallel_batches - before.parallel_batches;
    parallel_tasks += after.parallel_tasks - before.parallel_tasks;
  }
};

/// The single engine-counter emission point: absorbs the movement between
/// two snapshots into `stats` (when non-null) and into the active metric
/// registry (always — `implication.memo_hits` etc. land even when the
/// caller threads no stats struct through).
void AbsorbEngineDelta(PropagationStats* stats,
                       const ImplicationEngine::Counters& before,
                       const ImplicationEngine::Counters& after);

/// Algorithm `propagation` (Fig. 5): decides whether the FD `fd` on the
/// relation defined by `table` is propagated from the XML keys `sigma`
/// via the transformation, i.e. Σ ⊨_σ φ — every XML tree satisfying Σ
/// maps to an instance satisfying φ under the paper's null-aware FD
/// semantics (Section 3).
///
/// For an FD X → A with A populated by value(x):
///   (1) either A ∈ X (trivial), or some ancestor `target` of x in the
///       table tree is *keyed* by attributes populating fields of X — via
///       a chain of relative keys walked top-down with Algorithm
///       `implication` — and x is unique under that ancestor
///       (Σ ⊨ (ρ(root, target), (ρ(target, x), {}))); and
///   (2) every field of X is defined by an attribute of an ancestor of x
///       that is required to exist (function `exist`), which rules out
///       null LHS values occurring with a non-null RHS.
///
/// A set-valued RHS X → Y is handled as the conjunction over Y's
/// attributes. Complexity: O(n²·m) with n = |Σ| and m = |table|.
///
/// Errors are returned only for malformed inputs (FD over the wrong
/// schema universe).
Result<bool> CheckPropagation(const std::vector<XmlKey>& sigma,
                              const TableTree& table, const Fd& fd,
                              PropagationStats* stats = nullptr);

/// The *value-semantics* component of propagation: condition (1) of
/// CheckPropagation only (keyed ancestor + uniqueness), skipping the
/// null-safety check. This is the semantics against which minimum covers
/// are complete under Armstrong's axioms (the null condition is not
/// preserved by augmentation, so GminimumCover re-checks it per FD — see
/// DESIGN.md §7). Equivalent to classic FD satisfaction over the
/// null-free tuples of every generated instance.
Result<bool> CheckValuePropagation(const std::vector<XmlKey>& sigma,
                                   const TableTree& table, const Fd& fd,
                                   PropagationStats* stats = nullptr);

/// Parses `fd_text` against the table's schema and runs CheckPropagation.
Result<bool> CheckPropagation(const std::vector<XmlKey>& sigma,
                              const TableTree& table,
                              const std::string& fd_text,
                              PropagationStats* stats = nullptr);

/// Engine-backed variants: identical verdicts, but every implication and
/// exist() query goes through the persistent ImplicationEngine caches
/// (the engine must own the same Σ the check is meant against). These are
/// the session entry points — build one engine per key set and reuse it
/// across propagation checks, cover computations, and advisor runs.
Result<bool> CheckPropagation(ImplicationEngine& engine,
                              const TableTree& table, const Fd& fd,
                              PropagationStats* stats = nullptr);
Result<bool> CheckValuePropagation(ImplicationEngine& engine,
                                   const TableTree& table, const Fd& fd,
                                   PropagationStats* stats = nullptr);

/// Oracle-level variants used inside engine ParallelRun tasks (the oracle
/// carries the worker's memo shard). Verdicts match the Σ versions.
Result<bool> CheckPropagation(const KeyOracle& oracle, const TableTree& table,
                              const Fd& fd, PropagationStats* stats = nullptr);
Result<bool> CheckValuePropagation(const KeyOracle& oracle,
                                   const TableTree& table, const Fd& fd,
                                   PropagationStats* stats = nullptr);

/// A human-readable account of one propagation check — every keyed-chain
/// step Fig. 5 performed and the null-safety bookkeeping, per RHS
/// attribute. Produced by ExplainPropagation; rendered by ToString.
struct PropagationTrace {
  struct AncestorStep {
    std::string var;                ///< the candidate `target` variable
    std::string keyed_query;        ///< the key whose implication was asked
    bool keyed = false;             ///< did `context` advance here?
    std::string uniqueness_query;   ///< set when the target was keyed
    bool unique = false;            ///< x unique under this target?
  };
  struct PerRhs {
    std::string rhs_field;
    bool trivial = false;           ///< RHS ∈ LHS (condition 1 immediate)
    std::vector<AncestorStep> steps;
    bool key_found = false;
    std::vector<std::string> non_null_fields;   ///< proven by exist()
    std::vector<std::string> null_risk_fields;  ///< Ycheck leftovers
    bool non_null_ok = false;
  };
  std::vector<PerRhs> rhs;
  bool propagated = false;

  std::string ToString() const;
};

/// Runs the same decision as CheckPropagation but records why: the chain
/// of implication queries, where the context advanced, which uniqueness
/// check succeeded, and which LHS fields carry a null risk. The verdict
/// always equals CheckPropagation's (tested).
Result<PropagationTrace> ExplainPropagation(const std::vector<XmlKey>& sigma,
                                            const TableTree& table,
                                            const Fd& fd);

/// The null-safety half of propagation, shared with GminimumCover:
/// true iff every field in `lhs` is populated by an attribute of an
/// ancestor-or-self of the variable populating `rhs_attr`, and that
/// attribute is guaranteed to exist by `sigma` (AttributesExist).
Result<bool> LhsNonNullWhenRhsPresent(const std::vector<XmlKey>& sigma,
                                      const TableTree& table,
                                      const AttrSet& lhs, size_t rhs_attr,
                                      PropagationStats* stats = nullptr);
Result<bool> LhsNonNullWhenRhsPresent(const KeyOracle& oracle,
                                      const TableTree& table,
                                      const AttrSet& lhs, size_t rhs_attr,
                                      PropagationStats* stats = nullptr);

}  // namespace xmlprop

#endif  // XMLPROP_CORE_PROPAGATION_H_
