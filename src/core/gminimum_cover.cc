#include "core/gminimum_cover.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace xmlprop {

Result<GMinimumCover> GMinimumCover::Build(const std::vector<XmlKey>& sigma,
                                           const TableTree& table,
                                           PropagationStats* stats) {
  obs::Span span("cover.gbuild");
  XMLPROP_ASSIGN_OR_RETURN(FdSet cover, MinimumCover(sigma, table, stats));
  return GMinimumCover(sigma, table, std::move(cover));
}

Result<GMinimumCover> GMinimumCover::Build(ImplicationEngine& engine,
                                           const TableTree& table,
                                           PropagationStats* stats) {
  obs::Span span("cover.gbuild");
  XMLPROP_ASSIGN_OR_RETURN(FdSet cover, MinimumCover(engine, table, stats));
  return GMinimumCover(engine.sigma(), table, std::move(cover), &engine);
}

Result<bool> GMinimumCover::Check(const Fd& fd,
                                  PropagationStats* stats) const {
  obs::Span span("cover.gcheck");
  obs::Count("cover.gchecks");
  if (fd.lhs.universe_size() != table_.schema().arity() ||
      fd.rhs.universe_size() != table_.schema().arity()) {
    return Status::InvalidArgument(
        "FD attribute universe does not match relation " +
        table_.relation_name());
  }
  // Condition (1): relational implication from the minimum cover — served
  // by the cover's cached LinClosure index, compiled once at Build time
  // and reused across every Check.
  if (!cover_.Implies(fd)) return false;
  // Condition (2): LHS fields guaranteed non-null when the RHS is
  // present — checked per RHS attribute, like Algorithm propagation.
  const KeyOracle oracle =
      engine_ != nullptr ? KeyOracle(*engine_) : KeyOracle(sigma_);
  for (size_t a : fd.rhs.ToVector()) {
    XMLPROP_ASSIGN_OR_RETURN(
        bool non_null,
        LhsNonNullWhenRhsPresent(oracle, table_, fd.lhs, a, stats));
    if (!non_null) return false;
  }
  return true;
}

Result<bool> GMinimumCover::Check(const std::string& fd_text,
                                  PropagationStats* stats) const {
  XMLPROP_ASSIGN_OR_RETURN(Fd fd, ParseFd(table_.schema(), fd_text));
  return Check(fd, stats);
}

Result<bool> CheckPropagationViaCover(const std::vector<XmlKey>& sigma,
                                      const TableTree& table, const Fd& fd,
                                      PropagationStats* stats) {
  XMLPROP_ASSIGN_OR_RETURN(GMinimumCover checker,
                           GMinimumCover::Build(sigma, table, stats));
  return checker.Check(fd, stats);
}

}  // namespace xmlprop
